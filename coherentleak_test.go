package coherentleak

import "testing"

// The facade must expose a working end-to-end attack in a few lines —
// the README quick-start, verified.
func TestFacadeQuickStart(t *testing.T) {
	ch := NewChannel(Scenarios[0])
	res, err := ch.Run(TextToBits("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if got := BitsToText(res.RxBits); got != "hi" {
		t.Fatalf("decoded %q, accuracy %v", got, res.Accuracy)
	}
}

func TestFacadeScenarioLookup(t *testing.T) {
	names := ScenarioNames()
	if len(names) != 6 {
		t.Fatalf("names = %v", names)
	}
	sc, err := ScenarioByName("RExclc-LSharedb")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Comm != RExcl || sc.Bound != LShared {
		t.Fatalf("lookup wrong: %+v", sc)
	}
}

func TestFacadeMachineAndKernel(t *testing.T) {
	w := NewWorld(WorldConfig{Seed: 1})
	m := NewMachine(w, DefaultMachineConfig())
	k := NewKernel(m, 0)
	p := k.NewProcess("demo")
	va := p.MustMmap(1)
	var path Path
	k.Spawn(p, 0, "t", func(th *OSThread) {
		path = th.Load(va).Path
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if path != PathDRAM {
		t.Fatalf("cold load path = %v", path)
	}
}

func TestFacadeCalibrate(t *testing.T) {
	b, err := Calibrate(DefaultMachineConfig(), 1, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.ByPlacement) != 4 {
		t.Fatalf("bands = %d", len(b.ByPlacement))
	}
	if err := b.Distinct(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDefenses(t *testing.T) {
	cfg := FullHardwareDefense(DefaultMachineConfig())
	if !cfg.Mitigations.LLCNotifiedOfEToM || !cfg.Mitigations.EqualizeSocketLatency {
		t.Fatal("defense flags not set")
	}
	if DefaultMonitorConfig().InjectLoads == 0 {
		t.Fatal("monitor defaults empty")
	}
	if DefaultKSMGuardConfig().Period == 0 {
		t.Fatal("guard defaults empty")
	}
}

func TestFacadeAccuracy(t *testing.T) {
	if Accuracy([]byte{1, 0}, []byte{1, 0}) != 1 {
		t.Fatal("accuracy wrong")
	}
}
