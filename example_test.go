package coherentleak_test

import (
	"fmt"

	"coherentleak"
)

// Transmit a string over the canonical on-chip channel and decode it.
func Example() {
	ch := coherentleak.NewChannel(coherentleak.Scenarios[0])
	res, err := ch.Run(coherentleak.TextToBits("hi"))
	if err != nil {
		panic(err)
	}
	fmt.Println(coherentleak.BitsToText(res.RxBits), res.Accuracy)
	// Output: hi 1
}

// Calibrate the latency bands the spy decodes against (§V / Figure 2).
func ExampleCalibrate() {
	bands, err := coherentleak.Calibrate(coherentleak.DefaultMachineConfig(), 42, 200, 4)
	if err != nil {
		panic(err)
	}
	ls := bands.ByPlacement[coherentleak.LShared]
	le := bands.ByPlacement[coherentleak.LExcl]
	fmt.Printf("local S center ~%.0f, local E center ~%.0f\n", ls.Center, le.Center)
	// Output: local S center ~98, local E center ~124
}

// Pick a scenario by the paper's Table I notation.
func ExampleScenarioByName() {
	sc, err := coherentleak.ScenarioByName("RExclc-LSharedb")
	if err != nil {
		panic(err)
	}
	local, remote := sc.TrojanThreads()
	fmt.Println(sc.Name(), local, remote)
	// Output: RExclc-LSharedb 2 1
}

// Drive the simulated machine directly: the first load misses to DRAM,
// the second hits the L1.
func ExampleNewMachine() {
	w := coherentleak.NewWorld(coherentleak.WorldConfig{Seed: 1})
	m := coherentleak.NewMachine(w, coherentleak.DefaultMachineConfig())
	k := coherentleak.NewKernel(m, 0)
	p := k.NewProcess("demo")
	va := p.MustMmap(1)
	k.Spawn(p, 0, "t", func(th *coherentleak.OSThread) {
		a := th.Load(va)
		b := th.Load(va)
		fmt.Println(a.Path, b.Path)
	})
	if err := w.Run(); err != nil {
		panic(err)
	}
	// Output: DRAM L1
}

// The full hardware defense (§VIII-E) collapses the channel.
func ExampleFullHardwareDefense() {
	ch := coherentleak.NewChannel(coherentleak.Scenarios[0])
	ch.Config = coherentleak.FullHardwareDefense(ch.Config)
	res, err := ch.Run(coherentleak.TextToBits("secret"))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Accuracy < 0.8) // garbage floor for edit accuracy is ~0.7
	// Output: true
}

// Estimate the usable information rate and TCSEC class of a noisy
// transmission (§II background).
func ExampleAnalyzeCapacity() {
	tx := []byte{1, 0, 1, 1, 0, 1, 0, 0}
	rx := []byte{1, 0, 1, 1, 0, 1, 0, 0}
	rep := coherentleak.AnalyzeCapacity(tx, rx, 700)
	fmt.Println(rep.InfoKbps, rep.TCSEC)
	// Output: 700 high-bandwidth
}
