// Ksmdedup walks through the paper's broader adversary model (§IV):
// trojan and spy have no shared library or file, so they manufacture a
// shared physical page by writing an agreed pseudo-random pattern and
// letting the kernel's same-page merging deduplicate it. The example also
// shows the §VII-A collision hazard — an unrelated process merging into
// the channel page — and the spare-page recovery.
//
//	go run ./examples/ksmdedup
package main

import (
	"fmt"
	"log"

	"coherentleak"
)

func main() {
	cfg := coherentleak.DefaultMachineConfig()
	sess, err := coherentleak.NewSession(cfg, 7, 0xA9, coherentleak.ShareKSM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("trojan and spy processes created with no explicit sharing")
	fmt.Printf("agreed pattern seed: %#x (both sides run the same PRNG)\n", 0xA9)
	fmt.Printf("after one KSM scan: trojan VA %#x and spy VA %#x map frame at PA %#x\n",
		sess.TrojanVA, sess.SpyVA, sess.SharedPA())
	fmt.Printf("KSM stats: %d merged, %d scans\n",
		sess.Kern.KSM.Merged, sess.Kern.KSM.Scans)

	// The hazard: a bystander process coincidentally holds the same
	// bytes. On the next scan it merges into the channel page.
	bystander := sess.Kern.NewProcess("bystander")
	va := bystander.MustMmap(1)
	pattern := make([]byte, coherentleak.PageSize)
	coherentleak.PagePatternInto(0xA9, pattern)
	if err := bystander.WriteBytes(va, pattern); err != nil {
		log.Fatal(err)
	}
	if err := bystander.Madvise(va, 1); err != nil {
		log.Fatal(err)
	}
	sess.Kern.KSM.Scan()
	fmt.Printf("\nbystander wrote the same pattern; externally shared now: %v\n",
		sess.ExternallyShared())

	// Recovery: the pre-created spare page (different pattern) is clean.
	if !sess.SwitchToSpare() {
		log.Fatal("no spare page available")
	}
	fmt.Printf("switched to spare page at PA %#x; externally shared: %v\n",
		sess.SharedPA(), sess.ExternallyShared())

	// The channel works over the deduplicated spare page.
	ch := coherentleak.NewChannel(coherentleak.Scenarios[0])
	ch.PatternSeed = 0xA9
	res, err := ch.Run(coherentleak.TextToBits("dedup"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntransmission over a KSM page: %q decoded, accuracy %.0f%%, %.0f Kbps\n",
		coherentleak.BitsToText(res.RxBits), res.Accuracy*100, res.RawKbps)

	// Writes split the page (copy-on-write): no direct channel exists.
	before := sess.SharedPA()
	if err := sess.TrojanProc.WriteBytes(sess.TrojanVA, []byte{1}); err != nil {
		log.Fatal(err)
	}
	after, _ := sess.TrojanProc.Translate(sess.TrojanVA)
	fmt.Printf("\ntrojan wrote one byte: page split by COW (PA %#x -> %#x);\n", before, after)
	fmt.Println("KSM never lets merged pages become a direct read/write channel.")
}
