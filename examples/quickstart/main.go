// Quickstart: measure the four coherence latency bands, then transmit a
// short message over the canonical on-chip channel (LExclc-LSharedb).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"coherentleak"
)

func main() {
	cfg := coherentleak.DefaultMachineConfig()

	// Step 1 — the vulnerability: a load's latency reveals the block's
	// (location, coherence state). These are the §V / Figure 2 bands.
	bands, err := coherentleak.Calibrate(cfg, 42, 300, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("calibrated latency bands (cycles):")
	for _, pl := range []coherentleak.Placement{
		coherentleak.LShared, coherentleak.LExcl,
		coherentleak.RShared, coherentleak.RExcl,
	} {
		b := bands.ByPlacement[pl]
		fmt.Printf("  %-8s %s (center %.0f)\n", pl, b, b.Center)
	}
	fmt.Printf("  %-8s %s\n\n", "DRAM", bands.DRAM)

	// Step 2 — the attack: the trojan modulates the block between the
	// LExcl (bit) and LShared (boundary) placements; the spy times
	// flush+reload probes and decodes.
	msg := "MESI leaks"
	ch := coherentleak.NewChannel(coherentleak.Scenarios[0])
	res, err := ch.Run(coherentleak.TextToBits(msg))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario      %s\n", res.Scenario.Name())
	fmt.Printf("transmitted   %q (%d bits)\n", msg, len(res.TxBits))
	fmt.Printf("decoded       %q\n", coherentleak.BitsToText(res.RxBits))
	fmt.Printf("accuracy      %.1f%%\n", res.Accuracy*100)
	fmt.Printf("raw bit rate  %.0f Kbps\n", res.RawKbps)
	fmt.Printf("shared page   created via %s\n", ch.Mode)
}
