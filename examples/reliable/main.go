// Reliable demonstrates §VIII-C's error handling: a 64-byte packet is
// framed with 16 parity bits, transmitted over the covert channel under
// heavy co-located noise, acknowledged over the 1-bit reverse channel,
// and retransmitted until received — then the same payload goes over the
// Hamming(7,4) forward-error-correction alternative for comparison.
//
//	go run ./examples/reliable
package main

import (
	"fmt"
	"log"

	"coherentleak"
)

func main() {
	secret := []byte("sixty-four bytes of key material traveling one packet at a time")
	fmt.Printf("payload: %d bytes under 8 co-located kernel-build threads\n\n", len(secret))

	sc, err := coherentleak.ScenarioByName("RExclc-LSharedb")
	if err != nil {
		log.Fatal(err)
	}

	// Rate-adapted operating point: heavy redundancy so whole packets
	// survive the noise (see EXPERIMENTS.md on Figure 10).
	params := coherentleak.DefaultParams()
	params.C1, params.C0, params.Cb = 6, 3, 4
	params.Ts = 3800
	params.MinRun = 3
	params.EndRun = 16

	ch := coherentleak.Channel{
		Config:      coherentleak.DefaultMachineConfig(),
		Scenario:    sc,
		Params:      params,
		Mode:        coherentleak.ShareExplicit,
		WorldSeed:   11,
		PatternSeed: 11,
		PreRun: func(s *coherentleak.Session) {
			if _, err := coherentleak.AttachNoise(s.Kern, coherentleak.DefaultNoiseConfig(8)); err != nil {
				log.Fatal(err)
			}
			s.OSNoiseProb = coherentleak.CoLocationPressure(s.Kern, 8)
		},
	}

	arq := coherentleak.NewReliableProtocol(ch)
	res, err := arq.Send(secret)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parity + NACK retransmission (the paper's scheme):")
	fmt.Printf("  packets %d, attempts %d (retransmissions %d)\n",
		res.Packets, res.Attempts, res.Retransmissions)
	fmt.Printf("  recovered: %v, effective rate %.0f Kbps\n", res.Recovered, res.EffectiveKbps)
	if !res.Recovered {
		log.Fatal("payload lost")
	}

	fec := coherentleak.NewFECProtocol(ch)
	fres, err := fec.Send(coherentleak.TextToBits(string(secret)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nHamming(7,4) + interleaver FEC (no reverse channel):")
	fmt.Printf("  frame intact: %v, recovered: %v, corrections %d\n",
		fres.FrameIntact, fres.Recovered, fres.Corrected)
	fmt.Printf("  effective rate %.0f Kbps (the 7/4 code always costs ~43%%)\n", fres.EffectiveKbps)
	fmt.Println("\nFEC has no retransmission path: a single lost wire bit destroys the")
	fmt.Println("frame, which is why the paper chose detection + resend.")
}
