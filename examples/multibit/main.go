// Multibit demonstrates §VIII-D: encoding two bits per symbol by using
// all four (location, coherence state) combination pairs as four distinct
// latency bands, and compares its rate against the best binary channel.
//
//	go run ./examples/multibit
package main

import (
	"fmt"
	"log"

	"coherentleak"
)

func main() {
	// The Figure 11 prefix exercises all four symbols:
	// 10 01 01 00 01 10 01 10 11.
	prefix := []byte{1, 0, 0, 1, 0, 1, 0, 0, 0, 1, 1, 0, 0, 1, 1, 0, 1, 1}
	payload := append(prefix, coherentleak.TextToBits("2-bit symbols!")...)

	mb := coherentleak.NewMultiBitChannel()
	mres, err := mb.Run(payload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("symbol encoding (2 bits each):")
	fmt.Println("  00 -> LShared   01 -> LExcl   10 -> RShared   11 -> RExcl")
	fmt.Printf("\ntransmitted %d bits as %d symbols\n", len(mres.TxBits), len(mres.TxSymbols))
	fmt.Printf("accuracy  %.1f%%\n", mres.Accuracy*100)
	fmt.Printf("bit rate  %.0f Kbps\n", mres.RawKbps)

	fmt.Println("\nfirst 9 received symbols (paper's magnified view):")
	for i := 0; i < 9 && i < len(mres.RxSymbols); i++ {
		s := mres.RxSymbols[i]
		fmt.Printf("  symbol %d: %d%d\n", i, s>>1&1, s&1)
	}

	// Binary comparison at the same reliability.
	bin := coherentleak.NewChannel(coherentleak.Scenarios[0])
	bres, err := bin.Run(payload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbinary channel at the same operating point: %.0f Kbps\n", bres.RawKbps)
	fmt.Printf("multi-bit speedup: %.2fx (the paper reports 700 -> 1100 Kbps at peak)\n",
		mres.RawKbps/bres.RawKbps)
}
