// Mitigations runs the paper's three §VIII-E defenses against the
// default channel and shows each one collapsing it: the noise-injection
// monitor, the KSM guard, and the hardware changes (E->M notification,
// socket-latency equalization).
//
//	go run ./examples/mitigations
package main

import (
	"fmt"
	"log"

	"coherentleak"
)

var payload = coherentleak.TextToBits("top secret")

func run(name string, configure func(*coherentleak.Channel)) {
	ch := coherentleak.NewChannel(coherentleak.Scenarios[0])
	configure(ch)
	res, err := ch.Run(payload)
	if err != nil {
		log.Fatal(err)
	}
	decoded := coherentleak.BitsToText(res.RxBits)
	fmt.Printf("%-28s accuracy %5.1f%%  decoded %q\n", name, res.Accuracy*100, decoded)
}

func main() {
	fmt.Println("channel: LExclc-LSharedb, payload \"top secret\"")
	fmt.Println("(random-garbage decodes still show ~65-70% edit-distance accuracy)")
	fmt.Println()

	run("no defense", func(ch *coherentleak.Channel) {})

	run("monitor thread (#1)", func(ch *coherentleak.Channel) {
		ch.PreRun = func(s *coherentleak.Session) {
			coherentleak.AttachMonitor(s.Kern,
				coherentleak.DefaultMonitorConfig(), coherentleak.AttackLines(s))
		}
	})

	run("KSM guard (#2)", func(ch *coherentleak.Channel) {
		ch.PreRun = func(s *coherentleak.Session) {
			coherentleak.AttachKSMGuard(s.Kern, coherentleak.DefaultKSMGuardConfig())
		}
	})

	run("E->M notification (#3a)", func(ch *coherentleak.Channel) {
		ch.Config = coherentleak.HardwareFix(ch.Config)
	})

	run("latency equalization (#3b)", func(ch *coherentleak.Channel) {
		// The obfuscator pads every off-core load to the worst-case
		// path, flattening all four bands at once.
		ch.Config = coherentleak.TimingObfuscator(ch.Config)
	})

	run("full hardware defense", func(ch *coherentleak.Channel) {
		ch.Config = coherentleak.FullHardwareDefense(ch.Config)
	})

	fmt.Println()
	fmt.Println("note: #3a collapses only the E/S bands, so location-based scenarios")
	fmt.Println("like RSharedc-LSharedb survive it; the full grid is in the mitigation")
	fmt.Println("ablation (cmd/experiments -only mitigations).")
}
