// Keyexfil reproduces the paper's §VII motivation: a trojan with access
// to a symmetric encryption key exfiltrates it covertly to a spy that has
// already captured ciphertext off the network. The spy cannot talk to
// the trojan (security policy), but both share the coherence fabric.
//
// The cipher is a toy 4-round AES-128-like block cipher (full AES adds
// nothing to the demonstration); the channel is the real thing.
//
//	go run ./examples/keyexfil
package main

import (
	"bytes"
	"fmt"
	"log"

	"coherentleak"
)

func main() {
	secret := []byte("attack at dawn!!") // 16-byte plaintext
	key := []byte{
		0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
	}

	// Outside the machine: the spy captures ciphertext in transit.
	captured := encrypt(secret, key)
	fmt.Printf("spy captured ciphertext: %x\n", captured)
	fmt.Println("spy cannot decrypt: no key, and policy forbids contacting the trojan")

	// Inside the machine: the trojan transmits the key over the
	// RExclc-LSharedb channel — the most rate-robust Table I scenario.
	sc, err := coherentleak.ScenarioByName("RExclc-LSharedb")
	if err != nil {
		log.Fatal(err)
	}
	ch := coherentleak.NewChannel(sc)
	keyBits := make([]byte, 0, 128)
	for _, b := range key {
		for i := 7; i >= 0; i-- {
			keyBits = append(keyBits, (b>>uint(i))&1)
		}
	}
	res, err := ch.Run(keyBits)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncovert transfer: %d key bits, accuracy %.1f%%, %.0f Kbps\n",
		len(res.TxBits), res.Accuracy*100, res.RawKbps)

	if len(res.RxBits) < 128 {
		log.Fatalf("key truncated: got %d bits", len(res.RxBits))
	}
	leaked := make([]byte, 16)
	for i := range leaked {
		var v byte
		for j := 0; j < 8; j++ {
			v = v<<1 | res.RxBits[i*8+j]&1
		}
		leaked[i] = v
	}
	if !bytes.Equal(leaked, key) {
		log.Fatalf("leaked key corrupt: %x", leaked)
	}
	fmt.Printf("spy reconstructed key:   %x\n", leaked)

	plain := decrypt(captured, leaked)
	fmt.Printf("spy decrypted:           %q\n", plain)
	if !bytes.Equal(plain, secret) {
		log.Fatal("decryption failed")
	}
	fmt.Println("\nexfiltration complete: the security policy was never 'violated' —")
	fmt.Println("no message crossed any monitored interface, only cache timing.")
}

// --- toy block cipher (AES-flavoured SPN, 4 rounds, 16-byte blocks) ---

var sbox [256]byte

func init() {
	// A fixed random-ish permutation derived from a linear congruential
	// walk; invertible by construction.
	p := byte(7)
	for i := 0; i < 256; i++ {
		sbox[i] = p
		p = p*167 + 13
	}
	// Ensure it is a permutation (167 is odd, so the LCG cycles mod 256
	// over all residues only if full-period; verify and fall back).
	seen := [256]bool{}
	ok := true
	for _, v := range sbox {
		if seen[v] {
			ok = false
			break
		}
		seen[v] = true
	}
	if !ok {
		for i := range sbox {
			sbox[i] = byte(i*7 + 3)
		}
	}
}

func invSbox() (inv [256]byte) {
	for i, v := range sbox {
		inv[v] = byte(i)
	}
	return inv
}

func roundKeys(key []byte) [][16]byte {
	rks := make([][16]byte, 5)
	copy(rks[0][:], key)
	for r := 1; r < 5; r++ {
		for i := 0; i < 16; i++ {
			rks[r][i] = sbox[rks[r-1][(i+1)%16]] ^ byte(r)
		}
	}
	return rks
}

func encrypt(plain, key []byte) []byte {
	rks := roundKeys(key)
	s := make([]byte, 16)
	copy(s, plain)
	for i := range s {
		s[i] ^= rks[0][i]
	}
	for r := 1; r <= 4; r++ {
		for i := range s {
			s[i] = sbox[s[i]]
		}
		// Rotate (the toy's diffusion step).
		first := s[0]
		copy(s, s[1:])
		s[15] = first
		for i := range s {
			s[i] ^= rks[r][i]
		}
	}
	return s
}

func decrypt(cipher, key []byte) []byte {
	rks := roundKeys(key)
	inv := invSbox()
	s := make([]byte, 16)
	copy(s, cipher)
	for r := 4; r >= 1; r-- {
		for i := range s {
			s[i] ^= rks[r][i]
		}
		last := s[15]
		copy(s[1:], s[:15])
		s[0] = last
		for i := range s {
			s[i] = inv[s[i]]
		}
	}
	for i := range s {
		s[i] ^= rks[0][i]
	}
	return s
}
