# Tier-1 verification targets. `make ci` is what the CI job runs:
# build + vet + tests, plus a race-detector pass over the harness worker
# pool, the dispatch fleet, and the service daemon (whose integration
# tests execute real experiment cells in parallel behind httptest).

GO ?= go

# Worker count for test-dispatch and run-workers.
N ?= 4

.PHONY: build vet test test-race test-dispatch sweep-smoke protocol-smoke replacement-smoke loadgen-smoke bench bench-hotpath bench-smoke bench-gate benchstat staticcheck ci run-daemon run-workers

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./internal/harness/... ./internal/dispatch/... ./internal/service/...

# Race-checked dispatch integration pass: the fleet coordinator, real
# worker clients over HTTP, and the service-level fleet tests (worker
# kill mid-cell, lease reclaim, byte-identity), with N workers attached
# where a test honours COHSIM_TEST_WORKERS.
test-dispatch:
	COHSIM_TEST_WORKERS=$(N) $(GO) test -race -count=1 \
		-run 'Dispatch|Fleet|Worker|HTTP|Lease|LastEventID' \
		./internal/dispatch/... ./internal/service/... ./internal/harness/...

# Sweep-engine smoke: an 8-point capacity sweep through the daemon with
# two attached workers; the ranked frontier TSV is golden-checked under
# internal/service/testdata/. Regenerate the golden after an intentional
# simulator change with:
#   go test ./internal/service/ -run TestSweepSmokeGolden -update-golden
sweep-smoke:
	COHSIM_TEST_WORKERS=2 $(GO) test -count=1 -run 'TestSweepSmokeGolden|TestSweepFrontierByteIdenticalAcrossRunModes' ./internal/service/

# Protocol-engine smoke: build every registered protocol table (the
# spec validators run at package init), the golden cross-check against
# the legacy hand-coded state machine, the registry-wide coverage
# validators, and one protocol × channel matrix cell per protocol at
# quick sizing.
protocol-smoke:
	$(GO) test -count=1 -run 'TestSpecsMatchLegacyApply|TestRegisteredSpecsExhaustiveCoverage|TestSpecValidationRejectsBadTables|TestRegistryLookup' ./internal/coherence/
	$(GO) run ./cmd/cohsim -protocols
	$(GO) run ./cmd/experiments -quick -cache=false -only protomatrix -out /tmp/cohsim-protocol-smoke

# Replacement-layer smoke: the lrustate and dirtystate quick artifacts
# (one cell per registered replacement policy) through the daemon with
# two attached workers and a tree-PLRU config override; the TSVs must be
# byte-identical to a serial run and match the goldens under
# internal/service/testdata/. Regenerate after an intentional simulator
# change with:
#   go test ./internal/service/ -run TestReplacementSmokeGolden -update-golden
replacement-smoke:
	COHSIM_TEST_WORKERS=2 $(GO) test -count=1 -run 'TestReplacementSmokeGolden|TestSlottedChannelsDeterministic' ./internal/service/ ./internal/covert/

# Multi-tenant capacity smoke: two equal-weight authenticated tenants
# replay the hot mix against an in-process daemon with two dispatch
# workers attached; the run must show a fair throughput split (no
# starvation) and a >90% cache-hit ratio. cmd/loadgen is the same
# harness as a standalone binary for real deployments (BENCH_9.json).
loadgen-smoke:
	$(GO) test -count=1 -run TestLoadgenSmoke ./internal/loadgen/

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Per-access hot-path benchmarks: the refactored kernel/cache/directory
# layers must stay at ~0 allocs/op here.
bench-hotpath:
	$(GO) test -bench='LoadHit|LoadMiss|StoreRFO' -benchmem -run=^$$ ./internal/machine/

# One-iteration smoke pass over the artifact benchmarks — catches bench
# bit-rot in CI without paying for stable numbers.
bench-smoke:
	$(GO) test -bench=BenchmarkArtifact -benchtime=1x -run=^$$ .
	$(GO) test -bench='LoadHit|LoadMiss' -benchtime=100x -benchmem -run=^$$ ./internal/machine/

# Compiled-kernel performance gate: run every artifact bench under both
# access-stream kernels in one invocation (same machine, same run) plus
# the hot-path benches, then fail if the compiled kernel's aggregate
# exceeds the interpreted reference by >10%. Both kernels produce
# byte-identical TSVs, so the ratio is pure kernel overhead; an
# aggregate >1.1x means the batching machinery regressed.
bench-gate:
	$(GO) test -bench='LoadHit|LoadMiss|StoreRFO' -benchtime=1000x -benchmem -run=^$$ ./internal/machine/
	$(GO) test -bench=BenchmarkArtifact -benchtime=1x -run=^$$ . | tee /tmp/benchgate.txt
	$(GO) run ./cmd/benchgate -max-regress 0.10 < /tmp/benchgate.txt

# Compare two `go test -bench` outputs, e.g.:
#   make bench > old.txt ... make bench > new.txt
#   make benchstat OLD=old.txt NEW=new.txt
# Requires benchstat (golang.org/x/perf/cmd/benchstat) on PATH; degrades
# to a plain diff hint when absent so offline checkouts still work.
benchstat:
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(OLD) $(NEW); \
	else \
		echo "benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest);"; \
		echo "falling back to side-by-side diff:"; \
		diff -y $(OLD) $(NEW) || true; \
	fi

# Static analysis beyond go vet. Gated on the tool being present so the
# offline container and fresh checkouts are not blocked; CI installs it.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

ci: build vet staticcheck test test-race protocol-smoke sweep-smoke replacement-smoke loadgen-smoke

# Start the experiment service daemon on :8080 (state under
# results-daemon/). See EXPERIMENTS.md for the API walkthrough.
run-daemon:
	$(GO) run ./cmd/cohsimd -addr :8080 -out results-daemon

# Attach N cohsim-worker processes to a daemon on :8080 and wait.
# Ctrl-C stops them; each finishes its in-flight cell and deregisters.
run-workers:
	@trap 'kill 0' INT TERM; \
	for i in $$(seq 1 $(N)); do \
		$(GO) run ./cmd/cohsim-worker -server http://localhost:8080 -name worker-$$i & \
	done; \
	wait
