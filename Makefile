# Tier-1 verification targets. `make ci` is what a CI job should run:
# build + vet + tests, plus a race-detector pass over the harness worker
# pool (and its integration tests, which execute real experiment cells
# in parallel).

GO ?= go

.PHONY: build vet test test-race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./internal/harness/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

ci: build vet test test-race
