# Tier-1 verification targets. `make ci` is what the CI job runs:
# build + vet + tests, plus a race-detector pass over the harness worker
# pool and the service daemon (whose integration tests execute real
# experiment cells in parallel behind httptest).

GO ?= go

.PHONY: build vet test test-race bench ci run-daemon

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./internal/harness/... ./internal/service/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

ci: build vet test test-race

# Start the experiment service daemon on :8080 (state under
# results-daemon/). See EXPERIMENTS.md for the API walkthrough.
run-daemon:
	$(GO) run ./cmd/cohsimd -addr :8080 -out results-daemon
