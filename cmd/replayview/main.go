// Command replayview inspects an archived transmission (the JSON written
// by `covertchan -save`): it prints the summary, re-derives the accuracy
// from the archived bits as a consistency check, re-runs the capacity
// analysis, and renders the reception trace as a latency histogram per
// band.
//
// Usage:
//
//	replayview run.json
package main

import (
	"fmt"
	"os"
	"strings"

	"coherentleak/internal/capacity"
	"coherentleak/internal/replay"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: replayview <archive.json>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "replayview:", err)
		os.Exit(1)
	}
	defer f.Close()
	rec, err := replay.Load(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "replayview:", err)
		os.Exit(1)
	}

	fmt.Printf("scenario:   %s (probe %s)\n", rec.Scenario, rec.Params.Probe)
	fmt.Printf("params:     C1=%d C0=%d Cb=%d Ts=%d\n",
		rec.Params.C1, rec.Params.C0, rec.Params.Cb, rec.Params.Ts)
	fmt.Printf("bits:       %d sent, %d received\n", len(rec.TxBits), len(rec.RxBits))
	fmt.Printf("accuracy:   %.4f stored", rec.Accuracy)
	re := rec.Reaccuracy()
	if re == rec.Accuracy {
		fmt.Println(" (recomputation matches)")
	} else {
		fmt.Printf(" BUT recomputes to %.4f — archive inconsistent\n", re)
	}
	fmt.Printf("raw rate:   %.1f Kbps over %d cycles\n", rec.RawKbps, rec.Duration)

	rep := capacity.Analyze(rec.Tx(), rec.Rx(), rec.RawKbps)
	fmt.Printf("capacity:   %s\n", rep)

	if len(rec.Bands) > 0 {
		fmt.Println("\ncalibrated bands:")
		for _, b := range rec.Bands {
			fmt.Printf("  %-8s [%4.0f..%4.0f] center %4.0f\n", b.Name, b.Lo, b.Hi, b.Center)
		}
	}

	if len(rec.Samples) > 0 {
		fmt.Printf("\nreception trace: %d samples\n", len(rec.Samples))
		// Latency histogram, 25-cycle buckets over the observed range.
		lo, hi := rec.Samples[0].Latency, rec.Samples[0].Latency
		for _, s := range rec.Samples {
			if s.Latency < lo {
				lo = s.Latency
			}
			if s.Latency > hi {
				hi = s.Latency
			}
		}
		const bucket = 25
		lo = lo / bucket * bucket
		counts := map[uint64]int{}
		max := 0
		for _, s := range rec.Samples {
			b := (s.Latency - lo) / bucket
			counts[b]++
			if counts[b] > max {
				max = counts[b]
			}
		}
		for b := uint64(0); b*bucket+lo <= hi; b++ {
			n := counts[b]
			bar := strings.Repeat("#", n*50/maxInt(max, 1))
			fmt.Printf("  %4d-%4d cy %5d %s\n", lo+b*bucket, lo+(b+1)*bucket-1, n, bar)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
