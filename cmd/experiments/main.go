// Command experiments regenerates the paper's tables and figures on the
// simulated testbed through the internal/harness engine: every artifact
// decomposes into independent cells executed on a bounded worker pool,
// TSV output is byte-identical regardless of -parallel, and a manifest
// lets repeated invocations skip cells whose inputs are unchanged.
//
// Usage:
//
//	experiments [-only table1,fig2,fig6,fig7,fig8,fig9,fig10,fig11,peaks,mitigations,capacity]
//	            [-out results] [-quick] [-seed N] [-parallel N] [-timeout D]
//	            [-cache=false] [-cache-max N] [-archive=false] [-list]
//	            [-kernel interp|compiled] [-replacement lru|tree-plru|srrip|brrip]
//	            [-config '{"Latencies":{"QPI":60}}' | -config @overrides.json]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-version]
//
// A -timeout (or Ctrl-C / SIGTERM) cancels the run between cells: cells
// already executing finish, the partial report is printed, and the
// manifest still saves whatever completed, so a rerun resumes from the
// cache instead of starting over.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"bytes"
	"encoding/json"

	"coherentleak/internal/experiments"
	"coherentleak/internal/harness"
	"coherentleak/internal/machine"
	"coherentleak/internal/store"
	"coherentleak/internal/version"
)

func main() {
	var (
		only     = flag.String("only", "", "comma-separated artifact list (default: all)")
		out      = flag.String("out", "results", "output directory for TSV files")
		quick    = flag.Bool("quick", false, "smaller payloads for a fast pass")
		seed     = flag.Uint64("seed", experiments.DefaultSeed, "experiment seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "max cells in flight")
		cache    = flag.Bool("cache", true, "skip cells with unchanged inputs via <out>/manifest.json")
		archive  = flag.Bool("archive", true, "archive replay JSON records under <out>/replay")
		list     = flag.Bool("list", false, "list registered artifacts and exit")
		timeout  = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
		kern     = flag.String("kernel", machine.KernelInterp, "access-stream kernel: interp or compiled (byte-identical output)")
		replace  = flag.String("replacement", "", "cache replacement policy for every level (default LRU)")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprof  = flag.String("memprofile", "", "write a heap profile (after the run) to this file")
		config   = flag.String("config", "", "machine-config overrides: JSON literal or @file, merged over the defaults (same schema as the daemon's job config)")
		cacheMax = flag.Int("cache-max", 0, "max cells kept in the manifest cache, LRU-pruned (0 = unbounded)")
		storeDir = flag.String("store-dir", "", "shared on-disk cell store directory (one file per cell, crash-safe; replaces the manifest cache so runs and cohsimd replicas share hits)")
		storeMax = flag.Int64("store-max-bytes", 0, "size bound on the -store-dir payload, oldest entries evicted (0 = unbounded)")
		showVer  = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("experiments", version.Get())
		return
	}

	// A sweep's live heap is small and bounded (one machine per in-flight
	// cell), so frequent GC cycles buy nothing; relax the pacer unless the
	// user asked for specific behavior via GOGC.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}

	// stopProfiles flushes any active profiles; it must run before every
	// exit path, including the failed-cells os.Exit below.
	stopProfiles := func() {}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			die(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			die(err)
		}
		stopProfiles = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if *memprof != "" {
		stopCPU := stopProfiles
		stopProfiles = func() {
			stopCPU()
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}
	}
	defer stopProfiles()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	reg := experiments.Artifacts()
	if *list {
		for _, a := range reg.Artifacts() {
			fmt.Printf("%-12s %s\n", a.Name, a.Description)
		}
		return
	}

	// Resolve and validate the full -only list before anything runs, so
	// an unknown name cannot surface after earlier artifacts executed.
	arts, err := reg.Select(strings.Split(*only, ","))
	if err != nil {
		die(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		die(err)
	}

	// The cell cache is either the shared on-disk store (-store-dir,
	// persisted per entry, shared with any cohsimd replicas pointed at
	// the same directory) or the historical manifest snapshot under -out.
	var cellCache store.CellStore
	var manifest *harness.Manifest
	manifestPath := filepath.Join(*out, "manifest.json")
	switch {
	case *storeDir != "":
		disk, derr := store.NewDisk(*storeDir, *storeMax)
		if derr != nil {
			die(derr)
		}
		cellCache = disk
	case *cache:
		manifest, err = harness.LoadManifest(manifestPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: starting with empty cell cache: %v\n", err)
			manifest = harness.NewManifest()
		}
		if *cacheMax > 0 {
			manifest.SetLimit(*cacheMax)
		}
		cellCache = manifest
	}
	sinks := []harness.Sink{harness.TSVSink{Dir: *out, Log: os.Stdout}}
	if *archive {
		sinks = append(sinks, harness.ReplaySink{Dir: filepath.Join(*out, "replay")})
	}

	sizing := harness.SizingFull
	if *quick {
		sizing = harness.SizingQuick
	}
	runner := &harness.Runner{
		Parallel: *parallel,
		Progress: os.Stdout,
		Sinks:    sinks,
	}
	if cellCache != nil {
		runner.Manifest = cellCache
	}
	cfg := machine.DefaultConfig()
	if *config != "" {
		if err := applyConfig(&cfg, *config); err != nil {
			die(err)
		}
	}
	cfg.Kernel = *kern
	if *replace != "" {
		cfg.Replacement = *replace
	}
	if err := cfg.Validate(); err != nil {
		die(err)
	}
	report, err := runner.Run(ctx, harness.Plan{
		Cfg:    cfg,
		Seed:   *seed,
		Sizing: sizing,
	}, arts)
	// Save the manifest even on a cancelled run: completed cells are
	// valid cache entries, so the next invocation resumes from them.
	// (The on-disk store persists per entry and needs no save step.)
	if manifest != nil && report != nil {
		if serr := manifest.Save(manifestPath); serr != nil {
			fmt.Fprintln(os.Stderr, "experiments:", serr)
		}
	}
	if err != nil {
		stopProfiles()
		die(err)
	}

	fmt.Printf("done: %d artifact(s), %d cell(s) executed, %d cached, in %s at -parallel %d\n",
		len(report.Results), report.Executed, report.CacheHits,
		report.Wall.Round(time.Millisecond), *parallel)
	if report.Failed > 0 {
		for _, res := range report.Results {
			for _, c := range res.Cells {
				if c.Err != nil {
					fmt.Fprintf(os.Stderr, "experiments: %v\n", c.Err)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "experiments: %d cell(s) failed; their rows are missing from the TSVs above\n", report.Failed)
		stopProfiles()
		os.Exit(1)
	}
}

// applyConfig merges -config overrides (a JSON literal, or @path to a
// JSON file) over cfg with the same strict semantics as daemon job
// submissions: unknown fields are rejected.
func applyConfig(cfg *machine.Config, arg string) error {
	raw := []byte(arg)
	if strings.HasPrefix(arg, "@") {
		b, err := os.ReadFile(arg[1:])
		if err != nil {
			return err
		}
		raw = b
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(cfg); err != nil {
		return fmt.Errorf("config overrides: %w", err)
	}
	return nil
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
