// Command experiments regenerates the paper's tables and figures on the
// simulated testbed, writing one TSV per artifact plus a console summary.
//
// Usage:
//
//	experiments [-only table1,fig2,fig6,fig7,fig8,fig9,fig10,fig11,peaks,mitigations]
//	            [-out results] [-quick] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"coherentleak/internal/covert"
	"coherentleak/internal/experiments"
	"coherentleak/internal/machine"
)

type runner struct {
	cfg   machine.Config
	out   string
	seed  uint64
	quick bool
	fails int
}

func main() {
	var (
		only  = flag.String("only", "", "comma-separated artifact list (default: all)")
		out   = flag.String("out", "results", "output directory for TSV files")
		quick = flag.Bool("quick", false, "smaller payloads for a fast pass")
		seed  = flag.Uint64("seed", experiments.DefaultSeed, "experiment seed")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	r := &runner{cfg: machine.DefaultConfig(), out: *out, seed: *seed, quick: *quick}

	all := []string{"table1", "fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "peaks", "mitigations", "capacity"}
	want := all
	if *only != "" {
		want = strings.Split(*only, ",")
	}
	for _, name := range want {
		switch strings.TrimSpace(name) {
		case "table1":
			r.table1()
		case "fig2":
			r.fig2()
		case "fig6":
			r.fig6()
		case "fig7":
			r.fig7()
		case "fig8":
			r.fig8()
		case "fig9":
			r.fig9()
		case "fig10":
			r.fig10()
		case "fig11":
			r.fig11()
		case "peaks":
			r.peaks()
		case "mitigations":
			r.mitigations()
		case "capacity":
			r.capacity()
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown artifact %q\n", name)
			r.fails++
		}
	}
	if r.fails > 0 {
		os.Exit(1)
	}
}

func (r *runner) write(name string, header string, rows []string) {
	path := filepath.Join(r.out, name)
	var b strings.Builder
	b.WriteString(header + "\n")
	for _, row := range rows {
		b.WriteString(row + "\n")
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		r.fails++
		return
	}
	fmt.Printf("wrote %s (%d rows)\n", path, len(rows))
}

func (r *runner) fail(what string, err error) {
	fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", what, err)
	r.fails++
}

func (r *runner) table1() {
	rows := make([]string, 0, 6)
	for _, row := range experiments.TableI() {
		rows = append(rows, fmt.Sprintf("%s\t%s\t%s\t%d\t%d",
			row.Notation, row.CommPlacement, row.BoundPlacement,
			row.LocalThreads, row.RemoteThreads))
	}
	r.write("table1.tsv", "notation\tcomm\tboundary\tlocal_threads\tremote_threads", rows)
}

func (r *runner) fig2() {
	samples := 1000
	if r.quick {
		samples = 200
	}
	series, err := experiments.Fig2LatencyCDF(r.cfg, samples, r.seed)
	if err != nil {
		r.fail("fig2", err)
		return
	}
	var rows []string
	for _, s := range series {
		for _, pt := range s.CDF {
			rows = append(rows, fmt.Sprintf("%s\t%.0f\t%.4f", s.Placement, pt.X, pt.P))
		}
		fmt.Printf("fig2 %-8s mean=%.1f cycles (min %.0f, max %.0f)\n",
			s.Placement, s.Summary.Mean, s.Summary.Min, s.Summary.Max)
	}
	r.write("fig2_cdf.tsv", "placement\tlatency_cycles\tcdf", rows)
}

func (r *runner) fig6() {
	bits := experiments.Fig6Pattern()
	rows := make([]string, len(bits))
	for i, b := range bits {
		rows[i] = fmt.Sprintf("%d\t%d", i, b)
	}
	r.write("fig6_pattern.tsv", "index\tbit", rows)
}

func (r *runner) fig7() {
	var rows []string
	for i, sc := range covert.Scenarios {
		res, err := experiments.Fig7Reception(r.cfg, sc, r.seed+uint64(i)*17)
		if err != nil {
			r.fail("fig7 "+sc.Name(), err)
			return
		}
		for j, s := range res.Samples {
			rows = append(rows, fmt.Sprintf("%s\t%d\t%d\t%s", res.Scenario, j, s.Latency, s.Class))
		}
		fmt.Printf("fig7 %-18s accuracy=%.1f%% rate=%.0f Kbps sync=%.2f us\n",
			res.Scenario, res.Accuracy*100, res.RawKbps,
			r.cfg.CyclesToSeconds(res.SyncCycles)*1e6)
	}
	r.write("fig7_reception.tsv", "scenario\tsample\tlatency_cycles\tclass", rows)
}

func (r *runner) fig8() {
	payload := 1000
	if r.quick {
		payload = 300
	}
	var rows []string
	for _, sc := range covert.Scenarios {
		pts, err := experiments.Fig8RateSweep(r.cfg, sc, experiments.Fig8Targets(), payload, r.seed)
		if err != nil {
			r.fail("fig8 "+sc.Name(), err)
			return
		}
		line := fmt.Sprintf("fig8 %-18s", sc.Name())
		for _, p := range pts {
			rows = append(rows, fmt.Sprintf("%s\t%.0f\t%.1f\t%.4f",
				sc.Name(), p.TargetKbps, p.MeasuredKbps, p.Accuracy))
			line += fmt.Sprintf(" %.0f:%.0f%%", p.TargetKbps, p.Accuracy*100)
		}
		fmt.Println(line)
	}
	r.write("fig8_rate_accuracy.tsv", "scenario\ttarget_kbps\tmeasured_kbps\taccuracy", rows)
}

func (r *runner) fig9() {
	payload := 500
	if r.quick {
		payload = 200
	}
	var rows []string
	for _, sc := range covert.Scenarios {
		pts, err := experiments.Fig9Noise(r.cfg, sc, experiments.Fig9NoiseLevels(), payload, r.seed)
		if err != nil {
			r.fail("fig9 "+sc.Name(), err)
			return
		}
		line := fmt.Sprintf("fig9 %-18s", sc.Name())
		for _, p := range pts {
			rows = append(rows, fmt.Sprintf("%s\t%d\t%.4f\t%.1f",
				p.Scenario, p.NoiseThreads, p.Accuracy, p.MeasuredKbps))
			line += fmt.Sprintf(" n%d:%.0f%%", p.NoiseThreads, p.Accuracy*100)
		}
		fmt.Println(line)
	}
	r.write("fig9_noise_accuracy.tsv", "scenario\tnoise_threads\taccuracy\tmeasured_kbps", rows)
}

func (r *runner) fig10() {
	packets := 3
	if r.quick {
		packets = 1
	}
	var rows []string
	for _, sc := range covert.Scenarios {
		pts, err := experiments.Fig10ECC(r.cfg, sc, experiments.Fig10NoiseLevels(), packets, r.seed)
		if err != nil {
			r.fail("fig10 "+sc.Name(), err)
			return
		}
		line := fmt.Sprintf("fig10 %-18s", sc.Name())
		for _, p := range pts {
			rows = append(rows, fmt.Sprintf("%s\t%d\t%.1f\t%.1f\t%d\t%v",
				p.Scenario, p.NoiseThreads, p.RawKbps, p.EffectiveKbps,
				p.Retransmissions, p.Recovered))
			line += fmt.Sprintf(" n%d:%.0fKbps(rtx %d)", p.NoiseThreads, p.EffectiveKbps, p.Retransmissions)
		}
		fmt.Println(line)
	}
	r.write("fig10_ecc.tsv", "scenario\tnoise_threads\traw_kbps\teffective_kbps\tretransmissions\trecovered", rows)
}

func (r *runner) fig11() {
	extra := 200
	if r.quick {
		extra = 60
	}
	res, err := experiments.Fig11MultiBit(r.cfg, extra, r.seed)
	if err != nil {
		r.fail("fig11", err)
		return
	}
	var rows []string
	for i, s := range res.Samples {
		rows = append(rows, fmt.Sprintf("%d\t%d\t%d", i, s.Latency, res.SymbolTrace[i]))
	}
	fmt.Printf("fig11 multibit accuracy=%.1f%% rate=%.0f Kbps\n", res.Accuracy*100, res.RawKbps)
	r.write("fig11_multibit.tsv", "sample\tlatency_cycles\tsymbol", rows)
}

func (r *runner) peaks() {
	payload := 400
	if r.quick {
		payload = 150
	}
	const minAccuracy = 0.97
	pk, err := experiments.FindPeakRates(r.cfg, minAccuracy, payload, r.seed)
	if err != nil {
		r.fail("peaks", err)
		return
	}
	fmt.Printf("peaks: binary %.0f Kbps (%s), multibit %.0f Kbps at >=%.0f%% accuracy\n",
		pk.BinaryKbps, pk.BinaryName, pk.MultiBitKbps, minAccuracy*100)
	r.write("peaks.tsv", "channel\tkbps\tscenario",
		[]string{
			fmt.Sprintf("binary\t%.1f\t%s", pk.BinaryKbps, pk.BinaryName),
			fmt.Sprintf("multibit\t%.1f\t-", pk.MultiBitKbps),
		})
}

func (r *runner) capacity() {
	payload := 400
	if r.quick {
		payload = 150
	}
	sc := covert.Scenarios[3] // RExclc-LSharedb, the robust pair
	pts, err := experiments.CapacityTable(r.cfg, sc,
		[]float64{300, 700, 1000}, []int{0, 8}, payload, r.seed)
	if err != nil {
		r.fail("capacity", err)
		return
	}
	var rows []string
	for _, p := range pts {
		rows = append(rows, fmt.Sprintf("%s\t%.0f\t%d\t%.1f\t%.4f\t%.4f\t%.4f\t%.1f\t%s",
			p.Scenario, p.TargetKbps, p.NoiseThreads, p.RawKbps,
			p.FlipRate, p.LostRate, p.ExtraRate, p.InfoKbps, p.TCSEC))
		fmt.Printf("capacity %s @%.0f n=%d: info %.0f Kbps (%s)\n",
			p.Scenario, p.TargetKbps, p.NoiseThreads, p.InfoKbps, p.TCSEC)
	}
	r.write("capacity.tsv",
		"scenario\ttarget_kbps\tnoise\traw_kbps\tflip\tlost\textra\tinfo_kbps\ttcsec", rows)
}

func (r *runner) mitigations() {
	payload := 120
	if r.quick {
		payload = 60
	}
	pts, err := experiments.MitigationAblation(r.cfg, payload, r.seed)
	if err != nil {
		r.fail("mitigations", err)
		return
	}
	var rows []string
	for _, p := range pts {
		rows = append(rows, fmt.Sprintf("%s\t%s\t%.4f", p.Scenario, p.Defense, p.Accuracy))
	}
	fmt.Printf("mitigations: %d cells\n", len(pts))
	r.write("mitigations.tsv", "scenario\tdefense\taccuracy", rows)
}
