// Command cohsim-worker is one member of the experiment daemon's
// scale-out fleet: it registers with a running cohsimd, long-polls for
// leased harness cells, executes them against the same deterministic
// simulator (so any worker's result is byte-identical to a local run),
// and reports results or structured failures back.
//
// Usage:
//
//	cohsim-worker [-server http://localhost:8080] [-name NAME]
//	              [-slots 1] [-poll 15s]
//
// Fault semantics: the coordinator covers every leased cell with a
// deadline. If this process crashes or hangs, the lease is reclaimed
// and the cell retried on another worker (or in-process), so killing a
// worker mid-cell never loses work. SIGINT/SIGTERM finishes the cells
// in flight, deregisters, and exits; a worker the daemon has forgotten
// (expiry, daemon restart) transparently re-registers.
//
// Run a fleet of four against a local daemon:
//
//	make run-daemon &
//	make run-workers N=4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"coherentleak/internal/dispatch"
	"coherentleak/internal/experiments"
	"coherentleak/internal/version"
)

func main() {
	var (
		server  = flag.String("server", "http://localhost:8080", "cohsimd base URL")
		name    = flag.String("name", "", "worker name in /v1/workers and SSE events (default host-pid)")
		slots   = flag.Int("slots", 1, "cells executed concurrently")
		poll    = flag.Duration("poll", 0, "long-poll wait per lease request (0 = server suggestion)")
		kern    = flag.String("kernel", "", "force this worker's access-stream kernel: interp or compiled (empty = follow the coordinator)")
		showVer = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("cohsim-worker", version.Get())
		return
	}

	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	w, err := dispatch.NewWorker(dispatch.WorkerOptions{
		Server:   *server,
		Name:     *name,
		Registry: experiments.Artifacts(),
		Slots:    *slots,
		PollWait: *poll,
		Log:      os.Stderr,
		Kernel:   *kern,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cohsim-worker:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	err = w.Run(ctx)
	if err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "cohsim-worker:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "cohsim-worker: %s stopped after %s\n", *name, time.Since(start).Round(time.Second))
}
