// Command cohsimd is the experiment service daemon: a long-lived HTTP
// JSON API over the internal/harness engine. Clients list the artifact
// registry, submit parameterized jobs (artifact list, seed, sizing,
// machine-config overrides) onto a bounded queue, follow per-cell
// progress over Server-Sent Events, and download assembled TSV /
// replay-JSON results. All jobs share one manifest cell-cache, so a
// repeated request is served from cache in milliseconds.
//
// Jobs execute through the worker-fleet dispatch subsystem: start any
// number of cohsim-worker processes pointed at this daemon and cells
// are leased out to them (with timeout-based reclaim and bounded
// retry); with no workers attached, cells run on the in-process pool
// exactly as before. GET /v1/workers lists the fleet.
//
// Usage:
//
//	cohsimd [-addr :8080] [-out results-daemon] [-queue 16] [-jobs 1]
//	        [-parallel N] [-job-timeout 15m] [-max-timeout 2h]
//	        [-cache=true] [-cache-max 50000] [-persist=true] [-dispatch=true]
//	        [-store-dir DIR] [-store-max-bytes N] [-keys keys.json]
//	        [-lease-ttl 90s] [-worker-ttl 270s] [-lease-attempts 3]
//	        [-max-sweeps 2] [-sweep-inflight 4] [-pprof ""] [-version]
//
// -store-dir replaces the manifest snapshot with a crash-safe
// content-addressed on-disk cell store (one file per entry); several
// cohsimd replicas pointed at the same directory share cache hits.
// -keys loads a tenant keys file ({"tenants":[{"name","key","weight",
// "maxInFlight","maxQueuedPoints","sweepBudget"}]}): every job and
// sweep route then requires "Authorization: Bearer <key>", each tenant
// sees only its own work, quotas apply, and jobs drain through a
// weighted fair queue so no tenant can head-of-line-block another.
//
// -pprof serves net/http/pprof on its own listener (e.g. -pprof
// localhost:6060). It is off by default and should stay bound to
// localhost: the profile endpoints are unauthenticated.
//
// Walkthrough:
//
//	cohsimd -addr :8080 &
//	cohsim-worker -server http://localhost:8080 -name w1 &   # optional fleet
//	curl localhost:8080/v1/artifacts
//	curl -X POST localhost:8080/v1/jobs -d '{"artifacts":["table1"],"sizing":"quick"}'
//	curl localhost:8080/v1/jobs/job-000001/events          # SSE progress
//	curl localhost:8080/v1/jobs/job-000001/artifacts/table1.tsv
//	curl localhost:8080/v1/workers                         # fleet state
//
// SIGINT/SIGTERM drains gracefully: no new jobs are admitted, queued
// jobs are shed, in-flight jobs finish (up to -drain-timeout), and the
// manifest is persisted atomically.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"coherentleak/internal/experiments"
	"coherentleak/internal/harness"
	"coherentleak/internal/machine"
	"coherentleak/internal/service"
	"coherentleak/internal/store"
	"coherentleak/internal/tenant"
	"coherentleak/internal/version"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		out          = flag.String("out", "results-daemon", "state directory (manifest + per-job results)")
		queue        = flag.Int("queue", 16, "bounded job queue depth (admission control)")
		jobs         = flag.Int("jobs", 1, "jobs executed concurrently")
		parallel     = flag.Int("parallel", runtime.GOMAXPROCS(0), "max cells in flight per job")
		jobTimeout   = flag.Duration("job-timeout", 15*time.Minute, "default per-job timeout")
		maxTimeout   = flag.Duration("max-timeout", 2*time.Hour, "cap on client-requested timeouts")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "how long shutdown waits for in-flight jobs")
		cache        = flag.Bool("cache", true, "share the manifest cell cache across jobs")
		persist      = flag.Bool("persist", true, "persist manifest and per-job TSVs under -out")
		dispatchOn   = flag.Bool("dispatch", true, "lease cells to attached cohsim-worker processes")
		leaseTTL     = flag.Duration("lease-ttl", 0, "worker cell lease before reclaim (0 = 90s default)")
		workerTTL    = flag.Duration("worker-ttl", 0, "silent-worker expiry (0 = 3x lease TTL)")
		leaseTries   = flag.Int("lease-attempts", 0, "worker attempts per cell before local fallback (0 = 3)")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
		kern         = flag.String("kernel", machine.KernelInterp, "default access-stream kernel for jobs: interp or compiled (per-job `kernel` field overrides)")
		cacheMax     = flag.Int("cache-max", 50000, "max cells kept in the manifest cache, LRU-pruned (0 = unbounded)")
		maxSweeps    = flag.Int("max-sweeps", 2, "sweeps executed concurrently (further sweeps queue)")
		sweepFlight  = flag.Int("sweep-inflight", 0, "concurrent points per sweep (0 = 4)")
		storeDir     = flag.String("store-dir", "", "shared on-disk cell store directory (replaces the manifest cache; replicas sharing it share hits)")
		storeMax     = flag.Int64("store-max-bytes", 0, "size bound on the -store-dir payload, oldest entries evicted (0 = unbounded)")
		keysPath     = flag.String("keys", "", "tenant keys file enabling API-key auth, quotas and fair queueing (empty = anonymous mode)")
		showVersion  = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println("cohsimd", version.Get())
		return
	}

	if *pprofAddr != "" {
		// A dedicated mux on a dedicated listener: the profiling surface is
		// opt-in and never mixed into the public job API.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			fmt.Fprintf(os.Stderr, "cohsimd: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "cohsimd: pprof:", err)
			}
		}()
	}

	base := machine.DefaultConfig()
	base.Kernel = *kern
	if err := base.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "cohsimd:", err)
		os.Exit(1)
	}

	opts := service.Options{
		Registry:            experiments.Artifacts(),
		BaseConfig:          &base,
		QueueDepth:          *queue,
		Executors:           *jobs,
		CellParallel:        *parallel,
		DefaultTimeout:      *jobTimeout,
		MaxTimeout:          *maxTimeout,
		DefaultSeed:         experiments.DefaultSeed,
		DisableDispatch:     !*dispatchOn,
		DispatchLeaseTTL:    *leaseTTL,
		DispatchWorkerTTL:   *workerTTL,
		DispatchMaxAttempts: *leaseTries,
		MaxSweeps:           *maxSweeps,
		SweepInFlight:       *sweepFlight,
		Log:                 os.Stderr,
	}
	if *keysPath != "" {
		reg, err := tenant.Load(*keysPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cohsimd:", err)
			os.Exit(1)
		}
		opts.Tenants = reg
		fmt.Fprintf(os.Stderr, "cohsimd: authentication enabled (%d tenant(s) from %s)\n", len(reg.Tenants()), *keysPath)
	}
	if err := run(opts, *addr, *out, *drainTimeout, *cache, *persist, *cacheMax, *storeDir, *storeMax); err != nil {
		fmt.Fprintln(os.Stderr, "cohsimd:", err)
		os.Exit(1)
	}
}

func run(opts service.Options, addr, out string, drainTimeout time.Duration, cache, persist bool, cacheMax int, storeDir string, storeMax int64) error {
	manifestPath := filepath.Join(out, "manifest.json")
	if persist {
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
		opts.ResultsDir = filepath.Join(out, "jobs")
	}
	switch {
	case storeDir != "":
		// The shared on-disk store persists per entry and is visible to
		// every replica pointed at the directory; the manifest snapshot
		// under -out is not used.
		disk, err := store.NewDisk(storeDir, storeMax)
		if err != nil {
			return err
		}
		opts.Store = disk
		fmt.Fprintf(os.Stderr, "cohsimd: shared cell store at %s (%d entries)\n", storeDir, disk.Len())
	case cache && persist:
		m, err := harness.LoadManifest(manifestPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cohsimd: starting with empty cell cache: %v\n", err)
			m = harness.NewManifest()
		}
		opts.Manifest = m
		opts.ManifestPath = manifestPath
	case cache:
		// In-memory only: Options.Manifest defaults to a fresh manifest
		// shared across jobs for the daemon's lifetime.
	default:
		opts.DisableCache = true
	}
	if opts.Store == nil {
		if opts.Manifest != nil && cacheMax > 0 {
			opts.Manifest.SetLimit(cacheMax)
		} else if !opts.DisableCache && cacheMax > 0 {
			m := harness.NewManifest()
			m.SetLimit(cacheMax)
			opts.Manifest = m
		}
	}

	svc, err := service.New(opts)
	if err != nil {
		return err
	}

	server := &http.Server{Addr: addr, Handler: svc.Handler()}
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "cohsimd: listening on %s (queue %d, %d executor(s), %d cells in flight, dispatch %v)\n",
			addr, opts.QueueDepth, opts.Executors, opts.CellParallel, !opts.DisableDispatch)
		if err := server.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "cohsimd: draining (in-flight jobs finish, queued jobs shed)")

	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Drain the job queue first — while it drains, HTTP keeps answering
	// (healthz reports 503, submits are refused, SSE streams end as jobs
	// reach terminal states) — then close the listener.
	svcErr := svc.Shutdown(drainCtx)
	httpErr := server.Shutdown(drainCtx)
	fmt.Fprintln(os.Stderr, "cohsimd: stopped")
	return errors.Join(svcErr, httpErr)
}
