// Command cohsim inspects the simulated testbed: it prints the machine
// configuration and the calibrated latency band for every (location,
// coherence state) combination pair — the §V micro-benchmark.
//
// Usage:
//
//	cohsim [-sockets N] [-cores N] [-protocol NAME] [-protocols]
//	       [-replacement NAME] [-replacements]
//	       [-samples N] [-seed N] [-mitigate-etom] [-mitigate-equalize]
//
// -protocol accepts any name in the coherence registry (MESI, MESIF,
// MOESI, DRAGON, WT-NA out of the box); -protocols lists them.
// -replacement accepts any name in the cache replacement-policy
// registry (LRU, tree-PLRU, SRRIP, BRRIP); -replacements lists them.
package main

import (
	"flag"
	"fmt"
	"os"

	"coherentleak/internal/cache"
	"coherentleak/internal/coherence"
	"coherentleak/internal/covert"
	"coherentleak/internal/machine"
	"coherentleak/internal/stats"
	"coherentleak/internal/version"
)

func main() {
	var (
		sockets   = flag.Int("sockets", 2, "processor sockets")
		cores     = flag.Int("cores", 6, "cores per socket")
		protocol  = flag.String("protocol", "MESIF", "coherence protocol (see -protocols)")
		listProto = flag.Bool("protocols", false, "list registered coherence protocols and exit")
		replace   = flag.String("replacement", "", "cache replacement policy (see -replacements; default LRU)")
		listRepl  = flag.Bool("replacements", false, "list registered replacement policies and exit")
		samples   = flag.Int("samples", 1000, "timed loads per combination pair")
		seed      = flag.Uint64("seed", 42, "simulation seed")
		etom      = flag.Bool("mitigate-etom", false, "enable the E->M notification hardware fix")
		equalize  = flag.Bool("mitigate-equalize", false, "enable socket latency equalization")
		showVer   = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("cohsim", version.Get())
		return
	}

	if *listProto {
		for _, p := range coherence.Protocols() {
			spec := coherence.MustSpec(p)
			fmt.Printf("%-8s %s\n", spec.Name(), spec.Description())
		}
		return
	}

	if *listRepl {
		for _, info := range cache.Policies() {
			fmt.Printf("%-10s %s\n", info.Name, info.Description)
		}
		return
	}

	cfg := machine.DefaultConfig()
	cfg.Sockets = *sockets
	cfg.CoresPerSocket = *cores
	spec, err := coherence.SpecFor(coherence.Protocol(*protocol))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cohsim:", err)
		os.Exit(2)
	}
	cfg.Protocol = coherence.Protocol(spec.Name())
	pol, err := cache.PolicyFor(*replace)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cohsim:", err)
		os.Exit(2)
	}
	cfg.Replacement = pol.String()
	cfg.Mitigations.LLCNotifiedOfEToM = *etom
	cfg.Mitigations.EqualizeSocketLatency = *equalize
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "cohsim:", err)
		os.Exit(2)
	}

	fmt.Printf("machine: %d socket(s) x %d cores, %s, %.2f GHz\n",
		cfg.Sockets, cfg.CoresPerSocket, cfg.Protocol, cfg.ClockHz/1e9)
	fmt.Printf("caches:  L1 %dKB/%dw  L2 %dKB/%dw  LLC %dMB/%dw (inclusive=%v)\n",
		cfg.L1.SizeBytes/1024, cfg.L1.Ways,
		cfg.L2.SizeBytes/1024, cfg.L2.Ways,
		cfg.LLC.SizeBytes/(1024*1024), cfg.LLC.Ways, cfg.InclusiveLLC)
	fmt.Printf("policy:  %s replacement\n", cfg.ReplacementPolicy())
	if *etom || *equalize {
		fmt.Printf("defenses: etom=%v equalize=%v\n", *etom, *equalize)
	}
	fmt.Println()
	fmt.Println("combination pair   mean    p5     p95    band")

	placements := covert.AllPlacements
	if cfg.Sockets < 2 {
		placements = []covert.Placement{covert.LShared, covert.LExcl}
	}
	for i, pl := range placements {
		xs, err := covert.MeasurePlacement(cfg, *seed+uint64(i)*7, pl, *samples, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cohsim:", err)
			os.Exit(1)
		}
		printBand(pl.String(), xs)
	}
	xs, err := covert.MeasureDRAM(cfg, *seed+991, *samples, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cohsim:", err)
		os.Exit(1)
	}
	printBand("DRAM", xs)
}

func printBand(name string, xs []float64) {
	s := stats.Summarize(xs)
	fmt.Printf("%-18s %6.1f %6.1f %6.1f  [%.0f..%.0f] cycles\n",
		name, s.Mean, s.P5, s.P95, s.Min, s.Max)
}
