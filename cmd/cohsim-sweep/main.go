// Command cohsim-sweep submits a parameter sweep to a cohsimd daemon,
// follows its Server-Sent Events stream (point completions, admission
// backoffs, frontier updates), and writes the final ranked frontier as
// a TSV. The frontier bytes are deterministic for a fixed spec + seed,
// no matter how the daemon scheduled the points.
//
// The sweep is specified either as a JSON file (-spec sweep.json, or
// "-spec -" for stdin) with the same schema as POST /v1/sweeps, or
// assembled from flags:
//
//	cohsim-sweep -server http://localhost:8080 \
//	    -artifacts capacity -sizing quick \
//	    -axis 'Latencies.QPI=40,60,80' -axis 'seed=1..8:8' \
//	    -objective 'capacity:info_kbps:max:max' -filter noise=8 \
//	    -topk 10 -out results
//
// Each -axis is either an explicit value list ("Param=v1,v2,...") or a
// numeric range ("Param=min..max:steps"). The special param "seed"
// sweeps the experiment seed. -objective is
// "artifact:column[:aggregate[:direction]]".
//
// The stream reconnects with Last-Event-ID on drops (including
// slow-subscriber eviction), so progress output survives hiccups. Exit
// status is 0 only when the sweep completes with every point scored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"coherentleak/internal/sweep"
	"coherentleak/internal/version"
)

// axisFlags collects repeatable -axis arguments.
type axisFlags []sweep.Axis

func (a *axisFlags) String() string { return fmt.Sprint(len(*a)) }

func (a *axisFlags) Set(v string) error {
	ax, err := parseAxis(v)
	if err != nil {
		return err
	}
	*a = append(*a, ax)
	return nil
}

// filterFlags collects repeatable -filter col=val arguments.
type filterFlags map[string]string

func (f filterFlags) String() string { return fmt.Sprint(len(f)) }

func (f filterFlags) Set(v string) error {
	col, val, ok := strings.Cut(v, "=")
	if !ok || col == "" {
		return fmt.Errorf("want col=value, got %q", v)
	}
	f[col] = val
	return nil
}

// parseAxis turns "Param=v1,v2" or "Param=min..max:steps" into an Axis.
func parseAxis(arg string) (sweep.Axis, error) {
	var ax sweep.Axis
	param, rest, ok := strings.Cut(arg, "=")
	if !ok || param == "" || rest == "" {
		return ax, fmt.Errorf("want Param=v1,v2,... or Param=min..max:steps, got %q", arg)
	}
	ax.Param = param
	if lo, hi, isRange := strings.Cut(rest, ".."); isRange && !strings.Contains(rest, ",") {
		hiPart, stepsPart, okSteps := strings.Cut(hi, ":")
		if !okSteps {
			return ax, fmt.Errorf("axis %s: range needs :steps (min..max:steps)", param)
		}
		minV, err1 := strconv.ParseFloat(lo, 64)
		maxV, err2 := strconv.ParseFloat(hiPart, 64)
		steps, err3 := strconv.Atoi(stepsPart)
		if err1 != nil || err2 != nil || err3 != nil {
			return ax, fmt.Errorf("axis %s: bad range %q", param, rest)
		}
		ax.Min, ax.Max, ax.Steps = &minV, &maxV, steps
		ax.Ints = minV == float64(int64(minV)) && maxV == float64(int64(maxV))
		return ax, nil
	}
	for _, tok := range strings.Split(rest, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			return ax, fmt.Errorf("axis %s: empty value", param)
		}
		if json.Valid([]byte(tok)) {
			ax.Values = append(ax.Values, json.RawMessage(tok))
		} else {
			// Bare words become JSON strings (e.g. Protocol=MESI,MESIF).
			q, _ := json.Marshal(tok)
			ax.Values = append(ax.Values, json.RawMessage(q))
		}
	}
	return ax, nil
}

// parseObjective turns "artifact:column[:aggregate[:direction]]" into a
// spec.
func parseObjective(arg string) (sweep.ObjectiveSpec, error) {
	var o sweep.ObjectiveSpec
	parts := strings.Split(arg, ":")
	if len(parts) < 2 || len(parts) > 4 || parts[0] == "" || parts[1] == "" {
		return o, fmt.Errorf("want artifact:column[:aggregate[:direction]], got %q", arg)
	}
	o.Artifact, o.Column = parts[0], parts[1]
	if len(parts) > 2 {
		o.Aggregate = parts[2]
	}
	if len(parts) > 3 {
		o.Direction = parts[3]
	}
	return o, nil
}

func main() {
	var (
		server    = flag.String("server", "http://localhost:8080", "cohsimd base URL")
		specPath  = flag.String("spec", "", "sweep spec JSON file (\"-\" = stdin); overrides the spec-building flags")
		name      = flag.String("name", "", "sweep name (used in the output filename)")
		artifacts = flag.String("artifacts", "", "comma-separated artifact list (empty = all)")
		sizing    = flag.String("sizing", "quick", "quick or full")
		seed      = flag.Uint64("seed", 0, "base experiment seed (0 = daemon default; a seed axis overrides)")
		kern      = flag.String("kernel", "", "access-stream kernel override (empty = daemon default)")
		strategy  = flag.String("strategy", "", "grid (default) or random")
		samples   = flag.Int("samples", 0, "points to draw with -strategy random")
		maxPoints = flag.Int("max-points", 0, "hard point budget (0 = engine default)")
		topk      = flag.Int("topk", 0, "frontier size (0 = keep every scored point)")
		objArg    = flag.String("objective", "", "artifact:column[:aggregate[:direction]]")
		outDir    = flag.String("out", "results", "directory for the frontier TSV")
		follow    = flag.Bool("follow", true, "stream progress while the sweep runs")
		timeout   = flag.Duration("timeout", 2*time.Hour, "give up waiting for the sweep after this long")
		showVer   = flag.Bool("version", false, "print build identity and exit")
	)
	axes := axisFlags{}
	filter := filterFlags{}
	flag.Var(&axes, "axis", "axis values: Param=v1,v2,... or Param=min..max:steps (repeatable)")
	flag.Var(filter, "filter", "objective row filter col=value (repeatable)")
	flag.Parse()
	if *showVer {
		fmt.Println("cohsim-sweep", version.Get())
		return
	}

	spec, err := buildSpec(*specPath, *name, *artifacts, *sizing, *seed, *kern,
		*strategy, *samples, *maxPoints, *topk, *objArg, axes, filter)
	if err != nil {
		die(err)
	}

	id, err := submit(*server, spec)
	if err != nil {
		die(err)
	}
	fmt.Printf("submitted %s\n", id)

	if *follow {
		if err := followEvents(*server, id, *timeout); err != nil {
			die(err)
		}
	}
	state, errMsg, err := waitTerminal(*server, id, *timeout)
	if err != nil {
		die(err)
	}

	tsv, err := fetchFrontier(*server, id)
	if err != nil {
		die(err)
	}
	stem := spec.Name
	if stem == "" {
		stem = id
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		die(err)
	}
	path := filepath.Join(*outDir, "sweep_"+stem+".tsv")
	if err := os.WriteFile(path, tsv, 0o644); err != nil {
		die(err)
	}
	fmt.Printf("%s %s: frontier written to %s\n", id, state, path)
	if state != "done" {
		fmt.Fprintf(os.Stderr, "cohsim-sweep: sweep %s%s\n", state, suffix(errMsg))
		os.Exit(1)
	}
}

func buildSpec(path, name, artifacts, sizing string, seed uint64, kern, strategy string, samples, maxPoints, topk int, objArg string, axes axisFlags, filter filterFlags) (sweep.Spec, error) {
	var spec sweep.Spec
	if path != "" {
		var r io.Reader = os.Stdin
		if path != "-" {
			f, err := os.Open(path)
			if err != nil {
				return spec, err
			}
			defer f.Close()
			r = f
		}
		dec := json.NewDecoder(r)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return spec, fmt.Errorf("spec: %w", err)
		}
		return spec, nil
	}
	if len(axes) == 0 {
		return spec, fmt.Errorf("need -spec or at least one -axis")
	}
	if objArg == "" {
		return spec, fmt.Errorf("need -objective artifact:column[:aggregate[:direction]]")
	}
	obj, err := parseObjective(objArg)
	if err != nil {
		return spec, err
	}
	if len(filter) > 0 {
		obj.Filter = filter
	}
	spec = sweep.Spec{
		Name:      name,
		Sizing:    sizing,
		Kernel:    kern,
		Axes:      axes,
		Strategy:  strategy,
		Samples:   samples,
		MaxPoints: maxPoints,
		TopK:      topk,
		Objective: obj,
	}
	if artifacts != "" {
		spec.Artifacts = strings.Split(artifacts, ",")
	}
	if seed != 0 {
		s := seed
		spec.Seed = &s
	}
	return spec, nil
}

func submit(server string, spec sweep.Spec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	resp, err := http.Post(server+"/v1/sweeps", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(b)))
	}
	var v struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return "", err
	}
	return v.ID, nil
}

// sweepEvent mirrors the daemon's SweepEvent wire shape (the fields the
// CLI renders).
type sweepEvent struct {
	Seq   int    `json:"seq"`
	Type  string `json:"type"`
	State string `json:"state"`
	Error string `json:"error"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Point *struct {
		Index  int     `json:"index"`
		JobID  string  `json:"jobId"`
		Score  float64 `json:"score"`
		Scored bool    `json:"scored"`
		Error  string  `json:"error"`
		Params []struct {
			Param string `json:"param"`
			Value string `json:"value"`
		} `json:"params"`
		RetryAfterSeconds float64 `json:"retryAfterSeconds"`
		Cells             struct {
			Cached int `json:"cached"`
			Total  int `json:"total"`
		} `json:"cells"`
	} `json:"point"`
	Frontier []struct {
		Rank  int     `json:"rank"`
		Point int     `json:"point"`
		Score float64 `json:"score"`
	} `json:"frontier"`
}

// followEvents streams the sweep's SSE feed until the terminal state
// event, reconnecting with Last-Event-ID when the connection drops.
func followEvents(server, id string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	lastID := -1
	for time.Now().Before(deadline) {
		terminal, err := streamOnce(server, id, &lastID)
		if terminal {
			return nil
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "cohsim-sweep: stream dropped (%v), reconnecting from event %d\n", err, lastID)
		}
		time.Sleep(500 * time.Millisecond)
	}
	return fmt.Errorf("timed out after %s following %s", timeout, id)
}

func streamOnce(server, id string, lastID *int) (terminal bool, err error) {
	req, err := http.NewRequest("GET", server+"/v1/sweeps/"+id+"/events", nil)
	if err != nil {
		return false, err
	}
	if *lastID >= 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(*lastID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("events: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			data = line[len("data: "):]
		case line == "" && data != "":
			var ev sweepEvent
			if err := json.Unmarshal([]byte(data), &ev); err == nil {
				*lastID = ev.Seq
				if render(ev) {
					return true, nil
				}
			}
			data = ""
		}
	}
	return false, sc.Err()
}

// render prints one event and reports whether it ended the stream.
func render(ev sweepEvent) bool {
	switch ev.Type {
	case "state":
		fmt.Printf("state: %s%s\n", ev.State, suffix(ev.Error))
		return ev.State == "done" || ev.State == "failed" || ev.State == "cancelled"
	case "point":
		p := ev.Point
		if p == nil {
			return false
		}
		var params []string
		for _, pv := range p.Params {
			params = append(params, pv.Param+"="+pv.Value)
		}
		status := fmt.Sprintf("score=%g", p.Score)
		if !p.Scored {
			status = "FAILED " + p.Error
		}
		fmt.Printf("point %d/%d #%d [%s] %s (%s, %d/%d cells cached)\n",
			ev.Done, ev.Total, p.Index, strings.Join(params, " "), status, p.JobID, p.Cells.Cached, p.Cells.Total)
	case "backoff":
		if ev.Point != nil {
			fmt.Printf("point #%d backing off %gs (queue full)\n", ev.Point.Index, ev.Point.RetryAfterSeconds)
		}
	case "frontier":
		if len(ev.Frontier) > 0 {
			top := ev.Frontier[0]
			fmt.Printf("frontier: best point #%d score=%g (%d ranked)\n", top.Point, top.Score, len(ev.Frontier))
		}
	}
	return false
}

// waitTerminal polls the sweep view until it reaches a terminal state
// (a fallback when -follow=false or the stream misses the ending).
func waitTerminal(server, id string, timeout time.Duration) (state, errMsg string, err error) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(server + "/v1/sweeps/" + id)
		if err != nil {
			return "", "", err
		}
		var v struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if derr != nil {
			return "", "", derr
		}
		switch v.State {
		case "done", "failed", "cancelled":
			return v.State, v.Error, nil
		}
		if time.Now().After(deadline) {
			return "", "", fmt.Errorf("timed out after %s waiting for %s", timeout, id)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

func fetchFrontier(server, id string) ([]byte, error) {
	resp, err := http.Get(server + "/v1/sweeps/" + id + "/frontier.tsv")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("frontier: %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

func suffix(msg string) string {
	if msg == "" {
		return ""
	}
	return ": " + msg
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "cohsim-sweep:", err)
	os.Exit(1)
}
