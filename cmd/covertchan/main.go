// Command covertchan runs one covert-channel transmission end to end and
// reports the spy's reception quality.
//
// Usage:
//
//	covertchan [-scenario RExclc-LSharedb] [-text "message" | -bits N]
//	           [-rate KBPS] [-mode ksm|explicit] [-noise N] [-multibit]
//	           [-defense none|monitor|ksm-guard|etom|equalize|full]
//	           [-seed N] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"coherentleak/internal/capacity"
	"coherentleak/internal/covert"
	"coherentleak/internal/machine"
	"coherentleak/internal/mitigate"
	"coherentleak/internal/noise"
	"coherentleak/internal/replay"
	"coherentleak/internal/sim"
	"coherentleak/internal/trace"
)

func main() {
	var (
		scenario  = flag.String("scenario", "LExclc-LSharedb", "Table I scenario name")
		text      = flag.String("text", "coherence states leak", "message to transmit")
		bitCount  = flag.Int("bits", 0, "transmit N pseudo-random bits instead of -text")
		rate      = flag.Float64("rate", 0, "target raw bit rate in Kbps (0 = reliable default)")
		mode      = flag.String("mode", "ksm", "shared page mode: ksm or explicit")
		noiseN    = flag.Int("noise", 0, "co-located kernel-build threads")
		multibit  = flag.Bool("multibit", false, "use the 2-bit-symbol channel (§VIII-D)")
		lanes     = flag.Int("lanes", 1, "parallel cache-line lanes (extension; 1 = the paper's channel)")
		probe     = flag.String("probe", "clflush", "spy probe: clflush or eviction (§VI-B)")
		defense   = flag.String("defense", "none", "defense: none, monitor, ksm-guard, etom, equalize, full")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		verbose   = flag.Bool("v", false, "print the spy's reception trace")
		traceFile = flag.String("tracefile", "", "write the machine's memory-operation trace (TSV)")
		saveFile  = flag.String("save", "", "archive the transmission result as JSON (replay schema)")
	)
	flag.Parse()

	cfg := machine.DefaultConfig()
	switch *defense {
	case "none", "monitor", "ksm-guard":
	case "etom":
		cfg = mitigate.HardwareFix(cfg)
	case "equalize":
		cfg = mitigate.TimingObfuscator(cfg)
	case "full":
		cfg = mitigate.FullHardwareDefense(cfg)
	default:
		fail(fmt.Errorf("unknown defense %q", *defense))
	}

	shareMode := covert.ShareKSM
	if *mode == "explicit" {
		shareMode = covert.ShareExplicit
	} else if *mode != "ksm" {
		fail(fmt.Errorf("unknown mode %q", *mode))
	}

	var recorder *trace.Recorder
	preRun := func(s *covert.Session) {
		if *traceFile != "" {
			recorder = trace.Attach(s.Mach, 65536, trace.NewFilter())
		}
		if *noiseN > 0 {
			if _, err := noise.Attach(s.Kern, noise.DefaultConfig(*noiseN)); err != nil {
				fail(err)
			}
			s.OSNoiseProb = noise.CoLocationPressure(s.Kern, *noiseN)
		}
		switch *defense {
		case "monitor":
			mitigate.AttachMonitor(s.Kern, mitigate.DefaultMonitorConfig(), mitigate.AttackLines(s))
		case "ksm-guard":
			mitigate.AttachKSMGuard(s.Kern, mitigate.DefaultKSMGuardConfig())
		}
	}

	bits := covert.TextToBits(*text)
	if *bitCount > 0 {
		bits = patternBits(*seed^0xb175, *bitCount)
	}

	if *multibit {
		runMultiBit(cfg, bits, shareMode, *seed, preRun, *verbose)
		return
	}

	sc, err := covert.ScenarioByName(*scenario)
	if err != nil {
		fail(err)
	}
	params := covert.DefaultParams()
	if *rate > 0 {
		params = covert.ParamsForRate(cfg, sc, *rate)
	}
	switch *probe {
	case "clflush":
	case "eviction":
		params.Probe = covert.ProbeEviction
	default:
		fail(fmt.Errorf("unknown probe %q", *probe))
	}
	if *lanes > 1 {
		runParallel(cfg, sc, params, bits, shareMode, *seed, *lanes, preRun)
		return
	}
	ch := &covert.Channel{
		Config:      cfg,
		Scenario:    sc,
		Params:      params,
		Mode:        shareMode,
		WorldSeed:   *seed,
		PatternSeed: *seed ^ 0xfeed,
		PreRun:      preRun,
	}
	res, err := ch.Run(bits)
	if err != nil {
		fail(err)
	}

	fmt.Printf("scenario:      %s (%s sharing)\n", sc.Name(), shareMode)
	fmt.Printf("params:        C1=%d C0=%d Cb=%d Ts=%d\n", params.C1, params.C0, params.Cb, params.Ts)
	fmt.Printf("transmitted:   %d bits\n", len(res.TxBits))
	fmt.Printf("received:      %d bits\n", len(res.RxBits))
	fmt.Printf("raw accuracy:  %.2f%%\n", res.Accuracy*100)
	fmt.Printf("raw bit rate:  %.1f Kbps (attempted %.1f)\n", res.RawKbps, res.AttemptedKbps)
	fmt.Printf("sync:          %d cycles (%.2f us)\n", res.SyncCycles,
		cfg.CyclesToSeconds(res.SyncCycles)*1e6)
	rep := capacity.Analyze(res.TxBits, res.RxBits, res.RawKbps)
	fmt.Printf("capacity:      %s\n", rep)
	if *bitCount == 0 {
		fmt.Printf("decoded text:  %q\n", covert.BitsToText(res.RxBits))
	}
	if *verbose {
		dumpTrace(res.Samples)
	}
	writeTrace(recorder, *traceFile)
	if *saveFile != "" {
		f, err := os.Create(*saveFile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := replay.Save(f, replay.FromResult(res, true)); err != nil {
			fail(err)
		}
		fmt.Printf("archived:      %s\n", *saveFile)
	}
}

// writeTrace dumps a recorder's events and its flush+reload ranking.
func writeTrace(r *trace.Recorder, path string) {
	if r == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := r.WriteTSV(f); err != nil {
		fail(err)
	}
	fmt.Printf("trace:         %d events -> %s\n", r.Len(), path)
	top := r.ByLine()
	if len(top) > 0 && top[0].FlushLoadPairs > 0 {
		fmt.Printf("most probed:   line %#x (%d flush+reload pairs)\n",
			top[0].Line, top[0].FlushLoadPairs)
	}
}

func runParallel(cfg machine.Config, sc covert.Scenario, params covert.Params, bits []byte, mode covert.SharingMode, seed uint64, lanes int, preRun func(*covert.Session)) {
	ch := &covert.ParallelChannel{
		Config: cfg, Scenario: sc, Params: params, Lanes: lanes,
		Mode: mode, WorldSeed: seed, PatternSeed: seed ^ 0xfeed, PreRun: preRun,
	}
	res, err := ch.Run(bits)
	if err != nil {
		fail(err)
	}
	fmt.Printf("channel:       %d parallel lanes of %s\n", lanes, sc.Name())
	fmt.Printf("transmitted:   %d bits\n", len(res.TxBits))
	fmt.Printf("received:      %d bits\n", len(res.RxBits))
	fmt.Printf("raw accuracy:  %.2f%%\n", res.Accuracy*100)
	fmt.Printf("raw bit rate:  %.1f Kbps\n", res.RawKbps)
}

func runMultiBit(cfg machine.Config, bits []byte, mode covert.SharingMode, seed uint64, preRun func(*covert.Session), verbose bool) {
	if len(bits)%2 != 0 {
		bits = append(bits, 0)
	}
	ch := &covert.MultiBitChannel{
		Config:      cfg,
		Params:      covert.DefaultMultiBitParams(),
		Mode:        mode,
		WorldSeed:   seed,
		PatternSeed: seed ^ 0xfeed,
		PreRun:      preRun,
	}
	res, err := ch.Run(bits)
	if err != nil {
		fail(err)
	}
	fmt.Printf("channel:       2-bit symbols over 4 combination pairs\n")
	fmt.Printf("transmitted:   %d bits (%d symbols)\n", len(res.TxBits), len(res.TxSymbols))
	fmt.Printf("received:      %d bits\n", len(res.RxBits))
	fmt.Printf("raw accuracy:  %.2f%%\n", res.Accuracy*100)
	fmt.Printf("raw bit rate:  %.1f Kbps\n", res.RawKbps)
	if verbose {
		dumpTrace(res.Samples)
	}
}

func dumpTrace(samples []covert.Sample) {
	fmt.Println("\nreception trace (latency cycles):")
	for i, s := range samples {
		fmt.Printf("%5d", s.Latency)
		if (i+1)%16 == 0 {
			fmt.Println()
		}
	}
	fmt.Println()
}

func patternBits(seed uint64, n int) []byte {
	r := sim.NewRand(seed)
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(r.Uint64() & 1)
	}
	return bits
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "covertchan:", err)
	os.Exit(1)
}
