// Command benchgate is the CI gate for the compiled access-stream
// kernel's performance contract. It reads `go test -bench` output on
// stdin, pairs every BenchmarkArtifact/<name>/interp result with its
// /compiled sibling, and fails (exit 1) when the compiled kernel's
// aggregate time exceeds the interpreted reference by more than
// -max-regress (default 10%).
//
// The comparison is same-run, same-machine: both kernels execute inside
// one `go test -bench` invocation, so the gate is insensitive to runner
// speed and only measures the relative split between the two paths.
// The interpreted kernel is the semantics reference; the compiled
// kernel exists to be faster, so "compiled > 1.1x interp" means the
// batching/fusion machinery is a net loss and the gate should trip.
//
// Usage:
//
//	go test -bench=BenchmarkArtifact -benchtime=1x -run='^$' . | go run ./cmd/benchgate
//	go run ./cmd/benchgate -max-regress 0.10 < bench.txt
//
// Per-artifact ratios are printed for diagnosis but the gate itself is
// aggregate-only: with -benchtime=1x a single small artifact's timing
// is noisy, while the sum over the registry is dominated by the long
// cells and stable enough to gate on.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	maxRegress := flag.Float64("max-regress", 0.10, "allowed compiled-vs-interp aggregate slowdown (0.10 = 10%)")
	flag.Parse()

	interp, compiled, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	if len(interp) == 0 || len(compiled) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no BenchmarkArtifact/<name>/{interp,compiled} pairs on stdin")
		os.Exit(1)
	}

	names := make([]string, 0, len(interp))
	for name := range interp {
		if _, ok := compiled[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no artifact has both interp and compiled results")
		os.Exit(1)
	}

	var sumI, sumC float64
	fmt.Printf("%-16s %14s %14s %8s\n", "artifact", "interp ns/op", "compiled ns/op", "ratio")
	for _, name := range names {
		i, c := interp[name], compiled[name]
		sumI += i
		sumC += c
		fmt.Printf("%-16s %14.0f %14.0f %8.3f\n", name, i, c, c/i)
	}
	ratio := sumC / sumI
	fmt.Printf("%-16s %14.0f %14.0f %8.3f\n", "TOTAL", sumI, sumC, ratio)

	limit := 1 + *maxRegress
	if ratio > limit {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — compiled kernel aggregate is %.1f%% of interp (limit %.0f%%)\n",
			ratio*100, limit*100)
		os.Exit(1)
	}
	fmt.Printf("benchgate: OK — compiled kernel aggregate is %.1f%% of interp (limit %.0f%%)\n",
		ratio*100, limit*100)
}

// parse extracts ns/op keyed by artifact name for the interp and
// compiled kernel variants of BenchmarkArtifact. Repeated results for
// the same sub-benchmark (e.g. -count>1) are averaged.
func parse(f *os.File) (interp, compiled map[string]float64, err error) {
	interp = map[string]float64{}
	compiled = map[string]float64{}
	counts := map[string]int{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "BenchmarkArtifact/") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkArtifact/<name>/<kernel>-<procs>  <iters>  <ns> ns/op  ...
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		ns, perr := strconv.ParseFloat(fields[2], 64)
		if perr != nil {
			continue
		}
		parts := strings.Split(fields[0], "/")
		if len(parts) != 3 {
			continue
		}
		name := parts[1]
		kern := parts[2]
		if i := strings.LastIndexByte(kern, '-'); i >= 0 {
			kern = kern[:i] // strip the -<GOMAXPROCS> suffix
		}
		var m map[string]float64
		switch kern {
		case "interp":
			m = interp
		case "compiled":
			m = compiled
		default:
			continue
		}
		key := name + "/" + kern
		counts[key]++
		m[name] += (ns - m[name]) / float64(counts[key])
	}
	return interp, compiled, sc.Err()
}
