// Command loadgen is the capacity harness for a running cohsimd: it
// replays job mixes (hot cached, cold sweep-like, config-override long
// tail) from N concurrent tenants, reports per-tenant throughput,
// latency percentiles, 429 rates and cache-hit ratios, and sweeps a
// list of concurrency levels into a jobs/sec-vs-concurrency curve.
//
// Usage:
//
//	loadgen -server http://localhost:8080 \
//	        -tenants 'alice=alice-key-123456=hot,bob=bob-key-1234567=cold' \
//	        -concurrency 1,2,4,8 -duration 10s \
//	        [-artifact table1] [-sizing quick] [-out BENCH_9.json]
//
// Each -tenants element is name=key=mix[=seed]; key may be empty for a
// daemon running in anonymous mode (no -keys file). Mixes: hot (one
// fixed job resubmitted — the all-cached best case), cold (fresh seed
// per job — every cell executes), longtail (fixed seed, cycling
// machine-config overrides). Distinct hot tenants should use distinct
// seeds so their working sets do not collide; seed defaults to the
// tenant's index.
//
// The JSON written to -out has one entry per concurrency level with the
// aggregate jobs/sec and the full per-tenant breakdown; -out "" prints
// to stdout only.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"coherentleak/internal/loadgen"
	"coherentleak/internal/version"
)

// benchDoc is the BENCH_9.json shape: the capacity curve of one server.
type benchDoc struct {
	Bench    string       `json:"bench"`
	Version  string       `json:"version"`
	Server   string       `json:"server"`
	Artifact string       `json:"artifact"`
	Sizing   string       `json:"sizing"`
	Duration string       `json:"durationPerLevel"`
	Tenants  []tenantSpec `json:"tenants"`
	Levels   []levelDoc   `json:"levels"`
}

type tenantSpec struct {
	Name string      `json:"name"`
	Mix  loadgen.Mix `json:"mix"`
	Seed uint64      `json:"seed"`
}

type levelDoc struct {
	Concurrency int                    `json:"concurrency"`
	JobsPerSec  float64                `json:"jobsPerSec"`
	Tenants     []loadgen.TenantReport `json:"tenants"`
}

func main() {
	var (
		server      = flag.String("server", "http://localhost:8080", "cohsimd base URL")
		tenantsCSV  = flag.String("tenants", "anonymous==hot", "comma-separated name=key=mix[=seed] tenant specs")
		concCSV     = flag.String("concurrency", "1,2,4", "comma-separated closed-loop workers per tenant, one run per level")
		duration    = flag.Duration("duration", 10*time.Second, "measured duration per concurrency level")
		artifact    = flag.String("artifact", "table1", "artifact submitted by every job")
		sizing      = flag.String("sizing", "quick", "sizing submitted by every job")
		outPath     = flag.String("out", "BENCH_9.json", "write the capacity curve here (empty = stdout only)")
		showVersion = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println("loadgen", version.Get())
		return
	}

	tenants, err := parseTenants(*tenantsCSV)
	if err != nil {
		fatal(err)
	}
	levels, err := parseLevels(*concCSV)
	if err != nil {
		fatal(err)
	}

	doc := benchDoc{
		Bench:    "loadgen-capacity",
		Version:  version.Get().String(),
		Server:   *server,
		Artifact: *artifact,
		Sizing:   *sizing,
		Duration: duration.String(),
	}
	for _, tn := range tenants {
		doc.Tenants = append(doc.Tenants, tenantSpec{Name: tn.Name, Mix: tn.Mix, Seed: tn.Seed})
	}

	for li, conc := range levels {
		// Each level gets a disjoint cold-seed range: without this, a cold
		// tenant's level-2 jobs would re-hit the cells its level-1 jobs
		// stored, and "cold" would quietly stop measuring executions.
		run := make([]loadgen.Tenant, len(tenants))
		for i, tn := range tenants {
			if tn.Mix == loadgen.MixCold {
				tn.Seed += uint64(li) * 1_000_000
			}
			run[i] = tn
		}
		fmt.Fprintf(os.Stderr, "loadgen: %d tenant(s) x %d worker(s) for %s against %s\n",
			len(tenants), conc, *duration, *server)
		rep, err := loadgen.Run(context.Background(), loadgen.Options{
			BaseURL:     *server,
			Tenants:     run,
			Concurrency: conc,
			Duration:    *duration,
			Artifact:    *artifact,
			Sizing:      *sizing,
		})
		if err != nil {
			fatal(err)
		}
		doc.Levels = append(doc.Levels, levelDoc{
			Concurrency: conc,
			JobsPerSec:  rep.JobsPerSec,
			Tenants:     rep.Tenants,
		})
		for _, tr := range rep.Tenants {
			fmt.Fprintf(os.Stderr, "loadgen:   %-12s %-8s %6.1f jobs/s  p50 %6.1fms  p99 %6.1fms  429s %-4d hit %.2f\n",
				tr.Tenant, tr.Mix, tr.JobsPerSec, tr.LatencyP50Millis, tr.LatencyP99Millis, tr.Rejected429, tr.CacheHitRatio)
		}
	}

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	out = append(out, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, out, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", *outPath)
	} else {
		os.Stdout.Write(out)
	}
}

// parseTenants parses "name=key=mix[=seed]" comma-separated specs.
func parseTenants(csv string) ([]loadgen.Tenant, error) {
	var out []loadgen.Tenant
	for i, spec := range strings.Split(csv, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		parts := strings.Split(spec, "=")
		if len(parts) < 3 || len(parts) > 4 {
			return nil, fmt.Errorf("tenant spec %q: want name=key=mix[=seed]", spec)
		}
		tn := loadgen.Tenant{Name: parts[0], Key: parts[1], Seed: uint64(i + 1)}
		switch m := loadgen.Mix(parts[2]); m {
		case loadgen.MixHot, loadgen.MixCold, loadgen.MixLongtail:
			tn.Mix = m
		default:
			return nil, fmt.Errorf("tenant spec %q: unknown mix %q (hot, cold or longtail)", spec, parts[2])
		}
		if len(parts) == 4 {
			seed, err := strconv.ParseUint(parts[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("tenant spec %q: bad seed: %v", spec, err)
			}
			tn.Seed = seed
		}
		if tn.Name == "" {
			return nil, fmt.Errorf("tenant spec %q: empty name", spec)
		}
		out = append(out, tn)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no tenants in %q", csv)
	}
	return out, nil
}

// parseLevels parses the comma-separated concurrency curve.
func parseLevels(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad concurrency level %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no concurrency levels in %q", csv)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
