module coherentleak

go 1.22
