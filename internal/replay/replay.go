// Package replay persists transmission results as versioned JSON so
// experiment artifacts can be archived, diffed across code revisions,
// and re-analyzed without re-running the simulator. The schema is a
// deliberate DTO — bit strings as "0101…" text, bands as named entries —
// rather than a dump of internal structs, so saved records stay readable
// as the implementation evolves.
package replay

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"coherentleak/internal/covert"
	"coherentleak/internal/stats"
)

// SchemaVersion identifies the record layout.
const SchemaVersion = 1

// Record is the archived form of one transmission.
type Record struct {
	Version  int    `json:"version"`
	Scenario string `json:"scenario"`

	Params struct {
		C1          int    `json:"c1"`
		C0          int    `json:"c0"`
		Cb          int    `json:"cb"`
		Ts          uint64 `json:"ts"`
		SyncPeriods int    `json:"syncPeriods"`
		Probe       string `json:"probe"`
	} `json:"params"`

	TxBits string `json:"txBits"`
	RxBits string `json:"rxBits"`

	Accuracy   float64 `json:"accuracy"`
	RawKbps    float64 `json:"rawKbps"`
	Duration   uint64  `json:"durationCycles"`
	SyncCycles uint64  `json:"syncCycles"`
	Synced     bool    `json:"synced"`

	Bands []BandRecord `json:"bands"`

	Samples []SampleRecord `json:"samples,omitempty"`
}

// BandRecord is one calibrated band.
type BandRecord struct {
	Name   string  `json:"name"`
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	Center float64 `json:"center"`
}

// SampleRecord is one spy observation.
type SampleRecord struct {
	Cycle   uint64 `json:"cycle"`
	Latency uint64 `json:"latency"`
	Class   string `json:"class"`
}

// FromResult converts a transmission result. includeSamples controls
// whether the (possibly large) reception trace is archived.
func FromResult(res *covert.Result, includeSamples bool) *Record {
	r := &Record{
		Version:    SchemaVersion,
		Scenario:   res.Scenario.Name(),
		TxBits:     bitsToString(res.TxBits),
		RxBits:     bitsToString(res.RxBits),
		Accuracy:   res.Accuracy,
		RawKbps:    res.RawKbps,
		Duration:   res.Duration,
		SyncCycles: res.SyncCycles,
		Synced:     res.Synced,
	}
	r.Params.C1, r.Params.C0, r.Params.Cb = res.Params.C1, res.Params.C0, res.Params.Cb
	r.Params.Ts = res.Params.Ts
	r.Params.SyncPeriods = res.Params.SyncPeriods
	r.Params.Probe = res.Params.Probe.String()

	for _, pl := range covert.AllPlacements {
		if b, ok := res.Bands.ByPlacement[pl]; ok {
			r.Bands = append(r.Bands, BandRecord{Name: pl.String(), Lo: b.Lo, Hi: b.Hi, Center: b.Center})
		}
	}
	r.Bands = append(r.Bands, BandRecord{Name: "DRAM", Lo: res.Bands.DRAM.Lo, Hi: res.Bands.DRAM.Hi, Center: res.Bands.DRAM.Center})
	sort.Slice(r.Bands, func(i, j int) bool { return r.Bands[i].Center < r.Bands[j].Center })

	if includeSamples {
		for _, s := range res.Samples {
			r.Samples = append(r.Samples, SampleRecord{
				Cycle:   s.Cycle,
				Latency: s.Latency,
				Class:   s.Class.String(),
			})
		}
	}
	return r
}

// Save writes a record as indented JSON.
func Save(w io.Writer, r *Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Load reads a record, validating the schema version and bit strings.
func Load(rd io.Reader) (*Record, error) {
	var r Record
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	if r.Version != SchemaVersion {
		return nil, fmt.Errorf("replay: schema version %d, this build reads %d", r.Version, SchemaVersion)
	}
	for _, s := range []string{r.TxBits, r.RxBits} {
		for i := 0; i < len(s); i++ {
			if s[i] != '0' && s[i] != '1' {
				return nil, fmt.Errorf("replay: invalid bit %q at %d", s[i], i)
			}
		}
	}
	return &r, nil
}

// Tx and Rx return the archived bit strings as byte slices (0/1 values).
func (r *Record) Tx() []byte { return stringToBits(r.TxBits) }

// Rx returns the received bits.
func (r *Record) Rx() []byte { return stringToBits(r.RxBits) }

// Reaccuracy recomputes the alignment-aware accuracy from the archived
// bits — a consistency check against the stored value, and the hook for
// re-analyzing old records with newer metrics.
func (r *Record) Reaccuracy() float64 {
	return stats.Accuracy(r.Tx(), r.Rx())
}

// ArtifactSchemaVersion identifies the artifact-record layout.
const ArtifactSchemaVersion = 1

// ArtifactRecord archives one regenerated paper artifact (a whole table
// or figure) as produced by the harness engine: the assembled TSV rows
// plus the provenance needed to reproduce or invalidate them — seed,
// sizing and a digest of the machine configuration.
type ArtifactRecord struct {
	Version      int            `json:"version"`
	Artifact     string         `json:"artifact"`
	Description  string         `json:"description,omitempty"`
	Sizing       string         `json:"sizing"`
	Seed         uint64         `json:"seed"`
	ConfigDigest string         `json:"configDigest"`
	Header       string         `json:"header"`
	Rows         []string       `json:"rows"`
	Cells        []ArtifactCell `json:"cells"`
}

// ArtifactCell records how one cell of the artifact was produced.
type ArtifactCell struct {
	Name       string  `json:"name"`
	Cached     bool    `json:"cached,omitempty"`
	WallMillis float64 `json:"wallMillis,omitempty"`
	Rows       int     `json:"rows"`
	Error      string  `json:"error,omitempty"`
}

// SaveArtifact writes an artifact record as indented JSON.
func SaveArtifact(w io.Writer, r *ArtifactRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// LoadArtifact reads an artifact record, validating the schema version.
func LoadArtifact(rd io.Reader) (*ArtifactRecord, error) {
	var r ArtifactRecord
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	if r.Version != ArtifactSchemaVersion {
		return nil, fmt.Errorf("replay: artifact schema version %d, this build reads %d",
			r.Version, ArtifactSchemaVersion)
	}
	return &r, nil
}

func bitsToString(bits []byte) string {
	out := make([]byte, len(bits))
	for i, b := range bits {
		out[i] = '0' + b&1
	}
	return string(out)
}

func stringToBits(s string) []byte {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		out[i] = s[i] - '0'
	}
	return out
}
