package replay

import (
	"bytes"
	"strings"
	"testing"

	"coherentleak/internal/covert"
)

func sampleResult(t *testing.T) *covert.Result {
	t.Helper()
	ch := covert.NewChannel(covert.Scenarios[0])
	res, err := ch.Run([]byte{1, 0, 1, 1, 0, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRoundTrip(t *testing.T) {
	res := sampleResult(t)
	rec := FromResult(res, true)
	var buf bytes.Buffer
	if err := Save(&buf, rec); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Scenario != "LExclc-LSharedb" {
		t.Fatalf("scenario = %q", back.Scenario)
	}
	if back.TxBits != "10110010" {
		t.Fatalf("txBits = %q", back.TxBits)
	}
	if back.Accuracy != res.Accuracy || back.RawKbps != res.RawKbps {
		t.Fatal("metrics did not round-trip")
	}
	if len(back.Samples) != len(res.Samples) {
		t.Fatalf("samples = %d, want %d", len(back.Samples), len(res.Samples))
	}
	if len(back.Bands) != 5 {
		t.Fatalf("bands = %d, want 5 (four placements + DRAM)", len(back.Bands))
	}
	// Bands are sorted by center and cover the expected range.
	for i := 1; i < len(back.Bands); i++ {
		if back.Bands[i].Center <= back.Bands[i-1].Center {
			t.Fatal("bands not sorted")
		}
	}
}

func TestWithoutSamples(t *testing.T) {
	rec := FromResult(sampleResult(t), false)
	if len(rec.Samples) != 0 {
		t.Fatal("samples archived despite includeSamples=false")
	}
	var buf bytes.Buffer
	if err := Save(&buf, rec); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"samples"`) {
		t.Fatal("empty samples field serialized")
	}
}

func TestReaccuracyMatchesStored(t *testing.T) {
	rec := FromResult(sampleResult(t), false)
	if got := rec.Reaccuracy(); got != rec.Accuracy {
		t.Fatalf("recomputed accuracy %v != stored %v", got, rec.Accuracy)
	}
}

func TestLoadRejectsBadVersion(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("future schema accepted")
	}
}

func TestLoadRejectsBadBits(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"version": 1, "txBits": "10x1"}`)); err == nil {
		t.Fatal("invalid bit characters accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestBitStringHelpers(t *testing.T) {
	r := &Record{TxBits: "0110", RxBits: "10"}
	tx, rx := r.Tx(), r.Rx()
	if len(tx) != 4 || tx[1] != 1 || tx[0] != 0 {
		t.Fatalf("tx = %v", tx)
	}
	if len(rx) != 2 || rx[0] != 1 {
		t.Fatalf("rx = %v", rx)
	}
}

func TestArtifactRecordRoundTrip(t *testing.T) {
	rec := &ArtifactRecord{
		Version:      ArtifactSchemaVersion,
		Artifact:     "fig8",
		Description:  "accuracy vs rate",
		Sizing:       "quick",
		Seed:         20180224,
		ConfigDigest: "deadbeef",
		Header:       "scenario\ttarget_kbps",
		Rows:         []string{"LExclc-LSharedb\t100", "LExclc-LSharedb\t200"},
		Cells: []ArtifactCell{
			{Name: "LExclc-LSharedb", WallMillis: 41.5, Rows: 2},
			{Name: "RExclc-RSharedb", Cached: true, Rows: 0, Error: "boom"},
		},
	}
	var buf strings.Builder
	if err := SaveArtifact(&buf, rec); err != nil {
		t.Fatal(err)
	}
	got, err := LoadArtifact(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Artifact != rec.Artifact || got.Seed != rec.Seed || got.ConfigDigest != rec.ConfigDigest {
		t.Fatalf("provenance lost: %+v", got)
	}
	if len(got.Rows) != 2 || got.Rows[1] != rec.Rows[1] {
		t.Fatalf("rows lost: %v", got.Rows)
	}
	if len(got.Cells) != 2 || !got.Cells[1].Cached || got.Cells[1].Error != "boom" {
		t.Fatalf("cells lost: %+v", got.Cells)
	}
}

func TestLoadArtifactRejectsBadVersion(t *testing.T) {
	if _, err := LoadArtifact(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("future artifact schema accepted")
	}
}
