// Package mem models physical memory: a frame allocator with reference
// counting (for copy-on-write and KSM page merging) and page contents.
// Contents matter only to the OS layer — KSM merges pages by comparing
// bytes — so they are stored per frame rather than flowing through the
// cache hierarchy.
package mem

import (
	"bytes"
	"fmt"
	"hash/fnv"
)

// PageSize is the physical page size in bytes.
const PageSize = 4096

// Frame is a physical page frame.
type Frame struct {
	// Number is the frame's index; the frame covers physical addresses
	// [Number*PageSize, (Number+1)*PageSize).
	Number uint64
	// refs counts page-table mappings of this frame. Frames with refs > 1
	// are necessarily mapped read-only (COW).
	refs int
	// data holds the page contents, allocated lazily on first write.
	data []byte
	// Mergeable marks the frame as advised for KSM merging by all mappers.
	Mergeable bool
	// MergedByKSM marks a frame that is the surviving copy of a KSM merge.
	MergedByKSM bool
}

// Refs returns the current mapping count.
func (f *Frame) Refs() int { return f.refs }

// Base returns the first physical address of the frame.
func (f *Frame) Base() uint64 { return f.Number * PageSize }

// Data returns the frame contents, allocating zeroed storage on first use.
func (f *Frame) Data() []byte {
	if f.data == nil {
		f.data = make([]byte, PageSize)
	}
	return f.data
}

// ContentHash returns a 64-bit FNV-1a hash of the page contents. An
// all-zero (never-written) page hashes equal to an explicit zero page.
func (f *Frame) ContentHash() uint64 {
	h := fnv.New64a()
	if f.data == nil {
		var zero [PageSize]byte
		h.Write(zero[:])
	} else {
		h.Write(f.data)
	}
	return h.Sum64()
}

// SameContents reports whether two frames hold identical bytes.
func (f *Frame) SameContents(g *Frame) bool {
	fd, gd := f.data, g.data
	switch {
	case fd == nil && gd == nil:
		return true
	case fd == nil:
		return isZero(gd)
	case gd == nil:
		return isZero(fd)
	default:
		return bytes.Equal(fd, gd)
	}
}

func isZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// Memory is the physical memory: a bump-pointer frame allocator with a
// free list, plus DRAM service-time parameters consumed by the machine.
type Memory struct {
	frames map[uint64]*Frame
	next   uint64
	free   []uint64

	// TotalFrames bounds allocation; zero means unbounded.
	TotalFrames int

	// Allocated counts live frames (for leak assertions in tests).
	Allocated int
}

// New returns an empty physical memory with capacity totalFrames
// (0 = unbounded).
func New(totalFrames int) *Memory {
	return &Memory{
		frames:      make(map[uint64]*Frame),
		next:        1, // frame 0 reserved so physical address 0 stays invalid
		TotalFrames: totalFrames,
	}
}

// Alloc returns a fresh frame with a single reference.
func (m *Memory) Alloc() (*Frame, error) {
	if m.TotalFrames > 0 && m.Allocated >= m.TotalFrames {
		return nil, fmt.Errorf("mem: out of physical frames (%d in use)", m.Allocated)
	}
	var num uint64
	if n := len(m.free); n > 0 {
		num = m.free[n-1]
		m.free = m.free[:n-1]
	} else {
		num = m.next
		m.next++
	}
	f := &Frame{Number: num, refs: 1}
	m.frames[num] = f
	m.Allocated++
	return f, nil
}

// Get returns the frame with the given number, or nil.
func (m *Memory) Get(num uint64) *Frame { return m.frames[num] }

// FrameOf returns the frame containing physical address addr, or nil.
func (m *Memory) FrameOf(addr uint64) *Frame { return m.frames[addr/PageSize] }

// AddRef adds a page-table reference to f (COW sharing, KSM merge).
func (m *Memory) AddRef(f *Frame) { f.refs++ }

// Release drops one reference; the frame is freed when the count hits
// zero. Releasing a frame with zero references is a bug and panics.
func (m *Memory) Release(f *Frame) {
	if f.refs <= 0 {
		panic(fmt.Sprintf("mem: release of dead frame %d", f.Number))
	}
	f.refs--
	if f.refs == 0 {
		delete(m.frames, f.Number)
		m.free = append(m.free, f.Number)
		m.Allocated--
	}
}

// CopyFrame allocates a new frame holding a copy of src's contents (the
// COW break path).
func (m *Memory) CopyFrame(src *Frame) (*Frame, error) {
	dst, err := m.Alloc()
	if err != nil {
		return nil, err
	}
	if src.data != nil {
		copy(dst.Data(), src.data)
	}
	return dst, nil
}

// LiveFrames returns the numbers of all live frames (test helper).
func (m *Memory) LiveFrames() []uint64 {
	out := make([]uint64, 0, len(m.frames))
	for n := range m.frames {
		out = append(out, n)
	}
	return out
}
