package mem

import (
	"testing"
	"testing/quick"
)

func TestAllocReleaseLifecycle(t *testing.T) {
	m := New(0)
	f, err := m.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if f.Refs() != 1 {
		t.Fatalf("fresh frame refs = %d", f.Refs())
	}
	if f.Number == 0 {
		t.Fatal("frame 0 must stay reserved")
	}
	if m.Allocated != 1 {
		t.Fatal("Allocated not tracked")
	}
	m.Release(f)
	if m.Allocated != 0 || m.Get(f.Number) != nil {
		t.Fatal("release did not free")
	}
}

func TestReleaseDeadFramePanics(t *testing.T) {
	m := New(0)
	f, _ := m.Alloc()
	m.Release(f)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	m.Release(f)
}

func TestCapacityLimit(t *testing.T) {
	m := New(2)
	a, _ := m.Alloc()
	if _, err := m.Alloc(); err != nil {
		t.Fatal("second alloc failed under capacity 2")
	}
	if _, err := m.Alloc(); err == nil {
		t.Fatal("third alloc succeeded past capacity")
	}
	m.Release(a)
	if _, err := m.Alloc(); err != nil {
		t.Fatal("alloc after release failed")
	}
}

func TestFrameNumberReuse(t *testing.T) {
	m := New(0)
	f, _ := m.Alloc()
	n := f.Number
	m.Release(f)
	g, _ := m.Alloc()
	if g.Number != n {
		t.Fatalf("freed frame %d not reused (got %d)", n, g.Number)
	}
}

func TestRefCounting(t *testing.T) {
	m := New(0)
	f, _ := m.Alloc()
	m.AddRef(f)
	m.AddRef(f)
	if f.Refs() != 3 {
		t.Fatalf("refs = %d, want 3", f.Refs())
	}
	m.Release(f)
	m.Release(f)
	if m.Get(f.Number) == nil {
		t.Fatal("frame freed while referenced")
	}
	m.Release(f)
	if m.Get(f.Number) != nil {
		t.Fatal("frame survives final release")
	}
}

func TestFrameOfAndBase(t *testing.T) {
	m := New(0)
	f, _ := m.Alloc()
	if m.FrameOf(f.Base()) != f || m.FrameOf(f.Base()+PageSize-1) != f {
		t.Fatal("FrameOf wrong inside frame")
	}
	if m.FrameOf(f.Base()+PageSize) == f {
		t.Fatal("FrameOf wrong past frame end")
	}
}

func TestContentHashZeroPage(t *testing.T) {
	m := New(0)
	a, _ := m.Alloc()
	b, _ := m.Alloc()
	if a.ContentHash() != b.ContentHash() {
		t.Fatal("two untouched pages hash differently")
	}
	// Forcing zero bytes explicitly must hash the same as untouched.
	_ = b.Data()
	if a.ContentHash() != b.ContentHash() {
		t.Fatal("explicit zero page hashes differently from untouched")
	}
	copy(a.Data(), []byte("x"))
	if a.ContentHash() == b.ContentHash() {
		t.Fatal("distinct contents hash equal")
	}
}

func TestSameContents(t *testing.T) {
	m := New(0)
	a, _ := m.Alloc()
	b, _ := m.Alloc()
	if !a.SameContents(b) {
		t.Fatal("untouched pages differ")
	}
	copy(a.Data(), []byte("hello"))
	if a.SameContents(b) {
		t.Fatal("written page equals zero page")
	}
	copy(b.Data(), []byte("hello"))
	if !a.SameContents(b) {
		t.Fatal("identical pages differ")
	}
	// nil-vs-allocated-zero symmetry
	c, _ := m.Alloc()
	d, _ := m.Alloc()
	_ = d.Data()
	if !c.SameContents(d) || !d.SameContents(c) {
		t.Fatal("nil vs zeroed asymmetry")
	}
}

func TestCopyFrame(t *testing.T) {
	m := New(0)
	src, _ := m.Alloc()
	copy(src.Data(), []byte("secret"))
	dst, err := m.CopyFrame(src)
	if err != nil {
		t.Fatal(err)
	}
	if !src.SameContents(dst) {
		t.Fatal("copy contents differ")
	}
	dst.Data()[0] = 'X'
	if src.SameContents(dst) {
		t.Fatal("copy aliases source")
	}
	if dst.Refs() != 1 {
		t.Fatal("copy refs wrong")
	}
}

// Property: ContentHash agrees with SameContents on equality.
func TestHashConsistentWithEquality(t *testing.T) {
	m := New(0)
	f := func(a, b []byte) bool {
		fa, _ := m.Alloc()
		fb, _ := m.Alloc()
		copy(fa.Data(), a)
		copy(fb.Data(), b)
		same := fa.SameContents(fb)
		hashEq := fa.ContentHash() == fb.ContentHash()
		m.Release(fa)
		m.Release(fb)
		if same && !hashEq {
			return false // equal contents must hash equal
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Allocated equals live frame count under arbitrary alloc /
// release interleavings.
func TestAllocatedInvariant(t *testing.T) {
	f := func(ops []bool) bool {
		m := New(0)
		var live []*Frame
		for _, alloc := range ops {
			if alloc || len(live) == 0 {
				fr, err := m.Alloc()
				if err != nil {
					return false
				}
				live = append(live, fr)
			} else {
				fr := live[len(live)-1]
				live = live[:len(live)-1]
				m.Release(fr)
			}
			if m.Allocated != len(live) || len(m.LiveFrames()) != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
