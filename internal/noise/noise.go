// Package noise provides the co-located background workload of §VIII-C:
// a kernel-build-like (kcbench) multi-threaded job that stresses the
// memory hierarchy. Its threads cycle through the phases of a compile
// job — source scanning (streaming reads), compilation (mixed
// read/write over a working set), and linking (large writes) — evicting
// victim cache lines and loading the L2–LLC and inter-socket links,
// which is exactly how the paper's noise degrades the covert channel:
// "kernel-build processes saturate the internal bus (L2-LLC)
// bandwidths" and perturb E-state load latencies.
package noise

import (
	"fmt"

	"coherentleak/internal/kernel"
	"coherentleak/internal/sim"
)

// Config tunes the workload.
type Config struct {
	// Threads is the number of kernel-build worker threads (the paper
	// sweeps 1..8).
	Threads int
	// WorkingSetPages is each thread's compile-phase working set. The
	// default (2048 pages = 8 MB) makes a few threads pressure the LLC
	// noticeably and eight threads dwarf it, as kcbench does.
	WorkingSetPages int
	// OpsPerPhase is how many memory operations one phase issues before
	// the thread rotates to the next phase.
	OpsPerPhase int
	// ThinkCycles is the pause between operations (instruction work
	// between memory references).
	ThinkCycles sim.Cycles
	// Seed drives address selection.
	Seed uint64
}

// DefaultConfig returns a kcbench-like intensity.
func DefaultConfig(threads int) Config {
	return Config{
		Threads:         threads,
		WorkingSetPages: 2048,
		OpsPerPhase:     256,
		ThinkCycles:     24,
		Seed:            0xbeefcafe,
	}
}

// Workload is a running set of noise threads.
type Workload struct {
	cfg     Config
	proc    *kernel.Process
	threads []*kernel.Thread
	kern    *kernel.Kernel

	// Ops counts memory operations issued across all threads.
	Ops uint64
}

// phase is one stage of the simulated build job.
type phase uint8

const (
	phaseScan phase = iota // streaming reads over the whole set
	phaseCompile
	phaseLink
	phaseCount
)

// Attach spawns the workload's threads in kern, scheduling them across
// cores. When the machine has spare cores beyond the attack's (spy on 0,
// trojan workers on 1, 2 and the first two of socket 1), noise threads
// take those first; past that they double up — which is when a real
// scheduler would start preempting the pinned attack threads, so the
// caller should also raise the session's OS-noise probability (the
// CoLocationPressure helper computes it).
func Attach(kern *kernel.Kernel, cfg Config) (*Workload, error) {
	if cfg.Threads < 0 {
		return nil, fmt.Errorf("noise: negative thread count")
	}
	w := &Workload{cfg: cfg, kern: kern, proc: kern.NewProcess("kernel-build")}
	if cfg.Threads == 0 {
		return w, nil
	}
	if cfg.WorkingSetPages <= 0 || cfg.OpsPerPhase <= 0 {
		return nil, fmt.Errorf("noise: non-positive working set or ops")
	}
	rng := sim.NewRand(cfg.Seed)
	cores := spreadCores(kern, cfg.Threads)
	for i := 0; i < cfg.Threads; i++ {
		va, err := w.proc.Mmap(cfg.WorkingSetPages)
		if err != nil {
			return nil, err
		}
		tRng := rng.Split()
		name := fmt.Sprintf("cc%d", i)
		th := kern.Spawn(w.proc, cores[i], name, func(kt *kernel.Thread) {
			w.run(kt, va, tRng)
		})
		w.threads = append(w.threads, th)
	}
	return w, nil
}

// spreadCores assigns noise threads to cores: spare cores first (3..5 on
// socket 0, 8..11 on socket 1 in the default topology), then wrapping
// over every core.
func spreadCores(kern *kernel.Kernel, n int) []int {
	total := kern.Machine().Cores()
	per := kern.Machine().Config().CoresPerSocket
	reserved := map[int]bool{0: true, 1: true, 2: true}
	if kern.Machine().Sockets() > 1 {
		reserved[per] = true
		reserved[per+1] = true
	}
	var spare []int
	for c := 0; c < total; c++ {
		if !reserved[c] {
			spare = append(spare, c)
		}
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		if i < len(spare) {
			out[i] = spare[i]
		} else {
			out[i] = (i - len(spare)) % total
		}
	}
	return out
}

// CoLocationPressure returns the interruption rate (probability per
// 1000 cycles) the attack threads suffer when `threads` noise workers
// share the machine: zero while spare cores absorb the noise, growing
// linearly once the cores are oversubscribed.
func CoLocationPressure(kern *kernel.Kernel, threads int) float64 {
	total := kern.Machine().Cores()
	spare := total - 5 // spy + 2 local + 2 remote attack threads
	if kern.Machine().Sockets() == 1 {
		spare = total - 3
	}
	over := threads - spare
	if over <= 0 {
		return 0
	}
	return 0.45 * float64(over)
}

// run is one thread's phase loop. A pre-pass flattens each phase's
// straight-line run of accesses into a Program — drawing the phase's
// addresses from the thread's private rng in exactly the order the
// hand-written loop did — and Exec drives it with whichever kernel the
// machine config selects. Address generation is untimed either way, so
// moving the draws into the pre-pass changes no simulated behaviour.
func (w *Workload) run(kt *kernel.Thread, base uint64, rng *sim.Rand) {
	setBytes := uint64(w.cfg.WorkingSetPages) * kernel.PageSize
	lines := setBytes / 64
	ph := phaseScan
	cursor := uint64(0)
	prog := kernel.NewProgram(w.proc, w.cfg.OpsPerPhase)
	for !kt.StopRequested() {
		prog.Reset()
		think := w.cfg.ThinkCycles
		for op := 0; op < w.cfg.OpsPerPhase; op++ {
			switch ph {
			case phaseScan:
				// Streaming read sweep: maximal eviction pressure.
				prog.Load(base+(cursor%lines)*64, think)
				cursor += 1
			case phaseCompile:
				// Random mixed accesses over a hot subset.
				off := rng.Uint64n(lines/4) * 64
				if rng.Bool(0.3) {
					prog.Store(base+off, think)
				} else {
					prog.Load(base+off, think)
				}
			case phaseLink:
				// Large sequential writes.
				prog.Store(base+(cursor%lines)*64, think)
				cursor += 8
			}
		}
		if kt.Exec(prog, &w.Ops) < prog.Len() {
			return
		}
		ph = (ph + 1) % phaseCount
	}
}

// Stop terminates all noise threads.
func (w *Workload) Stop() {
	for _, th := range w.threads {
		w.kern.World().StopThread(th.Sim)
	}
}

// Threads returns the running thread count.
func (w *Workload) Threads() int { return len(w.threads) }
