package noise

import (
	"testing"

	"coherentleak/internal/kernel"
	"coherentleak/internal/machine"
	"coherentleak/internal/sim"
)

func newKern(t *testing.T) *kernel.Kernel {
	t.Helper()
	w := sim.NewWorld(sim.Config{Seed: 5})
	return kernel.New(machine.New(w, machine.DefaultConfig()), 0)
}

func TestAttachZeroThreads(t *testing.T) {
	k := newKern(t)
	w, err := Attach(k, DefaultConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if w.Threads() != 0 {
		t.Fatal("threads spawned for zero config")
	}
}

func TestAttachRejectsBadConfig(t *testing.T) {
	k := newKern(t)
	if _, err := Attach(k, Config{Threads: -1}); err == nil {
		t.Fatal("negative threads accepted")
	}
	if _, err := Attach(k, Config{Threads: 1, WorkingSetPages: 0, OpsPerPhase: 1}); err == nil {
		t.Fatal("zero working set accepted")
	}
}

func TestWorkloadGeneratesTraffic(t *testing.T) {
	k := newKern(t)
	cfg := DefaultConfig(4)
	cfg.WorkingSetPages = 64 // keep setup cheap
	w, err := Attach(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.Threads() != 4 {
		t.Fatalf("threads = %d", w.Threads())
	}
	world := k.World()
	if err := world.RunUntil(func() bool { return world.Now() > 200_000 }); err != nil {
		t.Fatal(err)
	}
	if w.Ops < 1000 {
		t.Fatalf("only %d ops after 200k cycles", w.Ops)
	}
	loads := k.Machine().Stats.Loads
	stores := k.Machine().Stats.Stores
	if loads == 0 || stores == 0 {
		t.Fatalf("workload is not mixed: loads=%d stores=%d", loads, stores)
	}
	w.Stop()
	world.Drain()
}

func TestSpreadCoresAvoidsAttackCoresFirst(t *testing.T) {
	k := newKern(t)
	cores := spreadCores(k, 7) // 7 spare cores exist (3,4,5,8,9,10,11)
	attack := map[int]bool{0: true, 1: true, 2: true, 6: true, 7: true}
	for i, c := range cores {
		if attack[c] {
			t.Errorf("noise thread %d placed on attack core %d with spares free", i, c)
		}
	}
	// The 8th thread must double up somewhere.
	cores = spreadCores(k, 8)
	if len(cores) != 8 {
		t.Fatal("wrong core count")
	}
}

func TestCoLocationPressure(t *testing.T) {
	k := newKern(t)
	// 12 cores, 5 reserved -> 7 spare.
	if p := CoLocationPressure(k, 6); p != 0 {
		t.Fatalf("pressure with spare cores = %v", p)
	}
	if p := CoLocationPressure(k, 8); p <= 0 {
		t.Fatalf("no pressure with oversubscription: %v", p)
	}
	if CoLocationPressure(k, 9) <= CoLocationPressure(k, 8) {
		t.Fatal("pressure not increasing")
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	run := func() uint64 {
		w := sim.NewWorld(sim.Config{Seed: 11})
		k := kernel.New(machine.New(w, machine.DefaultConfig()), 0)
		cfg := DefaultConfig(2)
		cfg.WorkingSetPages = 32
		wl, err := Attach(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.RunUntil(func() bool { return w.Now() > 100_000 }); err != nil {
			t.Fatal(err)
		}
		ops := wl.Ops
		wl.Stop()
		w.Drain()
		return ops
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("runs diverged: %d vs %d ops", a, b)
	}
}
