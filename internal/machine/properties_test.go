package machine

import (
	"testing"
	"testing/quick"

	"coherentleak/internal/coherence"
	"coherentleak/internal/sim"
)

// Property: after a flush, the next load of that line always comes from
// DRAM, no matter what history preceded it.
func TestLoadAfterFlushIsAlwaysDRAM(t *testing.T) {
	f := func(ops []uint16) bool {
		if len(ops) > 100 {
			ops = ops[:100]
		}
		w := sim.NewWorld(sim.Config{Seed: 5})
		m := New(w, DefaultConfig())
		ok := true
		w.Spawn("t", func(th *sim.Thread) {
			for _, op := range ops {
				core := int(op) % m.Cores()
				switch (op >> 8) % 3 {
				case 0:
					m.Load(th, core, addrB)
				case 1:
					m.Store(th, core, addrB)
				case 2:
					m.Flush(th, core, addrB)
				}
			}
			m.Flush(th, 0, addrB)
			if a := m.Load(th, 0, addrB); a.Path != PathDRAM {
				ok = false
			}
		})
		if err := w.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: flush is idempotent for state — a second flush finds nothing
// dirty and leaves the same (empty) state.
func TestFlushIdempotent(t *testing.T) {
	runOn(t, DefaultConfig(), func(th *sim.Thread, m *Machine) {
		m.Load(th, 0, addrB)
		m.Store(th, 0, addrB)
		first := m.Flush(th, 1, addrB)
		second := m.Flush(th, 1, addrB)
		// The first flush pays the dirty write-back; the second must not.
		if second.Latency >= first.Latency {
			t.Errorf("second flush (%d) not cheaper than dirty flush (%d)",
				second.Latency, first.Latency)
		}
		for g := 0; g < m.Cores(); g++ {
			if m.ProbeState(g, addrB).Valid() {
				t.Fatalf("core %d holds a copy after double flush", g)
			}
		}
	})
}

// Property: a store immediately makes the line writable at the writer
// and invisible everywhere else, for any prior sharer set.
func TestStoreSerializesOwnership(t *testing.T) {
	f := func(sharerMask uint16, writer uint8) bool {
		w := sim.NewWorld(sim.Config{Seed: 9})
		m := New(w, DefaultConfig())
		wcore := int(writer) % m.Cores()
		ok := true
		w.Spawn("t", func(th *sim.Thread) {
			for c := 0; c < m.Cores(); c++ {
				if sharerMask&(1<<uint(c)) != 0 {
					m.Load(th, c, addrB)
				}
			}
			m.Store(th, wcore, addrB)
			if m.ProbeState(wcore, addrB) != coherence.Modified {
				ok = false
			}
			for c := 0; c < m.Cores(); c++ {
				if c != wcore && m.ProbeState(c, addrB).Valid() {
					ok = false
				}
			}
			// And the writer's next load is an L1 hit.
			if a := m.Load(th, wcore, addrB); a.Path != PathL1 {
				ok = false
			}
		})
		if err := w.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: load latency depends only on the (service path, contention)
// state, never on which core issues it within the same socket position —
// symmetric cores are interchangeable.
func TestCoreSymmetry(t *testing.T) {
	measure := func(owner, spyCore int) sim.Cycles {
		w := sim.NewWorld(sim.Config{Seed: 31})
		m := New(w, DefaultConfig())
		var lat sim.Cycles
		w.Spawn("t", func(th *sim.Thread) {
			m.Load(th, spyCore, addrB+64) // TLB warm
			m.Flush(th, spyCore, addrB)
			m.Load(th, owner, addrB)
			th.Advance(4000)
			lat = m.Load(th, spyCore, addrB).Latency
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return lat
	}
	// Owner on cores 1..5 (same socket as spy core 0): identical band.
	base := measure(1, 0)
	for owner := 2; owner <= 5; owner++ {
		got := measure(owner, 0)
		diff := int64(got) - int64(base)
		if diff < 0 {
			diff = -diff
		}
		if diff > 2*DefaultConfig().Latencies.Jitter+2 {
			t.Errorf("owner core %d: latency %d vs %d", owner, got, base)
		}
	}
}

// Property: the DRAM path cost is monotone in topology — a 2-socket
// machine's flushed-line fetch costs at least a 1-socket machine's.
func TestDRAMPathMonotoneInSockets(t *testing.T) {
	measure := func(sockets int) sim.Cycles {
		cfg := DefaultConfig()
		cfg.Sockets = sockets
		w := sim.NewWorld(sim.Config{Seed: 13})
		m := New(w, cfg)
		var lat sim.Cycles
		w.Spawn("t", func(th *sim.Thread) {
			m.Load(th, 0, addrB+64)
			m.Flush(th, 0, addrB)
			lat = m.Load(th, 0, addrB).Latency
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return lat
	}
	one, two := measure(1), measure(2)
	if two <= one {
		t.Fatalf("2-socket flushed fetch (%d) not above 1-socket (%d): missing snoop cost", two, one)
	}
}
