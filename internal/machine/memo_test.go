package machine

import (
	"testing"

	"coherentleak/internal/coherence"
	"coherentleak/internal/sim"
)

// TestMemoMatchesFreshApply is the satellite property test: for every
// registered protocol and every (state, location, pressure-bucket) key
// the memo exposes, the memoized transitions must equal a fresh
// spec.Apply and the static/jitter components must equal an independent
// recomputation from the raw config. Runs once per protocol for both
// directory and snoop-bus interconnects (the two static-latency shapes).
func TestMemoMatchesFreshApply(t *testing.T) {
	for _, proto := range coherence.Protocols() {
		for _, snoop := range []bool{false, true} {
			cfg := SmallConfig()
			cfg.Protocol = proto
			cfg.SnoopBus = snoop
			w := sim.NewWorld(sim.Config{Seed: 1})
			m := New(w, cfg)
			spec, err := coherence.SpecFor(proto)
			if err != nil {
				t.Fatal(err)
			}

			keys := m.MemoKeys()
			want := len(spec.States()) * pathCount * NumPressureBuckets
			if len(keys) != want {
				t.Fatalf("%s snoop=%v: %d memo keys, want %d", proto, snoop, len(keys), want)
			}
			seen := make(map[MemoKey]bool, len(keys))
			for _, k := range keys {
				if seen[k] {
					t.Fatalf("%s: duplicate memo key %+v", proto, k)
				}
				seen[k] = true
				e, ok := m.MemoLookup(k)
				if !ok {
					t.Fatalf("%s: MemoLookup(%+v) not ok", proto, k)
				}
				for _, tr := range []struct {
					name string
					got  coherence.Transition
					ev   coherence.Event
				}{
					{"LocalWrite", e.LocalWrite, coherence.LocalWrite},
					{"RemoteRead", e.RemoteRead, coherence.RemoteRead},
					{"RemoteWrite", e.RemoteWrite, coherence.RemoteWrite},
					{"Evict", e.Evict, coherence.Evict},
					{"Flush", e.Flush, coherence.FlushOp},
				} {
					if fresh := spec.Apply(k.State, tr.ev); tr.got != fresh {
						t.Errorf("%s %v/%v %s: memo %+v != fresh %+v",
							proto, k.State, k.Loc, tr.name, tr.got, fresh)
					}
				}
				if fresh := staticPathLatency(cfg, k.Loc); e.StaticBase != fresh {
					t.Errorf("%s %v: static %d != fresh %d", proto, k.Loc, e.StaticBase, fresh)
				}
				if e.JitterFactor != pathJitterFactor(k.Loc) {
					t.Errorf("%s %v: factor %v != %v", proto, k.Loc, e.JitterFactor, pathJitterFactor(k.Loc))
				}
				if e.PressureLow != float64(k.Bucket) || e.PressureHigh != float64(k.Bucket+1) {
					t.Errorf("%s bucket %d: range [%v,%v)", proto, k.Bucket, e.PressureLow, e.PressureHigh)
				}
				wantWidth := int64(0)
				if k.Loc > PathL2 && cfg.Latencies.ProbePressureJitter > 0 {
					wantWidth = int64(cfg.Latencies.ProbePressureJitter * e.PressureHigh * e.JitterFactor * maxContention)
				}
				if e.MaxJitterWidth != wantWidth {
					t.Errorf("%s %v bucket %d: max width %d != %d", proto, k.Loc, k.Bucket, e.MaxJitterWidth, wantWidth)
				}
			}

			// Illegal keys must be rejected, not misread.
			for _, st := range []coherence.State{coherence.Invalid, coherence.State(coherence.NumStates)} {
				if !m.memo.legal[coherence.Invalid] {
					if _, ok := m.MemoLookup(MemoKey{State: st, Loc: PathL1}); ok && st == coherence.State(coherence.NumStates) {
						t.Errorf("%s: out-of-range state accepted", proto)
					}
				}
			}
			if _, ok := m.MemoLookup(MemoKey{State: spec.States()[0], Loc: Path(pathCount)}); ok {
				t.Errorf("%s: out-of-range path accepted", proto)
			}
			if _, ok := m.MemoLookup(MemoKey{State: spec.States()[0], Loc: PathL1, Bucket: NumPressureBuckets}); ok {
				t.Errorf("%s: out-of-range bucket accepted", proto)
			}
		}
	}
}

// TestPressureBucket pins the quantization: bucket i covers [i, i+1) and
// the ends clamp.
func TestPressureBucket(t *testing.T) {
	cases := []struct {
		p    float64
		want int
	}{{-1, 0}, {0, 0}, {0.99, 0}, {1, 1}, {5.5, 5}, {6, 6}, {100, 6}}
	for _, c := range cases {
		if got := PressureBucket(c.p); got != c.want {
			t.Errorf("PressureBucket(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

// TestMemoInvalidation is the regression test for config overrides à la
// cohsimd: changing the protocol (or any latency) on a live machine and
// reconstructing — the runner path — must rebuild the memo, and the
// memoized transitions must track the new spec rather than the old one.
func TestMemoInvalidation(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 1})
	cfg := SmallConfig()
	cfg.Protocol = coherence.MESI
	m := New(w, cfg)
	if m.MemoVersion() != 1 {
		t.Fatalf("fresh memo version %d, want 1", m.MemoVersion())
	}
	// MESI has no F state.
	if _, ok := m.MemoLookup(MemoKey{State: coherence.Forward, Loc: PathL1}); ok {
		t.Fatal("MESI memo answered for F state")
	}

	m.cfg.Protocol = coherence.MESIF
	spec, err := coherence.SpecFor(coherence.MESIF)
	if err != nil {
		t.Fatal(err)
	}
	m.spec = spec
	m.InvalidateMemo()
	if m.MemoVersion() != 2 {
		t.Fatalf("memo version %d after invalidation, want 2", m.MemoVersion())
	}
	e, ok := m.MemoLookup(MemoKey{State: coherence.Forward, Loc: PathL1})
	if !ok {
		t.Fatal("MESIF memo missing F state after invalidation")
	}
	if fresh := spec.Apply(coherence.Forward, coherence.RemoteRead); e.RemoteRead != fresh {
		t.Fatalf("stale memo after invalidation: %+v != %+v", e.RemoteRead, fresh)
	}

	// Latency changes must be reflected too.
	m.cfg.Latencies.L1Hit += 7
	m.InvalidateMemo()
	if m.MemoVersion() != 3 {
		t.Fatalf("memo version %d, want 3", m.MemoVersion())
	}
	if e, _ := m.MemoLookup(MemoKey{State: coherence.Forward, Loc: PathL1}); e.StaticBase != m.cfg.Latencies.L1Hit {
		t.Fatalf("static L1 latency %d not rebuilt (want %d)", e.StaticBase, m.cfg.Latencies.L1Hit)
	}
}
