// Package machine composes the substrates — caches, coherence directory,
// interconnect, DRAM — into the simulated multi-socket multi-core machine
// the attack runs on. It exposes Load, Store and Flush with cycle-accurate
// accounting: the latency of a load is a deterministic function of which
// service path the coherence protocol selects, which is exactly the signal
// the paper's covert channel modulates.
package machine

import (
	"fmt"
	"math/bits"

	"coherentleak/internal/cache"
	"coherentleak/internal/coherence"
	"coherentleak/internal/interconnect"
	"coherentleak/internal/sim"
)

// Core is one simulated core with private L1 and L2 caches.
type Core struct {
	// Global is the machine-wide core id.
	Global int
	// Socket is the owning socket id.
	Socket int
	// Local is the index within the socket (the directory's core id).
	Local int

	L1 *cache.Cache
	L2 *cache.Cache
}

// Socket is one processor package: cores, a shared LLC, the coherence
// directory with core-valid bits, and the on-chip ring.
type Socket struct {
	ID    int
	Cores []*Core
	LLC   *cache.Cache
	Dir   *coherence.Directory
	Ring  *interconnect.Link
}

// Machine is the simulated testbed.
type Machine struct {
	cfg   Config
	world *sim.World
	rng   *sim.Rand

	// spec is the resolved coherence protocol table every state
	// transition, fill decision and store policy is looked up from.
	spec *coherence.ProtocolSpec
	// llcTrust caches whether the shared level can always answer a
	// sole-sharer miss from its clean copy: true when the E->M
	// notification mitigation is on, or when the protocol has no silent
	// upgrades at all (write-through tables), so there is nothing for
	// the LLC copy to go stale against.
	llcTrust bool

	sockets []*Socket
	cores   []*Core // flat, by global id

	// qpi[i][j] is the link from socket i to socket j (i != j); entries
	// alias their [j][i] counterparts so utilization is shared.
	qpi [][]*interconnect.Link

	dram *interconnect.Link

	// Stats tallies service paths; the experiments read it.
	Stats MachineStats

	// upgraded tracks lines whose sole owner performed an E->M upgrade,
	// consulted only when Mitigations.LLCNotifiedOfEToM is on.
	upgraded map[uint64]bool

	// flushEpochs counts flushes per line. A cache owner can observe the
	// same fact physically (its next load misses), so exposing the
	// counter gives attack code an exact, cheap stand-in for "my reload
	// missed, therefore the spy flushed again".
	flushEpochs map[uint64]uint64

	// lastFlush and pressure implement the probe-pressure jitter model:
	// flushing the same line at short intervals (fast flush+reload
	// probing) widens the latency spread of subsequent misses on it.
	// This is the simulator's calibrated stand-in for the pipeline and
	// queue pressure that degrades raw-bit accuracy at high sampling
	// rates on real hardware (§VIII-B, Figure 8). See DESIGN.md.
	lastFlush map[uint64]sim.Cycles
	pressure  map[uint64]float64

	// evictEpochs counts inclusive-LLC back-invalidations per line (the
	// eviction analogue of flushEpochs).
	evictEpochs map[uint64]uint64

	// lastUtil is the highest link utilization seen along the most
	// recent miss's service path; it feeds the contention multiplier of
	// the probe-pressure model.
	lastUtil float64

	// tlbs are the per-core translation buffers (nil entries when
	// disabled).
	tlbs []*tlb

	// onAccess, when non-nil, observes every completed memory operation
	// (loads, stores, and flushes). Tracers attach here; the hook must
	// not call back into the machine.
	onAccess func(ev AccessEvent)
}

// AccessEvent describes one completed memory operation for tracers.
type AccessEvent struct {
	// Cycle is the issuing thread's clock when the operation completed.
	Cycle sim.Cycles
	// Thread is the issuing sim thread's id.
	Thread int
	// Core is the global core id.
	Core int
	// Line is the line-aligned physical address.
	Line uint64
	// Op is "load", "store" or "flush".
	Op string
	// Path is the service path (loads and stores).
	Path Path
	// Latency is the operation's cost in cycles.
	Latency sim.Cycles
}

// SetAccessObserver installs (or clears, with nil) the per-operation
// observer hook.
func (m *Machine) SetAccessObserver(fn func(AccessEvent)) { m.onAccess = fn }

// pressureRefCycles normalizes flush intervals in the probe-pressure
// model: an interval of this many cycles yields unit pressure.
const pressureRefCycles = 1000.0

// MachineStats counts accesses by service path.
type MachineStats struct {
	Loads      uint64
	Stores     uint64
	Flushes    uint64
	Prefetches uint64
	// ByPath counts loads and stores by where they were serviced.
	ByPath [pathCount]uint64
}

// New builds a machine inside world. It panics on invalid configuration
// (machines are constructed from static configs; see Config.Validate for
// the checked rules).
func New(world *sim.World, cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := world.Rand().Split()
	spec := coherence.MustSpec(cfg.Protocol)
	m := &Machine{
		cfg:         cfg,
		world:       world,
		rng:         rng,
		spec:        spec,
		llcTrust:    cfg.Mitigations.LLCNotifiedOfEToM || !spec.SilentUpgrades(),
		upgraded:    make(map[uint64]bool),
		flushEpochs: make(map[uint64]uint64),
		lastFlush:   make(map[uint64]sim.Cycles),
		pressure:    make(map[uint64]float64),
		evictEpochs: make(map[uint64]uint64),
	}
	lat := cfg.Latencies
	for s := 0; s < cfg.Sockets; s++ {
		// In snoop-bus mode one broadcast bus replaces the ring: same
		// base latency, but every snooping cache occupies it, so its
		// per-message service time is much larger and it congests first.
		linkName, service := fmt.Sprintf("ring%d", s), lat.RingService
		if cfg.SnoopBus {
			linkName, service = fmt.Sprintf("bus%d", s), lat.RingService*3
		}
		sock := &Socket{
			ID:   s,
			LLC:  cache.MustNew(cfg.LLC, nil),
			Dir:  coherence.NewDirectory(cfg.CoresPerSocket),
			Ring: interconnect.NewLink(linkName, lat.Ring, service, rng.Split()),
		}
		for c := 0; c < cfg.CoresPerSocket; c++ {
			core := &Core{
				Global: s*cfg.CoresPerSocket + c,
				Socket: s,
				Local:  c,
				L1:     cache.MustNew(cfg.L1, nil),
				L2:     cache.MustNew(cfg.L2, nil),
			}
			sock.Cores = append(sock.Cores, core)
			m.cores = append(m.cores, core)
		}
		m.sockets = append(m.sockets, sock)
	}
	m.qpi = make([][]*interconnect.Link, cfg.Sockets)
	for i := range m.qpi {
		m.qpi[i] = make([]*interconnect.Link, cfg.Sockets)
	}
	for i := 0; i < cfg.Sockets; i++ {
		for j := i + 1; j < cfg.Sockets; j++ {
			l := interconnect.NewLink(fmt.Sprintf("qpi%d-%d", i, j), lat.QPI, lat.QPIService, rng.Split())
			m.qpi[i][j] = l
			m.qpi[j][i] = l
		}
	}
	m.dram = interconnect.NewLink("dram", lat.DRAMService, lat.DRAMChannelService, rng.Split())
	m.tlbs = make([]*tlb, len(m.cores))
	if cfg.TLBEntries > 0 {
		for i := range m.tlbs {
			m.tlbs[i] = newTLB(cfg.TLBEntries)
		}
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Spec returns the resolved coherence protocol table.
func (m *Machine) Spec() *coherence.ProtocolSpec { return m.spec }

// World returns the owning simulation world.
func (m *Machine) World() *sim.World { return m.world }

// Core returns the core with global id g.
func (m *Machine) Core(g int) *Core {
	if g < 0 || g >= len(m.cores) {
		panic(fmt.Sprintf("machine: core %d out of range (machine has %d)", g, len(m.cores)))
	}
	return m.cores[g]
}

// Socket returns socket s.
func (m *Machine) Socket(s int) *Socket {
	if s < 0 || s >= len(m.sockets) {
		panic(fmt.Sprintf("machine: socket %d out of range", s))
	}
	return m.sockets[s]
}

// Sockets returns the socket count.
func (m *Machine) Sockets() int { return len(m.sockets) }

// Cores returns the total core count.
func (m *Machine) Cores() int { return len(m.cores) }

// Path identifies where a load was serviced — the six latency classes of
// the attack plus the private-cache hits.
type Path uint8

const (
	// PathL1 is a private L1 hit.
	PathL1 Path = iota
	// PathL2 is a private L2 hit.
	PathL2
	// PathLocalLLC is a clean hit in the local socket's LLC (the block is
	// in S there, or uncached by cores): the paper's "local shared" band.
	PathLocalLLC
	// PathLocalForward is an LLC-forwarded hit in a sibling core's
	// private cache (block in E/M there): the "local exclusive" band.
	PathLocalForward
	// PathRemoteLLC is a clean hit in a remote socket's LLC: "remote
	// shared".
	PathRemoteLLC
	// PathRemoteForward is a forward to a remote core's private cache:
	// "remote exclusive".
	PathRemoteForward
	// PathDRAM missed every cache.
	PathDRAM

	pathCount = int(PathDRAM) + 1
)

var pathNames = [...]string{
	"L1", "L2", "LocalLLC", "LocalForward", "RemoteLLC", "RemoteForward", "DRAM",
}

func (p Path) String() string {
	if int(p) < len(pathNames) {
		return pathNames[p]
	}
	return fmt.Sprintf("Path(%d)", uint8(p))
}

// GlobalSharers returns the number of private caches across all sockets
// holding line, excluding socket `exceptSocket` core `exceptLocal` (pass
// -1, -1 for none).
func (m *Machine) globalSharers(line uint64, exceptSocket, exceptLocal int) int {
	n := 0
	for _, s := range m.sockets {
		mask := s.Dir.SharerMask(line)
		if s.ID == exceptSocket && exceptLocal >= 0 {
			mask &^= 1 << uint(exceptLocal)
		}
		n += bits.OnesCount64(mask)
	}
	return n
}

// anyOtherCopy reports whether any cache outside socket s holds the line
// (private or LLC); used to decide E vs. S on a fill.
func (m *Machine) anyOtherCopy(line uint64, s int) bool {
	for _, sock := range m.sockets {
		if sock.ID == s {
			continue
		}
		if sock.Dir.SharerCount(line) > 0 {
			return true
		}
		if e, ok := sock.Dir.Lookup(line); ok && e.LLCValid {
			return true
		}
	}
	return false
}

// ProbeState returns the coherence state of line in core g's private
// caches (Invalid if absent) — a debugging/verification observer.
func (m *Machine) ProbeState(g int, addr uint64) coherence.State {
	core := m.Core(g)
	if s := core.L1.Probe(addr); s.Valid() {
		return s
	}
	return core.L2.Probe(addr)
}

// FlushEpoch returns how many times addr's line has been flushed. The
// covert channel's trojan uses it to count spy periods (each spy period
// begins with exactly one flush of the shared block).
func (m *Machine) FlushEpoch(addr uint64) uint64 {
	return m.flushEpochs[cache.LineAddr(addr)]
}

// InvalidationEpoch counts every event that removed addr's line from the
// trojan's caches: explicit flushes plus inclusive-LLC back-
// invalidations. It is the period counter for eviction-based probing
// (§VI-B's "eviction of all the ways in the set"), where the spy never
// executes clflush; a real trojan observes the same events as misses on
// its next reload.
func (m *Machine) InvalidationEpoch(addr uint64) uint64 {
	line := cache.LineAddr(addr)
	return m.flushEpochs[line] + m.evictEpochs[line]
}

// LLCHasClean reports whether socket s's LLC holds a clean serviceable
// copy of addr's line.
func (m *Machine) LLCHasClean(s int, addr uint64) bool {
	line := cache.LineAddr(addr)
	e, ok := m.Socket(s).Dir.Lookup(line)
	return ok && e.LLCValid && m.Socket(s).LLC.Contains(line)
}
