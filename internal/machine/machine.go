// Package machine composes the substrates — caches, coherence directory,
// interconnect, DRAM — into the simulated multi-socket multi-core machine
// the attack runs on. It exposes Load, Store and Flush with cycle-accurate
// accounting: the latency of a load is a deterministic function of which
// service path the coherence protocol selects, which is exactly the signal
// the paper's covert channel modulates.
package machine

import (
	"fmt"
	"math/bits"

	"coherentleak/internal/cache"
	"coherentleak/internal/coherence"
	"coherentleak/internal/interconnect"
	"coherentleak/internal/sim"
)

// Core is one simulated core with private L1 and L2 caches.
type Core struct {
	// Global is the machine-wide core id.
	Global int
	// Socket is the owning socket id.
	Socket int
	// Local is the index within the socket (the directory's core id).
	Local int

	L1 *cache.Cache
	L2 *cache.Cache
}

// Socket is one processor package: cores, a shared LLC, the coherence
// directory with core-valid bits, and the on-chip ring.
type Socket struct {
	ID    int
	Cores []*Core
	LLC   *cache.Cache
	Dir   *coherence.Directory
	Ring  *interconnect.Link
}

// Machine is the simulated testbed.
type Machine struct {
	cfg   Config
	world *sim.World
	rng   *sim.Rand

	// spec is the resolved coherence protocol table every state
	// transition, fill decision and store policy is looked up from.
	spec *coherence.ProtocolSpec
	// llcTrust caches whether the shared level can always answer a
	// sole-sharer miss from its clean copy: true when the E->M
	// notification mitigation is on, or when the protocol has no silent
	// upgrades at all (write-through tables), so there is nothing for
	// the LLC copy to go stale against.
	llcTrust bool

	sockets []*Socket
	cores   []*Core // flat, by global id

	// qpi[i][j] is the link from socket i to socket j (i != j); entries
	// alias their [j][i] counterparts so utilization is shared.
	qpi [][]*interconnect.Link

	dram *interconnect.Link

	// Stats tallies service paths; the experiments read it.
	Stats MachineStats

	// lines holds the per-line bookkeeping that used to live in five
	// separate maps (silent-upgrade marks, flush/evict epochs, probe-
	// pressure state): one lookup per operation instead of up to five.
	// Entries are created on first flush/upgrade/eviction and never
	// removed — the population is bounded by the lines ever probed.
	// The storage is an inline open-addressing table (metaSlots) plus a
	// move-to-front lookaside; see meta/metaMake. A *lineMeta is valid
	// only until the next metaMake (growth moves the slots array), so
	// callers must not hold one across a call that can create entries.
	metaSlots []metaSlot
	metaMask  uint64
	metaUsed  int
	lookLine  [metaLookN]uint64
	lookMeta  [metaLookN]*lineMeta

	// memo is the service-path memo table: protocol transitions, static
	// path latencies and jitter factors precomputed from (cfg, spec).
	// See memo.go; InvalidateMemo rebuilds it.
	memo *serviceMemo

	// lastUtil is the highest link utilization seen along the most
	// recent miss's service path; it feeds the contention multiplier of
	// the probe-pressure model.
	lastUtil float64

	// tlbs are the per-core translation buffers (nil entries when
	// disabled).
	tlbs []*tlb

	// onAccess, when non-nil, observes every completed memory operation
	// (loads, stores, and flushes). Tracers attach here; the hook must
	// not call back into the machine.
	onAccess func(ev AccessEvent)
}

// AccessEvent describes one completed memory operation for tracers.
type AccessEvent struct {
	// Cycle is the issuing thread's clock when the operation completed.
	Cycle sim.Cycles
	// Thread is the issuing sim thread's id.
	Thread int
	// Core is the global core id.
	Core int
	// Line is the line-aligned physical address.
	Line uint64
	// Op is "load", "store" or "flush".
	Op string
	// Path is the service path (loads and stores).
	Path Path
	// Latency is the operation's cost in cycles.
	Latency sim.Cycles
}

// SetAccessObserver installs (or clears, with nil) the per-operation
// observer hook.
func (m *Machine) SetAccessObserver(fn func(AccessEvent)) { m.onAccess = fn }

// Traced reports whether an access observer is attached. Batching
// executors consult it: the observer contract delivers events in
// non-decreasing cycle order, which the fused fast path cannot
// guarantee, so traced runs take the per-operation path.
func (m *Machine) Traced() bool { return m.onAccess != nil }

// lineMeta consolidates the per-line bookkeeping of the probe-pressure
// and mitigation models.
type lineMeta struct {
	// upgraded marks lines whose sole owner performed a silent E->M
	// upgrade, consulted only when Mitigations.LLCNotifiedOfEToM is on.
	upgraded bool
	// hasFlush records that lastFlush holds a real timestamp.
	hasFlush bool
	// flushEpochs counts explicit flushes of the line. A cache owner can
	// observe the same fact physically (its next load misses), so
	// exposing the counter gives attack code an exact, cheap stand-in
	// for "my reload missed, therefore the spy flushed again".
	flushEpochs uint64
	// evictEpochs counts inclusive-LLC back-invalidations (the eviction
	// analogue of flushEpochs).
	evictEpochs uint64
	// lastFlush and pressure implement the probe-pressure jitter model:
	// flushing the same line at short intervals (fast flush+reload
	// probing) widens the latency spread of subsequent misses on it.
	// This is the simulator's calibrated stand-in for the pipeline and
	// queue pressure that degrades raw-bit accuracy at high sampling
	// rates on real hardware (§VIII-B, Figure 8). See DESIGN.md.
	lastFlush sim.Cycles
	pressure  float64
}

// metaLookN is the lookaside depth over the line-metadata table; four
// slots keep the accessed line resident across interleaved eviction-
// victim bookkeeping (see the analogous directory lookaside).
const metaLookN = 4

// metaSlot is one open-addressing table slot with the record inline.
type metaSlot struct {
	line uint64
	used bool
	m    lineMeta
}

// metaHash is the Fibonacci multiplicative hash over line addresses,
// with the high (entropy-rich) half folded into the low bits the table
// indexes with.
func metaHash(line uint64) uint64 {
	h := line * 0x9E3779B97F4A7C15
	return h ^ h>>32
}

// meta returns line's bookkeeping record, or nil when the line has none.
// The pointer is valid only until the next metaMake.
func (m *Machine) meta(line uint64) *lineMeta {
	if m.lookMeta[0] != nil && m.lookLine[0] == line {
		return m.lookMeta[0]
	}
	for i := 1; i < metaLookN; i++ {
		if m.lookMeta[i] != nil && m.lookLine[i] == line {
			lm := m.lookMeta[i]
			copy(m.lookLine[1:i+1], m.lookLine[:i])
			copy(m.lookMeta[1:i+1], m.lookMeta[:i])
			m.lookLine[0], m.lookMeta[0] = line, lm
			return lm
		}
	}
	if m.metaUsed == 0 {
		return nil
	}
	for h := metaHash(line); ; h++ {
		s := &m.metaSlots[h&m.metaMask]
		if !s.used {
			return nil
		}
		if s.line == line {
			m.lookPush(line, &s.m)
			return &s.m
		}
	}
}

// lookPush records line at the front of the metadata lookaside.
func (m *Machine) lookPush(line uint64, lm *lineMeta) {
	copy(m.lookLine[1:], m.lookLine[:metaLookN-1])
	copy(m.lookMeta[1:], m.lookMeta[:metaLookN-1])
	m.lookLine[0], m.lookMeta[0] = line, lm
}

// metaMake returns line's bookkeeping record, creating it if needed.
// Creation can grow the table, which invalidates previously returned
// *lineMeta pointers — callers must not hold one across this call.
func (m *Machine) metaMake(line uint64) *lineMeta {
	if lm := m.meta(line); lm != nil {
		return lm
	}
	if len(m.metaSlots) == 0 || (m.metaUsed+1)*4 > len(m.metaSlots)*3 {
		m.metaGrow()
	}
	for h := metaHash(line); ; h++ {
		s := &m.metaSlots[h&m.metaMask]
		if !s.used {
			*s = metaSlot{line: line, used: true}
			m.metaUsed++
			m.lookPush(line, &s.m)
			return &s.m
		}
	}
}

// metaGrow doubles the metadata table (minimum 64 slots).
func (m *Machine) metaGrow() {
	n := len(m.metaSlots) * 2
	if n < 64 {
		n = 64
	}
	old := m.metaSlots
	m.metaSlots = make([]metaSlot, n)
	m.metaMask = uint64(n - 1)
	for i := 0; i < metaLookN; i++ {
		m.lookMeta[i] = nil
	}
	for i := range old {
		s := &old[i]
		if !s.used {
			continue
		}
		for h := metaHash(s.line); ; h++ {
			t := &m.metaSlots[h&m.metaMask]
			if !t.used {
				*t = *s
				break
			}
		}
	}
}

// upgradedLine reports whether line carries a live silent-upgrade mark.
func (m *Machine) upgradedLine(line uint64) bool {
	lm := m.meta(line)
	return lm != nil && lm.upgraded
}

// clearUpgraded consumes line's silent-upgrade mark, if any.
func (m *Machine) clearUpgraded(line uint64) {
	if lm := m.meta(line); lm != nil {
		lm.upgraded = false
	}
}

// pressureRefCycles normalizes flush intervals in the probe-pressure
// model: an interval of this many cycles yields unit pressure.
const pressureRefCycles = 1000.0

// MachineStats counts accesses by service path.
type MachineStats struct {
	Loads      uint64
	Stores     uint64
	Flushes    uint64
	Prefetches uint64
	// ByPath counts loads and stores by where they were serviced.
	ByPath [pathCount]uint64
}

// New builds a machine inside world. It panics on invalid configuration
// (machines are constructed from static configs; see Config.Validate for
// the checked rules).
func New(world *sim.World, cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := world.Rand().Split()
	spec := coherence.MustSpec(cfg.Protocol)
	m := &Machine{
		cfg:      cfg,
		world:    world,
		rng:      rng,
		spec:     spec,
		llcTrust: cfg.Mitigations.LLCNotifiedOfEToM || !spec.SilentUpgrades(),
	}
	m.InvalidateMemo()
	lat := cfg.Latencies
	pol := cfg.ReplacementPolicy()
	for s := 0; s < cfg.Sockets; s++ {
		// In snoop-bus mode one broadcast bus replaces the ring: same
		// base latency, but every snooping cache occupies it, so its
		// per-message service time is much larger and it congests first.
		linkName, service := fmt.Sprintf("ring%d", s), lat.RingService
		if cfg.SnoopBus {
			linkName, service = fmt.Sprintf("bus%d", s), lat.RingService*3
		}
		sock := &Socket{
			ID:   s,
			LLC:  cache.MustNew(cfg.LLC, pol),
			Dir:  coherence.NewDirectory(cfg.CoresPerSocket),
			Ring: interconnect.NewLink(linkName, lat.Ring, service, rng.Split()),
		}
		for c := 0; c < cfg.CoresPerSocket; c++ {
			core := &Core{
				Global: s*cfg.CoresPerSocket + c,
				Socket: s,
				Local:  c,
				L1:     cache.MustNew(cfg.L1, pol),
				L2:     cache.MustNew(cfg.L2, pol),
			}
			sock.Cores = append(sock.Cores, core)
			m.cores = append(m.cores, core)
		}
		m.sockets = append(m.sockets, sock)
	}
	m.qpi = make([][]*interconnect.Link, cfg.Sockets)
	for i := range m.qpi {
		m.qpi[i] = make([]*interconnect.Link, cfg.Sockets)
	}
	for i := 0; i < cfg.Sockets; i++ {
		for j := i + 1; j < cfg.Sockets; j++ {
			l := interconnect.NewLink(fmt.Sprintf("qpi%d-%d", i, j), lat.QPI, lat.QPIService, rng.Split())
			m.qpi[i][j] = l
			m.qpi[j][i] = l
		}
	}
	m.dram = interconnect.NewLink("dram", lat.DRAMService, lat.DRAMChannelService, rng.Split())
	m.tlbs = make([]*tlb, len(m.cores))
	if cfg.TLBEntries > 0 {
		for i := range m.tlbs {
			m.tlbs[i] = newTLB(cfg.TLBEntries)
		}
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Spec returns the resolved coherence protocol table.
func (m *Machine) Spec() *coherence.ProtocolSpec { return m.spec }

// World returns the owning simulation world.
func (m *Machine) World() *sim.World { return m.world }

// Core returns the core with global id g.
func (m *Machine) Core(g int) *Core {
	if g < 0 || g >= len(m.cores) {
		panic(fmt.Sprintf("machine: core %d out of range (machine has %d)", g, len(m.cores)))
	}
	return m.cores[g]
}

// Socket returns socket s.
func (m *Machine) Socket(s int) *Socket {
	if s < 0 || s >= len(m.sockets) {
		panic(fmt.Sprintf("machine: socket %d out of range", s))
	}
	return m.sockets[s]
}

// Sockets returns the socket count.
func (m *Machine) Sockets() int { return len(m.sockets) }

// Cores returns the total core count.
func (m *Machine) Cores() int { return len(m.cores) }

// Path identifies where a load was serviced — the six latency classes of
// the attack plus the private-cache hits.
type Path uint8

const (
	// PathL1 is a private L1 hit.
	PathL1 Path = iota
	// PathL2 is a private L2 hit.
	PathL2
	// PathLocalLLC is a clean hit in the local socket's LLC (the block is
	// in S there, or uncached by cores): the paper's "local shared" band.
	PathLocalLLC
	// PathLocalForward is an LLC-forwarded hit in a sibling core's
	// private cache (block in E/M there): the "local exclusive" band.
	PathLocalForward
	// PathRemoteLLC is a clean hit in a remote socket's LLC: "remote
	// shared".
	PathRemoteLLC
	// PathRemoteForward is a forward to a remote core's private cache:
	// "remote exclusive".
	PathRemoteForward
	// PathDRAM missed every cache.
	PathDRAM

	pathCount = int(PathDRAM) + 1
)

var pathNames = [...]string{
	"L1", "L2", "LocalLLC", "LocalForward", "RemoteLLC", "RemoteForward", "DRAM",
}

func (p Path) String() string {
	if int(p) < len(pathNames) {
		return pathNames[p]
	}
	return fmt.Sprintf("Path(%d)", uint8(p))
}

// GlobalSharers returns the number of private caches across all sockets
// holding line, excluding socket `exceptSocket` core `exceptLocal` (pass
// -1, -1 for none).
func (m *Machine) globalSharers(line uint64, exceptSocket, exceptLocal int) int {
	n := 0
	for _, s := range m.sockets {
		mask := s.Dir.SharerMask(line)
		if s.ID == exceptSocket && exceptLocal >= 0 {
			mask &^= 1 << uint(exceptLocal)
		}
		n += bits.OnesCount64(mask)
	}
	return n
}

// anyOtherCopy reports whether any cache outside socket s holds the line
// (private or LLC); used to decide E vs. S on a fill.
func (m *Machine) anyOtherCopy(line uint64, s int) bool {
	for _, sock := range m.sockets {
		if sock.ID == s {
			continue
		}
		if sock.Dir.SharerCount(line) > 0 {
			return true
		}
		if e, ok := sock.Dir.Lookup(line); ok && e.LLCValid {
			return true
		}
	}
	return false
}

// ProbeState returns the coherence state of line in core g's private
// caches (Invalid if absent) — a debugging/verification observer.
func (m *Machine) ProbeState(g int, addr uint64) coherence.State {
	core := m.Core(g)
	if s := core.L1.Probe(addr); s.Valid() {
		return s
	}
	return core.L2.Probe(addr)
}

// FlushEpoch returns how many times addr's line has been flushed. The
// covert channel's trojan uses it to count spy periods (each spy period
// begins with exactly one flush of the shared block).
func (m *Machine) FlushEpoch(addr uint64) uint64 {
	if lm := m.meta(cache.LineAddr(addr)); lm != nil {
		return lm.flushEpochs
	}
	return 0
}

// InvalidationEpoch counts every event that removed addr's line from the
// trojan's caches: explicit flushes plus inclusive-LLC back-
// invalidations. It is the period counter for eviction-based probing
// (§VI-B's "eviction of all the ways in the set"), where the spy never
// executes clflush; a real trojan observes the same events as misses on
// its next reload.
func (m *Machine) InvalidationEpoch(addr uint64) uint64 {
	if lm := m.meta(cache.LineAddr(addr)); lm != nil {
		return lm.flushEpochs + lm.evictEpochs
	}
	return 0
}

// LLCHasClean reports whether socket s's LLC holds a clean serviceable
// copy of addr's line.
func (m *Machine) LLCHasClean(s int, addr uint64) bool {
	line := cache.LineAddr(addr)
	e, ok := m.Socket(s).Dir.Lookup(line)
	return ok && e.LLCValid && m.Socket(s).LLC.Contains(line)
}
