package machine

import (
	"testing"
	"testing/quick"

	"coherentleak/internal/coherence"
	"coherentleak/internal/sim"
)

// fuzzOps drives a random operation sequence over a small line pool and
// checks every invariant after every operation.
func fuzzOps(t *testing.T, cfg Config, seed uint64, ops []uint16) bool {
	t.Helper()
	w := sim.NewWorld(sim.Config{Seed: seed})
	m := New(w, cfg)
	lines := []uint64{0x1000, 0x2000, 0x3000, 0x1000 + 64*uint64(cfg.LLC.Sets()), 0x40}
	okAll := true
	w.Spawn("fuzz", func(th *sim.Thread) {
		for _, op := range ops {
			core := int(op) % m.Cores()
			line := lines[int(op>>4)%len(lines)]
			switch (op >> 8) % 4 {
			case 0, 1:
				m.Load(th, core, line)
			case 2:
				m.Store(th, core, line)
			case 3:
				m.Flush(th, core, line)
			}
			for _, l := range lines {
				if err := m.CheckInvariants(l); err != nil {
					t.Logf("after op %#x: %v", op, err)
					okAll = false
					return
				}
			}
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	return okAll
}

// Property: every coherence invariant holds after every operation of any
// random load/store/flush interleaving, on the default machine.
func TestInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed uint16, ops []uint16) bool {
		if len(ops) > 300 {
			ops = ops[:300]
		}
		return fuzzOps(t, DefaultConfig(), uint64(seed)+1, ops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The same property across the protocol variants and LLC policies, with
// tiny caches so evictions and back-invalidations fire constantly.
func TestInvariantsAcrossVariants(t *testing.T) {
	variants := []struct {
		name string
		cfg  func() Config
	}{
		{"MESI-small", func() Config {
			c := SmallConfig()
			c.Protocol = coherence.MESI
			return c
		}},
		{"MOESI-small", func() Config {
			c := SmallConfig()
			c.Protocol = coherence.MOESI
			return c
		}},
		{"non-inclusive", func() Config {
			c := SmallConfig()
			c.InclusiveLLC = false
			return c
		}},
		{"exclusive", func() Config {
			c := SmallConfig()
			c.InclusiveLLC = false
			c.ExclusiveLLC = true
			return c
		}},
		{"DRAGON-small", func() Config {
			c := SmallConfig()
			c.Protocol = coherence.Dragon
			return c
		}},
		{"WT-NA-small", func() Config {
			c := SmallConfig()
			c.Protocol = coherence.WTNA
			return c
		}},
		{"snoop-bus", func() Config {
			c := SmallConfig()
			c.SnoopBus = true
			return c
		}},
		{"single-socket", func() Config {
			c := SmallConfig()
			c.Sockets = 1
			return c
		}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			f := func(seed uint16, ops []uint16) bool {
				if len(ops) > 200 {
					ops = ops[:200]
				}
				return fuzzOps(t, v.cfg(), uint64(seed)+3, ops)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// The generic unique-state invariant catches a second copy of a state
// the spec declares unique (MESIF's Forwarder, MOESI's Owner) — states
// the protocol machinery must never duplicate.
func TestInvariantUniqueStateViolation(t *testing.T) {
	cases := []struct {
		proto  coherence.Protocol
		unique coherence.State
	}{
		{coherence.MESIF, coherence.Forward},
		{coherence.MOESI, coherence.Owned},
		{coherence.Dragon, coherence.Owned},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		cfg.Protocol = tc.proto
		w := sim.NewWorld(sim.Config{Seed: 7})
		m := New(w, cfg)
		w.Spawn("setup", func(th *sim.Thread) {
			// Two sharers of a clean line, then corrupt both to the
			// unique state behind the protocol's back.
			m.Load(th, 0, addrB)
			m.Load(th, 1, addrB)
			if err := m.CheckInvariants(addrB); err != nil {
				t.Fatalf("%s: clean sharing flagged: %v", tc.proto, err)
			}
			for _, g := range []int{0, 1} {
				m.Core(g).L1.SetState(addrB, tc.unique)
				m.Core(g).L2.SetState(addrB, tc.unique)
			}
			if err := m.CheckInvariants(addrB); err == nil {
				t.Errorf("%s: duplicate %v copies not flagged", tc.proto, tc.unique)
			}
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

// Under MOESI a remote read of M leaves a dirty Owned copy coexisting
// with the reader's clean copy — legal, and exactly one O.
func TestInvariantsMOESIOwnedSharing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = coherence.MOESI
	runOn(t, cfg, func(th *sim.Thread, m *Machine) {
		m.Load(th, 0, addrB)
		m.Store(th, 0, addrB) // owner in M
		m.Load(th, 1, addrB)  // sibling read: M -> O + S copy
		if got := m.ProbeState(0, addrB); got != coherence.Owned {
			t.Fatalf("owner state after sibling read = %v, want O", got)
		}
		if err := m.CheckInvariants(addrB); err != nil {
			t.Fatalf("O+S sharing flagged: %v", err)
		}
	})
}

// Under WT-NA no operation sequence ever mints an exclusive or dirty
// private copy, so the LLC stays authoritative everywhere.
func TestInvariantsWTNANeverExclusive(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = coherence.WTNA
	runOn(t, cfg, func(th *sim.Thread, m *Machine) {
		m.Load(th, 0, addrB)
		m.Store(th, 0, addrB)
		m.Load(th, 6, addrB)
		m.Store(th, 6, addrB)
		for g := 0; g < m.Cores(); g++ {
			if st := m.ProbeState(g, addrB); st.Valid() && st != coherence.Shared {
				t.Fatalf("core %d holds %v under WT-NA, want S only", g, st)
			}
		}
		if err := m.CheckInvariants(addrB); err != nil {
			t.Fatal(err)
		}
	})
}

// Directed invariant checks at the interesting transitions.
func TestInvariantsAtKeyTransitions(t *testing.T) {
	runOn(t, DefaultConfig(), func(th *sim.Thread, m *Machine) {
		check := func(stage string) {
			t.Helper()
			if err := m.CheckInvariants(addrB); err != nil {
				t.Fatalf("%s: %v", stage, err)
			}
		}
		m.Load(th, 0, addrB) // E
		check("after E fill")
		m.Store(th, 0, addrB) // silent E->M
		check("after silent upgrade")
		m.Load(th, 6, addrB) // remote read of M: downgrade + writeback
		check("after remote read of M")
		m.Store(th, 6, addrB) // RFO across sockets
		check("after cross-socket RFO")
		m.Flush(th, 3, addrB)
		check("after flush")
	})
}
