package machine

import (
	"testing"
	"testing/quick"

	"coherentleak/internal/coherence"
	"coherentleak/internal/sim"
)

// fuzzOps drives a random operation sequence over a small line pool and
// checks every invariant after every operation.
func fuzzOps(t *testing.T, cfg Config, seed uint64, ops []uint16) bool {
	t.Helper()
	w := sim.NewWorld(sim.Config{Seed: seed})
	m := New(w, cfg)
	lines := []uint64{0x1000, 0x2000, 0x3000, 0x1000 + 64*uint64(cfg.LLC.Sets()), 0x40}
	okAll := true
	w.Spawn("fuzz", func(th *sim.Thread) {
		for _, op := range ops {
			core := int(op) % m.Cores()
			line := lines[int(op>>4)%len(lines)]
			switch (op >> 8) % 4 {
			case 0, 1:
				m.Load(th, core, line)
			case 2:
				m.Store(th, core, line)
			case 3:
				m.Flush(th, core, line)
			}
			for _, l := range lines {
				if err := m.CheckInvariants(l); err != nil {
					t.Logf("after op %#x: %v", op, err)
					okAll = false
					return
				}
			}
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	return okAll
}

// Property: every coherence invariant holds after every operation of any
// random load/store/flush interleaving, on the default machine.
func TestInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed uint16, ops []uint16) bool {
		if len(ops) > 300 {
			ops = ops[:300]
		}
		return fuzzOps(t, DefaultConfig(), uint64(seed)+1, ops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The same property across the protocol variants and LLC policies, with
// tiny caches so evictions and back-invalidations fire constantly.
func TestInvariantsAcrossVariants(t *testing.T) {
	variants := []struct {
		name string
		cfg  func() Config
	}{
		{"MESI-small", func() Config {
			c := SmallConfig()
			c.Protocol = coherence.MESI
			return c
		}},
		{"MOESI-small", func() Config {
			c := SmallConfig()
			c.Protocol = coherence.MOESI
			return c
		}},
		{"non-inclusive", func() Config {
			c := SmallConfig()
			c.InclusiveLLC = false
			return c
		}},
		{"exclusive", func() Config {
			c := SmallConfig()
			c.InclusiveLLC = false
			c.ExclusiveLLC = true
			return c
		}},
		{"snoop-bus", func() Config {
			c := SmallConfig()
			c.SnoopBus = true
			return c
		}},
		{"single-socket", func() Config {
			c := SmallConfig()
			c.Sockets = 1
			return c
		}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			f := func(seed uint16, ops []uint16) bool {
				if len(ops) > 200 {
					ops = ops[:200]
				}
				return fuzzOps(t, v.cfg(), uint64(seed)+3, ops)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Directed invariant checks at the interesting transitions.
func TestInvariantsAtKeyTransitions(t *testing.T) {
	runOn(t, DefaultConfig(), func(th *sim.Thread, m *Machine) {
		check := func(stage string) {
			t.Helper()
			if err := m.CheckInvariants(addrB); err != nil {
				t.Fatalf("%s: %v", stage, err)
			}
		}
		m.Load(th, 0, addrB) // E
		check("after E fill")
		m.Store(th, 0, addrB) // silent E->M
		check("after silent upgrade")
		m.Load(th, 6, addrB) // remote read of M: downgrade + writeback
		check("after remote read of M")
		m.Store(th, 6, addrB) // RFO across sockets
		check("after cross-socket RFO")
		m.Flush(th, 3, addrB)
		check("after flush")
	})
}
