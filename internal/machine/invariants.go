package machine

import (
	"fmt"

	"coherentleak/internal/cache"
	"coherentleak/internal/coherence"
)

// CheckInvariants validates the machine-wide coherence invariants for
// the given line and returns the first violation found, or nil. It is an
// O(cores) debugging/verification observer used by the property tests
// after every operation; production paths never call it.
//
// Invariants checked (the SWMR and bookkeeping properties of Sorin, Hill
// & Wood, adapted to the two-level-private + shared-LLC hierarchy):
//
//  1. Single writer: at most one core holds the line in a writable state
//     (M, or E which can silently upgrade), and if one does, no other
//     core holds any valid copy.
//  2. Dirty uniqueness: at most one dirty (M/O) copy exists globally.
//  3. Directory accuracy: a socket's sharer bit for a core is set iff
//     that core's L1 or L2 holds a valid copy.
//  4. L1 inclusion: every valid L1 line is also valid in the same
//     core's L2 with a compatible (equal-or-stronger in L2? equal) tag
//     presence.
//  5. LLC inclusion (inclusive mode): every valid private copy is also
//     present in its socket's LLC.
//  6. LLC exclusion (exclusive mode): no line is simultaneously valid in
//     a socket's LLC and any of that socket's private caches.
//  7. Protocol state legality: every cached state belongs to the
//     configured protocol's spec table.
//  8. Unique-state uniqueness: at most one copy of any state the spec
//     declares unique (MESIF's one Forwarder, MOESI's and Dragon's one
//     Owner) exists globally.
func (m *Machine) CheckInvariants(addr uint64) error {
	line := cache.LineAddr(addr)

	type holder struct {
		core  *Core
		state coherence.State
	}
	var holders []holder
	dirty := 0
	writers := 0

	for _, sock := range m.sockets {
		for _, core := range sock.Cores {
			l1 := core.L1.Probe(line)
			l2 := core.L2.Probe(line)

			// Invariant 7: protocol legality.
			for _, st := range []coherence.State{l1, l2} {
				if st.Valid() && !m.spec.Has(st) {
					return fmt.Errorf("core %d holds %v, illegal under %s", core.Global, st, m.spec.Name())
				}
			}
			// Invariant 4: L1 ⊆ L2.
			if l1.Valid() && !l2.Valid() {
				return fmt.Errorf("core %d: line %#x in L1 (%v) but not L2", core.Global, line, l1)
			}

			st := l1
			if !st.Valid() {
				st = l2
			}
			if st.Valid() {
				holders = append(holders, holder{core, st})
				if st.Dirty() {
					dirty++
				}
				if st.Writable() {
					writers++
				}
			}

			// Invariant 3: directory accuracy.
			inDir := sock.Dir.IsSharer(line, core.Local)
			if st.Valid() != inDir {
				return fmt.Errorf("core %d: presence=%v but directory sharer bit=%v", core.Global, st.Valid(), inDir)
			}
		}

		llcHas := sock.LLC.Contains(line)
		privInSocket := 0
		for _, core := range sock.Cores {
			if m.ProbeState(core.Global, line).Valid() {
				privInSocket++
			}
		}
		// Invariant 5: inclusive LLC.
		if m.cfg.InclusiveLLC && privInSocket > 0 && !llcHas {
			return fmt.Errorf("socket %d: %d private copies of %#x without an LLC copy (inclusion violated)", sock.ID, privInSocket, line)
		}
		// Invariant 6: exclusive LLC.
		if m.cfg.ExclusiveLLC && privInSocket > 0 && llcHas {
			return fmt.Errorf("socket %d: line %#x in both LLC and private caches (exclusion violated)", sock.ID, line)
		}
	}

	// Invariant 2: dirty uniqueness.
	if dirty > 1 {
		return fmt.Errorf("line %#x has %d dirty copies", line, dirty)
	}
	// Invariant 8: at most one copy of any spec-unique state.
	counts := make(map[coherence.State]int)
	for _, h := range holders {
		counts[h.state]++
	}
	for st, n := range counts {
		if n > 1 && m.spec.Unique(st) {
			return fmt.Errorf("line %#x has %d copies in unique state %v under %s", line, n, st, m.spec.Name())
		}
	}
	// Invariant 1: single writer implies sole copy.
	if writers > 1 {
		return fmt.Errorf("line %#x has %d writable copies", line, writers)
	}
	if writers == 1 && len(holders) > 1 {
		writer := holders[0]
		for _, h := range holders {
			if h.state.Writable() {
				writer = h
				break
			}
		}
		return fmt.Errorf("line %#x writable at core %d but %d total copies exist",
			line, writer.core.Global, len(holders))
	}
	return nil
}
