package machine

import (
	"testing"

	"coherentleak/internal/sim"
)

// §VIII-E variant: snoop-bus protocols keep the same latency-band
// structure (reads on E-state blocks come from private caches, reads on
// S-state blocks from the shared cache), just with an arbitration cost.
func TestSnoopBusKeepsBandStructure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SnoopBus = true
	runOn(t, cfg, func(th *sim.Thread, m *Machine) {
		m.Load(th, 0, addrB+64) // warm the TLB
		m.Flush(th, 0, addrB+64)
		// Local shared.
		m.Load(th, 1, addrB)
		m.Load(th, 2, addrB)
		th.Advance(4000)
		s := m.Load(th, 0, addrB)
		if s.Path != PathLocalLLC {
			t.Fatalf("snoop shared path = %v", s.Path)
		}

		m.Flush(th, 0, addrB)
		m.Load(th, 1, addrB)
		th.Advance(4000)
		e := m.Load(th, 0, addrB)
		if e.Path != PathLocalForward {
			t.Fatalf("snoop exclusive path = %v", e.Path)
		}
		// The E/S gap persists, shifted up by the arbitration cost.
		if e.Latency <= s.Latency {
			t.Fatalf("snoop E (%d) not slower than S (%d)", e.Latency, s.Latency)
		}
		arb := cfg.Latencies.BusArbitration
		if s.Latency < 98 || s.Latency > 98+arb+2*sim.Cycles(cfg.Latencies.Jitter)+4 {
			t.Fatalf("snoop S latency %d outside expected band", s.Latency)
		}
	})
}

func TestSnoopBusCongestsFaster(t *testing.T) {
	mk := func(snoop bool) float64 {
		w := sim.NewWorld(sim.Config{Seed: 4})
		cfg := DefaultConfig()
		cfg.SnoopBus = snoop
		m := New(w, cfg)
		w.Spawn("traffic", func(th *sim.Thread) {
			for i := uint64(0); i < 400; i++ {
				m.Load(th, 1, 0x100000+i*64)
				th.Advance(20)
			}
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Socket(0).Ring.Utilization(w.Now())
	}
	ring, bus := mk(false), mk(true)
	if bus <= ring {
		t.Fatalf("bus utilization %.3f not above ring %.3f under the same traffic", bus, ring)
	}
}

// §VIII-E variant: an exclusive LLC merges the local E and S bands (both
// serviced by forwards, since the LLC never holds a line the private
// caches hold)...
func TestExclusiveLLCMergesESBands(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InclusiveLLC = false
	cfg.ExclusiveLLC = true
	runOn(t, cfg, func(th *sim.Thread, m *Machine) {
		m.Load(th, 0, addrB+64) // warm the TLB
		// Shared: two sharers, but no clean LLC copy -> sharer forward.
		m.Load(th, 1, addrB)
		m.Load(th, 2, addrB)
		th.Advance(4000)
		s := m.Load(th, 0, addrB)
		if s.Path != PathLocalForward {
			t.Fatalf("exclusive-LLC shared path = %v, want forward", s.Path)
		}

		m.Flush(th, 0, addrB)
		m.Load(th, 1, addrB)
		th.Advance(4000)
		e := m.Load(th, 0, addrB)
		if e.Path != PathLocalForward {
			t.Fatalf("exclusive-LLC E path = %v", e.Path)
		}
		diff := int64(e.Latency) - int64(s.Latency)
		if diff < 0 {
			diff = -diff
		}
		if diff > 2*cfg.Latencies.Jitter+4 {
			t.Fatalf("E/S latencies differ by %d on an exclusive LLC", diff)
		}
	})
}

// ...but the location signal survives, which is why the paper says
// changing inclusion alone "may not be sufficient".
func TestExclusiveLLCKeepsLocationSignal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InclusiveLLC = false
	cfg.ExclusiveLLC = true
	runOn(t, cfg, func(th *sim.Thread, m *Machine) {
		m.Load(th, 0, addrB+64) // warm the TLB
		m.Load(th, 1, addrB)    // local owner
		th.Advance(4000)
		local := m.Load(th, 0, addrB)

		m.Flush(th, 0, addrB)
		m.Load(th, 6, addrB) // remote owner
		th.Advance(4000)
		remote := m.Load(th, 0, addrB)

		if remote.Latency <= local.Latency+50 {
			t.Fatalf("remote (%d) vs local (%d): location signal lost", remote.Latency, local.Latency)
		}
	})
}

// Exclusion property: a line served out of the LLC leaves it.
func TestExclusiveLLCMoveOut(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InclusiveLLC = false
	cfg.ExclusiveLLC = true
	runOn(t, cfg, func(th *sim.Thread, m *Machine) {
		// Fill private, then force an L2 eviction so the line lands in
		// the LLC as a victim.
		m.Load(th, 0, addrB)
		l2 := m.Core(0).L2
		target := l2.SetIndexOf(addrB)
		evicted := 0
		for i := uint64(1); evicted < 10 && i < 8192; i++ {
			a := addrB + i*64*uint64(l2.Geometry().Sets())
			if l2.SetIndexOf(a) != target {
				continue
			}
			m.Load(th, 0, a)
			evicted++
		}
		if m.ProbeState(0, addrB).Valid() {
			t.Skip("victim not evicted from L2; geometry changed")
		}
		if !m.LLCHasClean(0, addrB) {
			t.Fatal("clean victim not captured by the exclusive LLC")
		}
		// A read hit in the LLC moves the line back to the private cache
		// and out of the LLC.
		a := m.Load(th, 1, addrB)
		if a.Path != PathLocalLLC {
			t.Fatalf("victim hit path = %v", a.Path)
		}
		if m.LLCHasClean(0, addrB) {
			t.Fatal("line still in LLC after move-out (exclusion violated)")
		}
	})
}

func TestInclusiveExclusiveConflictRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExclusiveLLC = true // InclusiveLLC is already true
	if cfg.Validate() == nil {
		t.Fatal("inclusive+exclusive accepted")
	}
}
