package machine

import (
	"fmt"

	"coherentleak/internal/cache"
	"coherentleak/internal/coherence"
	"coherentleak/internal/sim"
)

// Latencies are the component service times (in cycles) composed into
// end-to-end load/store latencies. The defaults are calibrated so the
// four (location, coherence-state) bands land where the paper's Figure 2
// and §V place them on the Xeon X5650: local S ≈ 98, local E ≈ 124,
// remote S ≈ 186, remote E ≈ 242, DRAM ≈ 346 cycles.
type Latencies struct {
	// L1Hit is a load hit in the core's L1.
	L1Hit sim.Cycles
	// L2Hit is a load that misses L1 and hits L2.
	L2Hit sim.Cycles
	// MissBase is the L1+L2 tag-check overhead paid by every request
	// that leaves the core's private caches.
	MissBase sim.Cycles
	// Ring is the base one-way latency of the on-chip interconnect
	// between a core and its socket's LLC.
	Ring sim.Cycles
	// RingService is the ring's per-message occupancy (for queuing).
	RingService sim.Cycles
	// LLCService is the LLC tag+data array access time.
	LLCService sim.Cycles
	// ForwardLocal is the extra cost of forwarding a miss from the LLC to
	// the owning core's private cache within the same socket — the
	// E-state penalty the covert channel measures (124-98 = 26).
	ForwardLocal sim.Cycles
	// QPI is the base one-way latency of the inter-socket link.
	QPI sim.Cycles
	// QPIService is the QPI per-message occupancy.
	QPIService sim.Cycles
	// ForwardRemote is the extra cost of the remote-socket owner forward.
	ForwardRemote sim.Cycles
	// DRAMService is the memory access time after all caches miss.
	DRAMService sim.Cycles
	// DRAMChannelService is the memory channel occupancy (for queuing).
	DRAMChannelService sim.Cycles
	// StoreHit is a store to a line already writable (M, or E upgrading
	// silently).
	StoreHit sim.Cycles
	// RFOOverhead is the additional invalidation cost of a write miss or
	// S->M upgrade, on top of the corresponding load path.
	RFOOverhead sim.Cycles
	// BusArbitration is the extra cost every off-core request pays in
	// SnoopBus mode (winning the broadcast bus).
	BusArbitration sim.Cycles
	// PageWalk is the TLB-miss penalty. Zero disables TLB modelling.
	PageWalk sim.Cycles
	// FlushBase is the cost of a clflush reaching every cache.
	FlushBase sim.Cycles
	// FlushDirty is the additional write-back cost when a flush finds a
	// dirty copy.
	FlushDirty sim.Cycles
	// Jitter is the half-width of the deterministic triangular noise
	// added to every memory operation, mimicking the narrow measurement
	// spread inside each Figure 2 band.
	Jitter int64
	// ProbePressureJitter scales the extra latency spread caused by
	// high-frequency flush+reload probing of a single line (queue and
	// pipeline pressure). It is the calibrated knob behind the
	// accuracy-vs-rate tradeoff of Figure 8; zero disables the model.
	ProbePressureJitter float64
}

// DefaultLatencies returns the Xeon-X5650-calibrated component times.
func DefaultLatencies() Latencies {
	return Latencies{
		L1Hit:               4,
		L2Hit:               12,
		MissBase:            16,
		Ring:                14,
		RingService:         4,
		LLCService:          54,
		ForwardLocal:        26,
		QPI:                 44,
		QPIService:          6,
		ForwardRemote:       56,
		DRAMService:         160,
		DRAMChannelService:  30,
		StoreHit:            3,
		RFOOverhead:         20,
		BusArbitration:      10,
		PageWalk:            120,
		FlushBase:           90,
		FlushDirty:          30,
		Jitter:              5,
		ProbePressureJitter: 10,
	}
}

// Mitigations are the §VIII-E defensive hardware options. All default to
// off; the mitigate package and ablation benches flip them.
type Mitigations struct {
	// LLCNotifiedOfEToM implements the paper's hardware change #3: E->M
	// upgrades notify the LLC, so a miss on a still-clean E line is
	// serviced directly by the LLC and the E/S latency bands collapse.
	LLCNotifiedOfEToM bool
	// EqualizeSocketLatency is the "hardware timing obfuscator": pad
	// every off-core load to the worst-case path so location is hidden.
	EqualizeSocketLatency bool
}

// Config describes a simulated multi-socket machine.
type Config struct {
	// Sockets is the processor (package) count. The paper's testbed has 2.
	Sockets int
	// CoresPerSocket is the core count per package. The testbed has 6.
	CoresPerSocket int
	// ClockHz converts cycles to seconds for bandwidth reporting.
	// The testbed runs at 2.67 GHz.
	ClockHz float64
	// Protocol selects the coherence protocol by registry name; the empty
	// string means MESI (the historical default). coherence.Protocols()
	// lists the registered names — the built-ins are MESI, MESIF, MOESI,
	// DRAGON and WT-NA.
	Protocol coherence.Protocol
	// L1, L2 are per-core private cache shapes; LLC is the per-socket
	// shared cache shape.
	L1, L2, LLC cache.Geometry
	// InclusiveLLC back-invalidates private copies on LLC eviction
	// (Intel-style). With both inclusion flags false the LLC is
	// non-inclusive (fills bypass it; write-backs land in it).
	InclusiveLLC bool
	// ExclusiveLLC makes the LLC a victim cache: fills go to private
	// caches only, L2 victims move into the LLC, and an LLC read hit
	// moves the line back out. §VIII-E: "on exclusive caches, both S-
	// and E-state blocks may have similar latency. But data accesses in
	// different cache levels and sockets will have distinct latency
	// profiles." Mutually exclusive with InclusiveLLC.
	ExclusiveLLC bool
	// TLBEntries is the per-core TLB capacity (0 disables the TLB; the
	// default models a 64-entry DTLB).
	TLBEntries int
	// NextLinePrefetch enables a simple L2 next-line prefetcher: an L2
	// load miss also fetches the following line in the background.
	// Prefetchers are a classic hazard for flush+reload attacks (they
	// touch lines the attacker did not access, perturbing coherence
	// states); the default is off, matching the paper's testbed runs,
	// and the ablation bench measures the channel with it on.
	NextLinePrefetch bool
	// Replacement selects the cache replacement policy by registry name,
	// case-insensitively, for every cache level; the empty string means
	// LRU (the historical default). cache.Policies() lists the
	// registered names — the built-ins are LRU, tree-PLRU, SRRIP and
	// BRRIP. The field is digest-relevant (omitempty keeps default-LRU
	// digests — and therefore cached cells — identical to configs that
	// predate it).
	Replacement string `json:",omitempty"`
	// SnoopBus replaces the directory lookup with a broadcast bus per
	// socket (§VIII-E's first protocol class): every off-core miss pays
	// a bus arbitration, and one bus carries all of a socket's miss
	// traffic, so it congests faster than the ring. The service paths —
	// and therefore the latency-band structure — are unchanged, which is
	// the paper's point: "our findings extend to different classes of
	// protocols."
	SnoopBus bool
	// Latencies are the component service times.
	Latencies Latencies
	// Mitigations are defensive options, normally all off.
	Mitigations Mitigations
	// Kernel selects the sim-kernel execution strategy for access-stream
	// programs: "interp" (or empty, the reference interpreter) runs one
	// timed operation per scheduler step; "compiled" batches straight-
	// line runs through the preflattened fast path (see
	// kernel.ExecMode). The two are bit-identical by contract — the
	// differential harness in internal/kernel/difftest enforces it — so
	// the field is excluded from the JSON config digest and cached cell
	// outputs are shared between kernels.
	Kernel string `json:"-"`
}

// Kernel mode names accepted by Config.Kernel.
const (
	KernelInterp   = "interp"
	KernelCompiled = "compiled"
)

// CompiledKernel reports whether the compiled access-stream kernel is
// selected.
func (c Config) CompiledKernel() bool { return c.Kernel == KernelCompiled }

// ReplacementPolicy resolves the configured replacement policy name.
// Unknown names resolve to LRU here; Validate rejects them before any
// machine is built.
func (c Config) ReplacementPolicy() cache.Policy {
	p, _ := cache.PolicyFor(c.Replacement)
	return p
}

// DefaultConfig returns the paper's testbed: a 2-socket, 6-core-per-socket
// Xeon X5650 with 32 KB L1, 256 KB L2, 12 MB inclusive LLC, MESIF, 2.67 GHz.
func DefaultConfig() Config {
	return Config{
		Sockets:        2,
		CoresPerSocket: 6,
		ClockHz:        2.67e9,
		Protocol:       coherence.MESIF,
		L1:             cache.Geometry{SizeBytes: 32 * 1024, Ways: 8},
		L2:             cache.Geometry{SizeBytes: 256 * 1024, Ways: 8},
		LLC:            cache.Geometry{SizeBytes: 12 * 1024 * 1024, Ways: 16},
		InclusiveLLC:   true,
		TLBEntries:     64,
		Latencies:      DefaultLatencies(),
	}
}

// SmallConfig returns a scaled-down machine (tiny caches, same latency
// structure) for fast unit tests and capacity-pressure experiments.
func SmallConfig() Config {
	c := DefaultConfig()
	c.L1 = cache.Geometry{SizeBytes: 2 * 1024, Ways: 4}
	c.L2 = cache.Geometry{SizeBytes: 8 * 1024, Ways: 4}
	c.LLC = cache.Geometry{SizeBytes: 64 * 1024, Ways: 8}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Sockets <= 0 {
		return fmt.Errorf("machine: need at least one socket, got %d", c.Sockets)
	}
	if c.CoresPerSocket <= 0 || c.CoresPerSocket > 64 {
		return fmt.Errorf("machine: cores per socket must be 1..64, got %d", c.CoresPerSocket)
	}
	if c.ClockHz <= 0 {
		return fmt.Errorf("machine: non-positive clock %v", c.ClockHz)
	}
	if _, err := coherence.SpecFor(c.Protocol); err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	for _, g := range []struct {
		name string
		geo  cache.Geometry
	}{{"L1", c.L1}, {"L2", c.L2}, {"LLC", c.LLC}} {
		if err := g.geo.Validate(); err != nil {
			return fmt.Errorf("machine: %s: %w", g.name, err)
		}
	}
	if c.InclusiveLLC && c.ExclusiveLLC {
		return fmt.Errorf("machine: LLC cannot be both inclusive and exclusive")
	}
	pol, err := cache.PolicyFor(c.Replacement)
	if err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	for _, g := range []struct {
		name string
		geo  cache.Geometry
	}{{"L1", c.L1}, {"L2", c.L2}, {"LLC", c.LLC}} {
		if err := pol.CheckGeometry(g.geo); err != nil {
			return fmt.Errorf("machine: %s: %w", g.name, err)
		}
	}
	switch c.Kernel {
	case "", KernelInterp, KernelCompiled:
	default:
		return fmt.Errorf("machine: unknown kernel %q (want %q or %q)", c.Kernel, KernelInterp, KernelCompiled)
	}
	return nil
}

// Cores returns the total core count.
func (c Config) Cores() int { return c.Sockets * c.CoresPerSocket }

// CyclesToSeconds converts a cycle count to seconds at the configured
// clock.
func (c Config) CyclesToSeconds(cy sim.Cycles) float64 {
	return float64(cy) / c.ClockHz
}
