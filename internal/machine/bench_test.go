package machine

import (
	"testing"

	"coherentleak/internal/sim"
)

// benchLoop runs body b.N times on a fresh machine inside a sim thread,
// with the timer reset after warmup so setup and spawn costs are excluded.
func benchLoop(b *testing.B, warm, body func(t *sim.Thread, m *Machine, i int)) {
	b.Helper()
	w := sim.NewWorld(sim.Config{Seed: 1})
	m := New(w, DefaultConfig())
	done := false
	w.Spawn("bench", func(t *sim.Thread) {
		warm(t, m, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			body(t, m, i)
		}
		done = true
	})
	if err := w.RunUntil(func() bool { return done }); err != nil {
		b.Fatal(err)
	}
	w.Drain()
}

// BenchmarkLoadHit measures the per-access fast path: a repeated L1 hit.
// The acceptance bar for the flat-layout refactor is ~0 allocs/op.
func BenchmarkLoadHit(b *testing.B) {
	const addr = 0x1000
	benchLoop(b,
		func(t *sim.Thread, m *Machine, _ int) { m.Load(t, 0, addr) },
		func(t *sim.Thread, m *Machine, _ int) { m.Load(t, 0, addr) },
	)
}

// BenchmarkLoadMiss measures the steady-state miss path: the working set
// cycles through more lines than L2 holds (256 KiB = 4096 lines) but far
// fewer than the LLC (12 MiB), so after warmup every load misses the
// private caches and is serviced by the local LLC. Also ~0 allocs/op.
func BenchmarkLoadMiss(b *testing.B) {
	const (
		base  = uint64(0x100000)
		lines = 8192 // 512 KiB working set: 2x L2, 1/24 of the LLC
	)
	addr := func(i int) uint64 { return base + uint64(i%lines)*64 }
	benchLoop(b,
		func(t *sim.Thread, m *Machine, _ int) {
			for i := 0; i < lines; i++ {
				m.Load(t, 0, addr(i))
			}
		},
		func(t *sim.Thread, m *Machine, i int) { m.Load(t, 0, addr(i)) },
	)
}

// BenchmarkStoreRFO measures the cross-core invalidation path: core 1
// stores a line core 0 keeps re-sharing.
func BenchmarkStoreRFO(b *testing.B) {
	const addr = 0x2000
	benchLoop(b,
		func(t *sim.Thread, m *Machine, _ int) { m.Load(t, 0, addr) },
		func(t *sim.Thread, m *Machine, _ int) {
			m.Load(t, 0, addr)
			m.Store(t, 1, addr)
		},
	)
}
