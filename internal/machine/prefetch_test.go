package machine

import (
	"testing"

	"coherentleak/internal/coherence"
	"coherentleak/internal/sim"
)

func TestPrefetchFillsNextLine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NextLinePrefetch = true
	runOn(t, cfg, func(th *sim.Thread, m *Machine) {
		m.Load(th, 0, addrB)
		if !m.ProbeState(0, addrB+64).Valid() {
			t.Fatal("next line not prefetched")
		}
		if m.Stats.Prefetches == 0 {
			t.Fatal("prefetch not counted")
		}
	})
}

func TestPrefetchOffByDefault(t *testing.T) {
	runOn(t, DefaultConfig(), func(th *sim.Thread, m *Machine) {
		m.Load(th, 0, addrB)
		if m.ProbeState(0, addrB+64).Valid() {
			t.Fatal("prefetch fired while disabled")
		}
		if m.Stats.Prefetches != 0 {
			t.Fatal("prefetch counted while disabled")
		}
	})
}

func TestPrefetchChargesNothing(t *testing.T) {
	measure := func(prefetch bool) sim.Cycles {
		w := sim.NewWorld(sim.Config{Seed: 8})
		cfg := DefaultConfig()
		cfg.NextLinePrefetch = prefetch
		m := New(w, cfg)
		var lat sim.Cycles
		w.Spawn("t", func(th *sim.Thread) {
			lat = m.Load(th, 0, addrB).Latency
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return lat
	}
	a, b := measure(false), measure(true)
	// Identical seeds, identical demand path: the prefetch must not be
	// billed to the requesting thread (the jitter draw order shifts, so
	// allow the jitter envelope).
	diff := int64(a) - int64(b)
	if diff < 0 {
		diff = -diff
	}
	if diff > 2*DefaultConfig().Latencies.Jitter+2 {
		t.Fatalf("prefetch changed demand latency by %d cycles", diff)
	}
}

// The hazard that makes prefetchers matter to this paper: a prefetch
// downgrades another core's E copy of the *adjacent* line, exactly like
// a demand load would.
func TestPrefetchDowngradesNeighbourE(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NextLinePrefetch = true
	runOn(t, cfg, func(th *sim.Thread, m *Machine) {
		next := addrB + 64
		m.Load(th, 1, next) // core 1 owns the neighbour in E
		if st := m.ProbeState(1, next); st != coherence.Exclusive {
			t.Fatalf("setup: neighbour state %v", st)
		}
		m.Load(th, 0, addrB) // core 0's demand load prefetches next
		if st := m.ProbeState(1, next); st.SoleCopy() {
			t.Fatalf("prefetch left neighbour owner in %v", st)
		}
	})
}

// The covert channel survives a prefetcher: the probe line's neighbours
// are not part of the protocol.
func TestInvariantsHoldWithPrefetcher(t *testing.T) {
	cfg := SmallConfig()
	cfg.NextLinePrefetch = true
	w := sim.NewWorld(sim.Config{Seed: 77})
	m := New(w, cfg)
	lines := []uint64{0x1000, 0x1040, 0x2000, 0x2040}
	w.Spawn("fuzz", func(th *sim.Thread) {
		for i := 0; i < 400; i++ {
			core := i % m.Cores()
			line := lines[i%len(lines)]
			switch i % 3 {
			case 0, 1:
				m.Load(th, core, line)
			case 2:
				m.Flush(th, core, line)
			}
			for _, l := range lines {
				if err := m.CheckInvariants(l); err != nil {
					t.Errorf("op %d: %v", i, err)
					return
				}
			}
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}
