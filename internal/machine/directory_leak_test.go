package machine

import (
	"testing"

	"coherentleak/internal/sim"
)

// Regression for the directory leak: the store path used to clear
// LLCValid on remote-socket records through Lookup's pointer, bypassing
// the delete-when-empty logic, so every cross-socket RFO left a dead
// {Sharers:0, LLCValid:false} record behind forever. Dead records are
// not just wasted memory — needsSnoop treats any record as "must snoop",
// so a leak slowly poisons DRAM-fetch timing too.
func TestStoreRFOReclaimsRemoteDirectoryRecords(t *testing.T) {
	runOn(t, DefaultConfig(), func(th *sim.Thread, m *Machine) {
		const n = 64
		base := uint64(0x100000)
		// Core 0 (socket 0) and core 6 (socket 1) share n lines, then
		// core 0 takes each line exclusive with a store.
		for i := uint64(0); i < n; i++ {
			addr := base + i*64
			m.Load(th, 0, addr)
			m.Load(th, 6, addr)
			m.Store(th, 0, addr)
		}
		// Socket 1 holds no copies of these lines any more: its directory
		// must have reclaimed every record, not kept dead ones.
		if got := m.Socket(1).Dir.Lines(); got != 0 {
			t.Fatalf("remote directory holds %d records after RFOs, want 0", got)
		}
	})
}

// A flush-heavy run must leave the whole directory near-empty: clflush
// removes every record, and nothing the preceding loads/stores did may
// strand entries that flushes cannot reach.
func TestFlushHeavyRunLeavesDirectoryEmpty(t *testing.T) {
	runOn(t, DefaultConfig(), func(th *sim.Thread, m *Machine) {
		const n = 256
		base := uint64(0x400000)
		for i := uint64(0); i < n; i++ {
			addr := base + i*64
			m.Load(th, 0, addr)
			m.Load(th, 6, addr) // cross-socket sharing
			if i%3 == 0 {
				m.Store(th, 1, addr) // RFO churn from a sibling core
			}
		}
		for i := uint64(0); i < n; i++ {
			m.Flush(th, 0, base+i*64)
		}
		for s := 0; s < m.Sockets(); s++ {
			if got := m.Socket(s).Dir.Lines(); got != 0 {
				t.Fatalf("socket %d directory holds %d records after flushing everything, want 0", s, got)
			}
		}
	})
}
