package machine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"

	"coherentleak/internal/cache"
	"coherentleak/internal/coherence"
)

// StateDigest returns a deterministic hash of the machine's complete
// architectural and statistical state: every cache's valid lines and
// states, every directory record, the per-line bookkeeping (flush
// epochs, upgrade marks, pressure), interconnect counters, TLB counters
// and the access statistics. Two machines that executed equivalent
// operation streams — e.g. the interpreted and compiled kernels over the
// same trace — must digest identically; the differential harness in
// internal/kernel/difftest asserts exactly that.
func (m *Machine) StateDigest() string {
	h := sha256.New()
	var buf [8]byte
	w := func(vs ...uint64) {
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		}
	}
	hashCache := func(c *cache.Cache) {
		c.ForEachValid(func(addr uint64, st coherence.State) {
			w(addr, uint64(st))
		})
		s := c.Stats
		w(s.Hits, s.Misses, s.Evictions, s.Fills, s.Flushes)
	}

	for _, core := range m.cores {
		w(0xc09e, uint64(core.Global))
		hashCache(core.L1)
		hashCache(core.L2)
	}
	for _, s := range m.sockets {
		w(0x50c6, uint64(s.ID))
		hashCache(s.LLC)
		s.Dir.ForEach(func(line uint64, e coherence.DirEntry) {
			llc, od := uint64(0), uint64(0)
			if e.LLCValid {
				llc = 1
			}
			if e.OwnerDirty {
				od = 1
			}
			w(line, e.Sharers, llc, od)
		})
		w(s.Ring.Messages, s.Ring.TotalQueuing)
	}
	w(0xd7a8, m.dram.Messages, m.dram.TotalQueuing)
	for i := 0; i < len(m.sockets); i++ {
		for j := i + 1; j < len(m.sockets); j++ {
			w(m.qpi[i][j].Messages, m.qpi[i][j].TotalQueuing)
		}
	}

	// Per-line bookkeeping in ascending line order.
	idx := make([]int, 0, m.metaUsed)
	for i := range m.metaSlots {
		if m.metaSlots[i].used {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(i, j int) bool { return m.metaSlots[idx[i]].line < m.metaSlots[idx[j]].line })
	w(0x11fe)
	for _, i := range idx {
		line, lm := m.metaSlots[i].line, &m.metaSlots[i].m
		up, hf := uint64(0), uint64(0)
		if lm.upgraded {
			up = 1
		}
		if lm.hasFlush {
			hf = 1
		}
		w(line, up, hf, lm.flushEpochs, lm.evictEpochs, lm.lastFlush, math.Float64bits(lm.pressure))
	}

	w(0x57a7, m.Stats.Loads, m.Stats.Stores, m.Stats.Flushes, m.Stats.Prefetches)
	for _, c := range m.Stats.ByPath {
		w(c)
	}
	for g := range m.cores {
		hits, misses := m.TLBStats(g)
		w(hits, misses)
	}
	return hex.EncodeToString(h.Sum(nil))
}
