package machine

import (
	"coherentleak/internal/sim"
)

// tlb is a per-core, fully-associative translation lookaside buffer over
// line addresses' pages. The simulator's kernel layer translates
// addresses before the machine sees them, so the TLB here models only
// the *timing* of translation: a miss charges the page-walk latency.
// The attack itself is insensitive to it (the probe line's page is
// always hot), but background workloads with large working sets pay
// realistic extra latency, and the first-touch cost shows up in traces.
type tlb struct {
	entries map[uint64]uint64 // page number -> recency stamp
	clock   uint64
	size    int

	// Stats
	hits, misses uint64
}

func newTLB(size int) *tlb {
	if size <= 0 {
		size = 64
	}
	return &tlb{entries: make(map[uint64]uint64, size), size: size}
}

// access touches the TLB for addr and reports whether it missed.
func (t *tlb) access(addr uint64) bool {
	page := addr >> 12
	t.clock++
	if _, ok := t.entries[page]; ok {
		t.entries[page] = t.clock
		t.hits++
		return false
	}
	t.misses++
	if len(t.entries) >= t.size {
		// Evict the least recently used entry.
		var victim uint64
		best := ^uint64(0)
		for p, stamp := range t.entries {
			if stamp < best {
				best, victim = stamp, p
			}
		}
		delete(t.entries, victim)
	}
	t.entries[page] = t.clock
	return true
}

// tlbPenalty charges the page walk for a memory operation by core g and
// returns the extra cycles.
func (m *Machine) tlbPenalty(g int, addr uint64) sim.Cycles {
	if m.cfg.Latencies.PageWalk == 0 || m.cfg.TLBEntries == 0 {
		return 0
	}
	if m.tlbs[g].access(addr) {
		return m.cfg.Latencies.PageWalk
	}
	return 0
}

// TLBStats returns (hits, misses) for core g's TLB.
func (m *Machine) TLBStats(g int) (uint64, uint64) {
	t := m.tlbs[g]
	if t == nil {
		return 0, 0
	}
	return t.hits, t.misses
}
