package machine

import (
	"coherentleak/internal/sim"
)

// tlb is a per-core, fully-associative translation lookaside buffer over
// line addresses' pages. The simulator's kernel layer translates
// addresses before the machine sees them, so the TLB here models only
// the *timing* of translation: a miss charges the page-walk latency.
// The attack itself is insensitive to it (the probe line's page is
// always hot), but background workloads with large working sets pay
// realistic extra latency, and the first-touch cost shows up in traces.
type tlb struct {
	entries []tlbEntry // flat LRU array, at most size entries
	clock   uint64
	size    int

	// Stats
	hits, misses uint64
}

// tlbEntry is one translation: a page number and its recency stamp.
// Stamps are unique (the clock advances every access), so the LRU victim
// is always well-defined and deterministic.
type tlbEntry struct {
	page, stamp uint64
}

func newTLB(size int) *tlb {
	if size <= 0 {
		size = 64
	}
	return &tlb{entries: make([]tlbEntry, 0, size), size: size}
}

// access touches the TLB for addr and reports whether it missed.
func (t *tlb) access(addr uint64) bool {
	page := addr >> 12
	t.clock++
	for i := range t.entries {
		if t.entries[i].page == page {
			t.entries[i].stamp = t.clock
			// Move-to-front so the hot probe page is found on the first
			// comparison next time; eviction order depends only on
			// stamps, so this changes nothing observable.
			t.entries[0], t.entries[i] = t.entries[i], t.entries[0]
			t.hits++
			return false
		}
	}
	t.misses++
	if len(t.entries) >= t.size {
		// Evict the least recently used entry.
		victim := 0
		for i := 1; i < len(t.entries); i++ {
			if t.entries[i].stamp < t.entries[victim].stamp {
				victim = i
			}
		}
		t.entries[victim] = tlbEntry{page: page, stamp: t.clock}
		return true
	}
	t.entries = append(t.entries, tlbEntry{page: page, stamp: t.clock})
	return true
}

// tlbPenalty charges the page walk for a memory operation by core g and
// returns the extra cycles.
func (m *Machine) tlbPenalty(g int, addr uint64) sim.Cycles {
	if m.cfg.Latencies.PageWalk == 0 || m.cfg.TLBEntries == 0 {
		return 0
	}
	if m.tlbs[g].access(addr) {
		return m.cfg.Latencies.PageWalk
	}
	return 0
}

// TLBStats returns (hits, misses) for core g's TLB.
func (m *Machine) TLBStats(g int) (uint64, uint64) {
	t := m.tlbs[g]
	if t == nil {
		return 0, 0
	}
	return t.hits, t.misses
}
