package machine

import (
	"fmt"
	"math/bits"

	"coherentleak/internal/cache"
	"coherentleak/internal/coherence"
	"coherentleak/internal/sim"
)

// Access is the outcome of one timed memory operation.
type Access struct {
	// Latency is the end-to-end cost in cycles, including interconnect
	// queuing and measurement jitter. It is what the spy's rdtsc sees.
	Latency sim.Cycles
	// Path is the service path the coherence protocol selected.
	Path Path
}

// Load performs a timed read of addr by core g on behalf of thread t.
// The thread's clock advances by the returned latency.
func (m *Machine) Load(t *sim.Thread, g int, addr uint64) Access {
	a := m.load(t, g, addr)
	t.Advance(a.Latency)
	if m.onAccess != nil {
		m.emit(t.Now(), t, g, addr, "load", a)
	}
	return a
}

// LoadTimed is Load without the clock advance: it performs the full
// access (state changes, RNG draws, stats) at the thread's current time
// and returns the latency for the caller to account. It exists for the
// compiled access-stream executor, which fuses the advance with the
// op's think time; interleaving LoadTimed with other threads' work
// before advancing breaks the determinism contract.
func (m *Machine) LoadTimed(t *sim.Thread, g int, addr uint64) Access {
	a := m.load(t, g, addr)
	if m.onAccess != nil {
		m.emit(t.Now()+a.Latency, t, g, addr, "load", a)
	}
	return a
}

func (m *Machine) load(t *sim.Thread, g int, addr uint64) Access {
	core := m.Core(g)
	line := cache.LineAddr(addr)
	m.Stats.Loads++
	walk := m.tlbPenalty(g, addr)

	// Private-cache hits.
	if l := core.L1.Lookup(line); l != nil {
		return m.finish(line, PathL1, m.cfg.Latencies.L1Hit+walk)
	}
	if l := core.L2.Lookup(line); l != nil {
		// Refill L1 in the same state; inclusion (L1 ⊆ L2) means the L1
		// victim needs no write-back beyond its L2 copy.
		m.fillL1Absent(core, line, l.State)
		return m.finish(line, PathL2, m.cfg.Latencies.L2Hit+walk)
	}

	path, base := m.missPath(t.Now(), core, line)
	if m.cfg.NextLinePrefetch {
		m.prefetchNext(t.Now(), core, line)
	}
	if m.cfg.Mitigations.EqualizeSocketLatency && path >= PathLocalLLC {
		worst := m.cfg.Latencies.MissBase + 2*m.cfg.Latencies.Ring +
			m.cfg.Latencies.LLCService + 2*m.cfg.Latencies.QPI +
			m.cfg.Latencies.ForwardRemote
		if base < worst {
			base = worst
		}
	}
	return m.finish(line, path, base+walk)
}

// prefetchNext issues the next-line prefetch: a background fill of
// line+64 into core's caches. It runs the full coherence transaction
// (prefetches downgrade other cores' E/M copies exactly like demand
// loads — the behaviour that perturbs probing attacks) but charges the
// requesting thread nothing; the prefetch engine works off the critical
// path.
func (m *Machine) prefetchNext(now sim.Cycles, core *Core, line uint64) {
	next := line + cache.LineSize
	if core.L1.Contains(next) || core.L2.Contains(next) {
		return
	}
	m.Stats.Prefetches++
	m.missPath(now, core, next)
}

// missPath services a load miss for core on line, running the coherence
// transaction (state changes, directory updates, fills) and returning the
// path taken plus its base latency including interconnect queuing. The
// static (queue-free) portion of each path comes from the memo table;
// the ring/QPI/DRAM hops stay dynamic because their queuing delay — and
// the RNG draws realizing it — depends on the traversal time.
func (m *Machine) missPath(now sim.Cycles, core *Core, line uint64) (Path, sim.Cycles) {
	lat := m.cfg.Latencies
	sock := m.sockets[core.Socket]
	m.lastUtil = sock.Ring.Utilization(now)
	base := m.memo.missCommon + sock.Ring.Traverse(now) + sock.Ring.Traverse(now)

	switch sock.Dir.CensusOf(line) {
	case coherence.CensusShared:
		// Two or more local sharers: the LLC's copy is clean (S state)
		// and services the miss directly (§VI-A).
		if m.llcServiceable(sock, line) {
			m.fillRequestor(core, line, false)
			m.exclusiveMoveOut(sock, line)
			return PathLocalLLC, base
		}
		// Non-inclusive LLC may lack the copy; fall back to a sharer
		// forward (same latency class as the E-state path).
		m.forwardFromLocal(sock, core, line)
		return PathLocalForward, base + lat.ForwardLocal

	case coherence.CensusOwned:
		// A single owner may hold the line in E or M; the LLC copy is
		// possibly stale, so the request is forwarded to the owner —
		// unless the LLC can prove its copy current (the E->M notification
		// mitigation, or a protocol with no silent upgrades at all).
		if m.llcTrust && !m.upgradedLine(line) && m.llcServiceable(sock, line) {
			m.fillRequestor(core, line, false)
			return PathLocalLLC, base
		}
		m.forwardFromLocal(sock, core, line)
		return PathLocalForward, base + lat.ForwardLocal

	case coherence.CensusNone:
		if m.llcServiceable(sock, line) {
			// Clean LLC hit with no private copies: no coherence activity.
			m.fillRequestor(core, line, false)
			m.exclusiveMoveOut(sock, line)
			return PathLocalLLC, base
		}
	}

	// Local socket cannot service the miss: consult the other sockets
	// over the inter-socket link before falling through to DRAM.
	for _, remote := range m.sockets {
		if remote.ID == core.Socket {
			continue
		}
		qpiLink := m.qpi[core.Socket][remote.ID]
		if u := qpiLink.Utilization(now); u > m.lastUtil {
			m.lastUtil = u
		}
		switch remote.Dir.CensusOf(line) {
		case coherence.CensusShared:
			hop := qpiLink.Traverse(now) + qpiLink.Traverse(now)
			if m.llcServiceable(remote, line) {
				m.fillRequestor(core, line, false)
				return PathRemoteLLC, base + hop
			}
			m.forwardFromRemote(remote, core, line)
			return PathRemoteForward, base + hop + lat.ForwardRemote
		case coherence.CensusOwned:
			hop := qpiLink.Traverse(now) + qpiLink.Traverse(now)
			if m.llcTrust && !m.upgradedLine(line) && m.llcServiceable(remote, line) {
				m.fillRequestor(core, line, false)
				return PathRemoteLLC, base + hop
			}
			m.forwardFromRemote(remote, core, line)
			return PathRemoteForward, base + hop + lat.ForwardRemote
		case coherence.CensusNone:
			if m.llcServiceable(remote, line) {
				hop := qpiLink.Traverse(now) + qpiLink.Traverse(now)
				m.fillRequestor(core, line, false)
				return PathRemoteLLC, base + hop
			}
		}
	}

	// DRAM. The home agent's directory cache (snoop filter) answers for
	// lines no other socket has ever cached, so ordinary private-data
	// misses go straight to memory without QPI traffic. Lines that were
	// explicitly flushed lose that shortcut: clflush clears the filter
	// state, so their next fetch performs the full cross-socket snoop —
	// which is why the spy's flush+reload probe always pays the long
	// path and lands in a distinct high band.
	snoop := sim.Cycles(0)
	if m.needsSnoop(line) {
		for _, remote := range m.sockets {
			if remote.ID == core.Socket {
				continue
			}
			l := m.qpi[core.Socket][remote.ID]
			snoop += l.Traverse(now) + l.Traverse(now)
		}
	}
	if u := m.dram.Utilization(now); u > m.lastUtil {
		m.lastUtil = u
	}
	dramLat := m.dram.Traverse(now)
	m.fillRequestor(core, line, false)
	return PathDRAM, base + snoop + dramLat
}

// exclusiveMoveOut removes a just-served line from an exclusive LLC —
// exclusion means a line lives in the private caches or the LLC, never
// both.
func (m *Machine) exclusiveMoveOut(sock *Socket, line uint64) {
	if !m.cfg.ExclusiveLLC {
		return
	}
	sock.LLC.Invalidate(line)
	sock.Dir.InvalidateLLC(line)
}

// needsSnoop reports whether a memory fetch of line must snoop the other
// sockets: any remote directory record, or a cleared snoop-filter entry
// from an explicit flush.
func (m *Machine) needsSnoop(line uint64) bool {
	if lm := m.meta(line); lm != nil && lm.flushEpochs > 0 {
		return true
	}
	for _, s := range m.sockets {
		if _, ok := s.Dir.Lookup(line); ok {
			return true
		}
	}
	return false
}

// llcServiceable reports whether sock's LLC can answer a read for line
// with clean data.
func (m *Machine) llcServiceable(sock *Socket, line uint64) bool {
	e, ok := sock.Dir.Lookup(line)
	return ok && e.LLCValid && sock.LLC.Contains(line)
}

// forwardFromLocal runs the owner-forward transaction within requestor's
// socket: the owner (or a sharer, for the non-inclusive fallback)
// downgrades, the LLC receives a clean copy, and the requestor fills.
func (m *Machine) forwardFromLocal(sock *Socket, requestor *Core, line uint64) {
	m.downgradeOwner(sock, line)
	m.fillRequestor(requestor, line, true)
}

// forwardFromRemote is forwardFromLocal across the socket link.
func (m *Machine) forwardFromRemote(remote *Socket, requestor *Core, line uint64) {
	m.downgradeOwner(remote, line)
	m.fillRequestor(requestor, line, true)
}

// downgradeOwner applies the RemoteRead transition to every private copy
// in sock (normally exactly one, the owner), leaving a clean copy in
// sock's LLC when the protocol writes back.
func (m *Machine) downgradeOwner(sock *Socket, line uint64) {
	for mask := sock.Dir.SharerMask(line); mask != 0; mask &= mask - 1 {
		core := sock.Cores[bits.TrailingZeros64(mask)]
		m.downgradeIn(sock, core.L1, line)
		m.downgradeIn(sock, core.L2, line)
	}
	// The owner no longer holds the line exclusively; any recorded
	// silent-upgrade mark is consumed by the write-back. The marks only
	// exist when llcTrust tracks them.
	if m.llcTrust {
		m.clearUpgraded(line)
	}
}

// downgradeIn applies the RemoteRead transition to pc's copy of line, if
// any, writing a clean copy back to sock's LLC when the protocol says so.
func (m *Machine) downgradeIn(sock *Socket, pc *cache.Cache, line uint64) {
	st := pc.Probe(line)
	if !st.Valid() {
		return
	}
	tr := m.memo.remoteRead[st]
	pc.SetState(line, tr.Next)
	if tr.Action == coherence.SupplyAndWriteBack && !m.cfg.ExclusiveLLC {
		// Exclusive LLCs never take the downgrade copy; dirty data goes
		// straight to memory instead.
		m.installLLC(sock, line)
	}
}

// fillRequestor installs line into the requestor's private caches (and
// the local LLC when inclusive), letting the spec's install policy pick
// the state from the copy census. fromForward marks fills supplied by a
// previous owner, in which case the policy's FromOwner state applies (the
// supplier retains F/O duty).
func (m *Machine) fillRequestor(core *Core, line uint64, fromForward bool) {
	sock := m.sockets[core.Socket]
	var st coherence.State
	if fromForward {
		st = m.spec.Install().FromOwner
	} else {
		census := m.globalSharers(line, -1, -1)
		// An inclusive LLC's own copy coexists with the requestor's E
		// (the hierarchy always duplicates locally), so only private
		// copies and *other* sockets' caches block exclusivity.
		if census == 0 && m.anyOtherCopy(line, core.Socket) {
			census = 1
		}
		st = m.spec.Install().For(census)
		if census > 0 && m.spec.Unique(st) {
			// At most one copy of a unique install state (MESIF's F):
			// demote any previous holder.
			m.demoteForwarders(line, st)
		}
	}
	m.fillPrivateAbsent(core, line, st)
	sock.Dir.AddSharer(line, core.Local)
	if (m.cfg.InclusiveLLC || fromForward) && !m.cfg.ExclusiveLLC {
		m.installLLC(sock, line)
	}
	if st.SoleCopy() {
		// The LLC cannot distinguish E from M at the owner; record that
		// the copy may go stale. (Census==1 already forces forwarding in
		// the unmitigated design; the flag serves the mitigation logic.)
		sock.Dir.SetOwnerDirty(line)
	}
}

// demoteForwarders downgrades any existing copy of line held in the
// unique install state fwd (MESIF's F) to the spec's demotion state.
func (m *Machine) demoteForwarders(line uint64, fwd coherence.State) {
	demote := m.spec.Install().Demote
	for _, s := range m.sockets {
		for mask := s.Dir.SharerMask(line); mask != 0; mask &= mask - 1 {
			core := s.Cores[bits.TrailingZeros64(mask)]
			if core.L1.Probe(line) == fwd {
				core.L1.SetState(line, demote)
			}
			if core.L2.Probe(line) == fwd {
				core.L2.SetState(line, demote)
			}
		}
	}
}

// fillPrivate inserts line into core's L2 then L1, handling evictions.
// It tolerates the line already being present (store's upgrade path fills
// over data fetched moments earlier by missPath).
func (m *Machine) fillPrivate(core *Core, line uint64, st coherence.State) {
	if ev, ok := core.L2.Insert(line, st); ok {
		m.handleL2Evict(core, ev)
	}
	m.fillL1(core, line, st)
}

// fillPrivateAbsent is fillPrivate for lines proven absent from both
// private levels (every miss path establishes this before filling), which
// lets the caches skip their re-fill scans.
func (m *Machine) fillPrivateAbsent(core *Core, line uint64, st coherence.State) {
	if ev, ok := core.L2.InsertAbsent(line, st); ok {
		m.handleL2Evict(core, ev)
	}
	m.fillL1Absent(core, line, st)
}

// fillL1 inserts into L1 only; inclusion makes the victim's L2 copy the
// surviving one, inheriting dirtiness.
func (m *Machine) fillL1(core *Core, line uint64, st coherence.State) {
	if ev, ok := core.L1.Insert(line, st); ok {
		if ev.State.Dirty() {
			core.L2.SetState(ev.Addr, ev.State)
		}
	}
}

// fillL1Absent is fillL1 for lines a preceding L1 lookup proved absent.
func (m *Machine) fillL1Absent(core *Core, line uint64, st coherence.State) {
	if ev, ok := core.L1.InsertAbsent(line, st); ok {
		if ev.State.Dirty() {
			core.L2.SetState(ev.Addr, ev.State)
		}
	}
}

// handleL2Evict processes a victim leaving core's L2: back-invalidate the
// L1 copy (L1 ⊆ L2), write dirty data back to the LLC, and update the
// directory.
func (m *Machine) handleL2Evict(core *Core, ev cache.Evicted) {
	st := ev.State
	if l1 := core.L1.Invalidate(ev.Addr); l1.Dirty() {
		st = l1
	}
	sock := m.sockets[core.Socket]
	if m.memo.evict[st].Action == coherence.WriteBack || m.cfg.ExclusiveLLC {
		// Victims whose eviction transition writes back (dirty states)
		// land in the LLC; an exclusive (victim) LLC additionally
		// captures clean victims.
		m.installLLC(sock, ev.Addr)
	}
	sock.Dir.RemoveSharer(ev.Addr, core.Local)
	if m.llcTrust {
		m.clearUpgraded(ev.Addr)
	}
}

// installLLC places a clean copy of line in sock's LLC and marks the
// directory, handling any LLC eviction (with back-invalidation when the
// LLC is inclusive).
func (m *Machine) installLLC(sock *Socket, line uint64) {
	if ev, ok := sock.LLC.Insert(line, coherence.Shared); ok {
		m.handleLLCEvict(sock, ev)
	}
	sock.Dir.MarkClean(line)
}

// handleLLCEvict processes a victim leaving sock's LLC.
func (m *Machine) handleLLCEvict(sock *Socket, ev cache.Evicted) {
	if m.cfg.InclusiveLLC {
		// Inclusion forces the private copies out too.
		evictedPrivate := false
		// Iterate a snapshot of the mask: RemoveSharer mutates the entry.
		for mask := sock.Dir.SharerMask(ev.Addr); mask != 0; mask &= mask - 1 {
			local := bits.TrailingZeros64(mask)
			core := sock.Cores[local]
			core.L1.Invalidate(ev.Addr)
			core.L2.Invalidate(ev.Addr)
			sock.Dir.RemoveSharer(ev.Addr, local)
			evictedPrivate = true
		}
		if evictedPrivate {
			lm := m.metaMake(ev.Addr)
			lm.upgraded = false
			lm.evictEpochs++
		} else if m.llcTrust {
			m.clearUpgraded(ev.Addr)
		}
	}
	sock.Dir.InvalidateLLC(ev.Addr)
}

// Store performs a timed write to addr by core g on behalf of thread t.
func (m *Machine) Store(t *sim.Thread, g int, addr uint64) Access {
	a := m.store(t, g, addr)
	t.Advance(a.Latency)
	if m.onAccess != nil {
		m.emit(t.Now(), t, g, addr, "store", a)
	}
	return a
}

// StoreTimed is Store without the clock advance; see LoadTimed.
func (m *Machine) StoreTimed(t *sim.Thread, g int, addr uint64) Access {
	a := m.store(t, g, addr)
	if m.onAccess != nil {
		m.emit(t.Now()+a.Latency, t, g, addr, "store", a)
	}
	return a
}

func (m *Machine) store(t *sim.Thread, g int, addr uint64) Access {
	core := m.Core(g)
	line := cache.LineAddr(addr)
	lat := m.cfg.Latencies
	m.Stats.Stores++
	walk := m.tlbPenalty(g, addr)
	sock := m.sockets[core.Socket]

	st := m.ProbeState(g, line)
	tr := m.memo.localWrite[st]
	if tr.Latency == coherence.LatStoreHit {
		if tr.Next != st {
			// Silent upgrade (E->M): no bus traffic, which is why the LLC
			// must conservatively forward census==1 misses. The mitigation
			// makes this upgrade visible. The mark is only ever read when
			// llcTrust is on (both upgradedLine call sites are guarded by
			// it), so machines without it skip the write-only bookkeeping
			// and keep the line-metadata table small.
			core.L1.SetState(line, tr.Next)
			core.L2.SetState(line, tr.Next)
			if m.llcTrust {
				m.metaMake(line).upgraded = true
			}
			if m.cfg.Mitigations.LLCNotifiedOfEToM {
				sock.Dir.SetOwnerDirty(line)
			}
		}
		return m.finish(line, PathL1, lat.StoreHit+walk)
	}

	// The store must leave the core: an RFO (fetch if missing, then settle
	// every other copy), an upgrade round, or a write-through.
	var path Path
	var base sim.Cycles
	switch tr.Latency {
	case coherence.LatUpgrade, coherence.LatWriteThrough:
		// Data already present (upgrade from S/F/O) or not wanted locally
		// (no-allocate write-through): pay the LLC round only, with no
		// bus arbitration even in snoop mode (the upgrade round is not a
		// full miss broadcast).
		path, base = PathLocalLLC, lat.MissBase+sock.Ring.Traverse(t.Now())+sock.Ring.Traverse(t.Now())+lat.LLCService
	default:
		path, base = m.missPath(t.Now(), core, line)
	}
	othersRemain := m.remoteWriteOthers(core, line)
	next := m.spec.Store().Solo
	if othersRemain {
		next = m.spec.Store().Shared
	}
	if m.spec.Store().Allocate || st.Valid() {
		m.fillPrivate(core, line, next)
		sock.Dir.AddSharer(line, core.Local)
		if next.Dirty() {
			if m.llcTrust {
				m.metaMake(line).upgraded = true
			}
			if !othersRemain {
				sock.Dir.SetOwnerDirty(line)
			}
		}
	}
	switch {
	case m.spec.Store().Update && othersRemain:
		// Write-update broadcast: every copy — including the shared
		// level's — received the new data in place; nothing went stale.
	case m.spec.Store().Through:
		// Write-through: the local shared level holds the data now; only
		// other sockets' records are stale.
		m.installLLC(sock, line)
		for _, s := range m.sockets {
			if s.ID != core.Socket {
				s.Dir.InvalidateLLC(line)
			}
		}
	default:
		// Every LLC copy is now stale. InvalidateLLC (rather than a raw
		// LLCValid clear) also reclaims remote-socket records left with no
		// sharers after remoteWriteOthers, so long store-heavy runs do not
		// accumulate dead directory entries.
		for _, s := range m.sockets {
			s.Dir.InvalidateLLC(line)
		}
	}
	return m.finish(line, path, base+lat.RFOOverhead+walk)
}

// remoteWriteOthers applies the RemoteWrite transition to every copy of
// line outside the requesting core: invalidation protocols remove the
// copies, write-update protocols refresh them in place. It reports
// whether any other private copy survived.
func (m *Machine) remoteWriteOthers(requestor *Core, line uint64) bool {
	othersRemain := false
	for _, s := range m.sockets {
		for mask := s.Dir.SharerMask(line); mask != 0; mask &= mask - 1 {
			local := bits.TrailingZeros64(mask)
			if s.ID == requestor.Socket && local == requestor.Local {
				continue
			}
			core := s.Cores[local]
			survived := false
			for _, pc := range []*cache.Cache{core.L1, core.L2} {
				st := pc.Probe(line)
				if !st.Valid() {
					continue
				}
				if next := m.memo.remoteWrite[st].Next; next.Valid() {
					pc.SetState(line, next)
					survived = true
				} else {
					pc.Invalidate(line)
				}
			}
			if survived {
				othersRemain = true
			} else {
				s.Dir.RemoveSharer(line, local)
			}
		}
	}
	return othersRemain
}

// Flush performs a clflush-equivalent: every cached copy of addr's line in
// every socket is invalidated, dirty data is written back, and the
// directory forgets the line. Any core may flush any address (the paper's
// spy flushes read-only shared pages).
func (m *Machine) Flush(t *sim.Thread, g int, addr uint64) Access {
	a := m.flushLine(t, g, addr)
	t.Advance(a.Latency)
	if m.onAccess != nil {
		m.emit(t.Now(), t, g, addr, "flush", a)
	}
	return a
}

// FlushTimed is Flush without the clock advance; see LoadTimed.
func (m *Machine) FlushTimed(t *sim.Thread, g int, addr uint64) Access {
	a := m.flushLine(t, g, addr)
	if m.onAccess != nil {
		m.emit(t.Now()+a.Latency, t, g, addr, "flush", a)
	}
	return a
}

func (m *Machine) flushLine(t *sim.Thread, g int, addr uint64) Access {
	line := cache.LineAddr(addr)
	lat := m.cfg.Latencies
	m.Stats.Flushes++
	lm := m.metaMake(line)
	lm.flushEpochs++
	m.recordFlushPressure(lm, t.Now())
	dirty := false
	for _, s := range m.sockets {
		for mask := s.Dir.SharerMask(line); mask != 0; mask &= mask - 1 {
			local := bits.TrailingZeros64(mask)
			core := s.Cores[local]
			for _, pc := range []*cache.Cache{core.L1, core.L2} {
				st := pc.Invalidate(line)
				if st.Valid() && m.memo.flush[st].Action == coherence.WriteBack {
					dirty = true
				}
			}
			s.Dir.RemoveSharer(line, local)
		}
		s.LLC.Invalidate(line)
		s.Dir.Clear(line)
	}
	lm.upgraded = false
	base := lat.FlushBase
	if dirty {
		base += lat.FlushDirty
	}
	return m.finishRecorded(line, PathDRAM, base, false)
}

// recordFlushPressure updates the line's probe-pressure estimate from
// the interval since its previous flush: pressure = (Tref/interval)^4,
// EWMA-smoothed. Short intervals (fast probing) build pressure; idle
// lines decay toward zero.
func (m *Machine) recordFlushPressure(lm *lineMeta, now sim.Cycles) {
	last, seen := lm.lastFlush, lm.hasFlush
	lm.lastFlush = now
	lm.hasFlush = true
	if !seen {
		return
	}
	interval := float64(now-last) + 64
	r := pressureRefCycles / interval
	instant := r * r * r * r // quartic: pressure onsets sharply below Tref
	if instant > 6 {
		instant = 6 // saturation: queues are finite
	}
	lm.pressure = 0.5*lm.pressure + 0.5*instant
}

// pressureJitterWidth returns the extra triangular-jitter half-width for
// a miss on line serviced via path p. Longer service paths cross more
// queues, so pressure widens them more — the asymmetry §VIII-C observes
// (remote E-state latencies vary most under load).
func (m *Machine) pressureJitterWidth(line uint64, p Path) int64 {
	jc := m.memo.jc
	if jc <= 0 || p <= PathL2 {
		return 0
	}
	lm := m.meta(line)
	if lm == nil {
		return 0
	}
	// Interconnect contention multiplies the probe's self-pressure:
	// deep queues turn the high-frequency probe's bursts into much
	// larger latency swings, which is how co-located memory-intensive
	// workloads degrade fast channels while leaving slow (rate-adapted)
	// ones nearly untouched (§VIII-C vs. Figure 10).
	contention := 1 + 6*m.lastUtil
	return int64(jc * lm.pressure * m.memo.factor[p] * contention)
}

// finish applies jitter (base plus probe pressure) and records the
// service path; the caller advances the thread. Flushes pass
// record=false so ByPath reflects loads and stores only.
func (m *Machine) finish(line uint64, p Path, base sim.Cycles) Access {
	return m.finishRecorded(line, p, base, true)
}

func (m *Machine) finishRecorded(line uint64, p Path, base sim.Cycles, record bool) Access {
	total := int64(base) + m.rng.Jitter(m.cfg.Latencies.Jitter)
	if w := m.pressureJitterWidth(line, p); w > 0 {
		total += m.rng.Jitter(w)
	}
	if total < 1 {
		total = 1
	}
	a := Access{Latency: sim.Cycles(total), Path: p}
	if record {
		m.Stats.ByPath[p]++
	}
	return a
}

// PathCount returns how many loads were serviced by path p.
func (s *MachineStats) PathCount(p Path) uint64 { return s.ByPath[p] }

// String summarizes the counters.
func (s *MachineStats) String() string {
	out := fmt.Sprintf("loads=%d stores=%d flushes=%d", s.Loads, s.Stores, s.Flushes)
	for p := 0; p < pathCount; p++ {
		if s.ByPath[p] > 0 {
			out += fmt.Sprintf(" %s=%d", Path(p), s.ByPath[p])
		}
	}
	return out
}

// emit delivers one completed operation to the observer hook. Callers
// guard on m.onAccess != nil so untraced runs skip event assembly and the
// call entirely; at is the operation's completion time (identical whether
// the thread clock was advanced by the machine or by a batching caller).
func (m *Machine) emit(at sim.Cycles, t *sim.Thread, g int, addr uint64, op string, a Access) {
	if m.onAccess == nil {
		return
	}
	m.onAccess(AccessEvent{
		Cycle:   at,
		Thread:  t.ID(),
		Core:    g,
		Line:    cache.LineAddr(addr),
		Op:      op,
		Path:    a.Path,
		Latency: a.Latency,
	})
}
