package machine

import (
	"coherentleak/internal/coherence"
	"coherentleak/internal/sim"
)

// NumPressureBuckets is the quantization of the probe-pressure estimate
// used to key the service-path memo table. Pressure saturates at 6.0
// (see recordFlushPressure), so bucket i covers [i, i+1) and the last
// bucket absorbs the saturation point.
const NumPressureBuckets = 7

// maxContention is the largest value the contention multiplier
// (1 + 6*utilization) can take: link utilization is capped at 0.95.
const maxContention = 1 + 6*0.95

// PressureBucket quantizes a pressure estimate into its memo bucket.
func PressureBucket(p float64) int {
	b := int(p)
	if b < 0 {
		b = 0
	}
	if b >= NumPressureBuckets {
		b = NumPressureBuckets - 1
	}
	return b
}

// MemoKey addresses one entry of the service-path memo table.
type MemoKey struct {
	// State is the coherence state of the copy the protocol consults.
	State coherence.State
	// Loc is the service path (location) class.
	Loc Path
	// Bucket is the quantized probe-pressure level of the line.
	Bucket int
}

// MemoEntry is one memoized service-path record: the protocol
// transitions a copy in State undergoes, the queue-free static latency
// of the Loc service path, and the pressure-jitter scaling of the
// (Loc, Bucket) combination. Everything here is a pure function of the
// machine configuration and protocol spec; dynamic terms (interconnect
// queuing, the continuous pressure estimate, RNG jitter) are composed
// on top at run time so results stay bit-identical to the uncached path.
type MemoEntry struct {
	// LocalWrite .. Flush are spec.Apply(State, event) for each event.
	LocalWrite  coherence.Transition
	RemoteRead  coherence.Transition
	RemoteWrite coherence.Transition
	Evict       coherence.Transition
	Flush       coherence.Transition
	// StaticBase is the queue-free end-to-end service latency of Loc:
	// every dynamic Traverse contributes its BaseLatency here and its
	// queuing delay at run time.
	StaticBase sim.Cycles
	// JitterFactor is the path-dependent widening factor of the probe-
	// pressure jitter model (longer paths cross more queues).
	JitterFactor float64
	// PressureLow and PressureHigh bound the bucket's pressure range.
	PressureLow, PressureHigh float64
	// MaxJitterWidth is the largest pressure-jitter half-width any
	// access in this bucket can be charged (at saturated contention).
	MaxJitterWidth int64
}

// serviceMemo is the flattened hot view of the memo table: the per-state
// transition rows and per-path static latencies the access hot path
// indexes directly, derived once from (Config, ProtocolSpec) and rebuilt
// on invalidation. MemoLookup re-expands it into (state, location,
// pressure-bucket) keyed entries for verification.
type serviceMemo struct {
	version uint64

	legal       [coherence.NumStates]bool
	localWrite  [coherence.NumStates]coherence.Transition
	remoteRead  [coherence.NumStates]coherence.Transition
	remoteWrite [coherence.NumStates]coherence.Transition
	evict       [coherence.NumStates]coherence.Transition
	flush       [coherence.NumStates]coherence.Transition

	// static[p] is the queue-free service latency of path p.
	static [pathCount]sim.Cycles
	// missCommon is the static portion shared by every off-core miss:
	// MissBase + LLCService (+ BusArbitration in snoop mode). The ring
	// hops are dynamic (Traverse) and excluded.
	missCommon sim.Cycles
	// factor[p] is the pressure-jitter path factor.
	factor [pathCount]float64
	// jc caches Latencies.ProbePressureJitter.
	jc float64
}

// pathJitterFactor returns the §VIII-C widening factor for path p —
// the single source of truth for both the memo and the fresh-path
// property check.
func pathJitterFactor(p Path) float64 {
	switch p {
	case PathRemoteLLC:
		return 1.3
	case PathRemoteForward:
		return 1.6
	case PathDRAM:
		return 1.8
	default:
		return 1.0
	}
}

// staticPathLatency composes the queue-free service latency of path p
// from the configured component times. Snoop-filter hops for DRAM
// fetches are dynamic and excluded.
func staticPathLatency(cfg Config, p Path) sim.Cycles {
	lat := cfg.Latencies
	miss := lat.MissBase + 2*lat.Ring + lat.LLCService
	if cfg.SnoopBus {
		miss += lat.BusArbitration
	}
	switch p {
	case PathL1:
		return lat.L1Hit
	case PathL2:
		return lat.L2Hit
	case PathLocalLLC:
		return miss
	case PathLocalForward:
		return miss + lat.ForwardLocal
	case PathRemoteLLC:
		return miss + 2*lat.QPI
	case PathRemoteForward:
		return miss + 2*lat.QPI + lat.ForwardRemote
	case PathDRAM:
		return miss + lat.DRAMService
	}
	return 0
}

// buildMemo derives the memo from cfg and spec.
func buildMemo(cfg Config, spec *coherence.ProtocolSpec) *serviceMemo {
	m := &serviceMemo{jc: cfg.Latencies.ProbePressureJitter}
	for _, st := range spec.States() {
		m.legal[st] = true
		m.localWrite[st] = spec.Apply(st, coherence.LocalWrite)
		m.remoteRead[st] = spec.Apply(st, coherence.RemoteRead)
		m.remoteWrite[st] = spec.Apply(st, coherence.RemoteWrite)
		m.evict[st] = spec.Apply(st, coherence.Evict)
		m.flush[st] = spec.Apply(st, coherence.FlushOp)
	}
	for p := 0; p < pathCount; p++ {
		m.static[p] = staticPathLatency(cfg, Path(p))
		m.factor[p] = pathJitterFactor(Path(p))
	}
	m.missCommon = cfg.Latencies.MissBase + cfg.Latencies.LLCService
	if cfg.SnoopBus {
		m.missCommon += cfg.Latencies.BusArbitration
	}
	return m
}

// InvalidateMemo discards and rebuilds the service-path memo from the
// machine's current configuration and protocol spec. Any change to
// either must route through here (construction does so implicitly);
// the version counter lets callers assert the rebuild happened.
func (m *Machine) InvalidateMemo() {
	v := uint64(1)
	if m.memo != nil {
		v = m.memo.version + 1
	}
	m.memo = buildMemo(m.cfg, m.spec)
	m.memo.version = v
}

// MemoVersion returns the memo table's rebuild counter (1 after
// construction).
func (m *Machine) MemoVersion() uint64 { return m.memo.version }

// MemoKeys enumerates every (legal state, location, pressure bucket)
// key of the memo table.
func (m *Machine) MemoKeys() []MemoKey {
	var out []MemoKey
	for _, st := range m.spec.States() {
		for p := 0; p < pathCount; p++ {
			for b := 0; b < NumPressureBuckets; b++ {
				out = append(out, MemoKey{State: st, Loc: Path(p), Bucket: b})
			}
		}
	}
	return out
}

// MemoLookup returns the memoized service record for k, or ok=false when
// k names a state the protocol does not define or an out-of-range
// location/bucket.
func (m *Machine) MemoLookup(k MemoKey) (MemoEntry, bool) {
	if int(k.State) >= coherence.NumStates || !m.memo.legal[k.State] ||
		int(k.Loc) >= pathCount || k.Bucket < 0 || k.Bucket >= NumPressureBuckets {
		return MemoEntry{}, false
	}
	st := k.State
	e := MemoEntry{
		LocalWrite:   m.memo.localWrite[st],
		RemoteRead:   m.memo.remoteRead[st],
		RemoteWrite:  m.memo.remoteWrite[st],
		Evict:        m.memo.evict[st],
		Flush:        m.memo.flush[st],
		StaticBase:   m.memo.static[k.Loc],
		JitterFactor: m.memo.factor[k.Loc],
		PressureLow:  float64(k.Bucket),
		PressureHigh: float64(k.Bucket + 1),
	}
	if k.Loc > PathL2 && m.memo.jc > 0 {
		e.MaxJitterWidth = int64(m.memo.jc * e.PressureHigh * e.JitterFactor * maxContention)
	}
	return e, true
}
