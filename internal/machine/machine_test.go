package machine

import (
	"testing"

	"coherentleak/internal/cache"
	"coherentleak/internal/coherence"
	"coherentleak/internal/sim"
)

// runOn spawns a single thread that executes body against a fresh machine
// and runs the world to completion.
func runOn(t *testing.T, cfg Config, body func(th *sim.Thread, m *Machine)) {
	t.Helper()
	w := sim.NewWorld(sim.Config{Seed: 1234})
	m := New(w, cfg)
	w.Spawn("test", func(th *sim.Thread) { body(th, m) })
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := SmallConfig().Validate(); err != nil {
		t.Fatalf("small config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Sockets = 0
	if bad.Validate() == nil {
		t.Error("zero sockets accepted")
	}
	bad = DefaultConfig()
	bad.CoresPerSocket = 65
	if bad.Validate() == nil {
		t.Error("65 cores/socket accepted")
	}
	bad = DefaultConfig()
	bad.ClockHz = 0
	if bad.Validate() == nil {
		t.Error("zero clock accepted")
	}
	bad = DefaultConfig()
	bad.L1.Ways = 0
	if bad.Validate() == nil {
		t.Error("bad L1 accepted")
	}
	bad = DefaultConfig()
	bad.Replacement = "clock"
	if bad.Validate() == nil {
		t.Error("unknown replacement policy accepted")
	}
	for _, name := range cache.PolicyNames() {
		good := DefaultConfig()
		good.Replacement = name
		if err := good.Validate(); err != nil {
			t.Errorf("replacement %q rejected: %v", name, err)
		}
	}
	// Tree-PLRU needs power-of-two associativity at every level.
	bad = DefaultConfig()
	bad.Replacement = "tree-plru"
	bad.LLC = cache.Geometry{SizeBytes: 12 * 64, Ways: 12}
	if bad.Validate() == nil {
		t.Error("tree-PLRU with 12-way LLC accepted")
	}
}

// TestReplacementPolicyThreadedToCaches pins machine.New wiring: the
// configured policy reaches every cache level.
func TestReplacementPolicyThreadedToCaches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Replacement = "srrip"
	w := sim.NewWorld(sim.Config{Seed: 1})
	m := New(w, cfg)
	if got := m.Socket(0).LLC.Policy(); got != cache.PolicySRRIP {
		t.Fatalf("LLC policy = %v", got)
	}
	c := m.Core(0)
	if c.L1.Policy() != cache.PolicySRRIP || c.L2.Policy() != cache.PolicySRRIP {
		t.Fatalf("private cache policies = %v / %v", c.L1.Policy(), c.L2.Policy())
	}
}

func TestTopology(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 1})
	m := New(w, DefaultConfig())
	if m.Sockets() != 2 || m.Cores() != 12 {
		t.Fatalf("topology %d sockets / %d cores", m.Sockets(), m.Cores())
	}
	c7 := m.Core(7)
	if c7.Socket != 1 || c7.Local != 1 || c7.Global != 7 {
		t.Fatalf("core 7 = %+v", c7)
	}
	if m.Config().Cores() != 12 {
		t.Fatal("Config.Cores wrong")
	}
}

func TestCoreOutOfRangePanics(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 1})
	m := New(w, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("Core(99) did not panic")
		}
	}()
	m.Core(99)
}

const addrB = uint64(0x10000) // the shared block B in most tests

func TestFirstLoadComesFromDRAMInExclusive(t *testing.T) {
	runOn(t, DefaultConfig(), func(th *sim.Thread, m *Machine) {
		a := m.Load(th, 0, addrB)
		if a.Path != PathDRAM {
			t.Errorf("first load path = %v, want DRAM", a.Path)
		}
		if st := m.ProbeState(0, addrB); st != coherence.Exclusive {
			t.Errorf("state after cold fill = %v, want E", st)
		}
	})
}

func TestRepeatLoadHitsL1(t *testing.T) {
	runOn(t, DefaultConfig(), func(th *sim.Thread, m *Machine) {
		m.Load(th, 0, addrB)
		a := m.Load(th, 0, addrB)
		if a.Path != PathL1 {
			t.Errorf("repeat load path = %v, want L1", a.Path)
		}
		if a.Latency > 12 {
			t.Errorf("L1 hit latency = %d", a.Latency)
		}
	})
}

// The on-chip attack preconditions (§VI-A): a sibling's load on an
// E-state block is forwarded by the LLC to the owner and downgrades it;
// once two sharers exist, further misses are serviced by the LLC.
func TestLocalExclusiveThenSharedServicePaths(t *testing.T) {
	runOn(t, DefaultConfig(), func(th *sim.Thread, m *Machine) {
		m.Load(th, 0, addrB) // core 0: E

		a := m.Load(th, 1, addrB)
		if a.Path != PathLocalForward {
			t.Fatalf("sibling load on E block path = %v, want LocalForward", a.Path)
		}
		// Owner downgraded out of E.
		if st := m.ProbeState(0, addrB); st.SoleCopy() {
			t.Fatalf("owner still sole-copy state %v after downgrade", st)
		}
		if !m.LLCHasClean(0, addrB) {
			t.Fatal("LLC did not receive a clean copy on downgrade")
		}

		a = m.Load(th, 2, addrB)
		if a.Path != PathLocalLLC {
			t.Fatalf("third core load path = %v, want LocalLLC", a.Path)
		}
	})
}

func TestRemotePaths(t *testing.T) {
	runOn(t, DefaultConfig(), func(th *sim.Thread, m *Machine) {
		// Core 6 lives on socket 1. Spy is core 0 on socket 0.
		m.Load(th, 6, addrB) // remote E
		a := m.Load(th, 0, addrB)
		if a.Path != PathRemoteForward {
			t.Fatalf("remote-E load path = %v, want RemoteForward", a.Path)
		}

		m.Flush(th, 0, addrB)
		m.Load(th, 6, addrB)
		m.Load(th, 7, addrB) // two sharers on socket 1 -> S in remote LLC
		a = m.Load(th, 0, addrB)
		if a.Path != PathRemoteLLC {
			t.Fatalf("remote-S load path = %v, want RemoteLLC", a.Path)
		}
	})
}

func TestFlushInvalidatesEverywhere(t *testing.T) {
	runOn(t, DefaultConfig(), func(th *sim.Thread, m *Machine) {
		m.Load(th, 0, addrB)
		m.Load(th, 1, addrB)
		m.Load(th, 6, addrB)
		m.Flush(th, 3, addrB) // any core may flush
		for _, g := range []int{0, 1, 6} {
			if st := m.ProbeState(g, addrB); st.Valid() {
				t.Errorf("core %d still holds %v after flush", g, st)
			}
		}
		if m.LLCHasClean(0, addrB) || m.LLCHasClean(1, addrB) {
			t.Error("LLC copy survived flush")
		}
		a := m.Load(th, 0, addrB)
		if a.Path != PathDRAM {
			t.Errorf("post-flush load path = %v, want DRAM", a.Path)
		}
	})
}

func TestStoreSilentUpgradeAndDirtyForward(t *testing.T) {
	runOn(t, DefaultConfig(), func(th *sim.Thread, m *Machine) {
		m.Load(th, 0, addrB) // E
		a := m.Store(th, 0, addrB)
		if a.Latency > 10 {
			t.Errorf("silent E->M upgrade cost %d cycles", a.Latency)
		}
		if st := m.ProbeState(0, addrB); st != coherence.Modified {
			t.Fatalf("state after upgrade = %v, want M", st)
		}
		// A sibling load must still be forwarded (census==1) and must
		// leave clean data at the LLC.
		b := m.Load(th, 1, addrB)
		if b.Path != PathLocalForward {
			t.Fatalf("load on M block path = %v, want LocalForward", b.Path)
		}
		if !m.LLCHasClean(0, addrB) {
			t.Fatal("M downgrade did not write back to LLC")
		}
	})
}

func TestStoreRFOInvalidatesSharers(t *testing.T) {
	runOn(t, DefaultConfig(), func(th *sim.Thread, m *Machine) {
		m.Load(th, 0, addrB)
		m.Load(th, 1, addrB)
		m.Load(th, 6, addrB) // three sharers across sockets
		m.Store(th, 1, addrB)
		if st := m.ProbeState(1, addrB); st != coherence.Modified {
			t.Fatalf("writer state = %v, want M", st)
		}
		for _, g := range []int{0, 6} {
			if st := m.ProbeState(g, addrB); st.Valid() {
				t.Errorf("sharer %d survived RFO with %v", g, st)
			}
		}
		// LLC copies are stale now; a miss must forward to the writer.
		a := m.Load(th, 2, addrB)
		if a.Path != PathLocalForward {
			t.Errorf("post-RFO load path = %v, want LocalForward", a.Path)
		}
	})
}

func TestStoreToSharedPaysRFO(t *testing.T) {
	runOn(t, DefaultConfig(), func(th *sim.Thread, m *Machine) {
		m.Load(th, 0, addrB)
		m.Load(th, 1, addrB) // both S
		a := m.Store(th, 0, addrB)
		if a.Latency < m.Config().Latencies.RFOOverhead {
			t.Errorf("S->M upgrade cost only %d cycles", a.Latency)
		}
	})
}

// Latency band calibration (§V): the four bands must land near the
// paper's measurements and must not overlap.
func TestLatencyCalibration(t *testing.T) {
	type band struct {
		name    string
		want    sim.Cycles
		tol     sim.Cycles
		path    Path
		prepare func(th *sim.Thread, m *Machine)
	}
	bands := []band{
		{"local shared", 98, 12, PathLocalLLC, func(th *sim.Thread, m *Machine) {
			m.Load(th, 1, addrB)
			m.Load(th, 2, addrB)
		}},
		{"local exclusive", 124, 12, PathLocalForward, func(th *sim.Thread, m *Machine) {
			m.Load(th, 1, addrB)
		}},
		{"remote shared", 186, 14, PathRemoteLLC, func(th *sim.Thread, m *Machine) {
			m.Load(th, 6, addrB)
			m.Load(th, 7, addrB)
		}},
		{"remote exclusive", 242, 14, PathRemoteForward, func(th *sim.Thread, m *Machine) {
			m.Load(th, 6, addrB)
		}},
		{"dram", 346, 20, PathDRAM, func(th *sim.Thread, m *Machine) {}},
	}
	for _, b := range bands {
		b := b
		t.Run(b.name, func(t *testing.T) {
			runOn(t, DefaultConfig(), func(th *sim.Thread, m *Machine) {
				var sum sim.Cycles
				const n = 200
				for i := 0; i < n; i++ {
					m.Flush(th, 0, addrB)
					b.prepare(th, m)
					th.Advance(4000) // quiet pacing: no probe pressure
					a := m.Load(th, 0, addrB)
					if a.Path != b.path {
						t.Fatalf("iteration %d path = %v, want %v", i, a.Path, b.path)
					}
					sum += a.Latency
				}
				mean := sum / n
				lo, hi := b.want-b.tol, b.want+b.tol
				if mean < lo || mean > hi {
					t.Errorf("%s mean latency = %d, want %d±%d", b.name, mean, b.want, b.tol)
				}
			})
		})
	}
}

// The ordering invariant the multi-bit channel relies on (§VIII-D): four
// strictly separated bands localS < localE < remoteS < remoteE < DRAM.
func TestBandOrderingStrict(t *testing.T) {
	prepare := []func(th *sim.Thread, m *Machine){
		func(th *sim.Thread, m *Machine) { m.Load(th, 1, addrB); m.Load(th, 2, addrB) },
		func(th *sim.Thread, m *Machine) { m.Load(th, 1, addrB) },
		func(th *sim.Thread, m *Machine) { m.Load(th, 6, addrB); m.Load(th, 7, addrB) },
		func(th *sim.Thread, m *Machine) { m.Load(th, 6, addrB) },
		func(th *sim.Thread, m *Machine) {},
	}
	maxs := make([]sim.Cycles, len(prepare))
	mins := make([]sim.Cycles, len(prepare))
	runOn(t, DefaultConfig(), func(th *sim.Thread, m *Machine) {
		// Warm the observer's TLB so the first timed load is not a
		// page-walk outlier.
		m.Load(th, 0, addrB)
		for i, prep := range prepare {
			mins[i] = 1 << 62
			for n := 0; n < 100; n++ {
				m.Flush(th, 0, addrB)
				prep(th, m)
				th.Advance(4000) // quiet pacing: no probe pressure
				a := m.Load(th, 0, addrB)
				if a.Latency > maxs[i] {
					maxs[i] = a.Latency
				}
				if a.Latency < mins[i] {
					mins[i] = a.Latency
				}
			}
		}
	})
	for i := 0; i+1 < len(prepare); i++ {
		if maxs[i] >= mins[i+1] {
			t.Errorf("band %d [%d,%d] overlaps band %d [%d,%d]",
				i, mins[i], maxs[i], i+1, mins[i+1], maxs[i+1])
		}
	}
}

func TestDeterministicLatencyStream(t *testing.T) {
	run := func() []sim.Cycles {
		var out []sim.Cycles
		w := sim.NewWorld(sim.Config{Seed: 77})
		m := New(w, DefaultConfig())
		w.Spawn("t", func(th *sim.Thread) {
			for i := 0; i < 300; i++ {
				m.Flush(th, 0, addrB)
				m.Load(th, 1, addrB)
				out = append(out, m.Load(th, 0, addrB).Latency)
			}
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("latency stream diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestInclusiveLLCBackInvalidation(t *testing.T) {
	cfg := SmallConfig() // 64 KB LLC, 8 ways, 128 sets
	runOn(t, cfg, func(th *sim.Thread, m *Machine) {
		m.Load(th, 0, addrB)
		// Thrash the LLC set that addrB maps to with conflicting lines.
		llc := m.Socket(0).LLC
		target := llc.SetIndexOf(addrB)
		evictions := 0
		for i := uint64(1); evictions < 20 && i < 4096; i++ {
			a := addrB + i*64*uint64(llc.Geometry().Sets())
			if llc.SetIndexOf(a) != target {
				continue
			}
			m.Load(th, 1, a)
			evictions++
		}
		if st := m.ProbeState(0, addrB); st.Valid() {
			t.Errorf("private copy survived inclusive LLC eviction: %v", st)
		}
	})
}

func TestNonInclusiveLLCKeepsPrivateCopies(t *testing.T) {
	cfg := SmallConfig()
	cfg.InclusiveLLC = false
	runOn(t, cfg, func(th *sim.Thread, m *Machine) {
		m.Load(th, 0, addrB)
		// With a non-inclusive LLC the fill does not enter the LLC at
		// all, so LLC pressure cannot evict the private copy.
		llc := m.Socket(0).LLC
		target := llc.SetIndexOf(addrB)
		n := 0
		for i := uint64(1); n < 30 && i < 8192; i++ {
			a := addrB + i*64*uint64(llc.Geometry().Sets())
			if llc.SetIndexOf(a) != target {
				continue
			}
			m.Load(th, 1, a)
			n++
		}
		if st := m.ProbeState(0, addrB); !st.Valid() {
			t.Error("private copy lost despite non-inclusive LLC")
		}
	})
}

func TestMESIFForwardState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = coherence.MESIF
	runOn(t, cfg, func(th *sim.Thread, m *Machine) {
		m.Load(th, 0, addrB) // E at core 0
		m.Load(th, 1, addrB) // forward; owner 0 -> F per MESIF table
		st0 := m.ProbeState(0, addrB)
		st1 := m.ProbeState(1, addrB)
		fCount := 0
		for _, st := range []coherence.State{st0, st1} {
			if st == coherence.Forward {
				fCount++
			}
		}
		if fCount != 1 {
			t.Errorf("MESIF F copies = %d (states %v, %v), want exactly 1", fCount, st0, st1)
		}
	})
}

func TestMOESIOwnedState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = coherence.MOESI
	runOn(t, cfg, func(th *sim.Thread, m *Machine) {
		m.Load(th, 0, addrB)
		m.Store(th, 0, addrB) // M at core 0
		m.Load(th, 1, addrB)  // MOESI: owner M -> O, no memory write-back
		if st := m.ProbeState(0, addrB); st != coherence.Owned {
			t.Errorf("MOESI owner state after remote read = %v, want O", st)
		}
	})
}

func TestMitigationLLCNotified(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mitigations.LLCNotifiedOfEToM = true
	runOn(t, cfg, func(th *sim.Thread, m *Machine) {
		// Clean E: the mitigated LLC answers directly -> local-shared band.
		m.Load(th, 1, addrB)
		a := m.Load(th, 0, addrB)
		if a.Path != PathLocalLLC {
			t.Errorf("mitigated clean-E load path = %v, want LocalLLC", a.Path)
		}

		// Dirty (upgraded) E must still be forwarded for correctness.
		m.Flush(th, 0, addrB)
		m.Load(th, 1, addrB)
		m.Store(th, 1, addrB)
		a = m.Load(th, 0, addrB)
		if a.Path != PathLocalForward {
			t.Errorf("mitigated dirty-E load path = %v, want LocalForward", a.Path)
		}
	})
}

func TestMitigationEqualize(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mitigations.EqualizeSocketLatency = true
	runOn(t, cfg, func(th *sim.Thread, m *Machine) {
		m.Load(th, 0, addrB+64) // warm the TLB (same page, different line)
		// Local shared and remote exclusive must be indistinguishable.
		m.Load(th, 1, addrB)
		m.Load(th, 2, addrB)
		localS := m.Load(th, 0, addrB).Latency

		m.Flush(th, 0, addrB)
		m.Load(th, 6, addrB)
		remoteE := m.Load(th, 0, addrB).Latency

		diff := int64(localS) - int64(remoteE)
		if diff < 0 {
			diff = -diff
		}
		if diff > 2*cfg.Latencies.Jitter+2 {
			t.Errorf("equalized latencies differ by %d (localS=%d remoteE=%d)", diff, localS, remoteE)
		}
	})
}

func TestSingleSocketMachine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sockets = 1
	runOn(t, cfg, func(th *sim.Thread, m *Machine) {
		m.Load(th, 0, addrB+64) // warm the TLB (same page, different line)
		a := m.Load(th, 0, addrB)
		if a.Path != PathDRAM {
			t.Fatalf("cold load path = %v", a.Path)
		}
		// No QPI snoop: DRAM latency is lower than the 2-socket case.
		if a.Latency > 280 {
			t.Errorf("1-socket DRAM latency = %d, want < 280", a.Latency)
		}
	})
}

func TestStatsAccounting(t *testing.T) {
	runOn(t, DefaultConfig(), func(th *sim.Thread, m *Machine) {
		m.Load(th, 0, addrB)
		m.Load(th, 0, addrB)
		m.Store(th, 0, addrB)
		m.Flush(th, 0, addrB)
		if m.Stats.Loads != 2 || m.Stats.Stores != 1 || m.Stats.Flushes != 1 {
			t.Errorf("stats = %+v", m.Stats)
		}
		if m.Stats.PathCount(PathDRAM) != 1 || m.Stats.PathCount(PathL1) != 2 {
			t.Errorf("path stats = %s", m.Stats.String())
		}
	})
}

func TestLoadsAdvanceThreadClock(t *testing.T) {
	runOn(t, DefaultConfig(), func(th *sim.Thread, m *Machine) {
		before := th.Now()
		a := m.Load(th, 0, addrB)
		if th.Now()-before != a.Latency {
			t.Errorf("clock advanced %d, latency %d", th.Now()-before, a.Latency)
		}
	})
}

func TestSubLineAddressesShareLine(t *testing.T) {
	runOn(t, DefaultConfig(), func(th *sim.Thread, m *Machine) {
		m.Load(th, 0, addrB)
		a := m.Load(th, 0, addrB+63)
		if a.Path != PathL1 {
			t.Errorf("sub-line access path = %v, want L1", a.Path)
		}
	})
}
