package machine

import (
	"testing"

	"coherentleak/internal/sim"
)

func TestTLBFirstTouchPaysPageWalk(t *testing.T) {
	runOn(t, DefaultConfig(), func(th *sim.Thread, m *Machine) {
		// Flush first so both loads take the identical post-flush DRAM
		// path (including the cross-socket snoop); only the TLB differs.
		m.Flush(th, 0, addrB)
		cold := m.Load(th, 0, addrB)
		m.Flush(th, 0, addrB)
		warm := m.Load(th, 0, addrB) // same DRAM path, TLB now hot
		walk := m.Config().Latencies.PageWalk
		diff := int64(cold.Latency) - int64(warm.Latency)
		slop := 2*m.Config().Latencies.Jitter + 6
		if diff < int64(walk)-slop || diff > int64(walk)+slop {
			t.Errorf("cold-warm gap = %d, want ~%d (page walk)", diff, walk)
		}
	})
}

func TestTLBIsPerCore(t *testing.T) {
	runOn(t, DefaultConfig(), func(th *sim.Thread, m *Machine) {
		m.Load(th, 0, addrB)
		h0, m0 := m.TLBStats(0)
		h1, m1 := m.TLBStats(1)
		if m0 != 1 || h0 != 0 {
			t.Fatalf("core 0 TLB stats = %d/%d", h0, m0)
		}
		if m1 != 0 || h1 != 0 {
			t.Fatalf("core 1 TLB touched: %d/%d", h1, m1)
		}
		// Core 1's own first access misses its own TLB.
		m.Load(th, 1, addrB)
		if _, misses := m.TLBStats(1); misses != 1 {
			t.Fatal("core 1 first touch did not miss its TLB")
		}
	})
}

func TestTLBCapacityEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TLBEntries = 4
	runOn(t, cfg, func(th *sim.Thread, m *Machine) {
		// Touch 5 distinct pages, then re-touch the first: it must miss.
		for p := uint64(0); p < 5; p++ {
			m.Load(th, 0, 0x100000+p*4096)
		}
		_, before := m.TLBStats(0)
		m.Load(th, 0, 0x100000) // page 0 was LRU-evicted
		if _, after := m.TLBStats(0); after != before+1 {
			t.Fatalf("re-touch of evicted page did not miss (misses %d -> %d)", before, after)
		}
		// The most recent page is still resident.
		h, _ := m.TLBStats(0)
		m.Load(th, 0, 0x100000+4*4096+64)
		if h2, _ := m.TLBStats(0); h2 != h+1 {
			t.Fatal("recent page not resident")
		}
	})
}

func TestTLBDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TLBEntries = 0
	runOn(t, cfg, func(th *sim.Thread, m *Machine) {
		a := m.Load(th, 0, addrB)
		// No page-walk component: the cold DRAM load sits in the plain
		// DRAM band.
		if a.Latency > 380 {
			t.Fatalf("TLB-disabled cold load = %d", a.Latency)
		}
		if h, miss := m.TLBStats(0); h != 0 || miss != 0 {
			t.Fatal("disabled TLB accumulated stats")
		}
	})
}

// The attack is TLB-insensitive: the probe page is hot after the first
// period, so bands keep their centers.
func TestTLBDoesNotShiftBands(t *testing.T) {
	runOn(t, DefaultConfig(), func(th *sim.Thread, m *Machine) {
		m.Load(th, 0, addrB+64) // warm
		var sum sim.Cycles
		const n = 50
		for i := 0; i < n; i++ {
			m.Flush(th, 0, addrB)
			m.Load(th, 1, addrB)
			m.Load(th, 2, addrB)
			th.Advance(4000)
			sum += m.Load(th, 0, addrB).Latency
		}
		mean := sum / n
		if mean < 90 || mean > 106 {
			t.Fatalf("local-S mean with TLB = %d, want ~98", mean)
		}
	})
}
