package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// diskVersion identifies the per-entry file layout. A bump makes old
// entries read as misses (and they are removed on sight).
const diskVersion = 1

// diskSuffix marks entry files; anything else in the directory (temp
// files mid-write, stray files) is ignored by lookups and eviction.
const diskSuffix = ".cell"

// diskEntry is the on-disk envelope around an Entry. The key rides
// along so a lookup verifies it read the entry it asked for (the file
// name is only a hash of the key) and so the directory stays
// debuggable with nothing but cat.
type diskEntry struct {
	Version int    `json:"version"`
	Key     string `json:"key"`
	Entry   Entry  `json:"entry"`
}

// Disk is a crash-safe content-addressed cell store: one file per
// entry, written temp+fsync+rename so a reader (in this process or any
// other pointed at the same directory) can never observe a torn entry.
// Corrupt or truncated files — a crash mid-rename on a non-atomic
// filesystem, a partial copy — are treated as misses and deleted, so
// the next Store rewrites them. Because every entry is keyed by the
// full input digest, N cohsimd replicas sharing one directory share
// hits without any coordination beyond the filesystem.
type Disk struct {
	statsCounter

	dir string
	// maxBytes bounds the directory's entry payload; 0 means unbounded.
	// When a Store pushes usage past the bound, the oldest entries (by
	// mtime; lookups touch mtime, so this approximates LRU) are evicted
	// until usage fits again.
	maxBytes int64

	// mu guards usage and serializes eviction scans. Lookups do not take
	// it: they go straight to the filesystem, which is what lets
	// replicas share the directory.
	mu    sync.Mutex
	usage int64
}

// NewDisk opens (creating if needed) a shared cell-store directory.
// maxBytes bounds the total entry payload, 0 means unbounded.
func NewDisk(dir string, maxBytes int64) (*Disk, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: disk: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: disk: %w", err)
	}
	d := &Disk{dir: dir, maxBytes: maxBytes}
	d.usage = d.scanUsage()
	return d, nil
}

// Dir reports the store's directory.
func (d *Disk) Dir() string { return d.dir }

// path maps a cache key to its entry file. The key embeds the full
// input digest, so hashing it yields a content address: equal inputs
// collapse onto one file no matter which replica writes first.
func (d *Disk) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:])+diskSuffix)
}

// Lookup reads the entry straight from the filesystem so hits written
// by other replicas are visible immediately. Any unreadable, torn, or
// mismatched file is a miss; corrupt files are deleted so the next
// Store rewrites them cleanly.
func (d *Disk) Lookup(key, digest string) (*Entry, bool) {
	path := d.path(key)
	b, err := os.ReadFile(path)
	if err != nil {
		d.miss()
		return nil, false
	}
	var de diskEntry
	if err := json.Unmarshal(b, &de); err != nil {
		// Torn or truncated write (or garbage): treat as a miss and
		// remove it so the slot is rewritten rather than re-parsed on
		// every lookup.
		os.Remove(path)
		d.miss()
		return nil, false
	}
	if de.Version != diskVersion || de.Key != key || de.Entry.Digest != digest {
		if de.Version != diskVersion {
			os.Remove(path)
		}
		d.miss()
		return nil, false
	}
	// Touch the entry so size-bounded eviction approximates LRU rather
	// than FIFO. Best-effort: a failed touch only ages the entry.
	now := time.Now()
	os.Chtimes(path, now, now)
	d.hit()
	return &de.Entry, true
}

// Store writes the entry atomically: marshal, temp file in the store
// directory, fsync, rename over the final name, best-effort directory
// sync. A failed store is dropped silently — the cell simply re-runs
// next time — because a cache must never fail the run it serves.
func (d *Disk) Store(key string, e *Entry) {
	b, err := json.Marshal(diskEntry{Version: diskVersion, Key: key, Entry: *e})
	if err != nil {
		return
	}
	b = append(b, '\n')
	tmp, err := os.CreateTemp(d.dir, ".cell-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), d.path(key)); err != nil {
		os.Remove(tmp.Name())
		return
	}
	// Sync the directory so the rename itself survives a crash.
	if dir, err := os.Open(d.dir); err == nil {
		dir.Sync()
		dir.Close()
	}
	d.write()

	if d.maxBytes <= 0 {
		return
	}
	d.mu.Lock()
	d.usage += int64(len(b))
	over := d.usage > d.maxBytes
	d.mu.Unlock()
	if over {
		d.evict()
	}
}

// Len counts the entries currently in the directory — including ones
// written by other replicas since this store opened.
func (d *Disk) Len() int {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, ent := range ents {
		if strings.HasSuffix(ent.Name(), diskSuffix) {
			n++
		}
	}
	return n
}

// scanUsage sums the entry payload on disk.
func (d *Disk) scanUsage() int64 {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, ent := range ents {
		if !strings.HasSuffix(ent.Name(), diskSuffix) {
			continue
		}
		if info, err := ent.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}

// evict rescans the directory (the approximate usage counter cannot see
// other replicas' writes) and removes the oldest entries until the
// payload fits the bound again. Ties on mtime break on file name so
// eviction order is deterministic.
func (d *Disk) evict() {
	d.mu.Lock()
	defer d.mu.Unlock()

	type fileInfo struct {
		name string
		size int64
		mod  time.Time
	}
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	var files []fileInfo
	var total int64
	for _, ent := range ents {
		if !strings.HasSuffix(ent.Name(), diskSuffix) {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		files = append(files, fileInfo{ent.Name(), info.Size(), info.ModTime()})
		total += info.Size()
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mod.Equal(files[j].mod) {
			return files[i].mod.Before(files[j].mod)
		}
		return files[i].name < files[j].name
	})
	for _, f := range files {
		if total <= d.maxBytes {
			break
		}
		if err := os.Remove(filepath.Join(d.dir, f.name)); err == nil || os.IsNotExist(err) {
			total -= f.size
		}
	}
	d.usage = total
}
