package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// Both implementations must satisfy the interface.
var (
	_ CellStore = (*Memory)(nil)
	_ CellStore = (*Disk)(nil)
)

func testEntry(digest string, rows ...string) *Entry {
	return &Entry{Digest: digest, Rows: rows, Summary: []string{"sum"}, WallMillis: 1.5}
}

func TestDiskRoundtrip(t *testing.T) {
	d, err := NewDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry("d1", "r1\t1", "r2\t2")
	d.Store("fig2/LShared@d1", e)

	got, ok := d.Lookup("fig2/LShared@d1", "d1")
	if !ok {
		t.Fatal("stored entry did not hit")
	}
	if len(got.Rows) != 2 || got.Rows[0] != "r1\t1" || got.Summary[0] != "sum" || got.WallMillis != 1.5 {
		t.Fatalf("entry mangled on roundtrip: %+v", got)
	}
	if _, ok := d.Lookup("fig2/LShared@d1", "other-digest"); ok {
		t.Fatal("digest mismatch must miss")
	}
	if _, ok := d.Lookup("missing", "d1"); ok {
		t.Fatal("missing key must miss")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
	st := d.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Writes != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses / 1 write", st)
	}
}

// TestDiskTornEntryIsMissAndRewritten is the crash-safety contract: a
// truncated or corrupt entry file reads as a miss, is removed on sight,
// and the next Store rewrites it cleanly.
func TestDiskTornEntryIsMissAndRewritten(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.Store("k", testEntry("d", "row"))
	path := d.path("k")

	// Truncate mid-JSON, as a torn write would leave it.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Lookup("k", "d"); ok {
		t.Fatal("torn entry must read as a miss")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("torn entry not removed: stat err = %v", err)
	}

	// Outright garbage behaves the same.
	if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Lookup("k", "d"); ok {
		t.Fatal("corrupt entry must read as a miss")
	}

	// The slot rewrites and serves again.
	d.Store("k", testEntry("d", "row"))
	if got, ok := d.Lookup("k", "d"); !ok || got.Rows[0] != "row" {
		t.Fatalf("rewritten entry must hit: ok=%v got=%+v", ok, got)
	}
}

// TestDiskSharedDirectory is the multi-replica contract: two stores
// opened on the same directory see each other's writes immediately, and
// writing the same entry through either produces byte-identical files.
func TestDiskSharedDirectory(t *testing.T) {
	dir := t.TempDir()
	a, err := NewDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}

	a.Store("k1", testEntry("d1", "from-a"))
	if got, ok := b.Lookup("k1", "d1"); !ok || got.Rows[0] != "from-a" {
		t.Fatalf("replica b must see replica a's write: ok=%v got=%+v", ok, got)
	}

	// Same entry through either store: identical bytes on disk.
	first, err := os.ReadFile(a.path("k1"))
	if err != nil {
		t.Fatal(err)
	}
	b.Store("k1", testEntry("d1", "from-a"))
	second, err := os.ReadFile(b.path("k1"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("same entry written by two stores differs:\n%s\nvs\n%s", first, second)
	}
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("Len: a=%d b=%d, want 1 each", a.Len(), b.Len())
	}
}

// TestDiskEvictionUnderSizeBound fills a bounded store past its cap and
// checks the oldest entries are evicted while the newest survive.
func TestDiskEvictionUnderSizeBound(t *testing.T) {
	dir := t.TempDir()
	// Size one entry first so the bound can be set to hold ~4 of them.
	probe, err := NewDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	probe.Store("probe", testEntry("d", strings.Repeat("x", 256)))
	info, err := os.Stat(probe.path("probe"))
	if err != nil {
		t.Fatal(err)
	}
	entrySize := info.Size()
	os.Remove(probe.path("probe"))

	d, err := NewDisk(dir, 4*entrySize)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("k%d", i)
		d.Store(key, testEntry("d", strings.Repeat("x", 256)))
		// Distinct mtimes so eviction order is by age, not name.
		old := time.Now().Add(time.Duration(i-8) * time.Hour)
		if err := os.Chtimes(d.path(key), old, old); err != nil {
			t.Fatal(err)
		}
	}
	d.evict()
	if n := d.Len(); n > 4 || n == 0 {
		t.Fatalf("after eviction Len = %d, want in (0, 4]", n)
	}
	// The newest entries must survive; the oldest must be gone.
	if _, ok := d.Lookup("k7", "d"); !ok {
		t.Fatal("newest entry evicted")
	}
	if _, ok := d.Lookup("k0", "d"); ok {
		t.Fatal("oldest entry survived eviction")
	}
}

// TestDiskUnboundedNeverEvicts pins that maxBytes == 0 means unbounded.
func TestDiskUnboundedNeverEvicts(t *testing.T) {
	d, err := NewDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		d.Store(fmt.Sprintf("k%d", i), testEntry("d", strings.Repeat("x", 512)))
	}
	if d.Len() != 32 {
		t.Fatalf("Len = %d, want 32", d.Len())
	}
}

// TestDiskReopenSeesExistingEntries pins crash-restart behavior: a new
// store over an existing directory serves what is already there.
func TestDiskReopenSeesExistingEntries(t *testing.T) {
	dir := t.TempDir()
	d1, err := NewDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	d1.Store("k", testEntry("d", "persisted"))

	d2, err := NewDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := d2.Lookup("k", "d"); !ok || got.Rows[0] != "persisted" {
		t.Fatalf("reopened store must serve existing entries: ok=%v got=%+v", ok, got)
	}
	if filepath.Dir(d2.path("k")) != dir {
		t.Fatalf("entry path %q escaped store dir %q", d2.path("k"), dir)
	}
}
