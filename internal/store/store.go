// Package store is the content-addressed cell-output store behind the
// harness cell cache. Every cached entry is keyed by the full input
// digest of the cell that produced it — config digest, seed, sizing,
// artifact and cell identity — so a key names exactly one possible
// output and a hit can be replayed verbatim without re-validating
// anything beyond the digest.
//
// Two implementations ship today: Memory, the in-process LRU map the
// harness has always used (with optional whole-snapshot persistence),
// and Disk, a crash-safe one-file-per-entry store that any number of
// cohsimd replicas can point at the same directory to share hits.
// A network backend can slot in behind the same interface later.
package store

import "sync"

// Entry is one cached cell output. Entries are immutable once stored:
// implementations and callers share pointers freely.
type Entry struct {
	// Digest hashes the inputs that produced the entry (config digest,
	// seed, sizing, artifact, cell). A lookup only hits when it matches.
	Digest string `json:"digest"`
	// Rows and Summary replay the cell's output verbatim.
	Rows    []string `json:"rows"`
	Summary []string `json:"summary,omitempty"`
	// WallMillis is the original execution time, reported on hits so a
	// cached run can say how much work it skipped.
	WallMillis float64 `json:"wallMillis"`
}

// CellStore is the content-addressed cache consulted before any cell is
// executed or dispatched. Implementations must be safe for concurrent
// use: the Runner's workers and every daemon job share one store.
type CellStore interface {
	// Lookup returns the cached entry for key if its input digest
	// matches. A mismatch, a missing entry, or an unreadable/corrupt
	// entry all report a miss.
	Lookup(key, digest string) (*Entry, bool)
	// Store records a cell's output, replacing any stale entry. Stores
	// are best-effort: an implementation that cannot persist the entry
	// drops it silently (the cell simply re-executes next time).
	Store(key string, e *Entry)
	// Len reports the number of cached cells currently visible.
	Len() int
}

// Stats counts one store's traffic since construction. Implementations
// embed statsCounter to provide them.
type Stats struct {
	Hits   uint64
	Misses uint64
	Writes uint64
}

// statsCounter is the shared hit/miss/write bookkeeping.
type statsCounter struct {
	mu    sync.Mutex
	stats Stats
}

func (c *statsCounter) hit()   { c.mu.Lock(); c.stats.Hits++; c.mu.Unlock() }
func (c *statsCounter) miss()  { c.mu.Lock(); c.stats.Misses++; c.mu.Unlock() }
func (c *statsCounter) write() { c.mu.Lock(); c.stats.Writes++; c.mu.Unlock() }

// Stats returns a snapshot of the store's traffic counters.
func (c *statsCounter) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
