package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// ManifestVersion identifies the on-disk manifest layout. A version
// bump invalidates old caches wholesale.
const ManifestVersion = 1

type manifestFile struct {
	Version int               `json:"version"`
	Entries map[string]*Entry `json:"entries"`
}

// Memory is the in-process cell store: a map with optional LRU
// bounding, plus whole-snapshot persistence (Save/LoadMemory) for
// single-process restarts. Safe for concurrent use by the Runner's
// workers and for sharing across daemon jobs: lookups, stores and
// saves may all overlap.
type Memory struct {
	statsCounter

	mu      sync.Mutex
	entries map[string]*Entry
	// limit bounds the entry count; 0 means unbounded. When a Store
	// would exceed it, the least-recently-used entry is evicted.
	limit int
	// clock is a logical recency counter; lastUse[key] holds the tick of
	// the key's last hit or store. Recency is in-memory only — a loaded
	// manifest starts with every entry equally old, which is fine: the
	// first sweep over it refreshes what is live.
	clock   uint64
	lastUse map[string]uint64
	// saveMu serializes Save so two jobs finishing simultaneously write
	// whole snapshots in turn instead of racing on the temp file.
	saveMu sync.Mutex
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{
		entries: make(map[string]*Entry),
		lastUse: make(map[string]uint64),
	}
}

// SetLimit bounds the cache to at most n entries (0 restores unbounded
// growth). If the store already holds more, the least-recently-used
// entries are pruned immediately.
func (m *Memory) SetLimit(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.limit = n
	m.pruneLocked()
}

// pruneLocked evicts least-recently-used entries until the limit holds.
// Eviction scans for the minimum recency tick — O(n) per eviction, but
// evictions are rare (one per Store once the cache is full) and n is
// the cache bound itself. Ties break on the smaller key so eviction
// order is deterministic.
func (m *Memory) pruneLocked() {
	if m.limit <= 0 {
		return
	}
	for len(m.entries) > m.limit {
		var victim string
		var oldest uint64
		first := true
		for k := range m.entries {
			use := m.lastUse[k]
			if first || use < oldest || (use == oldest && k < victim) {
				victim, oldest, first = k, use, false
			}
		}
		delete(m.entries, victim)
		delete(m.lastUse, victim)
	}
}

// LoadMemory reads a persisted snapshot. A missing file or a version
// mismatch yields an empty store (the cache simply starts cold);
// unreadable or malformed files are reported as errors.
func LoadMemory(path string) (*Memory, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewMemory(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: manifest: %w", err)
	}
	var f manifestFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("store: manifest %s: %w", path, err)
	}
	if f.Version != ManifestVersion || f.Entries == nil {
		return NewMemory(), nil
	}
	return &Memory{entries: f.Entries, lastUse: make(map[string]uint64, len(f.Entries))}, nil
}

// Save writes the store atomically: a consistent snapshot is
// marshalled to a temp file in the destination directory, fsynced, and
// renamed over path, so a crash mid-save (or a reader racing a writer)
// can never observe a torn manifest. Concurrent Saves are serialized;
// concurrent Stores continue without blocking on the disk write (they
// land in the next Save's snapshot).
func (m *Memory) Save(path string) error {
	m.saveMu.Lock()
	defer m.saveMu.Unlock()

	// Snapshot the map under the entry lock, marshal outside it so a
	// large manifest doesn't stall the Runner's workers. Entries are
	// immutable once stored, so sharing pointers is safe.
	m.mu.Lock()
	snap := make(map[string]*Entry, len(m.entries))
	for k, e := range m.entries {
		snap[k] = e
	}
	m.mu.Unlock()
	b, err := json.MarshalIndent(manifestFile{Version: ManifestVersion, Entries: snap}, "", "  ")
	if err != nil {
		return fmt.Errorf("store: manifest: %w", err)
	}

	tmp, err := os.CreateTemp(filepath.Dir(path), ".manifest-*")
	if err != nil {
		return fmt.Errorf("store: manifest: %w", err)
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: manifest: %w", err)
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: manifest: %w", err)
	}
	// Sync the directory so the rename itself survives a crash.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// Lookup returns the cached entry for key if its input digest matches.
func (m *Memory) Lookup(key, digest string) (*Entry, bool) {
	m.mu.Lock()
	e, ok := m.entries[key]
	if !ok || e.Digest != digest {
		m.mu.Unlock()
		m.miss()
		return nil, false
	}
	m.clock++
	m.lastUse[key] = m.clock
	m.mu.Unlock()
	m.hit()
	return e, true
}

// Store records a cell's output, replacing any stale entry. When a
// limit is set and the cache is full, the least-recently-used entry is
// evicted to make room.
func (m *Memory) Store(key string, e *Entry) {
	m.mu.Lock()
	m.entries[key] = e
	m.clock++
	m.lastUse[key] = m.clock
	m.pruneLocked()
	m.mu.Unlock()
	m.write()
}

// Len reports the number of cached cells.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}
