// Package interconnect models the transport fabric between caches: the
// on-chip path between private caches and the LLC, and the QPI-style
// point-to-point link between sockets. Each link has a base traversal
// latency plus a utilization-driven queuing component; the queuing term is
// how external noise (co-located memory-intensive workloads) couples into
// the covert channel's latency bands, widening them exactly where the
// paper observes (§VIII-C: remote E-state accesses vary most under load).
package interconnect

import (
	"fmt"

	"coherentleak/internal/sim"
)

// Link is one transport segment with congestion-dependent delay.
type Link struct {
	// Name identifies the link in reports ("ring0", "qpi", ...).
	Name string
	// BaseLatency is the uncontended one-way traversal time in cycles.
	BaseLatency sim.Cycles
	// ServiceCycles is the per-message occupancy used to convert offered
	// load into utilization.
	ServiceCycles sim.Cycles

	rng *sim.Rand

	// load tracks recent message departures for the sliding-window
	// utilization estimate.
	window     sim.Cycles // window width in cycles
	departures []sim.Cycles

	// Stats
	Messages     uint64
	TotalQueuing sim.Cycles
}

// NewLink returns a link. rng drives queuing-tail draws and must be a
// dedicated stream (use World.Rand().Split()).
func NewLink(name string, base, service sim.Cycles, rng *sim.Rand) *Link {
	if rng == nil {
		panic("interconnect: nil rng")
	}
	return &Link{
		Name:          name,
		BaseLatency:   base,
		ServiceCycles: service,
		rng:           rng,
		window:        4096,
	}
}

// Utilization estimates the fraction of the recent window the link was
// busy, in [0, 1).
func (l *Link) Utilization(now sim.Cycles) float64 {
	l.expire(now)
	busy := sim.Cycles(len(l.departures)) * l.ServiceCycles
	u := float64(busy) / float64(l.window)
	if u > 0.95 {
		u = 0.95
	}
	return u
}

func (l *Link) expire(now sim.Cycles) {
	var cutoff sim.Cycles
	if now > l.window {
		cutoff = now - l.window
	}
	i := 0
	for i < len(l.departures) && l.departures[i] < cutoff {
		i++
	}
	if i > 0 {
		l.departures = append(l.departures[:0], l.departures[i:]...)
	}
}

// Traverse accounts one message crossing the link at virtual time now and
// returns the total latency: base + M/M/1-flavoured queuing delay drawn
// deterministically from the link's stream.
func (l *Link) Traverse(now sim.Cycles) sim.Cycles {
	u := l.Utilization(now)
	l.departures = append(l.departures, now)
	l.Messages++

	// Expected queue residency rises as u/(1-u); realize it as a
	// geometric number of extra service slots so the tail is integer-
	// valued and deterministic under the seed.
	q := sim.Cycles(0)
	if u > 0 {
		extra := l.rng.Geometric(1-u, 16)
		q = sim.Cycles(extra) * l.ServiceCycles
	}
	l.TotalQueuing += q
	return l.BaseLatency + q
}

// MeanQueuing returns average queuing delay per message, for reports.
func (l *Link) MeanQueuing() float64 {
	if l.Messages == 0 {
		return 0
	}
	return float64(l.TotalQueuing) / float64(l.Messages)
}

func (l *Link) String() string {
	return fmt.Sprintf("link %s: base=%d service=%d msgs=%d meanQ=%.1f",
		l.Name, l.BaseLatency, l.ServiceCycles, l.Messages, l.MeanQueuing())
}
