package interconnect

import (
	"testing"

	"coherentleak/internal/sim"
)

func newTestLink() *Link {
	return NewLink("test", 20, 8, sim.NewRand(7))
}

func TestNilRNGPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLink(nil rng) did not panic")
		}
	}()
	NewLink("bad", 1, 1, nil)
}

func TestUncontendedTraverseIsBaseLatency(t *testing.T) {
	l := newTestLink()
	if got := l.Traverse(0); got != 20 {
		t.Fatalf("first traverse = %d, want base 20", got)
	}
}

func TestUtilizationEmpty(t *testing.T) {
	l := newTestLink()
	if u := l.Utilization(0); u != 0 {
		t.Fatalf("empty utilization = %v", u)
	}
}

func TestUtilizationGrowsWithTraffic(t *testing.T) {
	l := newTestLink()
	now := sim.Cycles(0)
	for i := 0; i < 100; i++ {
		l.Traverse(now)
		now += 10
	}
	u := l.Utilization(now)
	if u <= 0 {
		t.Fatalf("utilization = %v after heavy traffic", u)
	}
	if u > 0.95 {
		t.Fatalf("utilization %v above cap", u)
	}
}

func TestUtilizationDecaysAfterIdle(t *testing.T) {
	l := newTestLink()
	now := sim.Cycles(0)
	for i := 0; i < 100; i++ {
		l.Traverse(now)
		now += 10
	}
	busy := l.Utilization(now)
	idleLater := now + 100000
	if got := l.Utilization(idleLater); got >= busy {
		t.Fatalf("utilization did not decay: busy=%v later=%v", busy, got)
	}
	if got := l.Utilization(idleLater); got != 0 {
		t.Fatalf("utilization after long idle = %v, want 0", got)
	}
}

func TestQueuingDelayAppearsUnderLoad(t *testing.T) {
	l := newTestLink()
	now := sim.Cycles(0)
	sawQueueing := false
	for i := 0; i < 2000; i++ {
		if l.Traverse(now) > l.BaseLatency {
			sawQueueing = true
		}
		now += 5 // offered load ~1.6x service rate
	}
	if !sawQueueing {
		t.Fatal("no queuing delay under 160% offered load")
	}
	if l.MeanQueuing() <= 0 {
		t.Fatal("MeanQueuing not positive under load")
	}
}

func TestTraverseDeterministic(t *testing.T) {
	run := func() []sim.Cycles {
		l := newTestLink()
		var out []sim.Cycles
		now := sim.Cycles(0)
		for i := 0; i < 500; i++ {
			out = append(out, l.Traverse(now))
			now += 6
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traverse stream diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	l := newTestLink()
	for i := 0; i < 10; i++ {
		l.Traverse(sim.Cycles(i * 100000)) // spaced out: no queuing
	}
	if l.Messages != 10 {
		t.Fatalf("Messages = %d", l.Messages)
	}
	if l.TotalQueuing != 0 {
		t.Fatalf("spaced traffic accrued queuing %d", l.TotalQueuing)
	}
	if l.String() == "" {
		t.Fatal("empty String()")
	}
}
