// Package coherence defines the cache coherence state machines used by the
// simulated machine: MESI (the baseline analysed in the paper), Intel-style
// MESIF, AMD-style MOESI, and a snoop-bus variant. It also provides the
// directory bookkeeping (LLC core-valid bits) that selects the service path
// for a read miss — the mechanism the covert channel exploits.
package coherence

import "fmt"

// State is a cache-line coherence state. The paper's analysis treats M, E,
// S and I as fundamental and F/O as performance refinements; all six are
// modelled so the protocol variants can be compared.
type State uint8

const (
	// Invalid: the line holds no usable data.
	Invalid State = iota
	// Shared: clean, possibly multiple sharers, read-only.
	Shared
	// Exclusive: clean, sole copy, read-only but silently upgradeable to
	// Modified. This dual-intent state is the one the paper attacks.
	Exclusive
	// Modified: dirty, sole copy, read-write.
	Modified
	// Forward: MESIF only — the sharer designated to answer requests.
	Forward
	// Owned: MOESI only — dirty but shared; the owner services misses and
	// is responsible for the eventual write-back.
	Owned
)

var stateNames = [...]string{"I", "S", "E", "M", "F", "O"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Valid reports whether the line holds usable data.
func (s State) Valid() bool { return s != Invalid }

// Dirty reports whether the line's data may differ from memory.
func (s State) Dirty() bool { return s == Modified || s == Owned }

// Readable reports whether a load can be satisfied from this state.
func (s State) Readable() bool { return s.Valid() }

// Writable reports whether a store can proceed without a coherence
// transaction.
func (s State) Writable() bool { return s == Modified || s == Exclusive }

// SoleCopy reports whether the protocol guarantees no other cache holds
// the line.
func (s State) SoleCopy() bool { return s == Modified || s == Exclusive }

// Protocol selects a coherence protocol family.
type Protocol uint8

const (
	// MESI is the four-state baseline the paper uses for exposition.
	MESI Protocol = iota
	// MESIF adds the Forward state (Intel Xeon / QuickPath).
	MESIF
	// MOESI adds the Owned state (AMD Opteron / HyperTransport).
	MOESI
)

func (p Protocol) String() string {
	switch p {
	case MESI:
		return "MESI"
	case MESIF:
		return "MESIF"
	case MOESI:
		return "MOESI"
	default:
		return fmt.Sprintf("Protocol(%d)", uint8(p))
	}
}

// Has reports whether the protocol includes state s.
func (p Protocol) Has(s State) bool {
	switch s {
	case Forward:
		return p == MESIF
	case Owned:
		return p == MOESI
	default:
		return true
	}
}

// Event is a stimulus applied to a cache line's state machine.
type Event uint8

const (
	// LocalRead: the owning core loads the line.
	LocalRead Event = iota
	// LocalWrite: the owning core stores to the line.
	LocalWrite
	// RemoteRead: another core's read miss reaches this copy.
	RemoteRead
	// RemoteWrite: another core's write (RFO/invalidate) reaches this copy.
	RemoteWrite
	// Evict: the line is chosen as replacement victim.
	Evict
	// FlushOp: an explicit clflush-style invalidation.
	FlushOp
)

var eventNames = [...]string{"LocalRead", "LocalWrite", "RemoteRead", "RemoteWrite", "Evict", "Flush"}

func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return fmt.Sprintf("Event(%d)", uint8(e))
}

// Action is a side effect the cache controller must perform alongside a
// state transition.
type Action uint8

const (
	// NoAction: pure state change.
	NoAction Action = iota
	// WriteBack: flush dirty data to the next level / memory.
	WriteBack
	// SupplyData: forward the line to the requestor (cache-to-cache).
	SupplyData
	// SupplyAndWriteBack: forward to the requestor and also leave a clean
	// copy at the shared level (the E->S downgrade path in §VI-A).
	SupplyAndWriteBack
)

func (a Action) String() string {
	switch a {
	case NoAction:
		return "none"
	case WriteBack:
		return "writeback"
	case SupplyData:
		return "supply"
	case SupplyAndWriteBack:
		return "supply+writeback"
	default:
		return fmt.Sprintf("Action(%d)", uint8(a))
	}
}

// Transition is the outcome of applying an Event to a State.
type Transition struct {
	Next   State
	Action Action
}

// Apply returns the transition for state s under event e in protocol p.
// Transitions follow Sorin, Hill & Wood ("A Primer on Memory Consistency
// and Cache Coherence"), which the paper cites for its protocol behaviour.
// Apply panics if s is not a state of p (a protocol implementation bug).
func Apply(p Protocol, s State, e Event) Transition {
	if !p.Has(s) {
		panic(fmt.Sprintf("coherence: state %v not in protocol %v", s, p))
	}
	switch e {
	case LocalRead:
		// A local read never degrades a valid state; a read to Invalid is
		// a miss handled by the controller, which installs S/E/F per the
		// sharer census (see InstallState).
		if s == Invalid {
			return Transition{Invalid, NoAction}
		}
		return Transition{s, NoAction}

	case LocalWrite:
		switch s {
		case Invalid:
			// Write miss: controller issues RFO; resulting state is M.
			return Transition{Modified, NoAction}
		case Shared, Forward, Owned:
			// Upgrade: invalidate other sharers, become M.
			return Transition{Modified, NoAction}
		case Exclusive:
			// Silent upgrade — no bus traffic. This silence is what makes
			// the paper's hardware mitigation (§VIII-E item 3) a real
			// protocol change: the LLC is not currently told about E->M.
			return Transition{Modified, NoAction}
		case Modified:
			return Transition{Modified, NoAction}
		}

	case RemoteRead:
		switch s {
		case Invalid:
			return Transition{Invalid, NoAction}
		case Shared:
			return Transition{Shared, NoAction}
		case Exclusive:
			// E -> S with a clean copy left at the shared level; the extra
			// hop is the latency the spy observes (§VI-A).
			if p == MESIF {
				// The previous exclusive owner becomes the Forwarder.
				return Transition{Forward, SupplyAndWriteBack}
			}
			return Transition{Shared, SupplyAndWriteBack}
		case Modified:
			if p == MOESI {
				// Dirty sharing without memory write-back.
				return Transition{Owned, SupplyData}
			}
			return Transition{Shared, SupplyAndWriteBack}
		case Forward:
			// Forwarder supplies data and keeps forwarding duty here
			// (hardware differs on F migration; either choice preserves
			// the latency structure).
			return Transition{Forward, SupplyData}
		case Owned:
			return Transition{Owned, SupplyData}
		}

	case RemoteWrite:
		switch s {
		case Invalid:
			return Transition{Invalid, NoAction}
		case Modified, Owned:
			// Must hand the dirty data to the writer before invalidating.
			return Transition{Invalid, SupplyData}
		default:
			return Transition{Invalid, NoAction}
		}

	case Evict:
		if s.Dirty() {
			return Transition{Invalid, WriteBack}
		}
		return Transition{Invalid, NoAction}

	case FlushOp:
		if s.Dirty() {
			return Transition{Invalid, WriteBack}
		}
		return Transition{Invalid, NoAction}
	}
	panic(fmt.Sprintf("coherence: unhandled event %v", e))
}

// InstallState returns the state a read-miss fill should install, given
// how many *other* caches hold the line after the fill.
func InstallState(p Protocol, otherSharers int) State {
	if otherSharers == 0 {
		return Exclusive
	}
	if p == MESIF {
		// The newest requestor becomes the Forwarder on Intel parts.
		return Forward
	}
	return Shared
}
