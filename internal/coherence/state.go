// Package coherence defines the cache coherence machinery used by the
// simulated machine. Protocols are *data*: a ProtocolSpec is a declarative
// transition table (state × event → next state, action, latency class)
// plus install/store policy knobs, validated at construction and looked up
// from a named registry (MESI, MESIF, MOESI, DRAGON, WT-NA by default).
// The package also provides the directory bookkeeping (LLC core-valid
// bits) that selects the service path for a read miss — the mechanism the
// covert channel exploits.
package coherence

import "fmt"

// State is a cache-line coherence state. The paper's analysis treats M, E,
// S and I as fundamental and F/O as performance refinements; all six are
// modelled so the protocol variants can be compared. Protocol specs reuse
// this vocabulary for their own states (Dragon's Sc/Sm map onto S/O).
type State uint8

const (
	// Invalid: the line holds no usable data.
	Invalid State = iota
	// Shared: clean, possibly multiple sharers, read-only.
	Shared
	// Exclusive: clean, sole copy, read-only but silently upgradeable to
	// Modified. This dual-intent state is the one the paper attacks.
	Exclusive
	// Modified: dirty, sole copy, read-write.
	Modified
	// Forward: MESIF only — the sharer designated to answer requests.
	Forward
	// Owned: dirty but shared; the owner services misses and is
	// responsible for the eventual write-back (MOESI's O, Dragon's Sm).
	Owned

	// NumStates bounds the state space for table-driven specs.
	NumStates = 6
)

var stateNames = [...]string{"I", "S", "E", "M", "F", "O"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// AllStates lists every modelled state, Invalid first.
func AllStates() []State {
	return []State{Invalid, Shared, Exclusive, Modified, Forward, Owned}
}

// Valid reports whether the line holds usable data.
func (s State) Valid() bool { return s != Invalid }

// Dirty reports whether the line's data may differ from memory.
func (s State) Dirty() bool { return s == Modified || s == Owned }

// Readable reports whether a load can be satisfied from this state.
func (s State) Readable() bool { return s.Valid() }

// Writable reports whether a store can proceed without a coherence
// transaction.
func (s State) Writable() bool { return s == Modified || s == Exclusive }

// SoleCopy reports whether the protocol guarantees no other cache holds
// the line.
func (s State) SoleCopy() bool { return s == Modified || s == Exclusive }

// Protocol names a coherence protocol registered as a ProtocolSpec.
// The value is the registry key (case-insensitive); the empty string
// selects MESI, matching the historical enum's zero value.
type Protocol string

const (
	// MESI is the four-state baseline the paper uses for exposition.
	MESI Protocol = "MESI"
	// MESIF adds the Forward state (Intel Xeon / QuickPath).
	MESIF Protocol = "MESIF"
	// MOESI adds the Owned state (AMD Opteron / HyperTransport).
	MOESI Protocol = "MOESI"
	// Dragon is the write-update protocol (Xerox Dragon): stores
	// broadcast updates instead of invalidations, so sharers never lose
	// their copies. Table-only — no machine code names it.
	Dragon Protocol = "DRAGON"
	// WTNA is write-through-no-allocate: stores push data to the shared
	// level without claiming exclusivity, so no state is ever dirty and
	// the E/M dual-intent the paper attacks does not exist.
	WTNA Protocol = "WT-NA"
)

func (p Protocol) String() string {
	if p == "" {
		return string(MESI)
	}
	return string(p)
}

// Event is a stimulus applied to a cache line's state machine.
type Event uint8

const (
	// LocalRead: the owning core loads the line.
	LocalRead Event = iota
	// LocalWrite: the owning core stores to the line.
	LocalWrite
	// RemoteRead: another core's read miss reaches this copy.
	RemoteRead
	// RemoteWrite: another core's write (RFO/invalidate, or a Dragon-
	// style update broadcast) reaches this copy.
	RemoteWrite
	// Evict: the line is chosen as replacement victim.
	Evict
	// FlushOp: an explicit clflush-style invalidation.
	FlushOp

	// NumEvents bounds the event space for table-driven specs.
	NumEvents = 6
)

var eventNames = [...]string{"LocalRead", "LocalWrite", "RemoteRead", "RemoteWrite", "Evict", "Flush"}

func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return fmt.Sprintf("Event(%d)", uint8(e))
}

// AllEvents lists every event in declaration order.
func AllEvents() []Event {
	return []Event{LocalRead, LocalWrite, RemoteRead, RemoteWrite, Evict, FlushOp}
}

// Action is a side effect the cache controller must perform alongside a
// state transition.
type Action uint8

const (
	// NoAction: pure state change.
	NoAction Action = iota
	// WriteBack: flush dirty data to the next level / memory.
	WriteBack
	// SupplyData: forward the line to the requestor (cache-to-cache).
	SupplyData
	// SupplyAndWriteBack: forward to the requestor and also leave a clean
	// copy at the shared level (the E->S downgrade path in §VI-A).
	SupplyAndWriteBack
)

func (a Action) String() string {
	switch a {
	case NoAction:
		return "none"
	case WriteBack:
		return "writeback"
	case SupplyData:
		return "supply"
	case SupplyAndWriteBack:
		return "supply+writeback"
	default:
		return fmt.Sprintf("Action(%d)", uint8(a))
	}
}

// LatencyClass names the timing band the bus work of a transition falls
// in. The machine maps classes to its calibrated component latencies;
// the table only says which band applies.
type LatencyClass uint8

const (
	// LatFree: no coherence traffic beyond the access itself.
	LatFree LatencyClass = iota
	// LatStoreHit: the store retires in the private cache (an M hit, or
	// the silent E->M upgrade at the heart of the paper's channel).
	LatStoreHit
	// LatUpgrade: data already present; pay the invalidation (or
	// write-update broadcast) round to the shared level.
	LatUpgrade
	// LatFill: the full read-miss service path, then the RFO overhead.
	LatFill
	// LatWriteBack: dirty data pushed toward the shared level / memory.
	LatWriteBack
	// LatWriteThrough: the store pays a write-through round to the
	// shared level and the line stays clean.
	LatWriteThrough
)

func (l LatencyClass) String() string {
	switch l {
	case LatFree:
		return "free"
	case LatStoreHit:
		return "store-hit"
	case LatUpgrade:
		return "upgrade"
	case LatFill:
		return "fill"
	case LatWriteBack:
		return "writeback"
	case LatWriteThrough:
		return "write-through"
	default:
		return fmt.Sprintf("LatencyClass(%d)", uint8(l))
	}
}

// Transition is the outcome of applying an Event to a State.
type Transition struct {
	Next    State
	Action  Action
	Latency LatencyClass
}
