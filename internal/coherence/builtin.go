package coherence

// Builtin protocol tables. MESI, MESIF and MOESI restate the historical
// hand-coded state machine (Sorin, Hill & Wood, "A Primer on Memory
// Consistency and Cache Coherence", which the paper cites) as data; the
// golden cross-check test in spec_test.go proves the restatement exact.
// Dragon and WT-NA exist only as tables — no machine code names them —
// which is the point of the data-driven engine: protocol variants are
// registry entries, and the protocol × channel matrix artifact measures
// which leaks survive each one.

// invalidRow is the shared I-state behaviour of the allocate-on-write
// protocols: reads and writes to Invalid are misses the controller
// services via the install/store policies; everything else is a no-op.
func invalidRow() []Rule {
	return []Rule{
		{Invalid, LocalRead, Invalid, NoAction, LatFree},
		{Invalid, LocalWrite, Modified, NoAction, LatFill},
		{Invalid, RemoteRead, Invalid, NoAction, LatFree},
		{Invalid, RemoteWrite, Invalid, NoAction, LatFree},
		{Invalid, Evict, Invalid, NoAction, LatFree},
		{Invalid, FlushOp, Invalid, NoAction, LatFree},
	}
}

// cleanSharedRow is S under an invalidation protocol: upgrades pay the
// invalidation round, remote writes invalidate, eviction is free.
func cleanSharedRow(st State) []Rule {
	return []Rule{
		{st, LocalRead, st, NoAction, LatFree},
		{st, LocalWrite, Modified, NoAction, LatUpgrade},
		{st, RemoteWrite, Invalid, NoAction, LatFree},
		{st, Evict, Invalid, NoAction, LatFree},
		{st, FlushOp, Invalid, NoAction, LatFree},
	}
}

// modifiedRow is M minus the RemoteRead transition, which is the one
// place the MESI-family protocols genuinely differ.
func modifiedRow() []Rule {
	return []Rule{
		{Modified, LocalRead, Modified, NoAction, LatFree},
		{Modified, LocalWrite, Modified, NoAction, LatStoreHit},
		{Modified, RemoteWrite, Invalid, SupplyData, LatFree},
		{Modified, Evict, Invalid, WriteBack, LatWriteBack},
		{Modified, FlushOp, Invalid, WriteBack, LatWriteBack},
	}
}

// exclusiveRow is E minus the RemoteRead transition (MESIF hands the
// downgraded owner the Forward duty, the others plain S).
func exclusiveRow() []Rule {
	return []Rule{
		{Exclusive, LocalRead, Exclusive, NoAction, LatFree},
		// Silent upgrade — no bus traffic. This silence is what makes
		// the paper's hardware mitigation (§VIII-E item 3) a real
		// protocol change: the LLC is not told about E->M.
		{Exclusive, LocalWrite, Modified, NoAction, LatStoreHit},
		{Exclusive, RemoteWrite, Invalid, NoAction, LatFree},
		{Exclusive, Evict, Invalid, NoAction, LatFree},
		{Exclusive, FlushOp, Invalid, NoAction, LatFree},
	}
}

func concat(groups ...[]Rule) []Rule {
	var out []Rule
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

var (
	// SpecMESI is the four-state baseline the paper uses for exposition.
	SpecMESI = MustRegister(SpecDef{
		Name:        string(MESI),
		Description: "four-state invalidation baseline (paper's exposition protocol)",
		States:      []State{Shared, Exclusive, Modified},
		Rules: concat(
			invalidRow(),
			cleanSharedRow(Shared),
			[]Rule{{Shared, RemoteRead, Shared, NoAction, LatFree}},
			exclusiveRow(),
			// E -> S with a clean copy left at the shared level; the
			// extra hop is the latency the spy observes (§VI-A).
			[]Rule{{Exclusive, RemoteRead, Shared, SupplyAndWriteBack, LatFree}},
			modifiedRow(),
			[]Rule{{Modified, RemoteRead, Shared, SupplyAndWriteBack, LatFree}},
		),
		Install: InstallPolicy{Solo: Exclusive, Shared: Shared, FromOwner: Shared},
		Store:   StorePolicy{Solo: Modified, Shared: Modified, Allocate: true},
	})

	// SpecMESIF adds the Forward state (Intel Xeon / QuickPath): the
	// newest requestor becomes the designated responder.
	SpecMESIF = MustRegister(SpecDef{
		Name:        string(MESIF),
		Description: "MESI plus Forward responder state (Intel Xeon / QuickPath)",
		States:      []State{Shared, Exclusive, Modified, Forward},
		Rules: concat(
			invalidRow(),
			cleanSharedRow(Shared),
			[]Rule{{Shared, RemoteRead, Shared, NoAction, LatFree}},
			exclusiveRow(),
			// The previous exclusive owner becomes the Forwarder.
			[]Rule{{Exclusive, RemoteRead, Forward, SupplyAndWriteBack, LatFree}},
			modifiedRow(),
			[]Rule{{Modified, RemoteRead, Shared, SupplyAndWriteBack, LatFree}},
			cleanSharedRow(Forward),
			// Forwarder supplies data and keeps forwarding duty here
			// (hardware differs on F migration; either choice preserves
			// the latency structure).
			[]Rule{{Forward, RemoteRead, Forward, SupplyData, LatFree}},
		),
		Install: InstallPolicy{Solo: Exclusive, Shared: Forward, FromOwner: Shared, Demote: Shared},
		Store:   StorePolicy{Solo: Modified, Shared: Modified, Allocate: true},
		Unique:  []State{Forward},
	})

	// SpecMOESI adds the Owned state (AMD Opteron / HyperTransport):
	// dirty sharing without the memory write-back.
	SpecMOESI = MustRegister(SpecDef{
		Name:        string(MOESI),
		Description: "MESI plus Owned dirty-sharing state (AMD Opteron / HyperTransport)",
		States:      []State{Shared, Exclusive, Modified, Owned},
		Rules: concat(
			invalidRow(),
			cleanSharedRow(Shared),
			[]Rule{{Shared, RemoteRead, Shared, NoAction, LatFree}},
			exclusiveRow(),
			[]Rule{{Exclusive, RemoteRead, Shared, SupplyAndWriteBack, LatFree}},
			modifiedRow(),
			// MOESI's whole point: avoid the memory write-back on
			// M -> shared; the owner keeps servicing misses.
			[]Rule{{Modified, RemoteRead, Owned, SupplyData, LatFree}},
			[]Rule{
				{Owned, LocalRead, Owned, NoAction, LatFree},
				{Owned, LocalWrite, Modified, NoAction, LatUpgrade},
				{Owned, RemoteRead, Owned, SupplyData, LatFree},
				// Must hand the dirty data to the writer before
				// invalidating.
				{Owned, RemoteWrite, Invalid, SupplyData, LatFree},
				{Owned, Evict, Invalid, WriteBack, LatWriteBack},
				{Owned, FlushOp, Invalid, WriteBack, LatWriteBack},
			},
		),
		Install: InstallPolicy{Solo: Exclusive, Shared: Shared, FromOwner: Shared},
		Store:   StorePolicy{Solo: Modified, Shared: Modified, Allocate: true},
		Unique:  []State{Owned},
	})

	// SpecDragon is the Xerox Dragon write-update protocol. S plays Sc
	// (shared clean) and O plays Sm (shared modified): stores to shared
	// lines broadcast updates, so sharers keep their copies and the
	// writer holds dirty-shared ownership instead of exclusivity.
	SpecDragon = MustRegister(SpecDef{
		Name:        string(Dragon),
		Description: "write-update protocol (Xerox Dragon); stores broadcast instead of invalidating",
		States:      []State{Shared, Exclusive, Modified, Owned},
		Rules: concat(
			invalidRow(),
			[]Rule{
				{Shared, LocalRead, Shared, NoAction, LatFree},
				// A write to a shared line is the update broadcast; the
				// writer becomes Sm (dirty-shared owner).
				{Shared, LocalWrite, Owned, NoAction, LatUpgrade},
				{Shared, RemoteRead, Shared, NoAction, LatFree},
				// The update is received in place: the copy stays valid.
				{Shared, RemoteWrite, Shared, NoAction, LatFree},
				{Shared, Evict, Invalid, NoAction, LatFree},
				{Shared, FlushOp, Invalid, NoAction, LatFree},
			},
			[]Rule{
				{Exclusive, LocalRead, Exclusive, NoAction, LatFree},
				// Dragon keeps MESI's silent E->M upgrade for sole
				// copies, so the paper's dual-intent leak survives.
				{Exclusive, LocalWrite, Modified, NoAction, LatStoreHit},
				{Exclusive, RemoteRead, Shared, SupplyAndWriteBack, LatFree},
				// A remote writer's update arrives with the data; the
				// copy downgrades to shared-clean instead of dying.
				{Exclusive, RemoteWrite, Shared, NoAction, LatFree},
				{Exclusive, Evict, Invalid, NoAction, LatFree},
				{Exclusive, FlushOp, Invalid, NoAction, LatFree},
			},
			[]Rule{
				{Modified, LocalRead, Modified, NoAction, LatFree},
				{Modified, LocalWrite, Modified, NoAction, LatStoreHit},
				{Modified, RemoteRead, Owned, SupplyData, LatFree},
				// Ownership migrates to the remote writer; this copy is
				// updated in place and is clean again.
				{Modified, RemoteWrite, Shared, SupplyData, LatFree},
				{Modified, Evict, Invalid, WriteBack, LatWriteBack},
				{Modified, FlushOp, Invalid, WriteBack, LatWriteBack},
			},
			[]Rule{
				{Owned, LocalRead, Owned, NoAction, LatFree},
				// Every store to a shared-modified line re-broadcasts.
				{Owned, LocalWrite, Owned, NoAction, LatUpgrade},
				{Owned, RemoteRead, Owned, SupplyData, LatFree},
				{Owned, RemoteWrite, Shared, SupplyData, LatFree},
				{Owned, Evict, Invalid, WriteBack, LatWriteBack},
				{Owned, FlushOp, Invalid, WriteBack, LatWriteBack},
			},
		),
		Install: InstallPolicy{Solo: Exclusive, Shared: Shared, FromOwner: Shared},
		Store:   StorePolicy{Solo: Modified, Shared: Owned, Allocate: true, Update: true},
		Unique:  []State{Owned},
	})

	// SpecWTNA is write-through-no-allocate: every store goes to the
	// shared level, lines are never dirty, and there is no Exclusive
	// state to silently upgrade — the LLC can always answer from its
	// clean copy, collapsing the E/S latency bands the channel needs.
	SpecWTNA = MustRegister(SpecDef{
		Name:        string(WTNA),
		Description: "write-through no-allocate; no dirty or exclusive states, clean-LLC service everywhere",
		States:      []State{Shared},
		Rules: []Rule{
			{Invalid, LocalRead, Invalid, NoAction, LatFree},
			// No allocate: the write goes to the shared level only.
			{Invalid, LocalWrite, Invalid, NoAction, LatWriteThrough},
			{Invalid, RemoteRead, Invalid, NoAction, LatFree},
			{Invalid, RemoteWrite, Invalid, NoAction, LatFree},
			{Invalid, Evict, Invalid, NoAction, LatFree},
			{Invalid, FlushOp, Invalid, NoAction, LatFree},
			{Shared, LocalRead, Shared, NoAction, LatFree},
			{Shared, LocalWrite, Shared, NoAction, LatWriteThrough},
			{Shared, RemoteRead, Shared, NoAction, LatFree},
			{Shared, RemoteWrite, Invalid, NoAction, LatFree},
			{Shared, Evict, Invalid, NoAction, LatFree},
			{Shared, FlushOp, Invalid, NoAction, LatFree},
		},
		Install: InstallPolicy{Solo: Shared, Shared: Shared, FromOwner: Shared},
		Store:   StorePolicy{Solo: Shared, Shared: Shared, Through: true},
	})
)
