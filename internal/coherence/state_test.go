package coherence

import (
	"testing"
	"testing/quick"
)

func TestStateStrings(t *testing.T) {
	cases := map[State]string{
		Invalid: "I", Shared: "S", Exclusive: "E",
		Modified: "M", Forward: "F", Owned: "O",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%v.String() = %q, want %q", uint8(s), s.String(), want)
		}
	}
}

func TestStatePredicates(t *testing.T) {
	if Invalid.Valid() || Invalid.Readable() {
		t.Error("Invalid should not be valid/readable")
	}
	for _, s := range []State{Shared, Exclusive, Modified, Forward, Owned} {
		if !s.Valid() || !s.Readable() {
			t.Errorf("%v should be valid and readable", s)
		}
	}
	if !Modified.Dirty() || !Owned.Dirty() {
		t.Error("M and O are dirty")
	}
	for _, s := range []State{Invalid, Shared, Exclusive, Forward} {
		if s.Dirty() {
			t.Errorf("%v should be clean", s)
		}
	}
	if !Modified.Writable() || !Exclusive.Writable() {
		t.Error("M and E are writable without a transaction")
	}
	if Shared.Writable() || Forward.Writable() || Owned.Writable() {
		t.Error("S, F, O require an upgrade to write")
	}
	if !Exclusive.SoleCopy() || !Modified.SoleCopy() || Shared.SoleCopy() {
		t.Error("SoleCopy wrong")
	}
}

func TestProtocolHas(t *testing.T) {
	if !MESI.Has(Modified) || !MESI.Has(Invalid) {
		t.Error("MESI must have MESI states")
	}
	if MESI.Has(Forward) || MESI.Has(Owned) {
		t.Error("MESI must not have F or O")
	}
	if !MESIF.Has(Forward) || MESIF.Has(Owned) {
		t.Error("MESIF has F, not O")
	}
	if !MOESI.Has(Owned) || MOESI.Has(Forward) {
		t.Error("MOESI has O, not F")
	}
}

func protocols() []Protocol { return []Protocol{MESI, MESIF, MOESI} }

func statesOf(p Protocol) []State {
	all := []State{Invalid, Shared, Exclusive, Modified, Forward, Owned}
	var out []State
	for _, s := range all {
		if p.Has(s) {
			out = append(out, s)
		}
	}
	return out
}

// Every (protocol, state, event) triple must produce a state legal in that
// protocol — the core closure property of the transition tables.
func TestApplyClosedUnderProtocol(t *testing.T) {
	events := []Event{LocalRead, LocalWrite, RemoteRead, RemoteWrite, Evict, FlushOp}
	for _, p := range protocols() {
		for _, s := range statesOf(p) {
			for _, e := range events {
				tr := Apply(p, s, e)
				if !p.Has(tr.Next) {
					t.Errorf("%v: %v --%v--> %v leaves the protocol", p, s, e, tr.Next)
				}
			}
		}
	}
}

func TestApplyPanicsOnForeignState(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Apply(MESI, Forward, ...) did not panic")
		}
	}()
	Apply(MESI, Forward, LocalRead)
}

func TestLocalReadPreservesValidStates(t *testing.T) {
	for _, p := range protocols() {
		for _, s := range statesOf(p) {
			if s == Invalid {
				continue
			}
			tr := Apply(p, s, LocalRead)
			if tr.Next != s || tr.Action != NoAction {
				t.Errorf("%v: LocalRead on %v changed state to %v/%v", p, s, tr.Next, tr.Action)
			}
		}
	}
}

func TestLocalWriteAlwaysReachesModified(t *testing.T) {
	for _, p := range protocols() {
		for _, s := range statesOf(p) {
			tr := Apply(p, s, LocalWrite)
			if tr.Next != Modified {
				t.Errorf("%v: LocalWrite on %v -> %v, want M", p, s, tr.Next)
			}
		}
	}
}

// The transition at the heart of the paper: a remote read hitting an
// E-state line downgrades it and leaves a clean copy at the shared level.
func TestExclusiveDowngradeOnRemoteRead(t *testing.T) {
	tr := Apply(MESI, Exclusive, RemoteRead)
	if tr.Next != Shared {
		t.Errorf("MESI: E --RemoteRead--> %v, want S", tr.Next)
	}
	if tr.Action != SupplyAndWriteBack {
		t.Errorf("MESI: E remote read action = %v, want supply+writeback", tr.Action)
	}
	trF := Apply(MESIF, Exclusive, RemoteRead)
	if trF.Next != Forward {
		t.Errorf("MESIF: E --RemoteRead--> %v, want F", trF.Next)
	}
}

func TestModifiedRemoteReadByProtocol(t *testing.T) {
	if tr := Apply(MESI, Modified, RemoteRead); tr.Next != Shared || tr.Action != SupplyAndWriteBack {
		t.Errorf("MESI M remote read = %+v", tr)
	}
	// MOESI's whole point: avoid the memory write-back on M->shared.
	if tr := Apply(MOESI, Modified, RemoteRead); tr.Next != Owned || tr.Action != SupplyData {
		t.Errorf("MOESI M remote read = %+v", tr)
	}
}

func TestRemoteWriteInvalidatesEverything(t *testing.T) {
	for _, p := range protocols() {
		for _, s := range statesOf(p) {
			tr := Apply(p, s, RemoteWrite)
			if tr.Next != Invalid {
				t.Errorf("%v: RemoteWrite on %v -> %v, want I", p, s, tr.Next)
			}
			if s.Dirty() && tr.Action != SupplyData {
				t.Errorf("%v: RemoteWrite on dirty %v must supply data", p, s)
			}
		}
	}
}

func TestEvictAndFlushWriteBackDirtyOnly(t *testing.T) {
	for _, p := range protocols() {
		for _, s := range statesOf(p) {
			for _, e := range []Event{Evict, FlushOp} {
				tr := Apply(p, s, e)
				if tr.Next != Invalid {
					t.Errorf("%v: %v on %v -> %v, want I", p, e, s, tr.Next)
				}
				wantWB := s.Dirty()
				gotWB := tr.Action == WriteBack
				if wantWB != gotWB {
					t.Errorf("%v: %v on %v writeback=%v, want %v", p, e, s, gotWB, wantWB)
				}
			}
		}
	}
}

func TestInstallState(t *testing.T) {
	for _, p := range protocols() {
		if got := InstallState(p, 0); got != Exclusive {
			t.Errorf("%v: install with no sharers = %v, want E", p, got)
		}
	}
	if got := InstallState(MESI, 1); got != Shared {
		t.Errorf("MESI install with sharers = %v, want S", got)
	}
	if got := InstallState(MESIF, 2); got != Forward {
		t.Errorf("MESIF install with sharers = %v, want F", got)
	}
	if got := InstallState(MOESI, 3); got != Shared {
		t.Errorf("MOESI install with sharers = %v, want S", got)
	}
}

// Property: no event sequence can create a writable state without a
// LocalWrite — i.e. read-only sharing never silently becomes writable.
func TestNoWritableWithoutLocalWrite(t *testing.T) {
	f := func(seed uint8, evs []uint8) bool {
		p := protocols()[int(seed)%3]
		s := Shared
		for _, raw := range evs {
			e := Event(raw % 6)
			if e == LocalWrite {
				continue // skip writes; nothing else may grant writability
			}
			s = Apply(p, s, e).Next
			if s.Writable() && s != Exclusive {
				return false
			}
			// Exclusive can only appear on a fill, which Apply does not
			// model (InstallState does); transitions alone must not mint E.
			if s == Exclusive {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
