package coherence

import (
	"testing"
	"testing/quick"
)

func TestStateStrings(t *testing.T) {
	cases := map[State]string{
		Invalid: "I", Shared: "S", Exclusive: "E",
		Modified: "M", Forward: "F", Owned: "O",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%v.String() = %q, want %q", uint8(s), s.String(), want)
		}
	}
}

func TestStatePredicates(t *testing.T) {
	if Invalid.Valid() || Invalid.Readable() {
		t.Error("Invalid should not be valid/readable")
	}
	for _, s := range []State{Shared, Exclusive, Modified, Forward, Owned} {
		if !s.Valid() || !s.Readable() {
			t.Errorf("%v should be valid and readable", s)
		}
	}
	if !Modified.Dirty() || !Owned.Dirty() {
		t.Error("M and O are dirty")
	}
	for _, s := range []State{Invalid, Shared, Exclusive, Forward} {
		if s.Dirty() {
			t.Errorf("%v should be clean", s)
		}
	}
	if !Modified.Writable() || !Exclusive.Writable() {
		t.Error("M and E are writable without a transaction")
	}
	if Shared.Writable() || Forward.Writable() || Owned.Writable() {
		t.Error("S, F, O require an upgrade to write")
	}
	if !Exclusive.SoleCopy() || !Modified.SoleCopy() || Shared.SoleCopy() {
		t.Error("SoleCopy wrong")
	}
}

func TestProtocolHas(t *testing.T) {
	if !SpecMESI.Has(Modified) || !SpecMESI.Has(Invalid) {
		t.Error("MESI must have MESI states")
	}
	if SpecMESI.Has(Forward) || SpecMESI.Has(Owned) {
		t.Error("MESI must not have F or O")
	}
	if !SpecMESIF.Has(Forward) || SpecMESIF.Has(Owned) {
		t.Error("MESIF has F, not O")
	}
	if !SpecMOESI.Has(Owned) || SpecMOESI.Has(Forward) {
		t.Error("MOESI has O, not F")
	}
}

func mesiFamily() []*ProtocolSpec { return []*ProtocolSpec{SpecMESI, SpecMESIF, SpecMOESI} }

func TestApplyPanicsOnForeignState(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Apply(MESI, Forward, ...) did not panic")
		}
	}()
	SpecMESI.Apply(Forward, LocalRead)
}

func TestLocalReadPreservesValidStates(t *testing.T) {
	for _, spec := range mesiFamily() {
		for _, s := range spec.States() {
			if s == Invalid {
				continue
			}
			tr := spec.Apply(s, LocalRead)
			if tr.Next != s || tr.Action != NoAction {
				t.Errorf("%s: LocalRead on %v changed state to %v/%v", spec.Name(), s, tr.Next, tr.Action)
			}
		}
	}
}

func TestLocalWriteAlwaysReachesModified(t *testing.T) {
	for _, spec := range mesiFamily() {
		for _, s := range spec.States() {
			tr := spec.Apply(s, LocalWrite)
			if tr.Next != Modified {
				t.Errorf("%s: LocalWrite on %v -> %v, want M", spec.Name(), s, tr.Next)
			}
		}
	}
}

// The transition at the heart of the paper: a remote read hitting an
// E-state line downgrades it and leaves a clean copy at the shared level.
func TestExclusiveDowngradeOnRemoteRead(t *testing.T) {
	tr := SpecMESI.Apply(Exclusive, RemoteRead)
	if tr.Next != Shared {
		t.Errorf("MESI: E --RemoteRead--> %v, want S", tr.Next)
	}
	if tr.Action != SupplyAndWriteBack {
		t.Errorf("MESI: E remote read action = %v, want supply+writeback", tr.Action)
	}
	trF := SpecMESIF.Apply(Exclusive, RemoteRead)
	if trF.Next != Forward {
		t.Errorf("MESIF: E --RemoteRead--> %v, want F", trF.Next)
	}
}

func TestModifiedRemoteReadByProtocol(t *testing.T) {
	if tr := SpecMESI.Apply(Modified, RemoteRead); tr.Next != Shared || tr.Action != SupplyAndWriteBack {
		t.Errorf("MESI M remote read = %+v", tr)
	}
	// MOESI's whole point: avoid the memory write-back on M->shared.
	if tr := SpecMOESI.Apply(Modified, RemoteRead); tr.Next != Owned || tr.Action != SupplyData {
		t.Errorf("MOESI M remote read = %+v", tr)
	}
}

func TestRemoteWriteInvalidatesEverything(t *testing.T) {
	for _, spec := range mesiFamily() {
		for _, s := range spec.States() {
			tr := spec.Apply(s, RemoteWrite)
			if tr.Next != Invalid {
				t.Errorf("%s: RemoteWrite on %v -> %v, want I", spec.Name(), s, tr.Next)
			}
			if s.Dirty() && tr.Action != SupplyData {
				t.Errorf("%s: RemoteWrite on dirty %v must supply data", spec.Name(), s)
			}
		}
	}
}

func TestEvictAndFlushWriteBackDirtyOnly(t *testing.T) {
	for _, spec := range mesiFamily() {
		for _, s := range spec.States() {
			for _, e := range []Event{Evict, FlushOp} {
				tr := spec.Apply(s, e)
				if tr.Next != Invalid {
					t.Errorf("%s: %v on %v -> %v, want I", spec.Name(), e, s, tr.Next)
				}
				wantWB := s.Dirty()
				gotWB := tr.Action == WriteBack
				if wantWB != gotWB {
					t.Errorf("%s: %v on %v writeback=%v, want %v", spec.Name(), e, s, gotWB, wantWB)
				}
			}
		}
	}
}

func TestInstallPolicy(t *testing.T) {
	for _, spec := range mesiFamily() {
		if got := spec.Install().For(0); got != Exclusive {
			t.Errorf("%s: install with no sharers = %v, want E", spec.Name(), got)
		}
	}
	if got := SpecMESI.Install().For(1); got != Shared {
		t.Errorf("MESI install with sharers = %v, want S", got)
	}
	if got := SpecMESIF.Install().For(2); got != Forward {
		t.Errorf("MESIF install with sharers = %v, want F", got)
	}
	if got := SpecMOESI.Install().For(3); got != Shared {
		t.Errorf("MOESI install with sharers = %v, want S", got)
	}
	// WT-NA never grants exclusivity: every fill is plain Shared.
	if got := SpecWTNA.Install().For(0); got != Shared {
		t.Errorf("WT-NA install with no sharers = %v, want S", got)
	}
}

// Property: no event sequence can create a writable state without a
// LocalWrite — i.e. read-only sharing never silently becomes writable.
// Runs over every registered protocol, not just the shipped three.
func TestNoWritableWithoutLocalWrite(t *testing.T) {
	protos := Protocols()
	f := func(seed uint8, evs []uint8) bool {
		spec := MustSpec(protos[int(seed)%len(protos)])
		s := Shared
		if !spec.Has(s) {
			return true
		}
		for _, raw := range evs {
			e := Event(raw % NumEvents)
			if e == LocalWrite {
				continue // skip writes; nothing else may grant writability
			}
			s = spec.Apply(s, e).Next
			if s.Writable() && s != Exclusive {
				return false
			}
			// Exclusive can only appear on a fill, which Apply does not
			// model (the install policy does); transitions alone must
			// not mint E.
			if s == Exclusive {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
