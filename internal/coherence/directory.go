package coherence

import (
	"fmt"
	"math/bits"
)

// Directory tracks, per cache line, which private caches hold a copy —
// the "core valid bits" vector the paper describes at the LLC (§VI-A).
// The census it maintains is exactly the information the covert channel
// abuses: one valid bit means the line is in E/M in some private cache and
// the miss must be forwarded to the owner; two or more mean the line is in
// S and the LLC's clean copy can answer directly.
//
// The implementation is a sparse map keyed by line address holding the
// 16-byte entries by value: entries exist only for lines with at least
// one sharer or a clean LLC copy, which keeps memory proportional to
// live lines rather than the address space, and the value layout means
// the steady state allocates nothing and the GC never scans the table
// (no interior pointers). All mutation goes through the named helpers
// below; Lookup returns a copy, so writing to the returned entry does
// not change the directory.
type Directory struct {
	cores   int
	entries map[uint64]DirEntry
}

// DirEntry is the directory's view of one cache line.
type DirEntry struct {
	// Sharers is the core-valid bit vector: bit i set means private cache
	// i (core index within the socket's coherence domain) holds the line.
	Sharers uint64
	// LLCValid records whether the shared cache holds a clean copy that
	// can service misses directly.
	LLCValid bool
	// OwnerDirty records that the single sharer may have modified the
	// line (it is in E or M there), so the LLC copy is possibly stale.
	OwnerDirty bool
}

// NewDirectory returns a directory for a coherence domain of cores
// private caches. cores must be in (0, 64].
func NewDirectory(cores int) *Directory {
	if cores <= 0 || cores > 64 {
		panic(fmt.Sprintf("coherence: directory supports 1..64 cores, got %d", cores))
	}
	return &Directory{cores: cores, entries: make(map[uint64]DirEntry)}
}

// Cores returns the size of the coherence domain.
func (d *Directory) Cores() int { return d.cores }

// Lookup returns a copy of the entry for line; ok is false when the
// directory has no record (no sharers and no LLC copy). Mutating the
// returned value does not change the directory — use the mutation
// helpers (AddSharer, MarkClean, InvalidateLLC, ...) instead.
func (d *Directory) Lookup(line uint64) (e DirEntry, ok bool) {
	e, ok = d.entries[line]
	return e, ok
}

// SharerCount returns the number of private caches holding line.
func (d *Directory) SharerCount(line uint64) int {
	return bits.OnesCount64(d.entries[line].Sharers)
}

// SharerMask returns the core-valid bit vector for line (zero when the
// directory has no record). It is the allocation-free iteration surface
// for the per-access hot path; callers walk it with bits.TrailingZeros64.
func (d *Directory) SharerMask(line uint64) uint64 {
	return d.entries[line].Sharers
}

// IsSharer reports whether core holds line.
func (d *Directory) IsSharer(line uint64, core int) bool {
	d.check(core)
	return d.entries[line].Sharers&(1<<uint(core)) != 0
}

// SoleSharer returns the single sharer of line, or -1 if the sharer count
// is not exactly one.
func (d *Directory) SoleSharer(line uint64) int {
	s := d.entries[line].Sharers
	if bits.OnesCount64(s) != 1 {
		return -1
	}
	return bits.TrailingZeros64(s)
}

// Sharers returns the core indices currently holding line, ascending.
// It allocates; hot paths iterate SharerMask instead.
func (d *Directory) Sharers(line uint64) []int {
	v := d.entries[line].Sharers
	if v == 0 {
		return nil
	}
	out := make([]int, 0, bits.OnesCount64(v))
	for v != 0 {
		c := bits.TrailingZeros64(v)
		out = append(out, c)
		v &^= 1 << uint(c)
	}
	return out
}

// AddSharer records that core now holds line. If the line previously had
// exactly one (possibly dirty) owner, the owner's write-back duty is the
// caller's responsibility; the directory only clears the dirty mark when
// MarkClean is called.
func (d *Directory) AddSharer(line uint64, core int) {
	d.check(core)
	e := d.entries[line]
	e.Sharers |= 1 << uint(core)
	if bits.OnesCount64(e.Sharers) > 1 {
		// Two or more sharers implies every copy is clean (S state).
		e.OwnerDirty = false
	}
	d.entries[line] = e
}

// RemoveSharer records that core no longer holds line (eviction or
// invalidation of the private copy). Empty entries without an LLC copy
// are garbage-collected.
func (d *Directory) RemoveSharer(line uint64, core int) {
	d.check(core)
	e, ok := d.entries[line]
	if !ok {
		return
	}
	e.Sharers &^= 1 << uint(core)
	if e.Sharers == 0 {
		e.OwnerDirty = false
		if !e.LLCValid {
			delete(d.entries, line)
			return
		}
	}
	d.entries[line] = e
}

// SetOwnerDirty marks the sole sharer's copy as possibly modified
// (the line is in E or M in that private cache), meaning the LLC copy may
// be stale and misses must be forwarded to the owner.
func (d *Directory) SetOwnerDirty(line uint64) {
	e := d.entries[line]
	e.OwnerDirty = true
	d.entries[line] = e
}

// MarkClean records that the LLC holds a clean, current copy of the line
// (after a write-back or a fill from memory).
func (d *Directory) MarkClean(line uint64) {
	e := d.entries[line]
	e.LLCValid = true
	e.OwnerDirty = false
	d.entries[line] = e
}

// InvalidateLLC drops the clean-copy mark (LLC eviction of the line, or
// a store making every LLC copy stale). Entries left with no sharers and
// no LLC copy are reclaimed, so steady-state runs do not accumulate dead
// records.
func (d *Directory) InvalidateLLC(line uint64) {
	e, ok := d.entries[line]
	if !ok {
		return
	}
	e.LLCValid = false
	if e.Sharers == 0 {
		delete(d.entries, line)
		return
	}
	d.entries[line] = e
}

// Clear removes every record of line (clflush reaching the directory).
func (d *Directory) Clear(line uint64) {
	delete(d.entries, line)
}

// Census classifies a line the way the paper's §VI-A service-path logic
// does, from the core-valid bit population count.
type Census uint8

const (
	// CensusNone: no private cache holds the line.
	CensusNone Census = iota
	// CensusOwned: exactly one private cache holds it (E or M there).
	CensusOwned
	// CensusShared: two or more private caches hold it (S everywhere).
	CensusShared
)

func (c Census) String() string {
	switch c {
	case CensusNone:
		return "none"
	case CensusOwned:
		return "owned"
	case CensusShared:
		return "shared"
	default:
		return fmt.Sprintf("Census(%d)", uint8(c))
	}
}

// CensusOf returns the sharer census for line.
func (d *Directory) CensusOf(line uint64) Census {
	switch n := bits.OnesCount64(d.entries[line].Sharers); {
	case n == 0:
		return CensusNone
	case n == 1:
		return CensusOwned
	default:
		return CensusShared
	}
}

// Lines returns the number of lines with directory records (for tests and
// capacity accounting).
func (d *Directory) Lines() int { return len(d.entries) }

func (d *Directory) check(core int) {
	if core < 0 || core >= d.cores {
		panic(fmt.Sprintf("coherence: core %d outside directory domain of %d", core, d.cores))
	}
}
