package coherence

import (
	"fmt"
	"math/bits"
	"sort"
)

// Directory tracks, per cache line, which private caches hold a copy —
// the "core valid bits" vector the paper describes at the LLC (§VI-A).
// The census it maintains is exactly the information the covert channel
// abuses: one valid bit means the line is in E/M in some private cache and
// the miss must be forwarded to the owner; two or more mean the line is in
// S and the LLC's clean copy can answer directly.
//
// The implementation is an open-addressing hash table with inline
// 32-byte slots: entries exist only for lines with at least one sharer
// or a clean LLC copy, a probe touches exactly one cache line of table
// memory (no pointer chase, no GC-visible pointers), and deletion uses
// tombstones that the next growth rehash reclaims. A small move-to-front
// lookaside short-circuits the table for repeated queries of the same
// few lines — one coherence transaction interrogates its line many times
// (census, sharer mask, LLC validity, then the mutations) interleaved
// with its eviction victims'. All mutation goes through the named
// helpers below; Lookup returns a copy, so writing to the returned entry
// does not change the directory.
type Directory struct {
	cores int

	// slots is the open-addressing table; mask = len(slots)-1 (power of
	// two). used counts live entries, tombs counts tombstones; the table
	// grows (shedding tombstones) when used+tombs exceeds 3/4 capacity.
	slots []dirSlot
	mask  uint64
	used  int
	tombs int

	// lookLine/lookEnt form the lookaside. A slot pointer stays valid
	// only until the next insertion (growth moves the slots array), so
	// the lookaside is cleared on every rehash; callers outside this
	// file never see slot pointers.
	lookLine [lookN]uint64
	lookEnt  [lookN]*DirEntry

	// missLine/missSlot memoize the last failed probe: the miss path
	// interrogates a brand-new line (CensusOf) and then immediately
	// creates its record (AddSharer), and the memo lets entMake reuse
	// the failed probe's free-slot candidate instead of re-walking the
	// chain. The memoized slot stays on missLine's probe chain until a
	// rehash (the only operation that creates empty slots), so grow()
	// invalidates it; entMake additionally re-checks that the slot is
	// still free before using it.
	missLine uint64
	missSlot int
}

// lookN is the lookaside depth: a miss transaction touches the missing
// line, an L2-eviction victim, an LLC-eviction victim and possibly a
// remote socket's record, so four slots keep the primary line resident
// across the interleaved victim handling.
const lookN = 4

const (
	slotEmpty uint8 = iota
	slotUsed
	slotTomb
)

// dirSlot is one table slot: key, state, and the entry inline.
type dirSlot struct {
	line  uint64
	state uint8
	e     DirEntry
}

// DirEntry is the directory's view of one cache line.
type DirEntry struct {
	// Sharers is the core-valid bit vector: bit i set means private cache
	// i (core index within the socket's coherence domain) holds the line.
	Sharers uint64
	// LLCValid records whether the shared cache holds a clean copy that
	// can service misses directly.
	LLCValid bool
	// OwnerDirty records that the single sharer may have modified the
	// line (it is in E or M there), so the LLC copy is possibly stale.
	OwnerDirty bool
}

// NewDirectory returns a directory for a coherence domain of cores
// private caches. cores must be in (0, 64].
func NewDirectory(cores int) *Directory {
	if cores <= 0 || cores > 64 {
		panic(fmt.Sprintf("coherence: directory supports 1..64 cores, got %d", cores))
	}
	return &Directory{cores: cores, missSlot: -1}
}

// Cores returns the size of the coherence domain.
func (d *Directory) Cores() int { return d.cores }

// dirHash spreads line addresses (low 6 bits always zero) over the
// table with a Fibonacci multiplicative hash. The multiply concentrates
// entropy in the high bits, and the table indexes with low bits, so the
// high half is folded down — without the fold, sequential lines form
// arithmetic probe chains and linear probing degenerates.
func dirHash(line uint64) uint64 {
	h := line * 0x9E3779B97F4A7C15
	return h ^ h>>32
}

// ent returns line's live entry, or nil when the directory has no
// record, consulting the lookaside before the table. The returned
// pointer is valid only until the next insertion.
func (d *Directory) ent(line uint64) *DirEntry {
	if d.lookEnt[0] != nil && d.lookLine[0] == line {
		return d.lookEnt[0]
	}
	for i := 1; i < lookN; i++ {
		if d.lookEnt[i] != nil && d.lookLine[i] == line {
			e := d.lookEnt[i]
			copy(d.lookLine[1:i+1], d.lookLine[:i])
			copy(d.lookEnt[1:i+1], d.lookEnt[:i])
			d.lookLine[0], d.lookEnt[0] = line, e
			return e
		}
	}
	e := d.find(line)
	if e != nil {
		d.lookPush(line, e)
	}
	return e
}

// lookPush records line at the front of the lookaside.
func (d *Directory) lookPush(line uint64, e *DirEntry) {
	copy(d.lookLine[1:], d.lookLine[:lookN-1])
	copy(d.lookEnt[1:], d.lookEnt[:lookN-1])
	d.lookLine[0], d.lookEnt[0] = line, e
}

// lookDrop removes line from the lookaside, if present.
func (d *Directory) lookDrop(line uint64) {
	for i := 0; i < lookN; i++ {
		if d.lookLine[i] == line {
			d.lookEnt[i] = nil
		}
	}
}

// lookClear empties the lookaside (slot pointers went stale).
func (d *Directory) lookClear() {
	for i := 0; i < lookN; i++ {
		d.lookEnt[i] = nil
	}
}

// find probes the table for line's live slot. On a miss it memoizes the
// first free slot (tombstone or the terminating empty) seen on the chain
// for a subsequent entMake of the same line.
func (d *Directory) find(line uint64) *DirEntry {
	if d.used == 0 {
		return nil
	}
	free := -1
	for h := dirHash(line); ; h++ {
		i := int(h & d.mask)
		s := &d.slots[i]
		switch {
		case s.state == slotEmpty:
			if free < 0 {
				free = i
			}
			d.missLine, d.missSlot = line, free
			return nil
		case s.state == slotTomb:
			if free < 0 {
				free = i
			}
		case s.line == line:
			return &s.e
		}
	}
}

// entMake returns line's live entry, creating an empty one if needed.
func (d *Directory) entMake(line uint64) *DirEntry {
	if e := d.ent(line); e != nil {
		return e
	}
	if len(d.slots) == 0 || (d.used+d.tombs+1)*4 > len(d.slots)*3 {
		d.grow()
	}
	var free *dirSlot
	if d.missSlot >= 0 && d.missLine == line && d.slots[d.missSlot].state != slotUsed {
		free = &d.slots[d.missSlot]
	} else {
		for h := dirHash(line); ; h++ {
			s := &d.slots[h&d.mask]
			if s.state == slotTomb {
				if free == nil {
					free = s
				}
				continue
			}
			if s.state == slotEmpty {
				if free == nil {
					free = s
				}
				break
			}
		}
	}
	if free.state == slotTomb {
		d.tombs--
	}
	*free = dirSlot{line: line, state: slotUsed}
	d.used++
	d.lookPush(line, &free.e)
	return &free.e
}

// grow rehashes the table, shedding tombstones. Capacity doubles only
// when live entries fill more than 3/8 of it; otherwise the rehash keeps
// the size and merely reclaims tombstones — without this, workloads that
// constantly add and drop records (streaming evictions) would trigger
// doubling on tombstone pressure alone and balloon the table.
func (d *Directory) grow() {
	n := len(d.slots) * 2
	if d.used*8 <= len(d.slots)*3 {
		n = len(d.slots)
	}
	if n < 64 {
		n = 64
	}
	old := d.slots
	d.slots = make([]dirSlot, n)
	d.mask = uint64(n - 1)
	d.tombs = 0
	d.missSlot = -1
	d.lookClear()
	for i := range old {
		s := &old[i]
		if s.state != slotUsed {
			continue
		}
		for h := dirHash(s.line); ; h++ {
			t := &d.slots[h&d.mask]
			if t.state == slotEmpty {
				*t = *s
				break
			}
		}
	}
}

// drop removes line's record.
func (d *Directory) drop(line uint64) {
	if d.used == 0 {
		return
	}
	for h := dirHash(line); ; h++ {
		s := &d.slots[h&d.mask]
		if s.state == slotEmpty {
			return
		}
		if s.state == slotUsed && s.line == line {
			s.state = slotTomb
			s.e = DirEntry{}
			d.used--
			d.tombs++
			d.lookDrop(line)
			return
		}
	}
}

// Lookup returns a copy of the entry for line; ok is false when the
// directory has no record (no sharers and no LLC copy). Mutating the
// returned value does not change the directory — use the mutation
// helpers (AddSharer, MarkClean, InvalidateLLC, ...) instead.
func (d *Directory) Lookup(line uint64) (e DirEntry, ok bool) {
	if p := d.ent(line); p != nil {
		return *p, true
	}
	return DirEntry{}, false
}

// SharerCount returns the number of private caches holding line.
func (d *Directory) SharerCount(line uint64) int {
	if e := d.ent(line); e != nil {
		return bits.OnesCount64(e.Sharers)
	}
	return 0
}

// SharerMask returns the core-valid bit vector for line (zero when the
// directory has no record). It is the allocation-free iteration surface
// for the per-access hot path; callers walk it with bits.TrailingZeros64.
func (d *Directory) SharerMask(line uint64) uint64 {
	if e := d.ent(line); e != nil {
		return e.Sharers
	}
	return 0
}

// IsSharer reports whether core holds line.
func (d *Directory) IsSharer(line uint64, core int) bool {
	d.check(core)
	return d.SharerMask(line)&(1<<uint(core)) != 0
}

// SoleSharer returns the single sharer of line, or -1 if the sharer count
// is not exactly one.
func (d *Directory) SoleSharer(line uint64) int {
	s := d.SharerMask(line)
	if bits.OnesCount64(s) != 1 {
		return -1
	}
	return bits.TrailingZeros64(s)
}

// Sharers returns the core indices currently holding line, ascending.
// It allocates; hot paths iterate SharerMask instead.
func (d *Directory) Sharers(line uint64) []int {
	v := d.SharerMask(line)
	if v == 0 {
		return nil
	}
	out := make([]int, 0, bits.OnesCount64(v))
	for v != 0 {
		c := bits.TrailingZeros64(v)
		out = append(out, c)
		v &^= 1 << uint(c)
	}
	return out
}

// AddSharer records that core now holds line. If the line previously had
// exactly one (possibly dirty) owner, the owner's write-back duty is the
// caller's responsibility; the directory only clears the dirty mark when
// MarkClean is called.
func (d *Directory) AddSharer(line uint64, core int) {
	d.check(core)
	e := d.entMake(line)
	e.Sharers |= 1 << uint(core)
	if bits.OnesCount64(e.Sharers) > 1 {
		// Two or more sharers implies every copy is clean (S state).
		e.OwnerDirty = false
	}
}

// RemoveSharer records that core no longer holds line (eviction or
// invalidation of the private copy). Empty entries without an LLC copy
// are garbage-collected.
func (d *Directory) RemoveSharer(line uint64, core int) {
	d.check(core)
	e := d.ent(line)
	if e == nil {
		return
	}
	e.Sharers &^= 1 << uint(core)
	if e.Sharers == 0 {
		e.OwnerDirty = false
		if !e.LLCValid {
			d.drop(line)
		}
	}
}

// SetOwnerDirty marks the sole sharer's copy as possibly modified
// (the line is in E or M in that private cache), meaning the LLC copy may
// be stale and misses must be forwarded to the owner.
func (d *Directory) SetOwnerDirty(line uint64) {
	d.entMake(line).OwnerDirty = true
}

// MarkClean records that the LLC holds a clean, current copy of the line
// (after a write-back or a fill from memory).
func (d *Directory) MarkClean(line uint64) {
	e := d.entMake(line)
	e.LLCValid = true
	e.OwnerDirty = false
}

// InvalidateLLC drops the clean-copy mark (LLC eviction of the line, or
// a store making every LLC copy stale). Entries left with no sharers and
// no LLC copy are reclaimed, so steady-state runs do not accumulate dead
// records.
func (d *Directory) InvalidateLLC(line uint64) {
	e := d.ent(line)
	if e == nil {
		return
	}
	e.LLCValid = false
	if e.Sharers == 0 {
		d.drop(line)
	}
}

// Clear removes every record of line (clflush reaching the directory).
func (d *Directory) Clear(line uint64) {
	d.drop(line)
}

// Census classifies a line the way the paper's §VI-A service-path logic
// does, from the core-valid bit population count.
type Census uint8

const (
	// CensusNone: no private cache holds the line.
	CensusNone Census = iota
	// CensusOwned: exactly one private cache holds it (E or M there).
	CensusOwned
	// CensusShared: two or more private caches hold it (S everywhere).
	CensusShared
)

func (c Census) String() string {
	switch c {
	case CensusNone:
		return "none"
	case CensusOwned:
		return "owned"
	case CensusShared:
		return "shared"
	default:
		return fmt.Sprintf("Census(%d)", uint8(c))
	}
}

// CensusOf returns the sharer census for line.
func (d *Directory) CensusOf(line uint64) Census {
	switch n := bits.OnesCount64(d.SharerMask(line)); {
	case n == 0:
		return CensusNone
	case n == 1:
		return CensusOwned
	default:
		return CensusShared
	}
}

// Lines returns the number of lines with directory records (for tests and
// capacity accounting).
func (d *Directory) Lines() int { return d.used }

// ForEach calls fn for every directory record in ascending line order —
// a deterministic snapshot for state digests and dumps.
func (d *Directory) ForEach(fn func(line uint64, e DirEntry)) {
	idx := make([]int, 0, d.used)
	for i := range d.slots {
		if d.slots[i].state == slotUsed {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(i, j int) bool { return d.slots[idx[i]].line < d.slots[idx[j]].line })
	for _, i := range idx {
		fn(d.slots[i].line, d.slots[i].e)
	}
}

func (d *Directory) check(core int) {
	if core < 0 || core >= d.cores {
		panic(fmt.Sprintf("coherence: core %d outside directory domain of %d", core, d.cores))
	}
}
