package coherence

import (
	"testing"
	"testing/quick"
)

func TestDirectoryEmpty(t *testing.T) {
	d := NewDirectory(6)
	if d.SharerCount(0x40) != 0 {
		t.Error("fresh directory has sharers")
	}
	if d.CensusOf(0x40) != CensusNone {
		t.Error("fresh census should be none")
	}
	if _, ok := d.Lookup(0x40); ok {
		t.Error("fresh Lookup should report absent")
	}
	if d.SoleSharer(0x40) != -1 {
		t.Error("fresh SoleSharer should be -1")
	}
}

func TestDirectoryBounds(t *testing.T) {
	for _, n := range []int{0, -1, 65} {
		n := n
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDirectory(%d) did not panic", n)
				}
			}()
			NewDirectory(n)
		}()
	}
	d := NewDirectory(4)
	defer func() {
		if recover() == nil {
			t.Error("AddSharer with out-of-range core did not panic")
		}
	}()
	d.AddSharer(0x40, 4)
}

func TestDirectorySharerCensus(t *testing.T) {
	d := NewDirectory(12)
	const line = 0x1000

	d.AddSharer(line, 3)
	if d.CensusOf(line) != CensusOwned {
		t.Fatalf("one sharer census = %v", d.CensusOf(line))
	}
	if d.SoleSharer(line) != 3 {
		t.Fatalf("SoleSharer = %d, want 3", d.SoleSharer(line))
	}

	d.AddSharer(line, 7)
	if d.CensusOf(line) != CensusShared {
		t.Fatalf("two sharer census = %v", d.CensusOf(line))
	}
	if d.SoleSharer(line) != -1 {
		t.Fatal("SoleSharer should be -1 with two sharers")
	}
	got := d.Sharers(line)
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("Sharers = %v, want [3 7]", got)
	}

	d.RemoveSharer(line, 3)
	if d.CensusOf(line) != CensusOwned || d.SoleSharer(line) != 7 {
		t.Fatal("removal did not restore owned census")
	}
	d.RemoveSharer(line, 7)
	if d.CensusOf(line) != CensusNone {
		t.Fatal("removal did not empty census")
	}
	if d.Lines() != 0 {
		t.Fatal("empty entry not garbage collected")
	}
}

func TestDirectoryIdempotentAdd(t *testing.T) {
	d := NewDirectory(8)
	d.AddSharer(0x80, 2)
	d.AddSharer(0x80, 2)
	if d.SharerCount(0x80) != 1 {
		t.Fatalf("duplicate add changed count: %d", d.SharerCount(0x80))
	}
}

func TestDirectoryDirtyTracking(t *testing.T) {
	d := NewDirectory(6)
	const line = 0x2000
	d.AddSharer(line, 0)
	d.SetOwnerDirty(line)
	if e, ok := d.Lookup(line); !ok || !e.OwnerDirty {
		t.Fatal("owner-dirty not recorded")
	}
	// A second sharer implies the line was downgraded to S everywhere.
	d.AddSharer(line, 1)
	if e, _ := d.Lookup(line); e.OwnerDirty {
		t.Fatal("two sharers must clear owner-dirty")
	}
}

func TestDirectoryLLCValidLifecycle(t *testing.T) {
	d := NewDirectory(6)
	const line = 0x3000
	d.MarkClean(line)
	if e, ok := d.Lookup(line); !ok || !e.LLCValid {
		t.Fatal("MarkClean not recorded")
	}
	// LLC copy alone keeps the entry alive.
	if d.Lines() != 1 {
		t.Fatal("LLC-only entry collected")
	}
	d.InvalidateLLC(line)
	if d.Lines() != 0 {
		t.Fatal("InvalidateLLC left an empty entry")
	}
	// Invalidate with sharers keeps the sharer vector.
	d.AddSharer(line, 2)
	d.MarkClean(line)
	d.InvalidateLLC(line)
	if d.SharerCount(line) != 1 {
		t.Fatal("InvalidateLLC dropped sharers")
	}
}

func TestDirectoryClear(t *testing.T) {
	d := NewDirectory(6)
	const line = 0x4000
	d.AddSharer(line, 0)
	d.AddSharer(line, 1)
	d.MarkClean(line)
	d.Clear(line)
	if _, ok := d.Lookup(line); ok || d.SharerCount(line) != 0 {
		t.Fatal("Clear left state behind")
	}
}

// Lookup returns entries by value: writing to the returned copy must NOT
// alias directory state, and mutation through the named helpers must be
// visible to the next Lookup. This pins down the value-map contract that
// the machine layer relies on.
func TestDirectoryValueSemantics(t *testing.T) {
	d := NewDirectory(6)
	const line = 0x5000
	d.AddSharer(line, 1)
	d.MarkClean(line)

	e, ok := d.Lookup(line)
	if !ok || !e.LLCValid {
		t.Fatal("setup lookup failed")
	}
	// Mutating the returned copy must not leak into the directory.
	e.LLCValid = false
	e.Sharers = 0
	if got, _ := d.Lookup(line); !got.LLCValid || got.Sharers == 0 {
		t.Fatal("Lookup copy aliases directory state")
	}

	// Mutation through helpers must be visible to the next Lookup.
	d.SetOwnerDirty(line)
	if got, _ := d.Lookup(line); !got.OwnerDirty {
		t.Fatal("SetOwnerDirty not visible to next Lookup")
	}
	d.InvalidateLLC(line)
	if got, _ := d.Lookup(line); got.LLCValid {
		t.Fatal("InvalidateLLC not visible to next Lookup")
	}
	if d.SharerMask(line) != 1<<1 {
		t.Fatalf("SharerMask = %b, want bit 1", d.SharerMask(line))
	}
}

func TestDirectoryRemoveUnknownLine(t *testing.T) {
	d := NewDirectory(6)
	d.RemoveSharer(0x999, 1) // must not panic
	d.InvalidateLLC(0x999)
	if d.Lines() != 0 {
		t.Fatal("phantom entries created")
	}
}

func TestIsSharer(t *testing.T) {
	d := NewDirectory(6)
	d.AddSharer(0x40, 5)
	if !d.IsSharer(0x40, 5) || d.IsSharer(0x40, 4) || d.IsSharer(0x80, 5) {
		t.Fatal("IsSharer wrong")
	}
}

// Property: sharer count always equals the number of distinct cores added
// and not yet removed, regardless of operation order.
func TestDirectorySharerCountProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		d := NewDirectory(16)
		ref := make(map[int]bool)
		const line = 0xabc0
		for _, op := range ops {
			core := int(op % 16)
			if op&0x8000 != 0 {
				d.RemoveSharer(line, core)
				delete(ref, core)
			} else {
				d.AddSharer(line, core)
				ref[core] = true
			}
			if d.SharerCount(line) != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: census is a pure function of sharer count.
func TestCensusConsistency(t *testing.T) {
	f := func(mask uint64) bool {
		d := NewDirectory(64)
		const line = 0x40
		n := 0
		for c := 0; c < 64; c++ {
			if mask&(1<<uint(c)) != 0 {
				d.AddSharer(line, c)
				n++
			}
		}
		switch {
		case n == 0:
			return d.CensusOf(line) == CensusNone
		case n == 1:
			return d.CensusOf(line) == CensusOwned && d.SoleSharer(line) >= 0
		default:
			return d.CensusOf(line) == CensusShared
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
