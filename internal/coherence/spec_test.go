package coherence

import (
	"strings"
	"testing"
)

// legacyProtocol mirrors the pre-table enum so the golden reference below
// stays a verbatim copy of the deleted hand-coded state machine.
type legacyProtocol uint8

const (
	legacyMESI legacyProtocol = iota
	legacyMESIF
	legacyMOESI
)

func (p legacyProtocol) has(s State) bool {
	switch s {
	case Forward:
		return p == legacyMESIF
	case Owned:
		return p == legacyMOESI
	default:
		return true
	}
}

// legacyApply is the hand-coded transition function this PR replaced with
// tables, kept verbatim (minus the latency class the old code never had)
// as the golden reference. Do not edit it to make the tables pass — fix
// the tables in builtin.go instead.
func legacyApply(p legacyProtocol, s State, e Event) Transition {
	switch e {
	case LocalRead:
		if s == Invalid {
			return Transition{Next: Invalid, Action: NoAction}
		}
		return Transition{Next: s, Action: NoAction}

	case LocalWrite:
		switch s {
		case Invalid:
			return Transition{Next: Modified, Action: NoAction}
		case Shared, Forward, Owned:
			return Transition{Next: Modified, Action: NoAction}
		case Exclusive:
			return Transition{Next: Modified, Action: NoAction}
		case Modified:
			return Transition{Next: Modified, Action: NoAction}
		}

	case RemoteRead:
		switch s {
		case Invalid:
			return Transition{Next: Invalid, Action: NoAction}
		case Shared:
			return Transition{Next: Shared, Action: NoAction}
		case Exclusive:
			if p == legacyMESIF {
				return Transition{Next: Forward, Action: SupplyAndWriteBack}
			}
			return Transition{Next: Shared, Action: SupplyAndWriteBack}
		case Modified:
			if p == legacyMOESI {
				return Transition{Next: Owned, Action: SupplyData}
			}
			return Transition{Next: Shared, Action: SupplyAndWriteBack}
		case Forward:
			return Transition{Next: Forward, Action: SupplyData}
		case Owned:
			return Transition{Next: Owned, Action: SupplyData}
		}

	case RemoteWrite:
		switch s {
		case Invalid:
			return Transition{Next: Invalid, Action: NoAction}
		case Modified, Owned:
			return Transition{Next: Invalid, Action: SupplyData}
		default:
			return Transition{Next: Invalid, Action: NoAction}
		}

	case Evict, FlushOp:
		if s.Dirty() {
			return Transition{Next: Invalid, Action: WriteBack}
		}
		return Transition{Next: Invalid, Action: NoAction}
	}
	panic("legacyApply: unhandled event")
}

// legacyInstallState is the deleted read-miss fill rule, kept verbatim.
func legacyInstallState(p legacyProtocol, otherSharers int) State {
	if otherSharers == 0 {
		return Exclusive
	}
	if p == legacyMESIF {
		return Forward
	}
	return Shared
}

// The golden cross-check the refactor was gated on: for every (protocol,
// state, event) triple of the three shipped protocols, the table-driven
// Apply must reproduce the hand-coded implementation exactly.
func TestSpecsMatchLegacyApply(t *testing.T) {
	pairs := []struct {
		spec   *ProtocolSpec
		legacy legacyProtocol
	}{
		{SpecMESI, legacyMESI},
		{SpecMESIF, legacyMESIF},
		{SpecMOESI, legacyMOESI},
	}
	for _, pair := range pairs {
		for _, s := range AllStates() {
			if !pair.legacy.has(s) {
				continue
			}
			if !pair.spec.Has(s) {
				t.Errorf("%s: legacy protocol has %v, table does not", pair.spec.Name(), s)
				continue
			}
			for _, e := range AllEvents() {
				want := legacyApply(pair.legacy, s, e)
				got := pair.spec.Apply(s, e)
				if got.Next != want.Next || got.Action != want.Action {
					t.Errorf("%s: %v --%v--> got %v/%v, legacy %v/%v",
						pair.spec.Name(), s, e, got.Next, got.Action, want.Next, want.Action)
				}
			}
		}
		for others := 0; others <= 4; others++ {
			want := legacyInstallState(pair.legacy, others)
			got := pair.spec.Install().For(others)
			if got != want {
				t.Errorf("%s: install with %d sharers = %v, legacy %v", pair.spec.Name(), others, got, want)
			}
		}
	}
}

// The exhaustive-coverage check that gated construction, kept as a
// registry-wide validator regression: every registered protocol covers
// every (legal state, event) pair, stays closed under its state set, and
// never silently drops dirty data.
func TestRegisteredSpecsExhaustiveCoverage(t *testing.T) {
	protos := Protocols()
	if len(protos) < 4 {
		t.Fatalf("registry has %d protocols, want at least MESI, MESIF, MOESI and one newcomer", len(protos))
	}
	for _, p := range protos {
		spec, err := SpecFor(p)
		if err != nil {
			t.Fatalf("SpecFor(%s): %v", p, err)
		}
		for _, s := range spec.States() {
			for _, e := range AllEvents() {
				tr := spec.Apply(s, e) // panics on an uncovered pair
				if !spec.Has(tr.Next) {
					t.Errorf("%s: %v --%v--> %v leaves the protocol", p, s, e, tr.Next)
				}
				if s.Dirty() && !tr.Next.Dirty() && tr.Action == NoAction {
					t.Errorf("%s: %v --%v--> %v drops dirty data silently", p, s, e, tr.Next)
				}
			}
		}
	}
}

func TestSpecValidationRejectsBadTables(t *testing.T) {
	base := func() SpecDef {
		return SpecDef{
			Name:   "BAD",
			States: []State{Shared, Exclusive, Modified},
			Rules: concat(
				invalidRow(),
				cleanSharedRow(Shared),
				[]Rule{{Shared, RemoteRead, Shared, NoAction, LatFree}},
				exclusiveRow(),
				[]Rule{{Exclusive, RemoteRead, Shared, SupplyAndWriteBack, LatFree}},
				modifiedRow(),
				[]Rule{{Modified, RemoteRead, Shared, SupplyAndWriteBack, LatFree}},
			),
			Install: InstallPolicy{Solo: Exclusive, Shared: Shared, FromOwner: Shared},
			Store:   StorePolicy{Solo: Modified, Shared: Modified, Allocate: true},
		}
	}
	cases := []struct {
		name    string
		mutate  func(*SpecDef)
		wantErr string
	}{
		{"uncovered pair", func(d *SpecDef) {
			d.Rules = d.Rules[:len(d.Rules)-1] // drop M/RemoteRead
		}, "must be covered"},
		{"transition out of state set", func(d *SpecDef) {
			for i := range d.Rules {
				if d.Rules[i].From == Exclusive && d.Rules[i].On == RemoteRead {
					d.Rules[i].Next = Forward // not a MESI state
				}
			}
		}, "state set"},
		{"dirty silently dropped", func(d *SpecDef) {
			for i := range d.Rules {
				if d.Rules[i].From == Modified && d.Rules[i].On == Evict {
					d.Rules[i].Action = NoAction
				}
			}
		}, "dirty"},
		{"duplicate rule", func(d *SpecDef) {
			d.Rules = append(d.Rules, Rule{Modified, Evict, Invalid, WriteBack, LatWriteBack})
		}, "duplicate"},
		{"install state outside protocol", func(d *SpecDef) {
			d.Install.Shared = Owned
		}, "install.shared"},
		{"destructive local read", func(d *SpecDef) {
			for i := range d.Rules {
				if d.Rules[i].From == Shared && d.Rules[i].On == LocalRead {
					d.Rules[i].Next = Invalid
				}
			}
		}, "LocalRead"},
		{"evict keeps the line", func(d *SpecDef) {
			for i := range d.Rules {
				if d.Rules[i].From == Shared && d.Rules[i].On == Evict {
					d.Rules[i].Next = Shared
				}
			}
		}, "leave the cache"},
		{"invalidation protocol keeping remote copies", func(d *SpecDef) {
			for i := range d.Rules {
				if d.Rules[i].From == Shared && d.Rules[i].On == RemoteWrite {
					d.Rules[i].Next = Shared
				}
			}
		}, "RemoteWrite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			def := base()
			tc.mutate(&def)
			_, err := NewSpec(def)
			if err == nil {
				t.Fatalf("NewSpec accepted a table with %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestRegistryLookup(t *testing.T) {
	for _, p := range []Protocol{MESI, MESIF, MOESI, Dragon, WTNA} {
		spec, err := SpecFor(p)
		if err != nil {
			t.Fatalf("SpecFor(%s): %v", p, err)
		}
		if got := registryKey(spec.Name()); got != registryKey(string(p)) {
			t.Errorf("SpecFor(%s).Name() = %s", p, spec.Name())
		}
	}
	if _, err := SpecFor("mesif"); err != nil {
		t.Errorf("lookup is not case-insensitive: %v", err)
	}
	if spec, err := SpecFor(""); err != nil || spec.Name() != string(MESI) {
		t.Errorf("empty protocol = (%v, %v), want MESI (the historical zero value)", spec, err)
	}
	_, err := SpecFor("MESIFY")
	if err == nil {
		t.Fatal("unknown protocol accepted")
	}
	for _, want := range []string{"MESI", "MESIF", "MOESI", "DRAGON", "WT-NA"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-protocol error %q does not name %s", err, want)
		}
	}
	if _, err := Register(SpecDef{}); err == nil {
		t.Error("registered a nameless spec")
	}
}

func TestSilentUpgradeDerivation(t *testing.T) {
	cases := map[Protocol]bool{
		MESI: true, MESIF: true, MOESI: true,
		// Dragon keeps E's silent upgrade; WT-NA has no E at all —
		// which is exactly why it collapses the paper's channel.
		Dragon: true, WTNA: false,
	}
	for p, want := range cases {
		if got := MustSpec(p).SilentUpgrades(); got != want {
			t.Errorf("%s.SilentUpgrades() = %v, want %v", p, got, want)
		}
	}
}

func TestUniqueStates(t *testing.T) {
	if !SpecMESIF.Unique(Forward) {
		t.Error("MESIF F must be unique (one responder per line)")
	}
	if !SpecMOESI.Unique(Owned) || !SpecDragon.Unique(Owned) {
		t.Error("O must be unique (one owner per line)")
	}
	if SpecMESI.Unique(Shared) || SpecWTNA.Unique(Shared) {
		t.Error("S is never unique")
	}
	for _, spec := range []*ProtocolSpec{SpecMESI, SpecMESIF, SpecMOESI, SpecDragon} {
		if !spec.Unique(Modified) || !spec.Unique(Exclusive) && spec.Has(Exclusive) {
			t.Errorf("%s: sole-copy states must be unique", spec.Name())
		}
	}
}
