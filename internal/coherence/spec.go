package coherence

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// InstallPolicy decides the state a read-miss fill installs in the
// requestor's private caches.
type InstallPolicy struct {
	// Solo is installed when no other cache anywhere holds a copy.
	Solo State
	// Shared is installed when other copies exist (MESIF hands the
	// newest requestor the Forward duty here).
	Shared State
	// FromOwner is the state taken when a previous owner supplies the
	// line and retains its own forwarding duty (F/O stays put).
	FromOwner State
	// Demote is the state an existing copy of Shared falls back to when
	// a new requestor takes over a unique Shared duty (F -> S on MESIF).
	// Only consulted when Shared is listed unique; defaults to Shared's
	// non-unique sibling via the spec builder.
	Demote State
}

// For returns the install state for a fill that leaves otherCopies other
// caches holding the line.
func (ip InstallPolicy) For(otherCopies int) State {
	if otherCopies == 0 {
		return ip.Solo
	}
	return ip.Shared
}

// StorePolicy decides how stores interact with the rest of the machine.
type StorePolicy struct {
	// Solo is the writer's state when no other valid copy survives the
	// store (M for invalidation protocols).
	Solo State
	// Shared is the writer's state when other copies survive — only
	// reachable under write-update protocols (Dragon's Sm).
	Shared State
	// Allocate fills the line into the writer's caches on a store miss
	// (write-allocate). When false the write goes to the shared level
	// only (write-through-no-allocate).
	Allocate bool
	// Update propagates stores to other copies instead of invalidating
	// them; the RemoteWrite row of the table must keep them valid.
	Update bool
	// Through pushes every store to the shared level so lines never
	// become dirty. Requires a protocol with no dirty states.
	Through bool
}

// SpecDef is the declarative description a protocol registers.
type SpecDef struct {
	// Name is the registry key, matched case-insensitively.
	Name string
	// Description is a one-line summary for listings.
	Description string
	// States are the legal states beyond Invalid (always legal).
	States []State
	// Rules is the transition table; every (legal state, event) pair
	// must be covered exactly once.
	Rules []Rule
	// Install is the read-miss fill policy.
	Install InstallPolicy
	// Store is the store-side policy.
	Store StorePolicy
	// Unique lists states with at-most-one-copy-per-line semantics
	// beyond the sole-copy ones (F on MESIF, O on MOESI/Dragon).
	Unique []State
}

// Rule is one row of a transition table.
type Rule struct {
	From    State
	On      Event
	Next    State
	Action  Action
	Latency LatencyClass
}

// ProtocolSpec is a validated, immutable protocol: table lookups replace
// the hand-coded state machine the simulator used to switch on.
type ProtocolSpec struct {
	name        string
	description string
	states      [NumStates]bool
	unique      [NumStates]bool
	table       [NumStates][NumEvents]Transition
	defined     [NumStates][NumEvents]bool
	install     InstallPolicy
	store       StorePolicy
	silentUp    bool
}

// NewSpec validates def and builds the immutable spec. The checks mirror
// the machine-level invariants in internal/machine/invariants.go: full
// (state, event) coverage, closure inside the protocol's state set, and
// no transition that silently drops a dirty line.
func NewSpec(def SpecDef) (*ProtocolSpec, error) {
	if def.Name == "" {
		return nil, fmt.Errorf("coherence: spec without a name")
	}
	s := &ProtocolSpec{
		name:        def.Name,
		description: def.Description,
		install:     def.Install,
		store:       def.Store,
	}
	s.states[Invalid] = true
	for _, st := range def.States {
		if int(st) >= NumStates {
			return nil, fmt.Errorf("%s: unknown state %v", def.Name, st)
		}
		s.states[st] = true
	}
	for _, st := range def.Unique {
		if !s.states[st] {
			return nil, fmt.Errorf("%s: unique state %v is not a protocol state", def.Name, st)
		}
		s.unique[st] = true
	}
	// Sole-copy states are unique by definition.
	for _, st := range []State{Exclusive, Modified} {
		if s.states[st] {
			s.unique[st] = true
		}
	}

	for _, r := range def.Rules {
		if int(r.From) >= NumStates || int(r.On) >= NumEvents {
			return nil, fmt.Errorf("%s: rule %v --%v--> out of range", def.Name, r.From, r.On)
		}
		if !s.states[r.From] {
			return nil, fmt.Errorf("%s: rule from %v, not a protocol state", def.Name, r.From)
		}
		if !s.states[r.Next] {
			return nil, fmt.Errorf("%s: %v --%v--> %v leaves the protocol's state set",
				def.Name, r.From, r.On, r.Next)
		}
		if s.defined[r.From][r.On] {
			return nil, fmt.Errorf("%s: duplicate rule for (%v, %v)", def.Name, r.From, r.On)
		}
		s.defined[r.From][r.On] = true
		s.table[r.From][r.On] = Transition{Next: r.Next, Action: r.Action, Latency: r.Latency}
	}

	if err := s.validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", def.Name, err)
	}

	// A protocol admits silent upgrades when some clean state retires a
	// store as a pure cache hit while changing state — E's dual intent.
	// Protocols without one (WT-NA) leave the LLC always able to trust
	// its clean copy, which is exactly why they kill the channel.
	for _, st := range s.States() {
		tr := s.table[st][LocalWrite]
		if st.Valid() && !st.Dirty() && tr.Latency == LatStoreHit && tr.Next != st {
			s.silentUp = true
		}
	}
	return s, nil
}

// validate applies the construction-time checks.
func (s *ProtocolSpec) validate() error {
	for _, st := range s.States() {
		for _, e := range AllEvents() {
			if !s.defined[st][e] {
				return fmt.Errorf("no transition for (%v, %v): every (state, event) pair must be covered", st, e)
			}
			tr := s.table[st][e]
			// Dirty data must never be dropped without a write-back or a
			// hand-off to the requestor.
			if st.Dirty() && !tr.Next.Dirty() && tr.Action == NoAction {
				return fmt.Errorf("%v --%v--> %v silently drops dirty data", st, e, tr.Next)
			}
			switch e {
			case LocalRead:
				// Reads never destroy or mint data: valid states hold,
				// Invalid stays a miss for the install policy to fill.
				if tr.Next != st || tr.Action != NoAction {
					return fmt.Errorf("LocalRead on %v must be a no-op, got %v/%v", st, tr.Next, tr.Action)
				}
			case Evict, FlushOp:
				if tr.Next != Invalid {
					return fmt.Errorf("%v on %v must leave the cache, got %v", e, st, tr.Next)
				}
			case LocalWrite:
				if st == Invalid {
					want := LatFill
					if !s.store.Allocate {
						want = LatWriteThrough
					}
					if tr.Latency != want {
						return fmt.Errorf("LocalWrite on I has class %v, want %v (allocate=%v)",
							tr.Latency, want, s.store.Allocate)
					}
				} else if tr.Latency != LatStoreHit && tr.Latency != LatUpgrade && tr.Latency != LatWriteThrough {
					return fmt.Errorf("LocalWrite on %v has class %v, want store-hit, upgrade or write-through", st, tr.Latency)
				}
			case RemoteWrite:
				if s.store.Update {
					if st.Valid() && !tr.Next.Valid() {
						return fmt.Errorf("write-update protocol invalidates %v on RemoteWrite", st)
					}
				} else if tr.Next != Invalid {
					return fmt.Errorf("invalidation protocol keeps %v valid on RemoteWrite", st)
				}
			}
		}
	}
	for _, p := range []struct {
		name string
		st   State
	}{
		{"install.solo", s.install.Solo},
		{"install.shared", s.install.Shared},
		{"install.fromOwner", s.install.FromOwner},
		{"store.solo", s.store.Solo},
		{"store.shared", s.store.Shared},
	} {
		if !s.states[p.st] || !p.st.Valid() {
			return fmt.Errorf("%s state %v is not a valid protocol state", p.name, p.st)
		}
	}
	if s.unique[s.install.Shared] {
		if !s.states[s.install.Demote] || !s.install.Demote.Valid() || s.unique[s.install.Demote] {
			return fmt.Errorf("install.shared %v is unique but demote state %v is not a shareable protocol state",
				s.install.Shared, s.install.Demote)
		}
	}
	if s.store.Allocate {
		if got := s.table[Invalid][LocalWrite].Next; got != s.store.Solo {
			return fmt.Errorf("write-allocate store miss lands in %v, want store.solo %v", got, s.store.Solo)
		}
	} else if got := s.table[Invalid][LocalWrite].Next; got != Invalid {
		return fmt.Errorf("no-allocate store miss must stay Invalid, got %v", got)
	}
	if s.store.Through {
		for _, st := range s.States() {
			if st.Dirty() {
				return fmt.Errorf("write-through protocol has dirty state %v", st)
			}
		}
	}
	return nil
}

// Name returns the registry key.
func (s *ProtocolSpec) Name() string { return s.name }

// Description returns the one-line summary.
func (s *ProtocolSpec) Description() string { return s.description }

// Has reports whether the protocol includes state st.
func (s *ProtocolSpec) Has(st State) bool {
	return int(st) < NumStates && s.states[st]
}

// States returns the protocol's legal states, Invalid first.
func (s *ProtocolSpec) States() []State {
	out := make([]State, 0, NumStates)
	for _, st := range AllStates() {
		if s.states[st] {
			out = append(out, st)
		}
	}
	return out
}

// Unique reports whether the protocol permits at most one copy of the
// line in state st (F's forwarding duty, O's ownership, and the
// sole-copy states).
func (s *ProtocolSpec) Unique(st State) bool {
	return int(st) < NumStates && s.unique[st]
}

// SilentUpgrades reports whether some clean state can retire a store
// without any bus traffic (MESI's E->M). When false, the shared level
// can always trust its clean copies — sole-sharer misses need no
// owner forward.
func (s *ProtocolSpec) SilentUpgrades() bool { return s.silentUp }

// Install returns the read-miss fill policy.
func (s *ProtocolSpec) Install() InstallPolicy { return s.install }

// Store returns the store-side policy.
func (s *ProtocolSpec) Store() StorePolicy { return s.store }

// Apply returns the transition for state st under event e. It panics if
// st is not a state of the protocol (a protocol implementation bug),
// mirroring the historical hand-coded state machine.
func (s *ProtocolSpec) Apply(st State, e Event) Transition {
	if !s.Has(st) {
		panic(fmt.Sprintf("coherence: state %v not in protocol %s", st, s.name))
	}
	if int(e) >= NumEvents {
		panic(fmt.Sprintf("coherence: unhandled event %v", e))
	}
	return s.table[st][e]
}

// registry is the process-wide protocol table. Builtins register during
// init; tests and future callers may add more.
var registry = struct {
	mu     sync.RWMutex
	order  []string
	byName map[string]*ProtocolSpec
}{byName: make(map[string]*ProtocolSpec)}

func registryKey(name string) string { return strings.ToUpper(strings.TrimSpace(name)) }

// Register validates def and adds it to the registry. Registering a
// duplicate name is an error.
func Register(def SpecDef) (*ProtocolSpec, error) {
	spec, err := NewSpec(def)
	if err != nil {
		return nil, err
	}
	key := registryKey(def.Name)
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.byName[key]; dup {
		return nil, fmt.Errorf("coherence: protocol %q already registered", def.Name)
	}
	registry.byName[key] = spec
	registry.order = append(registry.order, key)
	return spec, nil
}

// MustRegister is Register that panics on error (builtin tables).
func MustRegister(def SpecDef) *ProtocolSpec {
	spec, err := Register(def)
	if err != nil {
		panic(err)
	}
	return spec
}

// SpecFor resolves a protocol name to its registered spec. The empty
// name selects MESI (the historical zero value); lookup is
// case-insensitive. Unknown names return an error listing the valid
// protocols.
func SpecFor(p Protocol) (*ProtocolSpec, error) {
	name := registryKey(string(p))
	if name == "" {
		name = string(MESI)
	}
	registry.mu.RLock()
	spec, ok := registry.byName[name]
	registry.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("coherence: unknown protocol %q (valid: %s)",
			string(p), strings.Join(protocolNames(), ", "))
	}
	return spec, nil
}

// MustSpec is SpecFor that panics on unknown names; callers validate
// user-supplied names via machine.Config.Validate first.
func MustSpec(p Protocol) *ProtocolSpec {
	spec, err := SpecFor(p)
	if err != nil {
		panic(err)
	}
	return spec
}

// Protocols returns the registered protocol names in registration order
// (builtins first), so matrix sweeps iterate deterministically.
func Protocols() []Protocol {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]Protocol, len(registry.order))
	for i, name := range registry.order {
		out[i] = Protocol(name)
	}
	return out
}

// protocolNames returns the sorted registered names for error messages.
// Callers hold no lock.
func protocolNames() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := append([]string(nil), registry.order...)
	sort.Strings(out)
	return out
}
