package cache

import "coherentleak/internal/sim"

// lru evicts the least-recently-used valid line, preferring invalid ways.
// Recency is read from Line.lru stamps maintained by the Cache.
type lru struct{}

// NewLRU returns the true-LRU replacement policy, the default for every
// cache level.
func NewLRU() ReplacementPolicy { return lru{} }

func (lru) Name() string { return "LRU" }

func (lru) Touch(set []Line, way int) {}

func (lru) Victim(set []Line) int { return lruVictim(set) }

// lruVictim picks the way with the oldest recency stamp, preferring
// invalid ways. It is shared by the lru policy and Cache's devirtualized
// fast path, so both select identical victims.
func lruVictim(set []Line) int {
	victim := 0
	var best uint64
	first := true
	for i := range set {
		if !set[i].Valid() {
			return i
		}
		if first || set[i].lru < best {
			best = set[i].lru
			victim = i
			first = false
		}
	}
	return victim
}

// treePLRU approximates LRU with a binary decision tree per set, as real
// LLCs do. State is kept per policy instance keyed by the set's backing
// array; because each Cache allocates distinct set slices, a policy
// instance must not be shared across caches.
type treePLRU struct {
	bits map[*Line]uint64
}

// NewTreePLRU returns a tree-PLRU policy. Associativity must be a power
// of two at Victim time.
func NewTreePLRU() ReplacementPolicy {
	return &treePLRU{bits: make(map[*Line]uint64)}
}

func (p *treePLRU) Name() string { return "tree-PLRU" }

func (p *treePLRU) key(set []Line) *Line { return &set[0] }

func (p *treePLRU) Touch(set []Line, way int) {
	n := len(set)
	if n&(n-1) != 0 {
		return // non-power-of-two associativity: degrade to no-op
	}
	state := p.bits[p.key(set)]
	// Walk from the root, flipping each node to point away from `way`.
	node := 0
	lo, hi := 0, n
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			state |= 1 << uint(node) // point right (away)
			node = 2*node + 1
			hi = mid
		} else {
			state &^= 1 << uint(node) // point left (away)
			node = 2*node + 2
			lo = mid
		}
	}
	p.bits[p.key(set)] = state
}

func (p *treePLRU) Victim(set []Line) int {
	for i := range set {
		if !set[i].Valid() {
			return i
		}
	}
	n := len(set)
	if n&(n-1) != 0 {
		return 0
	}
	state := p.bits[p.key(set)]
	node := 0
	lo, hi := 0, n
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if state&(1<<uint(node)) != 0 {
			node = 2*node + 2 // bit set: go right
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
	return lo
}

// randomPolicy evicts a uniformly random valid way; a lower bound for
// policy quality and a useful ablation for the channel's noise floor.
type randomPolicy struct {
	rng *sim.Rand
}

// NewRandom returns a random replacement policy driven by rng.
func NewRandom(rng *sim.Rand) ReplacementPolicy { return &randomPolicy{rng: rng} }

func (p *randomPolicy) Name() string { return "random" }

func (p *randomPolicy) Touch(set []Line, way int) {}

func (p *randomPolicy) Victim(set []Line) int {
	for i := range set {
		if !set[i].Valid() {
			return i
		}
	}
	return p.rng.Intn(len(set))
}
