package cache

import (
	"fmt"
	"strings"
)

// Policy selects a replacement algorithm. Policies are a closed enum —
// the per-access paths dispatch on a small switch, never through an
// interface — and all per-set metadata lives in flat arrays owned by the
// Cache (see the fields on Cache), so policy state can never alias
// across caches and the hot path stays allocation-free.
type Policy uint8

const (
	// PolicyLRU is true least-recently-used via per-line recency stamps,
	// the historical default for every cache level.
	PolicyLRU Policy = iota
	// PolicyTreePLRU approximates LRU with a binary decision tree per
	// set (one bit per internal node), as real LLCs do. Requires
	// power-of-two associativity.
	PolicyTreePLRU
	// PolicySRRIP is static re-reference interval prediction: a 2-bit
	// RRPV per line, hits promote to 0, fills insert at "long" (2),
	// victims are the first way at "distant" (3) after aging.
	PolicySRRIP
	// PolicyBRRIP is bimodal RRIP: like SRRIP but fills insert at
	// "distant" (3) except for a deterministic 1-in-32 trickle at
	// "long", which makes the policy thrash-resistant.
	PolicyBRRIP
)

// RRIP constants: 2-bit re-reference prediction values.
const (
	maxRRPV         = 3 // "distant": the eviction candidate value
	srripInsertRRPV = 2 // "long": SRRIP's insertion age
	// brripLongEvery is the deterministic bimodal period: every N-th
	// fill inserts at "long" instead of "distant". A counter, not an
	// RNG draw, so identical access streams always produce identical
	// eviction streams (the repo-wide byte-identity bar).
	brripLongEvery = 32
)

// PolicyInfo describes one registered replacement policy.
type PolicyInfo struct {
	Policy      Policy
	Name        string
	Description string
	// aliases are additional accepted spellings (upper-cased).
	aliases []string
}

// policyTable is the registry, in registration order. Lookups are
// case-insensitive over Name and aliases.
var policyTable = []PolicyInfo{
	{PolicyLRU, "LRU", "true least-recently-used (per-line recency stamps); the default", nil},
	{PolicyTreePLRU, "tree-PLRU", "binary-decision-tree pseudo-LRU, one bit per node (power-of-two ways)", []string{"PLRU", "TREEPLRU", "TREE_PLRU"}},
	{PolicySRRIP, "SRRIP", "static re-reference interval prediction (2-bit RRPV, insert at long)", nil},
	{PolicyBRRIP, "BRRIP", "bimodal RRIP (insert at distant with a 1/32 long trickle; thrash-resistant)", []string{"BIP-RRIP"}},
}

// String returns the policy's canonical registry name.
func (p Policy) String() string {
	for _, info := range policyTable {
		if info.Policy == p {
			return info.Name
		}
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// CheckGeometry reports whether the policy can manage a cache of the
// given shape. Tree-PLRU's decision tree needs power-of-two ways.
func (p Policy) CheckGeometry(geo Geometry) error {
	if p == PolicyTreePLRU && geo.Ways&(geo.Ways-1) != 0 {
		return fmt.Errorf("cache: tree-PLRU requires power-of-two associativity, got %d ways", geo.Ways)
	}
	return nil
}

// Policies returns the registered policies in registration order.
func Policies() []PolicyInfo {
	out := make([]PolicyInfo, len(policyTable))
	copy(out, policyTable)
	return out
}

// PolicyNames returns the canonical policy names in registration order.
func PolicyNames() []string {
	out := make([]string, 0, len(policyTable))
	for _, info := range policyTable {
		out = append(out, info.Name)
	}
	return out
}

// PolicyFor resolves a policy by registry name, case-insensitively. The
// empty string means LRU (the historical default), mirroring how the
// coherence registry treats an empty protocol name.
func PolicyFor(name string) (Policy, error) {
	key := strings.ToUpper(strings.TrimSpace(name))
	if key == "" {
		return PolicyLRU, nil
	}
	for _, info := range policyTable {
		if strings.ToUpper(info.Name) == key {
			return info.Policy, nil
		}
		for _, al := range info.aliases {
			if al == key {
				return info.Policy, nil
			}
		}
	}
	return PolicyLRU, fmt.Errorf("cache: unknown replacement policy %q (registered: %s)",
		name, strings.Join(PolicyNames(), ", "))
}

// MustPolicy is PolicyFor but panics on unknown names; for static
// configs that were already validated.
func MustPolicy(name string) Policy {
	p, err := PolicyFor(name)
	if err != nil {
		panic(err)
	}
	return p
}

// lruVictim picks the way with the oldest recency stamp, preferring
// invalid ways. It is the devirtualized fast path for the default
// policy; Insert calls it directly when the policy is PolicyLRU.
func lruVictim(set []Line) int {
	victim := 0
	var best uint64
	first := true
	for i := range set {
		if !set[i].Valid() {
			return i
		}
		if first || set[i].lru < best {
			best = set[i].lru
			victim = i
			first = false
		}
	}
	return victim
}

// plruTouch returns the set's tree bits updated so every node on way's
// root path points away from way (bit set = victim search goes right).
func plruTouch(bits uint64, ways, way int) uint64 {
	node, lo, hi := 0, 0, ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			bits |= 1 << uint(node) // point right (away)
			node = 2*node + 1
			hi = mid
		} else {
			bits &^= 1 << uint(node) // point left (away)
			node = 2*node + 2
			lo = mid
		}
	}
	return bits
}

// plruVictim walks the tree bits from the root to the pointed-at way.
func plruVictim(bits uint64, ways int) int {
	node, lo, hi := 0, 0, ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if bits&(1<<uint(node)) != 0 {
			node = 2*node + 2 // bit set: go right
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
	return lo
}
