package cache

import (
	"testing"
	"testing/quick"

	"coherentleak/internal/coherence"
	"coherentleak/internal/sim"
)

func smallCache(t *testing.T, ways int) *Cache {
	t.Helper()
	// 4 sets x `ways` ways.
	c, err := New(Geometry{SizeBytes: 4 * ways * LineSize, Ways: ways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGeometryValidate(t *testing.T) {
	good := Geometry{SizeBytes: 32 * 1024, Ways: 8}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	if good.Sets() != 64 {
		t.Fatalf("Sets() = %d, want 64", good.Sets())
	}
	bads := []Geometry{
		{SizeBytes: 0, Ways: 8},
		{SizeBytes: 32 * 1024, Ways: 0},
		{SizeBytes: 1000, Ways: 2}, // not divisible by ways*linesize
		{SizeBytes: -64, Ways: 1},
	}
	for _, g := range bads {
		if err := g.Validate(); err == nil {
			t.Errorf("geometry %+v accepted", g)
		}
	}
	// Non-power-of-two set counts are legal (the Xeon LLC has 12288 sets).
	if err := (Geometry{SizeBytes: 3 * 64 * 64, Ways: 1}).Validate(); err != nil {
		t.Errorf("192-set geometry rejected: %v", err)
	}
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0x1234) != 0x1200 {
		t.Fatalf("LineAddr(0x1234) = %#x", LineAddr(0x1234))
	}
	if LineAddr(0x1240) != 0x1240 {
		t.Fatal("aligned address changed")
	}
}

func TestInsertLookupHitMiss(t *testing.T) {
	c := smallCache(t, 2)
	const a = 0x1000
	if c.Lookup(a) != nil {
		t.Fatal("hit on empty cache")
	}
	c.Insert(a, coherence.Exclusive)
	l := c.Lookup(a)
	if l == nil || l.State != coherence.Exclusive {
		t.Fatal("inserted line not found")
	}
	// Sub-line addresses hit the same line.
	if c.Lookup(a+63) == nil {
		t.Fatal("sub-line address missed")
	}
	if c.Lookup(a+64) != nil {
		t.Fatal("next line spuriously hit")
	}
	if c.Stats.Hits != 2 || c.Stats.Misses != 2 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestInsertInvalidPanics(t *testing.T) {
	c := smallCache(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Insert(Invalid) did not panic")
		}
	}()
	c.Insert(0x40, coherence.Invalid)
}

func TestProbeHasNoSideEffects(t *testing.T) {
	c := smallCache(t, 2)
	c.Insert(0x40, coherence.Shared)
	before := c.Stats
	if c.Probe(0x40) != coherence.Shared {
		t.Fatal("Probe missed")
	}
	if c.Probe(0x999000) != coherence.Invalid {
		t.Fatal("Probe hit absent line")
	}
	if c.Stats != before {
		t.Fatal("Probe changed stats")
	}
}

func TestEvictionReturnsVictim(t *testing.T) {
	c := smallCache(t, 2) // 4 sets, 2 ways
	// Three lines mapping to the same set: set stride is 4*64 = 256.
	a0, a1, a2 := uint64(0x0), uint64(0x400), uint64(0x800)
	if c.SetIndexOf(a0) != c.SetIndexOf(a1) || c.SetIndexOf(a1) != c.SetIndexOf(a2) {
		t.Fatal("test addresses do not conflict")
	}
	c.Insert(a0, coherence.Modified)
	c.Insert(a1, coherence.Shared)
	ev, ok := c.Insert(a2, coherence.Exclusive)
	if !ok {
		t.Fatal("no eviction from full set")
	}
	if ev.Addr != a0 || ev.State != coherence.Modified {
		t.Fatalf("evicted %+v, want a0/M", ev)
	}
	if c.Contains(a0) {
		t.Fatal("victim still present")
	}
}

func TestLRUVictimChoice(t *testing.T) {
	c := smallCache(t, 2)
	a0, a1, a2 := uint64(0x0), uint64(0x400), uint64(0x800)
	c.Insert(a0, coherence.Shared)
	c.Insert(a1, coherence.Shared)
	c.Lookup(a0) // a0 now more recent than a1
	ev, ok := c.Insert(a2, coherence.Shared)
	if !ok || ev.Addr != a1 {
		t.Fatalf("LRU evicted %#x, want a1", ev.Addr)
	}
}

func TestReFillUpdatesStateWithoutEviction(t *testing.T) {
	c := smallCache(t, 2)
	c.Insert(0x40, coherence.Exclusive)
	ev, ok := c.Insert(0x40, coherence.Shared)
	if ok {
		t.Fatalf("re-fill evicted %+v", ev)
	}
	if c.Probe(0x40) != coherence.Shared {
		t.Fatal("re-fill did not update state")
	}
	if c.ValidLines() != 1 {
		t.Fatal("duplicate line created")
	}
}

func TestSetStateAndInvalidate(t *testing.T) {
	c := smallCache(t, 2)
	c.Insert(0x40, coherence.Exclusive)
	if !c.SetState(0x40, coherence.Shared) {
		t.Fatal("SetState missed present line")
	}
	if c.Probe(0x40) != coherence.Shared {
		t.Fatal("state not updated")
	}
	if c.SetState(0x5000, coherence.Shared) {
		t.Fatal("SetState hit absent line")
	}
	if prior := c.Invalidate(0x40); prior != coherence.Shared {
		t.Fatalf("Invalidate prior = %v", prior)
	}
	if c.Contains(0x40) {
		t.Fatal("line survives Invalidate")
	}
	if prior := c.Invalidate(0x40); prior != coherence.Invalid {
		t.Fatal("double Invalidate reported a state")
	}
}

func TestSetAddrs(t *testing.T) {
	c := smallCache(t, 2)
	c.Insert(0x0, coherence.Shared)
	c.Insert(0x400, coherence.Shared)
	addrs := c.SetAddrs(0x800) // same set
	if len(addrs) != 2 {
		t.Fatalf("SetAddrs = %v", addrs)
	}
	seen := map[uint64]bool{}
	for _, a := range addrs {
		seen[a] = true
	}
	if !seen[0x0] || !seen[0x400] {
		t.Fatalf("SetAddrs = %v, want {0x0, 0x400}", addrs)
	}
}

func TestClear(t *testing.T) {
	c := smallCache(t, 4)
	for i := uint64(0); i < 16; i++ {
		c.Insert(i*64, coherence.Shared)
	}
	c.Clear()
	if c.ValidLines() != 0 {
		t.Fatal("Clear left valid lines")
	}
}

// Property: the cache never holds more valid lines than its capacity, and
// a line just inserted is always present.
func TestCapacityInvariant(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := MustNew(Geometry{SizeBytes: 8 * 2 * LineSize, Ways: 2}, nil)
		capacity := 8 * 2
		for _, a16 := range addrs {
			a := uint64(a16) * LineSize
			c.Insert(a, coherence.Shared)
			if !c.Contains(a) {
				return false
			}
			if c.ValidLines() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: evicted address reconstruction round-trips — the victim
// reported by Insert is an address that was previously inserted.
func TestEvictedAddrRoundTrip(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := MustNew(Geometry{SizeBytes: 4 * 2 * LineSize, Ways: 2}, nil)
		inserted := map[uint64]bool{}
		for _, a16 := range addrs {
			a := uint64(a16) * LineSize
			ev, ok := c.Insert(a, coherence.Shared)
			inserted[a] = true
			if ok && !inserted[ev.Addr] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTreePLRUFillsInvalidFirst(t *testing.T) {
	c := MustNew(Geometry{SizeBytes: 4 * 4 * LineSize, Ways: 4}, NewTreePLRU())
	base := uint64(0)
	stride := uint64(4 * LineSize)
	for i := uint64(0); i < 4; i++ {
		ev, ok := c.Insert(base+i*stride, coherence.Shared)
		if ok {
			t.Fatalf("eviction %+v while invalid ways remain", ev)
		}
	}
	if c.ValidLines() != 4 {
		t.Fatal("set not full")
	}
}

func TestTreePLRUVictimIsNotMostRecent(t *testing.T) {
	c := MustNew(Geometry{SizeBytes: 4 * 4 * LineSize, Ways: 4}, NewTreePLRU())
	stride := uint64(4 * LineSize)
	for i := uint64(0); i < 4; i++ {
		c.Insert(i*stride, coherence.Shared)
	}
	// Touch line 2; the next victim must not be line 2.
	c.Lookup(2 * stride)
	ev, ok := c.Insert(9*stride, coherence.Shared)
	if !ok {
		t.Fatal("no eviction from full set")
	}
	if ev.Addr == 2*stride {
		t.Fatal("tree-PLRU evicted the most recently used line")
	}
}

func TestRandomPolicyDeterministicUnderSeed(t *testing.T) {
	mk := func() []uint64 {
		c := MustNew(Geometry{SizeBytes: 4 * 2 * LineSize, Ways: 2}, NewRandom(sim.NewRand(99)))
		var evs []uint64
		stride := uint64(4 * LineSize)
		for i := uint64(0); i < 20; i++ {
			if ev, ok := c.Insert(i*stride, coherence.Shared); ok {
				evs = append(evs, ev.Addr)
			}
		}
		return evs
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("eviction streams differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random policy not deterministic under fixed seed")
		}
	}
}

func TestPolicyNames(t *testing.T) {
	if NewLRU().Name() != "LRU" {
		t.Error("LRU name")
	}
	if NewTreePLRU().Name() != "tree-PLRU" {
		t.Error("tree-PLRU name")
	}
	if NewRandom(sim.NewRand(1)).Name() != "random" {
		t.Error("random name")
	}
}

func TestXeonGeometries(t *testing.T) {
	// The testbed's actual cache shapes must validate.
	for _, g := range []Geometry{
		{SizeBytes: 32 * 1024, Ways: 8},         // L1d
		{SizeBytes: 256 * 1024, Ways: 8},        // L2
		{SizeBytes: 12 * 1024 * 1024, Ways: 16}, // LLC
	} {
		if err := g.Validate(); err != nil {
			t.Errorf("Xeon geometry %+v invalid: %v", g, err)
		}
	}
}
