package cache

import (
	"testing"
	"testing/quick"

	"coherentleak/internal/coherence"
	"coherentleak/internal/sim"
)

func smallCache(t *testing.T, ways int) *Cache {
	t.Helper()
	// 4 sets x `ways` ways.
	c, err := New(Geometry{SizeBytes: 4 * ways * LineSize, Ways: ways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGeometryValidate(t *testing.T) {
	good := Geometry{SizeBytes: 32 * 1024, Ways: 8}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	if good.Sets() != 64 {
		t.Fatalf("Sets() = %d, want 64", good.Sets())
	}
	bads := []Geometry{
		{SizeBytes: 0, Ways: 8},
		{SizeBytes: 32 * 1024, Ways: 0},
		{SizeBytes: 1000, Ways: 2}, // not divisible by ways*linesize
		{SizeBytes: -64, Ways: 1},
	}
	for _, g := range bads {
		if err := g.Validate(); err == nil {
			t.Errorf("geometry %+v accepted", g)
		}
	}
	// Non-power-of-two set counts are legal (the Xeon LLC has 12288 sets).
	if err := (Geometry{SizeBytes: 3 * 64 * 64, Ways: 1}).Validate(); err != nil {
		t.Errorf("192-set geometry rejected: %v", err)
	}
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0x1234) != 0x1200 {
		t.Fatalf("LineAddr(0x1234) = %#x", LineAddr(0x1234))
	}
	if LineAddr(0x1240) != 0x1240 {
		t.Fatal("aligned address changed")
	}
}

func TestInsertLookupHitMiss(t *testing.T) {
	c := smallCache(t, 2)
	const a = 0x1000
	if c.Lookup(a) != nil {
		t.Fatal("hit on empty cache")
	}
	c.Insert(a, coherence.Exclusive)
	l := c.Lookup(a)
	if l == nil || l.State != coherence.Exclusive {
		t.Fatal("inserted line not found")
	}
	// Sub-line addresses hit the same line.
	if c.Lookup(a+63) == nil {
		t.Fatal("sub-line address missed")
	}
	if c.Lookup(a+64) != nil {
		t.Fatal("next line spuriously hit")
	}
	if c.Stats.Hits != 2 || c.Stats.Misses != 2 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestInsertInvalidPanics(t *testing.T) {
	c := smallCache(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Insert(Invalid) did not panic")
		}
	}()
	c.Insert(0x40, coherence.Invalid)
}

func TestProbeHasNoSideEffects(t *testing.T) {
	c := smallCache(t, 2)
	c.Insert(0x40, coherence.Shared)
	before := c.Stats
	if c.Probe(0x40) != coherence.Shared {
		t.Fatal("Probe missed")
	}
	if c.Probe(0x999000) != coherence.Invalid {
		t.Fatal("Probe hit absent line")
	}
	if c.Stats != before {
		t.Fatal("Probe changed stats")
	}
}

func TestEvictionReturnsVictim(t *testing.T) {
	c := smallCache(t, 2) // 4 sets, 2 ways
	// Three lines mapping to the same set: set stride is 4*64 = 256.
	a0, a1, a2 := uint64(0x0), uint64(0x400), uint64(0x800)
	if c.SetIndexOf(a0) != c.SetIndexOf(a1) || c.SetIndexOf(a1) != c.SetIndexOf(a2) {
		t.Fatal("test addresses do not conflict")
	}
	c.Insert(a0, coherence.Modified)
	c.Insert(a1, coherence.Shared)
	ev, ok := c.Insert(a2, coherence.Exclusive)
	if !ok {
		t.Fatal("no eviction from full set")
	}
	if ev.Addr != a0 || ev.State != coherence.Modified {
		t.Fatalf("evicted %+v, want a0/M", ev)
	}
	if c.Contains(a0) {
		t.Fatal("victim still present")
	}
}

func TestLRUVictimChoice(t *testing.T) {
	c := smallCache(t, 2)
	a0, a1, a2 := uint64(0x0), uint64(0x400), uint64(0x800)
	c.Insert(a0, coherence.Shared)
	c.Insert(a1, coherence.Shared)
	c.Lookup(a0) // a0 now more recent than a1
	ev, ok := c.Insert(a2, coherence.Shared)
	if !ok || ev.Addr != a1 {
		t.Fatalf("LRU evicted %#x, want a1", ev.Addr)
	}
}

func TestReFillUpdatesStateWithoutEviction(t *testing.T) {
	c := smallCache(t, 2)
	c.Insert(0x40, coherence.Exclusive)
	ev, ok := c.Insert(0x40, coherence.Shared)
	if ok {
		t.Fatalf("re-fill evicted %+v", ev)
	}
	if c.Probe(0x40) != coherence.Shared {
		t.Fatal("re-fill did not update state")
	}
	if c.ValidLines() != 1 {
		t.Fatal("duplicate line created")
	}
}

func TestSetStateAndInvalidate(t *testing.T) {
	c := smallCache(t, 2)
	c.Insert(0x40, coherence.Exclusive)
	if !c.SetState(0x40, coherence.Shared) {
		t.Fatal("SetState missed present line")
	}
	if c.Probe(0x40) != coherence.Shared {
		t.Fatal("state not updated")
	}
	if c.SetState(0x5000, coherence.Shared) {
		t.Fatal("SetState hit absent line")
	}
	if prior := c.Invalidate(0x40); prior != coherence.Shared {
		t.Fatalf("Invalidate prior = %v", prior)
	}
	if c.Contains(0x40) {
		t.Fatal("line survives Invalidate")
	}
	if prior := c.Invalidate(0x40); prior != coherence.Invalid {
		t.Fatal("double Invalidate reported a state")
	}
}

func TestSetAddrs(t *testing.T) {
	c := smallCache(t, 2)
	c.Insert(0x0, coherence.Shared)
	c.Insert(0x400, coherence.Shared)
	addrs := c.SetAddrs(0x800) // same set
	if len(addrs) != 2 {
		t.Fatalf("SetAddrs = %v", addrs)
	}
	seen := map[uint64]bool{}
	for _, a := range addrs {
		seen[a] = true
	}
	if !seen[0x0] || !seen[0x400] {
		t.Fatalf("SetAddrs = %v, want {0x0, 0x400}", addrs)
	}
}

func TestClear(t *testing.T) {
	c := smallCache(t, 4)
	for i := uint64(0); i < 16; i++ {
		c.Insert(i*64, coherence.Shared)
	}
	c.Clear()
	if c.ValidLines() != 0 {
		t.Fatal("Clear left valid lines")
	}
}

// Property: the cache never holds more valid lines than its capacity, and
// a line just inserted is always present.
func TestCapacityInvariant(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := MustNew(Geometry{SizeBytes: 8 * 2 * LineSize, Ways: 2}, nil)
		capacity := 8 * 2
		for _, a16 := range addrs {
			a := uint64(a16) * LineSize
			c.Insert(a, coherence.Shared)
			if !c.Contains(a) {
				return false
			}
			if c.ValidLines() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: evicted address reconstruction round-trips — the victim
// reported by Insert is an address that was previously inserted.
func TestEvictedAddrRoundTrip(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := MustNew(Geometry{SizeBytes: 4 * 2 * LineSize, Ways: 2}, nil)
		inserted := map[uint64]bool{}
		for _, a16 := range addrs {
			a := uint64(a16) * LineSize
			ev, ok := c.Insert(a, coherence.Shared)
			inserted[a] = true
			if ok && !inserted[ev.Addr] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTreePLRUFillsInvalidFirst(t *testing.T) {
	c := MustNew(Geometry{SizeBytes: 4 * 4 * LineSize, Ways: 4}, NewTreePLRU())
	base := uint64(0)
	stride := uint64(4 * LineSize)
	for i := uint64(0); i < 4; i++ {
		ev, ok := c.Insert(base+i*stride, coherence.Shared)
		if ok {
			t.Fatalf("eviction %+v while invalid ways remain", ev)
		}
	}
	if c.ValidLines() != 4 {
		t.Fatal("set not full")
	}
}

func TestTreePLRUVictimIsNotMostRecent(t *testing.T) {
	c := MustNew(Geometry{SizeBytes: 4 * 4 * LineSize, Ways: 4}, NewTreePLRU())
	stride := uint64(4 * LineSize)
	for i := uint64(0); i < 4; i++ {
		c.Insert(i*stride, coherence.Shared)
	}
	// Touch line 2; the next victim must not be line 2.
	c.Lookup(2 * stride)
	ev, ok := c.Insert(9*stride, coherence.Shared)
	if !ok {
		t.Fatal("no eviction from full set")
	}
	if ev.Addr == 2*stride {
		t.Fatal("tree-PLRU evicted the most recently used line")
	}
}

func TestRandomPolicyDeterministicUnderSeed(t *testing.T) {
	mk := func() []uint64 {
		c := MustNew(Geometry{SizeBytes: 4 * 2 * LineSize, Ways: 2}, NewRandom(sim.NewRand(99)))
		var evs []uint64
		stride := uint64(4 * LineSize)
		for i := uint64(0); i < 20; i++ {
			if ev, ok := c.Insert(i*stride, coherence.Shared); ok {
				evs = append(evs, ev.Addr)
			}
		}
		return evs
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("eviction streams differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random policy not deterministic under fixed seed")
		}
	}
}

func TestPolicyNames(t *testing.T) {
	if NewLRU().Name() != "LRU" {
		t.Error("LRU name")
	}
	if NewTreePLRU().Name() != "tree-PLRU" {
		t.Error("tree-PLRU name")
	}
	if NewRandom(sim.NewRand(1)).Name() != "random" {
		t.Error("random name")
	}
}

// TestSetIndexBoundaries pins the flat-array set mapping at the edges:
// the masked (power-of-two) and modulo (non-power-of-two) paths must agree
// with the reference computation for first/last sets and wrap-around, so a
// refactor of index() cannot silently remap lines.
func TestSetIndexBoundaries(t *testing.T) {
	cases := []struct {
		name string
		geo  Geometry
	}{
		{"pow2-64sets", Geometry{SizeBytes: 64 * 2 * LineSize, Ways: 2}},
		{"nonpow2-12288sets", Geometry{SizeBytes: 12 * 1024 * 1024, Ways: 16}}, // the Xeon LLC
		{"nonpow2-3sets", Geometry{SizeBytes: 3 * 1 * LineSize, Ways: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := MustNew(tc.geo, nil)
			sets := uint64(tc.geo.Sets())
			lines := []uint64{
				0,          // first line of set 0
				sets - 1,   // last set
				sets,       // wraps to set 0
				sets + 1,   // wraps to set 1
				2*sets - 1, // last set again
				1<<32 - 1,  // far line number
				1<<40 + 7,  // beyond any physical address in the testbed
			}
			for _, n := range lines {
				addr := n * LineSize
				want := n % sets
				if got := c.SetIndexOf(addr); got != want {
					t.Errorf("SetIndexOf(line %d) = %d, want %d", n, got, want)
				}
				// Sub-line offsets map to the same set.
				if got := c.SetIndexOf(addr + LineSize - 1); got != want {
					t.Errorf("sub-line offset remapped set for line %d", n)
				}
			}
			// A full pass over every set: inserting one line per set fills
			// the cache with no conflicts in either indexing mode.
			c.Clear()
			for s := uint64(0); s < sets; s++ {
				if ev, ok := c.Insert(s*LineSize, coherence.Shared); ok {
					t.Fatalf("set %d conflicted: evicted %+v", s, ev)
				}
			}
			if got := c.ValidLines(); got != int(sets) {
				t.Fatalf("one line per set gave %d valid lines, want %d", got, sets)
			}
		})
	}
}

// TestLRUVictimPrefersInvalidWays pins the devirtualized LRU fast path:
// with a mix of valid and invalid ways, the victim must be an invalid way
// (never displacing live data), and once all ways are valid the oldest
// stamp loses regardless of insertion order.
func TestLRUVictimPrefersInvalidWays(t *testing.T) {
	c := MustNew(Geometry{SizeBytes: 1 * 4 * LineSize, Ways: 4}, nil) // 1 set, 4 ways
	stride := uint64(LineSize)
	// Fill ways 0..3.
	for i := uint64(0); i < 4; i++ {
		c.Insert(i*stride, coherence.Shared)
	}
	// Invalidate the middle two ways.
	c.Invalidate(1 * stride)
	c.Invalidate(2 * stride)
	// The next two inserts must reuse the invalid ways: no eviction.
	for _, n := range []uint64{10, 11} {
		if ev, ok := c.Insert(n*stride, coherence.Shared); ok {
			t.Fatalf("insert with invalid ways available evicted %+v", ev)
		}
	}
	// Set is full again; the LRU victim is the oldest surviving line (0).
	ev, ok := c.Insert(12*stride, coherence.Shared)
	if !ok || ev.Addr != 0 {
		t.Fatalf("full-set victim = %+v ok=%v, want line 0", ev, ok)
	}
	// The package-level lruVictim and the lru policy must agree way-by-way.
	set := c.set(0)
	if pv, fv := (lru{}).Victim(set), lruVictim(set); pv != fv {
		t.Fatalf("policy Victim %d != fast-path victim %d", pv, fv)
	}
}

func TestXeonGeometries(t *testing.T) {
	// The testbed's actual cache shapes must validate.
	for _, g := range []Geometry{
		{SizeBytes: 32 * 1024, Ways: 8},         // L1d
		{SizeBytes: 256 * 1024, Ways: 8},        // L2
		{SizeBytes: 12 * 1024 * 1024, Ways: 16}, // LLC
	} {
		if err := g.Validate(); err != nil {
			t.Errorf("Xeon geometry %+v invalid: %v", g, err)
		}
	}
}
