package cache

import (
	"testing"
	"testing/quick"

	"coherentleak/internal/coherence"
)

func smallCache(t *testing.T, ways int) *Cache {
	t.Helper()
	// 4 sets x `ways` ways.
	c, err := New(Geometry{SizeBytes: 4 * ways * LineSize, Ways: ways}, PolicyLRU)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGeometryValidate(t *testing.T) {
	good := Geometry{SizeBytes: 32 * 1024, Ways: 8}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	if good.Sets() != 64 {
		t.Fatalf("Sets() = %d, want 64", good.Sets())
	}
	bads := []Geometry{
		{SizeBytes: 0, Ways: 8},
		{SizeBytes: 32 * 1024, Ways: 0},
		{SizeBytes: 1000, Ways: 2}, // not divisible by ways*linesize
		{SizeBytes: -64, Ways: 1},
	}
	for _, g := range bads {
		if err := g.Validate(); err == nil {
			t.Errorf("geometry %+v accepted", g)
		}
	}
	// Non-power-of-two set counts are legal (the Xeon LLC has 12288 sets).
	if err := (Geometry{SizeBytes: 3 * 64 * 64, Ways: 1}).Validate(); err != nil {
		t.Errorf("192-set geometry rejected: %v", err)
	}
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0x1234) != 0x1200 {
		t.Fatalf("LineAddr(0x1234) = %#x", LineAddr(0x1234))
	}
	if LineAddr(0x1240) != 0x1240 {
		t.Fatal("aligned address changed")
	}
}

func TestInsertLookupHitMiss(t *testing.T) {
	c := smallCache(t, 2)
	const a = 0x1000
	if c.Lookup(a) != nil {
		t.Fatal("hit on empty cache")
	}
	c.Insert(a, coherence.Exclusive)
	l := c.Lookup(a)
	if l == nil || l.State != coherence.Exclusive {
		t.Fatal("inserted line not found")
	}
	// Sub-line addresses hit the same line.
	if c.Lookup(a+63) == nil {
		t.Fatal("sub-line address missed")
	}
	if c.Lookup(a+64) != nil {
		t.Fatal("next line spuriously hit")
	}
	if c.Stats.Hits != 2 || c.Stats.Misses != 2 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestInsertInvalidPanics(t *testing.T) {
	c := smallCache(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Insert(Invalid) did not panic")
		}
	}()
	c.Insert(0x40, coherence.Invalid)
}

func TestProbeHasNoSideEffects(t *testing.T) {
	c := smallCache(t, 2)
	c.Insert(0x40, coherence.Shared)
	before := c.Stats
	if c.Probe(0x40) != coherence.Shared {
		t.Fatal("Probe missed")
	}
	if c.Probe(0x999000) != coherence.Invalid {
		t.Fatal("Probe hit absent line")
	}
	if c.Stats != before {
		t.Fatal("Probe changed stats")
	}
}

func TestEvictionReturnsVictim(t *testing.T) {
	c := smallCache(t, 2) // 4 sets, 2 ways
	// Three lines mapping to the same set: set stride is 4*64 = 256.
	a0, a1, a2 := uint64(0x0), uint64(0x400), uint64(0x800)
	if c.SetIndexOf(a0) != c.SetIndexOf(a1) || c.SetIndexOf(a1) != c.SetIndexOf(a2) {
		t.Fatal("test addresses do not conflict")
	}
	c.Insert(a0, coherence.Modified)
	c.Insert(a1, coherence.Shared)
	ev, ok := c.Insert(a2, coherence.Exclusive)
	if !ok {
		t.Fatal("no eviction from full set")
	}
	if ev.Addr != a0 || ev.State != coherence.Modified {
		t.Fatalf("evicted %+v, want a0/M", ev)
	}
	if c.Contains(a0) {
		t.Fatal("victim still present")
	}
}

func TestLRUVictimChoice(t *testing.T) {
	c := smallCache(t, 2)
	a0, a1, a2 := uint64(0x0), uint64(0x400), uint64(0x800)
	c.Insert(a0, coherence.Shared)
	c.Insert(a1, coherence.Shared)
	c.Lookup(a0) // a0 now more recent than a1
	ev, ok := c.Insert(a2, coherence.Shared)
	if !ok || ev.Addr != a1 {
		t.Fatalf("LRU evicted %#x, want a1", ev.Addr)
	}
}

func TestReFillUpdatesStateWithoutEviction(t *testing.T) {
	c := smallCache(t, 2)
	c.Insert(0x40, coherence.Exclusive)
	ev, ok := c.Insert(0x40, coherence.Shared)
	if ok {
		t.Fatalf("re-fill evicted %+v", ev)
	}
	if c.Probe(0x40) != coherence.Shared {
		t.Fatal("re-fill did not update state")
	}
	if c.ValidLines() != 1 {
		t.Fatal("duplicate line created")
	}
}

func TestSetStateAndInvalidate(t *testing.T) {
	c := smallCache(t, 2)
	c.Insert(0x40, coherence.Exclusive)
	if !c.SetState(0x40, coherence.Shared) {
		t.Fatal("SetState missed present line")
	}
	if c.Probe(0x40) != coherence.Shared {
		t.Fatal("state not updated")
	}
	if c.SetState(0x5000, coherence.Shared) {
		t.Fatal("SetState hit absent line")
	}
	if prior := c.Invalidate(0x40); prior != coherence.Shared {
		t.Fatalf("Invalidate prior = %v", prior)
	}
	if c.Contains(0x40) {
		t.Fatal("line survives Invalidate")
	}
	if prior := c.Invalidate(0x40); prior != coherence.Invalid {
		t.Fatal("double Invalidate reported a state")
	}
}

func TestSetAddrs(t *testing.T) {
	c := smallCache(t, 2)
	c.Insert(0x0, coherence.Shared)
	c.Insert(0x400, coherence.Shared)
	addrs := c.SetAddrs(0x800) // same set
	if len(addrs) != 2 {
		t.Fatalf("SetAddrs = %v", addrs)
	}
	seen := map[uint64]bool{}
	for _, a := range addrs {
		seen[a] = true
	}
	if !seen[0x0] || !seen[0x400] {
		t.Fatalf("SetAddrs = %v, want {0x0, 0x400}", addrs)
	}
}

func TestClear(t *testing.T) {
	c := smallCache(t, 4)
	for i := uint64(0); i < 16; i++ {
		c.Insert(i*64, coherence.Shared)
	}
	c.Clear()
	if c.ValidLines() != 0 {
		t.Fatal("Clear left valid lines")
	}
}

// Property: the cache never holds more valid lines than its capacity, and
// a line just inserted is always present.
func TestCapacityInvariant(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := MustNew(Geometry{SizeBytes: 8 * 2 * LineSize, Ways: 2}, PolicyLRU)
		capacity := 8 * 2
		for _, a16 := range addrs {
			a := uint64(a16) * LineSize
			c.Insert(a, coherence.Shared)
			if !c.Contains(a) {
				return false
			}
			if c.ValidLines() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: evicted address reconstruction round-trips — the victim
// reported by Insert is an address that was previously inserted.
func TestEvictedAddrRoundTrip(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := MustNew(Geometry{SizeBytes: 4 * 2 * LineSize, Ways: 2}, PolicyLRU)
		inserted := map[uint64]bool{}
		for _, a16 := range addrs {
			a := uint64(a16) * LineSize
			ev, ok := c.Insert(a, coherence.Shared)
			inserted[a] = true
			if ok && !inserted[ev.Addr] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTreePLRUFillsInvalidFirst(t *testing.T) {
	c := MustNew(Geometry{SizeBytes: 4 * 4 * LineSize, Ways: 4}, PolicyTreePLRU)
	base := uint64(0)
	stride := uint64(4 * LineSize)
	for i := uint64(0); i < 4; i++ {
		ev, ok := c.Insert(base+i*stride, coherence.Shared)
		if ok {
			t.Fatalf("eviction %+v while invalid ways remain", ev)
		}
	}
	if c.ValidLines() != 4 {
		t.Fatal("set not full")
	}
}

func TestTreePLRUVictimIsNotMostRecent(t *testing.T) {
	c := MustNew(Geometry{SizeBytes: 4 * 4 * LineSize, Ways: 4}, PolicyTreePLRU)
	stride := uint64(4 * LineSize)
	for i := uint64(0); i < 4; i++ {
		c.Insert(i*stride, coherence.Shared)
	}
	// Touch line 2; the next victim must not be line 2.
	c.Lookup(2 * stride)
	ev, ok := c.Insert(9*stride, coherence.Shared)
	if !ok {
		t.Fatal("no eviction from full set")
	}
	if ev.Addr == 2*stride {
		t.Fatal("tree-PLRU evicted the most recently used line")
	}
}

// TestTreePLRUFullHistory pins the tree walk exactly: touching ways in a
// known order makes the victim fully determined (not just "not the MRU").
// With 4 ways, touching 0,1,2,3 leaves every node pointing left → victim
// is way 0; then touching way 0 flips the root right → victim is way 2.
func TestTreePLRUFullHistory(t *testing.T) {
	c := MustNew(Geometry{SizeBytes: 1 * 4 * LineSize, Ways: 4}, PolicyTreePLRU)
	stride := uint64(LineSize)
	for i := uint64(0); i < 4; i++ {
		c.Insert(i*stride, coherence.Shared) // fills ways 0..3 in order
	}
	ev, ok := c.Insert(10*stride, coherence.Shared)
	if !ok || ev.Addr != 0 {
		t.Fatalf("victim after sequential touch = %+v, want way-0 line 0", ev)
	}
	// New line sits in way 0 (just touched). Touch way 1's line: the root
	// now points right → victim is way 2's line.
	c.Lookup(1 * stride)
	ev, ok = c.Insert(11*stride, coherence.Shared)
	if !ok || ev.Addr != 2*stride {
		t.Fatalf("victim = %+v, want line 2", ev)
	}
}

func TestTreePLRURequiresPow2Ways(t *testing.T) {
	_, err := New(Geometry{SizeBytes: 3 * 64, Ways: 3}, PolicyTreePLRU)
	if err == nil {
		t.Fatal("tree-PLRU accepted 3-way geometry")
	}
	if _, err := New(Geometry{SizeBytes: 3 * 64, Ways: 3}, PolicySRRIP); err != nil {
		t.Fatalf("SRRIP rejected 3-way geometry: %v", err)
	}
}

// TestPoliciesDoNotAliasAcrossCaches is the regression test for the old
// map-backed treePLRU, which keyed per-set state off &set[0] — state
// could leak between caches sharing a policy value or across rebuilds.
// With flat per-cache arrays, driving one cache must never change
// another's eviction decisions.
func TestPoliciesDoNotAliasAcrossCaches(t *testing.T) {
	for _, pol := range []Policy{PolicyTreePLRU, PolicySRRIP, PolicyBRRIP} {
		t.Run(pol.String(), func(t *testing.T) {
			geo := Geometry{SizeBytes: 4 * 4 * LineSize, Ways: 4}
			stride := uint64(4 * LineSize)
			run := func(c *Cache, perturb *Cache) []uint64 {
				var evs []uint64
				for i := uint64(0); i < 24; i++ {
					if perturb != nil {
						// Interleave accesses on the other cache with a
						// different, shifted stream.
						perturb.Insert((i*3+1)*stride, coherence.Shared)
						perturb.Lookup((i * 3) * stride)
					}
					if ev, ok := c.Insert(i*stride, coherence.Shared); ok {
						evs = append(evs, ev.Addr)
					}
					c.Lookup((i / 2) * stride)
				}
				return evs
			}
			clean := run(MustNew(geo, pol), nil)
			noisy := run(MustNew(geo, pol), MustNew(geo, pol))
			if len(clean) != len(noisy) {
				t.Fatalf("eviction stream lengths differ: %d vs %d", len(clean), len(noisy))
			}
			for i := range clean {
				if clean[i] != noisy[i] {
					t.Fatalf("eviction %d differs (%#x vs %#x): policy state aliased across caches",
						i, clean[i], noisy[i])
				}
			}
		})
	}
}

// TestSRRIPInsertionAge pins RRIP semantics: a fill inserts at "long"
// (RRPV 2), a hit promotes to 0, and the victim scan ages everyone and
// takes the first way at "distant" from way 0.
func TestSRRIPInsertionAge(t *testing.T) {
	c := MustNew(Geometry{SizeBytes: 1 * 4 * LineSize, Ways: 4}, PolicySRRIP)
	stride := uint64(LineSize)
	for i := uint64(0); i < 4; i++ {
		c.Insert(i*stride, coherence.Shared) // all at RRPV 2
	}
	c.Lookup(0) // way 0 promoted to RRPV 0
	// Victim: aging brings ways 1..3 to 3 first; first-from-way-0 → way 1.
	ev, ok := c.Insert(10*stride, coherence.Shared)
	if !ok || ev.Addr != 1*stride {
		t.Fatalf("SRRIP victim = %+v, want line 1", ev)
	}
	// The fresh line entered at RRPV 2; ways 2,3 are at 3. Next victim is
	// way 2 (first distant from way 0), not the new line.
	ev, ok = c.Insert(11*stride, coherence.Shared)
	if !ok || ev.Addr != 2*stride {
		t.Fatalf("second SRRIP victim = %+v, want line 2", ev)
	}
}

// TestBRRIPBimodalInsertion pins the deterministic bimodal trickle:
// fills insert at "distant" (immediately evictable) except every 32nd,
// which inserts at "long" and therefore survives the next conflict.
func TestBRRIPBimodalInsertion(t *testing.T) {
	c := MustNew(Geometry{SizeBytes: 1 * 2 * LineSize, Ways: 2}, PolicyBRRIP)
	stride := uint64(LineSize)
	var evs []uint64
	for i := uint64(0); i < 40; i++ {
		if ev, ok := c.Insert(i*stride, coherence.Shared); ok {
			evs = append(evs, ev.Addr)
		}
	}
	if len(evs) != 38 {
		t.Fatalf("got %d evictions, want 38", len(evs))
	}
	// Fill 32 inserted at "long": it must survive strictly longer than its
	// distant-inserted neighbours. Under pure distant insertion the stream
	// would evict in arrival order; the long line breaks that order.
	inOrder := true
	for i := 1; i < len(evs); i++ {
		if evs[i] < evs[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("BRRIP eviction stream is pure FIFO: bimodal long insertion never engaged")
	}
	// Determinism: the same stream replays identically (counter, not RNG).
	c2 := MustNew(Geometry{SizeBytes: 1 * 2 * LineSize, Ways: 2}, PolicyBRRIP)
	var evs2 []uint64
	for i := uint64(0); i < 40; i++ {
		if ev, ok := c2.Insert(i*stride, coherence.Shared); ok {
			evs2 = append(evs2, ev.Addr)
		}
	}
	for i := range evs {
		if evs[i] != evs2[i] {
			t.Fatal("BRRIP eviction stream not deterministic")
		}
	}
}

func TestPolicyRegistry(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
	}{
		{"", PolicyLRU},
		{"lru", PolicyLRU},
		{"LRU", PolicyLRU},
		{"tree-plru", PolicyTreePLRU},
		{"Tree-PLRU", PolicyTreePLRU},
		{"PLRU", PolicyTreePLRU},
		{"  srrip ", PolicySRRIP},
		{"brrip", PolicyBRRIP},
	}
	for _, tc := range cases {
		got, err := PolicyFor(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("PolicyFor(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := PolicyFor("clock"); err == nil {
		t.Error("PolicyFor accepted unknown policy")
	}
	names := PolicyNames()
	if len(names) != 4 || names[0] != "LRU" {
		t.Errorf("PolicyNames() = %v", names)
	}
	for _, info := range Policies() {
		if info.Policy.String() != info.Name {
			t.Errorf("String() of %v = %q, want %q", info.Policy, info.Policy.String(), info.Name)
		}
	}
}

func TestWayOf(t *testing.T) {
	c := MustNew(Geometry{SizeBytes: 1 * 4 * LineSize, Ways: 4}, PolicyLRU)
	stride := uint64(LineSize)
	for i := uint64(0); i < 3; i++ {
		c.Insert(i*stride, coherence.Shared)
	}
	before := c.Stats
	for i := uint64(0); i < 3; i++ {
		w, ok := c.WayOf(i * stride)
		if !ok || w != int(i) {
			t.Fatalf("WayOf(line %d) = %d, %v", i, w, ok)
		}
	}
	if _, ok := c.WayOf(9 * stride); ok {
		t.Fatal("WayOf hit an absent line")
	}
	if c.Stats != before {
		t.Fatal("WayOf changed stats")
	}
}

// TestSetIndexBoundaries pins the flat-array set mapping at the edges:
// the masked (power-of-two) and modulo (non-power-of-two) paths must agree
// with the reference computation for first/last sets and wrap-around, so a
// refactor of index() cannot silently remap lines.
func TestSetIndexBoundaries(t *testing.T) {
	cases := []struct {
		name string
		geo  Geometry
	}{
		{"pow2-64sets", Geometry{SizeBytes: 64 * 2 * LineSize, Ways: 2}},
		{"nonpow2-12288sets", Geometry{SizeBytes: 12 * 1024 * 1024, Ways: 16}}, // the Xeon LLC
		{"nonpow2-3sets", Geometry{SizeBytes: 3 * 1 * LineSize, Ways: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := MustNew(tc.geo, PolicyLRU)
			sets := uint64(tc.geo.Sets())
			lines := []uint64{
				0,          // first line of set 0
				sets - 1,   // last set
				sets,       // wraps to set 0
				sets + 1,   // wraps to set 1
				2*sets - 1, // last set again
				1<<32 - 1,  // far line number
				1<<40 + 7,  // beyond any physical address in the testbed
			}
			for _, n := range lines {
				addr := n * LineSize
				want := n % sets
				if got := c.SetIndexOf(addr); got != want {
					t.Errorf("SetIndexOf(line %d) = %d, want %d", n, got, want)
				}
				// Sub-line offsets map to the same set.
				if got := c.SetIndexOf(addr + LineSize - 1); got != want {
					t.Errorf("sub-line offset remapped set for line %d", n)
				}
			}
			// A full pass over every set: inserting one line per set fills
			// the cache with no conflicts in either indexing mode.
			c.Clear()
			for s := uint64(0); s < sets; s++ {
				if ev, ok := c.Insert(s*LineSize, coherence.Shared); ok {
					t.Fatalf("set %d conflicted: evicted %+v", s, ev)
				}
			}
			if got := c.ValidLines(); got != int(sets) {
				t.Fatalf("one line per set gave %d valid lines, want %d", got, sets)
			}
		})
	}
}

// TestLRUVictimPrefersInvalidWays pins the devirtualized LRU fast path:
// with a mix of valid and invalid ways, the victim must be an invalid way
// (never displacing live data), and once all ways are valid the oldest
// stamp loses regardless of insertion order.
func TestLRUVictimPrefersInvalidWays(t *testing.T) {
	c := MustNew(Geometry{SizeBytes: 1 * 4 * LineSize, Ways: 4}, PolicyLRU) // 1 set, 4 ways
	stride := uint64(LineSize)
	// Fill ways 0..3.
	for i := uint64(0); i < 4; i++ {
		c.Insert(i*stride, coherence.Shared)
	}
	// Invalidate the middle two ways.
	c.Invalidate(1 * stride)
	c.Invalidate(2 * stride)
	// The next two inserts must reuse the invalid ways: no eviction.
	for _, n := range []uint64{10, 11} {
		if ev, ok := c.Insert(n*stride, coherence.Shared); ok {
			t.Fatalf("insert with invalid ways available evicted %+v", ev)
		}
	}
	// Set is full again; the LRU victim is the oldest surviving line (0).
	ev, ok := c.Insert(12*stride, coherence.Shared)
	if !ok || ev.Addr != 0 {
		t.Fatalf("full-set victim = %+v ok=%v, want line 0", ev, ok)
	}
}

func TestXeonGeometries(t *testing.T) {
	// The testbed's actual cache shapes must validate.
	for _, g := range []Geometry{
		{SizeBytes: 32 * 1024, Ways: 8},         // L1d
		{SizeBytes: 256 * 1024, Ways: 8},        // L2
		{SizeBytes: 12 * 1024 * 1024, Ways: 16}, // LLC
	} {
		if err := g.Validate(); err != nil {
			t.Errorf("Xeon geometry %+v invalid: %v", g, err)
		}
	}
}
