// Package cache implements the set-associative write-back caches of the
// simulated memory hierarchy: private L1/L2 caches per core and the shared
// last-level cache per socket. Lines carry coherence states from the
// coherence package; the machine package wires caches, directory and
// interconnect together.
package cache

import (
	"fmt"

	"coherentleak/internal/coherence"
)

// LineSize is the cache line size in bytes, matching the Xeon X5650.
const LineSize = 64

// LineAddr returns the line-aligned address containing addr.
func LineAddr(addr uint64) uint64 { return addr &^ (LineSize - 1) }

// Geometry describes a cache's shape.
type Geometry struct {
	// SizeBytes is the total capacity. Must be Ways*Sets*LineSize.
	SizeBytes int
	// Ways is the associativity.
	Ways int
}

// Sets returns the number of sets implied by the geometry.
func (g Geometry) Sets() int { return g.SizeBytes / (g.Ways * LineSize) }

// Validate checks the geometry for internal consistency.
func (g Geometry) Validate() error {
	if g.SizeBytes <= 0 || g.Ways <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", g)
	}
	if g.SizeBytes%(g.Ways*LineSize) != 0 {
		return fmt.Errorf("cache: size %d not divisible by ways*linesize", g.SizeBytes)
	}
	if g.Sets() == 0 {
		return fmt.Errorf("cache: zero sets for %+v", g)
	}
	return nil
}

// Line is one cache line's metadata. Data contents are not stored here;
// the simulator tracks contents at the physical-frame level (package mem),
// because the attack depends only on timing, not on data flow through the
// hierarchy.
type Line struct {
	Tag   uint64
	State coherence.State
	// lru is the recency stamp used by the LRU policy.
	lru uint64
}

// Valid reports whether the line holds usable data.
func (l *Line) Valid() bool { return l.State.Valid() }

// Cache is a single set-associative cache array. Line metadata lives in
// per-set slices allocated on first fill: a set probe still walks one
// contiguous run of memory, but constructing a cache costs only the
// set-pointer table. That matters because the harness builds many
// short-lived machines (one per calibration band, per covert session)
// that touch a handful of sets — eagerly zeroing a multi-megabyte LLC
// array for each dominated construction cost.
//
// Replacement metadata lives in flat arrays owned by the cache, indexed
// by set (and way), never in maps keyed by set identity: policy state is
// part of the cache, cannot alias across caches, and costs no per-access
// allocation. The default LRU policy keeps its devirtualized fast path
// (recency stamps on the lines themselves + lruVictim); tree-PLRU and
// the RRIP family are dispatched by a small enum switch.
type Cache struct {
	geo     Geometry
	sets    [][]Line // sets[s] is nil until the first fill touches set s
	ways    int
	policy  Policy
	clock   uint64 // recency counter for LRU stamps
	numSets uint64
	setMask uint64 // numSets-1 when numSets is a power of two
	pow2    bool

	// plruBits[s] is set s's tree-PLRU node-bit word (PolicyTreePLRU
	// only; nil otherwise). Bit k is internal node k of the binary
	// decision tree over the set's ways; set = victim search goes right.
	plruBits []uint64
	// rrpv[s*ways+w] is way w of set s's 2-bit re-reference prediction
	// value (PolicySRRIP/PolicyBRRIP only; nil otherwise).
	rrpv []uint8
	// brripFills counts fills for BRRIP's deterministic bimodal
	// insertion (every brripLongEvery-th fill inserts at "long").
	brripFills uint64

	// Stats accumulates hit/miss/eviction counts.
	Stats Stats
}

// Stats counts cache events.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Fills     uint64
	Flushes   uint64
}

// New returns a cache with the given geometry and replacement policy
// (the Policy zero value is LRU, the historical default). Non-LRU
// policies allocate their flat metadata arrays here, once — nothing on
// the per-access path ever allocates.
func New(geo Geometry, policy Policy) (*Cache, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if err := policy.CheckGeometry(geo); err != nil {
		return nil, err
	}
	sets := geo.Sets()
	c := &Cache{
		geo:     geo,
		sets:    make([][]Line, sets),
		ways:    geo.Ways,
		policy:  policy,
		numSets: uint64(sets),
	}
	switch policy {
	case PolicyTreePLRU:
		c.plruBits = make([]uint64, sets)
	case PolicySRRIP, PolicyBRRIP:
		c.rrpv = make([]uint8, sets*geo.Ways)
	}
	if c.numSets&(c.numSets-1) == 0 {
		c.pow2 = true
		c.setMask = c.numSets - 1
	}
	return c, nil
}

// MustNew is New but panics on configuration error; for static configs.
func MustNew(geo Geometry, policy Policy) *Cache {
	c, err := New(geo, policy)
	if err != nil {
		panic(err)
	}
	return c
}

// Geometry returns the cache's shape.
func (c *Cache) Geometry() Geometry { return c.geo }

// Policy returns the replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// touchSlow updates non-LRU replacement metadata after a hit or re-fill
// of way w in set s. The LRU fast path (recency stamp) is inlined at the
// call sites; this runs only for the enum policies that keep state in
// the flat arrays.
func (c *Cache) touchSlow(s uint64, w int) {
	switch c.policy {
	case PolicyTreePLRU:
		c.plruBits[s] = plruTouch(c.plruBits[s], c.ways, w)
	default: // PolicySRRIP, PolicyBRRIP: a hit predicts near re-reference.
		c.rrpv[s*uint64(c.ways)+uint64(w)] = 0
	}
}

// victimSlow selects a victim way for the enum policies. Invalid ways
// are always preferred, scanning from way 0, matching lruVictim.
func (c *Cache) victimSlow(s uint64, ways []Line) int {
	for i := range ways {
		if !ways[i].Valid() {
			return i
		}
	}
	if c.policy == PolicyTreePLRU {
		return plruVictim(c.plruBits[s], c.ways)
	}
	// RRIP: the victim is the first way (from way 0) at "distant";
	// if none, age every way until one reaches it.
	base := s * uint64(c.ways)
	r := c.rrpv[base : base+uint64(c.ways)]
	for {
		for i, v := range r {
			if v >= maxRRPV {
				return i
			}
		}
		for i := range r {
			r[i]++
		}
	}
}

// fillMeta sets the replacement metadata for a newly filled way.
func (c *Cache) fillMeta(s uint64, w int) {
	switch c.policy {
	case PolicyTreePLRU:
		c.plruBits[s] = plruTouch(c.plruBits[s], c.ways, w)
	default: // PolicySRRIP, PolicyBRRIP
		ins := uint8(srripInsertRRPV)
		if c.policy == PolicyBRRIP {
			c.brripFills++
			if c.brripFills%brripLongEvery != 0 {
				ins = maxRRPV
			}
		}
		c.rrpv[s*uint64(c.ways)+uint64(w)] = ins
	}
}

// index maps a line address to (set, tag). The tag is the full line
// number, which keeps reconstruction trivial and supports set counts that
// are not powers of two (the 12288-set Xeon LLC).
func (c *Cache) index(line uint64) (set uint64, tag uint64) {
	n := line / LineSize
	if c.pow2 {
		return n & c.setMask, n
	}
	return n % c.numSets, n
}

// set returns the ways of set s, or nil when the set was never filled.
func (c *Cache) set(s uint64) []Line {
	return c.sets[s]
}

// setMake returns the ways of set s, allocating them on first use.
func (c *Cache) setMake(s uint64) []Line {
	ws := c.sets[s]
	if ws == nil {
		ws = make([]Line, c.ways)
		c.sets[s] = ws
	}
	return ws
}

// Probe returns the line's state without updating recency, or Invalid if
// absent. It is the side-effect-free observer used by tests and defenses.
func (c *Cache) Probe(addr uint64) coherence.State {
	set, tag := c.index(LineAddr(addr))
	ways := c.set(set)
	for i := range ways {
		l := &ways[i]
		if l.Valid() && l.Tag == tag {
			return l.State
		}
	}
	return coherence.Invalid
}

// Contains reports whether addr's line is present and valid.
func (c *Cache) Contains(addr uint64) bool { return c.Probe(addr).Valid() }

// Lookup finds addr's line, updating recency and hit/miss stats. It
// returns the line for in-place state manipulation, or nil on miss.
func (c *Cache) Lookup(addr uint64) *Line {
	set, tag := c.index(LineAddr(addr))
	ways := c.set(set)
	for i := range ways {
		l := &ways[i]
		if l.Valid() && l.Tag == tag {
			c.clock++
			l.lru = c.clock
			if c.policy != PolicyLRU {
				c.touchSlow(set, i)
			}
			c.Stats.Hits++
			return l
		}
	}
	c.Stats.Misses++
	return nil
}

// Evicted describes a line displaced by Insert.
type Evicted struct {
	Addr  uint64
	State coherence.State
}

// Insert fills addr's line in state, evicting a victim if the set is
// full. It returns the evicted line's identity so the caller can run the
// coherence eviction transaction (write-back, directory update,
// back-invalidation for inclusive caches). ok is false when nothing valid
// was displaced.
func (c *Cache) Insert(addr uint64, state coherence.State) (ev Evicted, ok bool) {
	if !state.Valid() {
		panic("cache: Insert with Invalid state")
	}
	line := LineAddr(addr)
	set, tag := c.index(line)
	ways := c.setMake(set)

	// Re-fill of a present line just updates state.
	for i := range ways {
		l := &ways[i]
		if l.Valid() && l.Tag == tag {
			l.State = state
			c.clock++
			l.lru = c.clock
			if c.policy != PolicyLRU {
				c.touchSlow(set, i)
			}
			return Evicted{}, false
		}
	}

	var w int
	if c.policy == PolicyLRU {
		w = lruVictim(ways)
	} else {
		w = c.victimSlow(set, ways)
	}
	victim := &ways[w]
	if victim.Valid() {
		ev = Evicted{Addr: c.addrOf(set, victim.Tag), State: victim.State}
		ok = true
		c.Stats.Evictions++
	}
	c.clock++
	*victim = Line{Tag: tag, State: state, lru: c.clock}
	if c.policy != PolicyLRU {
		c.fillMeta(set, w)
	}
	c.Stats.Fills++
	return ev, ok
}

// InsertAbsent is Insert for callers that have already proven the line is
// not present (a preceding Lookup or Probe missed): it skips the re-fill
// scan and goes straight to victim selection. Behavior is otherwise
// identical to Insert; calling it with a present line would duplicate the
// tag within the set, so the proof is the caller's obligation.
func (c *Cache) InsertAbsent(addr uint64, state coherence.State) (ev Evicted, ok bool) {
	if !state.Valid() {
		panic("cache: InsertAbsent with Invalid state")
	}
	line := LineAddr(addr)
	set, tag := c.index(line)
	ways := c.setMake(set)

	var w int
	if c.policy == PolicyLRU {
		w = lruVictim(ways)
	} else {
		w = c.victimSlow(set, ways)
	}
	victim := &ways[w]
	if victim.Valid() {
		ev = Evicted{Addr: c.addrOf(set, victim.Tag), State: victim.State}
		ok = true
		c.Stats.Evictions++
	}
	c.clock++
	*victim = Line{Tag: tag, State: state, lru: c.clock}
	if c.policy != PolicyLRU {
		c.fillMeta(set, w)
	}
	c.Stats.Fills++
	return ev, ok
}

// addrOf reconstructs a line address from its tag (the full line number).
func (c *Cache) addrOf(set, tag uint64) uint64 {
	_ = set
	return tag * LineSize
}

// SetState changes the state of a present line; it reports whether the
// line was present. SetState(addr, Invalid) invalidates without write-back
// bookkeeping — callers decide what to do with dirty data first (Probe).
func (c *Cache) SetState(addr uint64, state coherence.State) bool {
	set, tag := c.index(LineAddr(addr))
	ways := c.set(set)
	for i := range ways {
		l := &ways[i]
		if l.Valid() && l.Tag == tag {
			if state == coherence.Invalid {
				*l = Line{}
				c.Stats.Flushes++
			} else {
				l.State = state
			}
			return true
		}
	}
	return false
}

// Invalidate removes addr's line, returning its prior state.
func (c *Cache) Invalidate(addr uint64) coherence.State {
	set, tag := c.index(LineAddr(addr))
	ways := c.set(set)
	for i := range ways {
		l := &ways[i]
		if l.Valid() && l.Tag == tag {
			prior := l.State
			*l = Line{}
			c.Stats.Flushes++
			return prior
		}
	}
	return coherence.Invalid
}

// SetAddrs returns every distinct line address that maps to the same set
// as addr, among the currently valid lines. Used by eviction-based
// flushing (the paper's "eviction of all the ways in the set" [12]).
func (c *Cache) SetAddrs(addr uint64) []uint64 {
	set, _ := c.index(LineAddr(addr))
	ways := c.set(set)
	var out []uint64
	for i := range ways {
		l := &ways[i]
		if l.Valid() {
			out = append(out, c.addrOf(set, l.Tag))
		}
	}
	return out
}

// ValidLines returns the number of valid lines across all sets.
func (c *Cache) ValidLines() int {
	n := 0
	for _, ways := range c.sets {
		for i := range ways {
			if ways[i].Valid() {
				n++
			}
		}
	}
	return n
}

// ForEachValid calls fn for every valid line in deterministic set-major
// way order, with the line's address and coherence state. It is the
// snapshot primitive behind the differential-test state digest.
func (c *Cache) ForEachValid(fn func(addr uint64, st coherence.State)) {
	for s, ways := range c.sets {
		for i := range ways {
			l := &ways[i]
			if l.Valid() {
				fn(c.addrOf(uint64(s), l.Tag), l.State)
			}
		}
	}
}

// Clear invalidates the whole cache (test helper / machine reset),
// including all replacement metadata.
func (c *Cache) Clear() {
	clear(c.sets)
	clear(c.plruBits)
	clear(c.rrpv)
	c.brripFills = 0
}

// SetIndexOf exposes the set index for addr (for conflict-set workload
// construction in tests and the noise generator).
func (c *Cache) SetIndexOf(addr uint64) uint64 {
	set, _ := c.index(LineAddr(addr))
	return set
}

// WayOf returns the way index currently holding addr's line, without
// touching recency or stats. Like SetIndexOf, this is a ground-truth
// accessor for conflict-set construction: the simulator exposes its
// known placement directly, where on real hardware an attacker would
// recover way occupancy with timing-based group testing.
func (c *Cache) WayOf(addr uint64) (int, bool) {
	set, tag := c.index(LineAddr(addr))
	ways := c.set(set)
	for i := range ways {
		l := &ways[i]
		if l.Valid() && l.Tag == tag {
			return i, true
		}
	}
	return 0, false
}
