// Package stats provides the small statistical toolkit the experiments
// use: summaries, percentiles, empirical CDFs, histograms, and the
// latency-band calibration used by the spy to classify timed loads.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of latency (or any scalar) values.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P5     float64
	P95    float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(sq / float64(s.N-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Percentile(sorted, 50)
	s.P5 = Percentile(sorted, 5)
	s.P95 = Percentile(sorted, 95)
	return s
}

// Percentile returns the p-th percentile (0..100) of sorted (ascending)
// data, with linear interpolation.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	pos := p / 100 * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // cumulative probability in (0, 1]
}

// CDF returns the empirical cumulative distribution of xs, one point per
// distinct value — the form of the paper's Figure 2.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var out []CDFPoint
	n := float64(len(sorted))
	for i := 0; i < len(sorted); i++ {
		// Emit at the last occurrence of each distinct value.
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		out = append(out, CDFPoint{X: sorted[i], P: float64(i+1) / n})
	}
	return out
}

// Histogram bins xs into equal-width buckets over [lo, hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	// Under and Over count out-of-range samples.
	Under, Over int
}

// NewHistogram builds a histogram with bins buckets.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: bad histogram range [%v,%v)/%d", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of in-range samples.
func (h *Histogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Mode returns the center of the fullest bucket.
func (h *Histogram) Mode() float64 {
	best, bi := -1, 0
	for i, c := range h.Counts {
		if c > best {
			best, bi = c, i
		}
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(bi)+0.5)*w
}

// Band is a calibrated latency interval [Lo, Hi] with its center. The spy
// classifies timed loads by band membership (the Tc / Tb values of
// Algorithms 1 and 2).
type Band struct {
	Name   string
	Lo, Hi float64
	Center float64
}

// Contains reports whether x falls inside the band.
func (b Band) Contains(x float64) bool { return x >= b.Lo && x <= b.Hi }

// Overlaps reports whether two bands intersect.
func (b Band) Overlaps(o Band) bool { return b.Lo <= o.Hi && o.Lo <= b.Hi }

func (b Band) String() string {
	return fmt.Sprintf("%s[%.0f..%.0f]", b.Name, b.Lo, b.Hi)
}

// CalibrateBand builds a Band from a calibration sample, widening the
// observed range by margin on each side.
func CalibrateBand(name string, xs []float64, margin float64) Band {
	s := Summarize(xs)
	return Band{Name: name, Lo: s.Min - margin, Hi: s.Max + margin, Center: s.Mean}
}

// Separation returns the gap between two non-overlapping bands (negative
// if they overlap) — the channel-quality metric behind the Figure 8
// robustness ordering.
func Separation(a, b Band) float64 {
	if a.Lo > b.Lo {
		a, b = b, a
	}
	return b.Lo - a.Hi
}

// Accuracy returns alignment-aware symbol accuracy: 1 minus the
// Levenshtein distance between want and got over the longer length. The
// paper's raw-bit error model has three components — lost bits, extra
// (duplicated) bits, and flipped bits (§VIII-B) — which map exactly onto
// edit-distance deletions, insertions and substitutions, so a single lost
// bit costs one error rather than desynchronizing every later position.
func Accuracy(want, got []byte) float64 {
	n := len(want)
	if len(got) > n {
		n = len(got)
	}
	if n == 0 {
		return 1
	}
	return 1 - float64(EditDistance(want, got))/float64(n)
}

// EditDistance returns the Levenshtein distance between two symbol
// sequences (unit costs).
func EditDistance(a, b []byte) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitute
			if d := prev[j] + 1; d < m { // delete
				m = d
			}
			if d := cur[j-1] + 1; d < m { // insert
				m = d
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// PositionalAccuracy returns the fraction of positions where got matches
// want with no alignment; surplus or missing symbols count as errors
// against the longer length.
func PositionalAccuracy(want, got []byte) float64 {
	n := len(want)
	if len(got) > n {
		n = len(got)
	}
	if n == 0 {
		return 1
	}
	match := 0
	for i := 0; i < len(want) && i < len(got); i++ {
		if want[i] == got[i] {
			match++
		}
	}
	return float64(match) / float64(n)
}

// Kbps converts a bit count and a duration in seconds to kilobits/second
// (decimal kilo, as the paper reports).
func Kbps(bits int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bits) / seconds / 1e3
}
