package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !almost(s.Mean, 3) || !almost(s.Min, 1) || !almost(s.Max, 5) || !almost(s.Median, 3) {
		t.Fatalf("summary = %+v", s)
	}
	if !almost(s.Std, math.Sqrt(2.5)) {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty summary has N != 0")
	}
	s := Summarize([]float64{7})
	if s.N != 1 || !almost(s.Mean, 7) || s.Std != 0 || !almost(s.Median, 7) {
		t.Fatalf("singleton summary = %+v", s)
	}
}

func TestPercentileEdges(t *testing.T) {
	data := []float64{10, 20, 30, 40}
	if !almost(Percentile(data, 0), 10) || !almost(Percentile(data, 100), 40) {
		t.Fatal("extreme percentiles wrong")
	}
	if !almost(Percentile(data, 50), 25) {
		t.Fatalf("median = %v", Percentile(data, 50))
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile not 0")
	}
}

func TestCDFShape(t *testing.T) {
	pts := CDF([]float64{3, 1, 2, 2})
	if len(pts) != 3 {
		t.Fatalf("CDF points = %v", pts)
	}
	if !almost(pts[0].X, 1) || !almost(pts[0].P, 0.25) {
		t.Fatalf("first point %+v", pts[0])
	}
	if !almost(pts[1].X, 2) || !almost(pts[1].P, 0.75) {
		t.Fatalf("second point %+v", pts[1])
	}
	if !almost(pts[2].P, 1) {
		t.Fatal("CDF does not reach 1")
	}
	if CDF(nil) != nil {
		t.Fatal("empty CDF not nil")
	}
}

// Property: CDF is monotone in both coordinates and ends at P=1.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		pts := CDF(xs)
		for i := 1; i < len(pts); i++ {
			if pts[i].X <= pts[i-1].X || pts[i].P <= pts[i-1].P {
				return false
			}
		}
		return almost(pts[len(pts)-1].P, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for _, x := range []float64{5, 15, 15, 95, -1, 100, 250} {
		h.Add(x)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[9] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Total() != 4 {
		t.Fatalf("total = %d", h.Total())
	}
	if !almost(h.Mode(), 15) {
		t.Fatalf("mode = %v", h.Mode())
	}
}

func TestHistogramPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad histogram accepted")
		}
	}()
	NewHistogram(10, 10, 5)
}

func TestBandContainsOverlaps(t *testing.T) {
	a := Band{Name: "a", Lo: 90, Hi: 110}
	b := Band{Name: "b", Lo: 111, Hi: 140}
	if !a.Contains(90) || !a.Contains(110) || a.Contains(111) {
		t.Fatal("Contains wrong")
	}
	if a.Overlaps(b) || b.Overlaps(a) {
		t.Fatal("disjoint bands overlap")
	}
	c := Band{Lo: 100, Hi: 120}
	if !a.Overlaps(c) || !c.Overlaps(a) {
		t.Fatal("intersecting bands do not overlap")
	}
	if a.String() == "" {
		t.Fatal("empty band string")
	}
}

func TestCalibrateBand(t *testing.T) {
	b := CalibrateBand("x", []float64{95, 100, 105}, 3)
	if !almost(b.Lo, 92) || !almost(b.Hi, 108) || !almost(b.Center, 100) {
		t.Fatalf("band = %+v", b)
	}
}

func TestSeparation(t *testing.T) {
	a := Band{Lo: 90, Hi: 110}
	b := Band{Lo: 130, Hi: 150}
	if !almost(Separation(a, b), 20) || !almost(Separation(b, a), 20) {
		t.Fatal("separation wrong")
	}
	c := Band{Lo: 100, Hi: 120}
	if Separation(a, c) >= 0 {
		t.Fatal("overlapping bands have non-negative separation")
	}
}

func TestAccuracy(t *testing.T) {
	if !almost(Accuracy([]byte{1, 0, 1}, []byte{1, 0, 1}), 1) {
		t.Fatal("perfect accuracy != 1")
	}
	if !almost(Accuracy([]byte{1, 0, 1, 1}, []byte{1, 1, 1, 1}), 0.75) {
		t.Fatal("one flip in four != 0.75")
	}
	// Lost bits penalize against the longer (transmitted) length.
	if !almost(Accuracy([]byte{1, 0, 1, 1}, []byte{1, 0}), 0.5) {
		t.Fatal("lost bits not penalized")
	}
	// Duplicated bits penalize too.
	if !almost(Accuracy([]byte{1, 0}, []byte{1, 0, 0, 0}), 0.5) {
		t.Fatal("extra bits not penalized")
	}
	if !almost(Accuracy(nil, nil), 1) {
		t.Fatal("empty vs empty != 1")
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b []byte
		want int
	}{
		{nil, nil, 0},
		{[]byte{1}, nil, 1},
		{nil, []byte{1, 0}, 2},
		{[]byte{1, 0, 1}, []byte{1, 0, 1}, 0},
		{[]byte{1, 0, 1}, []byte{1, 1, 1}, 1},
		{[]byte{1, 0, 1, 0}, []byte{1, 1, 0}, 1}, // delete the first 0
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// A single lost bit early in a long stream must cost ~one error, not
// desynchronize every later position.
func TestAccuracyRobustToShift(t *testing.T) {
	want := make([]byte, 100)
	for i := range want {
		want[i] = byte(i % 2)
	}
	got := append([]byte(nil), want[1:]...) // first bit lost
	if a := Accuracy(want, got); a < 0.98 {
		t.Fatalf("one lost bit -> accuracy %v, want ~0.99", a)
	}
	if a := PositionalAccuracy(want, got); a > 0.1 {
		t.Fatalf("positional accuracy should collapse on shift, got %v", a)
	}
}

func TestKbps(t *testing.T) {
	if !almost(Kbps(700_000, 1.0), 700) {
		t.Fatal("700k bits in 1s != 700 Kbps")
	}
	if Kbps(100, 0) != 0 {
		t.Fatal("zero duration not guarded")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint8, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		sort.Float64s(xs)
		a, b := float64(p1%101), float64(p2%101)
		if a > b {
			a, b = b, a
		}
		va, vb := Percentile(xs, a), Percentile(xs, b)
		return va <= vb && va >= xs[0] && vb <= xs[len(xs)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
