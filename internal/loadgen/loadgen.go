// Package loadgen is the capacity harness for the cohsimd daemon: it
// replays realistic job mixes from N concurrent tenants over the HTTP
// API and reports per-tenant throughput, latency percentiles, 429
// rates and cache-hit ratios. cmd/loadgen wraps it in a binary that
// sweeps concurrency levels into a jobs/sec-vs-concurrency curve
// (BENCH_9.json); the loadgen-smoke CI target runs it short against an
// in-process daemon to pin fair-share and cache behavior.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Mix names a per-tenant workload shape.
type Mix string

const (
	// MixHot resubmits one identical job forever: after the first
	// execution every cell is a cache hit, the daemon's best case.
	MixHot Mix = "hot"
	// MixCold submits a fresh seed every time — every job executes all
	// of its cells, the sweep-like worst case for the cache.
	MixCold Mix = "cold"
	// MixLongtail cycles a small set of machine-config overrides, the
	// "mostly-warm with occasional new config" middle ground.
	MixLongtail Mix = "longtail"
)

// longtailConfigs is the config-override rotation MixLongtail cycles
// through (valid machine.Config latency overrides).
var longtailConfigs = []string{
	`{"Latencies":{"QPI":55}}`,
	`{"Latencies":{"QPI":60}}`,
	`{"Latencies":{"QPI":65}}`,
	`{"Latencies":{"QPI":70}}`,
}

// Tenant is one simulated principal driving load.
type Tenant struct {
	// Name labels the tenant in the report.
	Name string `json:"name"`
	// Key is the bearer key sent on every request; empty sends no
	// Authorization header (anonymous-mode daemons).
	Key string `json:"-"`
	// Mix selects the tenant's workload shape.
	Mix Mix `json:"mix"`
	// Seed is the hot mix's fixed seed (and the cold mix's base); give
	// tenants distinct seeds so their hot sets do not collide.
	Seed uint64 `json:"seed"`
}

// Options configures one loadgen run.
type Options struct {
	// BaseURL is the daemon root, e.g. http://localhost:8080.
	BaseURL string
	// Tenants drive load concurrently; at least one is required.
	Tenants []Tenant
	// Concurrency is the closed-loop worker count per tenant; <=0
	// means 1.
	Concurrency int
	// Duration bounds the run; <=0 means 5s.
	Duration time.Duration
	// Artifact is the submitted artifact; empty means "table1".
	Artifact string
	// Sizing is the submitted sizing; empty means "quick".
	Sizing string
	// MaxBackoff caps how long a worker honors a 429's Retry-After
	// before resubmitting; <=0 means 1s.
	MaxBackoff time.Duration
	// PollInterval spaces job-status polls; <=0 means 10ms.
	PollInterval time.Duration
	// Client issues the HTTP requests; nil uses a dedicated client.
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.Concurrency <= 0 {
		o.Concurrency = 1
	}
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.Artifact == "" {
		o.Artifact = "table1"
	}
	if o.Sizing == "" {
		o.Sizing = "quick"
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = time.Second
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 10 * time.Millisecond
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 2 * time.Minute}
	}
	return o
}

// TenantReport aggregates one tenant's measurements.
type TenantReport struct {
	Tenant      string  `json:"tenant"`
	Mix         Mix     `json:"mix"`
	Submitted   int     `json:"submitted"`
	Completed   int     `json:"completed"`
	Failed      int     `json:"failed"`
	Rejected429 int     `json:"rejected429"`
	JobsPerSec  float64 `json:"jobsPerSec"`
	// Latency percentiles cover submit-to-terminal wall time of
	// completed jobs, in milliseconds.
	LatencyP50Millis float64 `json:"latencyP50Millis"`
	LatencyP90Millis float64 `json:"latencyP90Millis"`
	LatencyP99Millis float64 `json:"latencyP99Millis"`
	CellsExecuted    int     `json:"cellsExecuted"`
	CellsCached      int     `json:"cellsCached"`
	// CacheHitRatio is cached cells over completed (non-failed) cells
	// across the tenant's jobs.
	CacheHitRatio float64 `json:"cacheHitRatio"`
}

// Report is one loadgen run's result.
type Report struct {
	DurationSeconds float64        `json:"durationSeconds"`
	Concurrency     int            `json:"concurrency"`
	JobsPerSec      float64        `json:"jobsPerSec"`
	Tenants         []TenantReport `json:"tenants"`
}

// tenantStats collects one tenant's counters across its workers.
type tenantStats struct {
	mu          sync.Mutex
	submitted   int
	completed   int
	failed      int
	rejected429 int
	executed    int
	cached      int
	latencies   []float64 // ms, completed jobs only
	coldSeq     uint64    // next unique seed for MixCold
	tailSeq     int       // next config index for MixLongtail
}

// jobView is the slice of the daemon's job view loadgen reads.
type jobView struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error"`
	Cells struct {
		Executed int `json:"executed"`
		Cached   int `json:"cached"`
		Failed   int `json:"failed"`
	} `json:"cells"`
}

// Run drives the configured mixes until Duration elapses (or ctx
// cancels) and aggregates the per-tenant report. Jobs in flight at the
// deadline are abandoned, not counted.
func Run(ctx context.Context, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if opts.BaseURL == "" {
		return nil, errors.New("loadgen: Options.BaseURL is required")
	}
	if len(opts.Tenants) == 0 {
		return nil, errors.New("loadgen: at least one tenant is required")
	}

	runCtx, cancel := context.WithTimeout(ctx, opts.Duration)
	defer cancel()
	start := time.Now()

	stats := make([]*tenantStats, len(opts.Tenants))
	var wg sync.WaitGroup
	for i, tn := range opts.Tenants {
		st := &tenantStats{coldSeq: tn.Seed}
		stats[i] = st
		for w := 0; w < opts.Concurrency; w++ {
			wg.Add(1)
			go func(tn Tenant) {
				defer wg.Done()
				worker(runCtx, opts, tn, st)
			}(tn)
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rep := &Report{DurationSeconds: elapsed, Concurrency: opts.Concurrency}
	for i, tn := range opts.Tenants {
		st := stats[i]
		tr := TenantReport{
			Tenant:        tn.Name,
			Mix:           tn.Mix,
			Submitted:     st.submitted,
			Completed:     st.completed,
			Failed:        st.failed,
			Rejected429:   st.rejected429,
			JobsPerSec:    float64(st.completed) / elapsed,
			CellsExecuted: st.executed,
			CellsCached:   st.cached,
		}
		sort.Float64s(st.latencies)
		tr.LatencyP50Millis = percentile(st.latencies, 50)
		tr.LatencyP90Millis = percentile(st.latencies, 90)
		tr.LatencyP99Millis = percentile(st.latencies, 99)
		if n := st.executed + st.cached; n > 0 {
			tr.CacheHitRatio = float64(st.cached) / float64(n)
		}
		rep.JobsPerSec += tr.JobsPerSec
		rep.Tenants = append(rep.Tenants, tr)
	}
	return rep, nil
}

// percentile is nearest-rank over an ascending-sorted sample (0 when
// empty).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// worker runs one closed loop: build a request for the tenant's mix,
// submit, follow the job to a terminal state, record, repeat.
func worker(ctx context.Context, opts Options, tn Tenant, st *tenantStats) {
	for ctx.Err() == nil {
		body := st.nextRequest(opts, tn)
		submitAt := time.Now()
		id, status, retryAfter, err := submit(ctx, opts, tn, body)
		switch {
		case err != nil:
			return // context expired mid-request
		case status == http.StatusTooManyRequests:
			st.mu.Lock()
			st.rejected429++
			st.mu.Unlock()
			backoff := retryAfter
			if backoff <= 0 || backoff > opts.MaxBackoff {
				backoff = opts.MaxBackoff
			}
			sleep(ctx, backoff)
			continue
		case status != http.StatusAccepted:
			st.mu.Lock()
			st.failed++
			st.mu.Unlock()
			sleep(ctx, opts.MaxBackoff) // do not hot-loop on a broken request
			continue
		}
		st.mu.Lock()
		st.submitted++
		st.mu.Unlock()

		v, ok := follow(ctx, opts, tn, id)
		if !ok {
			return // deadline hit while the job ran; abandon it
		}
		st.mu.Lock()
		if v.State == "done" {
			st.completed++
			st.latencies = append(st.latencies, float64(time.Since(submitAt))/float64(time.Millisecond))
			st.executed += v.Cells.Executed
			st.cached += v.Cells.Cached
		} else {
			st.failed++
		}
		st.mu.Unlock()
	}
}

// nextRequest renders the tenant's next submit body for its mix.
func (st *tenantStats) nextRequest(opts Options, tn Tenant) string {
	switch tn.Mix {
	case MixCold:
		st.mu.Lock()
		seed := st.coldSeq
		st.coldSeq++
		st.mu.Unlock()
		return fmt.Sprintf(`{"artifacts":[%q],"sizing":%q,"seed":%d}`, opts.Artifact, opts.Sizing, seed)
	case MixLongtail:
		st.mu.Lock()
		cfg := longtailConfigs[st.tailSeq%len(longtailConfigs)]
		st.tailSeq++
		st.mu.Unlock()
		return fmt.Sprintf(`{"artifacts":[%q],"sizing":%q,"seed":%d,"config":%s}`, opts.Artifact, opts.Sizing, tn.Seed, cfg)
	default: // MixHot
		return fmt.Sprintf(`{"artifacts":[%q],"sizing":%q,"seed":%d}`, opts.Artifact, opts.Sizing, tn.Seed)
	}
}

// submit POSTs one job. It returns the job ID on 202, and the parsed
// Retry-After on 429.
func submit(ctx context.Context, opts Options, tn Tenant, body string) (id string, status int, retryAfter time.Duration, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, opts.BaseURL+"/v1/jobs", bytes.NewReader([]byte(body)))
	if err != nil {
		return "", 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tn.Key != "" {
		req.Header.Set("Authorization", "Bearer "+tn.Key)
	}
	resp, err := opts.Client.Do(req)
	if err != nil {
		return "", 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil {
			retryAfter = time.Duration(secs) * time.Second
		}
		io.Copy(io.Discard, resp.Body)
		return "", resp.StatusCode, retryAfter, nil
	}
	if resp.StatusCode != http.StatusAccepted {
		io.Copy(io.Discard, resp.Body)
		return "", resp.StatusCode, 0, nil
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return "", resp.StatusCode, 0, err
	}
	return v.ID, resp.StatusCode, 0, nil
}

// follow polls one job until it reaches a terminal state. ok=false
// means the run deadline expired first.
func follow(ctx context.Context, opts Options, tn Tenant, id string) (jobView, bool) {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, opts.BaseURL+"/v1/jobs/"+id, nil)
		if err != nil {
			return jobView{}, false
		}
		if tn.Key != "" {
			req.Header.Set("Authorization", "Bearer "+tn.Key)
		}
		resp, err := opts.Client.Do(req)
		if err != nil {
			return jobView{}, false
		}
		var v jobView
		decErr := json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if decErr == nil && resp.StatusCode == http.StatusOK {
			switch v.State {
			case "done", "failed", "cancelled":
				return v, true
			}
		}
		if !sleep(ctx, opts.PollInterval) {
			return jobView{}, false
		}
	}
}

// sleep waits d or until ctx cancels; it reports whether the full wait
// elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
