package loadgen

import "testing"

func TestPercentileNearestRank(t *testing.T) {
	cases := []struct {
		name   string
		sorted []float64
		p      float64
		want   float64
	}{
		{"empty", nil, 50, 0},
		{"single", []float64{7}, 99, 7},
		{"p50 of 4", []float64{1, 2, 3, 4}, 50, 2},
		{"p90 of 10", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 90, 9},
		{"p99 of 10", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 99, 10},
		{"p100", []float64{1, 2, 3}, 100, 3},
	}
	for _, c := range cases {
		if got := percentile(c.sorted, c.p); got != c.want {
			t.Errorf("%s: percentile(%v, %v) = %v, want %v", c.name, c.sorted, c.p, got, c.want)
		}
	}
}
