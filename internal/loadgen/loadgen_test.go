package loadgen_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"coherentleak/internal/dispatch"
	"coherentleak/internal/experiments"
	"coherentleak/internal/harness"
	"coherentleak/internal/loadgen"
	"coherentleak/internal/machine"
	"coherentleak/internal/service"
	"coherentleak/internal/tenant"
)

// TestLoadgenSmoke is the CI capacity check (make loadgen-smoke): two
// equal-weight authenticated tenants replay the hot mix against a
// daemon with two dispatch workers attached. The run must show fair
// sharing (neither tenant starved) and a >90% cache-hit ratio — the
// hot mix resubmits one identical job, so after the first execution
// every cell is a manifest hit.
func TestLoadgenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("loadgen smoke needs a multi-second measured run")
	}
	reg, err := tenant.New([]*tenant.Tenant{
		{Name: "alice", Key: "alice-key-123456", Weight: 1},
		{Name: "bob", Key: "bob-key-1234567", Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := machine.DefaultConfig()
	svc, err := service.New(service.Options{
		Registry:    experiments.Artifacts(),
		BaseConfig:  &base,
		Executors:   2,
		QueueDepth:  64,
		DefaultSeed: experiments.DefaultSeed,
		Tenants:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
		ts.Close()
	})
	attachWorker(t, ts, "w1", experiments.Artifacts())
	attachWorker(t, ts, "w2", experiments.Artifacts())

	rep, err := loadgen.Run(context.Background(), loadgen.Options{
		BaseURL: ts.URL,
		Tenants: []loadgen.Tenant{
			{Name: "alice", Key: "alice-key-123456", Mix: loadgen.MixHot, Seed: 1},
			{Name: "bob", Key: "bob-key-1234567", Mix: loadgen.MixHot, Seed: 2},
		},
		Concurrency:  2,
		Duration:     4 * time.Second,
		Artifact:     "table1",
		Sizing:       "quick",
		PollInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	total := 0
	for _, tr := range rep.Tenants {
		total += tr.Completed
		if tr.Failed > 0 {
			t.Errorf("tenant %s: %d failed jobs", tr.Tenant, tr.Failed)
		}
	}
	if total < 8 {
		t.Fatalf("only %d jobs completed across both tenants; run too slow to measure", total)
	}
	for _, tr := range rep.Tenants {
		// Equal weights: each tenant owns ~half the throughput. A quarter
		// is the starvation line — generous enough for scheduling noise,
		// far above what a head-of-line-blocked tenant would see.
		if share := float64(tr.Completed) / float64(total); share < 0.25 {
			t.Errorf("tenant %s completed %d/%d jobs (share %.2f < 0.25): not a fair split",
				tr.Tenant, tr.Completed, total, share)
		}
		if tr.CacheHitRatio <= 0.9 {
			t.Errorf("tenant %s hot-mix cache-hit ratio %.2f (executed %d, cached %d); want > 0.9",
				tr.Tenant, tr.CacheHitRatio, tr.CellsExecuted, tr.CellsCached)
		}
		if tr.LatencyP50Millis <= 0 || tr.LatencyP99Millis < tr.LatencyP50Millis {
			t.Errorf("tenant %s latency percentiles inconsistent: p50=%.2fms p99=%.2fms",
				tr.Tenant, tr.LatencyP50Millis, tr.LatencyP99Millis)
		}
	}
	if rep.JobsPerSec <= 0 {
		t.Errorf("aggregate jobs/sec = %.2f; want > 0", rep.JobsPerSec)
	}
}

// attachWorker runs one dispatch.Worker against the test server until
// cleanup (same shape as the service package's dispatch tests).
func attachWorker(t *testing.T, ts *httptest.Server, name string, reg *harness.Registry) {
	t.Helper()
	w, err := dispatch.NewWorker(dispatch.WorkerOptions{
		Server:   ts.URL,
		Name:     name,
		Registry: reg,
		PollWait: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Errorf("worker %s never exited", name)
		}
	})
}
