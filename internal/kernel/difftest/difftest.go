// Package difftest is the differential-correctness harness for the two
// access-stream kernels: it generates seeded random multi-thread traces,
// executes each trace once under the interpreted kernel and once under
// the compiled kernel, and asserts that the two runs are indistinguishable
// — identical per-access virtual times, identical machine state digest
// (which covers every cache line, directory record, per-line bookkeeping
// and the access statistics), and conserved operation counts. A failing
// trace can be shrunk to a minimal reproduction.
//
// The generated traces deliberately cover the compiled kernel's proof
// obligations: multi-page address pools (TLB and set-conflict pressure),
// shared read-only pages whose stores must take the COW faulting path
// (per-op fallback), mid-trace mmaps that bump the mapping epoch (stale
// translation re-resolution), zero-think operations (unfused advances),
// and multiple threads on distinct cores whose interleaving the fused
// advance must not perturb.
package difftest

import (
	"fmt"
	"math/rand"

	"coherentleak/internal/coherence"
	"coherentleak/internal/kernel"
	"coherentleak/internal/machine"
	"coherentleak/internal/sim"
)

// Op is one trace event of a thread.
type Op struct {
	// Grow, when set, is an untimed one-page Mmap by the thread's process
	// (a mapping-epoch bump); the access fields are ignored.
	Grow bool
	// Kind is the access type for non-Grow ops.
	Kind kernel.OpKind
	// Page indexes the thread's address pool: 0..Private-1 are the
	// process's private pages, Private..Private+Shared-1 the read-only
	// pages shared by every process.
	Page int
	// Off is the byte offset within the page (8-aligned).
	Off uint64
	// Think is the non-memory work after the access.
	Think sim.Cycles
}

// ThreadTrace is one thread's schedule.
type ThreadTrace struct {
	// Proc selects the owning process.
	Proc int
	// Core is the pinned global core; distinct per thread.
	Core int
	// Ops is the operation list.
	Ops []Op
	// Seg partitions Ops into the programs handed to Exec: segment i
	// covers Seg[i] consecutive ops. Grow ops always sit alone in a
	// segment. Sum(Seg) == len(Ops).
	Seg []int
}

// Trace is a complete differential test case.
type Trace struct {
	Seed     uint64
	Protocol coherence.Protocol
	// Prefetch enables the next-line prefetcher; Notify the E->M
	// LLC-notification mitigation (which flips the machine's llcTrust
	// path selection).
	Prefetch bool
	Notify   bool
	// Replacement selects the cache replacement policy by registry name
	// (empty = LRU). Both kernels run under the same policy; the
	// compiled kernel's service-path memo is policy-independent (victim
	// selection happens inside cache.Insert, shared by both paths), and
	// the corpus over every protocol × policy combination is what proves
	// that claim holds.
	Replacement string
	Procs       int
	Private     int // private pages per process
	Shared      int // read-only pages shared by all processes
	Threads     []ThreadTrace
}

// ops returns the total access-op count (Grow excluded).
func (tr *Trace) ops() uint64 {
	var n uint64
	for _, th := range tr.Threads {
		for _, op := range th.Ops {
			if !op.Grow {
				n++
			}
		}
	}
	return n
}

// clone deep-copies the trace so shrink candidates can be edited freely.
func (tr Trace) clone() Trace {
	out := tr
	out.Threads = make([]ThreadTrace, len(tr.Threads))
	for i, th := range tr.Threads {
		out.Threads[i] = th
		out.Threads[i].Ops = append([]Op(nil), th.Ops...)
		out.Threads[i].Seg = append([]int(nil), th.Seg...)
	}
	return out
}

// Generate returns the deterministic trace for (seed, proto). The shape
// knobs are drawn from the seed: process/thread/page counts, operation
// mix, think-time distribution and segmentation.
func Generate(seed uint64, proto coherence.Protocol) Trace {
	r := rand.New(rand.NewSource(int64(seed)))
	tr := Trace{
		Seed:     seed,
		Protocol: proto,
		Prefetch: r.Intn(4) == 0,
		Notify:   r.Intn(4) == 0,
		Procs:    1 + r.Intn(3),
		Private:  1 + r.Intn(4),
		Shared:   r.Intn(3),
	}
	nThreads := 1 + r.Intn(4)
	cores := r.Perm(12)[:nThreads]
	pool := tr.Private + tr.Shared
	for ti := 0; ti < nThreads; ti++ {
		th := ThreadTrace{Proc: r.Intn(tr.Procs), Core: cores[ti]}
		nops := r.Intn(120)
		for i := 0; i < nops; i++ {
			var op Op
			switch k := r.Intn(20); {
			case k < 1:
				op.Grow = true
			case k < 11:
				op.Kind = kernel.OpLoad
			case k < 17:
				op.Kind = kernel.OpStore
			default:
				op.Kind = kernel.OpFlush
			}
			if !op.Grow {
				op.Page = r.Intn(pool)
				op.Off = uint64(r.Intn(kernel.PageSize/8)) * 8
				if r.Intn(4) != 0 {
					op.Think = sim.Cycles(r.Intn(3000))
				}
			}
			th.Ops = append(th.Ops, op)
		}
		th.Seg = segment(r, th.Ops)
		tr.Threads = append(tr.Threads, th)
	}
	return tr
}

// segment partitions ops into random runs of 1..8, isolating Grow ops in
// their own segments.
func segment(r *rand.Rand, ops []Op) []int {
	var seg []int
	i := 0
	for i < len(ops) {
		if ops[i].Grow {
			seg = append(seg, 1)
			i++
			continue
		}
		n := 1 + r.Intn(8)
		j := i
		for j < len(ops) && j-i < n && !ops[j].Grow {
			j++
		}
		seg = append(seg, j-i)
		i = j
	}
	return seg
}

// Result is one kernel's execution outcome for a trace.
type Result struct {
	// Times[t][s] is thread t's virtual time after its segment s — the
	// cumulative sum of every latency and think up to that boundary, so
	// any per-access latency difference surfaces at the next boundary.
	Times [][]sim.Cycles
	// Digest is machine.StateDigest over the final machine state.
	Digest string
	// Stream is the kernel's executor statistics.
	Stream kernel.StreamStats
}

// Run executes tr under the given kernel mode (machine.KernelInterp or
// machine.KernelCompiled) in a fresh world and returns the outcome.
func Run(tr Trace, kernelMode string) Result {
	w := sim.NewWorld(sim.Config{Seed: tr.Seed})
	cfg := machine.DefaultConfig()
	cfg.Protocol = tr.Protocol
	cfg.NextLinePrefetch = tr.Prefetch
	cfg.Mitigations.LLCNotifiedOfEToM = tr.Notify
	cfg.Replacement = tr.Replacement
	cfg.Kernel = kernelMode
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := machine.New(w, cfg)
	k := kernel.New(m, 0)

	procs := make([]*kernel.Process, tr.Procs)
	priv := make([]uint64, tr.Procs)
	for i := range procs {
		procs[i] = k.NewProcess(fmt.Sprintf("p%d", i))
		priv[i] = procs[i].MustMmap(tr.Private)
	}
	// shared[s][p] is process p's VA for shared page s (each process maps
	// the common frame at its own address).
	shared := make([][]uint64, tr.Shared)
	for s := range shared {
		vas, err := k.MapSharedReadOnly(procs...)
		if err != nil {
			panic(err)
		}
		shared[s] = vas
	}

	res := Result{Times: make([][]sim.Cycles, len(tr.Threads))}
	for ti := range tr.Threads {
		th := tr.Threads[ti]
		proc := procs[th.Proc]
		ti := ti
		k.Spawn(proc, th.Core, fmt.Sprintf("t%d", ti), func(kt *kernel.Thread) {
			prog := kernel.NewProgram(proc, 8)
			i := 0
			for _, n := range th.Seg {
				ops := th.Ops[i : i+n]
				i += n
				if ops[0].Grow {
					proc.MustMmap(1)
					res.Times[ti] = append(res.Times[ti], kt.Now())
					continue
				}
				prog.Reset()
				for _, op := range ops {
					var va uint64
					if op.Page < tr.Private {
						va = priv[th.Proc] + uint64(op.Page)*kernel.PageSize + op.Off
					} else {
						va = shared[op.Page-tr.Private][th.Proc] + op.Off
					}
					switch op.Kind {
					case kernel.OpLoad:
						prog.Load(va, op.Think)
					case kernel.OpStore:
						prog.Store(va, op.Think)
					case kernel.OpFlush:
						prog.Flush(va, op.Think)
					}
				}
				kt.Exec(prog, nil)
				res.Times[ti] = append(res.Times[ti], kt.Now())
			}
		})
	}
	if err := w.Run(); err != nil {
		panic(err)
	}
	res.Digest = m.StateDigest()
	res.Stream = k.Stream
	return res
}

// Mismatch describes the first divergence between the two kernels.
type Mismatch struct {
	Field  string
	Detail string
}

func (m *Mismatch) String() string { return m.Field + ": " + m.Detail }

// Compare runs tr under both kernels and returns the first divergence,
// or nil when the runs are indistinguishable.
func Compare(tr Trace) *Mismatch {
	ri := Run(tr, machine.KernelInterp)
	rc := Run(tr, machine.KernelCompiled)

	n := tr.ops()
	if ri.Stream.InterpOps != n || ri.Stream.CompiledOps != 0 || ri.Stream.UnfusedOps != 0 {
		return &Mismatch{"interp-conservation", fmt.Sprintf(
			"interp kernel ran %d interp / %d compiled / %d unfused ops, want %d/0/0",
			ri.Stream.InterpOps, ri.Stream.CompiledOps, ri.Stream.UnfusedOps, n)}
	}
	if got := rc.Stream.CompiledOps + rc.Stream.UnfusedOps + rc.Stream.InterpOps; got != n {
		return &Mismatch{"compiled-conservation", fmt.Sprintf(
			"compiled kernel accounted %d ops (compiled %d + unfused %d + interp %d), want %d",
			got, rc.Stream.CompiledOps, rc.Stream.UnfusedOps, rc.Stream.InterpOps, n)}
	}
	for t := range ri.Times {
		a, b := ri.Times[t], rc.Times[t]
		if len(a) != len(b) {
			return &Mismatch{"times", fmt.Sprintf("thread %d: %d vs %d segment boundaries", t, len(a), len(b))}
		}
		for s := range a {
			if a[s] != b[s] {
				return &Mismatch{"times", fmt.Sprintf(
					"thread %d segment %d: interp at cycle %d, compiled at %d", t, s, a[s], b[s])}
			}
		}
	}
	if ri.Digest != rc.Digest {
		return &Mismatch{"digest", fmt.Sprintf("interp %s != compiled %s", ri.Digest, rc.Digest)}
	}
	return nil
}

// Shrink greedily minimizes a failing trace: it removes whole threads,
// then whole segments, then single operations, keeping each removal only
// when the mismatch persists. If tr does not fail Compare it is returned
// unchanged. The Compare budget bounds worst-case shrink time.
func Shrink(tr Trace) Trace {
	if Compare(tr) == nil {
		return tr
	}
	best := tr.clone()
	budget := 300

	try := func(cand Trace) bool {
		if budget <= 0 {
			return false
		}
		budget--
		if Compare(cand) != nil {
			best = cand
			return true
		}
		return false
	}

	// Whole threads.
	for changed := true; changed; {
		changed = false
		for t := 0; t < len(best.Threads) && len(best.Threads) > 1; t++ {
			cand := best.clone()
			cand.Threads = append(cand.Threads[:t], cand.Threads[t+1:]...)
			if try(cand) {
				changed = true
				break
			}
		}
	}

	// Whole segments.
	for changed := true; changed; {
		changed = false
		for t := range best.Threads {
			off := 0
			for s := 0; s < len(best.Threads[t].Seg); s++ {
				n := best.Threads[t].Seg[s]
				cand := best.clone()
				th := &cand.Threads[t]
				th.Ops = append(th.Ops[:off], th.Ops[off+n:]...)
				th.Seg = append(th.Seg[:s], th.Seg[s+1:]...)
				if try(cand) {
					changed = true
					break
				}
				off += n
			}
			if changed {
				break
			}
		}
	}

	// Single operations.
	for changed := true; changed; {
		changed = false
		for t := range best.Threads {
			off := 0
			for s := 0; s < len(best.Threads[t].Seg); s++ {
				n := best.Threads[t].Seg[s]
				for i := 0; i < n; i++ {
					cand := best.clone()
					th := &cand.Threads[t]
					th.Ops = append(th.Ops[:off+i], th.Ops[off+i+1:]...)
					if n == 1 {
						th.Seg = append(th.Seg[:s], th.Seg[s+1:]...)
					} else {
						th.Seg[s]--
					}
					if try(cand) {
						changed = true
						break
					}
				}
				if changed {
					break
				}
				off += n
			}
			if changed {
				break
			}
		}
	}
	return best
}
