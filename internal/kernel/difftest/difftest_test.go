package difftest

import (
	"testing"

	"coherentleak/internal/cache"
	"coherentleak/internal/coherence"
	"coherentleak/internal/kernel"
	"coherentleak/internal/machine"
	"coherentleak/internal/sim"
)

// corpusPerCombo gives 500 deterministic cases across the 5 builtin
// protocols × 4 registered replacement policies in a normal `go test`
// run (25 per combination).
const corpusPerCombo = 25

// TestDifferentialCorpus executes the deterministic corpus: for every
// builtin protocol × registered replacement policy, 25 seeded random
// traces compared between the interpreted and compiled kernels.
// Protocol groups run in parallel so `go test -race` also exercises
// concurrent worlds.
func TestDifferentialCorpus(t *testing.T) {
	protos := coherence.Protocols()
	if len(protos) != 5 {
		t.Fatalf("builtin protocol count = %d, want 5 (corpus contract)", len(protos))
	}
	pols := cache.PolicyNames()
	if len(pols) != 4 {
		t.Fatalf("builtin policy count = %d, want 4 (corpus contract)", len(pols))
	}
	for pi, proto := range protos {
		pi, proto := pi, proto
		t.Run(string(proto), func(t *testing.T) {
			t.Parallel()
			for qi, pol := range pols {
				for i := 0; i < corpusPerCombo; i++ {
					c := (pi*len(pols)+qi)*corpusPerCombo + i
					seed := uint64(c)*0x9E3779B9 + 1
					tr := Generate(seed, proto)
					tr.Replacement = pol
					if mm := Compare(tr); mm != nil {
						small := Shrink(tr)
						t.Fatalf("seed %#x policy %s case %d: %v\nshrunk repro: seed=%#x threads=%d ops=%d\n%+v",
							seed, pol, i, mm, small.Seed, len(small.Threads), small.ops(), small)
					}
				}
			}
		})
	}
}

// TestCompiledPathEngages guards the corpus against vacuity: across the
// corpus the compiled kernel must actually fuse a large share of
// operations, not silently fall back to the interpreter.
func TestCompiledPathEngages(t *testing.T) {
	var compiled, total uint64
	for i := 0; i < 20; i++ {
		tr := Generate(uint64(i)*7919+3, coherence.MESIF)
		rc := Run(tr, machine.KernelCompiled)
		compiled += rc.Stream.CompiledOps
		total += rc.Stream.CompiledOps + rc.Stream.UnfusedOps + rc.Stream.InterpOps
	}
	if total == 0 {
		t.Fatal("corpus produced no operations")
	}
	if compiled*2 < total {
		t.Fatalf("compiled path fused only %d of %d ops; fast path is not engaging", compiled, total)
	}
}

// TestFallbacksExercised checks the corpus covers the counted fallback
// conditions: stores through read-only shared pages must interpret
// per-op (COW faulting path).
func TestFallbacksExercised(t *testing.T) {
	var fallbacks uint64
	for i := 0; i < 50; i++ {
		tr := Generate(uint64(i)*104729+11, coherence.MESI)
		rc := Run(tr, machine.KernelCompiled)
		fallbacks += rc.Stream.FallbackOps
	}
	if fallbacks == 0 {
		t.Fatal("no per-op fallbacks across 50 cases; shared-page stores are not exercised")
	}
}

// TestTracedMachineFallsBackWholeProgram verifies the whole-program
// disengage: with a trace observer attached the compiled kernel must
// interpret everything (events must arrive in cycle order), and still
// match the interpreted kernel's event stream.
func TestTracedMachineFallsBackWholeProgram(t *testing.T) {
	tr := Generate(42, coherence.MESIF)
	for _, mode := range []string{machine.KernelInterp, machine.KernelCompiled} {
		w := sim.NewWorld(sim.Config{Seed: 1})
		cfg := machine.DefaultConfig()
		cfg.Kernel = mode
		m := machine.New(w, cfg)
		var events int
		m.SetAccessObserver(func(machine.AccessEvent) { events = events + 1 })
		k := kernel.New(m, 0)
		p := k.NewProcess("p")
		va := p.MustMmap(1)
		k.Spawn(p, 0, "t", func(kt *kernel.Thread) {
			prog := kernel.NewProgram(p, 4)
			prog.Load(va, 100)
			prog.Store(va+64, 100)
			kt.Exec(prog, nil)
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if events != 2 {
			t.Fatalf("mode %s: %d trace events, want 2", mode, events)
		}
		if mode == machine.KernelCompiled && k.Stream.FallbackPrograms != 1 {
			t.Fatalf("traced compiled run: FallbackPrograms = %d, want 1", k.Stream.FallbackPrograms)
		}
	}
	_ = tr
}

// TestShrinkPreservesPassing confirms Shrink is the identity on a
// passing trace (it must never "shrink" a healthy case into noise).
func TestShrinkPreservesPassing(t *testing.T) {
	tr := Generate(7, coherence.MOESI)
	got := Shrink(tr)
	if got.Seed != tr.Seed || len(got.Threads) != len(tr.Threads) {
		t.Fatal("Shrink modified a passing trace")
	}
}

// FuzzDifferential is the randomized entry point: `go test -fuzz
// FuzzDifferential ./internal/kernel/difftest` explores seeds, protocol
// and replacement-policy choices beyond the deterministic corpus.
func FuzzDifferential(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(0))
	f.Add(uint64(12345), uint8(1), uint8(0))
	f.Add(uint64(0xdeadbeef), uint8(2), uint8(1))
	f.Add(uint64(0x9E3779B97F4A7C15), uint8(3), uint8(0))
	f.Add(uint64(271828), uint8(4), uint8(1))
	// RRIP insertion-age seeds: dense conflict traces under SRRIP age
	// whole sets to "distant" before victimizing, and under BRRIP cross
	// the 32-fill bimodal boundary repeatedly, so the aging loop, the
	// insertion trickle and the compiled kernel's memo are all exercised
	// against the interpreter.
	f.Add(uint64(0xA11C0DE), uint8(0), uint8(2))
	f.Add(uint64(0x5EED5EED5EED), uint8(1), uint8(2))
	f.Add(uint64(0xB1B0DA1), uint8(0), uint8(3))
	f.Add(uint64(0xFEEDFACECAFE), uint8(4), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, proto uint8, pol uint8) {
		protos := coherence.Protocols()
		pols := cache.PolicyNames()
		tr := Generate(seed, protos[int(proto)%len(protos)])
		tr.Replacement = pols[int(pol)%len(pols)]
		if mm := Compare(tr); mm != nil {
			small := Shrink(tr)
			t.Fatalf("seed %#x proto %s policy %s: %v\nshrunk repro: %+v",
				seed, tr.Protocol, tr.Replacement, mm, small)
		}
	})
}
