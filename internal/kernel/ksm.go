package kernel

import (
	"coherentleak/internal/sim"
)

// KSM is the kernel same-page merging subsystem (§IV). A scan walks every
// MERGEABLE mapping in process start order, groups pages by content, and
// remaps duplicates onto the earliest page's frame, marked read-only
// copy-on-write. Writes to a merged page fault and un-merge (cowBreak).
type KSM struct {
	kern *Kernel

	// Merged counts page mappings that were redirected to a canonical
	// frame across all scans.
	Merged int
	// Unmerged counts COW breaks of merged pages.
	Unmerged int
	// Scans counts completed full scans.
	Scans int

	// MaxPagesPerScan bounds the work of one scan (like Linux's
	// pages_to_scan); zero means unbounded.
	MaxPagesPerScan int
}

// Scan performs one full merge pass and returns the number of mappings
// merged by this pass.
func (s *KSM) Scan() int {
	k := s.kern
	cands := k.mergeCandidates()
	if s.MaxPagesPerScan > 0 && len(cands) > s.MaxPagesPerScan {
		cands = cands[:s.MaxPagesPerScan]
	}

	// canonical maps content hash -> candidates whose frame is the
	// surviving copy for that content. Hash collisions are resolved with
	// a byte comparison, as in the real KSM's stable tree.
	canonical := make(map[uint64][]candidate)
	merged := 0

	for _, cand := range cands {
		h := cand.pte.Frame.ContentHash()
		var target *candidate
		alreadyCanonical := false
		for i := range canonical[h] {
			cc := &canonical[h][i]
			if cc.pte.Frame == cand.pte.Frame {
				alreadyCanonical = true // mapping already shares the survivor
				break
			}
			if cc.pte.Frame.SameContents(cand.pte.Frame) {
				target = cc
				break
			}
		}
		if alreadyCanonical {
			continue
		}
		if target == nil {
			canonical[h] = append(canonical[h], cand)
			continue
		}
		// Merge: cand's mapping is redirected onto target's frame; both
		// mappings become read-only COW; cand's old frame drops a ref.
		old := cand.pte.Frame
		k.mem.AddRef(target.pte.Frame)
		k.mem.Release(old)
		cand.pte.Frame = target.pte.Frame
		cand.pte.Writable = false
		target.pte.Writable = false
		target.pte.Frame.MergedByKSM = true
		k.mapEpoch++
		merged++
	}
	s.Merged += merged
	s.Scans++
	return merged
}

// StartDaemon spawns the ksmd thread: a full scan every period cycles.
// The daemon runs until stopped (World.StopThread) or the world ends; use
// the returned thread handle to stop it.
func (s *KSM) StartDaemon(period sim.Cycles) *sim.Thread {
	return s.kern.world.Spawn("ksmd", func(t *sim.Thread) {
		for !t.StopRequested() {
			t.Advance(period)
			s.Scan()
		}
	})
}

// UnmergePage force-splits every mapping of the frame behind (proc, va)
// back to private copies — the paper's second mitigation (§VIII-E):
// "setup timeouts for KSM to un-merge shared pages with suspicious
// access patterns". It returns the number of mappings split.
func (s *KSM) UnmergePage(frameNum uint64) int {
	k := s.kern
	split := 0
	for _, p := range k.Processes() {
		for vp, pte := range p.pages {
			if pte.Frame.Number == frameNum && pte.Frame.MergedByKSM {
				if err := k.cowBreak(p, vp, pte); err != nil {
					continue
				}
				split++
			}
		}
	}
	return split
}
