package kernel

import (
	"fmt"

	"coherentleak/internal/machine"
	"coherentleak/internal/sim"
)

// Thread is a simulated OS thread: a sim thread pinned to a core
// (sched_setaffinity semantics) executing within a process's address
// space. Its Load/Store/Flush translate virtual addresses and drive the
// machine, advancing virtual time by the operation's latency.
type Thread struct {
	Sim    *sim.Thread
	Proc   *Process
	CoreID int
	kern   *Kernel
	// Faults counts COW faults taken by this thread.
	Faults int
}

// Spawn creates a thread of proc pinned to global core id, running body.
// Pinning is fixed for the thread's lifetime, as the paper's experiments
// pin trojan and spy threads with sched_setaffinity.
func (k *Kernel) Spawn(proc *Process, core int, name string, body func(*Thread)) *Thread {
	if core < 0 || core >= k.mach.Cores() {
		panic(fmt.Sprintf("kernel: cannot pin %q to core %d of %d", name, core, k.mach.Cores()))
	}
	t := &Thread{Proc: proc, CoreID: core, kern: k}
	t.Sim = k.world.Spawn(fmt.Sprintf("%s/%s@c%d", proc.Name, name, core), func(st *sim.Thread) {
		st.Tag = t
		body(t)
	})
	return t
}

// Now returns the thread's virtual time — the rdtsc analogue.
func (t *Thread) Now() sim.Cycles { return t.Sim.Now() }

// Advance burns d cycles of non-memory work (loop overhead, waiting).
func (t *Thread) Advance(d sim.Cycles) { t.Sim.Advance(d) }

// StopRequested reports a pending kill for cooperative shutdown.
func (t *Thread) StopRequested() bool { return t.Sim.StopRequested() }

// Socket returns the socket the thread is pinned to.
func (t *Thread) Socket() int { return t.kern.mach.Core(t.CoreID).Socket }

// Load performs a timed read of virtual address va and returns the access
// outcome; the latency is what a rdtsc-bracketed load would measure.
func (t *Thread) Load(va uint64) machine.Access {
	pa, err := t.Proc.Translate(va)
	if err != nil {
		panic(err)
	}
	return t.kern.mach.Load(t.Sim, t.CoreID, pa)
}

// Store performs a timed write to va. Stores to read-only (KSM-merged or
// COW) pages fault: the kernel un-merges the page, charges FaultLatency,
// and the store proceeds against the private copy.
func (t *Thread) Store(va uint64) machine.Access {
	pte := t.Proc.PTEOf(va)
	if pte == nil {
		panic(fmt.Sprintf("kernel: segfault: store to %#x", va))
	}
	faulted := false
	if !pte.Writable {
		if err := t.kern.cowBreak(t.Proc, va/PageSize, pte); err != nil {
			panic(err)
		}
		t.Faults++
		faulted = true
	}
	pa, err := t.Proc.Translate(va)
	if err != nil {
		panic(err)
	}
	a := t.kern.mach.Store(t.Sim, t.CoreID, pa)
	if faulted {
		t.Sim.Advance(t.kern.FaultLatency)
		a.Latency += t.kern.FaultLatency
	}
	return a
}

// Flush evicts va's line from every cache (clflush). Like the real
// instruction it needs only read access to the page.
func (t *Thread) Flush(va uint64) machine.Access {
	pa, err := t.Proc.Translate(va)
	if err != nil {
		panic(err)
	}
	return t.kern.mach.Flush(t.Sim, t.CoreID, pa)
}

// Preempt simulates the thread being context-switched out for d cycles
// (the OS noise source of §VII-A's re-synchronization discussion).
func (t *Thread) Preempt(d sim.Cycles) { t.Sim.Advance(d) }
