package kernel

import (
	"testing"

	"coherentleak/internal/machine"
	"coherentleak/internal/sim"
)

func TestMapSharedReadOnlyThreeProcesses(t *testing.T) {
	k := newKernel(t)
	a, b, c := k.NewProcess("a"), k.NewProcess("b"), k.NewProcess("c")
	vas, err := k.MapSharedReadOnly(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(vas) != 3 {
		t.Fatalf("vas = %v", vas)
	}
	if !a.SharesFrameWith(vas[0], b, vas[1]) || !b.SharesFrameWith(vas[1], c, vas[2]) {
		t.Fatal("not all processes share the frame")
	}
	frame := a.PTEOf(vas[0]).Frame
	if frame.Refs() != 3 {
		t.Fatalf("refs = %d, want 3", frame.Refs())
	}
	// The mapping is read-only: any write must COW-split.
	if a.PTEOf(vas[0]).Writable {
		t.Fatal("shared mapping is writable")
	}
	if err := a.WriteBytes(vas[0], []byte{1}); err != nil {
		t.Fatal(err)
	}
	if a.SharesFrameWith(vas[0], b, vas[1]) {
		t.Fatal("write did not split the shared mapping")
	}
	if b.SharesFrameWith(vas[1], c, vas[2]) {
		// b and c still share: correct.
	} else {
		t.Fatal("unrelated mappings split")
	}
}

func TestMapSharedReadOnlyNoProcs(t *testing.T) {
	k := newKernel(t)
	if _, err := k.MapSharedReadOnly(); err == nil {
		t.Fatal("empty process list accepted")
	}
}

func TestProcessPages(t *testing.T) {
	k := newKernel(t)
	p := k.NewProcess("p")
	va := p.MustMmap(3)
	pages := p.Pages()
	if len(pages) != 3 {
		t.Fatalf("pages = %v", pages)
	}
	for i := 1; i < len(pages); i++ {
		if pages[i] <= pages[i-1] {
			t.Fatal("pages not ascending")
		}
	}
	if pages[0] != va/PageSize {
		t.Fatalf("first page = %d, want %d", pages[0], va/PageSize)
	}
}

func TestThreadPreemptAdvancesClock(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 9})
	k := New(machine.New(w, machine.DefaultConfig()), 0)
	p := k.NewProcess("p")
	var before, after sim.Cycles
	k.Spawn(p, 0, "t", func(kt *Thread) {
		before = kt.Now()
		kt.Preempt(5000)
		after = kt.Now()
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if after-before != 5000 {
		t.Fatalf("preempt advanced %d cycles", after-before)
	}
}

// A flush only needs read access: it must work on a read-only (merged or
// shared) page without faulting.
func TestFlushOnReadOnlyPage(t *testing.T) {
	k := newKernel(t)
	a, b := k.NewProcess("a"), k.NewProcess("b")
	vas, err := k.MapSharedReadOnly(a, b)
	if err != nil {
		t.Fatal(err)
	}
	faults := -1
	k.Spawn(a, 0, "t", func(kt *Thread) {
		kt.Load(vas[0])
		kt.Flush(vas[0])
		faults = kt.Faults
	})
	if err := k.World().Run(); err != nil {
		t.Fatal(err)
	}
	if faults != 0 {
		t.Fatalf("flush faulted (%d faults)", faults)
	}
	// Frame must still be shared.
	if !a.SharesFrameWith(vas[0], b, vas[1]) {
		t.Fatal("flush split the page")
	}
}

func TestMunmapReleasesFrames(t *testing.T) {
	k := newKernel(t)
	p := k.NewProcess("p")
	va := p.MustMmap(4)
	before := k.Memory().Allocated
	if err := p.Munmap(va+PageSize, 2); err != nil {
		t.Fatal(err)
	}
	if k.Memory().Allocated != before-2 {
		t.Fatalf("allocated %d -> %d, want -2", before, k.Memory().Allocated)
	}
	if _, err := p.Translate(va + PageSize); err == nil {
		t.Fatal("unmapped page still translates")
	}
	if _, err := p.Translate(va); err != nil {
		t.Fatal("neighbouring page lost")
	}
	// Partial overlap with an unmapped page must fail atomically.
	if err := p.Munmap(va, 3); err == nil {
		t.Fatal("range with a hole accepted")
	}
	if _, err := p.Translate(va); err != nil {
		t.Fatal("failed munmap modified the address space")
	}
}

func TestExitReleasesEverythingButSharedSurvives(t *testing.T) {
	k := newKernel(t)
	a, b := k.NewProcess("a"), k.NewProcess("b")
	va, vb := a.MustMmap(1), b.MustMmap(1)
	fillPattern(t, a, va, 0x61)
	fillPattern(t, b, vb, 0x61)
	a.Madvise(va, 1)
	b.Madvise(vb, 1)
	k.KSM.Scan()
	if !a.SharesFrameWith(va, b, vb) {
		t.Fatal("setup: merge failed")
	}
	frame := b.PTEOf(vb).Frame
	a.Exit()
	// b's view of the merged frame survives a's exit.
	if b.PTEOf(vb).Frame != frame || frame.Refs() != 1 {
		t.Fatalf("shared frame damaged by exit (refs %d)", frame.Refs())
	}
	got, err := b.ReadBytes(vb, 8)
	if err != nil || got[0] == 0 {
		t.Fatalf("survivor contents lost: %v %v", got, err)
	}
	b.Exit()
	if k.Memory().Allocated != 0 {
		t.Fatalf("leak: %d frames after both exits", k.Memory().Allocated)
	}
}
