package kernel

import (
	"bytes"
	"testing"

	"coherentleak/internal/machine"
	"coherentleak/internal/sim"
)

func newKernel(t *testing.T) *Kernel {
	t.Helper()
	w := sim.NewWorld(sim.Config{Seed: 42})
	return New(machine.New(w, machine.DefaultConfig()), 0)
}

func TestMmapAndTranslate(t *testing.T) {
	k := newKernel(t)
	p := k.NewProcess("a")
	va, err := p.Mmap(4)
	if err != nil {
		t.Fatal(err)
	}
	if va%PageSize != 0 {
		t.Fatalf("mmap returned unaligned address %#x", va)
	}
	for i := uint64(0); i < 4; i++ {
		pa, err := p.Translate(va + i*PageSize + 123)
		if err != nil {
			t.Fatal(err)
		}
		if pa%PageSize != 123 {
			t.Fatalf("offset not preserved: %#x", pa)
		}
	}
	if _, err := p.Translate(va + 4*PageSize); err == nil {
		t.Fatal("translate past mapping succeeded")
	}
	if _, err := p.Translate(0); err == nil {
		t.Fatal("null translate succeeded")
	}
}

func TestMmapZeroPagesFails(t *testing.T) {
	k := newKernel(t)
	p := k.NewProcess("a")
	if _, err := p.Mmap(0); err == nil {
		t.Fatal("Mmap(0) succeeded")
	}
}

func TestMmapRollbackOnExhaustion(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 1})
	k := New(machine.New(w, machine.DefaultConfig()), 2)
	p := k.NewProcess("a")
	if _, err := p.Mmap(3); err == nil {
		t.Fatal("overcommitted mmap succeeded")
	}
	if k.Memory().Allocated != 0 {
		t.Fatalf("rollback leaked %d frames", k.Memory().Allocated)
	}
	if _, err := p.Mmap(2); err != nil {
		t.Fatalf("mmap after rollback failed: %v", err)
	}
}

func TestProcessIsolation(t *testing.T) {
	k := newKernel(t)
	a, b := k.NewProcess("a"), k.NewProcess("b")
	va := a.MustMmap(1)
	vb := b.MustMmap(1)
	if a.SharesFrameWith(va, b, vb) {
		t.Fatal("fresh mappings share a frame")
	}
	paA, _ := a.Translate(va)
	paB, _ := b.Translate(vb)
	if paA == paB {
		t.Fatal("distinct processes share physical pages without KSM")
	}
}

func TestWriteReadBytes(t *testing.T) {
	k := newKernel(t)
	p := k.NewProcess("a")
	va := p.MustMmap(2)
	msg := []byte("coherence states leak")
	// Cross the page boundary deliberately.
	at := va + PageSize - 7
	if err := p.WriteBytes(at, msg); err != nil {
		t.Fatal(err)
	}
	got, err := p.ReadBytes(at, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q, want %q", got, msg)
	}
}

func fillPattern(t *testing.T, p *Process, va uint64, seed byte) {
	t.Helper()
	buf := make([]byte, PageSize)
	for i := range buf {
		buf[i] = seed ^ byte(i*7)
	}
	if err := p.WriteBytes(va, buf); err != nil {
		t.Fatal(err)
	}
}

func TestKSMMergesIdenticalPages(t *testing.T) {
	k := newKernel(t)
	trojan, spy := k.NewProcess("trojan"), k.NewProcess("spy")
	vt := trojan.MustMmap(1)
	vs := spy.MustMmap(1)
	fillPattern(t, trojan, vt, 0x5a)
	fillPattern(t, spy, vs, 0x5a)
	if err := trojan.Madvise(vt, 1); err != nil {
		t.Fatal(err)
	}
	if err := spy.Madvise(vs, 1); err != nil {
		t.Fatal(err)
	}
	before := k.Memory().Allocated
	if n := k.KSM.Scan(); n != 1 {
		t.Fatalf("Scan merged %d mappings, want 1", n)
	}
	if !trojan.SharesFrameWith(vt, spy, vs) {
		t.Fatal("pages not merged")
	}
	if k.Memory().Allocated != before-1 {
		t.Fatalf("duplicate frame not released: %d -> %d", before, k.Memory().Allocated)
	}
	// Both mappings must now be read-only COW.
	if trojan.PTEOf(vt).Writable || spy.PTEOf(vs).Writable {
		t.Fatal("merged mapping left writable")
	}
	if !trojan.PTEOf(vt).Frame.MergedByKSM {
		t.Fatal("survivor frame not marked MergedByKSM")
	}
}

func TestKSMEarliestProcessWins(t *testing.T) {
	k := newKernel(t)
	first := k.NewProcess("first")
	vf := first.MustMmap(1)
	fillPattern(t, first, vf, 0x11)
	first.Madvise(vf, 1)
	frameBefore := first.PTEOf(vf).Frame

	second := k.NewProcess("second")
	vs := second.MustMmap(1)
	fillPattern(t, second, vs, 0x11)
	second.Madvise(vs, 1)

	k.KSM.Scan()
	if first.PTEOf(vf).Frame != frameBefore {
		t.Fatal("canonical frame is not the earliest process's")
	}
	if second.PTEOf(vs).Frame != frameBefore {
		t.Fatal("later page not redirected to earliest frame")
	}
}

func TestKSMIgnoresNonMergeable(t *testing.T) {
	k := newKernel(t)
	a, b := k.NewProcess("a"), k.NewProcess("b")
	va, vb := a.MustMmap(1), b.MustMmap(1)
	fillPattern(t, a, va, 0x33)
	fillPattern(t, b, vb, 0x33)
	a.Madvise(va, 1) // b did not madvise
	if n := k.KSM.Scan(); n != 0 {
		t.Fatalf("merged %d without both sides mergeable", n)
	}
}

func TestKSMIgnoresDifferentContents(t *testing.T) {
	k := newKernel(t)
	a, b := k.NewProcess("a"), k.NewProcess("b")
	va, vb := a.MustMmap(1), b.MustMmap(1)
	fillPattern(t, a, va, 0x33)
	fillPattern(t, b, vb, 0x44)
	a.Madvise(va, 1)
	b.Madvise(vb, 1)
	if n := k.KSM.Scan(); n != 0 {
		t.Fatalf("merged %d pages with different contents", n)
	}
}

func TestKSMThreeWayMergeAndThirdPartyDetection(t *testing.T) {
	// The §IV hazard: an unrelated process with the same bit pattern
	// merges into the trojan/spy page.
	k := newKernel(t)
	procs := make([]*Process, 3)
	vas := make([]uint64, 3)
	for i, name := range []string{"trojan", "spy", "bystander"} {
		procs[i] = k.NewProcess(name)
		vas[i] = procs[i].MustMmap(1)
		fillPattern(t, procs[i], vas[i], 0x77)
		procs[i].Madvise(vas[i], 1)
	}
	if n := k.KSM.Scan(); n != 2 {
		t.Fatalf("merged %d mappings, want 2", n)
	}
	frame := procs[0].PTEOf(vas[0]).Frame
	if frame.Refs() != 3 {
		t.Fatalf("canonical frame refs = %d, want 3", frame.Refs())
	}
}

func TestKSMScanIdempotent(t *testing.T) {
	k := newKernel(t)
	a, b := k.NewProcess("a"), k.NewProcess("b")
	va, vb := a.MustMmap(1), b.MustMmap(1)
	fillPattern(t, a, va, 0x21)
	fillPattern(t, b, vb, 0x21)
	a.Madvise(va, 1)
	b.Madvise(vb, 1)
	k.KSM.Scan()
	if n := k.KSM.Scan(); n != 0 {
		t.Fatalf("second scan merged %d more", n)
	}
	if k.KSM.Scans != 2 {
		t.Fatalf("Scans = %d", k.KSM.Scans)
	}
}

func TestCOWBreakOnWriteToMergedPage(t *testing.T) {
	k := newKernel(t)
	a, b := k.NewProcess("a"), k.NewProcess("b")
	va, vb := a.MustMmap(1), b.MustMmap(1)
	fillPattern(t, a, va, 0x66)
	fillPattern(t, b, vb, 0x66)
	a.Madvise(va, 1)
	b.Madvise(vb, 1)
	k.KSM.Scan()
	if !a.SharesFrameWith(va, b, vb) {
		t.Fatal("setup: merge failed")
	}
	// A write by one sharer must split the page, leaving the other's
	// contents intact (no direct communication possible — §IV).
	if err := a.WriteBytes(va, []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	if a.SharesFrameWith(va, b, vb) {
		t.Fatal("write did not split merged page")
	}
	got, _ := b.ReadBytes(vb, 1)
	if got[0] == 0xFF {
		t.Fatal("write leaked through merged page")
	}
	if k.KSM.Unmerged != 1 {
		t.Fatalf("Unmerged = %d", k.KSM.Unmerged)
	}
}

func TestUnmergePageMitigation(t *testing.T) {
	k := newKernel(t)
	a, b := k.NewProcess("a"), k.NewProcess("b")
	va, vb := a.MustMmap(1), b.MustMmap(1)
	fillPattern(t, a, va, 0x42)
	fillPattern(t, b, vb, 0x42)
	a.Madvise(va, 1)
	b.Madvise(vb, 1)
	k.KSM.Scan()
	frame := a.PTEOf(va).Frame
	split := k.KSM.UnmergePage(frame.Number)
	if split == 0 {
		t.Fatal("UnmergePage split nothing")
	}
	if a.SharesFrameWith(va, b, vb) {
		t.Fatal("pages still merged after forced unmerge")
	}
}

func TestSpawnThreadTimedOps(t *testing.T) {
	k := newKernel(t)
	p := k.NewProcess("p")
	va := p.MustMmap(1)
	var first, second machine.Access
	k.Spawn(p, 0, "worker", func(t *Thread) {
		first = t.Load(va)
		second = t.Load(va)
	})
	if err := k.World().Run(); err != nil {
		t.Fatal(err)
	}
	if first.Path != machine.PathDRAM {
		t.Errorf("first load path = %v", first.Path)
	}
	if second.Path != machine.PathL1 {
		t.Errorf("second load path = %v", second.Path)
	}
}

func TestSpawnPinningValidated(t *testing.T) {
	k := newKernel(t)
	p := k.NewProcess("p")
	defer func() {
		if recover() == nil {
			t.Fatal("spawn on core 99 did not panic")
		}
	}()
	k.Spawn(p, 99, "bad", func(t *Thread) {})
}

func TestThreadSocket(t *testing.T) {
	k := newKernel(t)
	p := k.NewProcess("p")
	done := false
	k.Spawn(p, 7, "w", func(t *Thread) {
		if t.Socket() != 1 {
			panic("core 7 should be socket 1")
		}
		done = true
	})
	if err := k.World().Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("thread body did not run")
	}
}

func TestStoreFaultOnMergedPage(t *testing.T) {
	k := newKernel(t)
	a, b := k.NewProcess("a"), k.NewProcess("b")
	va, vb := a.MustMmap(1), b.MustMmap(1)
	fillPattern(t, a, va, 0x10)
	fillPattern(t, b, vb, 0x10)
	a.Madvise(va, 1)
	b.Madvise(vb, 1)
	k.KSM.Scan()

	var normal, faulting machine.Access
	var faults int
	k.Spawn(a, 0, "writer", func(t *Thread) {
		faulting = t.Store(va) // COW fault: un-merge + store
		normal = t.Store(va)   // private now: plain store
		faults = t.Faults
	})
	if err := k.World().Run(); err != nil {
		t.Fatal(err)
	}
	if faults != 1 {
		t.Fatalf("faults = %d, want 1", faults)
	}
	if faulting.Latency <= normal.Latency {
		t.Errorf("COW store (%d cy) not slower than plain store (%d cy)",
			faulting.Latency, normal.Latency)
	}
	if a.SharesFrameWith(va, b, vb) {
		t.Fatal("store did not split page")
	}
}

// The attack's physical setup end-to-end: after a KSM merge, a flush by
// the spy and a reload by the trojan move the *same* cache line, even
// though each process uses its own virtual address.
func TestMergedPageSharesCacheLine(t *testing.T) {
	k := newKernel(t)
	trojan, spy := k.NewProcess("trojan"), k.NewProcess("spy")
	vt, vs := trojan.MustMmap(1), spy.MustMmap(1)
	fillPattern(t, trojan, vt, 0x99)
	fillPattern(t, spy, vs, 0x99)
	trojan.Madvise(vt, 1)
	spy.Madvise(vs, 1)
	k.KSM.Scan()

	var spyAccess machine.Access
	tr := k.Spawn(trojan, 1, "t", func(t *Thread) {
		t.Load(vt) // trojan warms the line in E
	})
	_ = tr
	k.Spawn(spy, 0, "s", func(t *Thread) {
		t.Advance(10000) // let the trojan go first
		spyAccess = t.Load(vs)
	})
	if err := k.World().Run(); err != nil {
		t.Fatal(err)
	}
	if spyAccess.Path != machine.PathLocalForward {
		t.Fatalf("spy path = %v, want LocalForward (same physical line)", spyAccess.Path)
	}
}

func TestKSMDaemon(t *testing.T) {
	k := newKernel(t)
	a, b := k.NewProcess("a"), k.NewProcess("b")
	va, vb := a.MustMmap(1), b.MustMmap(1)
	fillPattern(t, a, va, 0x77)
	fillPattern(t, b, vb, 0x77)
	a.Madvise(va, 1)
	b.Madvise(vb, 1)
	daemon := k.KSM.StartDaemon(1000)
	w := k.World()
	err := w.RunUntil(func() bool { return a.SharesFrameWith(va, b, vb) || w.Now() > 100000 })
	if err != nil {
		t.Fatal(err)
	}
	if !a.SharesFrameWith(va, b, vb) {
		t.Fatal("daemon never merged the pages")
	}
	w.StopThread(daemon)
	w.Drain()
}

func TestMaxPagesPerScanBounds(t *testing.T) {
	k := newKernel(t)
	a, b := k.NewProcess("a"), k.NewProcess("b")
	va, vb := a.MustMmap(4), b.MustMmap(4)
	for i := uint64(0); i < 4; i++ {
		fillPattern(t, a, va+i*PageSize, byte(i))
		fillPattern(t, b, vb+i*PageSize, byte(i))
	}
	a.Madvise(va, 4)
	b.Madvise(vb, 4)
	k.KSM.MaxPagesPerScan = 5 // sees a's 4 pages + b's first
	if n := k.KSM.Scan(); n != 1 {
		t.Fatalf("bounded scan merged %d, want 1", n)
	}
	k.KSM.MaxPagesPerScan = 0
	if n := k.KSM.Scan(); n != 3 {
		t.Fatalf("full scan merged %d more, want 3", n)
	}
}
