// Package kernel is the OS substrate above the simulated machine:
// processes with private virtual address spaces, demand-less page
// allocation, copy-on-write, madvise(MERGEABLE), and a Kernel Same-page
// Merging (KSM) scanner. It exists because the paper's broader adversary
// model (§IV) creates the trojan/spy shared physical page *implicitly*,
// by having both processes write identical bytes and letting KSM
// deduplicate them into one read-only COW frame.
package kernel

import (
	"fmt"
	"sort"

	"coherentleak/internal/machine"
	"coherentleak/internal/mem"
	"coherentleak/internal/sim"
)

// PageSize is the virtual/physical page size.
const PageSize = mem.PageSize

// PTE is a page-table entry.
type PTE struct {
	Frame *mem.Frame
	// Writable: a store to a non-writable mapping raises a COW fault.
	Writable bool
	// Mergeable marks the page as advised for KSM.
	Mergeable bool
}

// Process is a simulated OS process: a virtual address space and an
// owning kernel. Processes are scheduling containers only; execution
// belongs to Threads.
type Process struct {
	PID  int
	Name string
	// Start is the virtual time the process was created; KSM scans
	// address spaces in start order (earliest first, §IV).
	Start sim.Cycles

	kern  *Kernel
	pages map[uint64]*PTE // keyed by virtual page number
	brk   uint64          // next free virtual page number
}

// Kernel owns the machine, physical memory and the process table.
type Kernel struct {
	world *sim.World
	mach  *machine.Machine
	mem   *mem.Memory

	procs   []*Process
	nextPID int

	// KSM holds the same-page-merging configuration and statistics.
	KSM KSM

	// FaultLatency is the cycle cost of a COW page fault (trap, copy,
	// map). The default models a minor fault plus a 4 KB copy.
	FaultLatency sim.Cycles

	// Stream accumulates access-stream executor statistics (see stream.go).
	Stream StreamStats

	// mapEpoch counts virtual-to-physical mapping mutations across every
	// process: mmap/munmap/exit, explicit sharing, COW breaks and KSM
	// merges all bump it. Compiled access-stream programs cache their
	// translations against it and re-resolve when it moves.
	mapEpoch uint64
}

// MappingEpoch returns the kernel-wide mapping mutation counter.
func (k *Kernel) MappingEpoch() uint64 { return k.mapEpoch }

// New returns a kernel managing mach, with physical memory of totalFrames
// (0 = unbounded).
func New(mach *machine.Machine, totalFrames int) *Kernel {
	k := &Kernel{
		world:        mach.World(),
		mach:         mach,
		mem:          mem.New(totalFrames),
		nextPID:      1,
		FaultLatency: 2400,
	}
	k.KSM.kern = k
	return k
}

// Machine returns the underlying simulated machine.
func (k *Kernel) Machine() *machine.Machine { return k.mach }

// Memory returns physical memory.
func (k *Kernel) Memory() *mem.Memory { return k.mem }

// World returns the simulation world.
func (k *Kernel) World() *sim.World { return k.world }

// NewProcess creates a process. Creation order defines KSM scan order.
func (k *Kernel) NewProcess(name string) *Process {
	p := &Process{
		PID:   k.nextPID,
		Name:  name,
		Start: k.world.Now(),
		kern:  k,
		pages: make(map[uint64]*PTE),
		// Leave virtual page 0 unmapped so address 0 faults, and give
		// each process a distinct base so stray cross-process address
		// reuse is caught.
		brk: uint64(k.nextPID) << 20,
	}
	k.nextPID++
	k.procs = append(k.procs, p)
	return p
}

// Processes returns the process table in creation order.
func (k *Kernel) Processes() []*Process {
	out := make([]*Process, len(k.procs))
	copy(out, k.procs)
	return out
}

// Mmap allocates npages fresh zeroed pages and returns the base virtual
// address (the alloc() of §VII-A).
func (p *Process) Mmap(npages int) (uint64, error) {
	if npages <= 0 {
		return 0, fmt.Errorf("kernel: mmap of %d pages", npages)
	}
	basePage := p.brk
	for i := 0; i < npages; i++ {
		f, err := p.kern.mem.Alloc()
		if err != nil {
			// Roll back what we mapped so far.
			for j := uint64(0); j < uint64(i); j++ {
				pte := p.pages[basePage+j]
				p.kern.mem.Release(pte.Frame)
				delete(p.pages, basePage+j)
			}
			return 0, err
		}
		p.pages[basePage+uint64(i)] = &PTE{Frame: f, Writable: true}
	}
	p.brk += uint64(npages)
	p.kern.mapEpoch++
	return basePage * PageSize, nil
}

// MustMmap is Mmap for tests and examples with unbounded memory.
func (p *Process) MustMmap(npages int) uint64 {
	va, err := p.Mmap(npages)
	if err != nil {
		panic(err)
	}
	return va
}

// Munmap unmaps npages starting at va, releasing the frame references.
// Merged (KSM) frames survive as long as any other mapping holds them.
func (p *Process) Munmap(va uint64, npages int) error {
	base := va / PageSize
	// Validate the whole range before touching anything.
	for i := uint64(0); i < uint64(npages); i++ {
		if p.pages[base+i] == nil {
			return fmt.Errorf("kernel: munmap of unmapped page %#x", (base+i)*PageSize)
		}
	}
	for i := uint64(0); i < uint64(npages); i++ {
		pte := p.pages[base+i]
		p.kern.mem.Release(pte.Frame)
		delete(p.pages, base+i)
	}
	p.kern.mapEpoch++
	return nil
}

// Exit tears down the process's address space. Threads of the process
// are not tracked here; callers stop them first (the simulator's
// processes are scheduling containers only).
func (p *Process) Exit() {
	for vp, pte := range p.pages {
		p.kern.mem.Release(pte.Frame)
		delete(p.pages, vp)
	}
	p.kern.mapEpoch++
}

// Madvise marks npages starting at va as MERGEABLE, making them KSM
// candidates (the madvise() call of §VII-A).
func (p *Process) Madvise(va uint64, npages int) error {
	for i := 0; i < npages; i++ {
		pte := p.pages[va/PageSize+uint64(i)]
		if pte == nil {
			return fmt.Errorf("kernel: madvise on unmapped page %#x", va+uint64(i)*PageSize)
		}
		pte.Mergeable = true
		pte.Frame.Mergeable = true
	}
	return nil
}

// PTEOf returns the page-table entry covering va, or nil.
func (p *Process) PTEOf(va uint64) *PTE { return p.pages[va/PageSize] }

// Pages returns the process's mapped virtual page numbers in ascending
// order (for reverse-mapping walks by OS-level defenses).
func (p *Process) Pages() []uint64 {
	out := make([]uint64, 0, len(p.pages))
	for vp := range p.pages {
		out = append(out, vp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Translate returns the physical address for va.
func (p *Process) Translate(va uint64) (uint64, error) {
	pte := p.pages[va/PageSize]
	if pte == nil {
		return 0, fmt.Errorf("kernel: segfault: pid %d has no mapping for %#x", p.PID, va)
	}
	return pte.Frame.Base() + va%PageSize, nil
}

// WriteBytes copies data into the process's memory starting at va. It is
// an untimed setup operation (loading the page with the agreed pattern);
// it honours COW, breaking shared frames exactly as a timed store would.
func (p *Process) WriteBytes(va uint64, data []byte) error {
	for len(data) > 0 {
		pte := p.pages[va/PageSize]
		if pte == nil {
			return fmt.Errorf("kernel: segfault writing %#x", va)
		}
		if !pte.Writable {
			if err := p.kern.cowBreak(p, va/PageSize, pte); err != nil {
				return err
			}
			pte = p.pages[va/PageSize]
		}
		off := va % PageSize
		n := copy(pte.Frame.Data()[off:], data)
		data = data[n:]
		va += uint64(n)
	}
	return nil
}

// ReadBytes copies n bytes of process memory starting at va.
func (p *Process) ReadBytes(va uint64, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for n > 0 {
		pte := p.pages[va/PageSize]
		if pte == nil {
			return nil, fmt.Errorf("kernel: segfault reading %#x", va)
		}
		off := va % PageSize
		chunk := PageSize - off
		if uint64(n) < chunk {
			chunk = uint64(n)
		}
		out = append(out, pte.Frame.Data()[off:off+chunk]...)
		n -= int(chunk)
		va += chunk
	}
	return out, nil
}

// MapSharedReadOnly maps one fresh physical page read-only into every
// process in procs, returning each process's virtual address for it. It
// models the paper's *explicit* sharing path — read-only physical pages
// holding shared library code or data (§IV) — as opposed to the implicit
// KSM path.
func (k *Kernel) MapSharedReadOnly(procs ...*Process) ([]uint64, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("kernel: shared mapping needs at least one process")
	}
	frame, err := k.mem.Alloc()
	if err != nil {
		return nil, err
	}
	vas := make([]uint64, len(procs))
	for i, p := range procs {
		vpage := p.brk
		p.brk++
		if i > 0 {
			k.mem.AddRef(frame)
		}
		p.pages[vpage] = &PTE{Frame: frame, Writable: false}
		vas[i] = vpage * PageSize
	}
	k.mapEpoch++
	return vas, nil
}

// MapSharedWritable maps one fresh physical page writable into every
// process in procs, returning each process's virtual address for it. It
// models the shm/MAP_SHARED sharing path: stores hit the common frame
// directly (no copy-on-write break), so a writer's cache line turns
// Modified while every mapper still names the same physical line — the
// precondition for the dirty-state (writeback-latency) channel.
func (k *Kernel) MapSharedWritable(procs ...*Process) ([]uint64, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("kernel: shared mapping needs at least one process")
	}
	frame, err := k.mem.Alloc()
	if err != nil {
		return nil, err
	}
	vas := make([]uint64, len(procs))
	for i, p := range procs {
		vpage := p.brk
		p.brk++
		if i > 0 {
			k.mem.AddRef(frame)
		}
		p.pages[vpage] = &PTE{Frame: frame, Writable: true}
		vas[i] = vpage * PageSize
	}
	k.mapEpoch++
	return vas, nil
}

// SharesFrameWith reports whether two processes map the same physical
// frame at the given virtual addresses — the attack precondition.
func (p *Process) SharesFrameWith(va uint64, q *Process, qva uint64) bool {
	a, b := p.pages[va/PageSize], q.pages[qva/PageSize]
	return a != nil && b != nil && a.Frame == b.Frame
}

// cowBreak gives proc a private writable copy of the frame behind vpage.
func (k *Kernel) cowBreak(proc *Process, vpage uint64, pte *PTE) error {
	k.mapEpoch++
	if pte.Frame.Refs() == 1 {
		// Sole mapper: just restore write permission.
		pte.Writable = true
		pte.Frame.MergedByKSM = false
		return nil
	}
	private, err := k.mem.CopyFrame(pte.Frame)
	if err != nil {
		return err
	}
	k.mem.Release(pte.Frame)
	pte.Frame = private
	pte.Writable = true
	k.KSM.Unmerged++
	return nil
}

// mergeCandidates returns every (process, vpage, pte) with a mergeable
// mapping, in process start order then vpage order — the deterministic
// scan order KSM uses.
func (k *Kernel) mergeCandidates() []candidate {
	var out []candidate
	procs := k.Processes()
	sort.SliceStable(procs, func(i, j int) bool { return procs[i].Start < procs[j].Start })
	for _, p := range procs {
		var vpages []uint64
		for vp, pte := range p.pages {
			if pte.Mergeable {
				vpages = append(vpages, vp)
			}
		}
		sort.Slice(vpages, func(i, j int) bool { return vpages[i] < vpages[j] })
		for _, vp := range vpages {
			out = append(out, candidate{proc: p, vpage: vp, pte: p.pages[vp]})
		}
	}
	return out
}

type candidate struct {
	proc  *Process
	vpage uint64
	pte   *PTE
}
