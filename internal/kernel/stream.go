package kernel

import (
	"fmt"

	"coherentleak/internal/machine"
	"coherentleak/internal/sim"
)

// This file implements the compiled access-stream kernel: a trace
// pre-pass flattens a thread's straight-line run of memory operations
// into a Program — a preflattened op array with pre-drawn addresses and
// cached virtual-to-physical translations — which Exec then drives in a
// tight loop. Two execution strategies share the Program representation:
//
//   - interp (the reference): each operation is a kernel.Thread
//     Load/Store/Flush followed by a separate think-time Advance,
//     exactly as a hand-written thread body would issue it.
//   - compiled: each operation performs its machine work untimed
//     (machine.LoadTimed and friends) and fuses the service latency and
//     think time into one scheduler Advance.
//
// The two are bit-identical by contract. The argument, op by op: the
// machine work runs at the same thread-local time T in both modes
// (before any advance), so the global machine-operation order — and
// with it every RNG draw — is unchanged; the fused advance parks the
// thread at the same final time T+latency+think; and the only
// observation the fusion skips is the scheduler's stop-predicate
// evaluation at the intermediate time T+latency. That evaluation is
// provably redundant when the active drive declares its stop structure
// (sim.World.RunUntilDeadline): a clock-free predicate cannot change
// value between T and T+latency because no other thread — and no
// machine work — runs in between, and the deadline comparison is
// checked explicitly against the fuse horizon. Whenever the proof
// obligation fails — an opaque RunUntil predicate, an attached trace
// observer (whose events must arrive in cycle order), a stale
// translation, a store that must take a COW fault — the executor
// disengages to the interpreted path for the operation or the whole
// program, and counts the fallback.

// OpKind is the operation selector of one Program slot.
type OpKind uint8

const (
	// OpLoad is a timed read.
	OpLoad OpKind = iota
	// OpStore is a timed write (COW faults are honoured by fallback).
	OpStore
	// OpFlush is a clflush of the address's line.
	OpFlush
)

func (k OpKind) String() string {
	switch k {
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpFlush:
		return "flush"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// StreamOp is one preflattened operation: an access to VA followed by
// Think cycles of non-memory work.
type StreamOp struct {
	Kind  OpKind
	VA    uint64
	Think sim.Cycles
}

// Program is a straight-line run of operations produced by a trace
// pre-pass. It caches each operation's physical translation against the
// kernel's mapping epoch, so steady-state execution performs no page
// table walks; any mapping mutation anywhere in the kernel invalidates
// the cache and the next Exec re-resolves it.
type Program struct {
	proc *Process
	ops  []StreamOp

	// pa[i] is op i's cached physical address; valid only when
	// resolvedAt matches the kernel's mapping epoch and ok[i] is set.
	// ok[i] is false for unmapped addresses and for stores through
	// read-only (COW/KSM) mappings, which must take the faulting path.
	pa         []uint64
	ok         []bool
	resolvedAt uint64
	resolved   bool
}

// NewProgram returns an empty program for proc's address space with
// capacity for n operations.
func NewProgram(proc *Process, n int) *Program {
	return &Program{
		proc: proc,
		ops:  make([]StreamOp, 0, n),
		pa:   make([]uint64, 0, n),
		ok:   make([]bool, 0, n),
	}
}

// Reset empties the program for rebuilding, keeping its buffers.
func (p *Program) Reset() {
	p.ops = p.ops[:0]
	p.pa = p.pa[:0]
	p.ok = p.ok[:0]
	p.resolved = false
}

// Len returns the operation count.
func (p *Program) Len() int { return len(p.ops) }

// Load appends a read of va followed by think cycles.
func (p *Program) Load(va uint64, think sim.Cycles) { p.add(OpLoad, va, think) }

// Store appends a write to va followed by think cycles.
func (p *Program) Store(va uint64, think sim.Cycles) { p.add(OpStore, va, think) }

// Flush appends a clflush of va followed by think cycles.
func (p *Program) Flush(va uint64, think sim.Cycles) { p.add(OpFlush, va, think) }

func (p *Program) add(k OpKind, va uint64, think sim.Cycles) {
	p.ops = append(p.ops, StreamOp{Kind: k, VA: va, Think: think})
	p.pa = append(p.pa, 0)
	p.ok = append(p.ok, false)
	p.resolved = false
}

// resolve (re)fills the translation cache for the current mapping epoch.
func (p *Program) resolve(epoch uint64) {
	for i := range p.ops {
		op := &p.ops[i]
		pte := p.proc.PTEOf(op.VA)
		if pte == nil || (op.Kind == OpStore && !pte.Writable) {
			p.ok[i] = false
			continue
		}
		p.pa[i] = pte.Frame.Base() + op.VA%PageSize
		p.ok[i] = true
	}
	p.resolvedAt = epoch
	p.resolved = true
}

// StreamStats counts access-stream executor activity for one kernel.
// All counters are cumulative across programs and threads.
type StreamStats struct {
	// CompiledOps counts operations executed on the fused fast path.
	CompiledOps uint64
	// InterpOps counts operations executed by the reference interpreter
	// (the interp kernel, per-op fallbacks, and fallback programs).
	InterpOps uint64
	// UnfusedOps counts compiled-path operations that split their
	// advance to mirror the interpreter exactly (deadline or cycle-limit
	// crossings, zero-think tails).
	UnfusedOps uint64
	// FallbackPrograms counts Exec calls that disengaged the compiled
	// path entirely: an opaque stop predicate or an attached tracer.
	FallbackPrograms uint64
	// FallbackOps counts compiled-path operations interpreted
	// individually: stale translations that resolve to faulting stores
	// or unmapped addresses.
	FallbackOps uint64
}

// Exec runs the program to completion on t, honouring a pending stop
// request before every operation exactly like a hand-written loop. It
// returns the number of operations completed (less than p.Len only when
// stopped). opsCounter, when non-nil, is incremented after each
// operation's access completes and before its think advance — the
// accounting point hand-written workloads use — so externally observed
// counts match the interpreter even if the thread is killed mid-think.
func (t *Thread) Exec(p *Program, opsCounter *uint64) int {
	if t.kern.mach.Config().CompiledKernel() {
		return t.execCompiled(p, opsCounter)
	}
	return t.execInterp(p, opsCounter, &t.kern.Stream.InterpOps)
}

// execInterp is the reference executor: per-op timed machine calls with
// a separate think advance, byte-for-byte the schedule a hand-written
// thread body produces.
func (t *Thread) execInterp(p *Program, opsCounter *uint64, opCtr *uint64) int {
	for i := range p.ops {
		if t.Sim.StopRequested() {
			return i
		}
		op := &p.ops[i]
		switch op.Kind {
		case OpLoad:
			t.Load(op.VA)
		case OpStore:
			t.Store(op.VA)
		case OpFlush:
			t.Flush(op.VA)
		}
		*opCtr++
		if opsCounter != nil {
			*opsCounter++
		}
		if op.Think > 0 {
			t.Sim.Advance(op.Think)
		}
	}
	return len(p.ops)
}

// execCompiled is the fused fast path. Per operation it performs the
// machine work untimed, then advances once by latency+think when the
// fusion proof holds, or splits the advance (counted) when it does not.
func (t *Thread) execCompiled(p *Program, opsCounter *uint64) int {
	st := &t.kern.Stream
	world := t.kern.world
	mach := t.kern.mach
	if _, fuseOK := world.FuseHorizon(); !fuseOK || mach.Traced() {
		// Opaque stop predicate (could read the clock) or a tracer that
		// needs cycle-ordered events: the whole program interprets.
		st.FallbackPrograms++
		return t.execInterp(p, opsCounter, &st.InterpOps)
	}
	if !p.resolved || p.resolvedAt != t.kern.mapEpoch {
		p.resolve(t.kern.mapEpoch)
	}
	limit := world.CycleLimit()
	sim := t.Sim
	core := t.CoreID
	for i := range p.ops {
		if sim.StopRequested() {
			return i
		}
		// Mappings move only while this thread is parked inside an
		// Advance; re-check the epoch after every operation that could
		// have yielded. A cheap equality test keeps the loop tight.
		if p.resolvedAt != t.kern.mapEpoch {
			p.resolve(t.kern.mapEpoch)
		}
		op := &p.ops[i]
		if !p.ok[i] {
			// Unmapped (will segfault identically) or a store that must
			// take the COW faulting path: interpret this op.
			st.FallbackOps++
			st.InterpOps++
			switch op.Kind {
			case OpLoad:
				t.Load(op.VA)
			case OpStore:
				t.Store(op.VA)
			case OpFlush:
				t.Flush(op.VA)
			}
			if opsCounter != nil {
				*opsCounter++
			}
			if op.Think > 0 {
				sim.Advance(op.Think)
			}
			continue
		}
		var a machine.Access
		switch op.Kind {
		case OpLoad:
			a = mach.LoadTimed(sim, core, p.pa[i])
		case OpStore:
			a = mach.StoreTimed(sim, core, p.pa[i])
		case OpFlush:
			a = mach.FlushTimed(sim, core, p.pa[i])
		}
		now := sim.Now()
		total := a.Latency + op.Think
		// Fuse when the interpreter's intermediate scheduling point at
		// now+latency is unobservable: below the drive's stop horizon
		// and, with a cycle limit, not past it (the limit is checked at
		// every advance, so a split mirrors the abort time exactly).
		// The horizon is re-read per op: an advance can park the thread
		// across the end of one drive and into another with a different
		// stop structure.
		deadline, fuseOK := world.FuseHorizon()
		if fuseOK && op.Think > 0 && now+a.Latency <= deadline &&
			(limit == 0 || now+total <= limit) {
			st.CompiledOps++
			if opsCounter != nil {
				*opsCounter++
			}
			sim.Advance(total)
			continue
		}
		st.UnfusedOps++
		sim.Advance(a.Latency)
		if opsCounter != nil {
			*opsCounter++
		}
		if op.Think > 0 {
			sim.Advance(op.Think)
		}
	}
	return len(p.ops)
}
