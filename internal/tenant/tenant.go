// Package tenant is the multi-tenant layer in front of the cohsimd job
// API: API-key authentication from a keys file, per-tenant quotas (jobs
// in flight, pending sweep points, per-sweep point budget), and a
// weighted fair queue that sits in front of the daemon's admission
// control so one tenant's 300-point sweep cannot head-of-line-block
// another tenant's single job.
//
// With no keys file the daemon runs in anonymous mode: every caller is
// the same built-in "anonymous" tenant with unbounded quotas, which is
// byte-for-byte the pre-tenant behavior.
package tenant

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
)

// AnonymousName is the tenant every request maps to when authentication
// is disabled.
const AnonymousName = "anonymous"

// ErrUnauthorized rejects a request whose bearer key is missing or
// unknown (HTTP 401).
var ErrUnauthorized = errors.New("tenant: missing or unknown API key")

// Quotas bounds one tenant's load on the daemon. Zero means unbounded.
type Quotas struct {
	// MaxInFlight bounds jobs admitted and not yet terminal
	// (queued + running), including jobs submitted on the tenant's
	// behalf by its sweeps.
	MaxInFlight int `json:"maxInFlight,omitempty"`
	// MaxQueuedPoints bounds pending (not yet finished) sweep points
	// across the tenant's active sweeps.
	MaxQueuedPoints int `json:"maxQueuedPoints,omitempty"`
	// SweepBudget caps the expanded point count of a single sweep.
	SweepBudget int `json:"sweepBudget,omitempty"`
}

// Tenant is one API-key principal. Tenants are immutable after load.
type Tenant struct {
	// Name identifies the tenant in views, metrics labels and logs.
	Name string `json:"name"`
	// Key is the bearer token; never rendered back out in views.
	Key string `json:"key"`
	// Weight is the tenant's fair-queue share; jobs drain proportional
	// to it. Omitted or zero means 1.
	Weight int `json:"weight,omitempty"`
	Quotas
}

// keysFile is the on-disk format: {"tenants":[{...}, ...]}.
type keysFile struct {
	Tenants []*Tenant `json:"tenants"`
}

// Registry resolves bearer keys to tenants. It is immutable after
// construction, so no locking is needed on the request path.
type Registry struct {
	order []*Tenant
	byKey map[string]*Tenant
	// anonymous is non-nil in anonymous mode (no keys file): every
	// request maps to it and authentication is not required.
	anonymous *Tenant
}

// Open returns an anonymous-mode registry: authentication disabled,
// every caller the same unbounded tenant.
func Open() *Registry {
	return &Registry{anonymous: &Tenant{Name: AnonymousName, Weight: 1}}
}

// Load reads and validates a keys file. The file enables
// authentication: requests must carry a known bearer key.
func Load(path string) (*Registry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: keys file: %w", err)
	}
	var f keysFile
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("tenant: keys file %s: %w", path, err)
	}
	return New(f.Tenants)
}

// New builds a registry from explicit tenants (the keys-file loader and
// tests both land here). Names and keys must be unique; weights default
// to 1; quotas must be non-negative.
func New(tenants []*Tenant) (*Registry, error) {
	if len(tenants) == 0 {
		return nil, errors.New("tenant: keys file defines no tenants")
	}
	r := &Registry{byKey: make(map[string]*Tenant, len(tenants))}
	names := make(map[string]bool, len(tenants))
	for i, t := range tenants {
		switch {
		case t == nil:
			return nil, fmt.Errorf("tenant: entry %d is null", i)
		case t.Name == "":
			return nil, fmt.Errorf("tenant: entry %d has no name", i)
		case t.Name == AnonymousName:
			return nil, fmt.Errorf("tenant: %q is reserved for anonymous mode", AnonymousName)
		case t.Key == "":
			return nil, fmt.Errorf("tenant %s: empty key", t.Name)
		case len(t.Key) < 8:
			return nil, fmt.Errorf("tenant %s: key shorter than 8 characters", t.Name)
		case t.Weight < 0:
			return nil, fmt.Errorf("tenant %s: negative weight %d", t.Name, t.Weight)
		case t.MaxInFlight < 0 || t.MaxQueuedPoints < 0 || t.SweepBudget < 0:
			return nil, fmt.Errorf("tenant %s: negative quota", t.Name)
		case names[t.Name]:
			return nil, fmt.Errorf("tenant: duplicate name %q", t.Name)
		}
		if _, dup := r.byKey[t.Key]; dup {
			return nil, fmt.Errorf("tenant %s: key already assigned to another tenant", t.Name)
		}
		cp := *t
		if cp.Weight == 0 {
			cp.Weight = 1
		}
		names[cp.Name] = true
		r.byKey[cp.Key] = &cp
		r.order = append(r.order, &cp)
	}
	return r, nil
}

// Enabled reports whether authentication is required (a keys file was
// loaded, as opposed to anonymous mode).
func (r *Registry) Enabled() bool { return r.anonymous == nil }

// Anonymous returns the anonymous tenant, or nil when authentication is
// enabled.
func (r *Registry) Anonymous() *Tenant { return r.anonymous }

// Tenants lists the registered tenants in file order (empty in
// anonymous mode).
func (r *Registry) Tenants() []*Tenant {
	out := make([]*Tenant, len(r.order))
	copy(out, r.order)
	return out
}

// Authenticate resolves an Authorization header value to a tenant. In
// anonymous mode every request (with or without a header) maps to the
// anonymous tenant. With authentication enabled, the header must be
// "Bearer <key>" with a registered key; anything else is
// ErrUnauthorized.
func (r *Registry) Authenticate(authorization string) (*Tenant, error) {
	if r.anonymous != nil {
		return r.anonymous, nil
	}
	scheme, key, found := strings.Cut(strings.TrimSpace(authorization), " ")
	if !found || !strings.EqualFold(scheme, "Bearer") {
		return nil, ErrUnauthorized
	}
	key = strings.TrimSpace(key)
	// Constant-time compare over the candidate bucket: the map lookup
	// reveals only existence timing, the compare never leaks a prefix.
	t, ok := r.byKey[key]
	if !ok || subtle.ConstantTimeCompare([]byte(t.Key), []byte(key)) != 1 {
		return nil, ErrUnauthorized
	}
	return t, nil
}
