package tenant

import (
	"sync"
	"testing"
	"time"
)

func drain(t *testing.T, q *FairQueue[string], n int) []string {
	t.Helper()
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		v, ok := q.Pop()
		if !ok {
			t.Fatalf("Pop %d: queue reported closed", i)
		}
		out = append(out, v)
	}
	return out
}

// TestFairQueueNoHeadOfLineBlocking is the tentpole contract: tenant
// B's single job, submitted behind tenant A's deep backlog, is served
// after at most one of A's items.
func TestFairQueueNoHeadOfLineBlocking(t *testing.T) {
	q := NewFairQueue[string](0)
	for i := 0; i < 300; i++ {
		if err := q.Push("a", 1, "a-job"); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Push("b", 1, "b-job"); err != nil {
		t.Fatal(err)
	}
	got := drain(t, q, 2)
	if got[0] != "a-job" || got[1] != "b-job" {
		t.Fatalf("pop order = %v, want b's job second despite a's 300-deep backlog", got)
	}
}

// TestFairQueueWeights pins the 2:1 drain ratio for backlogged tenants
// with weights 2 and 1.
func TestFairQueueWeights(t *testing.T) {
	q := NewFairQueue[string](0)
	for i := 0; i < 6; i++ {
		q.Push("heavy", 2, "h")
		q.Push("light", 1, "l")
	}
	got := drain(t, q, 9)
	h, l := 0, 0
	for _, v := range got {
		if v == "h" {
			h++
		} else {
			l++
		}
	}
	if h != 6 || l != 3 {
		t.Fatalf("first 9 pops: %d heavy / %d light (%v), want 6/3", h, l, got)
	}
}

// TestFairQueueFIFOWithinTenant: one tenant's items keep submission
// order exactly.
func TestFairQueueFIFOWithinTenant(t *testing.T) {
	q := NewFairQueue[int](0)
	for i := 0; i < 10; i++ {
		q.Push("only", 3, i)
	}
	got := drain2(t, q, 10)
	for i, v := range got {
		if v != i {
			t.Fatalf("pop %d = %d, want FIFO order", i, v)
		}
	}
}

func drain2(t *testing.T, q *FairQueue[int], n int) []int {
	t.Helper()
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		v, ok := q.Pop()
		if !ok {
			t.Fatalf("Pop %d: closed", i)
		}
		out = append(out, v)
	}
	return out
}

// TestFairQueueIdleTenantDoesNotBankCredit: a tenant that was idle while
// others drained re-enters at the current virtual time, it does not get
// to flush a burst ahead of an always-backlogged tenant.
func TestFairQueueIdleTenantDoesNotBankCredit(t *testing.T) {
	q := NewFairQueue[string](0)
	for i := 0; i < 10; i++ {
		q.Push("busy", 1, "busy")
	}
	drain(t, q, 10) // virtual time advances to 10 with "idle" absent
	for i := 0; i < 3; i++ {
		q.Push("busy", 1, "busy")
		q.Push("idle", 1, "idle")
	}
	got := drain(t, q, 6)
	// Strict alternation: idle starts at vtime, not at 0.
	for i := 0; i < 6; i += 2 {
		if got[i] != "busy" || got[i+1] != "idle" {
			t.Fatalf("pop order = %v, want busy/idle alternation", got)
		}
	}
}

func TestFairQueueGlobalBound(t *testing.T) {
	q := NewFairQueue[string](2)
	if err := q.Push("a", 1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("b", 1, "y"); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("c", 1, "z"); err != ErrQueueFull {
		t.Fatalf("over-bound push = %v, want ErrQueueFull", err)
	}
	q.Pop()
	if err := q.Push("c", 1, "z"); err != nil {
		t.Fatalf("push after pop freed a slot: %v", err)
	}
}

// TestFairQueueCloseDrains: Close lets queued items drain, then Pop
// reports done; further pushes fail.
func TestFairQueueCloseDrains(t *testing.T) {
	q := NewFairQueue[string](0)
	q.Push("a", 1, "one")
	q.Push("a", 1, "two")
	q.Close()
	if err := q.Push("a", 1, "three"); err != ErrQueueClosed {
		t.Fatalf("push after close = %v, want ErrQueueClosed", err)
	}
	got := drain(t, q, 2)
	if got[0] != "one" || got[1] != "two" {
		t.Fatalf("drain after close = %v", got)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop after drain must report closed")
	}
}

// TestFairQueuePopBlocksUntilPush: a blocked Pop wakes on Push.
func TestFairQueuePopBlocksUntilPush(t *testing.T) {
	q := NewFairQueue[string](0)
	var wg sync.WaitGroup
	wg.Add(1)
	got := ""
	go func() {
		defer wg.Done()
		v, ok := q.Pop()
		if ok {
			got = v
		}
	}()
	time.Sleep(10 * time.Millisecond)
	q.Push("a", 1, "woken")
	wg.Wait()
	if got != "woken" {
		t.Fatalf("blocked Pop got %q", got)
	}
}

func TestFairQueueDepths(t *testing.T) {
	q := NewFairQueue[string](0)
	q.Push("a", 1, "x")
	q.Push("a", 1, "y")
	q.Push("b", 1, "z")
	if q.Len() != 3 || q.Depth("a") != 2 || q.Depth("b") != 1 || q.Depth("nope") != 0 {
		t.Fatalf("Len=%d Depth(a)=%d Depth(b)=%d", q.Len(), q.Depth("a"), q.Depth("b"))
	}
	d := q.Depths()
	if d["a"] != 2 || d["b"] != 1 {
		t.Fatalf("Depths = %v", d)
	}
}
