package tenant

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeKeys(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "keys.json")
	if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadKeysFile(t *testing.T) {
	path := writeKeys(t, `{"tenants":[
		{"name":"alice","key":"alice-key-1234","weight":2,"maxInFlight":8,"maxQueuedPoints":512,"sweepBudget":400},
		{"name":"bob","key":"bob-key-123456"}
	]}`)
	r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Enabled() {
		t.Fatal("a loaded keys file must enable authentication")
	}
	if r.Anonymous() != nil {
		t.Fatal("auth-enabled registry must have no anonymous tenant")
	}

	alice, err := r.Authenticate("Bearer alice-key-1234")
	if err != nil {
		t.Fatal(err)
	}
	if alice.Name != "alice" || alice.Weight != 2 || alice.MaxInFlight != 8 ||
		alice.MaxQueuedPoints != 512 || alice.SweepBudget != 400 {
		t.Fatalf("alice = %+v", alice)
	}
	bob, err := r.Authenticate("bearer bob-key-123456") // scheme is case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if bob.Weight != 1 {
		t.Fatalf("omitted weight must default to 1, got %d", bob.Weight)
	}
	if bob.MaxInFlight != 0 || bob.SweepBudget != 0 {
		t.Fatalf("omitted quotas must stay unbounded: %+v", bob.Quotas)
	}

	for _, bad := range []string{"", "Bearer nope", "Basic alice-key-1234", "alice-key-1234"} {
		if _, err := r.Authenticate(bad); err != ErrUnauthorized {
			t.Fatalf("Authenticate(%q) = %v, want ErrUnauthorized", bad, err)
		}
	}
}

func TestLoadKeysFileRejectsBadEntries(t *testing.T) {
	cases := map[string]string{
		"empty tenants":  `{"tenants":[]}`,
		"no name":        `{"tenants":[{"key":"long-enough-key"}]}`,
		"no key":         `{"tenants":[{"name":"a"}]}`,
		"short key":      `{"tenants":[{"name":"a","key":"short"}]}`,
		"reserved name":  `{"tenants":[{"name":"anonymous","key":"long-enough-key"}]}`,
		"duplicate name": `{"tenants":[{"name":"a","key":"long-enough-k1"},{"name":"a","key":"long-enough-k2"}]}`,
		"duplicate key":  `{"tenants":[{"name":"a","key":"long-enough-key"},{"name":"b","key":"long-enough-key"}]}`,
		"negative quota": `{"tenants":[{"name":"a","key":"long-enough-key","maxInFlight":-1}]}`,
		"unknown field":  `{"tenants":[{"name":"a","key":"long-enough-key","wieght":2}]}`,
	}
	for label, body := range cases {
		if _, err := Load(writeKeys(t, body)); err == nil {
			t.Errorf("%s: Load accepted %s", label, body)
		}
	}
}

func TestAnonymousMode(t *testing.T) {
	r := Open()
	if r.Enabled() {
		t.Fatal("Open() must be anonymous mode")
	}
	for _, hdr := range []string{"", "Bearer whatever", "garbage"} {
		tn, err := r.Authenticate(hdr)
		if err != nil {
			t.Fatalf("anonymous Authenticate(%q): %v", hdr, err)
		}
		if tn.Name != AnonymousName || tn.Weight != 1 {
			t.Fatalf("anonymous tenant = %+v", tn)
		}
		if tn.MaxInFlight != 0 || tn.MaxQueuedPoints != 0 || tn.SweepBudget != 0 {
			t.Fatalf("anonymous quotas must be unbounded: %+v", tn.Quotas)
		}
	}
	if got := r.Tenants(); len(got) != 0 {
		t.Fatalf("anonymous registry lists %d tenants, want 0", len(got))
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing keys file must be an error, not silent anonymous mode")
	}
}

func TestRegistryCopiesTenants(t *testing.T) {
	src := []*Tenant{{Name: "a", Key: "long-enough-key"}}
	r, err := New(src)
	if err != nil {
		t.Fatal(err)
	}
	src[0].Weight = 99
	got, _ := r.Authenticate("Bearer long-enough-key")
	if got.Weight != 1 {
		t.Fatalf("registry aliases caller's tenant slice: weight = %d", got.Weight)
	}
	if !strings.Contains(ErrUnauthorized.Error(), "API key") {
		t.Fatal("ErrUnauthorized should mention API key for client clarity")
	}
}
