package tenant

import (
	"errors"
	"sync"
)

// Queue admission errors.
var (
	// ErrQueueFull rejects a push when the global bound is reached.
	ErrQueueFull = errors.New("tenant: queue full")
	// ErrQueueClosed rejects pushes after Close.
	ErrQueueClosed = errors.New("tenant: queue closed")
)

// FairQueue is a weighted fair queue over per-tenant FIFO lanes,
// implementing start-time fair queueing: each item is stamped with a
// virtual finish time advanced by 1/weight per item, and Pop always
// serves the lane whose head finishes earliest in virtual time. Two
// backlogged tenants with weights 2 and 1 therefore drain 2:1, and a
// tenant that submits one job behind another tenant's 300-item backlog
// is served after at most one of the other tenant's items — not 300.
//
// Within a lane order is strictly FIFO, so per-tenant behavior is
// exactly the old single queue's.
type FairQueue[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	limit  int // global item bound; <=0 unbounded
	lanes  map[string]*lane[T]
	names  []string // lane creation order, for deterministic tie scans
	size   int
	vtime  float64
	closed bool
}

type lane[T any] struct {
	items []fqItem[T]
	// vfinish is the virtual finish time of the lane's last pushed
	// item; the next item starts no earlier.
	vfinish float64
}

type fqItem[T any] struct {
	v      T
	finish float64
}

// NewFairQueue builds a queue bounded to limit items across all
// tenants (<=0 means unbounded).
func NewFairQueue[T any](limit int) *FairQueue[T] {
	q := &FairQueue[T]{limit: limit, lanes: make(map[string]*lane[T])}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues v on the tenant's lane. Weight scales the tenant's
// drain share (minimum 1). ErrQueueFull reports the global bound,
// ErrQueueClosed a queue that has shut down.
func (q *FairQueue[T]) Push(tenant string, weight int, v T) error {
	if weight < 1 {
		weight = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if q.limit > 0 && q.size >= q.limit {
		return ErrQueueFull
	}
	ln, ok := q.lanes[tenant]
	if !ok {
		ln = &lane[T]{}
		q.lanes[tenant] = ln
		q.names = append(q.names, tenant)
	}
	start := ln.vfinish
	if q.vtime > start {
		// An idle tenant re-enters at the current virtual time: it is
		// neither penalized for its idle past nor allowed to bank it.
		start = q.vtime
	}
	finish := start + 1/float64(weight)
	ln.vfinish = finish
	ln.items = append(ln.items, fqItem[T]{v: v, finish: finish})
	q.size++
	q.cond.Signal()
	return nil
}

// Pop blocks until an item is available and returns the one whose head
// finishes earliest in virtual time (ties break on lane creation
// order, so scheduling is deterministic). After Close, Pop drains the
// remaining items and then reports ok=false.
func (q *FairQueue[T]) Pop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.size == 0 {
		return v, false
	}
	var best *lane[T]
	for _, name := range q.names {
		ln := q.lanes[name]
		if len(ln.items) == 0 {
			continue
		}
		if best == nil || ln.items[0].finish < best.items[0].finish {
			best = ln
		}
	}
	it := best.items[0]
	// Shift rather than re-slice forever: lanes are short (bounded by
	// admission control) so the copy is cheap and the backing array
	// cannot grow without bound.
	copy(best.items, best.items[1:])
	best.items = best.items[:len(best.items)-1]
	q.size--
	if it.finish > q.vtime {
		q.vtime = it.finish
	}
	return it.v, true
}

// Close stops the queue: pushes fail, and Pop drains what remains
// before reporting ok=false. Safe to call more than once.
func (q *FairQueue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Len reports the items queued across all tenants.
func (q *FairQueue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// Depth reports one tenant's queued items.
func (q *FairQueue[T]) Depth(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if ln, ok := q.lanes[tenant]; ok {
		return len(ln.items)
	}
	return 0
}

// Depths snapshots every tenant's queued items (lanes that have ever
// held an item; zero-depth lanes are included so gauges stay visible).
func (q *FairQueue[T]) Depths() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int, len(q.lanes))
	for name, ln := range q.lanes {
		out[name] = len(ln.items)
	}
	return out
}
