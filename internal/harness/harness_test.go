package harness

import (
	"fmt"
	"strings"
	"testing"
)

func stubArtifact(name string, cells int) *Artifact {
	return &Artifact{
		Name:        name,
		Description: "stub " + name,
		File:        name + ".tsv",
		Header:      "k\tv",
		Cells: func(p Plan) ([]Cell, error) {
			out := make([]Cell, cells)
			for i := range out {
				out[i] = Cell{
					Name: fmt.Sprintf("c%d", i),
					Run: func() (CellOutput, error) {
						return CellOutput{Rows: []string{fmt.Sprintf("%s\t%d", name, i)}}, nil
					},
				}
			}
			return out, nil
		},
	}
}

func TestRegistryRegisterValidates(t *testing.T) {
	reg := NewRegistry()
	for _, bad := range []*Artifact{
		nil,
		{},
		{Name: "x"},
		{Name: "x", File: "x.tsv"},
		{Name: "x", File: "x.tsv", Header: "h"},
	} {
		if err := reg.Register(bad); err == nil {
			t.Fatalf("Register(%+v) accepted an incomplete artifact", bad)
		}
	}
	if err := reg.Register(stubArtifact("x", 1)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(stubArtifact("x", 1)); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestSelectDefaultsToAllInRegistrationOrder(t *testing.T) {
	reg := NewRegistry()
	for _, n := range []string{"b", "a", "c"} {
		reg.MustRegister(stubArtifact(n, 1))
	}
	arts, err := reg.Select(nil)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(arts))
	for i, a := range arts {
		got[i] = a.Name
	}
	if want := "b a c"; strings.Join(got, " ") != want {
		t.Fatalf("Select(nil) = %v, want %s", got, want)
	}
	// Blank entries (e.g. from splitting an empty -only string) are
	// ignored rather than treated as unknown names.
	if arts, err = reg.Select([]string{"", " "}); err != nil || len(arts) != 3 {
		t.Fatalf("Select(blank) = %v, %v", arts, err)
	}
}

func TestSelectHonorsRequestOrder(t *testing.T) {
	reg := NewRegistry()
	for _, n := range []string{"a", "b", "c"} {
		reg.MustRegister(stubArtifact(n, 1))
	}
	arts, err := reg.Select([]string{" c", "a "})
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 2 || arts[0].Name != "c" || arts[1].Name != "a" {
		t.Fatalf("Select order wrong: %v", arts)
	}
}

// TestSelectValidatesWholeListUpFront is the contract the CLI relies on:
// a typo anywhere in -only fails the whole invocation before any cell
// runs, naming every unknown entry.
func TestSelectValidatesWholeListUpFront(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(stubArtifact("good", 1))
	_, err := reg.Select([]string{"good", "bogus", "worse"})
	if err == nil {
		t.Fatal("unknown names accepted")
	}
	for _, want := range []string{"bogus", "worse", "good"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
	if _, err := reg.Select([]string{"good", "good"}); err == nil {
		t.Fatal("duplicate request accepted")
	}
}

func TestPlanSizeAndDigest(t *testing.T) {
	p := Plan{Seed: 1}
	if p.Quick() || p.Size(10, 2) != 10 {
		t.Fatal("empty sizing should behave as full")
	}
	p.Sizing = SizingQuick
	if !p.Quick() || p.Size(10, 2) != 2 {
		t.Fatal("quick sizing not honored")
	}
	d1 := p.ConfigDigest()
	if len(d1) != 64 {
		t.Fatalf("digest %q not sha256 hex", d1)
	}
	p.Cfg.Sockets = 4
	if d2 := p.ConfigDigest(); d2 == d1 {
		t.Fatal("config change did not change digest")
	}
}
