package harness

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
)

// countingDispatcher executes tasks via their in-process body and
// records every dispatch, so tests can assert what was (not) shipped.
type countingDispatcher struct {
	name string
	err  error

	mu    sync.Mutex
	tasks []CellTask
}

func (d *countingDispatcher) Dispatch(ctx context.Context, t CellTask) (CellOutput, string, error) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
	if d.err != nil {
		return CellOutput{}, d.name, d.err
	}
	out, err := t.Run()
	return out, d.name, err
}

func (d *countingDispatcher) calls() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.tasks)
}

// TestRunnerDispatcherByteIdentity: routing cells through a Dispatcher
// must not change the assembled bytes, and the reports must carry the
// executor's identity.
func TestRunnerDispatcherByteIdentity(t *testing.T) {
	arts := func() []*Artifact { return []*Artifact{shuffledArtifact("delta", 9, nil)} }
	local := &Runner{Parallel: 1}
	lrep, err := local.Run(context.Background(), Plan{Seed: 3}, arts())
	if err != nil {
		t.Fatal(err)
	}

	d := &countingDispatcher{name: "w1"}
	remote := &Runner{Dispatcher: d}
	rrep, err := remote.Run(context.Background(), Plan{Seed: 3}, arts())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lrep.Results[0].TSV(), rrep.Results[0].TSV()) {
		t.Fatal("dispatched TSV differs from local run")
	}
	if d.calls() != 9 {
		t.Fatalf("dispatch calls = %d, want 9", d.calls())
	}
	for _, c := range rrep.Results[0].Cells {
		if c.Worker != "w1" {
			t.Fatalf("cell %s worker = %q, want w1", c.Cell, c.Worker)
		}
	}
	// Tasks carry everything a remote executor needs.
	for _, task := range d.tasks {
		if task.Artifact != "delta" || task.Cell == "" || task.ConfigDigest == "" || task.Run == nil {
			t.Fatalf("incomplete task: %+v", task)
		}
	}
}

// TestRunnerCacheConsultedBeforeDispatch pins the satellite contract:
// a cell satisfied by the manifest is never handed to the dispatcher,
// so cached cells cannot ship to remote workers.
func TestRunnerCacheConsultedBeforeDispatch(t *testing.T) {
	m := NewManifest()
	arts := func() []*Artifact { return []*Artifact{shuffledArtifact("epsilon", 5, nil)} }

	warm := &Runner{Parallel: 2, Manifest: m}
	if _, err := warm.Run(context.Background(), Plan{Seed: 11}, arts()); err != nil {
		t.Fatal(err)
	}

	d := &countingDispatcher{name: "w1"}
	r := &Runner{Manifest: m, Dispatcher: d}
	rep, err := r.Run(context.Background(), Plan{Seed: 11}, arts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHits != 5 || rep.Executed != 0 {
		t.Fatalf("report = %+v, want all cached", rep)
	}
	if d.calls() != 0 {
		t.Fatalf("cached cells were dispatched %d time(s)", d.calls())
	}
	// A different seed misses the cache and dispatches again.
	if _, err := r.Run(context.Background(), Plan{Seed: 12}, arts()); err != nil {
		t.Fatal(err)
	}
	if d.calls() != 5 {
		t.Fatalf("cold cells dispatched %d time(s), want 5", d.calls())
	}
	// Dispatched outputs land in the manifest like local ones.
	d2 := &countingDispatcher{name: "w2"}
	r2 := &Runner{Manifest: m, Dispatcher: d2}
	rep, err = r2.Run(context.Background(), Plan{Seed: 12}, arts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHits != 5 || d2.calls() != 0 {
		t.Fatalf("dispatched outputs not cached: %+v, %d dispatches", rep, d2.calls())
	}
}

// TestRunnerDispatcherErrorFailsCell: a dispatch failure is a per-cell
// failure, not an engine abort.
func TestRunnerDispatcherErrorFailsCell(t *testing.T) {
	d := &countingDispatcher{name: "w1", err: errors.New("worker exploded")}
	r := &Runner{Dispatcher: d}
	rep, err := r.Run(context.Background(), Plan{Seed: 1}, []*Artifact{shuffledArtifact("zeta", 3, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 3 {
		t.Fatalf("failed = %d, want 3", rep.Failed)
	}
	if rep.Err() == nil {
		t.Fatal("aggregated error missing")
	}
	for _, c := range rep.Results[0].Cells {
		if c.Err == nil || c.Worker != "w1" {
			t.Fatalf("cell report = %+v", c)
		}
	}
}

// TestRunnerDispatcherUnboundedFanout: with a dispatcher and Parallel
// unset, every cell is in flight at once (the dispatcher is the bound).
func TestRunnerDispatcherUnboundedFanout(t *testing.T) {
	r := &Runner{Dispatcher: &countingDispatcher{}}
	if got := r.workers(37); got != 37 {
		t.Fatalf("workers = %d, want 37", got)
	}
	r.Parallel = 4
	if got := r.workers(37); got != 4 {
		t.Fatalf("explicit Parallel ignored: %d", got)
	}
}
