package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// ManifestVersion identifies the on-disk manifest layout. A version
// bump invalidates old caches wholesale.
const ManifestVersion = 1

// ManifestEntry is one cached cell output.
type ManifestEntry struct {
	// Digest hashes the inputs that produced the entry (config digest,
	// seed, sizing, artifact, cell). A lookup only hits when it matches.
	Digest string `json:"digest"`
	// Rows and Summary replay the cell's output verbatim.
	Rows    []string `json:"rows"`
	Summary []string `json:"summary,omitempty"`
	// WallMillis is the original execution time, reported on hits so a
	// cached run can say how much work it skipped.
	WallMillis float64 `json:"wallMillis"`
}

type manifestFile struct {
	Version int                       `json:"version"`
	Entries map[string]*ManifestEntry `json:"entries"`
}

// Manifest caches cell outputs across runs. Safe for concurrent use by
// the Runner's workers and for sharing across daemon jobs: lookups,
// stores and saves may all overlap.
type Manifest struct {
	mu      sync.Mutex
	entries map[string]*ManifestEntry
	// limit bounds the entry count; 0 means unbounded. When a Store
	// would exceed it, the least-recently-used entry is evicted.
	limit int
	// clock is a logical recency counter; lastUse[key] holds the tick of
	// the key's last hit or store. Recency is in-memory only — a loaded
	// manifest starts with every entry equally old, which is fine: the
	// first sweep over it refreshes what is live.
	clock   uint64
	lastUse map[string]uint64
	// saveMu serializes Save so two jobs finishing simultaneously write
	// whole snapshots in turn instead of racing on the temp file.
	saveMu sync.Mutex
}

// NewManifest returns an empty manifest.
func NewManifest() *Manifest {
	return &Manifest{
		entries: make(map[string]*ManifestEntry),
		lastUse: make(map[string]uint64),
	}
}

// SetLimit bounds the cache to at most n entries (0 restores unbounded
// growth). If the manifest already holds more, the least-recently-used
// entries are pruned immediately.
func (m *Manifest) SetLimit(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.limit = n
	m.pruneLocked()
}

// pruneLocked evicts least-recently-used entries until the limit holds.
// Eviction scans for the minimum recency tick — O(n) per eviction, but
// evictions are rare (one per Store once the cache is full) and n is
// the cache bound itself. Ties break on the smaller key so eviction
// order is deterministic.
func (m *Manifest) pruneLocked() {
	if m.limit <= 0 {
		return
	}
	for len(m.entries) > m.limit {
		var victim string
		var oldest uint64
		first := true
		for k := range m.entries {
			use := m.lastUse[k]
			if first || use < oldest || (use == oldest && k < victim) {
				victim, oldest, first = k, use, false
			}
		}
		delete(m.entries, victim)
		delete(m.lastUse, victim)
	}
}

// LoadManifest reads a manifest file. A missing file or a version
// mismatch yields an empty manifest (the cache simply starts cold);
// unreadable or malformed files are reported as errors.
func LoadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewManifest(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("harness: manifest: %w", err)
	}
	var f manifestFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("harness: manifest %s: %w", path, err)
	}
	if f.Version != ManifestVersion || f.Entries == nil {
		return NewManifest(), nil
	}
	return &Manifest{entries: f.Entries, lastUse: make(map[string]uint64, len(f.Entries))}, nil
}

// Save writes the manifest atomically: a consistent snapshot is
// marshalled to a temp file in the destination directory, fsynced, and
// renamed over path, so a crash mid-save (or a reader racing a writer)
// can never observe a torn manifest. Concurrent Saves are serialized;
// concurrent Stores continue without blocking on the disk write (they
// land in the next Save's snapshot).
func (m *Manifest) Save(path string) error {
	m.saveMu.Lock()
	defer m.saveMu.Unlock()

	// Snapshot the map under the entry lock, marshal outside it so a
	// large manifest doesn't stall the Runner's workers. Entries are
	// immutable once stored, so sharing pointers is safe.
	m.mu.Lock()
	snap := make(map[string]*ManifestEntry, len(m.entries))
	for k, e := range m.entries {
		snap[k] = e
	}
	m.mu.Unlock()
	b, err := json.MarshalIndent(manifestFile{Version: ManifestVersion, Entries: snap}, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: manifest: %w", err)
	}

	tmp, err := os.CreateTemp(filepath.Dir(path), ".manifest-*")
	if err != nil {
		return fmt.Errorf("harness: manifest: %w", err)
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: manifest: %w", err)
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: manifest: %w", err)
	}
	// Sync the directory so the rename itself survives a crash.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// Lookup returns the cached entry for key if its input digest matches.
func (m *Manifest) Lookup(key, digest string) (*ManifestEntry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	if !ok || e.Digest != digest {
		return nil, false
	}
	m.clock++
	m.lastUse[key] = m.clock
	return e, true
}

// Store records a cell's output, replacing any stale entry. When a
// limit is set and the cache is full, the least-recently-used entry is
// evicted to make room.
func (m *Manifest) Store(key string, e *ManifestEntry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries[key] = e
	m.clock++
	m.lastUse[key] = m.clock
	m.pruneLocked()
}

// Len reports the number of cached cells.
func (m *Manifest) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}
