package harness

import "coherentleak/internal/store"

// The manifest cell-cache now lives in internal/store as the in-memory
// implementation of the content-addressed CellStore interface (the
// on-disk, replica-shared implementation is store.Disk). These aliases
// keep the harness's historical names working for every existing call
// site: a Manifest IS a store.Memory.

// ManifestVersion identifies the on-disk manifest layout. A version
// bump invalidates old caches wholesale.
const ManifestVersion = store.ManifestVersion

// ManifestEntry is one cached cell output.
type ManifestEntry = store.Entry

// Manifest is the in-memory LRU cell store with whole-snapshot
// persistence (see store.Memory).
type Manifest = store.Memory

// NewManifest returns an empty manifest.
func NewManifest() *Manifest { return store.NewMemory() }

// LoadManifest reads a manifest file. A missing file or a version
// mismatch yields an empty manifest (the cache simply starts cold);
// unreadable or malformed files are reported as errors.
func LoadManifest(path string) (*Manifest, error) { return store.LoadMemory(path) }
