package harness_test

// Integration of the engine with the real experiment registry. These
// tests run under `go test -race ./internal/harness/...` (the Makefile
// tier), so the worker pool is race-checked against genuine experiment
// cells, not just synthetic stubs.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"coherentleak/internal/experiments"
	"coherentleak/internal/harness"
	"coherentleak/internal/machine"
	"coherentleak/internal/replay"
)

func quickPlan() harness.Plan {
	return harness.Plan{
		Cfg:    machine.DefaultConfig(),
		Seed:   experiments.DefaultSeed,
		Sizing: harness.SizingQuick,
	}
}

func runQuick(t *testing.T, names []string, r *harness.Runner) *harness.RunReport {
	t.Helper()
	arts, err := experiments.Artifacts().Select(names)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background(), quickPlan(), arts)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestRealArtifactSerialParallelIdentical is the ISSUE's determinism
// acceptance at engine level: a quick-sized multi-cell artifact run at
// -parallel 1 and -parallel 8 must produce byte-identical TSV bytes.
func TestRealArtifactSerialParallelIdentical(t *testing.T) {
	serial := runQuick(t, []string{"fig2"}, &harness.Runner{Parallel: 1})
	parallel := runQuick(t, []string{"fig2"}, &harness.Runner{Parallel: 8})
	s, p := serial.Results[0].TSV(), parallel.Results[0].TSV()
	if !bytes.Equal(s, p) {
		t.Fatalf("fig2 TSV differs between -parallel 1 and -parallel 8:\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}
	if len(serial.Results[0].Rows) == 0 {
		t.Fatal("empty artifact")
	}
}

// TestSinksWriteTSVAndReplayArchive drives the full cmd-level sink
// stack: TSV files on disk plus versioned replay JSON records.
func TestSinksWriteTSVAndReplayArchive(t *testing.T) {
	dir := t.TempDir()
	r := &harness.Runner{
		Parallel: 4,
		Sinks: []harness.Sink{
			harness.TSVSink{Dir: dir},
			harness.ReplaySink{Dir: filepath.Join(dir, "replay")},
		},
	}
	rep := runQuick(t, []string{"table1", "fig2"}, r)

	tsv, err := os.ReadFile(filepath.Join(dir, "fig2_cdf.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tsv, rep.Results[1].TSV()) {
		t.Fatal("TSV file differs from assembled result")
	}

	f, err := os.Open(filepath.Join(dir, "replay", "fig2.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rec, err := replay.LoadArtifact(f)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Artifact != "fig2" || rec.Sizing != "quick" || rec.Seed != experiments.DefaultSeed {
		t.Fatalf("archived provenance wrong: %+v", rec)
	}
	if rec.ConfigDigest != quickPlan().ConfigDigest() {
		t.Fatal("archived config digest mismatch")
	}
	if len(rec.Rows) != len(rep.Results[1].Rows) || len(rec.Cells) != 4 {
		t.Fatalf("archived shape wrong: %d rows, %d cells", len(rec.Rows), len(rec.Cells))
	}
}

// TestManifestCacheAcrossProcessBoundary saves the manifest to disk and
// reloads it, as two cmd invocations would, asserting the second run is
// all cache hits with identical bytes.
func TestManifestCacheAcrossProcessBoundary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")

	m1, err := harness.LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	first := runQuick(t, []string{"fig2"}, &harness.Runner{Parallel: 4, Manifest: m1})
	if first.CacheHits != 0 || first.Executed != 4 {
		t.Fatalf("first run: %+v", first)
	}
	if err := m1.Save(path); err != nil {
		t.Fatal(err)
	}

	m2, err := harness.LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	second := runQuick(t, []string{"fig2"}, &harness.Runner{Parallel: 4, Manifest: m2})
	if second.CacheHits != 4 || second.Executed != 0 {
		t.Fatalf("second run not fully cached: %+v", second)
	}
	if !bytes.Equal(first.Results[0].TSV(), second.Results[0].TSV()) {
		t.Fatal("cached rerun TSV differs")
	}
}

// compiledPlan is quickPlan with the compiled access-stream kernel
// selected. Config.Kernel is digest-exempt, so the two plans address the
// same cache entries — the TSVs must be byte-identical either way.
func compiledPlan() harness.Plan {
	p := quickPlan()
	p.Cfg.Kernel = machine.KernelCompiled
	return p
}

// TestCompiledKernelGOMAXPROCS4Identity is the ISSUE's multi-core
// determinism gate: with the Go scheduler forced to 4 OS threads (real
// parallel cell execution regardless of host shape), a compiled-kernel
// artifact run at -parallel 1 and -parallel 8 must produce byte-identical
// TSVs — and the same bytes as the interpreted reference kernel.
func TestCompiledKernelGOMAXPROCS4Identity(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	arts, err := experiments.Artifacts().Select([]string{"fig2"})
	if err != nil {
		t.Fatal(err)
	}
	run := func(p harness.Plan, parallel int) []byte {
		rep, err := (&harness.Runner{Parallel: parallel}).Run(context.Background(), p, arts)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Err(); err != nil {
			t.Fatal(err)
		}
		return rep.Results[0].TSV()
	}

	serial := run(compiledPlan(), 1)
	parallel := run(compiledPlan(), 8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("compiled kernel TSV differs between -parallel 1 and -parallel 8 under GOMAXPROCS=4:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}
	interp := run(quickPlan(), 4)
	if !bytes.Equal(serial, interp) {
		t.Fatalf("compiled kernel TSV differs from interpreted reference:\n--- compiled ---\n%s--- interp ---\n%s", serial, interp)
	}
}
