package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"coherentleak/internal/replay"
)

// TSVSink writes each assembled artifact to <Dir>/<artifact.File>.
type TSVSink struct {
	Dir string
	// Log, when set, receives one "wrote <path> (<n> rows)" line per
	// artifact — deterministic, since sinks run at assembly in artifact
	// order.
	Log io.Writer
}

// WriteArtifact implements Sink.
func (s TSVSink) WriteArtifact(res *ArtifactResult) error {
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(s.Dir, res.Artifact.File)
	if err := os.WriteFile(path, res.TSV(), 0o644); err != nil {
		return err
	}
	if s.Log != nil {
		fmt.Fprintf(s.Log, "wrote %s (%d rows)\n", path, len(res.Rows))
	}
	return nil
}

// ReplaySink archives each assembled artifact as a versioned JSON
// record under <Dir>/<artifact>.json, so every run's outputs can be
// diffed across code revisions without re-running the simulator.
type ReplaySink struct {
	Dir string
}

// NewArtifactRecord converts an assembled artifact into its versioned
// replay DTO — the one ReplaySink archives and the service daemon serves
// as a JSON download.
func NewArtifactRecord(res *ArtifactResult) *replay.ArtifactRecord {
	rec := &replay.ArtifactRecord{
		Version:      replay.ArtifactSchemaVersion,
		Artifact:     res.Artifact.Name,
		Description:  res.Artifact.Description,
		Sizing:       string(res.Plan.Sizing),
		Seed:         res.Plan.Seed,
		ConfigDigest: res.ConfigDigest,
		Header:       res.Artifact.Header,
		Rows:         res.Rows,
	}
	if rec.Sizing == "" {
		rec.Sizing = string(SizingFull)
	}
	for _, c := range res.Cells {
		cell := replay.ArtifactCell{
			Name:       c.Cell,
			Cached:     c.Cached,
			WallMillis: float64(c.Wall) / float64(time.Millisecond),
			Rows:       c.Rows,
		}
		if c.Err != nil {
			cell.Error = c.Err.Error()
		}
		rec.Cells = append(rec.Cells, cell)
	}
	return rec
}

// WriteArtifact implements Sink.
func (s ReplaySink) WriteArtifact(res *ArtifactResult) error {
	rec := NewArtifactRecord(res)
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(s.Dir, res.Artifact.Name+".json"))
	if err != nil {
		return err
	}
	if err := replay.SaveArtifact(f, rec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
