// Package harness is the experiment engine every paper artifact plugs
// into. An Artifact registers a name, description, TSV shape and a
// decomposition into independent Cells — one self-contained unit of
// work that builds its own simulated world and returns typed rows
// already encoded as TSV. The Runner executes cells from any number of
// artifacts on a bounded worker pool, reassembles rows in deterministic
// cell order (so parallel output is byte-identical to a serial run),
// streams per-cell progress and timing to a single summary writer, and
// hands each finished artifact to pluggable sinks (TSV files, replay
// JSON archives). A Manifest keyed by (config digest, seed, sizing,
// artifact, cell) lets repeated invocations skip cells whose inputs are
// unchanged.
package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"coherentleak/internal/machine"
)

// Sizing selects the payload scale an artifact plans its cells for.
type Sizing string

const (
	// SizingFull regenerates the artifact at paper scale.
	SizingFull Sizing = "full"
	// SizingQuick uses reduced payloads for a fast pass.
	SizingQuick Sizing = "quick"
)

// Plan carries the inputs every cell derives its work from. Two runs
// with equal plans produce byte-identical artifact tables.
type Plan struct {
	// Cfg is the simulated machine every cell instantiates privately.
	Cfg machine.Config
	// Seed pins all experiment randomness.
	Seed uint64
	// Sizing selects quick or full payloads; empty means full.
	Sizing Sizing
}

// Quick reports whether the plan asks for reduced payloads.
func (p Plan) Quick() bool { return p.Sizing == SizingQuick }

// Size picks the full or quick variant of a payload knob.
func (p Plan) Size(full, quick int) int {
	if p.Quick() {
		return quick
	}
	return full
}

// ConfigDigest is a stable hash of the machine configuration, used to
// key cached cells and stamp archived results.
func (p Plan) ConfigDigest() string {
	b, err := json.Marshal(p.Cfg)
	if err != nil {
		// machine.Config is a plain value struct; Marshal cannot fail.
		panic(fmt.Sprintf("harness: marshal config: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// CellOutput is what one executed cell contributes to its artifact.
type CellOutput struct {
	// Rows are finished TSV rows (no trailing newline), appended to the
	// artifact table in cell order.
	Rows []string
	// Summary lines are echoed to the run's summary writer in cell
	// order once the artifact assembles, so console summaries stay
	// deterministic even under parallel execution.
	Summary []string
}

// Cell is one independently executable unit of an artifact: it shares
// nothing with other cells and builds its own simulated world.
type Cell struct {
	// Name identifies the cell within its artifact (scenario, placement,
	// sweep column, ...). Must be unique per artifact.
	Name string
	// Run produces the cell's rows and summary lines.
	Run func() (CellOutput, error)
}

// Artifact is one registered paper artifact (a table or figure).
type Artifact struct {
	// Name is the registry key, e.g. "fig8".
	Name string
	// Description is a one-line summary for listings.
	Description string
	// File is the TSV filename the artifact assembles into.
	File string
	// Header is the TSV header line (no trailing newline).
	Header string
	// Cells decomposes the artifact into independent cells for a plan.
	Cells func(p Plan) ([]Cell, error)
}

func (a *Artifact) validate() error {
	switch {
	case a == nil:
		return fmt.Errorf("harness: nil artifact")
	case a.Name == "":
		return fmt.Errorf("harness: artifact without a name")
	case a.File == "":
		return fmt.Errorf("harness: artifact %s without an output file", a.Name)
	case a.Header == "":
		return fmt.Errorf("harness: artifact %s without a TSV header", a.Name)
	case a.Cells == nil:
		return fmt.Errorf("harness: artifact %s without a cell planner", a.Name)
	}
	return nil
}

// Registry holds the known artifacts in registration order.
type Registry struct {
	order  []*Artifact
	byName map[string]*Artifact
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Artifact)}
}

// Register adds an artifact, rejecting incomplete or duplicate entries.
func (r *Registry) Register(a *Artifact) error {
	if err := a.validate(); err != nil {
		return err
	}
	if _, dup := r.byName[a.Name]; dup {
		return fmt.Errorf("harness: duplicate artifact %q", a.Name)
	}
	r.byName[a.Name] = a
	r.order = append(r.order, a)
	return nil
}

// MustRegister is Register for static registration tables.
func (r *Registry) MustRegister(a *Artifact) {
	if err := r.Register(a); err != nil {
		panic(err)
	}
}

// Artifacts returns the registered artifacts in registration order.
func (r *Registry) Artifacts() []*Artifact {
	out := make([]*Artifact, len(r.order))
	copy(out, r.order)
	return out
}

// Names returns the registered names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.order))
	for i, a := range r.order {
		out[i] = a.Name
	}
	return out
}

// Get looks up one artifact.
func (r *Registry) Get(name string) (*Artifact, bool) {
	a, ok := r.byName[name]
	return a, ok
}

// Select resolves a requested artifact list in request order, validating
// every name (and rejecting repeats) before anything runs, so a typo in
// the last entry cannot surface after earlier artifacts already
// executed. An empty request selects all artifacts in registration
// order.
func (r *Registry) Select(names []string) ([]*Artifact, error) {
	cleaned := make([]string, 0, len(names))
	for _, n := range names {
		if n = strings.TrimSpace(n); n != "" {
			cleaned = append(cleaned, n)
		}
	}
	if len(cleaned) == 0 {
		return r.Artifacts(), nil
	}
	var unknown []string
	seen := make(map[string]bool, len(cleaned))
	out := make([]*Artifact, 0, len(cleaned))
	for _, n := range cleaned {
		a, ok := r.byName[n]
		if !ok {
			unknown = append(unknown, n)
			continue
		}
		if seen[n] {
			return nil, fmt.Errorf("harness: artifact %q requested twice", n)
		}
		seen[n] = true
		out = append(out, a)
	}
	if len(unknown) > 0 {
		return nil, fmt.Errorf("harness: unknown artifact(s) %s (known: %s)",
			strings.Join(unknown, ", "), strings.Join(r.Names(), ", "))
	}
	return out, nil
}
