package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestManifestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")

	m := NewManifest()
	m.Store("fig2/LShared", &ManifestEntry{
		Digest:     "abc",
		Rows:       []string{"LShared\t98\t0.5"},
		Summary:    []string{"fig2 LShared mean=98"},
		WallMillis: 12.5,
	})
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 1 {
		t.Fatalf("Len = %d", loaded.Len())
	}
	e, ok := loaded.Lookup("fig2/LShared", "abc")
	if !ok || e.Rows[0] != "LShared\t98\t0.5" || e.WallMillis != 12.5 {
		t.Fatalf("Lookup = %+v, %v", e, ok)
	}
	if _, ok := loaded.Lookup("fig2/LShared", "different-digest"); ok {
		t.Fatal("stale digest hit")
	}
	if _, ok := loaded.Lookup("fig2/absent", "abc"); ok {
		t.Fatal("absent key hit")
	}
}

// TestManifestConcurrentStoreAndSave hammers Store/Lookup/Save from
// many goroutines — the daemon's shape, where jobs store cells while
// another job's completion triggers an atomic save. Run under -race via
// `make test-race`. Every observed on-disk manifest must parse (no torn
// writes) and the final save must contain every entry.
func TestManifestConcurrentStoreAndSave(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	m := NewManifest()

	const writers, perWriter = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("art%d/cell%d", w, i)
				m.Store(key, &ManifestEntry{Digest: "d", Rows: []string{key}})
				if i%10 == 0 {
					if err := m.Save(path); err != nil {
						t.Error(err)
						return
					}
					if _, err := LoadManifest(path); err != nil {
						t.Errorf("torn manifest observed: %v", err)
						return
					}
				}
				m.Lookup(key, "d")
			}
		}(w)
	}
	wg.Wait()

	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	final, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if final.Len() != writers*perWriter {
		t.Fatalf("final manifest has %d entries, want %d", final.Len(), writers*perWriter)
	}
	// No temp files may be left behind by the atomic rename dance.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "manifest.json" {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestLoadManifestMissingFileIsEmpty(t *testing.T) {
	m, err := LoadManifest(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestLoadManifestVersionMismatchStartsCold(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	data := `{"version": 999, "entries": {"k": {"digest": "d", "rows": ["r"]}}}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Fatal("future-version manifest should be discarded, not read")
	}
}

func TestLoadManifestCorruptIsError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}
