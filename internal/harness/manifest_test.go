package harness

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func TestManifestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")

	m := NewManifest()
	m.Store("fig2/LShared", &ManifestEntry{
		Digest:     "abc",
		Rows:       []string{"LShared\t98\t0.5"},
		Summary:    []string{"fig2 LShared mean=98"},
		WallMillis: 12.5,
	})
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 1 {
		t.Fatalf("Len = %d", loaded.Len())
	}
	e, ok := loaded.Lookup("fig2/LShared", "abc")
	if !ok || e.Rows[0] != "LShared\t98\t0.5" || e.WallMillis != 12.5 {
		t.Fatalf("Lookup = %+v, %v", e, ok)
	}
	if _, ok := loaded.Lookup("fig2/LShared", "different-digest"); ok {
		t.Fatal("stale digest hit")
	}
	if _, ok := loaded.Lookup("fig2/absent", "abc"); ok {
		t.Fatal("absent key hit")
	}
}

// TestManifestConcurrentStoreAndSave hammers Store/Lookup/Save from
// many goroutines — the daemon's shape, where jobs store cells while
// another job's completion triggers an atomic save. Run under -race via
// `make test-race`. Every observed on-disk manifest must parse (no torn
// writes) and the final save must contain every entry.
func TestManifestConcurrentStoreAndSave(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	m := NewManifest()

	const writers, perWriter = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("art%d/cell%d", w, i)
				m.Store(key, &ManifestEntry{Digest: "d", Rows: []string{key}})
				if i%10 == 0 {
					if err := m.Save(path); err != nil {
						t.Error(err)
						return
					}
					if _, err := LoadManifest(path); err != nil {
						t.Errorf("torn manifest observed: %v", err)
						return
					}
				}
				m.Lookup(key, "d")
			}
		}(w)
	}
	wg.Wait()

	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	final, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if final.Len() != writers*perWriter {
		t.Fatalf("final manifest has %d entries, want %d", final.Len(), writers*perWriter)
	}
	// No temp files may be left behind by the atomic rename dance.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "manifest.json" {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestLoadManifestMissingFileIsEmpty(t *testing.T) {
	m, err := LoadManifest(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestLoadManifestVersionMismatchStartsCold(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	data := `{"version": 999, "entries": {"k": {"digest": "d", "rows": ["r"]}}}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Fatal("future-version manifest should be discarded, not read")
	}
}

func TestLoadManifestCorruptIsError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

func TestManifestLimitEvictsLeastRecentlyUsed(t *testing.T) {
	m := NewManifest()
	m.SetLimit(2)
	m.Store("a", &ManifestEntry{Digest: "da"})
	m.Store("b", &ManifestEntry{Digest: "db"})
	// Touch "a" so "b" becomes the LRU victim.
	if _, ok := m.Lookup("a", "da"); !ok {
		t.Fatal("a missing before eviction")
	}
	m.Store("c", &ManifestEntry{Digest: "dc"})
	if m.Len() != 2 {
		t.Fatalf("len = %d, want 2", m.Len())
	}
	if _, ok := m.Lookup("b", "db"); ok {
		t.Fatal("LRU entry b survived")
	}
	if _, ok := m.Lookup("a", "da"); !ok {
		t.Fatal("recently used entry a evicted")
	}
	if _, ok := m.Lookup("c", "dc"); !ok {
		t.Fatal("fresh entry c evicted")
	}

	// Shrinking the limit prunes immediately.
	m.SetLimit(1)
	if m.Len() != 1 {
		t.Fatalf("len after shrink = %d, want 1", m.Len())
	}
	// Lifting the limit stops eviction.
	m.SetLimit(0)
	m.Store("d", &ManifestEntry{Digest: "dd"})
	m.Store("e", &ManifestEntry{Digest: "de"})
	if m.Len() != 3 {
		t.Fatalf("len unbounded = %d, want 3", m.Len())
	}
}

// TestManifestPrunedEntryReruns is the LRU regression contract: once an
// entry is pruned, the next run re-executes that cell and produces the
// same bytes as the original — pruning trades work for memory, never
// correctness.
func TestManifestPrunedEntryReruns(t *testing.T) {
	var ran atomic.Int64
	arts := []*Artifact{shuffledArtifact("pruned", 6, &ran)}
	m := NewManifest()
	m.SetLimit(3) // half the artifact's cells fit
	r := &Runner{Parallel: 1, Manifest: m}

	first, err := r.Run(context.Background(), Plan{Seed: 3}, arts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Executed != 6 {
		t.Fatalf("first run report = %+v", first)
	}
	if m.Len() != 3 {
		t.Fatalf("manifest grew past limit: %d", m.Len())
	}

	second, err := r.Run(context.Background(), Plan{Seed: 3}, arts)
	if err != nil {
		t.Fatal(err)
	}
	// Some cells were pruned and must re-execute; the surviving ones may
	// hit. Either way the assembled bytes must match the original run.
	if second.Executed == 0 {
		t.Fatal("no cell re-ran despite pruning")
	}
	if second.Executed+second.CacheHits != 6 {
		t.Fatalf("second run report = %+v", second)
	}
	if !bytes.Equal(first.Results[0].TSV(), second.Results[0].TSV()) {
		t.Fatalf("re-run TSV differs after pruning:\n%s\nvs\n%s",
			first.Results[0].TSV(), second.Results[0].TSV())
	}
}
