package harness

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"coherentleak/internal/store"
)

// Sink receives each artifact once its cells are assembled, in artifact
// order. Implementations write TSV files, archive replay JSON, collect
// results in memory for tests, and so on.
type Sink interface {
	WriteArtifact(res *ArtifactResult) error
}

// CellTask identifies one dispatchable cell: everything a remote
// executor needs to re-derive the cell from a registry (plan, artifact
// and cell names) plus the in-process body for dispatchers that execute
// locally. The cell cache is consulted before a task is ever built, so
// a cached cell is never dispatched anywhere.
type CellTask struct {
	Plan         Plan
	ConfigDigest string
	Artifact     string
	Cell         string
	// Index is the cell's position in its artifact's deterministic order.
	Index int
	// Run executes the cell in-process (panic-safe). Remote dispatchers
	// ignore it and re-plan the cell from the registry instead.
	Run func() (CellOutput, error)
}

// Dispatcher executes cells somewhere — in-process, or farmed out to a
// worker fleet. Dispatch blocks until the cell finishes (or ctx ends)
// and returns the output plus the identity of the executor ("" means
// in-process). Implementations must be safe for concurrent calls: the
// Runner keeps many dispatches in flight.
type Dispatcher interface {
	Dispatch(ctx context.Context, t CellTask) (CellOutput, string, error)
}

// Runner executes artifact cells on a bounded worker pool.
type Runner struct {
	// Parallel bounds the cells in flight; <=0 means GOMAXPROCS when
	// executing locally. When a Dispatcher is set, <=0 means "all cells
	// at once": the dispatcher's own lease queue is the real bound, and
	// throttling here would only starve remote workers.
	Parallel int
	// Dispatcher, when set, executes cells instead of the local pool.
	// Nil keeps the default in-process execution path.
	Dispatcher Dispatcher
	// Progress receives streaming per-cell completion lines (with
	// timing) and, at assembly, each cell's deterministic summary
	// lines. Nil discards them.
	Progress io.Writer
	// Manifest, when set, caches cell outputs across runs: a cell whose
	// input digest matches a stored entry is not re-executed. Any
	// store.CellStore works here — the historical in-memory Manifest,
	// the on-disk replica-shared store, or a future network backend.
	Manifest store.CellStore
	// Sinks receive every assembled artifact in artifact order.
	Sinks []Sink
	// Observe, when set, receives a structured callback per finished
	// cell (after caching and error wrapping), with the completion
	// counter. Calls are serialized; long-running observers stall
	// progress reporting but not cell execution.
	Observe func(done, total int, rep CellReport)
}

// CellReport records how one cell ran.
type CellReport struct {
	Artifact string
	Cell     string
	// Index is the cell's position in its artifact's deterministic order.
	Index  int
	Cached bool
	// Worker names the remote executor that ran the cell; empty for
	// in-process execution and cache hits.
	Worker string
	Wall   time.Duration
	Rows   int
	Err    error
}

// ArtifactResult is one artifact's assembled output.
type ArtifactResult struct {
	Artifact     *Artifact
	Plan         Plan
	ConfigDigest string
	// Rows are the artifact's TSV rows in deterministic cell order,
	// byte-identical regardless of worker count.
	Rows []string
	// Summary is the concatenation of cell summary lines in cell order.
	Summary []string
	Cells   []CellReport
	// Failed counts cells that returned an error; their rows are absent.
	Failed int
}

// TSV renders the assembled table, header included.
func (a *ArtifactResult) TSV() []byte {
	var b strings.Builder
	b.WriteString(a.Artifact.Header)
	b.WriteByte('\n')
	for _, r := range a.Rows {
		b.WriteString(r)
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// RunReport summarizes one Runner.Run invocation.
type RunReport struct {
	Results []*ArtifactResult
	// Executed counts cells that actually ran (including failures);
	// CacheHits counts cells satisfied from the manifest.
	Executed  int
	CacheHits int
	Failed    int
	Wall      time.Duration
}

// Err aggregates per-cell failures, nil when every cell succeeded.
func (r *RunReport) Err() error {
	if r.Failed == 0 {
		return nil
	}
	var msgs []string
	for _, res := range r.Results {
		for _, c := range res.Cells {
			if c.Err != nil {
				msgs = append(msgs, c.Err.Error())
			}
		}
	}
	return fmt.Errorf("harness: %d cell(s) failed: %s", r.Failed, strings.Join(msgs, "; "))
}

func (r *Runner) workers(jobs int) int {
	n := r.Parallel
	if n <= 0 {
		if r.Dispatcher != nil {
			n = jobs
		} else {
			n = runtime.GOMAXPROCS(0)
		}
	}
	if n > jobs {
		n = jobs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Run executes every cell of the given artifacts, assembles each
// artifact's rows in deterministic cell order, streams summaries, and
// feeds the sinks. Per-cell failures do not abort the run: remaining
// cells still execute and the failures are aggregated in the report.
// The returned error covers engine-level problems only (cell planning,
// sink writes, cancellation).
//
// Cancelling ctx stops the run between cells: cells already executing
// finish (cell bodies are pure compute and are never interrupted
// mid-flight), undispatched cells are marked failed with the context
// error, sinks are skipped, and Run returns the partial report together
// with a non-nil error wrapping ctx.Err(). Both the CLI's -timeout and
// the daemon's per-job cancellation ride on this.
func (r *Runner) Run(ctx context.Context, plan Plan, arts []*Artifact) (*RunReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	digest := plan.ConfigDigest()

	type job struct{ art, cell int }
	cells := make([][]Cell, len(arts))
	outputs := make([][]CellOutput, len(arts))
	reports := make([][]CellReport, len(arts))
	var jobs []job
	for ai, a := range arts {
		if err := a.validate(); err != nil {
			return nil, err
		}
		cs, err := a.Cells(plan)
		if err != nil {
			return nil, fmt.Errorf("harness: %s: planning cells: %w", a.Name, err)
		}
		if len(cs) == 0 {
			return nil, fmt.Errorf("harness: %s: no cells for sizing %q", a.Name, plan.Sizing)
		}
		names := make(map[string]bool, len(cs))
		for _, c := range cs {
			if c.Name == "" || c.Run == nil {
				return nil, fmt.Errorf("harness: %s: cell without name or body", a.Name)
			}
			if names[c.Name] {
				return nil, fmt.Errorf("harness: %s: duplicate cell %q", a.Name, c.Name)
			}
			names[c.Name] = true
		}
		cells[ai] = cs
		outputs[ai] = make([]CellOutput, len(cs))
		reports[ai] = make([]CellReport, len(cs))
		for ci := range cs {
			jobs = append(jobs, job{ai, ci})
		}
	}

	var (
		mu   sync.Mutex // guards done counter and Progress/Observe interleaving
		done int
	)
	total := len(jobs)
	jobCh := make(chan job)
	var wg sync.WaitGroup
	for w := r.workers(total); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				a, c := arts[j.art], cells[j.art][j.cell]
				rep := &reports[j.art][j.cell]
				if err := ctx.Err(); err != nil {
					// Dispatched before cancellation won the race: mark
					// rather than execute.
					rep.Artifact, rep.Cell, rep.Index = a.Name, c.Name, j.cell
					rep.Err = fmt.Errorf("%s/%s: %w", a.Name, c.Name, err)
				} else {
					r.runCell(ctx, plan, digest, a, c, j.cell, &outputs[j.art][j.cell], rep)
				}
				mu.Lock()
				done++
				r.progressLine(done, total, rep)
				if r.Observe != nil {
					r.Observe(done, total, *rep)
				}
				mu.Unlock()
			}
		}()
	}
dispatch:
	for _, j := range jobs {
		select {
		case jobCh <- j:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobCh)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		// Mark every cell the dispatcher never handed out, then assemble
		// the partial report so callers can still see what completed.
		ran := done
		for _, j := range jobs {
			rep := &reports[j.art][j.cell]
			if rep.Artifact != "" {
				continue
			}
			a, c := arts[j.art], cells[j.art][j.cell]
			rep.Artifact, rep.Cell, rep.Index = a.Name, c.Name, j.cell
			rep.Err = fmt.Errorf("%s/%s: %w", a.Name, c.Name, err)
		}
		rep, _ := r.assemble(plan, digest, arts, cells, outputs, reports, nil)
		rep.Wall = time.Since(start)
		return rep, fmt.Errorf("harness: run cancelled after %d/%d cell(s): %w", ran, total, err)
	}

	rep, sinkErr := r.assemble(plan, digest, arts, cells, outputs, reports, r.Sinks)
	rep.Wall = time.Since(start)
	return rep, sinkErr
}

// assemble folds per-cell outputs into artifact results in deterministic
// cell order, streams summaries, and feeds every sink in artifact order.
// A sink failure stops further sink writes and is returned.
func (r *Runner) assemble(plan Plan, digest string, arts []*Artifact, cells [][]Cell, outputs [][]CellOutput, reports [][]CellReport, sinks []Sink) (*RunReport, error) {
	rep := &RunReport{}
	for ai, a := range arts {
		res := &ArtifactResult{Artifact: a, Plan: plan, ConfigDigest: digest}
		for ci := range cells[ai] {
			cr := reports[ai][ci]
			res.Cells = append(res.Cells, cr)
			switch {
			case cr.Err != nil:
				res.Failed++
				rep.Executed++
			case cr.Cached:
				rep.CacheHits++
			default:
				rep.Executed++
			}
			if cr.Err == nil {
				res.Rows = append(res.Rows, outputs[ai][ci].Rows...)
				res.Summary = append(res.Summary, outputs[ai][ci].Summary...)
			}
		}
		rep.Failed += res.Failed
		rep.Results = append(rep.Results, res)
		if r.Progress != nil {
			for _, line := range res.Summary {
				fmt.Fprintln(r.Progress, line)
			}
		}
		for _, s := range sinks {
			if err := s.WriteArtifact(res); err != nil {
				return rep, fmt.Errorf("harness: sink for %s: %w", a.Name, err)
			}
		}
	}
	return rep, nil
}

func (r *Runner) runCell(ctx context.Context, plan Plan, digest string, a *Artifact, c Cell, idx int, out *CellOutput, rep *CellReport) {
	rep.Artifact, rep.Cell, rep.Index = a.Name, c.Name, idx
	key := a.Name + "/" + c.Name
	in := cellDigest(digest, plan.Seed, plan.Sizing, a.Name, c.Name)
	// Cache entries are keyed by the full input digest, not just the
	// cell name, so plan variants (config/seed/sizing sweeps) coexist in
	// the manifest instead of evicting each other — that is what lets a
	// repeated sweep be served almost entirely from cache. The LRU limit
	// (SetLimit) bounds the growth this implies.
	cacheKey := key + "@" + in
	// The cache is consulted before dispatch, not just before local
	// execution: a cached cell never ships to a remote worker.
	if r.Manifest != nil {
		if e, ok := r.Manifest.Lookup(cacheKey, in); ok {
			*out = CellOutput{Rows: e.Rows, Summary: e.Summary}
			rep.Cached = true
			rep.Rows = len(e.Rows)
			return
		}
	}
	begin := time.Now()
	var (
		o   CellOutput
		err error
	)
	if r.Dispatcher != nil {
		o, rep.Worker, err = r.Dispatcher.Dispatch(ctx, CellTask{
			Plan:         plan,
			ConfigDigest: digest,
			Artifact:     a.Name,
			Cell:         c.Name,
			Index:        idx,
			Run:          func() (CellOutput, error) { return runCellSafely(c) },
		})
	} else {
		o, err = runCellSafely(c)
	}
	rep.Wall = time.Since(begin)
	if err != nil {
		rep.Err = fmt.Errorf("%s: %w", key, err)
		return
	}
	*out = o
	rep.Rows = len(o.Rows)
	if r.Manifest != nil {
		r.Manifest.Store(cacheKey, &ManifestEntry{
			Digest:     in,
			Rows:       o.Rows,
			Summary:    o.Summary,
			WallMillis: float64(rep.Wall) / float64(time.Millisecond),
		})
	}
}

// runCellSafely converts a cell panic (e.g. a noise-attach panic deep in
// an experiment closure) into a per-cell error so one bad cell cannot
// take down the whole run.
func runCellSafely(c Cell) (out CellOutput, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	return c.Run()
}

func (r *Runner) progressLine(done, total int, rep *CellReport) {
	if r.Progress == nil {
		return
	}
	key := rep.Artifact + "/" + rep.Cell
	switch {
	case rep.Err != nil:
		fmt.Fprintf(r.Progress, "[%d/%d] %-34s FAILED: %v\n", done, total, key, rep.Err)
	case rep.Cached:
		fmt.Fprintf(r.Progress, "[%d/%d] %-34s cached (%d rows)\n", done, total, key, rep.Rows)
	default:
		fmt.Fprintf(r.Progress, "[%d/%d] %-34s %8s (%d rows)\n",
			done, total, key, rep.Wall.Round(time.Millisecond), rep.Rows)
	}
}

// cellDigest keys a cell's cached output by everything that determines
// it: machine configuration, seed, sizing, artifact and cell identity.
func cellDigest(configDigest string, seed uint64, sizing Sizing, artifact, cell string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%d\x00%s\x00%s\x00%s", configDigest, seed, sizing, artifact, cell)
	return hex.EncodeToString(h.Sum(nil))
}
