package harness

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// shuffledArtifact returns an artifact whose cells finish out of order
// under parallel execution (later cells sleep less), so any
// order-sensitivity in assembly would show up as reordered rows.
func shuffledArtifact(name string, cells int, ran *atomic.Int64) *Artifact {
	return &Artifact{
		Name:        name,
		Description: "shuffled " + name,
		File:        name + ".tsv",
		Header:      "cell\tvalue",
		Cells: func(p Plan) ([]Cell, error) {
			out := make([]Cell, cells)
			for i := range out {
				out[i] = Cell{
					Name: fmt.Sprintf("c%02d", i),
					Run: func() (CellOutput, error) {
						time.Sleep(time.Duration(cells-i) * time.Millisecond)
						if ran != nil {
							ran.Add(1)
						}
						return CellOutput{
							Rows:    []string{fmt.Sprintf("c%02d\t%d", i, i*i)},
							Summary: []string{fmt.Sprintf("%s c%02d done", name, i)},
						}, nil
					},
				}
			}
			return out, nil
		},
	}
}

func TestRunnerAssemblesInCellOrder(t *testing.T) {
	arts := []*Artifact{shuffledArtifact("alpha", 8, nil), shuffledArtifact("beta", 5, nil)}
	r := &Runner{Parallel: 8}
	rep, err := r.Run(context.Background(), Plan{Seed: 1}, arts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	for _, res := range rep.Results {
		for i, row := range res.Rows {
			if want := fmt.Sprintf("c%02d\t%d", i, i*i); row != want {
				t.Fatalf("%s row %d = %q, want %q", res.Artifact.Name, i, row, want)
			}
		}
	}
	if rep.Executed != 13 || rep.CacheHits != 0 || rep.Failed != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

// TestRunnerSerialParallelIdenticalTSV is the engine-level determinism
// contract: the assembled bytes cannot depend on the worker count.
func TestRunnerSerialParallelIdenticalTSV(t *testing.T) {
	run := func(parallel int) []byte {
		r := &Runner{Parallel: parallel}
		rep, err := r.Run(context.Background(), Plan{Seed: 7}, []*Artifact{shuffledArtifact("gamma", 12, nil)})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Results[0].TSV()
	}
	serial, parallel := run(1), run(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("TSV differs:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

// TestRunnerContinuesPastCellFailure pins the partial-failure behavior:
// one scenario's failure must not drop the remaining scenarios' rows.
func TestRunnerContinuesPastCellFailure(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	a := &Artifact{
		Name: "flaky", Description: "d", File: "flaky.tsv", Header: "h",
		Cells: func(p Plan) ([]Cell, error) {
			var cells []Cell
			for i := 0; i < 6; i++ {
				switch i {
				case 2:
					cells = append(cells, Cell{Name: "err", Run: func() (CellOutput, error) {
						return CellOutput{}, boom
					}})
				case 4:
					cells = append(cells, Cell{Name: "panic", Run: func() (CellOutput, error) {
						panic("cell exploded")
					}})
				default:
					cells = append(cells, Cell{Name: fmt.Sprintf("ok%d", i), Run: func() (CellOutput, error) {
						ran.Add(1)
						return CellOutput{Rows: []string{fmt.Sprintf("row%d", i)}}, nil
					}})
				}
			}
			return cells, nil
		},
	}
	r := &Runner{Parallel: 3}
	rep, err := r.Run(context.Background(), Plan{}, []*Artifact{a})
	if err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 4 {
		t.Fatalf("healthy cells ran %d times, want 4", got)
	}
	if rep.Failed != 2 {
		t.Fatalf("Failed = %d, want 2", rep.Failed)
	}
	res := rep.Results[0]
	if want := []string{"row0", "row1", "row3", "row5"}; strings.Join(res.Rows, ",") != strings.Join(want, ",") {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}
	aggErr := rep.Err()
	if aggErr == nil {
		t.Fatal("Err() = nil with failures present")
	}
	for _, want := range []string{"flaky/err", "boom", "flaky/panic", "cell exploded"} {
		if !strings.Contains(aggErr.Error(), want) {
			t.Fatalf("Err() %q missing %q", aggErr, want)
		}
	}
}

type recordingSink struct {
	names []string
	errOn string
}

func (s *recordingSink) WriteArtifact(res *ArtifactResult) error {
	if res.Artifact.Name == s.errOn {
		return errors.New("sink refused")
	}
	s.names = append(s.names, res.Artifact.Name)
	return nil
}

func TestRunnerFeedsSinksInArtifactOrder(t *testing.T) {
	arts := []*Artifact{
		shuffledArtifact("z", 4, nil),
		shuffledArtifact("a", 4, nil),
		shuffledArtifact("m", 4, nil),
	}
	sink := &recordingSink{}
	var progress bytes.Buffer
	r := &Runner{Parallel: 6, Progress: &progress, Sinks: []Sink{sink}}
	if _, err := r.Run(context.Background(), Plan{}, arts); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(sink.names, " "); got != "z a m" {
		t.Fatalf("sink order = %q, want artifact order", got)
	}
	out := progress.String()
	if !strings.Contains(out, "[12/12]") {
		t.Fatalf("progress missing completion counter:\n%s", out)
	}
	if !strings.Contains(out, "z c03 done") {
		t.Fatalf("progress missing summary lines:\n%s", out)
	}
}

func TestRunnerSinkErrorIsFatal(t *testing.T) {
	sink := &recordingSink{errOn: "bad"}
	r := &Runner{Parallel: 2, Sinks: []Sink{sink}}
	_, err := r.Run(context.Background(), Plan{}, []*Artifact{shuffledArtifact("bad", 2, nil)})
	if err == nil || !strings.Contains(err.Error(), "sink") {
		t.Fatalf("err = %v, want sink failure", err)
	}
}

func TestRunnerRejectsBadCellPlans(t *testing.T) {
	dup := &Artifact{
		Name: "dup", Description: "d", File: "d.tsv", Header: "h",
		Cells: func(p Plan) ([]Cell, error) {
			c := Cell{Name: "same", Run: func() (CellOutput, error) { return CellOutput{}, nil }}
			return []Cell{c, c}, nil
		},
	}
	if _, err := (&Runner{}).Run(context.Background(), Plan{}, []*Artifact{dup}); err == nil {
		t.Fatal("duplicate cell names accepted")
	}
	empty := &Artifact{
		Name: "empty", Description: "d", File: "e.tsv", Header: "h",
		Cells: func(p Plan) ([]Cell, error) { return nil, nil },
	}
	if _, err := (&Runner{}).Run(context.Background(), Plan{}, []*Artifact{empty}); err == nil {
		t.Fatal("empty cell plan accepted")
	}
}

func TestRunnerManifestCache(t *testing.T) {
	var ran atomic.Int64
	arts := []*Artifact{shuffledArtifact("cached", 6, &ran)}
	m := NewManifest()
	r := &Runner{Parallel: 4, Manifest: m}

	first, err := r.Run(context.Background(), Plan{Seed: 3}, arts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Executed != 6 || first.CacheHits != 0 {
		t.Fatalf("first run report = %+v", first)
	}

	second, err := r.Run(context.Background(), Plan{Seed: 3}, arts)
	if err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 6 {
		t.Fatalf("cells re-ran: %d executions total, want 6", got)
	}
	if second.Executed != 0 || second.CacheHits != 6 {
		t.Fatalf("second run report = %+v", second)
	}
	if !bytes.Equal(first.Results[0].TSV(), second.Results[0].TSV()) {
		t.Fatal("cached TSV differs from executed TSV")
	}
	if !bytes.Equal(
		[]byte(strings.Join(first.Results[0].Summary, "\n")),
		[]byte(strings.Join(second.Results[0].Summary, "\n"))) {
		t.Fatal("cached summary differs")
	}

	// Any input change — here the seed — must invalidate every cell.
	third, err := r.Run(context.Background(), Plan{Seed: 4}, arts)
	if err != nil {
		t.Fatal(err)
	}
	if third.Executed != 6 || third.CacheHits != 0 {
		t.Fatalf("seed change report = %+v", third)
	}
}

// TestRunnerContextCancellation pins the cancellation contract: cells
// already executing finish, undispatched cells are marked failed with
// the context error, sinks never fire, and Run returns the partial
// report plus an error wrapping context.Canceled.
func TestRunnerContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	a := &Artifact{
		Name: "cancellable", Description: "d", File: "c.tsv", Header: "h",
		Cells: func(p Plan) ([]Cell, error) {
			cells := make([]Cell, 16)
			for i := range cells {
				cells[i] = Cell{Name: fmt.Sprintf("c%02d", i), Run: func() (CellOutput, error) {
					ran.Add(1)
					time.Sleep(2 * time.Millisecond)
					return CellOutput{Rows: []string{fmt.Sprintf("row%d", i)}}, nil
				}}
			}
			return cells, nil
		},
	}
	sink := &recordingSink{}
	r := &Runner{
		Parallel: 1,
		Sinks:    []Sink{sink},
		Observe: func(done, total int, rep CellReport) {
			if done == 2 {
				cancel()
			}
		},
	}
	rep, err := r.Run(ctx, Plan{}, []*Artifact{a})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "run cancelled") {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); got >= 16 {
		t.Fatalf("all %d cells ran despite cancellation", got)
	}
	if rep == nil {
		t.Fatal("cancelled run returned no partial report")
	}
	res := rep.Results[0]
	if len(res.Rows) == 0 || len(res.Rows) >= 16 {
		t.Fatalf("partial rows = %d, want some but not all", len(res.Rows))
	}
	for _, c := range res.Cells {
		if c.Err != nil && !errors.Is(c.Err, context.Canceled) {
			t.Fatalf("skipped cell error = %v", c.Err)
		}
	}
	if len(sink.names) != 0 {
		t.Fatalf("sinks fired on a cancelled run: %v", sink.names)
	}
}

// TestRunnerContextTimeout covers the deadline flavor the CLI's
// -timeout flag uses.
func TestRunnerContextTimeout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := (&Runner{Parallel: 1}).Run(ctx, Plan{}, []*Artifact{shuffledArtifact("slowpoke", 40, nil)})
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunnerObserveReportsEveryCell checks the structured per-cell hook
// the daemon's SSE stream rides on: one call per cell, monotone done
// counter, correct cached flags.
func TestRunnerObserveReportsEveryCell(t *testing.T) {
	m := NewManifest()
	var mu sync.Mutex
	var calls []CellReport
	var lastDone int
	r := &Runner{Parallel: 4, Manifest: m, Observe: func(done, total int, rep CellReport) {
		mu.Lock()
		defer mu.Unlock()
		if done != lastDone+1 || total != 6 {
			t.Errorf("observe counter %d/%d after %d", done, total, lastDone)
		}
		lastDone = done
		calls = append(calls, rep)
	}}
	arts := []*Artifact{shuffledArtifact("observed", 6, nil)}
	if _, err := r.Run(context.Background(), Plan{Seed: 9}, arts); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 6 {
		t.Fatalf("observe calls = %d, want 6", len(calls))
	}
	// Cached rerun still reports every cell, now flagged cached.
	calls, lastDone = nil, 0
	if _, err := r.Run(context.Background(), Plan{Seed: 9}, arts); err != nil {
		t.Fatal(err)
	}
	for _, c := range calls {
		if !c.Cached {
			t.Fatalf("rerun cell %s/%s not cached", c.Artifact, c.Cell)
		}
	}
}

func TestRunnerParallelDefaultsAndClamps(t *testing.T) {
	r := &Runner{}
	if got := r.workers(100); got < 1 {
		t.Fatalf("workers = %d", got)
	}
	r.Parallel = 64
	if got := r.workers(3); got != 3 {
		t.Fatalf("workers should clamp to job count, got %d", got)
	}
}
