package ecc

import "fmt"

// Hamming(7,4): every 4 data bits are encoded as 7 wire bits that
// tolerate any single-bit flip. Used as the forward-error-correction
// alternative to parity+retransmission: no reverse channel needed, at a
// fixed 75% rate overhead.

// HammingEncode expands data bits (values 0/1) into the 7/4 code.
// Inputs whose length is not a multiple of 4 are rejected.
func HammingEncode(bits []byte) ([]byte, error) {
	if len(bits)%4 != 0 {
		return nil, fmt.Errorf("ecc: hamming input length %d not a multiple of 4", len(bits))
	}
	out := make([]byte, 0, len(bits)/4*7)
	for i := 0; i < len(bits); i += 4 {
		d := bits[i : i+4]
		p1 := d[0] ^ d[1] ^ d[3]
		p2 := d[0] ^ d[2] ^ d[3]
		p3 := d[1] ^ d[2] ^ d[3]
		// Positions 1..7: p1 p2 d0 p3 d1 d2 d3.
		out = append(out, p1, p2, d[0], p3, d[1], d[2], d[3])
	}
	return out, nil
}

// HammingDecode corrects single-bit errors per 7-bit block and returns
// the data bits plus the number of corrections applied. Wire lengths not
// a multiple of 7 are rejected (the caller's framing is broken).
func HammingDecode(wire []byte) (bits []byte, corrected int, err error) {
	if len(wire)%7 != 0 {
		return nil, 0, fmt.Errorf("ecc: hamming wire length %d not a multiple of 7", len(wire))
	}
	bits = make([]byte, 0, len(wire)/7*4)
	for i := 0; i < len(wire); i += 7 {
		var blk [7]byte
		copy(blk[:], wire[i:i+7])
		s1 := blk[0] ^ blk[2] ^ blk[4] ^ blk[6]
		s2 := blk[1] ^ blk[2] ^ blk[5] ^ blk[6]
		s3 := blk[3] ^ blk[4] ^ blk[5] ^ blk[6]
		syndrome := int(s1) | int(s2)<<1 | int(s3)<<2
		if syndrome != 0 {
			blk[syndrome-1] ^= 1
			corrected++
		}
		bits = append(bits, blk[2], blk[4], blk[5], blk[6])
	}
	return bits, corrected, nil
}
