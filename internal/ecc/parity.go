// Package ecc implements the paper's §VIII-C error handling: packets of
// 64 data bytes protected by 16 parity bits (one per 4-byte chunk), a
// 1-bit NACK reverse channel realized by reversing the trojan/spy roles,
// and retransmission until receipt. A Hamming(7,4) forward-error-
// correction codec is included as the natural extension the paper
// gestures at ("methods to recover information bits due to omission and
// bit flips is a well studied topic").
package ecc

import "fmt"

const (
	// PacketBytes is the payload size per packet.
	PacketBytes = 64
	// ChunkBytes is the parity granularity: one parity bit per chunk.
	ChunkBytes = 4
	// ParityBits is the number of parity bits per packet.
	ParityBits = PacketBytes / ChunkBytes
	// PacketBits is the on-wire packet size in bits.
	PacketBits = PacketBytes*8 + ParityBits
)

// EncodePacket frames exactly PacketBytes of payload as PacketBits wire
// bits: the 512 data bits (MSB-first per byte) followed by 16 even-parity
// bits, one per 4-byte chunk.
func EncodePacket(payload []byte) ([]byte, error) {
	if len(payload) != PacketBytes {
		return nil, fmt.Errorf("ecc: packet payload must be %d bytes, got %d", PacketBytes, len(payload))
	}
	bits := make([]byte, 0, PacketBits)
	for _, b := range payload {
		for i := 7; i >= 0; i-- {
			bits = append(bits, (b>>uint(i))&1)
		}
	}
	for c := 0; c < ParityBits; c++ {
		var p byte
		for _, bit := range bits[c*ChunkBytes*8 : (c+1)*ChunkBytes*8] {
			p ^= bit
		}
		bits = append(bits, p)
	}
	return bits, nil
}

// DecodePacket checks a received wire frame. ok is false when the frame
// has the wrong length (lost or duplicated bits) or any chunk parity
// fails; payload is returned only when ok.
func DecodePacket(wire []byte) (payload []byte, ok bool) {
	if len(wire) != PacketBits {
		return nil, false
	}
	for c := 0; c < ParityBits; c++ {
		var p byte
		for _, bit := range wire[c*ChunkBytes*8 : (c+1)*ChunkBytes*8] {
			p ^= bit
		}
		if p != wire[PacketBytes*8+c] {
			return nil, false
		}
	}
	payload = make([]byte, PacketBytes)
	for i := range payload {
		var v byte
		for j := 0; j < 8; j++ {
			v = v<<1 | wire[i*8+j]&1
		}
		payload[i] = v
	}
	return payload, true
}

// Pad returns payload padded with zeros to a whole number of packets,
// and the original length (callers truncate after reassembly).
func Pad(payload []byte) ([]byte, int) {
	n := len(payload)
	if rem := n % PacketBytes; rem != 0 {
		payload = append(append([]byte(nil), payload...), make([]byte, PacketBytes-rem)...)
	}
	return payload, n
}
