package ecc

import (
	"bytes"
	"testing"
	"testing/quick"

	"coherentleak/internal/covert"
)

func TestInterleaveRoundTrip(t *testing.T) {
	f := func(raw []byte, depth8 uint8) bool {
		depth := int(depth8%7) + 1
		bits := raw[:len(raw)-len(raw)%depth]
		il, err := Interleave(bits, depth)
		if err != nil {
			return false
		}
		back, err := Deinterleave(il, depth)
		if err != nil {
			return false
		}
		return bytes.Equal(back, bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleaveSpreadsBursts(t *testing.T) {
	// 28 bits, depth 7: a burst of 7 consecutive wire positions must map
	// to 7 distinct rows (code blocks).
	bits := make([]byte, 28)
	for i := range bits {
		bits[i] = byte(i % 2)
	}
	il, _ := Interleave(bits, 7)
	// Corrupt wire positions 0..6.
	for i := 0; i < 7; i++ {
		il[i] ^= 1
	}
	back, _ := Deinterleave(il, 7)
	// Count corrupted positions per original row of 7.
	for row := 0; row < 4; row++ {
		diff := 0
		for c := 0; c < 7; c++ {
			if back[row*7+c] != bits[row*7+c] {
				diff++
			}
		}
		if diff > 2 {
			t.Fatalf("row %d absorbed %d burst errors; interleaving failed", row, diff)
		}
	}
}

func TestInterleaveRejectsBadInput(t *testing.T) {
	if _, err := Interleave(make([]byte, 5), 2); err == nil {
		t.Fatal("uneven length accepted")
	}
	if _, err := Interleave(nil, 0); err == nil {
		t.Fatal("zero depth accepted")
	}
	if _, err := Deinterleave(make([]byte, 5), 2); err == nil {
		t.Fatal("uneven deinterleave accepted")
	}
}

func TestFECQuietDelivery(t *testing.T) {
	ch := *covert.NewChannel(covert.Scenarios[0])
	ch.Mode = covert.ShareExplicit
	p := NewFECProtocol(ch)
	payload := covert.TextToBits("forward error correction")
	res, err := p.Send(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FrameIntact || !res.Recovered {
		t.Fatalf("quiet FEC transfer failed: %+v", res)
	}
	if res.Corrected != 0 {
		t.Errorf("corrections on a quiet machine: %d", res.Corrected)
	}
	if res.EffectiveKbps <= 0 {
		t.Error("no effective rate")
	}
	// The 7/4 code must cost roughly 43% of the raw rate.
	if res.WireBits < len(payload)*7/4 {
		t.Errorf("wire bits %d below code expansion", res.WireBits)
	}
}

func TestFECRejectsEmpty(t *testing.T) {
	p := NewFECProtocol(*covert.NewChannel(covert.Scenarios[0]))
	if _, err := p.Send(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	p.InterleaveDepth = 0
	if _, err := p.Send([]byte{1}); err == nil {
		t.Fatal("zero depth accepted")
	}
}

// The run-length decoder converts sample errors into bit insertions and
// deletions rather than in-place flips, so a block FEC sees either an
// intact clean frame or destroyed framing — which is exactly why the
// paper's §VIII-C scheme is detection + retransmission rather than
// forward correction. This test pins that behaviour: reliable below the
// knee, graceful framing failure (no mis-corrections, no panics) past it.
func TestFECFramingBehavior(t *testing.T) {
	cfg := covert.NewChannel(covert.Scenarios[0]).Config
	sc, _ := covert.ScenarioByName("RExclc-LSharedb")
	payload := make([]byte, 96)
	for i := range payload {
		payload[i] = byte((i / 3) % 2)
	}
	run := func(rate float64) (intact, recovered int) {
		params := covert.ParamsForRate(cfg, sc, rate)
		for i := 0; i < 6; i++ {
			ch := covert.Channel{
				Config: cfg, Scenario: sc, Params: params,
				Mode: covert.ShareExplicit, WorldSeed: uint64(i)*131 + 7, PatternSeed: 1,
			}
			p := NewFECProtocol(ch)
			res, err := p.Send(payload)
			if err != nil {
				t.Fatal(err)
			}
			if res.FrameIntact {
				intact++
			}
			if res.Recovered {
				recovered++
			}
			if res.Recovered && !res.FrameIntact {
				t.Fatal("recovered through broken framing?")
			}
		}
		return intact, recovered
	}
	if _, rec := run(700); rec != 6 {
		t.Fatalf("below the knee: recovered %d/6", rec)
	}
	intact, rec := run(850)
	if rec > intact {
		t.Fatalf("recovered (%d) exceeds intact frames (%d)", rec, intact)
	}
	if intact == 6 {
		t.Fatalf("past the knee every frame survived; the knee moved — recalibrate")
	}
}
