package ecc

import (
	"bytes"
	"testing"
	"testing/quick"

	"coherentleak/internal/covert"
	"coherentleak/internal/machine"
)

func TestEncodePacketShape(t *testing.T) {
	payload := make([]byte, PacketBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	wire, err := EncodePacket(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != PacketBits {
		t.Fatalf("wire bits = %d, want %d", len(wire), PacketBits)
	}
	got, ok := DecodePacket(wire)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("clean round trip failed")
	}
}

func TestEncodePacketRejectsWrongSize(t *testing.T) {
	if _, err := EncodePacket(make([]byte, 63)); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestDecodeDetectsSingleFlips(t *testing.T) {
	payload := make([]byte, PacketBytes)
	payload[7] = 0xA5
	wire, _ := EncodePacket(payload)
	for _, pos := range []int{0, 100, 511, 512, PacketBits - 1} {
		w := append([]byte(nil), wire...)
		w[pos] ^= 1
		if _, ok := DecodePacket(w); ok {
			t.Errorf("flip at %d undetected", pos)
		}
	}
}

func TestDecodeDetectsLostBits(t *testing.T) {
	payload := make([]byte, PacketBytes)
	wire, _ := EncodePacket(payload)
	if _, ok := DecodePacket(wire[:len(wire)-1]); ok {
		t.Fatal("truncated frame accepted")
	}
	if _, ok := DecodePacket(append(wire, 0)); ok {
		t.Fatal("over-long frame accepted")
	}
}

func TestDecodeMissesEvenFlipsInChunk(t *testing.T) {
	// Documented limitation: two flips within one 4-byte chunk cancel in
	// its parity bit.
	payload := make([]byte, PacketBytes)
	wire, _ := EncodePacket(payload)
	wire[0] ^= 1
	wire[1] ^= 1
	if _, ok := DecodePacket(wire); !ok {
		t.Fatal("double flip in one chunk was detected by a single parity bit?")
	}
}

// Property: encode/decode round-trips arbitrary payloads.
func TestPacketRoundTripProperty(t *testing.T) {
	f := func(raw []byte) bool {
		payload := make([]byte, PacketBytes)
		copy(payload, raw)
		wire, err := EncodePacket(payload)
		if err != nil {
			return false
		}
		got, ok := DecodePacket(wire)
		return ok && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPad(t *testing.T) {
	p, n := Pad(make([]byte, 65))
	if n != 65 || len(p) != 128 {
		t.Fatalf("Pad(65) -> len %d orig %d", len(p), n)
	}
	p, n = Pad(make([]byte, 64))
	if n != 64 || len(p) != 64 {
		t.Fatal("whole packet padded")
	}
}

func TestHammingRoundTrip(t *testing.T) {
	bits := []byte{1, 0, 1, 1, 0, 0, 1, 0}
	wire, err := HammingEncode(bits)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != 14 {
		t.Fatalf("wire len %d", len(wire))
	}
	got, corrected, err := HammingDecode(wire)
	if err != nil || corrected != 0 {
		t.Fatalf("clean decode: corrected=%d err=%v", corrected, err)
	}
	if !bytes.Equal(got, bits) {
		t.Fatalf("round trip %v -> %v", bits, got)
	}
}

func TestHammingCorrectsAnySingleFlip(t *testing.T) {
	bits := []byte{1, 0, 1, 1}
	wire, _ := HammingEncode(bits)
	for pos := range wire {
		w := append([]byte(nil), wire...)
		w[pos] ^= 1
		got, corrected, err := HammingDecode(w)
		if err != nil {
			t.Fatal(err)
		}
		if corrected != 1 {
			t.Errorf("flip at %d: corrected=%d", pos, corrected)
		}
		if !bytes.Equal(got, bits) {
			t.Errorf("flip at %d not corrected: %v", pos, got)
		}
	}
}

func TestHammingRejectsBadLengths(t *testing.T) {
	if _, err := HammingEncode([]byte{1, 0, 1}); err == nil {
		t.Fatal("length 3 accepted")
	}
	if _, _, err := HammingDecode(make([]byte, 6)); err == nil {
		t.Fatal("wire length 6 accepted")
	}
}

// Property: Hamming corrects every single-bit error in random blocks.
func TestHammingSingleErrorProperty(t *testing.T) {
	f := func(raw uint8, pos uint8) bool {
		bits := []byte{raw & 1, raw >> 1 & 1, raw >> 2 & 1, raw >> 3 & 1}
		wire, err := HammingEncode(bits)
		if err != nil {
			return false
		}
		w := append([]byte(nil), wire...)
		w[int(pos)%7] ^= 1
		got, _, err := HammingDecode(w)
		return err == nil && bytes.Equal(got, bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolQuietDelivery(t *testing.T) {
	ch := *covert.NewChannel(covert.Scenarios[0])
	ch.Config = machine.DefaultConfig()
	ch.Mode = covert.ShareExplicit
	p := NewProtocol(ch)
	payload := []byte("coherence protocol states leak information; film at 11....!!")
	res, err := p.Send(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered {
		t.Fatal("payload not recovered on a quiet machine")
	}
	if res.Retransmissions != 0 {
		t.Errorf("quiet machine needed %d retransmissions", res.Retransmissions)
	}
	if res.EffectiveKbps <= 0 {
		t.Error("no effective rate")
	}
	if res.UndetectedErrors != 0 {
		t.Errorf("undetected errors on quiet machine: %d", res.UndetectedErrors)
	}
}

func TestProtocolRejectsEmpty(t *testing.T) {
	p := NewProtocol(*covert.NewChannel(covert.Scenarios[0]))
	if _, err := p.Send(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	p.MaxAttempts = 0
	if _, err := p.Send([]byte{1}); err == nil {
		t.Fatal("zero attempts accepted")
	}
}
