package ecc

import (
	"bytes"
	"fmt"

	"coherentleak/internal/covert"
	"coherentleak/internal/sim"
	"coherentleak/internal/stats"
)

// Protocol is the §VIII-C reliable-transfer scheme over a covert channel:
// per 64-byte packet, transmit data+parity; the receiver replies with one
// NACK bit over the reverse channel (roles reversed: the spy transmits,
// the trojan times); retransmit until NACK=0.
type Protocol struct {
	// Forward is the trojan->spy channel template; each packet attempt
	// runs it with a fresh world seed.
	Forward covert.Channel
	// MaxAttempts bounds retransmissions per packet.
	MaxAttempts int
}

// NewProtocol wraps a channel configuration.
func NewProtocol(ch covert.Channel) *Protocol {
	return &Protocol{Forward: ch, MaxAttempts: 16}
}

// Result reports a reliable transfer.
type Result struct {
	// PayloadBytes is the delivered payload size.
	PayloadBytes int
	// Packets is the packet count.
	Packets int
	// Attempts is total transmissions including retries.
	Attempts int
	// Retransmissions = Attempts - Packets.
	Retransmissions int
	// NackCycles is the total reverse-channel cost.
	NackCycles sim.Cycles
	// TotalCycles includes every attempt and every NACK bit.
	TotalCycles sim.Cycles
	// EffectiveKbps is payload bits over total time — the Figure 10
	// metric.
	EffectiveKbps float64
	// Recovered reports whether the delivered payload matches exactly.
	Recovered bool
	// UndetectedErrors counts packets that passed parity with wrong
	// contents (an even number of flips within one chunk escapes a
	// single parity bit).
	UndetectedErrors int
}

// Send reliably transfers payload and reports the effective rate.
func (p *Protocol) Send(payload []byte) (*Result, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("ecc: empty payload")
	}
	if p.MaxAttempts <= 0 {
		return nil, fmt.Errorf("ecc: MaxAttempts must be positive")
	}
	padded, origLen := Pad(payload)
	res := &Result{PayloadBytes: origLen, Packets: len(padded) / PacketBytes}

	var delivered []byte
	seed := p.Forward.WorldSeed
	for pkt := 0; pkt < res.Packets; pkt++ {
		chunk := padded[pkt*PacketBytes : (pkt+1)*PacketBytes]
		wire, err := EncodePacket(chunk)
		if err != nil {
			return nil, err
		}
		var got []byte
		ok := false
		for attempt := 0; attempt < p.MaxAttempts && !ok; attempt++ {
			res.Attempts++
			ch := p.Forward // copy
			ch.WorldSeed = seed + uint64(pkt)*1009 + uint64(attempt)*97
			r, err := ch.Run(wire)
			if err != nil {
				return nil, fmt.Errorf("ecc: packet %d attempt %d: %w", pkt, attempt, err)
			}
			res.TotalCycles += r.Duration + r.SyncCycles
			got, ok = DecodePacket(r.RxBits)
			nack, err := p.sendNACK(!ok, seed+uint64(pkt)*3001+uint64(attempt)*11)
			if err != nil {
				return nil, err
			}
			res.NackCycles += nack
			res.TotalCycles += nack
		}
		if !ok {
			// Out of retries: deliver the chunk as zeros (caller sees
			// Recovered=false).
			got = make([]byte, PacketBytes)
		}
		if ok && !bytes.Equal(got, chunk) {
			res.UndetectedErrors++
		}
		delivered = append(delivered, got...)
	}
	res.Retransmissions = res.Attempts - res.Packets
	res.Recovered = bytes.Equal(delivered[:origLen], payload)
	secs := p.Forward.Config.CyclesToSeconds(res.TotalCycles)
	res.EffectiveKbps = stats.Kbps(origLen*8, secs)
	return res, nil
}

// sendNACK transmits the acknowledgment bit over the reverse channel —
// the same covert channel with the spy as transmitter and the trojan as
// receiver ("reversing the roles of spy as the transmitter and trojan as
// the receiver just for transmitting the NACK bit"). Geometrically the
// reverse path mirrors the forward one, so it is modeled as a 1-bit
// transmission on an identically configured channel; the returned cost
// is charged to the protocol.
func (p *Protocol) sendNACK(nack bool, seed uint64) (sim.Cycles, error) {
	ch := p.Forward
	ch.WorldSeed = seed
	bit := []byte{0}
	if nack {
		bit[0] = 1
	}
	r, err := ch.Run(bit)
	if err != nil {
		return 0, err
	}
	return r.Duration + r.SyncCycles, nil
}
