package ecc

import (
	"bytes"
	"fmt"

	"coherentleak/internal/covert"
	"coherentleak/internal/stats"
)

// Interleave performs block interleaving with the given depth: bits are
// written into rows of `depth` columns and read out column-wise, so a
// burst of up to `depth` consecutive wire errors lands on `depth`
// different code blocks. The input length must be a multiple of depth.
func Interleave(bits []byte, depth int) ([]byte, error) {
	if depth <= 0 {
		return nil, fmt.Errorf("ecc: non-positive interleave depth")
	}
	if len(bits)%depth != 0 {
		return nil, fmt.Errorf("ecc: length %d not a multiple of depth %d", len(bits), depth)
	}
	rows := len(bits) / depth
	out := make([]byte, 0, len(bits))
	for c := 0; c < depth; c++ {
		for r := 0; r < rows; r++ {
			out = append(out, bits[r*depth+c])
		}
	}
	return out, nil
}

// Deinterleave inverts Interleave.
func Deinterleave(bits []byte, depth int) ([]byte, error) {
	if depth <= 0 {
		return nil, fmt.Errorf("ecc: non-positive interleave depth")
	}
	if len(bits)%depth != 0 {
		return nil, fmt.Errorf("ecc: length %d not a multiple of depth %d", len(bits), depth)
	}
	rows := len(bits) / depth
	out := make([]byte, len(bits))
	i := 0
	for c := 0; c < depth; c++ {
		for r := 0; r < rows; r++ {
			out[r*depth+c] = bits[i]
			i++
		}
	}
	return out, nil
}

// FECProtocol is the forward-error-correction alternative to the
// parity+NACK scheme: Hamming(7,4) with block interleaving, no reverse
// channel. It corrects scattered single-bit flips at a fixed 7/4 rate
// overhead, but cannot recover lost or duplicated wire bits (the frame
// length must survive), which is why the paper's authors chose detection
// + retransmission for their noisy environment.
type FECProtocol struct {
	// Forward is the channel template.
	Forward covert.Channel
	// InterleaveDepth spreads bursts across code blocks (1 = none).
	InterleaveDepth int
}

// NewFECProtocol wraps a channel with Hamming(7,4) + interleaving.
func NewFECProtocol(ch covert.Channel) *FECProtocol {
	return &FECProtocol{Forward: ch, InterleaveDepth: 7}
}

// FECResult reports one FEC transfer.
type FECResult struct {
	// PayloadBits is the data bit count.
	PayloadBits int
	// WireBits is the on-wire bit count (payload x 7/4, padded).
	WireBits int
	// Corrected counts the single-bit corrections applied.
	Corrected int
	// Recovered reports whether the payload decoded exactly.
	Recovered bool
	// FrameIntact reports whether the wire length survived (lost or
	// extra bits break FEC framing).
	FrameIntact bool
	// EffectiveKbps is payload bits over the transmission time.
	EffectiveKbps float64
}

// Send transmits data bits (0/1) once, with forward error correction.
func (p *FECProtocol) Send(payload []byte) (*FECResult, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("ecc: empty payload")
	}
	if p.InterleaveDepth <= 0 {
		return nil, fmt.Errorf("ecc: non-positive interleave depth")
	}
	// Pad payload to a multiple of 4 for the code, then the code words
	// to a multiple of the interleave depth.
	data := append([]byte(nil), payload...)
	for len(data)%4 != 0 {
		data = append(data, 0)
	}
	wire, err := HammingEncode(data)
	if err != nil {
		return nil, err
	}
	for len(wire)%p.InterleaveDepth != 0 {
		wire = append(wire, 0)
	}
	tx, err := Interleave(wire, p.InterleaveDepth)
	if err != nil {
		return nil, err
	}

	r, err := p.Forward.Run(tx)
	if err != nil {
		return nil, err
	}
	res := &FECResult{PayloadBits: len(payload), WireBits: len(tx)}
	if r.Duration > 0 {
		res.EffectiveKbps = stats.Kbps(len(payload),
			p.Forward.Config.CyclesToSeconds(r.Duration+r.SyncCycles))
	}
	if len(r.RxBits) != len(tx) {
		// Lost/extra wire bits: framing destroyed, FEC cannot help.
		return res, nil
	}
	res.FrameIntact = true
	deint, err := Deinterleave(r.RxBits, p.InterleaveDepth)
	if err != nil {
		return res, nil
	}
	got, corrected, err := HammingDecode(deint[:len(wire)/7*7])
	if err != nil {
		return res, nil
	}
	res.Corrected = corrected
	res.Recovered = len(got) >= len(payload) && bytes.Equal(got[:len(payload)], payload)
	return res, nil
}
