package covert

import (
	"testing"

	"coherentleak/internal/cache"
	"coherentleak/internal/machine"
)

func TestBuildSpyEvictionSet(t *testing.T) {
	sess, err := NewSession(machine.DefaultConfig(), 1, 0, ShareExplicit)
	if err != nil {
		t.Fatal(err)
	}
	set, err := sess.BuildSpyEvictionSet()
	if err != nil {
		t.Fatal(err)
	}
	llc := sess.Mach.Socket(0).LLC
	want := llc.Geometry().Ways
	if len(set) != want {
		t.Fatalf("set size = %d, want %d (LLC ways)", len(set), want)
	}
	target := llc.SetIndexOf(sess.SharedPA())
	seen := map[uint64]bool{}
	for _, va := range set {
		pa, err := sess.SpyProc.Translate(va)
		if err != nil {
			t.Fatal(err)
		}
		if llc.SetIndexOf(pa) != target {
			t.Fatalf("conflict line %#x maps to set %d, want %d", pa, llc.SetIndexOf(pa), target)
		}
		line := cache.LineAddr(pa)
		if seen[line] {
			t.Fatalf("duplicate conflict line %#x", line)
		}
		if line == cache.LineAddr(sess.SharedPA()) {
			t.Fatal("conflict set contains B itself")
		}
		seen[line] = true
	}
}

// The §VI-B alternative end to end: a no-clflush spy transmits over the
// local scenario using conflict-set eviction, slower but accurate.
func TestEvictionProbeChannel(t *testing.T) {
	bits := PatternBitsForTest(41, 40)
	p := DefaultParams()
	p.Probe = ProbeEviction
	ch := NewChannel(Scenarios[0]) // LExclc-LSharedb: local only
	ch.Params = p
	res, err := ch.Run(bits)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Synced {
		t.Fatal("no sync under eviction probing")
	}
	if res.Accuracy != 1 {
		t.Fatalf("eviction-probe accuracy = %v (rx %d bits)", res.Accuracy, len(res.RxBits))
	}
	// Eviction probing pays ~16 extra loads per period: measurably slower
	// than clflush probing at the same Ts.
	flush := NewChannel(Scenarios[0])
	fres, err := flush.Run(bits)
	if err != nil {
		t.Fatal(err)
	}
	if res.RawKbps >= fres.RawKbps {
		t.Fatalf("eviction probing (%.0f Kbps) not slower than clflush (%.0f Kbps)",
			res.RawKbps, fres.RawKbps)
	}
}

func TestEvictionProbeRejectsRemoteScenarios(t *testing.T) {
	p := DefaultParams()
	p.Probe = ProbeEviction
	ch := NewChannel(Scenarios[1]) // RExclc-RSharedb
	ch.Params = p
	if _, err := ch.Run([]byte{1, 0}); err == nil {
		t.Fatal("remote scenario accepted under eviction probing")
	}
}

func TestEvictionProbeRequiresInclusiveLLC(t *testing.T) {
	p := DefaultParams()
	p.Probe = ProbeEviction
	ch := NewChannel(Scenarios[0])
	ch.Params = p
	ch.Config.InclusiveLLC = false
	if _, err := ch.Run([]byte{1, 0}); err == nil {
		t.Fatal("non-inclusive LLC accepted under eviction probing")
	}
}

func TestProbeMethodString(t *testing.T) {
	if ProbeClflush.String() != "clflush" || ProbeEviction.String() != "eviction" {
		t.Fatal("probe method strings wrong")
	}
}
