package covert

import (
	"fmt"
	"sort"

	"coherentleak/internal/machine"
	"coherentleak/internal/sim"
)

// ProbeMethod selects the spy's invalidation primitive.
type ProbeMethod uint8

const (
	// ProbeClflush uses the clflush-equivalent instruction.
	ProbeClflush ProbeMethod = iota
	// ProbeEviction loads a conflict set covering all the ways of B's
	// LLC set.
	ProbeEviction
)

func (p ProbeMethod) String() string {
	if p == ProbeEviction {
		return "eviction"
	}
	return "clflush"
}

// Params tune a transmission (the knobs of Algorithms 1 and 2 and the
// two bandwidth knobs of §VIII-B).
type Params struct {
	// C1, C0 are how many consecutive spy periods the block sits in the
	// communication placement for a '1' and a '0' respectively.
	C1, C0 int
	// Cb is how many periods the block sits in the boundary placement
	// between bits.
	Cb int
	// Ts is the spy's wait between its flush and its timed load — knob 2
	// of §VIII-B. Smaller Ts = faster sampling = higher rate = noisier.
	Ts sim.Cycles
	// SyncPeriods is the length of the trojan's pre-transmission
	// boundary preamble the spy locks onto (§VII-A).
	SyncPeriods int
	// EndRun is N of Algorithm 2: reception ends after this many
	// consecutive samples outside both bands.
	EndRun int
	// BandMargin widens calibrated bands on each side (cycles).
	BandMargin float64
	// Probe selects how the spy invalidates B each period: clflush (the
	// default) or eviction of all the ways in B's LLC set (§VI-B's
	// alternative for environments without a flush instruction).
	// Eviction probing is restricted to local scenarios on an inclusive
	// LLC: the spy's conflict set only reaches its own socket's LLC, and
	// only inclusion turns an LLC eviction into a global invalidation of
	// the socket's private copies.
	Probe ProbeMethod
	// MinRun is the decoder's noise filter: communication runs shorter
	// than this many samples are treated as misclassified noise rather
	// than bits. It must not exceed C0 or legitimate '0' runs would be
	// dropped. 1 disables filtering.
	MinRun int
	// MaxPeriods aborts a runaway reception (safety bound).
	MaxPeriods int
}

// DefaultParams returns a conservative mid-rate configuration
// (roughly the paper's reliable operating point).
func DefaultParams() Params {
	return Params{
		C1:          4,
		C0:          1,
		Cb:          2,
		Ts:          900,
		SyncPeriods: 20,
		EndRun:      10,
		BandMargin:  4,
		MinRun:      1,
		MaxPeriods:  2_000_000,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.C1 <= 0 || p.C0 <= 0 || p.Cb <= 0 {
		return fmt.Errorf("covert: counts must be positive: C1=%d C0=%d Cb=%d", p.C1, p.C0, p.Cb)
	}
	if p.C1 <= p.C0 {
		return fmt.Errorf("covert: C1 (%d) must exceed C0 (%d) for the threshold to work", p.C1, p.C0)
	}
	if p.Ts == 0 {
		return fmt.Errorf("covert: zero sampling interval")
	}
	if p.SyncPeriods < 2 {
		return fmt.Errorf("covert: SyncPeriods %d too small to lock on", p.SyncPeriods)
	}
	if p.EndRun < 2 {
		return fmt.Errorf("covert: EndRun %d would end reception on a single noisy sample", p.EndRun)
	}
	if p.MinRun < 1 || p.MinRun > p.C0 {
		return fmt.Errorf("covert: MinRun %d must be in [1, C0=%d]", p.MinRun, p.C0)
	}
	return nil
}

// Threshold is Thold of Algorithm 2: a communication run longer than this
// decodes as '1'. The midpoint of C1 and C0 tolerates one period of drift
// either way.
func (p Params) Threshold() float64 { return (float64(p.C1) + float64(p.C0)) / 2 }

// PeriodsPerBit is the average number of spy periods per transmitted bit
// assuming balanced bits.
func (p Params) PeriodsPerBit() float64 {
	return float64(p.Cb) + (float64(p.C1)+float64(p.C0))/2
}

// EstimatePeriodCycles predicts one spy period's length for a scenario:
// flush + wait + timed load at the communication band's typical latency.
func (p Params) EstimatePeriodCycles(cfg machine.Config, s Scenario) float64 {
	lat := cfg.Latencies
	load := float64(placementBaseLatency(cfg, s.Comm)+placementBaseLatency(cfg, s.Bound)) / 2
	return float64(lat.FlushBase) + float64(p.Ts) + load
}

// EstimateKbps predicts the raw bit rate for a scenario under cfg.
func (p Params) EstimateKbps(cfg machine.Config, s Scenario) float64 {
	period := p.EstimatePeriodCycles(cfg, s)
	cyclesPerBit := period * p.PeriodsPerBit()
	return cfg.ClockHz / cyclesPerBit / 1e3
}

// placementBaseLatency returns the uncontended spy-load latency of a
// placement under cfg.
func placementBaseLatency(cfg machine.Config, pl Placement) sim.Cycles {
	lat := cfg.Latencies
	base := lat.MissBase + 2*lat.Ring + lat.LLCService
	switch pl {
	case LShared:
		return base
	case LExcl:
		return base + lat.ForwardLocal
	case RShared:
		return base + 2*lat.QPI
	case RExcl:
		return base + 2*lat.QPI + lat.ForwardRemote
	}
	return base
}

// ParamsForRate derives a parameter set aiming at targetKbps for scenario
// s on cfg, holding the count structure fixed and solving for Ts; when Ts
// would fall below the feasible floor (the spy's own flush+load time),
// the counts are squeezed as well. This implements the §VIII-B sweep:
// "reduce the number of consecutive caching operations ... and reduce the
// interval between loads".
func ParamsForRate(cfg machine.Config, s Scenario, targetKbps float64) Params {
	p := DefaultParams()
	if targetKbps <= 0 {
		return p
	}
	lat := cfg.Latencies
	load := float64(placementBaseLatency(cfg, s.Comm)+placementBaseLatency(cfg, s.Bound)) / 2
	overhead := float64(lat.FlushBase) + load // per period, excluding Ts

	solve := func(periodsPerBit float64) (sim.Cycles, bool) {
		cyclesPerBit := cfg.ClockHz / (targetKbps * 1e3)
		period := cyclesPerBit / periodsPerBit
		ts := period - overhead
		if ts < 64 {
			return 0, false
		}
		return sim.Cycles(ts), true
	}

	// Prefer the robust count structure; shrink counts only when the
	// target rate cannot be met otherwise.
	structures := []struct{ c1, c0, cb int }{
		{4, 1, 2},
		{3, 1, 2},
		{3, 1, 1},
		{2, 1, 1},
	}
	for _, st := range structures {
		p.C1, p.C0, p.Cb = st.c1, st.c0, st.cb
		if ts, ok := solve(p.PeriodsPerBit()); ok {
			p.Ts = ts
			return p
		}
	}
	// Fastest structure at the floor interval.
	p.Ts = 64
	return p
}

// RankScenarios orders the Table I scenarios by predicted robustness
// (band-center separation under cfg), best first.
func RankScenarios(cfg machine.Config) []ScenarioRank {
	out := make([]ScenarioRank, 0, len(Scenarios))
	for _, sc := range Scenarios {
		a := float64(placementBaseLatency(cfg, sc.Comm))
		b := float64(placementBaseLatency(cfg, sc.Bound))
		sep := a - b
		if sep < 0 {
			sep = -sep
		}
		out = append(out, ScenarioRank{Scenario: sc, Separation: sep})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Separation != out[j].Separation {
			return out[i].Separation > out[j].Separation
		}
		return out[i].Scenario.Name() < out[j].Scenario.Name()
	})
	return out
}
