package covert

import "testing"

func TestParallelChannelOneLaneMatchesBinary(t *testing.T) {
	bits := PatternBitsForTest(51, 40)
	ch := NewParallelChannel(Scenarios[0], 1)
	res, err := ch.Run(bits)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != 1 {
		t.Fatalf("1-lane accuracy = %v", res.Accuracy)
	}
}

func TestParallelChannelFourLanes(t *testing.T) {
	bits := PatternBitsForTest(53, 120)
	ch := NewParallelChannel(Scenarios[0], 4)
	res, err := ch.Run(bits)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Synced {
		t.Fatal("no sync")
	}
	if res.Accuracy != 1 {
		t.Fatalf("4-lane accuracy = %v (rx %d/%d bits)", res.Accuracy, len(res.RxBits), len(res.TxBits))
	}
	if len(res.PerLane) != 4 {
		t.Fatalf("lanes = %d", len(res.PerLane))
	}
}

// The point of lanes: more payload per period. Four lanes must beat one
// lane's raw rate on the same payload.
func TestParallelLanesRaiseRate(t *testing.T) {
	bits := PatternBitsForTest(55, 120)
	rate := func(lanes int) float64 {
		ch := NewParallelChannel(Scenarios[0], lanes)
		res, err := ch.Run(bits)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accuracy < 0.99 {
			t.Fatalf("%d lanes: accuracy %v", lanes, res.Accuracy)
		}
		return res.RawKbps
	}
	one, four := rate(1), rate(4)
	if four <= one*1.5 {
		t.Fatalf("4 lanes %.0f Kbps vs 1 lane %.0f Kbps: speedup under 1.5x", four, one)
	}
	t.Logf("1 lane %.0f Kbps, 4 lanes %.0f Kbps (%.2fx)", one, four, four/one)
}

func TestParallelChannelRejectsBadConfig(t *testing.T) {
	ch := NewParallelChannel(Scenarios[0], 0)
	if _, err := ch.Run([]byte{1}); err == nil {
		t.Fatal("0 lanes accepted")
	}
	ch = NewParallelChannel(Scenarios[0], 17)
	if _, err := ch.Run([]byte{1}); err == nil {
		t.Fatal("17 lanes accepted (page holds 64 lines but LLC-set aliasing caps at 16)")
	}
	ch = NewParallelChannel(Scenarios[0], 2)
	p := DefaultParams()
	p.Probe = ProbeEviction
	ch.Params = p
	if _, err := ch.Run([]byte{1, 0}); err == nil {
		t.Fatal("eviction probing accepted for parallel lanes")
	}
}

func TestParallelChannelRemoteScenario(t *testing.T) {
	bits := PatternBitsForTest(57, 80)
	ch := NewParallelChannel(Scenarios[3], 4) // RExclc-LSharedb
	res, err := ch.Run(bits)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != 1 {
		t.Fatalf("remote 4-lane accuracy = %v", res.Accuracy)
	}
}

func TestParallelDeterminism(t *testing.T) {
	run := func() *ParallelResult {
		ch := NewParallelChannel(Scenarios[0], 3)
		res, err := ch.Run(PatternBitsForTest(59, 60))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Duration != b.Duration || a.Accuracy != b.Accuracy {
		t.Fatal("parallel runs diverged")
	}
}
