package covert

import (
	"testing"

	"coherentleak/internal/machine"
	"coherentleak/internal/stats"
)

func TestCalibrateBandsDistinct(t *testing.T) {
	cfg := machine.DefaultConfig()
	b, err := Calibrate(cfg, 99, 200, DefaultParams().BandMargin)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Distinct(); err != nil {
		t.Fatalf("calibrated bands overlap: %v", err)
	}
	if len(b.ByPlacement) != 4 {
		t.Fatalf("placement bands = %d, want 4", len(b.ByPlacement))
	}
}

// §V's headline numbers: ~124 cycles for a local E block, ~98 for local S.
func TestCalibrationMatchesPaperNumbers(t *testing.T) {
	cfg := machine.DefaultConfig()
	b, err := Calibrate(cfg, 7, 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		pl   Placement
		want float64
		tol  float64
	}{
		{LShared, 98, 8},
		{LExcl, 124, 8},
		{RShared, 186, 10},
		{RExcl, 242, 10},
	}
	for _, c := range checks {
		got := b.ByPlacement[c.pl].Center
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("%v center = %.1f, want %.0f±%.0f", c.pl, got, c.want, c.tol)
		}
	}
	if b.DRAM.Center < 320 || b.DRAM.Center > 370 {
		t.Errorf("DRAM center = %.1f", b.DRAM.Center)
	}
}

// Figure 2's structure: the four bands are ordered
// localS < localE < remoteS < remoteE and each is narrow.
func TestBandOrderingAndWidth(t *testing.T) {
	cfg := machine.DefaultConfig()
	b, err := Calibrate(cfg, 3, 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	order := []Placement{LShared, LExcl, RShared, RExcl}
	for i := 0; i+1 < len(order); i++ {
		lo, hi := b.ByPlacement[order[i]], b.ByPlacement[order[i+1]]
		if lo.Hi >= hi.Lo {
			t.Errorf("band %v [%.0f..%.0f] not below %v [%.0f..%.0f]",
				order[i], lo.Lo, lo.Hi, order[i+1], hi.Lo, hi.Hi)
		}
	}
	for pl, band := range b.ByPlacement {
		if w := band.Hi - band.Lo; w > 40 {
			t.Errorf("%v band too wide: %.0f cycles", pl, w)
		}
	}
}

func TestCalibrateSingleSocket(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Sockets = 1
	b, err := Calibrate(cfg, 5, 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.ByPlacement) != 2 {
		t.Fatalf("1-socket bands = %d, want 2 (local only)", len(b.ByPlacement))
	}
	if _, err := MeasurePlacement(cfg, 1, RExcl, 10, nil); err == nil {
		t.Fatal("remote measurement on 1 socket accepted")
	}
}

func TestMeasurePlacementPaths(t *testing.T) {
	cfg := machine.DefaultConfig()
	for _, pl := range AllPlacements {
		xs, err := MeasurePlacement(cfg, 11, pl, 50, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(xs) != 50 {
			t.Fatalf("%v: %d samples", pl, len(xs))
		}
		s := stats.Summarize(xs)
		if s.Std > 8 {
			t.Errorf("%v: quiet-machine spread %.1f too wide", pl, s.Std)
		}
	}
}

func TestClassifyNearestCenter(t *testing.T) {
	b := Bands{
		ByPlacement: map[Placement]stats.Band{
			LExcl:   {Name: "LExcl", Lo: 110, Hi: 140, Center: 124},
			LShared: {Name: "LShared", Lo: 85, Hi: 110, Center: 98},
		},
		DRAM: stats.Band{Name: "DRAM", Lo: 330, Hi: 360, Center: 346},
	}
	sc := Scenario{Comm: LExcl, Bound: LShared}
	cases := map[uint64]Class{
		124: ClassComm,
		98:  ClassBound,
		110: ClassBound, // 12 from 98, 14 from 124
		112: ClassComm,  // 14 from 98, 12 from 124
		300: ClassOther,
		346: ClassOther,
		20:  ClassBound, // nearest is still LShared
	}
	for lat, want := range cases {
		if got := b.Classify(sc, lat); got != want {
			t.Errorf("Classify(%d) = %v, want %v", lat, got, want)
		}
	}
}

// Property: classification is total (never panics) and consistent — a
// latency exactly at a band center always classifies as that band.
func TestClassifyTotalAndCenteredProperty(t *testing.T) {
	cfg := machine.DefaultConfig()
	b, err := Calibrate(cfg, 31, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range Scenarios {
		if got := b.Classify(sc, uint64(b.ByPlacement[sc.Comm].Center)); got != ClassComm {
			t.Errorf("%s: comm center classifies %v", sc.Name(), got)
		}
		if got := b.Classify(sc, uint64(b.ByPlacement[sc.Bound].Center)); got != ClassBound {
			t.Errorf("%s: bound center classifies %v", sc.Name(), got)
		}
		if got := b.Classify(sc, uint64(b.DRAM.Center)); got != ClassOther {
			t.Errorf("%s: DRAM center classifies %v", sc.Name(), got)
		}
		// Totality over a wide latency sweep.
		for lat := uint64(1); lat < 2000; lat += 7 {
			_ = b.Classify(sc, lat)
		}
	}
}

func machineDefaultForTest() machine.Config { return machine.DefaultConfig() }
