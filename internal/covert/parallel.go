package covert

import (
	"fmt"

	"coherentleak/internal/cache"
	"coherentleak/internal/kernel"
	"coherentleak/internal/machine"
	"coherentleak/internal/sim"
	"coherentleak/internal/stats"
)

// ParallelChannel is a bandwidth extension beyond the paper: the shared
// page holds 64 cache lines, and every line can carry the §VII protocol
// independently. The trojan runs one schedule per lane; the spy probes
// all lanes each period and decodes them in parallel, multiplying the
// per-period payload. (The paper's §VIII-D closes with "more
// sophisticated symbol encoding mechanisms may achieve even higher
// transmission rates" — this is the natural next step an adversary would
// take.)
type ParallelChannel struct {
	Config machine.Config
	// Scenario applies to every lane.
	Scenario Scenario
	// Params apply to every lane; the spy's period grows with Lanes, so
	// effective rates do not scale perfectly linearly.
	Params Params
	// Lanes is the number of cache lines used (1..16).
	Lanes                  int
	Mode                   SharingMode
	WorldSeed, PatternSeed uint64
	Bands                  *Bands
	PreRun                 func(*Session)
}

// NewParallelChannel returns a parallel channel with the default testbed
// and four lanes.
func NewParallelChannel(sc Scenario, lanes int) *ParallelChannel {
	return &ParallelChannel{
		Config:      machine.DefaultConfig(),
		Scenario:    sc,
		Params:      DefaultParams(),
		Lanes:       lanes,
		Mode:        ShareKSM,
		WorldSeed:   1,
		PatternSeed: 0xc0fe,
	}
}

// ParallelResult reports a multi-lane transmission.
type ParallelResult struct {
	TxBits, RxBits []byte
	// PerLane holds each lane's decoded bits.
	PerLane  [][]byte
	Accuracy float64
	Duration sim.Cycles
	RawKbps  float64
	Synced   bool
}

// Run transmits bits striped round-robin across the lanes.
func (c *ParallelChannel) Run(bits []byte) (*ParallelResult, error) {
	if c.Lanes < 1 || c.Lanes > 16 {
		return nil, fmt.Errorf("covert: lanes must be 1..16, got %d", c.Lanes)
	}
	if !c.Scenario.Valid() {
		return nil, fmt.Errorf("covert: invalid scenario")
	}
	if err := c.Params.Validate(); err != nil {
		return nil, err
	}
	if c.Params.Probe == ProbeEviction {
		return nil, fmt.Errorf("covert: parallel lanes share an LLC set region; eviction probing is not supported")
	}

	sess, err := NewSession(c.Config, c.WorldSeed, c.PatternSeed, c.Mode)
	if err != nil {
		return nil, err
	}
	if !sess.Supports(c.Scenario) {
		return nil, fmt.Errorf("covert: machine cannot host scenario %s", c.Scenario.Name())
	}
	var bands Bands
	if c.Bands != nil {
		bands = *c.Bands
	} else {
		bands, err = Calibrate(c.Config, c.WorldSeed+7777, 200, c.Params.BandMargin)
		if err != nil {
			return nil, err
		}
	}
	if c.PreRun != nil {
		c.PreRun(sess)
	}

	// Stripe the payload: lane i carries bits i, i+k, i+2k, ... padded
	// with zeros so every lane runs the same number of periods.
	laneBits := make([][]byte, c.Lanes)
	for i, b := range bits {
		laneBits[i%c.Lanes] = append(laneBits[i%c.Lanes], b)
	}
	maxLen := 0
	for _, lb := range laneBits {
		if len(lb) > maxLen {
			maxLen = len(lb)
		}
	}
	for i := range laneBits {
		for len(laneBits[i]) < maxLen {
			laneBits[i] = append(laneBits[i], 0)
		}
	}

	tr := newParallelTrojan(sess, c.Scenario, c.Params, laneBits)
	sp := newParallelSpy(sess, c.Scenario, c.Params, bands, c.Lanes)

	est := c.Params.EstimatePeriodCycles(c.Config, c.Scenario) * float64(c.Lanes)
	limit := sim.Cycles(est*float64(tr.periods)*50) + 100_000_000
	if err := sess.World.RunUntilDeadline(limit, func() bool { return sp.done }); err != nil {
		return nil, err
	}
	tr.stop()
	sess.World.Drain()

	res := &ParallelResult{
		TxBits:  append([]byte(nil), bits...),
		PerLane: sp.Bits,
		Synced:  sp.Synced,
	}
	// Reassemble: take bit j from lane j%k at index j/k when decoded.
	for j := 0; j < len(bits); j++ {
		lane, idx := j%c.Lanes, j/c.Lanes
		if idx < len(sp.Bits[lane]) {
			res.RxBits = append(res.RxBits, sp.Bits[lane][idx])
		}
	}
	res.Accuracy = stats.Accuracy(res.TxBits, res.RxBits)
	if sp.EndCycle > sp.StartCycle {
		res.Duration = sp.EndCycle - sp.StartCycle
		res.RawKbps = stats.Kbps(len(bits), c.Config.CyclesToSeconds(res.Duration))
	}
	return res, nil
}

// laneVA returns each side's virtual address of lane i's line.
func laneVA(base uint64, lane int) uint64 { return base + uint64(lane)*cache.LineSize }

// parallelTrojan runs one schedule per lane over shared worker threads.
type parallelTrojan struct {
	sess    *Session
	scheds  []schedule
	bases   []uint64
	pollGap sim.Cycles
	periods int
	threads []*kernel.Thread
	stopped bool
}

func newParallelTrojan(sess *Session, sc Scenario, p Params, laneBits [][]byte) *parallelTrojan {
	t := &parallelTrojan{sess: sess, pollGap: p.Ts / 3}
	if t.pollGap < 24 {
		t.pollGap = 24
	}
	for lane, bits := range laneBits {
		t.scheds = append(t.scheds, buildSchedule(sc, p, bits))
		t.bases = append(t.bases, sess.Mach.FlushEpoch(laneVA(sess.SharedPA(), lane)))
		if n := t.scheds[lane].periods(); n > t.periods {
			t.periods = n
		}
	}
	local, remote := sc.TrojanThreads()
	for i := 0; i < local; i++ {
		t.spawn(Local, i)
	}
	for i := 0; i < remote; i++ {
		t.spawn(Remote, i)
	}
	return t
}

func (t *parallelTrojan) spawn(loc Location, idx int) {
	core := t.sess.workerCores(loc)[idx]
	basePA := t.sess.SharedPA()
	baseVA := t.sess.TrojanVA
	rng := t.sess.WorkerRand()
	th := t.sess.Kern.Spawn(t.sess.TrojanProc, core, workerName(loc, idx), func(kt *kernel.Thread) {
		for !kt.StopRequested() && !t.stopped {
			t.sess.maybePreempt(kt, rng, t.pollGap)
			anyLive := false
			for lane := range t.scheds {
				period := t.sess.Mach.FlushEpoch(laneVA(basePA, lane)) - t.bases[lane]
				pl, live := t.scheds[lane].at(period)
				if !live {
					continue
				}
				anyLive = true
				if pl.Loc == loc && idx < pl.Threads() {
					kt.Load(laneVA(baseVA, lane))
				}
			}
			if !anyLive {
				period0 := t.sess.Mach.FlushEpoch(basePA) - t.bases[0]
				if period0 > uint64(t.periods)+64 {
					return
				}
			}
			kt.Advance(t.pollGap)
		}
	})
	t.threads = append(t.threads, th)
}

func (t *parallelTrojan) stop() {
	t.stopped = true
	for _, th := range t.threads {
		t.sess.World.StopThread(th.Sim)
	}
}

// parallelSpy probes every lane each period and decodes them separately.
type parallelSpy struct {
	sess   *Session
	sc     Scenario
	params Params
	bands  Bands
	lanes  int

	samples [][]Sample
	Bits    [][]byte
	Synced  bool

	StartCycle, EndCycle sim.Cycles
	done                 bool
}

func newParallelSpy(sess *Session, sc Scenario, p Params, bands Bands, lanes int) *parallelSpy {
	s := &parallelSpy{
		sess: sess, sc: sc, params: p, bands: bands, lanes: lanes,
		samples: make([][]Sample, lanes),
		Bits:    make([][]byte, lanes),
	}
	sess.Kern.Spawn(sess.SpyProc, sess.SpyCore, "spy", func(kt *kernel.Thread) {
		defer func() { s.done = true }()
		s.run(kt)
	})
	return s
}

// measure probes all lanes once: flush every lane, wait, timed-load every
// lane.
func (s *parallelSpy) measure(kt *kernel.Thread) []Sample {
	for lane := 0; lane < s.lanes; lane++ {
		kt.Flush(laneVA(s.sess.SpyVA, lane))
	}
	kt.Advance(s.params.Ts)
	out := make([]Sample, s.lanes)
	for lane := 0; lane < s.lanes; lane++ {
		acc := kt.Load(laneVA(s.sess.SpyVA, lane))
		out[lane] = Sample{
			Cycle:   kt.Now(),
			Latency: acc.Latency,
			Class:   s.bands.Classify(s.sc, acc.Latency),
		}
	}
	return out
}

func (s *parallelSpy) run(kt *kernel.Thread) {
	p := s.params
	// Poll for sync on lane 0.
	var first []Sample
	for polls := 0; ; polls++ {
		if polls > p.MaxPeriods || kt.StopRequested() {
			return
		}
		smp := s.measure(kt)
		if smp[0].Class == ClassBound {
			first = smp
			break
		}
	}
	s.Synced = true
	s.StartCycle = kt.Now()
	for lane := range first {
		s.samples[lane] = append(s.samples[lane], first[lane])
	}

	outOfBand := 0
	for len(s.samples[0]) < p.MaxPeriods && !kt.StopRequested() {
		smp := s.measure(kt)
		allIdle := true
		for lane := range smp {
			s.samples[lane] = append(s.samples[lane], smp[lane])
			if smp[lane].Class != ClassOther {
				allIdle = false
			}
		}
		if allIdle {
			outOfBand++
			if outOfBand >= p.EndRun {
				break
			}
		} else {
			outOfBand = 0
		}
	}
	s.EndCycle = kt.Now()
	for lane := range s.samples {
		s.Bits[lane] = translate(s.samples[lane], p)
	}
}
