package covert

import (
	"fmt"

	"coherentleak/internal/kernel"
	"coherentleak/internal/machine"
	"coherentleak/internal/sim"
)

// SharingMode selects how the trojan and spy obtain a shared physical
// page (§IV).
type SharingMode uint8

const (
	// ShareKSM: both processes write an identical pseudo-random pattern
	// into private MERGEABLE pages and the kernel's same-page merging
	// deduplicates them — the broader adversary model.
	ShareKSM SharingMode = iota
	// ShareExplicit: a read-only physical page is mapped into both
	// address spaces directly (shared library code/data, the prior-work
	// model).
	ShareExplicit
)

func (m SharingMode) String() string {
	if m == ShareKSM {
		return "ksm"
	}
	return "explicit"
}

// Session is a constructed attack environment: the simulated machine, the
// OS, the trojan and spy processes, and their shared block B.
type Session struct {
	World *sim.World
	Mach  *machine.Machine
	Kern  *kernel.Kernel

	TrojanProc *kernel.Process
	SpyProc    *kernel.Process

	// TrojanVA and SpyVA are each side's virtual address of the shared
	// block B (one cache line inside the shared page).
	TrojanVA uint64
	SpyVA    uint64
	// SpareTrojanVA / SpareSpyVA address the spare shared page created
	// up-front so a third-party merge collision never forces re-invoking
	// KSM (§VII-A). Zero in explicit mode.
	SpareTrojanVA uint64
	SpareSpyVA    uint64

	// SpyCore is the spy thread's core (socket 0 by construction).
	SpyCore int
	// LocalCores are trojan worker cores on the spy's socket.
	LocalCores [2]int
	// RemoteCores are trojan worker cores on the other socket; valid
	// only when HasRemote.
	RemoteCores [2]int
	// HasRemote reports whether the machine has a second socket.
	HasRemote bool

	// Mode records how the shared page was created.
	Mode SharingMode

	// OSNoiseProb is the probability per 1000 cycles that a trojan
	// worker is interrupted (IRQ / kernel housekeeping / involuntary
	// switch) for OSNoiseCycles. An interrupted worker misses reload
	// windows, which the spy sees as out-of-band samples; whether a
	// burst actually costs a window depends on how much slack the
	// channel's sampling interval leaves, so slow (rate-adapted)
	// configurations absorb bursts that wreck fast ones. The default is
	// zero: trojan and spy threads are pinned to dedicated cores
	// (sched_setaffinity), so on a lightly loaded machine they are
	// essentially never descheduled. The noise package raises it when
	// co-located workloads oversubscribe the cores (Figure 9).
	OSNoiseProb float64
	// OSNoiseCycles is the preemption duration.
	OSNoiseCycles sim.Cycles
	// osRand drives preemption draws, split per worker.
	osRand *sim.Rand
}

// PagePattern fills buf with the deterministic pseudo-random pattern both
// sides agree on ahead of time (§VII-A: "a deterministic, pseudo-random
// number generator function that begins with the same seed").
func PagePattern(seed uint64, buf []byte) {
	r := sim.NewRand(seed)
	for i := 0; i < len(buf); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < len(buf); j++ {
			buf[i+j] = byte(v >> (8 * uint(j)))
		}
	}
}

// NewSession builds the attack environment on a fresh world.
// patternSeed seeds the agreed page contents in KSM mode.
func NewSession(cfg machine.Config, worldSeed, patternSeed uint64, mode SharingMode) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.CoresPerSocket < 3 {
		return nil, fmt.Errorf("covert: need >= 3 cores on the spy's socket (spy + 2 local trojan threads), have %d", cfg.CoresPerSocket)
	}
	w := sim.NewWorld(sim.Config{Seed: worldSeed})
	m := machine.New(w, cfg)
	k := kernel.New(m, 0)

	s := &Session{
		World:         w,
		Mach:          m,
		Kern:          k,
		TrojanProc:    k.NewProcess("trojan"),
		SpyProc:       k.NewProcess("spy"),
		SpyCore:       0,
		LocalCores:    [2]int{1, 2},
		HasRemote:     cfg.Sockets >= 2,
		Mode:          mode,
		OSNoiseProb:   0,
		OSNoiseCycles: 1500,
		osRand:        w.Rand().Split(),
	}
	if s.HasRemote {
		if cfg.CoresPerSocket < 2 {
			return nil, fmt.Errorf("covert: need >= 2 cores on the remote socket")
		}
		base := cfg.CoresPerSocket // first core of socket 1
		s.RemoteCores = [2]int{base, base + 1}
	}

	switch mode {
	case ShareExplicit:
		vas, err := k.MapSharedReadOnly(s.TrojanProc, s.SpyProc)
		if err != nil {
			return nil, err
		}
		s.TrojanVA, s.SpyVA = vas[0], vas[1]
	case ShareKSM:
		if err := s.setupKSM(patternSeed); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("covert: unknown sharing mode %d", mode)
	}
	return s, nil
}

// setupKSM creates the shared page the broader-adversary way: identical
// contents, madvise, merge scan, plus a spare page (§VII-A).
func (s *Session) setupKSM(patternSeed uint64) error {
	pattern := make([]byte, kernel.PageSize)
	sparePattern := make([]byte, kernel.PageSize)
	PagePattern(patternSeed, pattern)
	PagePattern(patternSeed^0xdeadbeefcafef00d, sparePattern)

	tva, err := s.TrojanProc.Mmap(2)
	if err != nil {
		return err
	}
	sva, err := s.SpyProc.Mmap(2)
	if err != nil {
		return err
	}
	for _, fill := range []struct {
		p    *kernel.Process
		va   uint64
		data []byte
	}{
		{s.TrojanProc, tva, pattern},
		{s.TrojanProc, tva + kernel.PageSize, sparePattern},
		{s.SpyProc, sva, pattern},
		{s.SpyProc, sva + kernel.PageSize, sparePattern},
	} {
		if err := fill.p.WriteBytes(fill.va, fill.data); err != nil {
			return err
		}
	}
	if err := s.TrojanProc.Madvise(tva, 2); err != nil {
		return err
	}
	if err := s.SpyProc.Madvise(sva, 2); err != nil {
		return err
	}
	s.Kern.KSM.Scan()
	if !s.TrojanProc.SharesFrameWith(tva, s.SpyProc, sva) {
		return fmt.Errorf("covert: KSM did not merge the agreed pages")
	}
	s.TrojanVA, s.SpyVA = tva, sva
	s.SpareTrojanVA, s.SpareSpyVA = tva+kernel.PageSize, sva+kernel.PageSize
	return nil
}

// SwitchToSpare retargets the channel at the spare shared page — the
// §VII-A response to detecting an external process merged into the
// primary page. It reports whether a spare was available.
func (s *Session) SwitchToSpare() bool {
	if s.SpareTrojanVA == 0 {
		return false
	}
	if !s.TrojanProc.SharesFrameWith(s.SpareTrojanVA, s.SpyProc, s.SpareSpyVA) {
		return false
	}
	s.TrojanVA, s.SpyVA = s.SpareTrojanVA, s.SpareSpyVA
	s.SpareTrojanVA, s.SpareSpyVA = 0, 0
	return true
}

// SharedPA returns the physical address of block B.
func (s *Session) SharedPA() uint64 {
	pa, err := s.SpyProc.Translate(s.SpyVA)
	if err != nil {
		panic(err)
	}
	return pa
}

// ExternallyShared reports whether a process other than the trojan and
// spy maps B's frame — the trial-communication collision the paper checks
// for before transmitting (§IV). (The timing-based detection the paper
// uses amounts to the same census; the frame refcount is the simulator's
// ground truth for it.)
func (s *Session) ExternallyShared() bool {
	pte := s.SpyProc.PTEOf(s.SpyVA)
	return pte != nil && pte.Frame.Refs() > 2
}

// Supports reports whether the machine can host the scenario (remote
// placements need a second socket).
func (s *Session) Supports(sc Scenario) bool {
	if s.HasRemote {
		return true
	}
	return sc.Comm.Loc == Local && sc.Bound.Loc == Local
}

// workerCores returns the trojan worker cores serving a location.
func (s *Session) workerCores(loc Location) [2]int {
	if loc == Local {
		return s.LocalCores
	}
	return s.RemoteCores
}

// maybePreempt applies one OS-scheduler interruption draw covering gap
// cycles of a worker's polling loop, returning true if it fired. The
// per-draw probability scales with the time covered so the interruption
// process is a rate, independent of how often the worker polls.
func (s *Session) maybePreempt(kt *kernel.Thread, rng *sim.Rand, gap sim.Cycles) bool {
	if s.OSNoiseProb <= 0 {
		return false
	}
	p := s.OSNoiseProb * float64(gap) / 1000
	if !rng.Bool(p) {
		return false
	}
	// Burst durations vary between half and 1.5x the nominal cost
	// (interrupt handlers are quick; kernel housekeeping is not).
	d := s.OSNoiseCycles/2 + sim.Cycles(rng.Uint64n(uint64(s.OSNoiseCycles)))
	kt.Preempt(d)
	return true
}

// WorkerRand returns a fresh deterministic stream for a worker's
// preemption draws.
func (s *Session) WorkerRand() *sim.Rand { return s.osRand.Split() }
