package covert

import (
	"fmt"

	"coherentleak/internal/cache"
	"coherentleak/internal/kernel"
)

// BuildSpyEvictionSet allocates pages in the spy's address space until it
// has collected one virtual address per LLC way whose physical line maps
// to the same LLC set as the shared block B — the conflict set whose
// traversal evicts B from the spy's socket ("eviction of all the ways in
// the set", §VI-B citing [12]).
//
// The construction uses the simulator's known physical frame layout; on
// real hardware the same set is found by timing-based group testing,
// which the cited prior work describes. The returned addresses are in
// the spy's private pages, so probing them needs no sharing.
func (s *Session) BuildSpyEvictionSet() ([]uint64, error) {
	llc := s.Mach.Socket(s.Mach.Core(s.SpyCore).Socket).LLC
	target := llc.SetIndexOf(s.SharedPA())
	ways := llc.Geometry().Ways

	var out []uint64
	const linesPerPage = kernel.PageSize / cache.LineSize
	// Allocate in chunks; each page holds linesPerPage consecutive lines,
	// so a matching line appears every Sets/linesPerPage pages.
	for tries := 0; len(out) < ways && tries < 1_000_000; tries++ {
		va, err := s.SpyProc.Mmap(1)
		if err != nil {
			return nil, err
		}
		base, err := s.SpyProc.Translate(va)
		if err != nil {
			return nil, err
		}
		for off := uint64(0); off < kernel.PageSize; off += cache.LineSize {
			pa := base + off
			if llc.SetIndexOf(pa) == target && cache.LineAddr(pa) != cache.LineAddr(s.SharedPA()) {
				out = append(out, va+off)
				if len(out) == ways {
					break
				}
			}
		}
	}
	if len(out) < ways {
		return nil, fmt.Errorf("covert: found only %d/%d conflict lines", len(out), ways)
	}
	return out, nil
}
