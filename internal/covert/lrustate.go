// LRU-state covert channel (Xiong & Szefer, "Leaking Information
// Through Cache LRU States"): the trojan encodes a bit purely in the
// *replacement metadata* of the shared line's LLC set. Each slot the spy
// primes the set so the shared block B is the designated victim, the
// trojan either re-touches B (bit 1, making B most-recently-used) or
// stays idle (bit 0), and the spy then forces exactly one eviction with
// a fresh conflict line and times a reload of B: a fast reload means B
// survived (the trojan's touch moved the victim pointer), a DRAM-bound
// reload means B was the victim. Every trojan access on the monitored
// set is a *hit* — the trojan never changes any hit/miss outcome, only
// recency — which is what distinguishes this from classic prime+probe
// and why hit/miss-preserving mitigations do not close it.
//
// How well the channel works is a property of the replacement policy:
// true LRU and tree-PLRU honour the spy's priming order, so single-touch
// control of the victim pointer is exact; SRRIP collapses all primed
// lines to the same re-reference class (the victim degenerates to a scan
// from way 0) and BRRIP's distant-insertion thrash resistance keeps the
// spy from even staging the set. The protomatrix artifact reports the
// survival surface.
package covert

import (
	"fmt"
	"sort"

	"coherentleak/internal/cache"
	"coherentleak/internal/kernel"
	"coherentleak/internal/machine"
	"coherentleak/internal/sim"
)

// LRUStateChannel transmits through LLC replacement metadata. Trojan and
// spy run on the same socket (cores 1 and 0) and are externally clocked
// into fixed slots, like DirtyStateChannel.
type LRUStateChannel struct {
	Config    machine.Config
	WorldSeed uint64
	// Period is the slot length in cycles; 0 selects the default. A slot
	// must fit the spy's two scrub+prime passes (≈60 conflicting loads)
	// in its first half.
	Period sim.Cycles
}

// DefaultLRUStatePeriod fits the spy's prime (two scrub passes + two
// passes over the 16-way conflict set) in the first half of the slot
// with margin under the default latency model.
const DefaultLRUStatePeriod = sim.Cycles(32768)

// scrubLines is the number of same-L2-set lines used to purge the
// monitored lines from a core's private caches between passes; > the
// 8-way private associativity so one pass suffices under LRU.
const scrubLines = 12

// collectConflicts allocates pages in proc until n private lines mapping
// to the same LLC set as targetPA are found (excluding targetPA's own
// line). Same ground-truth construction as BuildSpyEvictionSet: the
// simulator exposes its frame layout where real attackers use
// timing-based group testing. Returns each line's VA and PA.
func collectConflicts(proc *kernel.Process, llc *cache.Cache, targetPA uint64, n int) (vas, pas []uint64, err error) {
	target := llc.SetIndexOf(targetPA)
	for tries := 0; len(vas) < n && tries < 1_000_000; tries++ {
		va, err := proc.Mmap(1)
		if err != nil {
			return nil, nil, err
		}
		base, err := proc.Translate(va)
		if err != nil {
			return nil, nil, err
		}
		for off := uint64(0); off < kernel.PageSize && len(vas) < n; off += cache.LineSize {
			pa := base + off
			if llc.SetIndexOf(pa) == target && cache.LineAddr(pa) != cache.LineAddr(targetPA) {
				vas = append(vas, va+off)
				pas = append(pas, pa)
			}
		}
	}
	if len(vas) < n {
		return nil, nil, fmt.Errorf("covert: found only %d/%d LLC conflict lines", len(vas), n)
	}
	return vas, pas, nil
}

// collectScrub allocates private lines that share targetPA's L1/L2 set
// but *not* its LLC set: loading them evicts the monitored lines from
// the core's private caches (so the next touch is visible to the LLC)
// without disturbing the monitored LLC set's replacement metadata. The
// default geometry guarantees such lines exist: the L2 set count (512)
// divides the LLC set count (12288), so same-L2-set lines recur every
// 512 lines while only every 24th of those shares the LLC set.
func collectScrub(proc *kernel.Process, l2, llc *cache.Cache, targetPA uint64, n int) ([]uint64, error) {
	l2target := l2.SetIndexOf(targetPA)
	llctarget := llc.SetIndexOf(targetPA)
	var out []uint64
	for tries := 0; len(out) < n && tries < 1_000_000; tries++ {
		va, err := proc.Mmap(1)
		if err != nil {
			return nil, err
		}
		base, err := proc.Translate(va)
		if err != nil {
			return nil, err
		}
		for off := uint64(0); off < kernel.PageSize && len(out) < n; off += cache.LineSize {
			pa := base + off
			if l2.SetIndexOf(pa) == l2target && llc.SetIndexOf(pa) != llctarget {
				out = append(out, va+off)
			}
		}
	}
	if len(out) < n {
		return nil, fmt.Errorf("covert: found only %d/%d scrub lines", len(out), n)
	}
	return out, nil
}

// Run transmits bits and returns the decoded result.
func (c LRUStateChannel) Run(bits []byte) (*SlotResult, error) {
	cfg := c.Config
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.CoresPerSocket < 2 {
		return nil, fmt.Errorf("covert: lrustate needs >= 2 cores per socket")
	}
	if !cfg.InclusiveLLC {
		return nil, fmt.Errorf("covert: lrustate requires an inclusive LLC (fills must touch LLC metadata)")
	}
	period := c.Period
	if period == 0 {
		period = DefaultLRUStatePeriod
	}
	w := sim.NewWorld(sim.Config{Seed: c.WorldSeed})
	m := machine.New(w, cfg)
	k := kernel.New(m, 0)
	trojanProc := k.NewProcess("trojan")
	spyProc := k.NewProcess("spy")
	vas, err := k.MapSharedReadOnly(trojanProc, spyProc)
	if err != nil {
		return nil, err
	}
	trojanVA, spyVA := vas[0], vas[1]
	sharedPA, err := spyProc.Translate(spyVA)
	if err != nil {
		return nil, err
	}

	const spyCore, trojanCore = 0, 1
	llc := m.Socket(m.Core(spyCore).Socket).LLC
	ways := llc.Geometry().Ways
	if ways < 2 {
		return nil, fmt.Errorf("covert: lrustate needs an associative LLC")
	}
	// ways-1 prime lines (set = {B, C1..C15}) plus one forcing line F.
	confVAs, confPAs, err := collectConflicts(spyProc, llc, sharedPA, ways)
	if err != nil {
		return nil, err
	}
	primeVAs, primePAs := confVAs[:ways-1], confPAs[:ways-1]
	forceVA := confVAs[ways-1]
	spyScrub, err := collectScrub(spyProc, m.Core(spyCore).L2, llc, sharedPA, scrubLines)
	if err != nil {
		return nil, err
	}
	trojanScrub, err := collectScrub(trojanProc, m.Core(trojanCore).L2, llc, sharedPA, scrubLines)
	if err != nil {
		return nil, err
	}

	lat := cfg.Latencies
	// Reload bands: B surviving in the LLC costs at most the local
	// forward path; B evicted costs the DRAM path. Split between them.
	llcBound := lat.MissBase + 2*lat.Ring + lat.LLCService + lat.ForwardLocal
	threshold := llcBound + lat.DRAMService/2

	res := &SlotResult{TxBits: bits}

	k.Spawn(trojanProc, trojanCore, "lru-trojan", func(kt *kernel.Thread) {
		start := kt.Now()
		for i, b := range bits {
			// Mid-slot, after the spy's prime: scrub B from the private
			// caches so the encode touch is a private miss that reaches
			// the LLC's replacement metadata (an LLC *hit* — the touch
			// changes recency only, never presence).
			advanceTo(kt, start+sim.Cycles(i)*period+period*55/100)
			for _, a := range trojanScrub {
				kt.Load(a)
			}
			if b == 1 {
				kt.Load(trojanVA)
			}
		}
	})
	k.Spawn(spyProc, spyCore, "lru-spy", func(kt *kernel.Thread) {
		start := kt.Now()
		prime := make([]int, ways-1) // C indices in touch order
		for i := range bits {
			advanceTo(kt, start+sim.Cycles(i)*period)
			// Pass 1: ensure residency. Scrub privates, then walk the
			// full set so every line is in the LLC.
			for _, a := range spyScrub {
				kt.Load(a)
			}
			kt.Load(spyVA)
			for _, a := range primeVAs {
				kt.Load(a)
			}
			// Pass 2: the priming walk. Scrub again so each touch below
			// is a private miss (visible to the LLC), then touch B first
			// and the conflict lines in ascending way-XOR distance from
			// B — under tree-PLRU the last toucher through every node on
			// B's tree path then lies in the opposite subtree, parking
			// the victim pointer exactly on B; under true LRU any order
			// with B first works and this one does too.
			for _, a := range spyScrub {
				kt.Load(a)
			}
			wayB, okB := llc.WayOf(sharedPA)
			for j := range prime {
				prime[j] = j
			}
			if okB {
				sort.SliceStable(prime, func(a, b int) bool {
					wa, oka := llc.WayOf(primePAs[prime[a]])
					wb, okb := llc.WayOf(primePAs[prime[b]])
					if !oka || !okb {
						return oka && !okb // resident lines first
					}
					return wa^wayB < wb^wayB
				})
			}
			kt.Load(spyVA)
			for _, j := range prime {
				kt.Load(primeVAs[j])
			}
			// Trojan's window is 55%..85% of the slot.
			advanceTo(kt, start+sim.Cycles(i)*period+period*85/100)
			// Force exactly one replacement decision, then time B.
			kt.Load(forceVA)
			a := kt.Load(spyVA)
			bit := byte(0)
			if a.Latency < threshold {
				bit = 1 // fast reload: B survived, so the trojan touched it
			}
			res.RxBits = append(res.RxBits, bit)
			res.Samples = append(res.Samples, SlotSample{Slot: i, Latency: a.Latency, Bit: bit})
			// Remove F so the next slot's set again holds only B + Cs.
			kt.Flush(forceVA)
		}
	})
	if err := w.Run(); err != nil {
		return nil, err
	}
	res.Accuracy = slotAccuracy(res.TxBits, res.RxBits)
	res.RawKbps = cfg.ClockHz / float64(period) / 1e3
	return res, nil
}
