package covert

import (
	"testing"
	"testing/quick"

	"coherentleak/internal/machine"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := DefaultParams()
	bad.C1 = 0
	if bad.Validate() == nil {
		t.Error("zero C1 accepted")
	}
	bad = DefaultParams()
	bad.C0 = bad.C1
	if bad.Validate() == nil {
		t.Error("C1 == C0 accepted")
	}
	bad = DefaultParams()
	bad.Ts = 0
	if bad.Validate() == nil {
		t.Error("zero Ts accepted")
	}
	bad = DefaultParams()
	bad.SyncPeriods = 1
	if bad.Validate() == nil {
		t.Error("tiny preamble accepted")
	}
	bad = DefaultParams()
	bad.EndRun = 1
	if bad.Validate() == nil {
		t.Error("EndRun 1 accepted")
	}
}

func TestThresholdBetweenCounts(t *testing.T) {
	p := DefaultParams()
	if th := p.Threshold(); th <= float64(p.C0) || th >= float64(p.C1) {
		t.Fatalf("threshold %v not strictly between C0=%d and C1=%d", th, p.C0, p.C1)
	}
}

func TestParamsForRateMonotone(t *testing.T) {
	cfg := machine.DefaultConfig()
	sc := Scenarios[0]
	prevTs := sim_CyclesMax
	for _, rate := range []float64{100, 300, 500, 700, 900} {
		p := ParamsForRate(cfg, sc, rate)
		if err := p.Validate(); err != nil {
			t.Fatalf("rate %v -> invalid params: %v", rate, err)
		}
		// Higher targets must not slow the sampling clock.
		if p.Ts > prevTs {
			t.Fatalf("Ts grew with rate: %d at %v", p.Ts, rate)
		}
		prevTs = p.Ts
		est := p.EstimateKbps(cfg, sc)
		if est < rate*0.8 || est > rate*1.2 {
			t.Errorf("rate %v: estimate %v off by >20%%", rate, est)
		}
	}
}

const sim_CyclesMax = ^uint64(0)

func TestBuildSchedule(t *testing.T) {
	p := DefaultParams()
	sc := Scenarios[0]
	bits := []byte{1, 0}
	s := buildSchedule(sc, p, bits)
	want := p.SyncPeriods + p.Cb + p.C1 + p.Cb + p.C0 + p.Cb
	if s.periods() != want {
		t.Fatalf("schedule periods = %d, want %d", s.periods(), want)
	}
	// Preamble is boundary placement.
	pl, live := s.at(0)
	if !live || pl != sc.Bound {
		t.Fatal("schedule does not start with boundary preamble")
	}
	// First communication run starts right after preamble+Cb.
	pl, _ = s.at(uint64(p.SyncPeriods + p.Cb))
	if pl != sc.Comm {
		t.Fatal("first bit's communication phase misplaced")
	}
	// Past the end: idle.
	if _, live := s.at(uint64(want)); live {
		t.Fatal("schedule live past its end")
	}
}

// Property: the schedule length matches the algebraic period count for
// any bit string.
func TestSchedulePeriodsProperty(t *testing.T) {
	p := DefaultParams()
	sc := Scenarios[3]
	f := func(raw []bool) bool {
		bits := make([]byte, len(raw))
		ones := 0
		for i, b := range raw {
			if b {
				bits[i] = 1
				ones++
			}
		}
		s := buildSchedule(sc, p, bits)
		want := p.SyncPeriods + (len(bits)+1)*p.Cb + ones*p.C1 + (len(bits)-ones)*p.C0
		return s.periods() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTranslateCleanRuns(t *testing.T) {
	p := DefaultParams() // C1=4, C0=1, Cb=2, threshold 2.5
	mk := func(classes ...Class) []Sample {
		out := make([]Sample, len(classes))
		for i, c := range classes {
			out[i] = Sample{Class: c}
		}
		return out
	}
	B, C, X := ClassBound, ClassComm, ClassOther
	// sync(3B) 1(4C) B B 0(1C) B B 1(4C) end
	samples := mk(B, B, B, C, C, C, C, B, B, C, B, B, C, C, C, C, X, X)
	bits := translate(samples, p)
	want := []byte{1, 0, 1}
	if len(bits) != len(want) {
		t.Fatalf("bits = %v, want %v", bits, want)
	}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bits = %v, want %v", bits, want)
		}
	}
}

func TestTranslateIgnoresIsolatedNoise(t *testing.T) {
	p := DefaultParams()
	B, C, X := ClassBound, ClassComm, ClassOther
	mk := func(classes ...Class) []Sample {
		out := make([]Sample, len(classes))
		for i, c := range classes {
			out[i] = Sample{Class: c}
		}
		return out
	}
	// A '1' run split by an isolated X must still decode as one '1'.
	samples := mk(B, B, C, C, X, C, C, B, B)
	bits := translate(samples, p)
	if len(bits) != 1 || bits[0] != 1 {
		t.Fatalf("bits = %v, want [1]", bits)
	}
}

func TestTranslateEmpty(t *testing.T) {
	if bits := translate(nil, DefaultParams()); len(bits) != 0 {
		t.Fatalf("translate(nil) = %v", bits)
	}
}

func TestChannelRejectsBadInput(t *testing.T) {
	ch := NewChannel(Scenarios[0])
	if _, err := ch.Run([]byte{0, 1, 2}); err == nil {
		t.Fatal("non-binary payload accepted")
	}
	bad := NewChannel(Scenario{Comm: LExcl, Bound: LExcl})
	if _, err := bad.Run([]byte{1}); err == nil {
		t.Fatal("degenerate scenario accepted")
	}
	p := DefaultParams()
	p.Ts = 0
	chBad := NewChannel(Scenarios[0])
	chBad.Params = p
	if _, err := chBad.Run([]byte{1}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestChannelSingleSocketRejectsRemote(t *testing.T) {
	ch := NewChannel(Scenarios[1]) // RExclc-RSharedb
	ch.Config.Sockets = 1
	if _, err := ch.Run([]byte{1, 0}); err == nil {
		t.Fatal("remote scenario on 1-socket machine accepted")
	}
}

// Every Table I scenario must transmit a 40-bit pattern perfectly at the
// default (reliable) operating point — the Figure 7 claim: "the spy is
// able to correctly decipher the transmitted bits for all 6 attack
// scenarios with 100% accuracy".
func TestAllScenariosPerfectAtDefaultRate(t *testing.T) {
	bits := PatternBitsForTest(0x5eed, 40)
	for _, sc := range Scenarios {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			ch := NewChannel(sc)
			res, err := ch.Run(bits)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Synced {
				t.Fatal("no sync")
			}
			if res.Accuracy != 1 {
				t.Fatalf("accuracy = %v (tx=%v rx=%v)", res.Accuracy, bits, res.RxBits)
			}
			if res.RawKbps < 100 {
				t.Errorf("raw rate = %v Kbps, implausibly low", res.RawKbps)
			}
		})
	}
}

// The explicit-sharing mode must work identically to KSM mode.
func TestExplicitSharingMode(t *testing.T) {
	ch := NewChannel(Scenarios[0])
	ch.Mode = ShareExplicit
	res, err := ch.Run([]byte{1, 1, 0, 1, 0, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != 1 {
		t.Fatalf("explicit mode accuracy = %v", res.Accuracy)
	}
}

func TestChannelDeterminism(t *testing.T) {
	run := func() *Result {
		ch := NewChannel(Scenarios[2])
		res, err := ch.Run([]byte{1, 0, 0, 1, 1, 0, 1, 0, 1, 1})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if a.Samples[i].Latency != b.Samples[i].Latency {
			t.Fatalf("latency stream diverged at %d", i)
		}
	}
	if a.Duration != b.Duration {
		t.Fatal("durations differ")
	}
}

func TestRunText(t *testing.T) {
	ch := NewChannel(Scenarios[0])
	res, got, err := ch.RunText("Hi")
	if err != nil {
		t.Fatal(err)
	}
	if got != "Hi" {
		t.Fatalf("decoded %q, want \"Hi\" (accuracy %v)", got, res.Accuracy)
	}
}

func TestTextBitsRoundTrip(t *testing.T) {
	f := func(s string) bool {
		return BitsToText(TextToBits(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitErrors(t *testing.T) {
	r := &Result{TxBits: []byte{1, 0, 1}, RxBits: []byte{1, 1, 1}}
	if r.BitErrors() != 1 {
		t.Fatalf("BitErrors = %d", r.BitErrors())
	}
	r = &Result{TxBits: []byte{1, 0}, RxBits: []byte{1, 0, 1}}
	if r.BitErrors() != 1 {
		t.Fatalf("length mismatch BitErrors = %d", r.BitErrors())
	}
}

// Sync handshake duration: the paper reports ~90 ms on average for the
// full trojan-spy synchronization (§VII-A). Our preamble-based handshake
// completes much faster (no OS scheduling delays in the simulator), but
// it must be nonzero and well under the paper's bound.
func TestSyncLatency(t *testing.T) {
	ch := NewChannel(Scenarios[0])
	res, err := ch.Run([]byte{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	secs := ch.Config.CyclesToSeconds(res.SyncCycles)
	if secs <= 0 || secs > 0.09 {
		t.Fatalf("sync = %v s, want (0, 0.09]", secs)
	}
}

// PatternBitsForTest mirrors experiments.PatternBits without the import
// cycle.
func PatternBitsForTest(seed uint64, n int) []byte {
	bits := make([]byte, n)
	x := seed
	for i := range bits {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		bits[i] = byte(x & 1)
	}
	return bits
}
