package covert

import (
	"testing"

	"coherentleak/internal/coherence"
	"coherentleak/internal/machine"
	"coherentleak/internal/sim"
)

var metadataTestBits = []byte{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 0, 1, 0, 1, 1, 0, 1}

func TestDirtyStateChannelDecodes(t *testing.T) {
	ch := DirtyStateChannel{Config: machine.DefaultConfig(), WorldSeed: 42}
	res, err := ch.Run(metadataTestBits)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != 1 {
		t.Fatalf("dirty-state accuracy = %v under MESIF, want 1 (rx=%v)", res.Accuracy, res.RxBits)
	}
	// The latency bands must straddle FlushBase vs FlushBase+FlushDirty.
	lat := machine.DefaultLatencies()
	for _, s := range res.Samples {
		if s.Bit == 1 && s.Latency < lat.FlushBase+lat.FlushDirty/2 {
			t.Fatalf("slot %d decoded 1 at %d cycles", s.Slot, s.Latency)
		}
	}
}

// TestDirtyStateChannelDeadWithoutDirtyState pins the survival result:
// a write-through no-allocate protocol has no Modified state, so every
// flush is clean and the channel carries nothing.
func TestDirtyStateChannelDeadWithoutDirtyState(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Protocol = coherence.WTNA
	ch := DirtyStateChannel{Config: cfg, WorldSeed: 42}
	res, err := ch.Run(metadataTestBits)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.RxBits {
		if b != 0 {
			t.Fatalf("WT-NA produced a dirty flush: rx=%v", res.RxBits)
		}
	}
}

// TestDirtyStateSurvivesAllPolicies: the dirty bit rides on the line
// itself, not on replacement metadata, so the channel is policy-blind.
func TestDirtyStateSurvivesAllPolicies(t *testing.T) {
	for _, pol := range []string{"", "tree-plru", "srrip", "brrip"} {
		cfg := machine.DefaultConfig()
		cfg.Replacement = pol
		res, err := DirtyStateChannel{Config: cfg, WorldSeed: 42}.Run(metadataTestBits)
		if err != nil {
			t.Fatalf("%q: %v", pol, err)
		}
		if res.Accuracy != 1 {
			t.Fatalf("policy %q: dirty-state accuracy = %v, want 1", pol, res.Accuracy)
		}
	}
}

func TestLRUStateChannelDecodesUnderRecencyPolicies(t *testing.T) {
	for _, pol := range []string{"", "LRU", "tree-plru"} {
		cfg := machine.DefaultConfig()
		cfg.Replacement = pol
		res, err := LRUStateChannel{Config: cfg, WorldSeed: 42}.Run(metadataTestBits)
		if err != nil {
			t.Fatalf("%q: %v", pol, err)
		}
		if res.Accuracy != 1 {
			t.Fatalf("policy %q: lru-state accuracy = %v, want 1 (rx=%v)", pol, res.Accuracy, res.RxBits)
		}
	}
}

// TestLRUStateChannelDegradesUnderRRIP pins the policy-survival shape:
// SRRIP collapses the primed set to one re-reference class (victim
// degenerates to a way scan) and BRRIP's distant insertion keeps the spy
// from staging the set at all, so single-touch control of the victim is
// gone and accuracy falls to around chance.
func TestLRUStateChannelDegradesUnderRRIP(t *testing.T) {
	for _, pol := range []string{"srrip", "brrip"} {
		cfg := machine.DefaultConfig()
		cfg.Replacement = pol
		res, err := LRUStateChannel{Config: cfg, WorldSeed: 42}.Run(metadataTestBits)
		if err != nil {
			t.Fatalf("%q: %v", pol, err)
		}
		if res.Accuracy > 0.8 {
			t.Fatalf("policy %q: lru-state accuracy = %v, expected degradation below 0.8", pol, res.Accuracy)
		}
	}
}

// TestLRUStateTrojanPreservesPresence is the channel's defining
// property: the trojan's only monitored-set access is a load of a line
// that is already resident in the LLC — an LLC hit that moves recency
// metadata but never changes which lines are present for the spy.
func TestLRUStateTrojanPreservesPresence(t *testing.T) {
	// Run the same world twice, all-zeros vs the real pattern: if the
	// trojan changed presence rather than recency, the all-zeros run
	// would decode differently from all-zero slots of the real run. More
	// direct: in the real run every decoded 1 must come from a fast
	// (LLC-band) reload, i.e. B was present, never freshly refilled.
	res, err := LRUStateChannel{Config: machine.DefaultConfig(), WorldSeed: 7}.Run(metadataTestBits)
	if err != nil {
		t.Fatal(err)
	}
	lat := machine.DefaultLatencies()
	llcBound := lat.MissBase + 2*lat.Ring + lat.LLCService + lat.ForwardLocal + sim.Cycles(lat.Jitter)
	for _, s := range res.Samples {
		if s.Bit == 1 && s.Latency > llcBound {
			t.Fatalf("slot %d: decoded 1 from a %d-cycle reload (beyond LLC band %d)", s.Slot, s.Latency, llcBound)
		}
	}
}

func TestLRUStateRequiresInclusiveLLC(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.InclusiveLLC = false
	if _, err := (LRUStateChannel{Config: cfg, WorldSeed: 1}.Run(metadataTestBits)); err == nil {
		t.Fatal("non-inclusive LLC accepted")
	}
}

// TestSlottedChannelsDeterministic: identical (config, seed, bits) runs
// must produce identical samples — the property the harness's cell cache
// and fleet byte-identity rest on.
func TestSlottedChannelsDeterministic(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Replacement = "tree-plru"
	run := func() []SlotSample {
		lr, err := LRUStateChannel{Config: cfg, WorldSeed: 99}.Run(metadataTestBits)
		if err != nil {
			t.Fatal(err)
		}
		dr, err := DirtyStateChannel{Config: cfg, WorldSeed: 99}.Run(metadataTestBits)
		if err != nil {
			t.Fatal(err)
		}
		return append(lr.Samples, dr.Samples...)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("sample counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
