package covert

import (
	"fmt"

	"coherentleak/internal/machine"
	"coherentleak/internal/sim"
	"coherentleak/internal/stats"
)

// probeAddr is the physical line the calibration micro-benchmark times.
// Calibration drives the machine directly (no OS layer): the §V
// micro-benchmark measures hardware, not processes.
const probeAddr = uint64(0x400000)

// MeasurePlacement runs the §V micro-benchmark: n timed loads from the
// observer core with the block placed in pl before each, returning the
// observed latencies in cycles. extra, when non-nil, is invoked once on
// the world before measurement (e.g. to attach background noise threads).
func MeasurePlacement(cfg machine.Config, seed uint64, pl Placement, n int, extra func(*sim.World, *machine.Machine)) ([]float64, error) {
	if pl.Loc == Remote && cfg.Sockets < 2 {
		return nil, fmt.Errorf("covert: remote placement needs 2 sockets")
	}
	return measure(cfg, seed, n, extra, func(th *sim.Thread, m *machine.Machine) {
		placeBlock(th, m, pl, probeAddr)
	})
}

// MeasureDRAM measures the spy's own miss-to-memory latency (the
// out-of-band class).
func MeasureDRAM(cfg machine.Config, seed uint64, n int, extra func(*sim.World, *machine.Machine)) ([]float64, error) {
	return measure(cfg, seed, n, extra, func(th *sim.Thread, m *machine.Machine) {})
}

// measure runs the common flush/place/timed-load loop on a fresh world.
func measure(cfg machine.Config, seed uint64, n int, extra func(*sim.World, *machine.Machine), place func(*sim.Thread, *machine.Machine)) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := sim.NewWorld(sim.Config{Seed: seed})
	m := machine.New(w, cfg)
	if extra != nil {
		extra(w, m)
	}
	out := make([]float64, 0, n)
	w.Spawn("probe", func(th *sim.Thread) {
		// Warm up the observer's TLB and the measurement loop before
		// timing anything, as the real micro-benchmark would.
		m.Load(th, 0, probeAddr)
		m.Flush(th, 0, probeAddr)
		th.Advance(4000)
		for i := 0; i < n; i++ {
			m.Flush(th, 0, probeAddr)
			place(th, m)
			// The micro-benchmark paces itself slowly: calibration is not
			// rate-constrained, so it sees the quiet (pressure-free) bands.
			th.Advance(4000)
			out = append(out, float64(m.Load(th, 0, probeAddr).Latency))
		}
	})
	if err := w.RunUntilDeadline(sim.NoDeadline, func() bool { return len(out) >= n }); err != nil {
		return nil, err
	}
	w.Drain()
	return out, nil
}

// placeBlock establishes placement pl for addr, from the observer's
// (core 0, socket 0) point of view. It issues the helper loads the
// trojan's worker threads would issue.
func placeBlock(th *sim.Thread, m *machine.Machine, pl Placement, addr uint64) {
	cores := placementCores(m.Config(), pl)
	for _, c := range cores {
		m.Load(th, c, addr)
	}
}

// placementCores returns the helper cores that realize a placement
// relative to an observer on core 0 (socket 0).
func placementCores(cfg machine.Config, pl Placement) []int {
	var first int
	if pl.Loc == Local {
		first = 1 // sibling of the observer
	} else {
		first = cfg.CoresPerSocket // first core of socket 1
	}
	if pl.St == StateShared {
		return []int{first, first + 1}
	}
	return []int{first}
}

// Calibrate measures all four placement bands plus the DRAM band on a
// quiet machine — the "self-measurements on cache hardware" both parties
// perform before communicating (§VII-B). The result is deterministic for
// a given (cfg, seed).
func Calibrate(cfg machine.Config, seed uint64, samplesPerBand int, margin float64) (Bands, error) {
	b := Bands{ByPlacement: make(map[Placement]stats.Band)}
	placements := AllPlacements
	if cfg.Sockets < 2 {
		placements = []Placement{LShared, LExcl}
	}
	for i, pl := range placements {
		xs, err := MeasurePlacement(cfg, seed+uint64(i)*101, pl, samplesPerBand, nil)
		if err != nil {
			return Bands{}, err
		}
		b.ByPlacement[pl] = stats.CalibrateBand(pl.String(), xs, margin)
	}
	xs, err := MeasureDRAM(cfg, seed+997, samplesPerBand, nil)
	if err != nil {
		return Bands{}, err
	}
	b.DRAM = stats.CalibrateBand("DRAM", xs, margin)
	return b, nil
}

// Distinct verifies that every pair of calibrated bands is disjoint —
// the feasibility condition §V establishes ("distinct bands of latency
// distributions ... sufficiently distinct from each other").
func (b Bands) Distinct() error {
	var all []stats.Band
	for _, band := range b.ByPlacement {
		all = append(all, band)
	}
	all = append(all, b.DRAM)
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[i].Overlaps(all[j]) {
				return fmt.Errorf("covert: bands %v and %v overlap", all[i], all[j])
			}
		}
	}
	return nil
}
