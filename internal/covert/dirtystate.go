// Dirty-state covert channel (Cui et al., "Abusing Cache Line Dirty
// States"): the trojan encodes a bit in whether the shared line is
// Modified (dirty) or clean (E/S) when the spy flushes it. A flush of a
// dirty line pays the write-back (FlushBase+FlushDirty); a clean line
// flushes in FlushBase. The channel never changes the spy's hit/miss
// outcomes — both symbols leave the line equally present — so any
// mitigation that only equalizes hit/miss timing leaves it intact. It
// dies only when the protocol has no dirty state at all (WT-NA).
package covert

import (
	"fmt"

	"coherentleak/internal/kernel"
	"coherentleak/internal/machine"
	"coherentleak/internal/sim"
)

// SlotSample is one externally-clocked slot's decoded measurement,
// shared by the slotted channels (dirtystate, lrustate).
type SlotSample struct {
	// Slot is the slot index (one transmitted bit per slot).
	Slot int
	// Latency is the spy's timed probe in cycles.
	Latency sim.Cycles
	// Bit is the decoded symbol.
	Bit byte
}

// SlotResult is a slotted channel run's outcome.
type SlotResult struct {
	TxBits  []byte
	RxBits  []byte
	Samples []SlotSample
	// Accuracy is the fraction of slots decoded correctly.
	Accuracy float64
	// RawKbps is the raw signalling rate (one bit per slot period).
	RawKbps float64
}

// slotAccuracy scores rx against tx position-by-position.
func slotAccuracy(tx, rx []byte) float64 {
	if len(tx) == 0 {
		return 0
	}
	match := 0
	for i := range tx {
		if i < len(rx) && tx[i] == rx[i] {
			match++
		}
	}
	return float64(match) / float64(len(tx))
}

// advanceTo parks a thread until the absolute cycle target.
func advanceTo(kt *kernel.Thread, target sim.Cycles) {
	if now := kt.Now(); target > now {
		kt.Advance(target - now)
	}
}

// DirtyStateChannel transmits through the shared line's dirty bit.
// Trojan and spy are externally clocked into fixed slots (they share a
// period and a start time, the usual covert-channel assumption), so no
// self-synchronization protocol is needed and every slot carries one bit.
type DirtyStateChannel struct {
	Config    machine.Config
	WorldSeed uint64
	// Period is the slot length in cycles; 0 selects the default.
	Period sim.Cycles
}

// DefaultDirtyStatePeriod leaves room in each slot for the trojan's
// encode access (a DRAM-serviced miss after the previous slot's flush)
// and the spy's timed flush.
const DefaultDirtyStatePeriod = sim.Cycles(4096)

// Run transmits bits and returns the decoded result.
func (c DirtyStateChannel) Run(bits []byte) (*SlotResult, error) {
	cfg := c.Config
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.CoresPerSocket < 2 {
		return nil, fmt.Errorf("covert: dirtystate needs >= 2 cores per socket")
	}
	period := c.Period
	if period == 0 {
		period = DefaultDirtyStatePeriod
	}
	w := sim.NewWorld(sim.Config{Seed: c.WorldSeed})
	m := machine.New(w, cfg)
	k := kernel.New(m, 0)
	trojanProc := k.NewProcess("trojan")
	spyProc := k.NewProcess("spy")
	// shm-style writable sharing: the trojan's stores dirty the very
	// frame the spy flushes, without a COW break privatizing it.
	vas, err := k.MapSharedWritable(trojanProc, spyProc)
	if err != nil {
		return nil, err
	}
	trojanVA, spyVA := vas[0], vas[1]

	lat := cfg.Latencies
	// A dirty flush costs FlushBase+FlushDirty, a clean one FlushBase;
	// split the bands at the midpoint (jitter is small against it).
	threshold := lat.FlushBase + lat.FlushDirty/2

	res := &SlotResult{TxBits: bits}

	k.Spawn(trojanProc, 1, "dirty-trojan", func(kt *kernel.Thread) {
		start := kt.Now()
		for i, b := range bits {
			advanceTo(kt, start+sim.Cycles(i)*period+period/4)
			if b == 1 {
				kt.Store(trojanVA) // line goes Modified
			} else {
				kt.Load(trojanVA) // line stays clean (E/S)
			}
		}
	})
	k.Spawn(spyProc, 0, "dirty-spy", func(kt *kernel.Thread) {
		start := kt.Now()
		for i := range bits {
			advanceTo(kt, start+sim.Cycles(i)*period+period*3/4)
			a := kt.Flush(spyVA)
			bit := byte(0)
			if a.Latency >= threshold {
				bit = 1
			}
			res.RxBits = append(res.RxBits, bit)
			res.Samples = append(res.Samples, SlotSample{Slot: i, Latency: a.Latency, Bit: bit})
		}
	})
	if err := w.Run(); err != nil {
		return nil, err
	}
	res.Accuracy = slotAccuracy(res.TxBits, res.RxBits)
	res.RawKbps = cfg.ClockHz / float64(period) / 1e3
	return res, nil
}
