// Package covert implements the paper's contribution: covert timing
// channels built from cache coherence states. A multi-threaded trojan
// places a shared read-only block in a chosen (cache location, coherence
// state) combination; a single-threaded spy times flush+reload accesses
// to the same block and decodes bits from which latency band each timed
// load falls into. The package provides the six binary channels of
// Table I, the 2-bit-symbol channel of §VIII-D, the synchronization
// handshake of §VII-A, and band calibration (§V / Figure 2).
package covert

import "fmt"

// Location is a cache location relative to the spy (Table I's convention:
// "'Remote' and 'Local' are with respect to the spy's location").
type Location uint8

const (
	// Local: the same socket as the spy.
	Local Location = iota
	// Remote: a different socket.
	Remote
)

func (l Location) String() string {
	if l == Local {
		return "L"
	}
	return "R"
}

// CState is the coherence state the trojan steers the block into.
type CState uint8

const (
	// StateExclusive: one trojan thread holds the block (E, possibly F/M
	// family — the census-of-one service path).
	StateExclusive CState = iota
	// StateShared: two trojan threads hold the block (S; LLC clean copy).
	StateShared
)

func (s CState) String() string {
	if s == StateExclusive {
		return "Excl"
	}
	return "Shared"
}

// Placement is a (location, coherence state) combination pair — the unit
// the channel modulates.
type Placement struct {
	Loc Location
	St  CState
}

// Threads returns how many trojan threads the placement needs.
func (p Placement) Threads() int {
	if p.St == StateShared {
		return 2
	}
	return 1
}

func (p Placement) String() string { return p.Loc.String() + p.St.String() }

// Canonical placements.
var (
	LExcl   = Placement{Local, StateExclusive}
	LShared = Placement{Local, StateShared}
	RExcl   = Placement{Remote, StateExclusive}
	RShared = Placement{Remote, StateShared}
)

// AllPlacements lists the four combination pairs in Figure 2 / §VIII-D
// order.
var AllPlacements = []Placement{LShared, LExcl, RShared, RExcl}

// Scenario is one Table I attack configuration: the placement used for
// bit communication (CSc) and the placement marking bit boundaries (CSb).
type Scenario struct {
	Comm  Placement
	Bound Placement
}

// Name renders the paper's notation, e.g. "RExclc-LSharedb".
func (s Scenario) Name() string {
	return fmt.Sprintf("%sc-%sb", s.Comm, s.Bound)
}

// Valid reports whether the scenario's two placements are distinguishable.
func (s Scenario) Valid() bool { return s.Comm != s.Bound }

// TrojanThreads returns the (local, remote) trojan thread counts of
// Table I — the union of what the two placements need on each socket.
func (s Scenario) TrojanThreads() (local, remote int) {
	need := func(p Placement) {
		n := p.Threads()
		if p.Loc == Local {
			if n > local {
				local = n
			}
		} else {
			if n > remote {
				remote = n
			}
		}
	}
	need(s.Comm)
	need(s.Bound)
	return local, remote
}

// Scenarios are the six attack configurations of Table I, in table order.
var Scenarios = []Scenario{
	{Comm: LExcl, Bound: LShared},
	{Comm: RExcl, Bound: RShared},
	{Comm: RExcl, Bound: LExcl},
	{Comm: RExcl, Bound: LShared},
	{Comm: RShared, Bound: LExcl},
	{Comm: RShared, Bound: LShared},
}

// ScenarioByName finds a scenario by its paper notation.
func ScenarioByName(name string) (Scenario, error) {
	for _, s := range Scenarios {
		if s.Name() == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("covert: unknown scenario %q (want one of %v)", name, ScenarioNames())
}

// ScenarioNames lists the six names in Table I order.
func ScenarioNames() []string {
	out := make([]string, len(Scenarios))
	for i, s := range Scenarios {
		out[i] = s.Name()
	}
	return out
}

// ScenarioRank pairs a scenario with its predicted robustness: the
// distance between its two band centers. Figure 8's accuracy ordering
// follows this separation (wider gap = higher usable rate), so an
// adversary picks the top-ranked scenario their placement allows.
type ScenarioRank struct {
	Scenario   Scenario
	Separation float64
}
