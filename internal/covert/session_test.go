package covert

import (
	"testing"

	"coherentleak/internal/kernel"
	"coherentleak/internal/machine"
)

func TestSessionKSMSetup(t *testing.T) {
	s, err := NewSession(machine.DefaultConfig(), 1, 0xabc, ShareKSM)
	if err != nil {
		t.Fatal(err)
	}
	if !s.TrojanProc.SharesFrameWith(s.TrojanVA, s.SpyProc, s.SpyVA) {
		t.Fatal("primary page not shared")
	}
	if !s.TrojanProc.SharesFrameWith(s.SpareTrojanVA, s.SpyProc, s.SpareSpyVA) {
		t.Fatal("spare page not shared")
	}
	if s.ExternallyShared() {
		t.Fatal("fresh session reports external sharing")
	}
	// The merged page is read-only COW on both sides.
	if s.TrojanProc.PTEOf(s.TrojanVA).Writable || s.SpyProc.PTEOf(s.SpyVA).Writable {
		t.Fatal("merged page left writable")
	}
}

func TestSessionExplicitSetup(t *testing.T) {
	s, err := NewSession(machine.DefaultConfig(), 1, 0, ShareExplicit)
	if err != nil {
		t.Fatal(err)
	}
	if !s.TrojanProc.SharesFrameWith(s.TrojanVA, s.SpyProc, s.SpyVA) {
		t.Fatal("explicit page not shared")
	}
	if s.SpareTrojanVA != 0 {
		t.Fatal("explicit mode should not create a spare page")
	}
	if s.SharedPA() == 0 {
		t.Fatal("zero physical address")
	}
}

func TestSessionCorePlacement(t *testing.T) {
	s, err := NewSession(machine.DefaultConfig(), 1, 0, ShareExplicit)
	if err != nil {
		t.Fatal(err)
	}
	if s.SpyCore != 0 {
		t.Fatal("spy not on core 0")
	}
	spySocket := s.Mach.Core(s.SpyCore).Socket
	for _, c := range s.LocalCores {
		if s.Mach.Core(c).Socket != spySocket {
			t.Errorf("local worker core %d not on spy socket", c)
		}
		if c == s.SpyCore {
			t.Error("worker shares the spy's core")
		}
	}
	for _, c := range s.RemoteCores {
		if s.Mach.Core(c).Socket == spySocket {
			t.Errorf("remote worker core %d on spy socket", c)
		}
	}
}

func TestSessionSupports(t *testing.T) {
	two, _ := NewSession(machine.DefaultConfig(), 1, 0, ShareExplicit)
	for _, sc := range Scenarios {
		if !two.Supports(sc) {
			t.Errorf("2-socket session rejects %s", sc.Name())
		}
	}
	cfg := machine.DefaultConfig()
	cfg.Sockets = 1
	one, err := NewSession(cfg, 1, 0, ShareExplicit)
	if err != nil {
		t.Fatal(err)
	}
	if !one.Supports(Scenarios[0]) {
		t.Error("1-socket session rejects the local scenario")
	}
	for _, sc := range Scenarios[1:] {
		if one.Supports(sc) {
			t.Errorf("1-socket session accepts %s", sc.Name())
		}
	}
}

func TestSessionSwitchToSpare(t *testing.T) {
	s, err := NewSession(machine.DefaultConfig(), 1, 0x123, ShareKSM)
	if err != nil {
		t.Fatal(err)
	}
	primary := s.SharedPA()
	if !s.SwitchToSpare() {
		t.Fatal("spare switch failed")
	}
	if s.SharedPA() == primary {
		t.Fatal("still using the primary page")
	}
	if s.SwitchToSpare() {
		t.Fatal("second spare switch should fail (spare consumed)")
	}
}

// An external process with the agreed bit pattern merges into the channel
// page; the session must detect it, and switching to the spare must fix
// it (§IV / §VII-A).
func TestExternalCollisionDetection(t *testing.T) {
	cfg := machine.DefaultConfig()
	s, err := NewSession(cfg, 1, 0x777, ShareKSM)
	if err != nil {
		t.Fatal(err)
	}
	// A bystander writes the same pattern (it guessed or coincided).
	bystander := s.Kern.NewProcess("bystander")
	va := bystander.MustMmap(1)
	pattern := make([]byte, kernel.PageSize)
	PagePattern(0x777, pattern)
	if err := bystander.WriteBytes(va, pattern); err != nil {
		t.Fatal(err)
	}
	if err := bystander.Madvise(va, 1); err != nil {
		t.Fatal(err)
	}
	s.Kern.KSM.Scan()
	if !s.ExternallyShared() {
		t.Fatal("external merge not detected")
	}
	if !s.SwitchToSpare() {
		t.Fatal("cannot switch to spare")
	}
	if s.ExternallyShared() {
		t.Fatal("spare page also externally shared")
	}
}

func TestSessionRejectsTinyMachines(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.CoresPerSocket = 2
	if _, err := NewSession(cfg, 1, 0, ShareExplicit); err == nil {
		t.Fatal("2-core socket accepted (spy + 2 local workers need 3)")
	}
}

func TestPagePatternDeterministic(t *testing.T) {
	a := make([]byte, kernel.PageSize)
	b := make([]byte, kernel.PageSize)
	PagePattern(42, a)
	PagePattern(42, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pattern not deterministic")
		}
	}
	PagePattern(43, b)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)/2 {
		t.Fatal("different seeds give similar patterns")
	}
}
