package covert

import (
	"fmt"

	"coherentleak/internal/machine"
	"coherentleak/internal/sim"
	"coherentleak/internal/stats"
)

// Channel is a configured covert timing channel between a trojan and a
// spy on one simulated machine. The zero value is not usable; populate
// Config/Scenario/Params (or use NewChannel for defaults).
type Channel struct {
	// Config is the machine to attack.
	Config machine.Config
	// Scenario selects the Table I configuration.
	Scenario Scenario
	// Params are the transmission knobs.
	Params Params
	// Mode selects KSM or explicit page sharing.
	Mode SharingMode
	// WorldSeed and PatternSeed pin the run's determinism.
	WorldSeed, PatternSeed uint64
	// Bands overrides calibration when non-nil (e.g. reuse across runs).
	Bands *Bands
	// PreRun, when non-nil, is invoked on the constructed session before
	// the trojan and spy start — the hook the noise workloads and the
	// defenses attach through.
	PreRun func(*Session)
	// MaxCycles bounds the run (0 = a generous default).
	MaxCycles sim.Cycles
}

// NewChannel returns a channel with the paper's testbed machine, default
// parameters and KSM sharing.
func NewChannel(sc Scenario) *Channel {
	return &Channel{
		Config:      machine.DefaultConfig(),
		Scenario:    sc,
		Params:      DefaultParams(),
		Mode:        ShareKSM,
		WorldSeed:   1,
		PatternSeed: 0xc0fe,
	}
}

// Result is the outcome of one transmission.
type Result struct {
	Scenario Scenario
	Params   Params

	// TxBits is what the trojan sent; RxBits what the spy decoded.
	TxBits, RxBits []byte
	// Samples is the spy's reception trace (for Figure 7-style plots).
	Samples []Sample

	// Accuracy is the paper's raw-bit accuracy (§VIII-B).
	Accuracy float64
	// Synced reports whether the spy locked on at all.
	Synced bool
	// SyncCycles is the synchronization handshake cost (§VII-A's ~90 ms).
	SyncCycles sim.Cycles
	// Duration is the reception window in cycles.
	Duration sim.Cycles
	// RawKbps is transmitted raw bits over the reception window.
	RawKbps float64
	// AttemptedKbps is the rate the parameters aimed for.
	AttemptedKbps float64
	// Bands is the calibration the spy used.
	Bands Bands
}

// BitErrors returns the number of mismatched positions (counting length
// differences).
func (r *Result) BitErrors() int {
	n := len(r.TxBits)
	if len(r.RxBits) > n {
		n = len(r.RxBits)
	}
	errs := 0
	for i := 0; i < n; i++ {
		var a, b byte = 2, 3
		if i < len(r.TxBits) {
			a = r.TxBits[i]
		}
		if i < len(r.RxBits) {
			b = r.RxBits[i]
		}
		if a != b {
			errs++
		}
	}
	return errs
}

// Run transmits bits (values 0/1) from the trojan to the spy and returns
// the reception outcome.
func (c *Channel) Run(bits []byte) (*Result, error) {
	if !c.Scenario.Valid() {
		return nil, fmt.Errorf("covert: scenario %v uses one placement for both roles", c.Scenario)
	}
	if err := c.Params.Validate(); err != nil {
		return nil, err
	}
	for i, b := range bits {
		if b > 1 {
			return nil, fmt.Errorf("covert: bit %d has non-binary value %d", i, b)
		}
	}

	sess, err := NewSession(c.Config, c.WorldSeed, c.PatternSeed, c.Mode)
	if err != nil {
		return nil, err
	}
	if !sess.Supports(c.Scenario) {
		return nil, fmt.Errorf("covert: machine cannot host scenario %s (no remote socket)", c.Scenario.Name())
	}

	bands := Bands{}
	if c.Bands != nil {
		bands = *c.Bands
	} else {
		bands, err = Calibrate(c.Config, c.WorldSeed+7777, 200, c.Params.BandMargin)
		if err != nil {
			return nil, err
		}
	}

	if c.PreRun != nil {
		c.PreRun(sess)
	}

	var evictionSet []uint64
	if c.Params.Probe == ProbeEviction {
		if c.Scenario.Comm.Loc != Local || c.Scenario.Bound.Loc != Local {
			return nil, fmt.Errorf("covert: eviction probing reaches only the spy's socket; scenario %s uses remote placements", c.Scenario.Name())
		}
		if !c.Config.InclusiveLLC {
			return nil, fmt.Errorf("covert: eviction probing needs an inclusive LLC to invalidate private copies")
		}
		evictionSet, err = sess.BuildSpyEvictionSet()
		if err != nil {
			return nil, err
		}
	}

	tr := newTrojan(sess, c.Scenario, c.Params, bits)
	sp := newSpy(sess, c.Scenario, c.Params, bands, evictionSet)

	limit := c.MaxCycles
	if limit == 0 {
		// Generous: 50x the expected transmission length.
		est := c.Params.EstimatePeriodCycles(c.Config, c.Scenario)
		limit = sim.Cycles(est*float64(tr.sched.periods())*50) + 50_000_000
	}
	err = sess.World.RunUntilDeadline(limit, func() bool { return sp.done })
	if err != nil {
		return nil, err
	}
	tr.stop()
	sess.World.Drain()

	res := &Result{
		Scenario:      c.Scenario,
		Params:        c.Params,
		TxBits:        append([]byte(nil), bits...),
		RxBits:        sp.Bits,
		Samples:       sp.Samples,
		Synced:        sp.Synced,
		SyncCycles:    sp.SyncCycles,
		Bands:         bands,
		AttemptedKbps: c.Params.EstimateKbps(c.Config, c.Scenario),
	}
	res.Accuracy = stats.Accuracy(res.TxBits, res.RxBits)
	if sp.EndCycle > sp.StartCycle {
		res.Duration = sp.EndCycle - sp.StartCycle
		res.RawKbps = stats.Kbps(len(bits), c.Config.CyclesToSeconds(res.Duration))
	}
	return res, nil
}

// RunText transmits a UTF-8 string MSB-first and returns the result plus
// the decoded text (best-effort: decoding truncates to whole bytes).
func (c *Channel) RunText(msg string) (*Result, string, error) {
	res, err := c.Run(TextToBits(msg))
	if err != nil {
		return nil, "", err
	}
	return res, BitsToText(res.RxBits), nil
}

// TextToBits expands a string to bits, MSB first.
func TextToBits(msg string) []byte {
	out := make([]byte, 0, 8*len(msg))
	for _, b := range []byte(msg) {
		for i := 7; i >= 0; i-- {
			out = append(out, (b>>uint(i))&1)
		}
	}
	return out
}

// BitsToText packs bits (MSB first) into a string, dropping a trailing
// partial byte.
func BitsToText(bits []byte) string {
	n := len(bits) / 8
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		var v byte
		for j := 0; j < 8; j++ {
			v = v<<1 | bits[i*8+j]&1
		}
		out[i] = v
	}
	return string(out)
}
