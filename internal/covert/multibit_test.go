package covert

import (
	"testing"

	"coherentleak/internal/machine"
)

func TestMultiBitParamsValidate(t *testing.T) {
	if err := DefaultMultiBitParams().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := DefaultMultiBitParams()
	bad.Cs = 0
	if bad.Validate() == nil {
		t.Error("zero Cs accepted")
	}
	bad = DefaultMultiBitParams()
	bad.EndRun = bad.Gap
	if bad.Validate() == nil {
		t.Error("EndRun == Gap accepted (gaps would end reception)")
	}
	bad = DefaultMultiBitParams()
	bad.SyncPeriods = bad.Cs
	if bad.Validate() == nil {
		t.Error("preamble not longer than a symbol accepted")
	}
}

func TestMultiBitRejectsOddPayload(t *testing.T) {
	ch := NewMultiBitChannel()
	if _, err := ch.Run([]byte{1, 0, 1}); err == nil {
		t.Fatal("odd payload accepted")
	}
}

func TestMultiBitRejectsSingleSocket(t *testing.T) {
	ch := NewMultiBitChannel()
	ch.Config.Sockets = 1
	if _, err := ch.Run([]byte{1, 0}); err == nil {
		t.Fatal("single socket accepted for the 4-band channel")
	}
}

// The Figure 11 example: the first 18 bits 100101000110011011 exercise
// all four symbol values.
func TestMultiBitFig11Pattern(t *testing.T) {
	bits := []byte{1, 0, 0, 1, 0, 1, 0, 0, 0, 1, 1, 0, 0, 1, 1, 0, 1, 1}
	ch := NewMultiBitChannel()
	res, err := ch.Run(bits)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Synced {
		t.Fatal("no sync")
	}
	if res.Accuracy != 1 {
		t.Fatalf("accuracy = %v (rx=%v)", res.Accuracy, res.RxBits)
	}
	// All four symbols must actually appear on the wire.
	seen := map[int]bool{}
	for _, s := range res.TxSymbols {
		seen[s] = true
	}
	if len(seen) != 4 {
		t.Fatalf("pattern covers %d symbols, want 4", len(seen))
	}
}

// §VIII-D's headline: the 2-bit channel beats the best binary channel's
// rate at the same (reliable) sampling interval.
func TestMultiBitFasterThanBinary(t *testing.T) {
	bits := PatternBitsForTest(77, 120)
	mb := NewMultiBitChannel()
	mres, err := mb.Run(bits)
	if err != nil {
		t.Fatal(err)
	}
	bin := NewChannel(Scenarios[0])
	bres, err := bin.Run(bits)
	if err != nil {
		t.Fatal(err)
	}
	if mres.Accuracy < 0.99 {
		t.Fatalf("multibit accuracy = %v", mres.Accuracy)
	}
	if mres.RawKbps <= bres.RawKbps {
		t.Fatalf("multibit %.0f Kbps not faster than binary %.0f Kbps",
			mres.RawKbps, bres.RawKbps)
	}
}

func TestMultiBitDeterminism(t *testing.T) {
	run := func() *MultiBitResult {
		ch := NewMultiBitChannel()
		res, err := ch.Run([]byte{1, 1, 0, 0, 1, 0, 0, 1})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Samples) != len(b.Samples) || a.Duration != b.Duration {
		t.Fatal("multibit runs diverged")
	}
}

func TestDecodeSymbolRuns(t *testing.T) {
	// preamble(3), gap, sym2(2), gap, sym0(1), gap
	trace := []int{3, 3, 3, -1, 2, 2, -1, 0, -1, -1}
	got := decodeSymbolRuns(trace)
	if len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Fatalf("decoded %v, want [2 0]", got)
	}
	// Majority vote within a run.
	trace = []int{3, 3, -1, 1, 2, 1, -1}
	got = decodeSymbolRuns(trace)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("vote decoded %v, want [1]", got)
	}
	if got := decodeSymbolRuns(nil); len(got) != 0 {
		t.Fatalf("empty trace decoded %v", got)
	}
}

func TestMultiBitParamsForRate(t *testing.T) {
	cfg := machine.DefaultConfig()
	for _, target := range []float64{400, 800, 1100} {
		p := MultiBitParamsForRate(cfg, target)
		if err := p.Validate(); err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		est := p.EstimateKbps(cfg)
		if est < target*0.75 || est > target*1.3 {
			t.Errorf("target %v: estimate %v", target, est)
		}
	}
}
