package covert

import (
	"coherentleak/internal/kernel"
	"coherentleak/internal/sim"
	"coherentleak/internal/stats"
)

// Class is the spy's classification of one timed load.
type Class uint8

const (
	// ClassComm: latency inside Tc, the communication band.
	ClassComm Class = iota
	// ClassBound: latency inside Tb, the boundary band.
	ClassBound
	// ClassOther: outside both bands (missed reload, noise, end of
	// transmission).
	ClassOther
)

func (c Class) String() string {
	switch c {
	case ClassComm:
		return "C"
	case ClassBound:
		return "B"
	default:
		return "X"
	}
}

// Sample is one timed load observed by the spy.
type Sample struct {
	// Cycle is the spy's clock after the load (rdtsc).
	Cycle sim.Cycles
	// Latency is the timed load's cost.
	Latency sim.Cycles
	// Class is the band classification.
	Class Class
}

// Bands is the spy's calibrated view of the latency structure
// (Tc and Tb of Algorithms 1-2, plus everything needed for multi-bit
// decoding and Figure 2).
type Bands struct {
	// ByPlacement maps each combination pair to its calibrated band.
	ByPlacement map[Placement]stats.Band
	// DRAM is the no-copy-anywhere band (the spy's own miss latency).
	DRAM stats.Band
}

// Classify buckets a latency by maximum likelihood: the nearest of the
// communication band center, the boundary band center, and the DRAM
// (missed-reload) center wins. With three known latency populations this
// is the optimal decision rule for the spy, and it makes misclassification
// probability fall with band separation — the §VIII-B observation that
// widely separated pairs (RExclc-LExclb, RExclc-LSharedb) stay accurate
// at rates where narrow pairs have already degraded.
func (b Bands) Classify(sc Scenario, lat sim.Cycles) Class {
	x := float64(lat)
	dist := func(c float64) float64 {
		d := x - c
		if d < 0 {
			return -d
		}
		return d
	}
	dc := dist(b.ByPlacement[sc.Comm].Center)
	db := dist(b.ByPlacement[sc.Bound].Center)
	dx := dist(b.DRAM.Center)
	switch {
	case dc <= db && dc <= dx:
		return ClassComm
	case db <= dx:
		return ClassBound
	default:
		return ClassOther
	}
}

// spy is the receive side: the single-threaded observer of Algorithm 2.
type spy struct {
	sess   *Session
	sc     Scenario
	params Params
	bands  Bands

	// evictionSet holds the conflict-set virtual addresses used instead
	// of clflush when params.Probe == ProbeEviction.
	evictionSet []uint64

	// Samples is the reception trace (Tvalues[] of Algorithm 2).
	Samples []Sample
	// Bits is the decoded payload.
	Bits []byte
	// Synced reports whether the polling phase saw the boundary band.
	Synced bool
	// SyncCycles is how long the polling phase took.
	SyncCycles sim.Cycles
	// StartCycle/EndCycle bracket the reception period.
	StartCycle, EndCycle sim.Cycles

	done bool
}

// newSpy spawns the spy thread; completion is observable via done.
func newSpy(sess *Session, sc Scenario, p Params, bands Bands, evictionSet []uint64) *spy {
	s := &spy{sess: sess, sc: sc, params: p, bands: bands, evictionSet: evictionSet}
	sess.Kern.Spawn(sess.SpyProc, sess.SpyCore, "spy", func(kt *kernel.Thread) {
		defer func() { s.done = true }()
		s.run(kt)
	})
	return s
}

// run executes Algorithm 2's three phases: poll for start, receive,
// translate.
func (s *spy) run(kt *kernel.Thread) {
	p := s.params
	syncStart := kt.Now()

	// Phase 1: poll for the start of transmission — flush, wait,
	// timed load, until a latency lands in the boundary band.
	var first Sample
	for polls := 0; ; polls++ {
		if polls > p.MaxPeriods || kt.StopRequested() {
			return // never synchronized
		}
		smp := s.measure(kt)
		if smp.Class == ClassBound {
			first = smp
			break
		}
	}
	s.Synced = true
	s.SyncCycles = kt.Now() - syncStart
	s.StartCycle = kt.Now()
	s.Samples = append(s.Samples, first)

	// Phase 2: reception — record until EndRun consecutive out-of-band
	// samples.
	outOfBand := 0
	for len(s.Samples) < p.MaxPeriods && !kt.StopRequested() {
		smp := s.measure(kt)
		s.Samples = append(s.Samples, smp)
		if smp.Class == ClassOther {
			outOfBand++
			if outOfBand >= p.EndRun {
				break
			}
		} else {
			outOfBand = 0
		}
	}
	s.EndCycle = kt.Now()

	// Phase 3: translation.
	s.Bits = translate(s.Samples, p)
}

// measure performs one invalidate + wait + timed load and classifies it.
// The invalidation is clflush or, in eviction mode, a traversal of B's
// LLC conflict set.
func (s *spy) measure(kt *kernel.Thread) Sample {
	if s.params.Probe == ProbeEviction {
		for _, va := range s.evictionSet {
			kt.Load(va)
		}
	} else {
		kt.Flush(s.sess.SpyVA)
	}
	kt.Advance(s.params.Ts)
	acc := kt.Load(s.sess.SpyVA)
	return Sample{
		Cycle:   kt.Now(),
		Latency: acc.Latency,
		Class:   s.bands.Classify(s.sc, acc.Latency),
	}
}

// translate converts the reception trace into bits: strip out-of-band
// samples (isolated noise must not split a run), then run-length decode
// alternating boundary/communication runs; each communication run longer
// than Thold is a '1', otherwise a '0' (Algorithm 2's count[] loop).
func translate(samples []Sample, p Params) []byte {
	var classes []Class
	for _, smp := range samples {
		if smp.Class != ClassOther {
			classes = append(classes, smp.Class)
		}
	}
	var bits []byte
	thold := p.Threshold()
	minRun := p.MinRun
	if minRun < 1 {
		minRun = 1
	}
	i := 0
	for {
		// Skip the boundary run (and the sync preamble on the first
		// iteration).
		for i < len(classes) && classes[i] == ClassBound {
			i++
		}
		if i >= len(classes) {
			break
		}
		run := 0
		for i < len(classes) && classes[i] == ClassComm {
			run++
			i++
		}
		if run < minRun {
			// Too short to be a deliberate placement: a stray
			// misclassified sample inside a boundary stretch.
			continue
		}
		if float64(run) > thold {
			bits = append(bits, 1)
		} else {
			bits = append(bits, 0)
		}
	}
	return bits
}
