package covert

import (
	"fmt"

	"coherentleak/internal/kernel"
	"coherentleak/internal/machine"
	"coherentleak/internal/sim"
	"coherentleak/internal/stats"
)

// SymbolMap is the §VIII-D encoding: each 2-bit value maps to one of the
// four (location, coherence state) combination pairs, so every
// transmitted symbol carries two bits.
var SymbolMap = [4]Placement{
	0: LShared, // 00
	1: LExcl,   // 01
	2: RShared, // 10
	3: RExcl,   // 11
}

// symbolOf returns the symbol index whose placement is pl.
func symbolOf(pl Placement) (int, bool) {
	for i, p := range SymbolMap {
		if p == pl {
			return i, true
		}
	}
	return 0, false
}

// MultiBitParams tune the 2-bit-symbol channel.
type MultiBitParams struct {
	// Cs is how many spy periods each symbol's placement is held.
	Cs int
	// Gap is how many idle periods separate symbols (the spy sees its
	// own miss-to-DRAM latency, delimiting symbol runs).
	Gap int
	// Ts is the spy sampling interval, as in the binary channel.
	Ts sim.Cycles
	// SyncPeriods is the preamble length (held in RExcl, the most
	// distinctive band).
	SyncPeriods int
	// EndRun ends reception after this many idle periods — it must
	// exceed Gap or the inter-symbol gaps terminate reception.
	EndRun int
	// BandMargin widens calibrated bands (reporting only; classification
	// is nearest-center).
	BandMargin float64
	// MaxPeriods bounds reception.
	MaxPeriods int
}

// DefaultMultiBitParams returns the reliable §VIII-D operating point.
func DefaultMultiBitParams() MultiBitParams {
	return MultiBitParams{
		Cs:          3,
		Gap:         2,
		Ts:          750,
		SyncPeriods: 20,
		EndRun:      8,
		BandMargin:  4,
		MaxPeriods:  2_000_000,
	}
}

// Validate checks the parameters.
func (p MultiBitParams) Validate() error {
	if p.Cs <= 0 || p.Gap <= 0 {
		return fmt.Errorf("covert: multibit Cs/Gap must be positive")
	}
	if p.EndRun <= p.Gap {
		return fmt.Errorf("covert: EndRun (%d) must exceed Gap (%d) or symbol gaps end reception", p.EndRun, p.Gap)
	}
	if p.Ts == 0 {
		return fmt.Errorf("covert: zero sampling interval")
	}
	if p.SyncPeriods <= p.Cs+1 {
		return fmt.Errorf("covert: preamble must be longer than a symbol run")
	}
	return nil
}

// PeriodsPerSymbol returns the period cost of one 2-bit symbol.
func (p MultiBitParams) PeriodsPerSymbol() float64 { return float64(p.Cs + p.Gap) }

// EstimateKbps predicts the raw bit rate of the 2-bit channel.
func (p MultiBitParams) EstimateKbps(cfg machine.Config) float64 {
	lat := cfg.Latencies
	// Average load latency across the four bands.
	var sum sim.Cycles
	for _, pl := range AllPlacements {
		sum += placementBaseLatency(cfg, pl)
	}
	period := float64(lat.FlushBase) + float64(p.Ts) + float64(sum)/4
	return cfg.ClockHz / (period * p.PeriodsPerSymbol() / 2) / 1e3
}

// MultiBitParamsForRate solves for Ts given a target bit rate.
func MultiBitParamsForRate(cfg machine.Config, targetKbps float64) MultiBitParams {
	p := DefaultMultiBitParams()
	if targetKbps <= 0 {
		return p
	}
	lat := cfg.Latencies
	var sum sim.Cycles
	for _, pl := range AllPlacements {
		sum += placementBaseLatency(cfg, pl)
	}
	overhead := float64(lat.FlushBase) + float64(sum)/4
	for _, st := range []struct{ cs, gap int }{{3, 2}, {2, 1}, {1, 1}} {
		p.Cs, p.Gap = st.cs, st.gap
		cyclesPerSymbol := cfg.ClockHz / (targetKbps * 1e3) * 2
		ts := cyclesPerSymbol/p.PeriodsPerSymbol() - overhead
		if ts >= 64 {
			p.Ts = sim.Cycles(ts)
			return p
		}
	}
	p.Ts = 64
	return p
}

// buildSymbolSchedule compiles the symbol stream: an RExcl preamble, then
// per symbol Cs periods of its placement followed by Gap idle periods.
// Idle periods are encoded as a nil placement (see symbolSchedule.at).
func buildSymbolSchedule(p MultiBitParams, symbols []int) symbolSchedule {
	var out []symbolSlot
	for i := 0; i < p.SyncPeriods; i++ {
		out = append(out, symbolSlot{pl: RExcl, active: true})
	}
	// Preamble/data separator.
	for i := 0; i < p.Gap; i++ {
		out = append(out, symbolSlot{})
	}
	for _, s := range symbols {
		for i := 0; i < p.Cs; i++ {
			out = append(out, symbolSlot{pl: SymbolMap[s&3], active: true})
		}
		for i := 0; i < p.Gap; i++ {
			out = append(out, symbolSlot{})
		}
	}
	return symbolSchedule{slots: out}
}

type symbolSlot struct {
	pl     Placement
	active bool
}

type symbolSchedule struct {
	slots []symbolSlot
}

func (s symbolSchedule) at(i uint64) (Placement, bool, bool) {
	if i >= uint64(len(s.slots)) {
		return Placement{}, false, false // past the end: idle forever
	}
	sl := s.slots[i]
	return sl.pl, sl.active, true
}

// MultiBitChannel is the §VIII-D 2-bit-symbol channel.
type MultiBitChannel struct {
	Config                 machine.Config
	Params                 MultiBitParams
	Mode                   SharingMode
	WorldSeed, PatternSeed uint64
	Bands                  *Bands
	PreRun                 func(*Session)
}

// NewMultiBitChannel returns the default-configured 2-bit channel.
func NewMultiBitChannel() *MultiBitChannel {
	return &MultiBitChannel{
		Config:      machine.DefaultConfig(),
		Params:      DefaultMultiBitParams(),
		Mode:        ShareKSM,
		WorldSeed:   1,
		PatternSeed: 0xc0fe,
	}
}

// MultiBitResult is the outcome of a 2-bit-symbol transmission.
type MultiBitResult struct {
	TxBits, RxBits []byte
	TxSymbols      []int
	RxSymbols      []int
	Samples        []Sample
	SymbolTrace    []int // classified symbol per sample, -1 = idle
	Accuracy       float64
	Duration       sim.Cycles
	RawKbps        float64
	Synced         bool
}

// Run transmits bits two per symbol. Odd-length inputs are rejected.
func (c *MultiBitChannel) Run(bits []byte) (*MultiBitResult, error) {
	if len(bits)%2 != 0 {
		return nil, fmt.Errorf("covert: multibit payload must have even length, got %d", len(bits))
	}
	if err := c.Params.Validate(); err != nil {
		return nil, err
	}
	if c.Config.Sockets < 2 {
		return nil, fmt.Errorf("covert: the 2-bit channel needs both sockets (4 bands)")
	}
	symbols := make([]int, len(bits)/2)
	for i := range symbols {
		symbols[i] = int(bits[2*i])<<1 | int(bits[2*i+1])
	}

	sess, err := NewSession(c.Config, c.WorldSeed, c.PatternSeed, c.Mode)
	if err != nil {
		return nil, err
	}
	var bands Bands
	if c.Bands != nil {
		bands = *c.Bands
	} else {
		bands, err = Calibrate(c.Config, c.WorldSeed+7777, 200, c.Params.BandMargin)
		if err != nil {
			return nil, err
		}
	}
	if c.PreRun != nil {
		c.PreRun(sess)
	}

	sched := buildSymbolSchedule(c.Params, symbols)
	tr := newMultiBitTrojan(sess, c.Params, sched)
	sp := newMultiBitSpy(sess, c.Params, bands)

	limit := sim.Cycles(float64(len(sched.slots)+c.Params.MaxPeriods/100)*3000) + 100_000_000
	if err := sess.World.RunUntilDeadline(limit, func() bool { return sp.done }); err != nil {
		return nil, err
	}
	tr.stop()
	sess.World.Drain()

	res := &MultiBitResult{
		TxBits:      append([]byte(nil), bits...),
		TxSymbols:   symbols,
		RxSymbols:   sp.Symbols,
		Samples:     sp.Samples,
		SymbolTrace: sp.Trace,
		Synced:      sp.Synced,
	}
	for _, s := range sp.Symbols {
		res.RxBits = append(res.RxBits, byte(s>>1)&1, byte(s)&1)
	}
	res.Accuracy = stats.Accuracy(res.TxBits, res.RxBits)
	if sp.EndCycle > sp.StartCycle {
		res.Duration = sp.EndCycle - sp.StartCycle
		res.RawKbps = stats.Kbps(len(bits), c.Config.CyclesToSeconds(res.Duration))
	}
	return res, nil
}

// multiBitTrojan reuses the binary trojan's worker mechanics with the
// symbol schedule; all four workers are always spawned.
type multiBitTrojan struct {
	sess      *Session
	sched     symbolSchedule
	baseEpoch uint64
	pollGap   sim.Cycles
	threads   []*kernel.Thread
	stopped   bool
}

func newMultiBitTrojan(sess *Session, p MultiBitParams, sched symbolSchedule) *multiBitTrojan {
	t := &multiBitTrojan{
		sess:      sess,
		sched:     sched,
		baseEpoch: sess.Mach.FlushEpoch(sess.SharedPA()),
		pollGap:   p.Ts / 3,
	}
	if t.pollGap < 24 {
		t.pollGap = 24
	}
	for _, loc := range []Location{Local, Remote} {
		for i := 0; i < 2; i++ {
			t.spawn(loc, i)
		}
	}
	return t
}

func (t *multiBitTrojan) spawn(loc Location, idx int) {
	core := t.sess.workerCores(loc)[idx]
	pa := t.sess.SharedPA()
	rng := t.sess.WorkerRand()
	th := t.sess.Kern.Spawn(t.sess.TrojanProc, core, workerName(loc, idx), func(kt *kernel.Thread) {
		for !kt.StopRequested() && !t.stopped {
			// An interruption may fire here; after waking the worker
			// immediately polls (the scheduler runs it for at least one
			// quantum), so bursts do not chain.
			t.sess.maybePreempt(kt, rng, t.pollGap)
			period := t.sess.Mach.FlushEpoch(pa) - t.baseEpoch
			pl, active, live := t.sched.at(period)
			if !live && period > uint64(len(t.sched.slots))+64 {
				return
			}
			if active && pl.Loc == loc && idx < pl.Threads() {
				kt.Load(t.sess.TrojanVA)
			}
			kt.Advance(t.pollGap)
		}
	})
	t.threads = append(t.threads, th)
}

func (t *multiBitTrojan) stop() {
	t.stopped = true
	for _, th := range t.threads {
		t.sess.World.StopThread(th.Sim)
	}
}

// multiBitSpy times loads and classifies them into one of the four
// placement bands (nearest center) or idle (nearest DRAM).
type multiBitSpy struct {
	sess   *Session
	params MultiBitParams
	bands  Bands

	Samples []Sample
	Trace   []int // symbol index per sample, -1 idle
	Symbols []int
	Synced  bool

	StartCycle, EndCycle sim.Cycles
	done                 bool
}

func newMultiBitSpy(sess *Session, p MultiBitParams, bands Bands) *multiBitSpy {
	s := &multiBitSpy{sess: sess, params: p, bands: bands}
	sess.Kern.Spawn(sess.SpyProc, sess.SpyCore, "spy", func(kt *kernel.Thread) {
		defer func() { s.done = true }()
		s.run(kt)
	})
	return s
}

// classify returns the nearest placement's symbol index, or -1 for idle.
func (s *multiBitSpy) classify(lat sim.Cycles) int {
	x := float64(lat)
	best, bestDist := -1, abs(x-s.bands.DRAM.Center)
	for i, pl := range SymbolMap {
		if d := abs(x - s.bands.ByPlacement[pl].Center); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func (s *multiBitSpy) run(kt *kernel.Thread) {
	p := s.params
	rexcl, _ := symbolOf(RExcl)

	// Poll for the RExcl preamble.
	for polls := 0; ; polls++ {
		if polls > p.MaxPeriods || kt.StopRequested() {
			return
		}
		lat := s.measure(kt)
		if s.classify(lat) == rexcl {
			break
		}
	}
	s.Synced = true
	s.StartCycle = kt.Now()

	// Reception.
	idle := 0
	preambleSeen := 1
	for len(s.Samples) < p.MaxPeriods && !kt.StopRequested() {
		lat := s.measure(kt)
		sym := s.classify(lat)
		s.Samples = append(s.Samples, Sample{Cycle: kt.Now(), Latency: lat})
		s.Trace = append(s.Trace, sym)
		if sym == -1 {
			idle++
			if idle >= p.EndRun {
				break
			}
		} else {
			idle = 0
		}
		_ = preambleSeen
	}
	s.EndCycle = kt.Now()

	// Translation: runs of equal symbols separated by idle gaps; the
	// first run is the preamble and is dropped.
	s.Symbols = decodeSymbolRuns(s.Trace)
}

func (s *multiBitSpy) measure(kt *kernel.Thread) sim.Cycles {
	kt.Flush(s.sess.SpyVA)
	kt.Advance(s.params.Ts)
	return kt.Load(s.sess.SpyVA).Latency
}

// decodeSymbolRuns converts the per-sample symbol trace into symbols: a
// maximal run of non-idle samples is one symbol (majority vote over the
// run), and the first run (the preamble) is discarded.
func decodeSymbolRuns(trace []int) []int {
	var runs []int
	i := 0
	for i < len(trace) {
		for i < len(trace) && trace[i] == -1 {
			i++
		}
		if i >= len(trace) {
			break
		}
		votes := map[int]int{}
		for i < len(trace) && trace[i] != -1 {
			votes[trace[i]]++
			i++
		}
		best, bestN := 0, -1
		for sym, n := range votes {
			if n > bestN || (n == bestN && sym < best) {
				best, bestN = sym, n
			}
		}
		runs = append(runs, best)
	}
	if len(runs) > 0 {
		runs = runs[1:] // drop the preamble run
	}
	return runs
}
