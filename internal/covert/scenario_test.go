package covert

import "testing"

func TestTableIScenarios(t *testing.T) {
	// Table I's six rows: names and trojan thread counts.
	want := []struct {
		name          string
		local, remote int
	}{
		{"LExclc-LSharedb", 2, 0},
		{"RExclc-RSharedb", 0, 2},
		{"RExclc-LExclb", 1, 1},
		{"RExclc-LSharedb", 2, 1},
		{"RSharedc-LExclb", 1, 2},
		{"RSharedc-LSharedb", 2, 2},
	}
	if len(Scenarios) != len(want) {
		t.Fatalf("scenario count = %d, want %d", len(Scenarios), len(want))
	}
	for i, w := range want {
		sc := Scenarios[i]
		if sc.Name() != w.name {
			t.Errorf("scenario %d = %s, want %s", i, sc.Name(), w.name)
		}
		l, r := sc.TrojanThreads()
		if l != w.local || r != w.remote {
			t.Errorf("%s: threads local=%d remote=%d, want %d/%d", w.name, l, r, w.local, w.remote)
		}
		total := l + r
		// Table I's totals: 2, 2, 2, 3, 3, 4.
		wantTotal := []int{2, 2, 2, 3, 3, 4}[i]
		if total != wantTotal {
			t.Errorf("%s: total threads = %d, want %d", w.name, total, wantTotal)
		}
		if !sc.Valid() {
			t.Errorf("%s reported invalid", w.name)
		}
	}
}

func TestPlacementThreads(t *testing.T) {
	if LExcl.Threads() != 1 || RExcl.Threads() != 1 {
		t.Error("exclusive placements need 1 thread")
	}
	if LShared.Threads() != 2 || RShared.Threads() != 2 {
		t.Error("shared placements need 2 threads")
	}
}

func TestPlacementStrings(t *testing.T) {
	cases := map[Placement]string{
		LExcl: "LExcl", LShared: "LShared", RExcl: "RExcl", RShared: "RShared",
	}
	for pl, want := range cases {
		if pl.String() != want {
			t.Errorf("%v != %s", pl, want)
		}
	}
}

func TestScenarioByName(t *testing.T) {
	for _, name := range ScenarioNames() {
		sc, err := ScenarioByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Name() != name {
			t.Fatalf("round trip failed for %s", name)
		}
	}
	if _, err := ScenarioByName("bogus"); err == nil {
		t.Fatal("bogus scenario accepted")
	}
}

func TestInvalidScenario(t *testing.T) {
	same := Scenario{Comm: LExcl, Bound: LExcl}
	if same.Valid() {
		t.Fatal("identical placements reported valid")
	}
}

func TestSymbolMapCoversAllPlacements(t *testing.T) {
	seen := map[Placement]bool{}
	for _, pl := range SymbolMap {
		seen[pl] = true
	}
	for _, pl := range AllPlacements {
		if !seen[pl] {
			t.Errorf("placement %v missing from symbol map", pl)
		}
	}
	for i, pl := range SymbolMap {
		got, ok := symbolOf(pl)
		if !ok || got != i {
			t.Errorf("symbolOf(%v) = %d,%v want %d", pl, got, ok, i)
		}
	}
}

// The rank order must match Figure 8's measured robustness: the two
// §VIII-B exceptions first, the narrow local pair last.
func TestRankScenariosMatchesFig8Ordering(t *testing.T) {
	ranks := RankScenarios(machineDefaultForTest())
	if len(ranks) != 6 {
		t.Fatalf("ranked %d scenarios", len(ranks))
	}
	if got := ranks[0].Scenario.Name(); got != "RExclc-LSharedb" {
		t.Errorf("best = %s, want RExclc-LSharedb", got)
	}
	if got := ranks[1].Scenario.Name(); got != "RExclc-LExclb" {
		t.Errorf("second = %s, want RExclc-LExclb", got)
	}
	if got := ranks[5].Scenario.Name(); got != "LExclc-LSharedb" {
		t.Errorf("worst = %s, want LExclc-LSharedb", got)
	}
	for i := 1; i < len(ranks); i++ {
		if ranks[i].Separation > ranks[i-1].Separation {
			t.Fatal("ranks not descending")
		}
	}
}
