package covert

import (
	"testing"

	"coherentleak/internal/coherence"
	"coherentleak/internal/machine"
)

// §VIII-E: the channel works unchanged over a snoop-bus protocol — the
// service paths (and so the bands) have the same structure.
func TestChannelOverSnoopBus(t *testing.T) {
	bits := PatternBitsForTest(21, 40)
	cfg := machine.DefaultConfig()
	cfg.SnoopBus = true
	for _, name := range []string{"LExclc-LSharedb", "RExclc-LSharedb"} {
		sc, err := ScenarioByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ch := NewChannel(sc)
		ch.Config = cfg
		res, err := ch.Run(bits)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accuracy != 1 {
			t.Errorf("%s over snoop bus: accuracy %v", name, res.Accuracy)
		}
	}
}

// §VIII-E: an exclusive LLC merges the E and S bands, killing
// E-vs-S scenarios...
func TestExclusiveLLCKillsESScenarios(t *testing.T) {
	bits := PatternBitsForTest(23, 40)
	cfg := machine.DefaultConfig()
	cfg.InclusiveLLC = false
	cfg.ExclusiveLLC = true
	sc, _ := ScenarioByName("LExclc-LSharedb")
	ch := NewChannel(sc)
	ch.Config = cfg
	res, err := ch.Run(bits)
	if err != nil {
		t.Fatal(err)
	}
	// Edit-distance garbage floor is ~0.7; anything at or below is dead.
	if res.Accuracy > 0.8 {
		t.Fatalf("E/S scenario survives an exclusive LLC: accuracy %v", res.Accuracy)
	}
}

// ...but location-based scenarios survive, which is why "changing the
// cache inclusion property alone may not be sufficient to eliminate the
// timing channels."
func TestExclusiveLLCLeavesLocationScenarios(t *testing.T) {
	bits := PatternBitsForTest(25, 40)
	cfg := machine.DefaultConfig()
	cfg.InclusiveLLC = false
	cfg.ExclusiveLLC = true
	sc, _ := ScenarioByName("RSharedc-LSharedb")
	ch := NewChannel(sc)
	ch.Config = cfg
	res, err := ch.Run(bits)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.95 {
		t.Fatalf("location scenario under exclusive LLC: accuracy %v", res.Accuracy)
	}
}

// Non-inclusive LLC: the paper argues the bands persist ("absence of
// S-state blocks in LLC should be rare"); in the model the downgrade
// write-back still lands in the LLC, so every scenario keeps working.
func TestChannelOverNonInclusiveLLC(t *testing.T) {
	bits := PatternBitsForTest(27, 40)
	cfg := machine.DefaultConfig()
	cfg.InclusiveLLC = false
	for _, sc := range Scenarios {
		sc := sc
		ch := NewChannel(sc)
		ch.Config = cfg
		res, err := ch.Run(bits)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accuracy != 1 {
			t.Errorf("%s over non-inclusive LLC: accuracy %v", sc.Name(), res.Accuracy)
		}
	}
}

// The channel works across all three protocol families (§VIII-E).
func TestChannelAcrossProtocols(t *testing.T) {
	bits := PatternBitsForTest(29, 40)
	for _, p := range []coherence.Protocol{coherence.MESI, coherence.MESIF, coherence.MOESI} {
		cfg := machine.DefaultConfig()
		cfg.Protocol = p
		ch := NewChannel(Scenarios[3]) // RExclc-LSharedb
		ch.Config = cfg
		res, err := ch.Run(bits)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accuracy != 1 {
			t.Errorf("protocol %s: accuracy %v", p, res.Accuracy)
		}
	}
}

// A hardware prefetcher does not break the channel: the probe line's
// neighbours never join the protocol.
func TestChannelWithPrefetcher(t *testing.T) {
	bits := PatternBitsForTest(43, 40)
	cfg := machine.DefaultConfig()
	cfg.NextLinePrefetch = true
	ch := NewChannel(Scenarios[0])
	ch.Config = cfg
	res, err := ch.Run(bits)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.95 {
		t.Fatalf("accuracy with prefetcher = %v", res.Accuracy)
	}
}
