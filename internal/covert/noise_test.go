package covert

import (
	"testing"

	"coherentleak/internal/machine"
)

// Preemption noise is deterministic under a fixed seed.
func TestPreemptionDeterministic(t *testing.T) {
	run := func() float64 {
		ch := NewChannel(Scenarios[0])
		ch.PreRun = func(s *Session) {
			s.OSNoiseProb = 0.3
			s.OSNoiseCycles = 1500
		}
		res, err := ch.Run(PatternBitsForTest(31, 60))
		if err != nil {
			t.Fatal(err)
		}
		return res.Accuracy
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("accuracies diverged: %v vs %v", a, b)
	}
}

// Heavier interruption rates must not improve accuracy.
func TestPreemptionMonotoneHarm(t *testing.T) {
	measure := func(prob float64) float64 {
		ch := NewChannel(Scenarios[0])
		ch.PreRun = func(s *Session) {
			s.OSNoiseProb = prob
			s.OSNoiseCycles = 1500
		}
		res, err := ch.Run(PatternBitsForTest(33, 120))
		if err != nil {
			t.Fatal(err)
		}
		return res.Accuracy
	}
	quiet := measure(0)
	heavy := measure(1.0)
	if quiet != 1 {
		t.Fatalf("quiet accuracy = %v", quiet)
	}
	if heavy >= quiet {
		t.Fatalf("heavy interruptions did not hurt: %v vs %v", heavy, quiet)
	}
}

// The MinRun filter must reject isolated misclassified samples without
// eating legitimate '0' runs.
func TestMinRunFilterBehaviour(t *testing.T) {
	p := DefaultParams()
	p.C1 = 6
	p.C0 = 3
	p.MinRun = 3
	B, C, X := ClassBound, ClassComm, ClassOther
	mk := func(classes ...Class) []Sample {
		out := make([]Sample, len(classes))
		for i, c := range classes {
			out[i] = Sample{Class: c}
		}
		return out
	}
	// boundary(3) spurious-C(2) boundary(2) zero(3C) boundary(3) one(6C)
	samples := mk(B, B, B, C, C, B, B, C, C, C, B, B, B, C, C, C, C, C, C, X, X)
	bits := translate(samples, p)
	want := []byte{0, 1}
	if len(bits) != len(want) || bits[0] != want[0] || bits[1] != want[1] {
		t.Fatalf("bits = %v, want %v (spurious run not filtered)", bits, want)
	}
}

func TestMinRunValidation(t *testing.T) {
	p := DefaultParams()
	p.MinRun = p.C0 + 1
	if p.Validate() == nil {
		t.Fatal("MinRun > C0 accepted (would drop every legitimate '0')")
	}
	p = DefaultParams()
	p.MinRun = 0
	if p.Validate() == nil {
		t.Fatal("MinRun 0 accepted")
	}
}

// A session constructs (and the channel still calibrates) under the
// mitigated hardware config — the defense changes latencies, not setup.
func TestSessionUnderMitigatedConfig(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Mitigations.EqualizeSocketLatency = true
	cfg.Mitigations.LLCNotifiedOfEToM = true
	if _, err := NewSession(cfg, 1, 0, ShareExplicit); err != nil {
		t.Fatal(err)
	}
	if _, err := Calibrate(cfg, 1, 50, 4); err != nil {
		t.Fatal(err)
	}
}
