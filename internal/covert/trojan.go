package covert

import (
	"coherentleak/internal/kernel"
	"coherentleak/internal/sim"
)

// schedule is the trojan's per-period plan: Placements[i] is where block
// B must sit during spy period i (period = interval between consecutive
// spy flushes). Periods past the end are idle — the trojan stops
// reloading and the spy's samples fall out of every band, terminating
// reception (Algorithm 2's N-consecutive rule).
type schedule struct {
	placements []Placement
}

// buildSchedule compiles Algorithm 1's loop for a bit string: a boundary
// preamble of SyncPeriods (the §VII-A synchronization), then for every
// bit Cb boundary periods followed by C1 or C0 communication periods.
func buildSchedule(sc Scenario, p Params, bits []byte) schedule {
	var out []Placement
	rep := func(pl Placement, n int) {
		for i := 0; i < n; i++ {
			out = append(out, pl)
		}
	}
	rep(sc.Bound, p.SyncPeriods)
	for _, b := range bits {
		rep(sc.Bound, p.Cb)
		if b != 0 {
			rep(sc.Comm, p.C1)
		} else {
			rep(sc.Comm, p.C0)
		}
	}
	// A closing boundary delimits the final bit before the idle tail.
	rep(sc.Bound, p.Cb)
	return schedule{placements: out}
}

// at returns the placement for period i and whether the schedule is still
// live (false = idle tail).
func (s schedule) at(i uint64) (Placement, bool) {
	if i >= uint64(len(s.placements)) {
		return Placement{}, false
	}
	return s.placements[i], true
}

// periods returns the scheduled period count.
func (s schedule) periods() int { return len(s.placements) }

// trojan drives the transmit side: worker threads pinned to the cores of
// Table I that keep reloading block B according to the schedule.
type trojan struct {
	sess  *Session
	sched schedule

	// epoch returns B's invalidation count; period index = epoch() -
	// baseEpoch. A real trojan derives the same counter from its own
	// reload misses (each spy period begins with exactly one flush or
	// whole-set eviction, which invalidates the trojan's copy); the
	// simulator exposes the per-line epoch as the idealized form of that
	// observation. Clflush probing counts flushes only; eviction probing
	// counts flushes plus inclusive-LLC back-invalidations.
	epoch     func() uint64
	baseEpoch uint64

	// pollGap is the worker polling interval. It bounds how stale a
	// worker's view of the current period can be; reloads later than the
	// spy's timed load are the channel's intrinsic drift noise.
	pollGap sim.Cycles

	threads []*kernel.Thread
	stopped bool
}

// newTrojan builds the transmitter for a scenario. Worker threads are
// spawned immediately and begin polling.
func newTrojan(sess *Session, sc Scenario, p Params, bits []byte) *trojan {
	pa := sess.SharedPA()
	epoch := func() uint64 { return sess.Mach.FlushEpoch(pa) }
	if p.Probe == ProbeEviction {
		epoch = func() uint64 { return sess.Mach.InvalidationEpoch(pa) }
	}
	tr := &trojan{
		sess:      sess,
		sched:     buildSchedule(sc, p, bits),
		epoch:     epoch,
		baseEpoch: epoch(),
		pollGap:   p.Ts / 3,
	}
	if tr.pollGap < 24 {
		tr.pollGap = 24
	}
	local, remote := sc.TrojanThreads()
	for i := 0; i < local; i++ {
		tr.spawnWorker(Local, i)
	}
	for i := 0; i < remote; i++ {
		tr.spawnWorker(Remote, i)
	}
	return tr
}

// spawnWorker starts one reloader pinned per Table I: workers on the
// spy's socket serve Local placements, workers on the other socket serve
// Remote placements; the second worker of a socket participates only in
// Shared placements (two sharers put the block in S).
func (t *trojan) spawnWorker(loc Location, idx int) {
	core := t.sess.workerCores(loc)[idx]
	rng := t.sess.WorkerRand()
	th := t.sess.Kern.Spawn(t.sess.TrojanProc, core, workerName(loc, idx), func(kt *kernel.Thread) {
		for !kt.StopRequested() && !t.stopped {
			// An interruption may fire here; after waking the worker
			// immediately polls (the scheduler runs it for at least one
			// quantum), so bursts do not chain.
			t.sess.maybePreempt(kt, rng, t.pollGap)
			period := t.epoch() - t.baseEpoch
			pl, live := t.sched.at(period)
			if !live {
				// Idle tail: stop touching B so the spy sees
				// out-of-band latencies and ends reception.
				if period > uint64(t.sched.periods())+64 {
					return
				}
				kt.Advance(t.pollGap)
				continue
			}
			if pl.Loc == loc && idx < pl.Threads() {
				kt.Load(t.sess.TrojanVA)
			}
			kt.Advance(t.pollGap)
		}
	})
	t.threads = append(t.threads, th)
}

func workerName(loc Location, idx int) string {
	if loc == Local {
		return "worker-local" + string(rune('0'+idx))
	}
	return "worker-remote" + string(rune('0'+idx))
}

// stop asks all workers to exit.
func (t *trojan) stop() {
	t.stopped = true
	for _, th := range t.threads {
		t.sess.World.StopThread(th.Sim)
	}
}
