package covert

import (
	"testing"

	"coherentleak/internal/machine"
)

func TestTrojanSpawnsTableIThreadCounts(t *testing.T) {
	for _, sc := range Scenarios {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			sess, err := NewSession(machine.DefaultConfig(), 1, 0, ShareExplicit)
			if err != nil {
				t.Fatal(err)
			}
			tr := newTrojan(sess, sc, DefaultParams(), []byte{1, 0})
			l, r := sc.TrojanThreads()
			if len(tr.threads) != l+r {
				t.Fatalf("spawned %d workers, Table I says %d", len(tr.threads), l+r)
			}
			tr.stop()
			sess.World.Drain()
		})
	}
}

func TestTrojanWorkerCorePinning(t *testing.T) {
	sess, err := NewSession(machine.DefaultConfig(), 1, 0, ShareExplicit)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenarios[5] // RSharedc-LSharedb: 2 local + 2 remote
	tr := newTrojan(sess, sc, DefaultParams(), []byte{1})
	spySocket := sess.Mach.Core(sess.SpyCore).Socket
	local, remote := 0, 0
	for _, th := range tr.threads {
		if th.CoreID == sess.SpyCore {
			t.Fatal("worker pinned to the spy's core")
		}
		if sess.Mach.Core(th.CoreID).Socket == spySocket {
			local++
		} else {
			remote++
		}
	}
	if local != 2 || remote != 2 {
		t.Fatalf("pinning: %d local, %d remote workers", local, remote)
	}
	tr.stop()
	sess.World.Drain()
}

func TestTrojanPollGapFloor(t *testing.T) {
	sess, err := NewSession(machine.DefaultConfig(), 1, 0, ShareExplicit)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Ts = 30 // Ts/3 = 10 < floor
	tr := newTrojan(sess, Scenarios[0], p, []byte{1})
	if tr.pollGap < 24 {
		t.Fatalf("pollGap = %d, below the floor", tr.pollGap)
	}
	tr.stop()
	sess.World.Drain()
}

// Workers exit on their own once the schedule's idle tail has clearly
// passed, without an explicit stop.
func TestTrojanWorkersExitAfterIdleTail(t *testing.T) {
	ch := NewChannel(Scenarios[0])
	res, err := ch.Run([]byte{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != 1 {
		t.Fatalf("accuracy %v", res.Accuracy)
	}
	// Run() calls tr.stop + Drain; reaching here without a deadlock or
	// cycle-limit error is the assertion.
}

func TestScheduleIdleTailStable(t *testing.T) {
	s := buildSchedule(Scenarios[0], DefaultParams(), []byte{1, 0, 1})
	n := uint64(s.periods())
	for _, i := range []uint64{n, n + 1, n + 1000, ^uint64(0)} {
		if _, live := s.at(i); live {
			t.Fatalf("schedule live at period %d (len %d)", i, n)
		}
	}
}
