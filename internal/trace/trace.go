// Package trace records the simulated machine's memory operations for
// offline analysis: a bounded ring of events with line/op/path filters, a
// TSV dump, and per-line probe statistics. The covertchan CLI uses it for
// its verbose mode, and it is the forensic view a defender's profiler
// would see — which, per the paper's introduction, is exactly what timing
// channels leave no trace in: the recorded operations are all ordinary
// loads and flushes.
package trace

import (
	"fmt"
	"io"
	"sort"

	"coherentleak/internal/machine"
)

// Filter selects which events a Recorder keeps. Zero values match
// everything.
type Filter struct {
	// Line restricts to one line address (0 = all).
	Line uint64
	// Core restricts to one core (-1 = all).
	Core int
	// Op restricts to "load", "store" or "flush" ("" = all).
	Op string
}

// NewFilter returns a match-all filter.
func NewFilter() Filter { return Filter{Core: -1} }

// Match reports whether ev passes the filter.
func (f Filter) Match(ev machine.AccessEvent) bool {
	if f.Line != 0 && ev.Line != f.Line {
		return false
	}
	if f.Core >= 0 && ev.Core != f.Core {
		return false
	}
	if f.Op != "" && ev.Op != f.Op {
		return false
	}
	return true
}

// Recorder is a bounded event ring attached to a machine.
type Recorder struct {
	mach   *machine.Machine
	filter Filter
	cap    int

	ring  []machine.AccessEvent
	next  int
	wrap  bool
	Total uint64 // events matched (including overwritten ones)
}

// Attach installs a recorder on m, keeping the most recent capacity
// matching events. It replaces any previous observer; Detach restores
// none (observers do not stack).
func Attach(m *machine.Machine, capacity int, filter Filter) *Recorder {
	if capacity <= 0 {
		capacity = 4096
	}
	r := &Recorder{
		mach:   m,
		filter: filter,
		cap:    capacity,
		ring:   make([]machine.AccessEvent, 0, capacity),
	}
	m.SetAccessObserver(r.observe)
	return r
}

// Detach stops recording.
func (r *Recorder) Detach() { r.mach.SetAccessObserver(nil) }

func (r *Recorder) observe(ev machine.AccessEvent) {
	if !r.filter.Match(ev) {
		return
	}
	r.Total++
	if len(r.ring) < r.cap {
		r.ring = append(r.ring, ev)
		return
	}
	r.ring[r.next] = ev
	r.next = (r.next + 1) % r.cap
	r.wrap = true
}

// Events returns the retained events in chronological order.
func (r *Recorder) Events() []machine.AccessEvent {
	if !r.wrap {
		out := make([]machine.AccessEvent, len(r.ring))
		copy(out, r.ring)
		return out
	}
	out := make([]machine.AccessEvent, 0, r.cap)
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Len returns the retained event count.
func (r *Recorder) Len() int { return len(r.ring) }

// WriteTSV dumps the retained events.
func (r *Recorder) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "cycle\tthread\tcore\tline\top\tpath\tlatency"); err != nil {
		return err
	}
	for _, ev := range r.Events() {
		if _, err := fmt.Fprintf(w, "%d\t%d\t%d\t%#x\t%s\t%s\t%d\n",
			ev.Cycle, ev.Thread, ev.Core, ev.Line, ev.Op, ev.Path, ev.Latency); err != nil {
			return err
		}
	}
	return nil
}

// LineStats summarizes probe activity on one line — the signal an OS
// monitor (the §VIII-E defense) thresholds on.
type LineStats struct {
	Line    uint64
	Loads   int
	Stores  int
	Flushes int
	// FlushLoadPairs counts loads that directly follow a flush of the
	// same line — the flush+reload signature.
	FlushLoadPairs int
}

// ByLine aggregates the retained events per line, sorted by descending
// flush+reload pairs (most suspicious first).
func (r *Recorder) ByLine() []LineStats {
	agg := make(map[uint64]*LineStats)
	lastWasFlush := make(map[uint64]bool)
	for _, ev := range r.Events() {
		st := agg[ev.Line]
		if st == nil {
			st = &LineStats{Line: ev.Line}
			agg[ev.Line] = st
		}
		switch ev.Op {
		case "load":
			st.Loads++
			if lastWasFlush[ev.Line] {
				st.FlushLoadPairs++
			}
			lastWasFlush[ev.Line] = false
		case "store":
			st.Stores++
			lastWasFlush[ev.Line] = false
		case "flush":
			st.Flushes++
			lastWasFlush[ev.Line] = true
		}
	}
	out := make([]LineStats, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FlushLoadPairs != out[j].FlushLoadPairs {
			return out[i].FlushLoadPairs > out[j].FlushLoadPairs
		}
		return out[i].Line < out[j].Line
	})
	return out
}
