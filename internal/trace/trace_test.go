package trace

import (
	"bytes"
	"strings"
	"testing"

	"coherentleak/internal/machine"
	"coherentleak/internal/sim"
)

func newMachine(t *testing.T) (*sim.World, *machine.Machine) {
	t.Helper()
	w := sim.NewWorld(sim.Config{Seed: 3})
	return w, machine.New(w, machine.DefaultConfig())
}

func drive(t *testing.T, w *sim.World, body func(th *sim.Thread)) {
	t.Helper()
	w.Spawn("driver", body)
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderCapturesOps(t *testing.T) {
	w, m := newMachine(t)
	r := Attach(m, 100, NewFilter())
	drive(t, w, func(th *sim.Thread) {
		m.Load(th, 0, 0x1000)
		m.Store(th, 0, 0x1000)
		m.Flush(th, 0, 0x1000)
	})
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Op != "load" || evs[1].Op != "store" || evs[2].Op != "flush" {
		t.Fatalf("ops = %v %v %v", evs[0].Op, evs[1].Op, evs[2].Op)
	}
	if evs[0].Path != machine.PathDRAM {
		t.Errorf("first load path = %v", evs[0].Path)
	}
	if evs[0].Latency == 0 || evs[0].Cycle == 0 {
		t.Error("latency/cycle missing")
	}
	if r.Total != 3 {
		t.Errorf("Total = %d", r.Total)
	}
}

func TestRecorderFilters(t *testing.T) {
	w, m := newMachine(t)
	f := NewFilter()
	f.Op = "flush"
	f.Line = 0x2000
	r := Attach(m, 100, f)
	drive(t, w, func(th *sim.Thread) {
		m.Load(th, 0, 0x2000)
		m.Flush(th, 0, 0x2000)
		m.Flush(th, 0, 0x3000) // different line: filtered
		m.Flush(th, 1, 0x2010) // same line (sub-line addr): kept
	})
	if r.Len() != 2 {
		t.Fatalf("filtered events = %d, want 2", r.Len())
	}
	for _, ev := range r.Events() {
		if ev.Op != "flush" || ev.Line != 0x2000 {
			t.Fatalf("filter leak: %+v", ev)
		}
	}
}

func TestRecorderRingWraps(t *testing.T) {
	w, m := newMachine(t)
	r := Attach(m, 4, NewFilter())
	drive(t, w, func(th *sim.Thread) {
		for i := uint64(0); i < 10; i++ {
			m.Load(th, 0, 0x1000+i*64)
		}
	})
	if r.Len() != 4 {
		t.Fatalf("retained = %d, want 4", r.Len())
	}
	if r.Total != 10 {
		t.Fatalf("Total = %d, want 10", r.Total)
	}
	evs := r.Events()
	// Chronological: last four loads, lines 0x1180..0x1240.
	for i := 1; i < len(evs); i++ {
		if evs[i].Cycle < evs[i-1].Cycle {
			t.Fatal("events not chronological after wrap")
		}
	}
	if evs[len(evs)-1].Line != 0x1000+9*64 {
		t.Fatalf("newest event line = %#x", evs[len(evs)-1].Line)
	}
}

func TestDetachStopsRecording(t *testing.T) {
	w, m := newMachine(t)
	r := Attach(m, 10, NewFilter())
	drive(t, w, func(th *sim.Thread) {
		m.Load(th, 0, 0x1000)
		r.Detach()
		m.Load(th, 0, 0x2000)
	})
	if r.Len() != 1 {
		t.Fatalf("events after detach = %d", r.Len())
	}
}

func TestWriteTSV(t *testing.T) {
	w, m := newMachine(t)
	r := Attach(m, 10, NewFilter())
	drive(t, w, func(th *sim.Thread) {
		m.Load(th, 0, 0x1000)
	})
	var buf bytes.Buffer
	if err := r.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "cycle\tthread") {
		t.Fatal("missing header")
	}
	if !strings.Contains(out, "load") || !strings.Contains(out, "0x1000") {
		t.Fatalf("row missing: %q", out)
	}
}

// The flush+reload signature: ByLine ranks the probed line first — the
// aggregation an OS monitor defense thresholds on.
func TestByLineFlushReloadSignature(t *testing.T) {
	w, m := newMachine(t)
	r := Attach(m, 1000, NewFilter())
	drive(t, w, func(th *sim.Thread) {
		// Innocent traffic on many lines.
		for i := uint64(0); i < 20; i++ {
			m.Load(th, 1, 0x40000+i*64)
		}
		// Probe pattern on one line.
		for i := 0; i < 10; i++ {
			m.Flush(th, 0, 0x9000)
			m.Load(th, 0, 0x9000)
		}
	})
	stats := r.ByLine()
	if len(stats) == 0 {
		t.Fatal("no line stats")
	}
	top := stats[0]
	if top.Line != 0x9000 {
		t.Fatalf("top suspicious line = %#x, want 0x9000", top.Line)
	}
	if top.FlushLoadPairs != 10 || top.Flushes != 10 {
		t.Fatalf("probe stats = %+v", top)
	}
	// Innocent lines have zero flush+reload pairs.
	for _, st := range stats[1:] {
		if st.FlushLoadPairs != 0 {
			t.Fatalf("innocent line %#x has %d pairs", st.Line, st.FlushLoadPairs)
		}
	}
}
