package sweep

import (
	"sort"
	"strconv"
	"strings"
)

// Entry is one ranked frontier member.
type Entry struct {
	// Point is the scored operating point.
	Point Point
	// Score is the objective's raw value (not direction-normalized).
	Score float64
	// JobID names the job that ran the point; informational only — it
	// is deliberately absent from the frontier TSV because job IDs vary
	// across daemons while the frontier must not.
	JobID string
}

// Frontier maintains the ranked top-K scored points. Ranking is fully
// deterministic: primary order is score in the objective's direction,
// ties break on the point's expansion index, so the frontier — and its
// TSV rendering — is byte-identical no matter what order points
// complete in. Not safe for concurrent use; the engine serializes
// access.
type Frontier struct {
	maximize bool
	topK     int // 0 = unbounded
	entries  []Entry
}

// NewFrontier returns an empty frontier ranking in the objective's
// direction, keeping at most topK entries (0 keeps everything).
func NewFrontier(maximize bool, topK int) *Frontier {
	return &Frontier{maximize: maximize, topK: topK}
}

// ranksBefore reports whether a outranks b.
func (f *Frontier) ranksBefore(a, b Entry) bool {
	if a.Score != b.Score {
		if f.maximize {
			return a.Score > b.Score
		}
		return a.Score < b.Score
	}
	return a.Point.Index < b.Point.Index
}

// Add inserts a scored point and reports whether the ranked set
// changed (i.e. the point made the cut).
func (f *Frontier) Add(e Entry) bool {
	i := sort.Search(len(f.entries), func(i int) bool {
		return f.ranksBefore(e, f.entries[i])
	})
	if f.topK > 0 && i >= f.topK {
		return false
	}
	f.entries = append(f.entries, Entry{})
	copy(f.entries[i+1:], f.entries[i:])
	f.entries[i] = e
	if f.topK > 0 && len(f.entries) > f.topK {
		f.entries = f.entries[:f.topK]
	}
	return true
}

// Entries returns the ranked entries, best first.
func (f *Frontier) Entries() []Entry {
	return append([]Entry(nil), f.entries...)
}

// Len reports the frontier size.
func (f *Frontier) Len() int { return len(f.entries) }

// FormatScore renders a score exactly as the frontier TSV does.
func FormatScore(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// TSV renders the frontier table: rank, point index, score, seed, then
// one column per axis in axis order. Only deterministic fields appear
// (no job IDs, no timings), so a fixed spec + seed yields byte-
// identical output across serial, parallel and fleet runs.
func (f *Frontier) TSV(axisNames []string) []byte {
	var b strings.Builder
	b.WriteString("rank\tpoint\tscore\tseed")
	for _, n := range axisNames {
		b.WriteByte('\t')
		b.WriteString(n)
	}
	b.WriteByte('\n')
	for rank, e := range f.entries {
		b.WriteString(strconv.Itoa(rank + 1))
		b.WriteByte('\t')
		b.WriteString(strconv.Itoa(e.Point.Index))
		b.WriteByte('\t')
		b.WriteString(FormatScore(e.Score))
		b.WriteByte('\t')
		b.WriteString(strconv.FormatUint(e.Point.Seed, 10))
		for _, p := range e.Point.Params {
			b.WriteByte('\t')
			b.WriteString(p.Display())
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}
