package sweep

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"coherentleak/internal/experiments"
)

// ObjectiveSpec selects and parameterizes the scoring function applied
// to each completed point. The built-in "tsv" kind reads a number out
// of one artifact's assembled table — covert capacity, error rate,
// mitigation accuracy and the like are all columns of the reproduced
// figures — but new kinds can be registered for derived scores.
type ObjectiveSpec struct {
	// Kind names a registered objective builder; empty means "tsv".
	Kind string `json:"kind,omitempty"`
	// Artifact is the registry artifact whose TSV is scored. Required
	// by the tsv objective; it must appear in the sweep's artifact list
	// (or the list must be empty, which runs everything).
	Artifact string `json:"artifact"`
	// Column is the TSV column the score reads.
	Column string `json:"column"`
	// Aggregate folds the filtered column into one number: max (the
	// default), min, mean, sum, first, last or count.
	Aggregate string `json:"aggregate,omitempty"`
	// Direction is "max" (default) or "min": which end of the score
	// scale ranks first in the frontier.
	Direction string `json:"direction,omitempty"`
	// Filter restricts scored rows to those whose named columns carry
	// exactly these values (e.g. {"noise": "8"}).
	Filter map[string]string `json:"filter,omitempty"`
}

func (o ObjectiveSpec) kind() string {
	if o.Kind == "" {
		return "tsv"
	}
	return o.Kind
}

func (o ObjectiveSpec) aggregate() string {
	if o.Aggregate == "" {
		return "max"
	}
	return o.Aggregate
}

// Maximize reports whether higher scores rank first.
func (o ObjectiveSpec) Maximize() bool { return o.Direction != "min" }

func (o ObjectiveSpec) validate() error {
	switch o.Direction {
	case "", "max", "min":
	default:
		return fmt.Errorf("sweep: objective direction %q (want \"max\" or \"min\")", o.Direction)
	}
	b, err := builderFor(o.kind())
	if err != nil {
		return err
	}
	_, err = b(o)
	return err
}

// Objective scores one completed point.
type Objective interface {
	// Describe is a one-line human summary for views and logs.
	Describe() string
	// Score computes the point's score from its results.
	Score(res PointResult) (float64, error)
}

// Builder constructs an Objective from its spec, validating it.
type Builder func(ObjectiveSpec) (Objective, error)

var (
	objMu       sync.Mutex
	objBuilders = map[string]Builder{}
)

// RegisterObjective adds an objective kind. Duplicate registration
// panics: kinds are static wiring, not runtime data.
func RegisterObjective(kind string, b Builder) {
	objMu.Lock()
	defer objMu.Unlock()
	if _, dup := objBuilders[kind]; dup {
		panic(fmt.Sprintf("sweep: duplicate objective kind %q", kind))
	}
	objBuilders[kind] = b
}

func builderFor(kind string) (Builder, error) {
	objMu.Lock()
	defer objMu.Unlock()
	b, ok := objBuilders[kind]
	if !ok {
		known := make([]string, 0, len(objBuilders))
		for k := range objBuilders {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("sweep: unknown objective kind %q (known: %s)", kind, strings.Join(known, ", "))
	}
	return b, nil
}

// BuildObjective resolves a spec into a ready objective.
func BuildObjective(spec ObjectiveSpec) (Objective, error) {
	b, err := builderFor(spec.kind())
	if err != nil {
		return nil, err
	}
	return b(spec)
}

func init() {
	RegisterObjective("tsv", newTSVObjective)
}

// tsvObjective extracts and aggregates one TSV column.
type tsvObjective struct {
	spec ObjectiveSpec
}

func newTSVObjective(spec ObjectiveSpec) (Objective, error) {
	if strings.TrimSpace(spec.Artifact) == "" {
		return nil, fmt.Errorf("sweep: tsv objective needs an artifact")
	}
	if strings.TrimSpace(spec.Column) == "" {
		return nil, fmt.Errorf("sweep: tsv objective needs a column")
	}
	if _, err := experiments.AggregateColumn([]float64{0}, spec.aggregate()); err != nil {
		return nil, err
	}
	return &tsvObjective{spec: spec}, nil
}

func (o *tsvObjective) Describe() string {
	dir := "maximize"
	if !o.spec.Maximize() {
		dir = "minimize"
	}
	desc := fmt.Sprintf("%s %s(%s.%s)", dir, o.spec.aggregate(), o.spec.Artifact, o.spec.Column)
	if len(o.spec.Filter) > 0 {
		keys := make([]string, 0, len(o.spec.Filter))
		for k := range o.spec.Filter {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k + "=" + o.spec.Filter[k]
		}
		desc += " where " + strings.Join(parts, ",")
	}
	return desc
}

func (o *tsvObjective) Score(res PointResult) (float64, error) {
	tsv, ok := res.TSV[o.spec.Artifact]
	if !ok {
		return 0, fmt.Errorf("sweep: point produced no %s table (requested artifacts must include the objective's)", o.spec.Artifact)
	}
	vals, err := experiments.TSVColumn(tsv, o.spec.Column, o.spec.Filter)
	if err != nil {
		return 0, err
	}
	score, err := experiments.AggregateColumn(vals, o.spec.aggregate())
	if err != nil {
		return 0, err
	}
	if score != score { // NaN never ranks
		return 0, fmt.Errorf("sweep: objective produced NaN")
	}
	return score, nil
}
