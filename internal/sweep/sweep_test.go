package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func rawValues(vals ...string) []json.RawMessage {
	out := make([]json.RawMessage, len(vals))
	for i, v := range vals {
		out[i] = json.RawMessage(v)
	}
	return out
}

func f64(v float64) *float64 { return &v }
func u64(v uint64) *uint64   { return &v }

// testSpec sweeps a latency knob and the seed with a tsv objective.
func testSpec() Spec {
	return Spec{
		Name:      "t",
		Artifacts: []string{"grid"},
		Sizing:    "quick",
		Axes: []Axis{
			{Param: "Latencies.QPI", Values: rawValues("40", "60")},
			{Param: "seed", Values: rawValues("1", "2", "3")},
		},
		Objective: ObjectiveSpec{Artifact: "grid", Column: "value", Aggregate: "max"},
	}
}

func TestGridExpansionDeterministic(t *testing.T) {
	spec := testSpec()
	pts, err := Expand(spec, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("points = %d, want 6", len(pts))
	}
	// First axis slowest, second fastest; seed axis overrides base seed.
	wantSeeds := []uint64{1, 2, 3, 1, 2, 3}
	for i, pt := range pts {
		if pt.Index != i {
			t.Fatalf("point %d has index %d", i, pt.Index)
		}
		if pt.Seed != wantSeeds[i] {
			t.Fatalf("point %d seed = %d, want %d", i, pt.Seed, wantSeeds[i])
		}
		wantQPI := "40"
		if i >= 3 {
			wantQPI = "60"
		}
		if want := fmt.Sprintf(`{"Latencies":{"QPI":%s}}`, wantQPI); string(pt.Config) != want {
			t.Fatalf("point %d config = %s, want %s", i, pt.Config, want)
		}
	}
	// A second expansion is identical.
	again, err := Expand(spec, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pts, again) {
		t.Fatal("expansion is not deterministic")
	}
}

func TestRangeAxisGrid(t *testing.T) {
	spec := Spec{
		Axes:      []Axis{{Param: "Latencies.Ring", Min: f64(10), Max: f64(20), Steps: 3, Ints: true}},
		Objective: ObjectiveSpec{Artifact: "a", Column: "c"},
	}
	pts, err := Expand(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, pt := range pts {
		got = append(got, pt.Params[0].Display())
	}
	if want := []string{"10", "15", "20"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("range axis values = %v, want %v", got, want)
	}
	if pts[0].Seed != 7 {
		t.Fatalf("default seed not applied: %d", pts[0].Seed)
	}
}

func TestSpecConfigMergesUnderAxes(t *testing.T) {
	spec := Spec{
		Config:    json.RawMessage(`{"Latencies":{"Ring":12},"Sockets":2}`),
		Axes:      []Axis{{Param: "Latencies.QPI", Values: rawValues("40")}},
		Objective: ObjectiveSpec{Artifact: "a", Column: "c"},
	}
	pts, err := Expand(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Sockets   int
		Latencies struct{ Ring, QPI float64 }
	}
	if err := json.Unmarshal(pts[0].Config, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Sockets != 2 || doc.Latencies.Ring != 12 || doc.Latencies.QPI != 40 {
		t.Fatalf("merged config = %s", pts[0].Config)
	}

	// Axis path through a non-object spec override is rejected.
	bad := spec
	bad.Config = json.RawMessage(`{"Latencies":3}`)
	if _, err := Expand(bad, 0); err == nil {
		t.Fatal("conflicting axis path accepted")
	}
}

func TestBudgetEnforced(t *testing.T) {
	spec := Spec{
		MaxPoints: 4,
		Axes: []Axis{
			{Param: "Latencies.QPI", Values: rawValues("1", "2", "3")},
			{Param: "seed", Values: rawValues("1", "2")},
		},
		Objective: ObjectiveSpec{Artifact: "a", Column: "c"},
	}
	if _, err := Expand(spec, 0); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("6-point grid with budget 4 expanded: %v", err)
	}
	spec.Strategy = StrategyRandom
	spec.Samples = 5
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("5 samples with budget 4 accepted: %v", err)
	}
}

func TestRandomSamplingDeterministic(t *testing.T) {
	spec := Spec{
		Strategy:   StrategyRandom,
		Samples:    16,
		SampleSeed: 42,
		Axes: []Axis{
			{Param: "Latencies.QPI", Min: f64(30), Max: f64(90), Ints: true},
			{Param: "Protocol", Values: rawValues(`"MESI"`, `"MESIF"`, `"MOESI"`)},
		},
		Objective: ObjectiveSpec{Artifact: "a", Column: "c"},
	}
	a, err := Expand(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Expand(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("random expansion is not deterministic for a fixed sample seed")
	}
	// Values actually vary and respect the range.
	distinct := map[string]bool{}
	for _, pt := range a {
		var qpi float64
		var doc struct{ Latencies struct{ QPI float64 } }
		if err := json.Unmarshal(pt.Config, &doc); err != nil {
			t.Fatal(err)
		}
		qpi = doc.Latencies.QPI
		if qpi < 30 || qpi > 90 {
			t.Fatalf("sampled QPI %v outside [30, 90]", qpi)
		}
		distinct[string(pt.Config)] = true
	}
	if len(distinct) < 2 {
		t.Fatal("random sampling produced a single distinct point")
	}
	// SampleSeed 0 derives from the experiment seed: still deterministic,
	// but different seeds sample differently.
	spec.SampleSeed = 0
	c1, _ := Expand(spec, 5)
	c2, _ := Expand(spec, 5)
	d, _ := Expand(spec, 6)
	if !reflect.DeepEqual(c1, c2) {
		t.Fatal("derived sample seed is not deterministic")
	}
	if reflect.DeepEqual(c1, d) {
		t.Fatal("different experiment seeds produced identical samples")
	}
}

func TestSpecValidation(t *testing.T) {
	for name, mutate := range map[string]func(*Spec){
		"no axes":          func(s *Spec) { s.Axes = nil },
		"dup axis":         func(s *Spec) { s.Axes = append(s.Axes, s.Axes[0]) },
		"empty param":      func(s *Spec) { s.Axes[0].Param = " " },
		"no values":        func(s *Spec) { s.Axes[0].Values = nil },
		"bad strategy":     func(s *Spec) { s.Strategy = "genetic" },
		"bad seed value":   func(s *Spec) { s.Axes[1].Values = rawValues(`"x"`) },
		"neg topk":         func(s *Spec) { s.TopK = -1 },
		"bad direction":    func(s *Spec) { s.Objective.Direction = "sideways" },
		"no obj artifact":  func(s *Spec) { s.Objective.Artifact = "" },
		"no obj column":    func(s *Spec) { s.Objective.Column = "" },
		"bad aggregate":    func(s *Spec) { s.Objective.Aggregate = "median" },
		"bad obj kind":     func(s *Spec) { s.Objective.Kind = "nope" },
		"invalid config":   func(s *Spec) { s.Config = json.RawMessage("{") },
		"random no count":  func(s *Spec) { s.Strategy = StrategyRandom },
		"max < min range":  func(s *Spec) { s.Axes[0] = Axis{Param: "X", Min: f64(2), Max: f64(1)} },
		"range w/o steps ": func(s *Spec) { s.Axes[0] = Axis{Param: "X", Min: f64(1), Max: f64(2)} },
	} {
		spec := testSpec()
		mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: validation passed", name)
		}
	}
	good := testSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// gridRunner fabricates deterministic results: value = seed*100 + QPI.
func gridRunner(t *testing.T, delayByIndex func(i int) time.Duration) PointRunner {
	return RunnerFunc(func(ctx context.Context, pt Point) (PointResult, error) {
		if delayByIndex != nil {
			time.Sleep(delayByIndex(pt.Index))
		}
		var doc struct{ Latencies struct{ QPI float64 } }
		if len(pt.Config) > 0 {
			if err := json.Unmarshal(pt.Config, &doc); err != nil {
				t.Error(err)
			}
		}
		v := float64(pt.Seed)*100 + doc.Latencies.QPI
		tsv := fmt.Sprintf("cell\tvalue\nc0\t%g\n", v)
		return PointResult{
			JobID: fmt.Sprintf("job-%d", pt.Index),
			TSV:   map[string][]byte{"grid": []byte(tsv)},
			Cells: CellCounts{Total: 1, Executed: 1},
		}, nil
	})
}

func TestRunRanksFrontierDeterministically(t *testing.T) {
	spec := testSpec()
	spec.TopK = 3

	run := func(delay func(int) time.Duration, inFlight int) []byte {
		rep, err := Run(context.Background(), spec, Options{
			Runner:   gridRunner(t, delay),
			InFlight: inFlight,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Completed != 6 || rep.Failed != 0 {
			t.Fatalf("report = %+v", rep)
		}
		return rep.FrontierTSV()
	}

	// Serial, parallel, and parallel with adversarial per-point delays
	// (reverse completion order) must render identical frontiers.
	base := run(nil, 1)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 3; trial++ {
		delays := make([]time.Duration, 6)
		for i := range delays {
			delays[i] = time.Duration(rng.Intn(12)) * time.Millisecond
		}
		got := run(func(i int) time.Duration { return delays[i] }, 6)
		if string(got) != string(base) {
			t.Fatalf("frontier differs across completion orders:\n got: %q\nwant: %q", got, base)
		}
	}

	// The ranking itself: max over value column -> seed 3 / QPI 60 first.
	lines := strings.Split(strings.TrimSpace(string(base)), "\n")
	if lines[0] != "rank\tpoint\tscore\tseed\tLatencies.QPI\tseed" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 1+3 {
		t.Fatalf("topK=3 frontier has %d rows", len(lines)-1)
	}
	if !strings.HasPrefix(lines[1], "1\t5\t360\t3\t60\t3") {
		t.Fatalf("top row = %q", lines[1])
	}
}

func TestFrontierTieBreaksOnPointIndex(t *testing.T) {
	f := NewFrontier(true, 0)
	f.Add(Entry{Point: Point{Index: 4}, Score: 1})
	f.Add(Entry{Point: Point{Index: 2}, Score: 1})
	f.Add(Entry{Point: Point{Index: 3}, Score: 2})
	got := f.Entries()
	if got[0].Point.Index != 3 || got[1].Point.Index != 2 || got[2].Point.Index != 4 {
		t.Fatalf("order = %v", got)
	}
	// Minimizing frontier flips the score order, keeps the tie-break.
	fm := NewFrontier(false, 2)
	fm.Add(Entry{Point: Point{Index: 9}, Score: 5})
	fm.Add(Entry{Point: Point{Index: 1}, Score: 7})
	if changed := fm.Add(Entry{Point: Point{Index: 0}, Score: 6}); !changed {
		t.Fatal("mid insert reported unchanged")
	}
	if changed := fm.Add(Entry{Point: Point{Index: 8}, Score: 9}); changed {
		t.Fatal("below-cut insert reported changed")
	}
	got = fm.Entries()
	if len(got) != 2 || got[0].Score != 5 || got[1].Score != 6 {
		t.Fatalf("min frontier = %v", got)
	}
}

// TestBackoffOnAdmissionControl pins the 429 satellite: the engine
// sleeps the computed Retry-After and resubmits rather than failing
// the point, and gives up after MaxRetries.
func TestBackoffOnAdmissionControl(t *testing.T) {
	spec := Spec{
		Axes:      []Axis{{Param: "seed", Values: rawValues("1")}},
		Objective: ObjectiveSpec{Artifact: "grid", Column: "value"},
	}
	var calls atomic.Int64
	runner := RunnerFunc(func(ctx context.Context, pt Point) (PointResult, error) {
		if calls.Add(1) <= 2 {
			return PointResult{}, &RetryError{After: 1500 * time.Millisecond, Err: errors.New("queue full")}
		}
		return PointResult{TSV: map[string][]byte{"grid": []byte("cell\tvalue\nc\t1\n")}, Cells: CellCounts{Total: 1, Executed: 1}}, nil
	})
	var slept []time.Duration
	var backoffEvents int
	rep, err := Run(context.Background(), spec, Options{
		Runner: runner,
		Observe: func(ev Event) {
			if ev.Type == EventBackoff {
				backoffEvents++
				if ev.Point.RetryAfter != 1500*time.Millisecond {
					t.Errorf("backoff event wait = %v", ev.Point.RetryAfter)
				}
			}
		},
	}.WithSleep(func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 1 || rep.Failed != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Retries != 2 || backoffEvents != 2 {
		t.Fatalf("retries = %d, backoff events = %d, want 2 and 2", rep.Retries, backoffEvents)
	}
	if len(slept) != 2 || slept[0] != 1500*time.Millisecond || slept[1] != 1500*time.Millisecond {
		t.Fatalf("slept = %v, want two 1.5s waits", slept)
	}
	if rep.Points[0].Retries != 2 || !rep.Points[0].Scored {
		t.Fatalf("point report = %+v", rep.Points[0])
	}

	// Unbounded rejection exhausts MaxRetries and fails the point.
	calls.Store(0)
	always := RunnerFunc(func(ctx context.Context, pt Point) (PointResult, error) {
		return PointResult{}, &RetryError{After: time.Second, Err: errors.New("queue full")}
	})
	rep, err = Run(context.Background(), spec, Options{Runner: always, MaxRetries: 3}.
		WithSleep(func(ctx context.Context, d time.Duration) error { return nil }))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 || rep.Points[0].Err == nil {
		t.Fatalf("report = %+v", rep)
	}
	if !strings.Contains(rep.Points[0].Err.Error(), "admission control") {
		t.Fatalf("err = %v", rep.Points[0].Err)
	}
}

func TestRunPointFailureDoesNotAbortSweep(t *testing.T) {
	spec := Spec{
		Axes:      []Axis{{Param: "seed", Values: rawValues("1", "2", "3")}},
		Objective: ObjectiveSpec{Artifact: "grid", Column: "value"},
	}
	runner := RunnerFunc(func(ctx context.Context, pt Point) (PointResult, error) {
		if pt.Seed == 2 {
			return PointResult{}, errors.New("boom")
		}
		tsv := fmt.Sprintf("cell\tvalue\nc\t%d\n", pt.Seed)
		return PointResult{TSV: map[string][]byte{"grid": []byte(tsv)}}, nil
	})
	rep, err := Run(context.Background(), spec, Options{Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 2 || rep.Failed != 1 {
		t.Fatalf("report: completed %d failed %d", rep.Completed, rep.Failed)
	}
	if rep.Frontier.Len() != 2 {
		t.Fatalf("frontier len = %d", rep.Frontier.Len())
	}
}

func TestRunCancellation(t *testing.T) {
	spec := Spec{
		Axes:      []Axis{{Param: "seed", Values: rawValues("1", "2", "3", "4", "5", "6", "7", "8")}},
		Objective: ObjectiveSpec{Artifact: "grid", Column: "value"},
	}
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	runner := RunnerFunc(func(ctx context.Context, pt Point) (PointResult, error) {
		if ran.Add(1) == 2 {
			cancel()
		}
		select {
		case <-ctx.Done():
			return PointResult{}, ctx.Err()
		default:
		}
		return PointResult{TSV: map[string][]byte{"grid": []byte("cell\tvalue\nc\t1\n")}}, nil
	})
	rep, err := Run(ctx, spec, Options{Runner: runner, InFlight: 1})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if rep == nil || rep.Completed+rep.Failed != 8 {
		t.Fatalf("partial report = %+v", rep)
	}
}

func TestObjectiveDescribe(t *testing.T) {
	obj, err := BuildObjective(ObjectiveSpec{
		Artifact: "capacity", Column: "info_kbps",
		Direction: "max", Filter: map[string]string{"noise": "8"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := obj.Describe(); got != "maximize max(capacity.info_kbps) where noise=8" {
		t.Fatalf("describe = %q", got)
	}
	// Scoring a result without the artifact is an error, not a zero.
	if _, err := obj.Score(PointResult{TSV: map[string][]byte{}}); err == nil {
		t.Fatal("missing artifact scored")
	}
}

func TestSeedAxisDefaultBase(t *testing.T) {
	spec := Spec{
		Seed:      u64(77),
		Axes:      []Axis{{Param: "Latencies.QPI", Values: rawValues("40")}},
		Objective: ObjectiveSpec{Artifact: "a", Column: "c"},
	}
	pts, err := Expand(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Seed != 77 {
		t.Fatalf("spec seed not applied: %d", pts[0].Seed)
	}
}

// TestExampleSpecsValid keeps the checked-in example specs honest: each
// must decode strictly, validate, and expand into a non-empty grid.
func TestExampleSpecsValid(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "sweeps", "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example sweep specs found: %v", err)
	}
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		var spec Spec
		dec := json.NewDecoder(bytes.NewReader(b))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		pts, err := Expand(spec, 1)
		if err != nil {
			t.Errorf("%s: %v", f, err)
		} else if len(pts) == 0 {
			t.Errorf("%s: expanded to zero points", f)
		}
	}
}
