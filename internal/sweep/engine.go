package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// DefaultInFlight is how many points run concurrently when the caller
// does not say; the per-point jobs already parallelize their cells, so
// a handful keeps the fleet saturated without flooding the admission
// queue.
const DefaultInFlight = 4

// DefaultMaxRetries bounds admission-control backoff attempts per
// point before the point is declared failed.
const DefaultMaxRetries = 16

// RetryError tells the engine the point was not run and should be
// resubmitted after a delay — the service adapter returns it on queue-
// full (HTTP 429) admission rejections, carrying the computed
// Retry-After. The engine backs off instead of failing the point.
type RetryError struct {
	// After is how long to wait before resubmitting.
	After time.Duration
	// Err is the underlying admission failure.
	Err error
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("retry after %s: %v", e.After, e.Err)
}

func (e *RetryError) Unwrap() error { return e.Err }

// CellCounts aggregates cell outcomes of one point's job (and, summed,
// of the whole sweep — how much the cell cache deduped).
type CellCounts struct {
	Total    int `json:"total"`
	Executed int `json:"executed"`
	Cached   int `json:"cached"`
	Failed   int `json:"failed"`
}

// Add accumulates another job's counts.
func (c *CellCounts) Add(o CellCounts) {
	c.Total += o.Total
	c.Executed += o.Executed
	c.Cached += o.Cached
	c.Failed += o.Failed
}

// PointResult is what a PointRunner returns for one completed point.
type PointResult struct {
	// JobID names the job that ran the point (informational).
	JobID string
	// TSV maps artifact name to its assembled table (header + rows),
	// byte-identical to the CLI and job-download outputs.
	TSV map[string][]byte
	// Cells reports the job's cell outcomes.
	Cells CellCounts
}

// PointRunner executes one point to completion. Implementations must
// be safe for concurrent calls. Returning *RetryError means the point
// was never admitted and the engine should back off and resubmit;
// any other error fails the point.
type PointRunner interface {
	RunPoint(ctx context.Context, pt Point) (PointResult, error)
}

// RunnerFunc adapts a function to PointRunner.
type RunnerFunc func(ctx context.Context, pt Point) (PointResult, error)

// RunPoint implements PointRunner.
func (f RunnerFunc) RunPoint(ctx context.Context, pt Point) (PointResult, error) { return f(ctx, pt) }

// Event types emitted through Options.Observe.
const (
	// EventPoint: one point reached a terminal outcome (scored or failed).
	EventPoint = "point"
	// EventBackoff: a point hit admission control and is waiting.
	EventBackoff = "backoff"
	// EventFrontier: the ranked top-K changed.
	EventFrontier = "frontier"
)

// PointReport describes one point outcome (or backoff).
type PointReport struct {
	Point  Point
	JobID  string
	Score  float64
	Scored bool
	Err    error
	// Retries counts admission backoffs the point absorbed.
	Retries int
	// RetryAfter is the wait a backoff event announces.
	RetryAfter time.Duration
	Cells      CellCounts
}

// Event is one engine progress notification. Observe calls are
// serialized under the engine's lock.
type Event struct {
	Type        string
	Done, Total int
	Point       *PointReport
	// Frontier is the ranked snapshot on EventFrontier.
	Frontier []Entry
}

// Options configures a sweep run.
type Options struct {
	// Runner executes points. Required.
	Runner PointRunner
	// DefaultSeed seeds points when the spec has no Seed and no seed
	// axis (mirrors job submission).
	DefaultSeed uint64
	// InFlight bounds concurrent points; <=0 means DefaultInFlight.
	InFlight int
	// MaxRetries bounds admission backoffs per point; <=0 means
	// DefaultMaxRetries.
	MaxRetries int
	// Observe receives progress events; nil discards. Serialized.
	Observe func(Event)
	// sleep is the backoff timer; tests replace it. Nil means a real
	// context-aware timer.
	sleep func(ctx context.Context, d time.Duration) error
}

// WithSleep returns a copy of o with the backoff timer replaced — a
// test seam, so backoff tests assert computed waits without sleeping.
func (o Options) WithSleep(f func(ctx context.Context, d time.Duration) error) Options {
	o.sleep = f
	return o
}

// Report summarizes one sweep run.
type Report struct {
	// Spec echoes the expanded spec.
	Spec Spec
	// Points are per-point outcomes in expansion order.
	Points []PointReport
	// Frontier is the final ranked frontier.
	Frontier *Frontier
	// Completed counts scored points, Failed the rest, Retries the
	// total admission backoffs absorbed.
	Completed, Failed, Retries int
	// Cells sums cell outcomes across every point's job: the cached
	// share is how much the manifest deduped the fan-out.
	Cells CellCounts
	Wall  time.Duration
}

// FrontierTSV renders the final frontier table.
func (r *Report) FrontierTSV() []byte { return r.Frontier.TSV(r.Spec.AxisNames()) }

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Run expands the spec and drives every point through the runner with
// a bounded number in flight, scoring completions and maintaining the
// ranked frontier. Per-point failures do not abort the sweep; engine-
// level problems (invalid spec, cancellation) do. The returned report
// is valid even when err is non-nil (partial results).
func Run(ctx context.Context, spec Spec, opts Options) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Runner == nil {
		return nil, errors.New("sweep: Options.Runner is required")
	}
	start := time.Now()
	points, err := Expand(spec, opts.DefaultSeed)
	if err != nil {
		return nil, err
	}
	obj, err := BuildObjective(spec.Objective)
	if err != nil {
		return nil, err
	}
	inFlight := opts.InFlight
	if inFlight <= 0 {
		inFlight = DefaultInFlight
	}
	if inFlight > len(points) {
		inFlight = len(points)
	}
	maxRetries := opts.MaxRetries
	if maxRetries <= 0 {
		maxRetries = DefaultMaxRetries
	}
	sleep := opts.sleep
	if sleep == nil {
		sleep = sleepCtx
	}

	rep := &Report{
		Spec:     spec,
		Points:   make([]PointReport, len(points)),
		Frontier: NewFrontier(spec.Objective.Maximize(), spec.TopK),
	}
	var (
		mu   sync.Mutex // guards rep, frontier and Observe serialization
		done int
	)
	observe := func(ev Event) {
		if opts.Observe != nil {
			opts.Observe(ev)
		}
	}
	total := len(points)

	ptCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < inFlight; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ptCh {
				pr := runPoint(ctx, points[i], opts.Runner, obj, maxRetries, sleep, func(wait time.Duration, retries int) {
					mu.Lock()
					rep.Retries++
					observe(Event{Type: EventBackoff, Done: done, Total: total, Point: &PointReport{
						Point: points[i], RetryAfter: wait, Retries: retries,
					}})
					mu.Unlock()
				})
				mu.Lock()
				rep.Points[i] = pr
				rep.Cells.Add(pr.Cells)
				done++
				if pr.Scored {
					rep.Completed++
				} else {
					rep.Failed++
				}
				observe(Event{Type: EventPoint, Done: done, Total: total, Point: &pr})
				if pr.Scored {
					if rep.Frontier.Add(Entry{Point: pr.Point, Score: pr.Score, JobID: pr.JobID}) {
						observe(Event{Type: EventFrontier, Done: done, Total: total, Frontier: rep.Frontier.Entries()})
					}
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for i := range points {
		select {
		case ptCh <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(ptCh)
	wg.Wait()
	rep.Wall = time.Since(start)

	if err := ctx.Err(); err != nil {
		// Mark points the feeder never handed out.
		for i := range rep.Points {
			if rep.Points[i].Point.Params == nil {
				rep.Points[i] = PointReport{Point: points[i], Err: fmt.Errorf("sweep: point %d not run: %w", i, err)}
				rep.Failed++
			}
		}
		return rep, fmt.Errorf("sweep: cancelled after %d/%d point(s): %w", rep.Completed, total, err)
	}
	return rep, nil
}

// runPoint drives one point through admission backoff, execution and
// scoring.
func runPoint(ctx context.Context, pt Point, runner PointRunner, obj Objective, maxRetries int, sleep func(context.Context, time.Duration) error, onBackoff func(time.Duration, int)) PointReport {
	pr := PointReport{Point: pt}
	var res PointResult
	for {
		var err error
		res, err = runner.RunPoint(ctx, pt)
		if err == nil {
			break
		}
		var re *RetryError
		if !errors.As(err, &re) {
			pr.Err = err
			return pr
		}
		pr.Retries++
		if pr.Retries > maxRetries {
			pr.Err = fmt.Errorf("sweep: point %d rejected %d times by admission control: %w", pt.Index, pr.Retries, re.Err)
			return pr
		}
		onBackoff(re.After, pr.Retries)
		if serr := sleep(ctx, re.After); serr != nil {
			pr.Err = serr
			return pr
		}
	}
	pr.JobID = res.JobID
	pr.Cells = res.Cells
	score, err := obj.Score(res)
	if err != nil {
		pr.Err = fmt.Errorf("sweep: point %d: %w", pt.Index, err)
		return pr
	}
	pr.Score = score
	pr.Scored = true
	return pr
}
