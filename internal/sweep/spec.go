// Package sweep is the parameter-search subsystem layered above jobs:
// a Spec names parameter axes that map onto machine-config overrides
// (plus the experiment seed), expands them into a bounded set of
// operating points by grid enumeration or seeded random sampling, runs
// every point through a PointRunner (the service adapter submits each
// point as a daemon job, so the manifest cell-cache dedupes repeated
// cells across points), scores completed points with a pluggable
// objective read out of the artifact TSVs, and maintains a ranked
// frontier whose TSV rendering is byte-identical for a fixed spec and
// seed regardless of execution order, parallelism, or fleet size.
package sweep

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// DefaultMaxPoints is the hard point budget a spec gets when it does
// not set one. Expansion beyond the budget is an error, never a silent
// truncation: a sweep that would quietly drop points reads as
// "covered the space" when it did not.
const DefaultMaxPoints = 1024

// SeedParam is the reserved axis name that sweeps the experiment seed
// instead of a machine-config field.
const SeedParam = "seed"

// Axis is one swept parameter: a dotted machine-config field path
// (JSON field names, e.g. "Latencies.QPI" or "Protocol"), or the
// reserved name "seed". Values come either from an explicit list or
// from a numeric range.
type Axis struct {
	// Param is the config field path the axis sets, or "seed".
	Param string `json:"param"`
	// Values enumerates the axis points as raw JSON values (numbers,
	// strings, booleans). Grid expansion walks them in order; random
	// sampling draws from them uniformly.
	Values []json.RawMessage `json:"values,omitempty"`
	// Min/Max define a numeric range used when Values is empty. Grid
	// expansion takes Steps evenly spaced values across [Min, Max];
	// random sampling draws uniformly from the interval.
	Min *float64 `json:"min,omitempty"`
	Max *float64 `json:"max,omitempty"`
	// Steps is the grid resolution of a range axis (>= 1; 1 means just
	// Min). Ignored by random sampling.
	Steps int `json:"steps,omitempty"`
	// Ints rounds range values to integers (config cycle counts and
	// thread counts are integral).
	Ints bool `json:"ints,omitempty"`
}

func (a Axis) validate() error {
	if strings.TrimSpace(a.Param) == "" {
		return fmt.Errorf("sweep: axis without a param")
	}
	if len(a.Values) > 0 {
		for i, v := range a.Values {
			if !json.Valid(v) || len(v) == 0 {
				return fmt.Errorf("sweep: axis %s value %d is not valid JSON", a.Param, i)
			}
			if a.isSeed() {
				if _, err := seedValue(v); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if a.Min == nil || a.Max == nil {
		return fmt.Errorf("sweep: axis %s needs values or a min/max range", a.Param)
	}
	if *a.Max < *a.Min {
		return fmt.Errorf("sweep: axis %s has max %v < min %v", a.Param, *a.Max, *a.Min)
	}
	return nil
}

func (a Axis) isSeed() bool { return strings.EqualFold(a.Param, SeedParam) }

// gridValues materializes the axis for grid expansion.
func (a Axis) gridValues() ([]json.RawMessage, error) {
	if len(a.Values) > 0 {
		return a.Values, nil
	}
	steps := a.Steps
	if steps <= 0 {
		return nil, fmt.Errorf("sweep: range axis %s needs steps >= 1 for grid expansion", a.Param)
	}
	out := make([]json.RawMessage, 0, steps)
	for i := 0; i < steps; i++ {
		v := *a.Min
		if steps > 1 {
			v += (*a.Max - *a.Min) * float64(i) / float64(steps-1)
		}
		out = append(out, numberJSON(v, a.Ints))
	}
	return out, nil
}

// sample draws one value for random expansion.
func (a Axis) sample(rng *rand.Rand) json.RawMessage {
	if len(a.Values) > 0 {
		return a.Values[rng.Intn(len(a.Values))]
	}
	v := *a.Min + rng.Float64()*(*a.Max-*a.Min)
	return numberJSON(v, a.Ints)
}

func numberJSON(v float64, ints bool) json.RawMessage {
	if ints {
		return json.RawMessage(strconv.FormatInt(int64(v+0.5), 10))
	}
	return json.RawMessage(strconv.FormatFloat(v, 'g', -1, 64))
}

func seedValue(raw json.RawMessage) (uint64, error) {
	var s uint64
	if err := json.Unmarshal(raw, &s); err != nil {
		return 0, fmt.Errorf("sweep: seed axis value %s is not an unsigned integer", raw)
	}
	return s, nil
}

// Expansion strategies.
const (
	StrategyGrid   = "grid"
	StrategyRandom = "random"
)

// Spec describes one sweep: what to run per point, how to expand the
// axes into points, how to score a point, and how deep a frontier to
// keep.
type Spec struct {
	// Name labels the sweep in listings and output filenames; optional.
	Name string `json:"name,omitempty"`
	// Artifacts lists the registry artifacts run per point; empty means
	// every artifact (matching job submission semantics).
	Artifacts []string `json:"artifacts,omitempty"`
	// Seed is the base experiment seed for every point (a "seed" axis
	// overrides it per point); nil uses the runner's default.
	Seed *uint64 `json:"seed,omitempty"`
	// Sizing is "quick" or "full" (default "full").
	Sizing string `json:"sizing,omitempty"`
	// Kernel selects the access-stream kernel for every point ("interp"
	// or "compiled"); empty inherits the runner default.
	Kernel string `json:"kernel,omitempty"`
	// Config holds partial machine-config overrides applied to every
	// point before its axis assignments.
	Config json.RawMessage `json:"config,omitempty"`
	// Axes are the swept parameters.
	Axes []Axis `json:"axes"`
	// Strategy is "grid" (default: full cartesian product) or "random"
	// (Samples points drawn with the SampleSeed PRNG).
	Strategy string `json:"strategy,omitempty"`
	// Samples is the point count for random sampling.
	Samples int `json:"samples,omitempty"`
	// SampleSeed seeds the random-sampling PRNG; 0 derives it from the
	// experiment seed so a fixed spec stays deterministic.
	SampleSeed uint64 `json:"sampleSeed,omitempty"`
	// MaxPoints is the hard point budget; 0 means DefaultMaxPoints.
	// Expansion past the budget is an error.
	MaxPoints int `json:"maxPoints,omitempty"`
	// Objective scores each completed point.
	Objective ObjectiveSpec `json:"objective"`
	// TopK bounds the ranked frontier; 0 keeps every scored point.
	TopK int `json:"topK,omitempty"`
}

// Budget returns the effective point budget.
func (s *Spec) Budget() int {
	if s.MaxPoints > 0 {
		return s.MaxPoints
	}
	return DefaultMaxPoints
}

// Validate checks everything that can be checked without a registry:
// axes, strategy, budget and the objective shape.
func (s *Spec) Validate() error {
	if len(s.Axes) == 0 {
		return fmt.Errorf("sweep: spec needs at least one axis")
	}
	seen := make(map[string]bool, len(s.Axes))
	for _, a := range s.Axes {
		if err := a.validate(); err != nil {
			return err
		}
		key := strings.ToLower(a.Param)
		if seen[key] {
			return fmt.Errorf("sweep: axis %s declared twice", a.Param)
		}
		seen[key] = true
	}
	switch s.Strategy {
	case "", StrategyGrid:
		for _, a := range s.Axes {
			if _, err := a.gridValues(); err != nil {
				return err
			}
		}
	case StrategyRandom:
		if s.Samples <= 0 {
			return fmt.Errorf("sweep: random strategy needs samples > 0")
		}
		if s.Samples > s.Budget() {
			return fmt.Errorf("sweep: samples %d exceeds the point budget %d", s.Samples, s.Budget())
		}
	default:
		return fmt.Errorf("sweep: unknown strategy %q (want %q or %q)", s.Strategy, StrategyGrid, StrategyRandom)
	}
	if s.MaxPoints < 0 {
		return fmt.Errorf("sweep: maxPoints %d must be >= 0", s.MaxPoints)
	}
	if s.TopK < 0 {
		return fmt.Errorf("sweep: topK %d must be >= 0", s.TopK)
	}
	if len(s.Config) > 0 && !json.Valid(s.Config) {
		return fmt.Errorf("sweep: config overrides are not valid JSON")
	}
	return s.Objective.validate()
}

// AxisNames returns the swept parameter names in axis order — the
// frontier TSV's parameter columns.
func (s *Spec) AxisNames() []string {
	out := make([]string, len(s.Axes))
	for i, a := range s.Axes {
		out[i] = a.Param
	}
	return out
}

// ParamValue is one axis assignment of a point.
type ParamValue struct {
	Param string `json:"param"`
	// Value is the assigned raw JSON value.
	Value json.RawMessage `json:"value"`
}

// Display renders the value for humans and TSVs: JSON strings drop
// their quotes, everything else stays as compact JSON.
func (p ParamValue) Display() string {
	var s string
	if err := json.Unmarshal(p.Value, &s); err == nil {
		return s
	}
	return string(p.Value)
}

// Point is one expanded operating point: the axis assignments resolved
// into a seed and a merged machine-config override document.
type Point struct {
	// Index is the point's position in deterministic expansion order;
	// it is the ranking tie-break, so frontiers are reproducible.
	Index int
	// Params are the axis assignments in axis order.
	Params []ParamValue
	// Seed is the experiment seed for the point.
	Seed uint64
	// Config is the merged override document submitted with the point's
	// job (spec-level overrides plus axis assignments); nil when empty.
	Config json.RawMessage
}

// Expand materializes the spec's points in deterministic order.
// defaultSeed seeds points when the spec carries no Seed field and no
// seed axis. The hard budget is enforced here: a grid larger than the
// budget (or a samples count above it) fails rather than truncates.
func Expand(spec Spec, defaultSeed uint64) ([]Point, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	baseSeed := defaultSeed
	if spec.Seed != nil {
		baseSeed = *spec.Seed
	}
	var assignments [][]json.RawMessage
	switch spec.Strategy {
	case "", StrategyGrid:
		grids := make([][]json.RawMessage, len(spec.Axes))
		total := 1
		for i, a := range spec.Axes {
			g, err := a.gridValues()
			if err != nil {
				return nil, err
			}
			grids[i] = g
			total *= len(g)
			if total > spec.Budget() {
				return nil, fmt.Errorf("sweep: grid expands to more than the point budget %d (use maxPoints, random sampling, or fewer axis values)", spec.Budget())
			}
		}
		assignments = make([][]json.RawMessage, 0, total)
		idx := make([]int, len(grids))
		for {
			row := make([]json.RawMessage, len(grids))
			for i, g := range grids {
				row[i] = g[idx[i]]
			}
			assignments = append(assignments, row)
			// Odometer: last axis fastest, first axis slowest.
			k := len(grids) - 1
			for k >= 0 {
				idx[k]++
				if idx[k] < len(grids[k]) {
					break
				}
				idx[k] = 0
				k--
			}
			if k < 0 {
				break
			}
		}
	case StrategyRandom:
		sampleSeed := spec.SampleSeed
		if sampleSeed == 0 {
			// Derive from the experiment seed so a fixed spec+seed is
			// fully deterministic without a second mandatory knob.
			sampleSeed = baseSeed ^ 0x5EE9C0DE
		}
		rng := rand.New(rand.NewSource(int64(sampleSeed)))
		assignments = make([][]json.RawMessage, 0, spec.Samples)
		for n := 0; n < spec.Samples; n++ {
			row := make([]json.RawMessage, len(spec.Axes))
			for i, a := range spec.Axes {
				row[i] = a.sample(rng)
			}
			assignments = append(assignments, row)
		}
	}

	points := make([]Point, 0, len(assignments))
	for i, row := range assignments {
		pt, err := buildPoint(spec, i, row, baseSeed)
		if err != nil {
			return nil, err
		}
		points = append(points, pt)
	}
	return points, nil
}

// buildPoint merges one assignment row into a Point.
func buildPoint(spec Spec, index int, row []json.RawMessage, baseSeed uint64) (Point, error) {
	pt := Point{Index: index, Seed: baseSeed}
	overrides := map[string]any{}
	if len(spec.Config) > 0 {
		if err := json.Unmarshal(spec.Config, &overrides); err != nil {
			return pt, fmt.Errorf("sweep: config overrides: %w", err)
		}
	}
	touched := len(spec.Config) > 0
	for i, a := range spec.Axes {
		pt.Params = append(pt.Params, ParamValue{Param: a.Param, Value: row[i]})
		if a.isSeed() {
			s, err := seedValue(row[i])
			if err != nil {
				return pt, err
			}
			pt.Seed = s
			continue
		}
		if err := setPath(overrides, strings.Split(a.Param, "."), row[i]); err != nil {
			return pt, fmt.Errorf("sweep: axis %s: %w", a.Param, err)
		}
		touched = true
	}
	if touched {
		// encoding/json marshals map keys sorted, so the document — and
		// therefore the config digest — is deterministic.
		b, err := json.Marshal(overrides)
		if err != nil {
			return pt, fmt.Errorf("sweep: merge overrides: %w", err)
		}
		pt.Config = b
	}
	return pt, nil
}

// setPath writes value at the dotted path inside doc, creating nested
// objects as needed. A path segment that lands on a non-object is an
// error (the axis contradicts the spec-level overrides).
func setPath(doc map[string]any, path []string, value json.RawMessage) error {
	for _, seg := range path {
		if strings.TrimSpace(seg) == "" {
			return fmt.Errorf("empty path segment")
		}
	}
	cur := doc
	for _, seg := range path[:len(path)-1] {
		next, ok := cur[seg]
		if !ok {
			m := map[string]any{}
			cur[seg] = m
			cur = m
			continue
		}
		m, ok := next.(map[string]any)
		if !ok {
			return fmt.Errorf("path segment %q is not an object in the spec config", seg)
		}
		cur = m
	}
	cur[path[len(path)-1]] = value
	return nil
}
