// Package version reports build provenance for every binary and the
// daemon's /v1/version endpoint, read from the build info the Go
// linker already embeds — no ldflags stamping, no extra tooling.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info is the build identity shared by the -version flags and the
// daemon endpoint.
type Info struct {
	// Version is the module version ("(devel)" for plain go build).
	Version string `json:"version"`
	// Revision is the VCS commit the binary was built from, when the
	// build ran inside a checkout.
	Revision string `json:"revision,omitempty"`
	// Time is the commit timestamp (RFC 3339).
	Time string `json:"time,omitempty"`
	// Dirty reports uncommitted changes in the build checkout.
	Dirty bool `json:"dirty,omitempty"`
	// Go is the toolchain that built the binary.
	Go string `json:"go"`
}

// Get reads the running binary's build info. It degrades gracefully:
// binaries built without module support still report the Go version.
func Get() Info {
	info := Info{Version: "unknown", Go: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// String renders the one-line form the -version flags print.
func (i Info) String() string {
	out := i.Version
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		out += " (" + rev
		if i.Dirty {
			out += "-dirty"
		}
		out += ")"
	}
	return fmt.Sprintf("%s %s", out, i.Go)
}
