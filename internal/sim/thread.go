package sim

import (
	"container/heap"
	"fmt"
)

type threadState int

const (
	threadReady threadState = iota
	threadRunning
	threadDone
)

func (s threadState) String() string {
	switch s {
	case threadReady:
		return "ready"
	case threadRunning:
		return "running"
	case threadDone:
		return "done"
	default:
		return "unknown"
	}
}

// Thread is a simulated hardware thread. Thread bodies run as goroutines
// but are cooperatively scheduled: exactly one thread executes at a time,
// and control returns to the World at every Advance call. A thread body
// must therefore call Advance (directly or through a timed machine
// operation) inside any loop, or the simulation cannot progress.
type Thread struct {
	id     int
	name   string
	world  *World
	time   Cycles
	resume chan struct{}
	state  threadState
	err    error

	stopRequested bool

	// Tag is free space for the owner of the thread (the kernel layer
	// stores the owning process and core pinning here).
	Tag any
}

// ID returns the thread's unique id (spawn order).
func (t *Thread) ID() int { return t.id }

// Name returns the thread's debug name.
func (t *Thread) Name() string { return t.name }

// Now returns the thread's local virtual time in cycles. It is the
// simulated analogue of rdtsc.
func (t *Thread) Now() Cycles { return t.time }

// World returns the owning world.
func (t *Thread) World() *World { return t.world }

// Finished reports whether the thread body has returned or been stopped.
func (t *Thread) Finished() bool { return t.state == threadDone }

// StopRequested reports whether World.StopThread has been called for t.
// Long-running bodies may poll it to exit cleanly; otherwise the next
// Advance unwinds them.
func (t *Thread) StopRequested() bool { return t.stopRequested }

// Advance moves the thread's local clock forward by d cycles and yields to
// the scheduler. All simulated work is expressed as Advance calls: a load
// that hits in the L1 is Advance(4) from the core's point of view.
//
// When the advanced thread is still the earliest runnable one — the
// common case for single-threaded phases and for whichever attack thread
// currently trails in virtual time — Advance returns without any
// goroutine switch: the scheduler would have re-selected this thread
// immediately, so running on is observationally identical and removes
// the channel park/resume pair from the per-operation cost.
//
// Advance panics with an internal sentinel if the thread has been stopped;
// the sentinel is recovered by the thread wrapper, so thread bodies should
// not recover it themselves (a recover must re-panic values it does not
// recognize — see run).
func (t *Thread) Advance(d Cycles) {
	if t.state != threadRunning {
		panic(fmt.Sprintf("sim: Advance called on %s thread %q", t.state, t.name))
	}
	if t.stopRequested {
		panic(killed{reason: "stop requested"})
	}
	t.time += d
	w := t.world
	// Inline fast path. The checks mirror one iteration of the central
	// scheduler loop, in its order: stop predicate, then (time, id)
	// thread selection, then the cycle limit on the selected thread.
	if w.running && (w.stopFn == nil || !w.stopFn()) &&
		(w.cfg.MaxCycles == 0 || t.time <= w.cfg.MaxCycles) {
		if h := w.peek(); h == nil || t.time < h.time || (t.time == h.time && t.id < h.id) {
			w.now = t.time
			return
		}
	}
	// Slow path: another thread is due (or the scheduler must observe a
	// condition). Park and hand control over.
	t.state = threadReady
	heap.Push(&w.queue, t)
	w.transfer(nil)
	<-t.resume
	if t.stopRequested {
		panic(killed{reason: "stop requested"})
	}
}

// Yield gives other threads at the same timestamp a chance to run without
// consuming simulated time. Because ties are broken by thread id, a Yield
// by the lowest-id thread re-runs it immediately; use Advance(1) when real
// progress is required.
func (t *Thread) Yield() { t.Advance(0) }

// run is the goroutine wrapper around the thread body. It waits for the
// first scheduling, executes fn, recovers the kill sentinel, and passes
// control on — directly to the next runnable thread, or to the scheduler
// when the body panicked (so RunUntil can re-panic the error).
func (t *Thread) run(fn func(*Thread)) {
	<-t.resume
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killed); !ok {
				t.err = fmt.Errorf("sim: thread %q panicked: %v", t.name, r)
			}
		}
		t.state = threadDone
		if t.err != nil {
			t.world.transfer(t)
		} else {
			t.world.transfer(nil)
		}
	}()
	fn(t)
}
