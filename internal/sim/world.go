// Package sim provides the discrete-event kernel underneath the coherence
// testbed: a virtual cycle clock, a deterministic cooperative scheduler for
// simulated hardware threads, and seeded pseudo-random number generation.
//
// Determinism is the point. The paper's attack lives or dies on a 26-cycle
// latency difference; the Go runtime's scheduler and garbage collector
// introduce orders of magnitude more wall-clock noise than that. The kernel
// therefore runs exactly one simulated thread at a time and orders threads
// by (virtual time, thread id), so a run is a pure function of its
// configuration and seed. Simulated threads are real goroutines, but they
// hand control back to the kernel at every timed operation, so shared
// state mutated by thread bodies needs no locking.
//
// Two mechanisms keep that handover off the hot path. A thread whose
// Advance leaves it the earliest runnable thread simply keeps executing —
// the scheduler would have re-selected it anyway, so no goroutine switch
// happens at all. When another thread is due, control transfers directly
// from the yielding thread's goroutine to the next thread's goroutine;
// the scheduler goroutine parked in RunUntil wakes only for conditions it
// must observe (stop predicate, thread failure, cycle limit, all threads
// finished). Both paths select threads by exactly the same (time, id)
// ordering as a naive central scheduler loop, so schedules — and
// therefore every derived artifact — are unchanged.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Cycles is a duration or instant measured in simulated CPU cycles.
type Cycles = uint64

// killed is the panic sentinel used to unwind a thread that was stopped
// from outside (World.StopThread or World.Shutdown).
type killed struct{ reason string }

// ErrDeadlock is reported by World.Run when no thread can make progress
// before MaxCycles elapses.
type ErrDeadlock struct {
	At Cycles
}

func (e ErrDeadlock) Error() string {
	return fmt.Sprintf("sim: no runnable thread advanced past cycle limit %d", e.At)
}

// Config parameterizes a World.
type Config struct {
	// Seed feeds the world's root random stream. Child components should
	// obtain their own streams via World.Rand().Split().
	Seed uint64
	// MaxCycles aborts the run when the global clock passes it.
	// Zero means no limit.
	MaxCycles Cycles
}

// World is the simulation kernel: it owns the virtual clock and schedules
// simulated threads deterministically. Create one with NewWorld, add
// threads with Spawn, then drive them with Run or RunUntil.
type World struct {
	cfg      Config
	rand     *Rand
	threads  []*Thread
	queue    threadQueue
	nextID   int
	now      Cycles
	running  bool
	draining bool
	yield    chan struct{} // wakes the scheduler goroutine parked in RunUntil/Drain

	// stopFn is RunUntil's predicate, stored so the inline fast path and
	// direct handoffs can honour it at every step, exactly as a central
	// scheduler loop would.
	stopFn func() bool
	// failed records a thread whose body panicked; the scheduler
	// re-panics its error on the RunUntil goroutine.
	failed *Thread

	// fuseSafe and fuseDeadline describe the active drive's stop
	// structure for FuseHorizon: set by RunUntilDeadline (and Run, with
	// NoDeadline), cleared for opaque RunUntil predicates.
	fuseSafe     bool
	fuseDeadline Cycles
}

// NewWorld returns an empty world.
func NewWorld(cfg Config) *World {
	return &World{
		cfg:   cfg,
		rand:  NewRand(cfg.Seed),
		yield: make(chan struct{}, 1),
	}
}

// Rand returns the world's root random stream.
func (w *World) Rand() *Rand { return w.rand }

// Now returns the global virtual clock: the local time of the most
// recently scheduled thread.
func (w *World) Now() Cycles { return w.now }

// Threads returns all threads ever spawned, in spawn order, including
// finished ones.
func (w *World) Threads() []*Thread {
	out := make([]*Thread, len(w.threads))
	copy(out, w.threads)
	return out
}

// Spawn creates a simulated thread named name whose body is fn. The thread
// starts at the current global time and runs when the scheduler first
// selects it. Spawn may be called before Run or from inside another
// thread's body.
func (w *World) Spawn(name string, fn func(*Thread)) *Thread {
	t := &Thread{
		id:     w.nextID,
		name:   name,
		world:  w,
		time:   w.now,
		resume: make(chan struct{}, 1),
		state:  threadReady,
	}
	w.nextID++
	w.threads = append(w.threads, t)
	heap.Push(&w.queue, t)
	go t.run(fn)
	return t
}

// NoDeadline marks a RunUntilDeadline drive with no time bound: the
// clock can never exceed it.
const NoDeadline = ^Cycles(0)

// Run drives the world until every thread has finished. It returns
// ErrDeadlock if the cycle limit is exceeded first, or the first panic
// value (re-panicked) if a thread body panics.
func (w *World) Run() error {
	return w.RunUntilDeadline(NoDeadline, nil)
}

// RunUntil drives the world until stop() returns true (checked between
// thread steps), every thread finishes, or the cycle limit is exceeded.
//
// The predicate is opaque: it may read the virtual clock, so batching
// executors (kernel.Thread.Exec) must fall back to per-operation
// scheduling while such a drive is active. Drives whose only time
// dependence is a deadline should use RunUntilDeadline instead, which
// exposes the structure and keeps the fused fast path engaged.
func (w *World) RunUntil(stop func() bool) error {
	return w.runLoop(stop)
}

// RunUntilDeadline drives the world until stop() returns true, the
// global clock exceeds deadline (use NoDeadline for none), every thread
// finishes, or the cycle limit is exceeded. It is semantically identical
// to RunUntil with the predicate `stop() || w.Now() > deadline`, but
// declares that stop itself never reads the virtual clock — its value
// can only change through a thread's own actions. That structure is
// what lets the compiled access-stream kernel fuse an operation's
// latency and think time into one Advance: the skipped intermediate
// predicate evaluation provably has the same value (see FuseHorizon).
func (w *World) RunUntilDeadline(deadline Cycles, stop func() bool) error {
	w.fuseSafe, w.fuseDeadline = true, deadline
	defer func() { w.fuseSafe = false }()
	if stop == nil && deadline == NoDeadline {
		return w.runLoop(nil)
	}
	return w.runLoop(func() bool {
		return (stop != nil && stop()) || w.now > deadline
	})
}

// FuseHorizon returns the active drive's deadline when the stop
// condition is clock-free up to that deadline (a Run or RunUntilDeadline
// drive): an Advance that keeps the thread below every other thread's
// wake time may then skip intermediate predicate evaluations at times
// at or below the horizon. ok is false under an opaque RunUntil
// predicate — callers must not fuse.
func (w *World) FuseHorizon() (deadline Cycles, ok bool) {
	if !w.running || !w.fuseSafe {
		return 0, false
	}
	return w.fuseDeadline, true
}

// CycleLimit returns the configured MaxCycles (0 = none).
func (w *World) CycleLimit() Cycles { return w.cfg.MaxCycles }

func (w *World) runLoop(stop func() bool) error {
	if w.running {
		panic("sim: World.Run called re-entrantly")
	}
	w.running = true
	w.stopFn = stop
	defer func() {
		w.running = false
		w.stopFn = nil
	}()

	for {
		if stop != nil && stop() {
			return nil
		}
		t := w.nextRunnable()
		if t == nil {
			return nil // all threads finished
		}
		if w.cfg.MaxCycles != 0 && t.time > w.cfg.MaxCycles {
			// Requeue the over-limit thread so a subsequent Drain can
			// unwind it instead of leaking its goroutine.
			heap.Push(&w.queue, t)
			return ErrDeadlock{At: w.cfg.MaxCycles}
		}
		w.now = t.time
		t.state = threadRunning
		t.resume <- struct{}{}
		// Threads hand off among themselves; the wake below means a
		// condition needs this goroutine: stop predicate, empty queue,
		// cycle limit, or a failed thread.
		<-w.yield
		if w.failed != nil {
			err := w.failed.err
			w.failed = nil
			panic(err)
		}
	}
}

// transfer hands control to the next runnable thread directly, or wakes
// the scheduler goroutine when it must observe a condition (thread
// failure, stop predicate, empty queue, cycle limit). It is called on
// the goroutine of a thread that has just parked or finished; exactly
// one simulated thread executes at any time, so mutating scheduler
// state here is race-free.
func (w *World) transfer(failed *Thread) {
	if failed != nil && !w.draining {
		w.failed = failed
		w.yield <- struct{}{}
		return
	}
	if w.stopFn != nil && w.stopFn() {
		w.yield <- struct{}{}
		return
	}
	next := w.nextRunnable()
	if next == nil {
		w.yield <- struct{}{}
		return
	}
	if !w.draining && w.cfg.MaxCycles != 0 && next.time > w.cfg.MaxCycles {
		// Put the over-limit thread back; the scheduler re-pops it and
		// reports ErrDeadlock, exactly as the central loop did.
		heap.Push(&w.queue, next)
		w.yield <- struct{}{}
		return
	}
	w.now = next.time
	next.state = threadRunning
	next.resume <- struct{}{}
}

// nextRunnable pops the ready thread with the smallest (time, id).
func (w *World) nextRunnable() *Thread {
	for w.queue.Len() > 0 {
		t := heap.Pop(&w.queue).(*Thread)
		if t.state == threadReady {
			return t
		}
	}
	return nil
}

// peek returns the earliest ready thread without removing it, or nil.
func (w *World) peek() *Thread {
	for len(w.queue) > 0 {
		if t := w.queue[0]; t.state == threadReady {
			return t
		}
		heap.Pop(&w.queue) // stale entry; queue normally holds only ready threads
	}
	return nil
}

// StopThread asks a thread to terminate. The thread unwinds the next time
// it calls Advance (or immediately if it is waiting to be scheduled).
func (w *World) StopThread(t *Thread) {
	if t.state == threadDone {
		return
	}
	t.stopRequested = true
}

// Shutdown requests termination of every live thread.
func (w *World) Shutdown() {
	for _, t := range w.threads {
		w.StopThread(t)
	}
}

// Drain stops every thread and schedules until all have unwound. Call it
// after RunUntil returns with live threads, so their goroutines exit
// before the world is dropped.
func (w *World) Drain() {
	w.Shutdown()
	w.draining = true
	defer func() { w.draining = false }()
	for {
		t := w.nextRunnable()
		if t == nil {
			return
		}
		t.state = threadRunning
		t.resume <- struct{}{}
		<-w.yield
	}
}

// LiveThreads returns the number of threads that have not finished.
func (w *World) LiveThreads() int {
	n := 0
	for _, t := range w.threads {
		if t.state != threadDone {
			n++
		}
	}
	return n
}

// Snapshot returns a human-readable summary of thread states, for
// debugging stuck scenarios.
func (w *World) Snapshot() string {
	ts := w.Threads()
	sort.Slice(ts, func(i, j int) bool { return ts[i].id < ts[j].id })
	s := fmt.Sprintf("world @%d cycles, %d threads\n", w.now, len(ts))
	for _, t := range ts {
		s += fmt.Sprintf("  #%d %-20s %-8s @%d\n", t.id, t.name, t.state, t.time)
	}
	return s
}

// threadQueue is a min-heap ordered by (time, id). Ordering by id second
// makes scheduling fully deterministic when threads share a timestamp.
type threadQueue []*Thread

func (q threadQueue) Len() int { return len(q) }
func (q threadQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].id < q[j].id
}
func (q threadQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *threadQueue) Push(x any)   { *q = append(*q, x.(*Thread)) }
func (q *threadQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return t
}
