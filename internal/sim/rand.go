package sim

// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic decision in the reproduction (latency jitter, noise
// workload addresses, page contents) flows from instances of Rand seeded
// explicitly by the caller. The simulator never consults the wall clock or
// the global math/rand state, so a given configuration regenerates every
// figure bit-identically.
//
// The generator is xoshiro256** with a SplitMix64 seeding sequence, the
// same construction used by the Go runtime; it is small, fast and has no
// detectable bias at the sample counts used here (millions of draws).

import "math/bits"

// Rand is a deterministic pseudo-random number generator.
// The zero value is not valid; use NewRand.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded from seed via SplitMix64.
// Two generators with the same seed produce identical streams.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not be seeded with all zeros; SplitMix64 cannot
	// produce four zero outputs in a row, but guard regardless.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split returns a new generator whose stream is independent of r's
// continued use. It is the supported way to hand child components their
// own deterministic randomness.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Uint32 returns the next 32-bit value.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's method.
// It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n called with zero n")
	}
	// Unbiased bounded generation (Lemire, rejection on the low word).
	thresh := -n % n
	for {
		v := r.Uint64()
		hi, lo := bits.Mul64(v, n)
		if lo >= thresh {
			return hi
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Jitter returns a value in [-width, +width], triangular-distributed
// around zero. Triangular noise matches the narrow, peaked latency bands
// observed in the paper's Figure 2 better than uniform noise.
func (r *Rand) Jitter(width int64) int64 {
	if width <= 0 {
		return 0
	}
	a := int64(r.Uint64n(uint64(width)*2+1)) - width
	b := int64(r.Uint64n(uint64(width)*2+1)) - width
	return (a + b) / 2
}

// Geometric returns a draw from a geometric distribution with success
// probability p (support {0, 1, 2, ...}), capped at max. It models
// queuing-delay tail lengths.
func (r *Rand) Geometric(p float64, max int) int {
	if p >= 1 || max <= 0 {
		return 0
	}
	if p <= 0 {
		return max
	}
	n := 0
	for n < max && !r.Bool(p) {
		n++
	}
	return n
}

// Perm fills dst with a random permutation of [0, len(dst)).
func (r *Rand) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}
