package sim

import (
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestRandSplitIndependent(t *testing.T) {
	root := NewRand(7)
	child := root.Split()
	// The child stream must not simply replay the parent stream.
	parent2 := NewRand(7)
	parent2.Uint64() // consume the draw Split used
	diverged := false
	for i := 0; i < 50; i++ {
		if child.Uint64() != parent2.Uint64() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("Split stream replays parent stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(3)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values in 10k draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestJitterBoundsProperty(t *testing.T) {
	r := NewRand(9)
	f := func(width uint8) bool {
		w := int64(width % 64)
		j := r.Jitter(w)
		return j >= -w && j <= w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestJitterZeroWidth(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 100; i++ {
		if r.Jitter(0) != 0 {
			t.Fatal("Jitter(0) != 0")
		}
	}
}

func TestJitterCentered(t *testing.T) {
	r := NewRand(11)
	sum := int64(0)
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Jitter(8)
	}
	mean := float64(sum) / n
	if mean < -0.5 || mean > 0.5 {
		t.Fatalf("Jitter(8) mean = %v, want ~0", mean)
	}
}

func TestGeometricBounds(t *testing.T) {
	r := NewRand(13)
	for i := 0; i < 1000; i++ {
		g := r.Geometric(0.5, 10)
		if g < 0 || g > 10 {
			t.Fatalf("Geometric out of bounds: %d", g)
		}
	}
	if r.Geometric(1.0, 10) != 0 {
		t.Fatal("Geometric(p=1) should be 0")
	}
	if r.Geometric(0, 10) != 10 {
		t.Fatal("Geometric(p=0) should hit the cap")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(17)
	dst := make([]int, 50)
	r.Perm(dst)
	seen := make([]bool, 50)
	for _, v := range dst {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", dst)
		}
		seen[v] = true
	}
}

func TestWorldSingleThread(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	var trace []Cycles
	w.Spawn("a", func(th *Thread) {
		th.Advance(10)
		trace = append(trace, th.Now())
		th.Advance(5)
		trace = append(trace, th.Now())
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if len(trace) != 2 || trace[0] != 10 || trace[1] != 15 {
		t.Fatalf("trace = %v, want [10 15]", trace)
	}
	if w.LiveThreads() != 0 {
		t.Fatal("thread did not finish")
	}
}

func TestWorldInterleavingByVirtualTime(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	var order []string
	w.Spawn("slow", func(th *Thread) {
		for i := 0; i < 3; i++ {
			th.Advance(10)
			order = append(order, "slow")
		}
	})
	w.Spawn("fast", func(th *Thread) {
		for i := 0; i < 6; i++ {
			th.Advance(5)
			order = append(order, "fast")
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// fast@5, {slow@10, fast@10 — slow has lower id}, fast@15, ...
	want := []string{"fast", "slow", "fast", "fast", "slow", "fast", "fast", "slow", "fast"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %s, want %s (full: %v)", i, order[i], want[i], order)
		}
	}
}

func TestWorldTieBrokenBySpawnOrder(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		w.Spawn(name, func(th *Thread) {
			th.Advance(1)
			order = append(order, name)
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("tie order = %v, want [a b c]", order)
	}
}

func TestWorldSpawnFromThread(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	childRan := false
	w.Spawn("parent", func(th *Thread) {
		th.Advance(100)
		th.World().Spawn("child", func(c *Thread) {
			if c.Now() != 100 {
				t.Errorf("child started at %d, want 100", c.Now())
			}
			c.Advance(1)
			childRan = true
		})
		th.Advance(10)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("dynamically spawned child never ran")
	}
}

func TestWorldStopThread(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	iters := 0
	victim := w.Spawn("victim", func(th *Thread) {
		for {
			th.Advance(1)
			iters++
		}
	})
	w.Spawn("killer", func(th *Thread) {
		th.Advance(50)
		th.World().StopThread(victim)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if !victim.Finished() {
		t.Fatal("victim not finished after stop")
	}
	if iters == 0 || iters > 60 {
		t.Fatalf("victim ran %d iterations, want ~50", iters)
	}
}

func TestWorldRunUntilAndDrain(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	w.Spawn("forever", func(th *Thread) {
		for {
			th.Advance(1)
		}
	})
	err := w.RunUntil(func() bool { return w.Now() >= 100 })
	if err != nil {
		t.Fatal(err)
	}
	if w.Now() < 100 {
		t.Fatalf("stopped at %d, want >= 100", w.Now())
	}
	w.Drain()
	if w.LiveThreads() != 0 {
		t.Fatal("Drain left live threads")
	}
}

func TestWorldDeadlockLimit(t *testing.T) {
	w := NewWorld(Config{Seed: 1, MaxCycles: 1000})
	w.Spawn("spinner", func(th *Thread) {
		for {
			th.Advance(100)
		}
	})
	err := w.Run()
	if _, ok := err.(ErrDeadlock); !ok {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	w.Drain()
}

func TestWorldPanicPropagates(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	w.Spawn("bad", func(th *Thread) {
		th.Advance(1)
		panic("boom")
	})
	defer func() {
		if recover() == nil {
			t.Fatal("thread panic did not propagate")
		}
	}()
	_ = w.Run()
}

func TestThreadNowMatchesAdvances(t *testing.T) {
	f := func(steps []uint8) bool {
		w := NewWorld(Config{Seed: 2})
		ok := true
		w.Spawn("t", func(th *Thread) {
			var total Cycles
			for _, s := range steps {
				th.Advance(Cycles(s))
				total += Cycles(s)
				if th.Now() != total {
					ok = false
				}
			}
		})
		if err := w.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedStateNeedsNoLocking(t *testing.T) {
	// Cooperative scheduling means plain counters are safe across threads.
	w := NewWorld(Config{Seed: 1})
	counter := 0
	for i := 0; i < 8; i++ {
		w.Spawn("worker", func(th *Thread) {
			for j := 0; j < 1000; j++ {
				counter++
				th.Advance(1)
			}
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if counter != 8000 {
		t.Fatalf("counter = %d, want 8000", counter)
	}
}

func TestSnapshotMentionsThreads(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	w.Spawn("alpha", func(th *Thread) { th.Advance(1) })
	_ = w.Run()
	s := w.Snapshot()
	if len(s) == 0 {
		t.Fatal("empty snapshot")
	}
}

func TestYieldGivesTurnWithoutTime(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	var order []string
	w.Spawn("b-first-by-time", func(th *Thread) {
		th.Advance(5)
		order = append(order, "slow")
	})
	w.Spawn("yielder", func(th *Thread) {
		// Yield keeps the clock at 0 but re-enters the scheduler; the
		// lower-timestamp work still runs before anything at t=5.
		th.Yield()
		if th.Now() != 0 {
			t.Errorf("Yield advanced the clock to %d", th.Now())
		}
		th.Advance(10)
		order = append(order, "yielder")
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "slow" || order[1] != "yielder" {
		t.Fatalf("order = %v", order)
	}
}
