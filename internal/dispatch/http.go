package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"coherentleak/internal/harness"
)

// The worker protocol, mounted into the daemon's mux by Routes:
//
//	POST   /v1/workers                register {name} -> {workerId, ...}
//	GET    /v1/workers                list the live fleet
//	DELETE /v1/workers/{id}           deregister (leases reclaim at once)
//	POST   /v1/workers/{id}/lease     long-poll for one cell (200 grant | 204)
//	POST   /v1/workers/{id}/result    report a finished cell
//	POST   /v1/workers/{id}/heartbeat keep a busy worker alive
//
// A 404 from any {id} route means the fleet no longer knows the worker
// (expired, or the daemon restarted); the client re-registers.

// marshalConfig serializes a plan's machine config for the wire.
func marshalConfig(p harness.Plan) json.RawMessage {
	b, err := json.Marshal(p.Cfg)
	if err != nil {
		// machine.Config is a plain value struct; Marshal cannot fail.
		panic(fmt.Sprintf("dispatch: marshal config: %v", err))
	}
	return b
}

// registerRequest is the POST /v1/workers body.
type registerRequest struct {
	Name string `json:"name"`
}

// registerResponse tells a worker its identity and the fleet's timing
// contract (so clients need no local configuration to behave well).
type registerResponse struct {
	WorkerID        string `json:"workerId"`
	LeaseMillis     int64  `json:"leaseMillis"`
	WorkerTTLMillis int64  `json:"workerTtlMillis"`
	PollMillis      int64  `json:"pollMillis"`
}

// leaseRequest is the POST /v1/workers/{id}/lease body.
type leaseRequest struct {
	// WaitMillis caps the long-poll; <=0 uses the server default.
	WaitMillis int64 `json:"waitMillis"`
}

// resultResponse acknowledges a report.
type resultResponse struct {
	// Duplicate is true when the lease was already reclaimed or settled
	// and the result was dropped.
	Duplicate bool `json:"duplicate"`
}

type wireError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// defaultPollWait caps a long-poll with no explicit wait.
const defaultPollWait = 15 * time.Second

// Routes mounts the worker protocol onto mux.
func (f *Fleet) Routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/workers", f.handleRegister)
	mux.HandleFunc("GET /v1/workers", f.handleList)
	mux.HandleFunc("DELETE /v1/workers/{id}", f.handleDeregister)
	mux.HandleFunc("POST /v1/workers/{id}/lease", f.handleLease)
	mux.HandleFunc("POST /v1/workers/{id}/result", f.handleResult)
	mux.HandleFunc("POST /v1/workers/{id}/heartbeat", f.handleHeartbeat)
}

func (f *Fleet) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, wireError{Error: "request body: " + err.Error()})
			return
		}
	}
	id, err := f.Register(req.Name)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, wireError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, registerResponse{
		WorkerID:        id,
		LeaseMillis:     f.opts.LeaseTTL.Milliseconds(),
		WorkerTTLMillis: f.opts.WorkerTTL.Milliseconds(),
		PollMillis:      defaultPollWait.Milliseconds(),
	})
}

func (f *Fleet) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"workers": f.Workers()})
}

func (f *Fleet) handleDeregister(w http.ResponseWriter, r *http.Request) {
	if err := f.Deregister(r.PathValue("id")); err != nil {
		writeJSON(w, http.StatusNotFound, wireError{Error: err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (f *Fleet) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, wireError{Error: "request body: " + err.Error()})
			return
		}
	}
	wait := defaultPollWait
	if req.WaitMillis > 0 {
		wait = time.Duration(req.WaitMillis) * time.Millisecond
		if wait > time.Minute {
			wait = time.Minute
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	g, err := f.Lease(ctx, r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownWorker):
		writeJSON(w, http.StatusNotFound, wireError{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusServiceUnavailable, wireError{Error: err.Error()})
	case g == nil:
		w.WriteHeader(http.StatusNoContent)
	default:
		writeJSON(w, http.StatusOK, g)
	}
}

func (f *Fleet) handleResult(w http.ResponseWriter, r *http.Request) {
	var res Result
	if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
		writeJSON(w, http.StatusBadRequest, wireError{Error: "request body: " + err.Error()})
		return
	}
	dup, err := f.Complete(r.PathValue("id"), res)
	if errors.Is(err, ErrUnknownWorker) {
		writeJSON(w, http.StatusNotFound, wireError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resultResponse{Duplicate: dup})
}

func (f *Fleet) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if err := f.Heartbeat(r.PathValue("id")); err != nil {
		writeJSON(w, http.StatusNotFound, wireError{Error: err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
