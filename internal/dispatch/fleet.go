// Package dispatch is the scale-out execution subsystem: a coordinator
// (Fleet) that farms harness cells out to a fleet of worker processes
// over a long-poll HTTP+JSON protocol, and the worker client that
// executes them against the same deterministic simulator.
//
// The Fleet implements harness.Dispatcher, so the existing Runner
// executes through it unchanged: the Runner keeps its deterministic
// assembly (results are keyed by cell index, so the TSV bytes cannot
// depend on which worker ran what), and the cell cache is consulted
// before dispatch, so cached cells never ship anywhere.
//
// Fault model: every dispatched cell is covered by a lease with a
// deadline. A worker that crashes, hangs, or falls off the network
// simply stops completing (and heartbeating); the reaper reclaims its
// leases and requeues the cells for other workers, bounded by
// MaxAttempts, after which the cell falls back to in-process execution
// so a job always completes. A late result for a reclaimed lease is
// dropped as a duplicate — the first accepted result wins, and because
// the simulator is deterministic, any accepted result is the right one.
// When no live workers are attached, dispatch degrades to the local
// pool (bounded by LocalParallel), so the fleet is always safe to leave
// enabled.
package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"coherentleak/internal/harness"
)

// Observer receives fleet lifecycle callbacks for metrics. All methods
// may be called concurrently; implementations must be safe. A nil
// Observer disables observation.
type Observer interface {
	// WorkerJoined fires on registration.
	WorkerJoined(worker string)
	// WorkerLeft fires on deregistration or heartbeat expiry.
	WorkerLeft(worker, reason string)
	// WorkerResult fires when a worker's result is accepted.
	// Seconds measures dispatch latency: enqueue to accepted result.
	WorkerResult(worker string, failed bool, seconds float64)
	// LeaseReclaimed fires when a lease passes its deadline (or its
	// worker dies) and the cell is taken back.
	LeaseReclaimed(worker string)
	// DuplicateResult fires when a result arrives for a lease that no
	// longer exists (reclaimed, or its task already settled).
	DuplicateResult(worker string)
	// LocalFallback fires when a cell executes in-process because no
	// workers are live or its worker attempts were exhausted.
	LocalFallback()
}

// Options tunes a Fleet. Zero values pick production defaults.
type Options struct {
	// LeaseTTL is how long a worker holds a cell before the reaper
	// reclaims it; <=0 means 90s. Heartbeats keep a *worker* alive but
	// never extend a lease: a cell slower than the TTL is re-dispatched
	// and, once MaxAttempts is exhausted, runs locally.
	LeaseTTL time.Duration
	// WorkerTTL expires a worker that neither polls, heartbeats, nor
	// reports within it; <=0 means 3×LeaseTTL.
	WorkerTTL time.Duration
	// MaxAttempts bounds worker executions per cell before the local
	// fallback; <=0 means 3.
	MaxAttempts int
	// LocalParallel bounds concurrent in-process fallback executions;
	// <=0 means GOMAXPROCS.
	LocalParallel int
	// Observer receives metrics callbacks; nil discards them.
	Observer Observer
	// Log receives one line per fleet lifecycle event; nil discards.
	Log io.Writer
}

func (o Options) withDefaults() Options {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 90 * time.Second
	}
	if o.WorkerTTL <= 0 {
		o.WorkerTTL = 3 * o.LeaseTTL
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.LocalParallel <= 0 {
		o.LocalParallel = runtime.GOMAXPROCS(0)
	}
	return o
}

// ErrUnknownWorker rejects lease/result/heartbeat calls from a worker
// the fleet does not know (expired or a daemon restart); the worker
// client re-registers on it.
var ErrUnknownWorker = errors.New("dispatch: unknown worker")

// errClosed rejects operations after Close.
var errClosed = errors.New("dispatch: fleet closed")

// taskResult settles one dispatched cell.
type taskResult struct {
	out    harness.CellOutput
	worker string
	err    error
	// runLocal directs the waiting Dispatch call to execute the cell
	// in-process (attempts exhausted, or the fleet emptied out).
	runLocal bool
}

// task is one cell in flight through the fleet.
type task struct {
	spec     harness.CellTask
	attempt  int // worker executions so far
	enqueued time.Time
	result   chan taskResult // buffered 1; guarded by settled
	settled  bool            // result delivered or dispatch abandoned; fleet.mu
}

// lease is one task checked out by one worker.
type lease struct {
	id       string
	task     *task
	workerID string
	deadline time.Time
}

// workerState tracks one registered worker.
type workerState struct {
	id         string
	name       string
	registered time.Time
	lastSeen   time.Time
	inflight   int
	cells      uint64 // accepted ok results
	failures   uint64 // accepted failed results
	reclaims   uint64 // leases taken back from this worker
}

// waiter is a long-polling worker parked until a task arrives.
type waiter struct {
	workerID string
	ch       chan *Grant // buffered 1
}

// Grant is one leased cell, in the shape the HTTP layer serializes to a
// worker: the worker re-derives the cell from its own registry.
type Grant struct {
	LeaseID      string          `json:"leaseId"`
	Artifact     string          `json:"artifact"`
	Cell         string          `json:"cell"`
	Index        int             `json:"index"`
	Attempt      int             `json:"attempt"`
	Seed         uint64          `json:"seed"`
	Sizing       string          `json:"sizing"`
	Config       json.RawMessage `json:"config"`
	ConfigDigest string          `json:"configDigest"`
	LeaseMillis  int64           `json:"leaseMillis"`
	// Kernel carries the plan's access-stream kernel selection. It rides
	// outside Config because machine.Config excludes the field from JSON
	// (it is digest-exempt: both kernels produce identical bytes), yet a
	// worker should default to the coordinator's choice.
	Kernel string `json:"kernel,omitempty"`
}

// Fleet is the coordinator: it owns the worker registry, the pending
// task queue, and the lease table, and implements harness.Dispatcher.
type Fleet struct {
	opts     Options
	localSem chan struct{}

	mu         sync.Mutex
	workers    map[string]*workerState
	queue      []*task   // pending, FIFO; reclaimed tasks go to the front
	waiters    []*waiter // parked long-polls, FIFO
	leases     map[string]*lease
	workerSeq  int
	leaseSeq   int
	closed     bool
	reaperStop chan struct{}
}

// NewFleet starts a fleet coordinator with its lease reaper running.
func NewFleet(opts Options) *Fleet {
	opts = opts.withDefaults()
	f := &Fleet{
		opts:       opts,
		localSem:   make(chan struct{}, opts.LocalParallel),
		workers:    make(map[string]*workerState),
		leases:     make(map[string]*lease),
		reaperStop: make(chan struct{}),
	}
	interval := opts.LeaseTTL / 4
	if interval > time.Second {
		interval = time.Second
	}
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	go f.reaper(interval)
	return f
}

// Close stops the reaper and fails future worker calls. Pending
// dispatches settle via the local fallback.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	close(f.reaperStop)
	// Settle everything still in the fleet locally so no Dispatch call
	// is left hanging on a worker that will never answer.
	for _, t := range f.queue {
		f.settleLocked(t, taskResult{runLocal: true})
	}
	f.queue = nil
	for id, l := range f.leases {
		delete(f.leases, id)
		f.settleLocked(l.task, taskResult{runLocal: true})
	}
	for _, w := range f.waiters {
		close(w.ch)
	}
	f.waiters = nil
	f.mu.Unlock()
}

func (f *Fleet) logf(format string, args ...any) {
	if f.opts.Log != nil {
		fmt.Fprintf(f.opts.Log, "dispatch: "+format+"\n", args...)
	}
}

// observe invokes one Observer callback if an observer is attached.
func (f *Fleet) observe(fn func(Observer)) {
	if f.opts.Observer != nil {
		fn(f.opts.Observer)
	}
}

// Dispatch implements harness.Dispatcher: the cell is executed by a
// live worker when one is attached, with lease-based recovery, and
// in-process otherwise. It blocks until the cell settles or ctx ends.
func (f *Fleet) Dispatch(ctx context.Context, t harness.CellTask) (harness.CellOutput, string, error) {
	f.mu.Lock()
	if f.closed || len(f.workers) == 0 {
		f.mu.Unlock()
		return f.runLocal(ctx, t)
	}
	tk := &task{spec: t, enqueued: time.Now(), result: make(chan taskResult, 1)}
	f.enqueueLocked(tk, false)
	f.mu.Unlock()

	select {
	case res := <-tk.result:
		if res.runLocal {
			return f.runLocal(ctx, t)
		}
		return res.out, res.worker, res.err
	case <-ctx.Done():
		// Abandon: mark settled so a late lease result is dropped and
		// the queue entry is skipped when a worker would lease it.
		f.mu.Lock()
		tk.settled = true
		f.mu.Unlock()
		return harness.CellOutput{}, "", ctx.Err()
	}
}

// runLocal executes the cell in-process, bounded by LocalParallel.
func (f *Fleet) runLocal(ctx context.Context, t harness.CellTask) (harness.CellOutput, string, error) {
	f.observe(func(o Observer) { o.LocalFallback() })
	select {
	case f.localSem <- struct{}{}:
	case <-ctx.Done():
		return harness.CellOutput{}, "", ctx.Err()
	}
	defer func() { <-f.localSem }()
	out, err := t.Run()
	return out, "", err
}

// enqueueLocked hands the task to a parked waiter, or queues it.
// front=true puts a reclaimed task ahead of fresh ones.
func (f *Fleet) enqueueLocked(tk *task, front bool) {
	for len(f.waiters) > 0 {
		w := f.waiters[0]
		f.waiters = f.waiters[1:]
		ws := f.workers[w.workerID]
		if ws == nil {
			close(w.ch)
			continue
		}
		w.ch <- f.grantLocked(tk, ws)
		return
	}
	if front {
		f.queue = append([]*task{tk}, f.queue...)
	} else {
		f.queue = append(f.queue, tk)
	}
}

// grantLocked creates a lease binding the task to the worker.
func (f *Fleet) grantLocked(tk *task, w *workerState) *Grant {
	f.leaseSeq++
	l := &lease{
		id:       fmt.Sprintf("lease-%08d", f.leaseSeq),
		task:     tk,
		workerID: w.id,
		deadline: time.Now().Add(f.opts.LeaseTTL),
	}
	f.leases[l.id] = l
	w.inflight++
	tk.attempt++
	return &Grant{
		LeaseID:      l.id,
		Artifact:     tk.spec.Artifact,
		Cell:         tk.spec.Cell,
		Index:        tk.spec.Index,
		Attempt:      tk.attempt,
		Seed:         tk.spec.Plan.Seed,
		Sizing:       string(tk.spec.Plan.Sizing),
		Config:       marshalConfig(tk.spec.Plan),
		ConfigDigest: tk.spec.ConfigDigest,
		LeaseMillis:  f.opts.LeaseTTL.Milliseconds(),
		Kernel:       tk.spec.Plan.Cfg.Kernel,
	}
}

// settleLocked delivers a result to the waiting Dispatch call exactly
// once. Caller holds f.mu.
func (f *Fleet) settleLocked(tk *task, res taskResult) bool {
	if tk.settled {
		return false
	}
	tk.settled = true
	tk.result <- res
	return true
}

// Register admits a worker and returns its fleet ID.
func (f *Fleet) Register(name string) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return "", errClosed
	}
	f.workerSeq++
	id := fmt.Sprintf("w-%06d", f.workerSeq)
	if name == "" {
		name = id
	}
	now := time.Now()
	f.workers[id] = &workerState{id: id, name: name, registered: now, lastSeen: now}
	f.observe(func(o Observer) { o.WorkerJoined(name) })
	f.logf("worker %s (%s) joined", name, id)
	return id, nil
}

// Deregister removes a worker; its leases are reclaimed immediately.
func (f *Fleet) Deregister(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	w := f.workers[id]
	if w == nil {
		return ErrUnknownWorker
	}
	f.removeWorkerLocked(w, "deregistered")
	return nil
}

// Heartbeat refreshes a worker's liveness (used by workers while a long
// cell executes, when no poll loop is touching the fleet).
func (f *Fleet) Heartbeat(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	w := f.workers[id]
	if w == nil {
		return ErrUnknownWorker
	}
	w.lastSeen = time.Now()
	return nil
}

// Lease checks out the next pending cell for the worker, long-polling
// until ctx ends. A nil Grant with nil error means "no work yet".
func (f *Fleet) Lease(ctx context.Context, workerID string) (*Grant, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, errClosed
	}
	w := f.workers[workerID]
	if w == nil {
		f.mu.Unlock()
		return nil, ErrUnknownWorker
	}
	w.lastSeen = time.Now()
	// Skip abandoned tasks sitting at the head of the queue.
	for len(f.queue) > 0 {
		tk := f.queue[0]
		f.queue = f.queue[1:]
		if tk.settled {
			continue
		}
		g := f.grantLocked(tk, w)
		f.mu.Unlock()
		return g, nil
	}
	wt := &waiter{workerID: workerID, ch: make(chan *Grant, 1)}
	f.waiters = append(f.waiters, wt)
	f.mu.Unlock()

	select {
	case g, ok := <-wt.ch:
		if !ok {
			// The waiter was detached: fleet shutdown, or this worker
			// was expired/deregistered while parked.
			f.mu.Lock()
			closed := f.closed
			f.mu.Unlock()
			if closed {
				return nil, errClosed
			}
			return nil, ErrUnknownWorker
		}
		return g, nil
	case <-ctx.Done():
		f.mu.Lock()
		for i, other := range f.waiters {
			if other == wt {
				f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
				break
			}
		}
		// A grant may have raced the timeout; it is already leased to
		// this worker, so hand it over rather than reclaim it.
		select {
		case g := <-wt.ch:
			if w := f.workers[workerID]; w != nil {
				w.lastSeen = time.Now()
			}
			f.mu.Unlock()
			return g, nil
		default:
		}
		f.mu.Unlock()
		return nil, nil
	}
}

// Result is a worker's report for one lease.
type Result struct {
	LeaseID    string   `json:"leaseId"`
	Rows       []string `json:"rows"`
	Summary    []string `json:"summary,omitempty"`
	WallMillis float64  `json:"wallMillis"`
	// Error carries a structured cell failure (panic or cell error on
	// the worker). A reported failure is terminal for the cell: the
	// simulator is deterministic, so retrying elsewhere cannot help.
	Error string `json:"error,omitempty"`
}

// Complete accepts a worker's result. A result for a reclaimed or
// settled lease reports duplicate=true and is dropped — the first
// accepted result won.
func (f *Fleet) Complete(workerID string, res Result) (duplicate bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	w := f.workers[workerID]
	if w == nil {
		return false, ErrUnknownWorker
	}
	w.lastSeen = time.Now()
	l := f.leases[res.LeaseID]
	if l == nil || l.task.settled {
		if l != nil {
			delete(f.leases, res.LeaseID)
			w.inflight--
		}
		f.observe(func(o Observer) { o.DuplicateResult(w.name) })
		f.logf("worker %s: dropped duplicate result for %s", w.name, res.LeaseID)
		return true, nil
	}
	delete(f.leases, res.LeaseID)
	w.inflight--
	tk := l.task
	tr := taskResult{worker: w.name}
	if res.Error != "" {
		w.failures++
		tr.err = fmt.Errorf("%s/%s: worker %s: %s", tk.spec.Artifact, tk.spec.Cell, w.name, res.Error)
	} else {
		w.cells++
		tr.out = harness.CellOutput{Rows: res.Rows, Summary: res.Summary}
	}
	f.settleLocked(tk, tr)
	f.observe(func(o Observer) {
		o.WorkerResult(w.name, res.Error != "", time.Since(tk.enqueued).Seconds())
	})
	return false, nil
}

// reaper periodically reclaims expired leases and expired workers.
func (f *Fleet) reaper(interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-f.reaperStop:
			return
		case <-tick.C:
			f.reapOnce(time.Now())
		}
	}
}

// reapOnce runs one reaper pass at the given instant (exported to the
// package's tests via fleet_test.go so fault injection is deterministic).
func (f *Fleet) reapOnce(now time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	// Expired workers first: their leases reclaim in one sweep.
	for _, w := range f.workers {
		if now.Sub(w.lastSeen) > f.opts.WorkerTTL {
			f.removeWorkerLocked(w, "heartbeat expired")
		}
	}
	// Then individually expired leases (worker alive but cell overdue).
	for id, l := range f.leases {
		if now.After(l.deadline) {
			delete(f.leases, id)
			if w := f.workers[l.workerID]; w != nil {
				w.inflight--
				w.reclaims++
			}
			f.reclaimLocked(l, "lease deadline passed")
		}
	}
	// A non-empty queue with no one to serve it runs locally.
	if len(f.workers) == 0 {
		f.flushQueueLocked()
	}
}

// removeWorkerLocked drops a worker and reclaims everything it held.
func (f *Fleet) removeWorkerLocked(w *workerState, reason string) {
	delete(f.workers, w.id)
	f.observe(func(o Observer) { o.WorkerLeft(w.name, reason) })
	f.logf("worker %s (%s) left: %s", w.name, w.id, reason)
	for id, l := range f.leases {
		if l.workerID == w.id {
			delete(f.leases, id)
			w.reclaims++
			f.reclaimLocked(l, reason)
		}
	}
	// Detach any parked long-poll for this worker.
	kept := f.waiters[:0]
	for _, wt := range f.waiters {
		if wt.workerID == w.id {
			close(wt.ch)
			continue
		}
		kept = append(kept, wt)
	}
	f.waiters = kept
	if len(f.workers) == 0 {
		f.flushQueueLocked()
	}
}

// reclaimLocked takes a cell back from a dead lease: requeue ahead of
// fresh work, or fall back to local execution once attempts run out.
func (f *Fleet) reclaimLocked(l *lease, reason string) {
	tk := l.task
	name := l.workerID
	if w := f.workers[l.workerID]; w != nil {
		name = w.name
	}
	f.observe(func(o Observer) { o.LeaseReclaimed(name) })
	f.logf("reclaimed %s/%s from %s (attempt %d/%d): %s",
		tk.spec.Artifact, tk.spec.Cell, name, tk.attempt, f.opts.MaxAttempts, reason)
	if tk.settled {
		return
	}
	if tk.attempt >= f.opts.MaxAttempts {
		f.settleLocked(tk, taskResult{runLocal: true})
		return
	}
	f.enqueueLocked(tk, true)
}

// flushQueueLocked settles every pending task locally (no live workers).
func (f *Fleet) flushQueueLocked() {
	for _, tk := range f.queue {
		f.settleLocked(tk, taskResult{runLocal: true})
	}
	f.queue = f.queue[:0]
}

// Stats is a point-in-time fleet snapshot for gauges.
type Stats struct {
	LiveWorkers    int
	LeasesInFlight int
	QueueDepth     int
}

// Stats samples the fleet for the metrics endpoint.
func (f *Fleet) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	pending := 0
	for _, tk := range f.queue {
		if !tk.settled {
			pending++
		}
	}
	return Stats{LiveWorkers: len(f.workers), LeasesInFlight: len(f.leases), QueueDepth: pending}
}

// WorkerView is one worker in the GET /v1/workers listing.
type WorkerView struct {
	ID         string    `json:"id"`
	Name       string    `json:"name"`
	State      string    `json:"state"` // "idle" or "busy"
	InFlight   int       `json:"inFlight"`
	Cells      uint64    `json:"cells"`
	Failures   uint64    `json:"failures"`
	Reclaims   uint64    `json:"reclaims"`
	Registered time.Time `json:"registered"`
	LastSeen   time.Time `json:"lastSeen"`
}

// Workers lists the live fleet in registration order.
func (f *Fleet) Workers() []WorkerView {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]WorkerView, 0, len(f.workers))
	for _, w := range f.workers {
		state := "idle"
		if w.inflight > 0 {
			state = "busy"
		}
		out = append(out, WorkerView{
			ID: w.id, Name: w.name, State: state, InFlight: w.inflight,
			Cells: w.cells, Failures: w.failures, Reclaims: w.reclaims,
			Registered: w.registered, LastSeen: w.lastSeen,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
