package dispatch

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"coherentleak/internal/harness"
)

// recObs is a thread-safe Observer recording every fleet callback.
type recObs struct {
	mu       sync.Mutex
	joined   []string
	left     []string // "name/reason"
	results  int
	failed   int
	reclaims int
	dups     int
	local    int
}

func (o *recObs) WorkerJoined(name string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.joined = append(o.joined, name)
}

func (o *recObs) WorkerLeft(name, reason string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.left = append(o.left, name+"/"+reason)
}

func (o *recObs) WorkerResult(name string, failed bool, seconds float64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.results++
	if failed {
		o.failed++
	}
}

func (o *recObs) LeaseReclaimed(string)  { o.mu.Lock(); defer o.mu.Unlock(); o.reclaims++ }
func (o *recObs) DuplicateResult(string) { o.mu.Lock(); defer o.mu.Unlock(); o.dups++ }
func (o *recObs) LocalFallback()         { o.mu.Lock(); defer o.mu.Unlock(); o.local++ }

func (o *recObs) snapshot() (reclaims, dups, local int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.reclaims, o.dups, o.local
}

// spec builds a dispatchable cell whose in-process body returns a
// deterministic row.
func spec(cell string, idx int) harness.CellTask {
	plan := harness.Plan{Seed: 7, Sizing: harness.SizingQuick}
	return harness.CellTask{
		Plan:         plan,
		ConfigDigest: plan.ConfigDigest(),
		Artifact:     "art",
		Cell:         cell,
		Index:        idx,
		Run: func() (harness.CellOutput, error) {
			return harness.CellOutput{Rows: []string{cell + "\tlocal"}}, nil
		},
	}
}

// quietOpts keeps both TTLs far away so the background reaper (which
// runs on wall-clock time) never interferes; tests inject faults by
// back-dating leases/workers and calling reapOnce directly.
func quietOpts(obs Observer) Options {
	return Options{LeaseTTL: time.Hour, WorkerTTL: time.Hour, Observer: obs}
}

type dispatchResult struct {
	out    harness.CellOutput
	worker string
	err    error
}

// dispatchAsync runs Dispatch in a goroutine and returns its result chan.
func dispatchAsync(ctx context.Context, f *Fleet, t harness.CellTask) <-chan dispatchResult {
	ch := make(chan dispatchResult, 1)
	go func() {
		out, worker, err := f.Dispatch(ctx, t)
		ch <- dispatchResult{out, worker, err}
	}()
	return ch
}

func waitDispatch(t *testing.T, ch <-chan dispatchResult) dispatchResult {
	t.Helper()
	select {
	case r := <-ch:
		return r
	case <-time.After(10 * time.Second):
		t.Fatal("dispatch did not settle")
		return dispatchResult{}
	}
}

// mustLease checks out one grant, failing if none arrives in time.
func mustLease(t *testing.T, f *Fleet, workerID string) *Grant {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	g, err := f.Lease(ctx, workerID)
	if err != nil {
		t.Fatalf("lease for %s: %v", workerID, err)
	}
	if g == nil {
		t.Fatalf("lease for %s: long-poll expired without a grant", workerID)
	}
	return g
}

// backdateLease moves a held lease's deadline into the past.
func backdateLease(f *Fleet, leaseID string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if l := f.leases[leaseID]; l != nil {
		l.deadline = time.Now().Add(-time.Second)
	}
}

// backdateWorker makes a worker look silent for longer than WorkerTTL.
func backdateWorker(f *Fleet, workerID string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if w := f.workers[workerID]; w != nil {
		w.lastSeen = time.Now().Add(-2 * f.opts.WorkerTTL)
	}
}

// TestDispatchWorkerRoundTrip: a parked long-poll receives the grant,
// the worker's result settles the dispatch, and the grant carries
// everything a remote executor needs to re-derive the cell.
func TestDispatchWorkerRoundTrip(t *testing.T) {
	obs := &recObs{}
	f := NewFleet(quietOpts(obs))
	defer f.Close()
	id, err := f.Register("w1")
	if err != nil {
		t.Fatal(err)
	}

	// Park the worker first so the grant flows through the waiter path.
	type leased struct {
		g   *Grant
		err error
	}
	leaseCh := make(chan leased, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		g, err := f.Lease(ctx, id)
		leaseCh <- leased{g, err}
	}()

	task := spec("c0", 0)
	resCh := dispatchAsync(context.Background(), f, task)

	l := <-leaseCh
	if l.err != nil || l.g == nil {
		t.Fatalf("lease = %+v, %v", l.g, l.err)
	}
	g := l.g
	if g.Artifact != "art" || g.Cell != "c0" || g.Attempt != 1 ||
		g.Seed != 7 || g.Sizing != string(harness.SizingQuick) ||
		g.ConfigDigest != task.ConfigDigest || len(g.Config) == 0 {
		t.Fatalf("grant = %+v", g)
	}
	if _, err := f.Complete(id, Result{LeaseID: g.LeaseID, Rows: []string{"c0\tremote"}, Summary: []string{"s"}}); err != nil {
		t.Fatal(err)
	}

	r := waitDispatch(t, resCh)
	if r.err != nil || r.worker != "w1" || len(r.out.Rows) != 1 || r.out.Rows[0] != "c0\tremote" {
		t.Fatalf("dispatch = %+v", r)
	}
	if _, _, local := obs.snapshot(); local != 0 {
		t.Fatal("round trip should not touch the local fallback")
	}
	ws := f.Workers()
	if len(ws) != 1 || ws[0].Cells != 1 || ws[0].InFlight != 0 || ws[0].State != "idle" {
		t.Fatalf("workers = %+v", ws)
	}
}

// TestDispatchNoWorkersRunsLocal: an empty fleet degrades to in-process
// execution.
func TestDispatchNoWorkersRunsLocal(t *testing.T) {
	obs := &recObs{}
	f := NewFleet(quietOpts(obs))
	defer f.Close()
	r := waitDispatch(t, dispatchAsync(context.Background(), f, spec("c0", 0)))
	if r.err != nil || r.worker != "" || r.out.Rows[0] != "c0\tlocal" {
		t.Fatalf("dispatch = %+v", r)
	}
	if _, _, local := obs.snapshot(); local != 1 {
		t.Fatalf("local fallbacks = %d, want 1", local)
	}
}

// TestSlowWorkerLeaseReclaimedAndRetried is the slow-worker fault: a
// worker holds a cell past its lease deadline, the reaper reclaims it,
// another worker retries it, and the slow worker's late result is
// dropped as a duplicate.
func TestSlowWorkerLeaseReclaimedAndRetried(t *testing.T) {
	obs := &recObs{}
	f := NewFleet(quietOpts(obs))
	defer f.Close()
	slow, _ := f.Register("slow")
	fast, _ := f.Register("fast")

	resCh := dispatchAsync(context.Background(), f, spec("c0", 0))
	gSlow := mustLease(t, f, slow) // slow worker checks the cell out and stalls

	backdateLease(f, gSlow.LeaseID)
	f.reapOnce(time.Now())

	gFast := mustLease(t, f, fast) // reclaimed cell is re-leased
	if gFast.Cell != "c0" || gFast.Attempt != 2 {
		t.Fatalf("retry grant = %+v", gFast)
	}
	if _, err := f.Complete(fast, Result{LeaseID: gFast.LeaseID, Rows: []string{"c0\tfast"}}); err != nil {
		t.Fatal(err)
	}
	r := waitDispatch(t, resCh)
	if r.err != nil || r.worker != "fast" || r.out.Rows[0] != "c0\tfast" {
		t.Fatalf("dispatch = %+v", r)
	}

	// The slow worker finally finishes: its result must be dropped.
	dup, err := f.Complete(slow, Result{LeaseID: gSlow.LeaseID, Rows: []string{"c0\tslow"}})
	if err != nil || !dup {
		t.Fatalf("late result: dup=%v err=%v, want dup=true", dup, err)
	}
	reclaims, dups, local := obs.snapshot()
	if reclaims != 1 || dups != 1 || local != 0 {
		t.Fatalf("observer: reclaims=%d dups=%d local=%d", reclaims, dups, local)
	}
	for _, w := range f.Workers() {
		if w.Name == "slow" && w.Reclaims != 1 {
			t.Fatalf("slow worker reclaims = %d, want 1", w.Reclaims)
		}
	}
}

// TestWorkerKilledMidCell is the killed-worker fault: the worker stops
// heartbeating entirely, so worker expiry (not just the lease deadline)
// reclaims its cell, and a surviving worker completes it.
func TestWorkerKilledMidCell(t *testing.T) {
	obs := &recObs{}
	f := NewFleet(quietOpts(obs))
	defer f.Close()
	dead, _ := f.Register("dead")
	live, _ := f.Register("live")

	resCh := dispatchAsync(context.Background(), f, spec("c0", 0))
	g := mustLease(t, f, dead)

	backdateWorker(f, dead) // the process is gone: no polls, no heartbeats
	f.reapOnce(time.Now())

	if err := f.Heartbeat(dead); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("heartbeat after expiry: %v, want ErrUnknownWorker", err)
	}
	if got := f.Workers(); len(got) != 1 || got[0].Name != "live" {
		t.Fatalf("workers = %+v, want only live", got)
	}

	g2 := mustLease(t, f, live)
	if g2.Cell != "c0" || g2.Attempt != 2 {
		t.Fatalf("retry grant = %+v", g2)
	}
	if _, err := f.Complete(live, Result{LeaseID: g2.LeaseID, Rows: []string{"c0\tlive"}}); err != nil {
		t.Fatal(err)
	}
	r := waitDispatch(t, resCh)
	if r.err != nil || r.worker != "live" {
		t.Fatalf("dispatch = %+v", r)
	}

	// The dead worker's ghost reports back anyway: unknown worker, and
	// the grant it held no longer exists.
	if _, err := f.Complete(dead, Result{LeaseID: g.LeaseID}); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("ghost result: %v, want ErrUnknownWorker", err)
	}
	obs.mu.Lock()
	left := strings.Join(obs.left, ",")
	obs.mu.Unlock()
	if !strings.Contains(left, "dead/heartbeat expired") {
		t.Fatalf("WorkerLeft events = %q", left)
	}
}

// TestMaxAttemptsFallsBackToLocal: after MaxAttempts worker executions
// are reclaimed, the cell runs in-process so the job still completes.
func TestMaxAttemptsFallsBackToLocal(t *testing.T) {
	obs := &recObs{}
	opts := quietOpts(obs)
	opts.MaxAttempts = 2
	f := NewFleet(opts)
	defer f.Close()
	id, _ := f.Register("flaky")

	resCh := dispatchAsync(context.Background(), f, spec("c0", 0))
	for attempt := 1; attempt <= 2; attempt++ {
		g := mustLease(t, f, id)
		if g.Attempt != attempt {
			t.Fatalf("grant attempt = %d, want %d", g.Attempt, attempt)
		}
		backdateLease(f, g.LeaseID)
		f.reapOnce(time.Now())
	}
	r := waitDispatch(t, resCh)
	if r.err != nil || r.worker != "" || r.out.Rows[0] != "c0\tlocal" {
		t.Fatalf("dispatch = %+v, want local fallback", r)
	}
	reclaims, _, local := obs.snapshot()
	if reclaims != 2 || local != 1 {
		t.Fatalf("observer: reclaims=%d local=%d, want 2 and 1", reclaims, local)
	}
}

// TestAllWorkersDeadFlushesQueue: queued cells whose whole fleet died
// run locally instead of waiting for a worker that will never poll.
func TestAllWorkersDeadFlushesQueue(t *testing.T) {
	obs := &recObs{}
	f := NewFleet(quietOpts(obs))
	defer f.Close()
	id, _ := f.Register("only")

	resCh := dispatchAsync(context.Background(), f, spec("c0", 0))
	// Give the dispatch time to enqueue (the worker never polls).
	waitUntil(t, func() bool { return f.Stats().QueueDepth == 1 })

	backdateWorker(f, id)
	f.reapOnce(time.Now())

	r := waitDispatch(t, resCh)
	if r.err != nil || r.worker != "" || r.out.Rows[0] != "c0\tlocal" {
		t.Fatalf("dispatch = %+v, want local fallback", r)
	}
	if s := f.Stats(); s.LiveWorkers != 0 || s.QueueDepth != 0 || s.LeasesInFlight != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestWorkerFailureIsTerminal: a structured failure reported by a
// worker fails the cell without retry (the simulator is deterministic,
// so re-running elsewhere cannot change the outcome).
func TestWorkerFailureIsTerminal(t *testing.T) {
	obs := &recObs{}
	f := NewFleet(quietOpts(obs))
	defer f.Close()
	id, _ := f.Register("w1")

	resCh := dispatchAsync(context.Background(), f, spec("c0", 0))
	g := mustLease(t, f, id)
	if _, err := f.Complete(id, Result{LeaseID: g.LeaseID, Error: "panic: boom"}); err != nil {
		t.Fatal(err)
	}
	r := waitDispatch(t, resCh)
	if r.err == nil || !strings.Contains(r.err.Error(), "panic: boom") || r.worker != "w1" {
		t.Fatalf("dispatch = %+v, want worker failure", r)
	}
	reclaims, _, local := obs.snapshot()
	if reclaims != 0 || local != 0 {
		t.Fatalf("failure must not trigger retry: reclaims=%d local=%d", reclaims, local)
	}
}

// TestDispatchCancelAbandonsCell: a cancelled dispatch leaves no debris
// — the queued task is skipped by the next lease, and a later result
// for it is dropped as a duplicate.
func TestDispatchCancelAbandonsCell(t *testing.T) {
	obs := &recObs{}
	f := NewFleet(quietOpts(obs))
	defer f.Close()
	id, _ := f.Register("w1")

	ctx, cancel := context.WithCancel(context.Background())
	resCh := dispatchAsync(ctx, f, spec("c0", 0))
	waitUntil(t, func() bool { return f.Stats().QueueDepth == 1 })
	cancel()
	if r := waitDispatch(t, resCh); !errors.Is(r.err, context.Canceled) {
		t.Fatalf("dispatch err = %v, want context.Canceled", r.err)
	}

	// The abandoned task is skipped: the long-poll drains the queue and
	// then parks until its (short) deadline.
	shortCtx, scancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer scancel()
	g, err := f.Lease(shortCtx, id)
	if err != nil || g != nil {
		t.Fatalf("lease = %+v, %v, want no grant", g, err)
	}
	if s := f.Stats(); s.QueueDepth != 0 || s.LeasesInFlight != 0 {
		t.Fatalf("stats = %+v, want empty", s)
	}
}

// TestDeregisterWhileParkedReturnsUnknown: a worker whose registration
// vanishes while it is parked in a long-poll learns about it from the
// poll itself, so the client can re-register.
func TestDeregisterWhileParkedReturnsUnknown(t *testing.T) {
	f := NewFleet(quietOpts(nil))
	defer f.Close()
	id, _ := f.Register("w1")

	errCh := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, err := f.Lease(ctx, id)
		errCh <- err
	}()
	waitUntil(t, func() bool {
		f.mu.Lock()
		defer f.mu.Unlock()
		return len(f.waiters) == 1
	})
	if err := f.Deregister(id); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrUnknownWorker) {
			t.Fatalf("parked lease err = %v, want ErrUnknownWorker", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked lease did not return")
	}
}

// TestCloseSettlesEverythingLocally: shutdown must not strand dispatch
// calls — queued and leased cells all settle via the local fallback.
func TestCloseSettlesEverythingLocally(t *testing.T) {
	obs := &recObs{}
	f := NewFleet(quietOpts(obs))
	id, _ := f.Register("w1")

	leasedCh := dispatchAsync(context.Background(), f, spec("c0", 0))
	g := mustLease(t, f, id) // c0 is held by the worker
	_ = g
	queuedCh := dispatchAsync(context.Background(), f, spec("c1", 1))
	waitUntil(t, func() bool { return f.Stats().QueueDepth == 1 })

	f.Close()
	for i, ch := range []<-chan dispatchResult{leasedCh, queuedCh} {
		r := waitDispatch(t, ch)
		if r.err != nil || r.worker != "" {
			t.Fatalf("dispatch %d after close = %+v, want local", i, r)
		}
	}
	if _, err := f.Register("late"); !errors.Is(err, errClosed) {
		t.Fatalf("register after close: %v", err)
	}
}

// waitUntil polls cond until it holds or the test times out.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestManyCellsManyWorkers floods the fleet and checks accounting: every
// cell settles exactly once with the right row.
func TestManyCellsManyWorkers(t *testing.T) {
	f := NewFleet(quietOpts(nil))
	defer f.Close()
	const workers, cells = 4, 32
	var ids []string
	for i := 0; i < workers; i++ {
		id, err := f.Register(fmt.Sprintf("w%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Worker loops: lease, echo the cell name back, complete.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for ctx.Err() == nil {
				lctx, lcancel := context.WithTimeout(ctx, 100*time.Millisecond)
				g, err := f.Lease(lctx, id)
				lcancel()
				if err != nil || g == nil {
					continue
				}
				f.Complete(id, Result{LeaseID: g.LeaseID, Rows: []string{g.Cell + "\tdone"}})
			}
		}(id)
	}

	var chans []<-chan dispatchResult
	for i := 0; i < cells; i++ {
		chans = append(chans, dispatchAsync(context.Background(), f, spec(fmt.Sprintf("c%02d", i), i)))
	}
	for i, ch := range chans {
		r := waitDispatch(t, ch)
		want := fmt.Sprintf("c%02d\tdone", i)
		if r.err != nil || r.worker == "" || r.out.Rows[0] != want {
			t.Fatalf("cell %d = %+v, want row %q", i, r, want)
		}
	}
	cancel()
	wg.Wait()
	var total uint64
	for _, w := range f.Workers() {
		total += w.Cells
	}
	if total != cells {
		t.Fatalf("worker cell counters sum to %d, want %d", total, cells)
	}
}
