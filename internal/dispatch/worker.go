package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"coherentleak/internal/harness"
	"coherentleak/internal/machine"
)

// WorkerOptions configures a worker client.
type WorkerOptions struct {
	// Server is the coordinator's base URL, e.g. http://localhost:8080.
	Server string
	// Name identifies the worker in /v1/workers and SSE events; empty
	// lets the fleet assign one.
	Name string
	// Registry resolves leased (artifact, cell) names back to runnable
	// cells. It must match the coordinator's registry: a cell the worker
	// cannot resolve is reported as a structured failure.
	Registry *harness.Registry
	// Slots is the number of cells executed concurrently; <=0 means 1.
	Slots int
	// PollWait caps each long-poll; <=0 uses the server's suggestion.
	PollWait time.Duration
	// HTTPClient overrides the transport (tests); nil uses a client
	// with no overall timeout (long-polls hold connections open).
	HTTPClient *http.Client
	// Log receives one line per worker lifecycle event; nil discards.
	Log io.Writer
	// Kernel, when non-empty, forces this worker's access-stream kernel
	// (machine.KernelInterp or machine.KernelCompiled) regardless of the
	// grant's selection. The execution strategy is local to the worker:
	// either kernel produces byte-identical results, so mixed fleets are
	// sound. Empty follows the coordinator's plan.
	Kernel string
}

// Worker pulls leased cells from a Fleet coordinator over HTTP,
// executes them against the local registry, and reports results or
// structured failures. One Worker drives Slots concurrent executors.
type Worker struct {
	opts   WorkerOptions
	client *http.Client

	mu       sync.Mutex
	id       string
	pollWait time.Duration
	ttl      time.Duration

	// planCells memoizes planned cells per (digest, seed, sizing,
	// artifact): re-planning is cheap but leases for sibling cells of
	// the same artifact arrive in bursts.
	planMu    sync.Mutex
	planCache map[string][]harness.Cell
}

// NewWorker builds a worker client; Run drives it.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Server == "" {
		return nil, errors.New("dispatch: WorkerOptions.Server is required")
	}
	if opts.Registry == nil {
		return nil, errors.New("dispatch: WorkerOptions.Registry is required")
	}
	switch opts.Kernel {
	case "", machine.KernelInterp, machine.KernelCompiled:
	default:
		return nil, fmt.Errorf("dispatch: WorkerOptions.Kernel %q: want %q or %q", opts.Kernel, machine.KernelInterp, machine.KernelCompiled)
	}
	if opts.Slots <= 0 {
		opts.Slots = 1
	}
	client := opts.HTTPClient
	if client == nil {
		client = &http.Client{}
	}
	return &Worker{opts: opts, client: client, planCache: make(map[string][]harness.Cell)}, nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.opts.Log != nil {
		fmt.Fprintf(w.opts.Log, "worker: "+format+"\n", args...)
	}
}

// Run registers and serves leases until ctx ends, then deregisters.
// Transient coordinator failures retry with backoff; a 404 (the fleet
// forgot us — expiry or daemon restart) re-registers.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	hbCtx, hbCancel := context.WithCancel(ctx)
	var hbDone sync.WaitGroup
	hbDone.Add(1)
	go func() {
		defer hbDone.Done()
		w.heartbeatLoop(hbCtx)
	}()

	var wg sync.WaitGroup
	for i := 0; i < w.opts.Slots; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.serveLeases(ctx)
		}()
	}
	wg.Wait()
	hbCancel()
	hbDone.Wait()
	w.deregister()
	return ctx.Err()
}

// register (or re-register) with the coordinator, retrying until ctx
// ends.
func (w *Worker) register(ctx context.Context) error {
	backoff := 100 * time.Millisecond
	for {
		var resp registerResponse
		err := w.post(ctx, "/v1/workers", registerRequest{Name: w.opts.Name}, &resp)
		if err == nil {
			w.mu.Lock()
			w.id = resp.WorkerID
			w.pollWait = time.Duration(resp.PollMillis) * time.Millisecond
			if w.opts.PollWait > 0 {
				w.pollWait = w.opts.PollWait
			}
			w.ttl = time.Duration(resp.WorkerTTLMillis) * time.Millisecond
			w.mu.Unlock()
			w.logf("registered as %s with %s", resp.WorkerID, w.opts.Server)
			return nil
		}
		w.logf("register: %v (retrying in %s)", err, backoff)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 5*time.Second {
			backoff *= 2
		}
	}
}

func (w *Worker) workerID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// serveLeases is one slot's poll-execute-report loop.
func (w *Worker) serveLeases(ctx context.Context) {
	backoff := 100 * time.Millisecond
	for ctx.Err() == nil {
		w.mu.Lock()
		wait := w.pollWait
		w.mu.Unlock()
		if wait <= 0 {
			wait = defaultPollWait
		}
		var grant Grant
		status, err := w.postStatus(ctx, "/v1/workers/"+w.workerID()+"/lease",
			leaseRequest{WaitMillis: wait.Milliseconds()}, &grant)
		switch {
		case ctx.Err() != nil:
			return
		case status == http.StatusNotFound:
			// The fleet forgot us; re-register and carry on.
			if w.register(ctx) != nil {
				return
			}
			continue
		case err != nil:
			w.logf("lease: %v (retrying in %s)", err, backoff)
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			if backoff < 5*time.Second {
				backoff *= 2
			}
			continue
		case status == http.StatusNoContent:
			backoff = 100 * time.Millisecond
			continue
		}
		backoff = 100 * time.Millisecond
		res := w.execute(&grant)
		w.report(ctx, res)
	}
}

// execute resolves the leased cell against the registry and runs it.
// Any failure — unknown artifact or cell, config mismatch, cell error,
// panic — becomes a structured failure in the result.
func (w *Worker) execute(g *Grant) Result {
	res := Result{LeaseID: g.LeaseID}
	begin := time.Now()
	cell, err := w.resolve(g)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	out, err := runSafely(cell)
	res.WallMillis = float64(time.Since(begin)) / float64(time.Millisecond)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.Rows = out.Rows
	res.Summary = out.Summary
	return res
}

// resolve maps a grant to a runnable cell via the local registry.
func (w *Worker) resolve(g *Grant) (harness.Cell, error) {
	var zero harness.Cell
	art, ok := w.opts.Registry.Get(g.Artifact)
	if !ok {
		return zero, fmt.Errorf("unknown artifact %q (worker registry out of sync)", g.Artifact)
	}
	var cfg machine.Config
	if err := json.Unmarshal(g.Config, &cfg); err != nil {
		return zero, fmt.Errorf("decode config: %v", err)
	}
	// Kernel rides outside Config on the wire (digest-exempt); the
	// worker's own setting wins over the coordinator's. Only the kernel
	// field is validated here: the rest of the config is the
	// coordinator's responsibility (and test registries legitimately
	// run with minimal configs that full validation would reject).
	cfg.Kernel = g.Kernel
	if w.opts.Kernel != "" {
		cfg.Kernel = w.opts.Kernel
	}
	switch cfg.Kernel {
	case "", machine.KernelInterp, machine.KernelCompiled:
	default:
		return zero, fmt.Errorf("grant kernel %q: want %q or %q", cfg.Kernel, machine.KernelInterp, machine.KernelCompiled)
	}
	plan := harness.Plan{Cfg: cfg, Seed: g.Seed, Sizing: harness.Sizing(g.Sizing)}
	if d := plan.ConfigDigest(); d != g.ConfigDigest {
		return zero, fmt.Errorf("config digest mismatch: coordinator %s, worker %s", g.ConfigDigest, d)
	}
	// The config digest excludes the kernel, so it must be part of the
	// plan-cache key: cells capture their plan (kernel included) when
	// first built.
	key := g.ConfigDigest + "\x00" + cfg.Kernel + "\x00" + fmt.Sprint(g.Seed) + "\x00" + g.Sizing + "\x00" + g.Artifact
	w.planMu.Lock()
	cells, ok := w.planCache[key]
	w.planMu.Unlock()
	if !ok {
		var err error
		cells, err = art.Cells(plan)
		if err != nil {
			return zero, fmt.Errorf("planning cells for %s: %v", g.Artifact, err)
		}
		w.planMu.Lock()
		w.planCache[key] = cells
		w.planMu.Unlock()
	}
	for _, c := range cells {
		if c.Name == g.Cell {
			return c, nil
		}
	}
	return zero, fmt.Errorf("unknown cell %s/%s (worker registry out of sync)", g.Artifact, g.Cell)
}

// runSafely converts a cell panic into an error, mirroring the
// harness's own in-process protection.
func runSafely(c harness.Cell) (out harness.CellOutput, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	return c.Run()
}

// report delivers a result, retrying transient failures so a finished
// cell is not lost to one dropped connection. A 404 means the lease's
// worker is gone; re-register and drop the result (the lease was
// reclaimed with the worker, so the cell is already requeued).
func (w *Worker) report(ctx context.Context, res Result) {
	backoff := 100 * time.Millisecond
	for attempt := 0; attempt < 5; attempt++ {
		var ack resultResponse
		status, err := w.postStatus(ctx, "/v1/workers/"+w.workerID()+"/result", res, &ack)
		switch {
		case ctx.Err() != nil:
			return
		case status == http.StatusNotFound:
			w.logf("result for %s dropped: fleet forgot this worker", res.LeaseID)
			w.register(ctx)
			return
		case err == nil:
			if ack.Duplicate {
				w.logf("result for %s was a duplicate (lease reclaimed)", res.LeaseID)
			}
			return
		}
		w.logf("report: %v (retrying in %s)", err, backoff)
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

// heartbeatLoop keeps the worker alive while all slots are busy
// executing long cells (polling itself refreshes liveness otherwise).
func (w *Worker) heartbeatLoop(ctx context.Context) {
	for {
		w.mu.Lock()
		ttl := w.ttl
		w.mu.Unlock()
		interval := ttl / 3
		if interval <= 0 {
			interval = 5 * time.Second
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval):
		}
		status, err := w.postStatus(ctx, "/v1/workers/"+w.workerID()+"/heartbeat", nil, nil)
		if status == http.StatusNotFound {
			// Re-registration is the poll loop's job; just note it.
			w.logf("heartbeat: fleet forgot this worker")
		} else if err != nil && ctx.Err() == nil {
			w.logf("heartbeat: %v", err)
		}
	}
}

// deregister tells the fleet we are leaving; best-effort.
func (w *Worker) deregister() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, w.opts.Server+"/v1/workers/"+w.workerID(), nil)
	if err != nil {
		return
	}
	if resp, err := w.client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// post sends JSON and decodes a 2xx JSON response into out.
func (w *Worker) post(ctx context.Context, path string, body, out any) error {
	status, err := w.postStatus(ctx, path, body, out)
	if err == nil && status >= 300 {
		return fmt.Errorf("dispatch: POST %s: status %d", path, status)
	}
	return err
}

// postStatus sends JSON and returns the HTTP status; 2xx responses with
// a non-nil out are decoded. Non-2xx responses are drained and returned
// as (status, nil) so callers can branch on protocol-level outcomes.
func (w *Worker) postStatus(ctx context.Context, path string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Server+path, rd)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 && out != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("dispatch: POST %s: decode response: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}
