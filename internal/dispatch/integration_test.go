package dispatch

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"coherentleak/internal/experiments"
	"coherentleak/internal/harness"
	"coherentleak/internal/machine"
)

// blockOnce makes one cell of the test grid hang on its first
// execution only, simulating a worker that stalls (or dies) mid-cell;
// the retry sails through.
type blockOnce struct {
	index   int
	runs    atomic.Int64
	release chan struct{}
}

// gridRegistry registers "grid": cells cells whose rows are a pure
// function of (seed, index), so any executor produces identical bytes.
func gridRegistry(cells int, block *blockOnce) *harness.Registry {
	reg := harness.NewRegistry()
	reg.MustRegister(&harness.Artifact{
		Name: "grid", Description: "deterministic test grid",
		File: "grid.tsv", Header: "cell\tvalue",
		Cells: func(p harness.Plan) ([]harness.Cell, error) {
			out := make([]harness.Cell, cells)
			for i := range out {
				name := fmt.Sprintf("c%02d", i)
				out[i] = harness.Cell{Name: name, Run: func() (harness.CellOutput, error) {
					if block != nil && i == block.index && block.runs.Add(1) == 1 {
						<-block.release
					}
					return harness.CellOutput{
						Rows:    []string{fmt.Sprintf("%s\t%d", name, p.Seed*1000+uint64(i))},
						Summary: []string{name + " ok"},
					}, nil
				}}
			}
			return out, nil
		},
	})
	return reg
}

// startWorkers runs n dispatch.Worker clients against a coordinator URL
// and returns a stop function that shuts them down and waits.
func startWorkers(t *testing.T, url string, reg *harness.Registry, n int) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w, err := NewWorker(WorkerOptions{
			Server:   url,
			Name:     fmt.Sprintf("itw%d", i),
			Registry: reg,
			PollWait: 100 * time.Millisecond,
		})
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

// runThroughFleet executes the registry through a dispatching Runner
// and returns the assembled result plus the run report.
func runThroughFleet(t *testing.T, f *Fleet, reg *harness.Registry, plan harness.Plan) *harness.RunReport {
	t.Helper()
	r := &harness.Runner{Dispatcher: f}
	rep, err := r.Run(context.Background(), plan, reg.Artifacts())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// serialTSV is the ground truth: the same plan on a serial local runner.
func serialTSV(t *testing.T, reg *harness.Registry, plan harness.Plan) []byte {
	t.Helper()
	r := &harness.Runner{Parallel: 1}
	rep, err := r.Run(context.Background(), plan, reg.Artifacts())
	if err != nil {
		t.Fatal(err)
	}
	return rep.Results[0].TSV()
}

// TestHTTPWorkersByteIdentity drives the full wire path — Fleet behind
// an HTTP mux, real Worker clients long-polling it — and requires the
// assembled TSV to be byte-identical to a serial in-process run, with
// every cell executed remotely.
func TestHTTPWorkersByteIdentity(t *testing.T) {
	reg := gridRegistry(12, nil)
	obs := &recObs{}
	f := NewFleet(Options{LeaseTTL: time.Hour, WorkerTTL: time.Hour, Observer: obs})
	defer f.Close()
	mux := http.NewServeMux()
	f.Routes(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	stop := startWorkers(t, ts.URL, reg, 4)
	defer stop()
	waitUntil(t, func() bool { return f.Stats().LiveWorkers == 4 })

	plan := harness.Plan{Seed: 5, Sizing: harness.SizingQuick}
	rep := runThroughFleet(t, f, reg, plan)
	if got, want := rep.Results[0].TSV(), serialTSV(t, reg, plan); !bytes.Equal(got, want) {
		t.Fatalf("fleet TSV differs from serial run:\n got: %q\nwant: %q", got, want)
	}
	for _, c := range rep.Results[0].Cells {
		if c.Worker == "" {
			t.Fatalf("cell %s ran in-process; want a fleet worker", c.Cell)
		}
	}
	if reclaims, dups, local := obs.snapshot(); reclaims != 0 || dups != 0 || local != 0 {
		t.Fatalf("healthy fleet run: reclaims=%d dups=%d local=%d", reclaims, dups, local)
	}

	// Workers deregister on shutdown, emptying the fleet.
	stop()
	waitUntil(t, func() bool { return f.Stats().LiveWorkers == 0 })
}

// TestHTTPWorkerStallsMidCellReclaim injects the ISSUE's fault over the
// real wire: one worker hangs inside a cell past its lease deadline,
// the reaper reclaims the lease, the surviving worker retries the cell,
// the job finishes byte-identical to a serial run — and when the stuck
// worker finally reports, its result is dropped as a duplicate.
func TestHTTPWorkerStallsMidCellReclaim(t *testing.T) {
	block := &blockOnce{index: 3, release: make(chan struct{})}
	reg := gridRegistry(6, block)
	obs := &recObs{}
	f := NewFleet(Options{LeaseTTL: 250 * time.Millisecond, Observer: obs})
	defer f.Close()
	mux := http.NewServeMux()
	f.Routes(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	stop := startWorkers(t, ts.URL, reg, 2)
	defer stop()
	waitUntil(t, func() bool { return f.Stats().LiveWorkers == 2 })

	plan := harness.Plan{Seed: 9, Sizing: harness.SizingQuick}
	rep := runThroughFleet(t, f, reg, plan)
	if got, want := rep.Results[0].TSV(), serialTSV(t, reg, plan); !bytes.Equal(got, want) {
		t.Fatalf("TSV after mid-cell stall differs from serial run:\n got: %q\nwant: %q", got, want)
	}
	if rep.Failed != 0 {
		t.Fatalf("failed cells = %d, want 0", rep.Failed)
	}
	reclaims, _, _ := obs.snapshot()
	if reclaims == 0 {
		t.Fatal("stalled lease was never reclaimed")
	}

	// Unstick the hung worker: its late result must be refused.
	close(block.release)
	waitUntil(t, func() bool {
		_, dups, _ := obs.snapshot()
		return dups >= 1
	})
}

// TestHTTPWorkerUnknownCellReportsFailure: a worker whose registry
// cannot resolve a leased cell reports a structured failure instead of
// crashing, and the failure surfaces in the cell report.
func TestHTTPWorkerUnknownCellReportsFailure(t *testing.T) {
	coordReg := gridRegistry(2, nil)
	workerReg := harness.NewRegistry() // out of sync: knows nothing
	f := NewFleet(Options{LeaseTTL: time.Hour, WorkerTTL: time.Hour, MaxAttempts: 1})
	defer f.Close()
	mux := http.NewServeMux()
	f.Routes(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	stop := startWorkers(t, ts.URL, workerReg, 1)
	defer stop()
	waitUntil(t, func() bool { return f.Stats().LiveWorkers == 1 })

	rep := runThroughFleet(t, f, coordReg, harness.Plan{Seed: 1, Sizing: harness.SizingQuick})
	if rep.Failed != 2 {
		t.Fatalf("failed = %d, want 2 (worker registry out of sync)", rep.Failed)
	}
	if rep.Err() == nil {
		t.Fatal("aggregated error missing")
	}
}

// TestFleetCompiledKernelByteIdentity runs a real experiment artifact
// (fig2, quick sizing) through HTTP fleet workers with the compiled
// access-stream kernel and requires the assembled TSV to be
// byte-identical to a serial in-process run of the interpreted
// reference kernel: executor topology and kernel choice must both be
// invisible in the output bytes.
func TestFleetCompiledKernelByteIdentity(t *testing.T) {
	reg := experiments.Artifacts()
	f := NewFleet(Options{LeaseTTL: time.Hour, WorkerTTL: time.Hour})
	defer f.Close()
	mux := http.NewServeMux()
	f.Routes(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	stop := startWorkers(t, ts.URL, reg, 2)
	defer stop()
	waitUntil(t, func() bool { return f.Stats().LiveWorkers == 2 })

	compiled := machine.DefaultConfig()
	compiled.Kernel = machine.KernelCompiled
	plan := harness.Plan{Cfg: compiled, Seed: experiments.DefaultSeed, Sizing: harness.SizingQuick}

	arts, err := reg.Select([]string{"fig2"})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := (&harness.Runner{Dispatcher: f}).Run(context.Background(), plan, arts)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Results[0].Cells {
		if c.Worker == "" {
			t.Fatalf("cell %s ran in-process; want a fleet worker", c.Cell)
		}
	}

	interp := harness.Plan{Cfg: machine.DefaultConfig(), Seed: experiments.DefaultSeed, Sizing: harness.SizingQuick}
	ref, err := (&harness.Runner{Parallel: 1}).Run(context.Background(), interp, arts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.Results[0].TSV(), ref.Results[0].TSV(); !bytes.Equal(got, want) {
		t.Fatalf("fleet compiled-kernel TSV differs from serial interpreted run:\n got: %q\nwant: %q", got, want)
	}
}
