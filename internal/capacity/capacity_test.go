package capacity

import (
	"math"
	"testing"
	"testing/quick"

	"coherentleak/internal/stats"
)

func TestDecomposePerfect(t *testing.T) {
	e := Decompose([]byte{1, 0, 1, 1}, []byte{1, 0, 1, 1})
	if e.Flips+e.Lost+e.Extra != 0 {
		t.Fatalf("errors on identical strings: %+v", e)
	}
}

func TestDecomposeFlip(t *testing.T) {
	e := Decompose([]byte{1, 0, 1, 1}, []byte{1, 1, 1, 1})
	if e.Flips != 1 || e.Lost != 0 || e.Extra != 0 {
		t.Fatalf("%+v", e)
	}
}

func TestDecomposeLostAndExtra(t *testing.T) {
	e := Decompose([]byte{1, 0, 1, 0, 1}, []byte{1, 1, 0, 1})
	// Minimal script: delete the leading 0 (or equivalent); total ops
	// must equal the edit distance.
	if e.Flips+e.Lost+e.Extra != stats.EditDistance([]byte{1, 0, 1, 0, 1}, []byte{1, 1, 0, 1}) {
		t.Fatalf("ops inconsistent with edit distance: %+v", e)
	}
	if e.Lost == 0 {
		t.Fatalf("shortened string needs a deletion: %+v", e)
	}
	e = Decompose([]byte{1, 0}, []byte{1, 0, 1, 1})
	if e.Extra != 2 {
		t.Fatalf("lengthened string needs insertions: %+v", e)
	}
}

// Property: the decomposition's op count always equals the Levenshtein
// distance, and lengths reconcile (n - lost + extra = m).
func TestDecomposeConsistencyProperty(t *testing.T) {
	f := func(a, b []byte) bool {
		for i := range a {
			a[i] &= 1
		}
		for i := range b {
			b[i] &= 1
		}
		e := Decompose(a, b)
		if e.Flips+e.Lost+e.Extra != stats.EditDistance(a, b) {
			return false
		}
		return len(a)-e.Lost+e.Extra == len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryEntropy(t *testing.T) {
	if h := binaryEntropy(0.5); math.Abs(h-1) > 1e-12 {
		t.Fatalf("H2(0.5) = %v", h)
	}
	if binaryEntropy(0) != 0 || binaryEntropy(1) != 0 {
		t.Fatal("H2 at extremes not 0")
	}
}

func TestAnalyzeCleanChannel(t *testing.T) {
	bits := make([]byte, 100)
	r := Analyze(bits, bits, 700)
	if r.BSCCapacity != 1 {
		t.Fatalf("clean BSC capacity = %v", r.BSCCapacity)
	}
	if r.InfoKbps != 700 {
		t.Fatalf("clean info rate = %v", r.InfoKbps)
	}
	if r.TCSEC != TCSECHigh {
		t.Fatalf("700 Kbps classified %v", r.TCSEC)
	}
	if r.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestAnalyzeNoisyChannelLosesCapacity(t *testing.T) {
	want := make([]byte, 200)
	got := make([]byte, 200)
	for i := range want {
		want[i] = byte(i % 2)
		got[i] = want[i]
	}
	// 10% flips.
	for i := 0; i < 200; i += 10 {
		got[i] ^= 1
	}
	r := Analyze(want, got, 700)
	if r.BSCCapacity >= 1 || r.BSCCapacity <= 0 {
		t.Fatalf("BSC capacity = %v", r.BSCCapacity)
	}
	want1 := 1 - binaryEntropy(0.1)
	if math.Abs(r.BSCCapacity-want1) > 1e-9 {
		t.Fatalf("capacity = %v, want %v", r.BSCCapacity, want1)
	}
	if r.InfoKbps >= 700*want1+1e-9 {
		t.Fatalf("info rate %v not discounted", r.InfoKbps)
	}
}

func TestClassifyTCSEC(t *testing.T) {
	cases := map[float64]TCSECClass{
		700_000: TCSECHigh,
		100:     TCSECHigh,
		99:      TCSECAuditable,
		0.2:     TCSECAuditable,
		0.1:     TCSECNegligible,
		0:       TCSECNegligible,
	}
	for bps, want := range cases {
		if got := ClassifyTCSEC(bps); got != want {
			t.Errorf("ClassifyTCSEC(%v) = %v, want %v", bps, got, want)
		}
	}
}

func TestRatesEmpty(t *testing.T) {
	var e ErrorBreakdown
	f, l, x := e.Rates()
	if f != 0 || l != 0 || x != 0 {
		t.Fatal("rates of empty breakdown not zero")
	}
}
