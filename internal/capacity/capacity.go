// Package capacity estimates the information-theoretic quality of a
// covert transmission: an error decomposition (flips, losses, extras —
// the §VIII-B taxonomy), a Shannon-capacity estimate, and the TCSEC
// (Orange Book) bandwidth classification the paper's §II background
// invokes ("TCSEC classifies a high bandwidth covert channel to have a
// minimum rate of 100 bits/sec").
package capacity

import (
	"fmt"
	"math"
)

// ErrorBreakdown decomposes a received bit string against the
// transmitted one via a minimal edit script.
type ErrorBreakdown struct {
	// Transmitted and Received are the string lengths.
	Transmitted, Received int
	// Flips counts substituted symbols.
	Flips int
	// Lost counts deletions (transmitted, never decoded).
	Lost int
	// Extra counts insertions (decoded, never transmitted).
	Extra int
}

// Rates returns the per-transmitted-bit flip, loss and insertion rates.
func (e ErrorBreakdown) Rates() (flip, lost, extra float64) {
	if e.Transmitted == 0 {
		return 0, 0, 0
	}
	n := float64(e.Transmitted)
	return float64(e.Flips) / n, float64(e.Lost) / n, float64(e.Extra) / n
}

// Decompose aligns got against want with unit-cost edits and counts the
// minimal substitutions, deletions and insertions (ties prefer
// substitutions, matching how decoding errors actually arise).
func Decompose(want, got []byte) ErrorBreakdown {
	n, m := len(want), len(got)
	// Full DP table with traceback; payloads are at most a few thousand
	// bits, so O(n·m) is fine.
	d := make([][]int, n+1)
	for i := range d {
		d[i] = make([]int, m+1)
		d[i][0] = i
	}
	for j := 0; j <= m; j++ {
		d[0][j] = j
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			cost := 1
			if want[i-1] == got[j-1] {
				cost = 0
			}
			best := d[i-1][j-1] + cost
			if v := d[i-1][j] + 1; v < best {
				best = v
			}
			if v := d[i][j-1] + 1; v < best {
				best = v
			}
			d[i][j] = best
		}
	}
	out := ErrorBreakdown{Transmitted: n, Received: m}
	i, j := n, m
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && d[i][j] == d[i-1][j-1] && want[i-1] == got[j-1]:
			i, j = i-1, j-1 // match
		case i > 0 && j > 0 && d[i][j] == d[i-1][j-1]+1:
			out.Flips++
			i, j = i-1, j-1
		case i > 0 && d[i][j] == d[i-1][j]+1:
			out.Lost++
			i--
		default:
			out.Extra++
			j--
		}
	}
	return out
}

// TCSECClass is the Orange Book's qualitative bandwidth category.
type TCSECClass string

const (
	// TCSECHigh: >= 100 bits/sec — "a high bandwidth covert channel".
	TCSECHigh TCSECClass = "high-bandwidth"
	// TCSECAuditable: between the negligible floor and the high
	// threshold; TCSEC requires such channels be auditable.
	TCSECAuditable TCSECClass = "auditable"
	// TCSECNegligible: <= 0.1 bits/sec — "almost no useful or meaningful
	// information".
	TCSECNegligible TCSECClass = "negligible"
)

// ClassifyTCSEC buckets an information rate in bits/second.
func ClassifyTCSEC(bitsPerSecond float64) TCSECClass {
	switch {
	case bitsPerSecond >= 100:
		return TCSECHigh
	case bitsPerSecond > 0.1:
		return TCSECAuditable
	default:
		return TCSECNegligible
	}
}

// Report is the capacity estimate for one transmission.
type Report struct {
	Errors ErrorBreakdown
	// RawKbps is the symbol rate carried in.
	RawKbps float64
	// BSCCapacity is the per-symbol capacity of a binary symmetric
	// channel with the observed flip rate: 1 - H2(p).
	BSCCapacity float64
	// InfoKbps is the usable information rate: RawKbps x BSCCapacity x
	// the surviving-symbol fraction. Insertion/deletion channel capacity
	// has no closed form; discounting by the loss rate is the standard
	// practical lower bound.
	InfoKbps float64
	// TCSEC is the Orange Book classification of InfoKbps.
	TCSEC TCSECClass
}

// Analyze builds a Report from a transmission's bits and raw rate.
func Analyze(want, got []byte, rawKbps float64) Report {
	r := Report{Errors: Decompose(want, got), RawKbps: rawKbps}
	flip, lost, extra := r.Errors.Rates()
	r.BSCCapacity = 1 - binaryEntropy(flip)
	survive := 1 - lost - extra
	if survive < 0 {
		survive = 0
	}
	r.InfoKbps = rawKbps * r.BSCCapacity * survive
	r.TCSEC = ClassifyTCSEC(r.InfoKbps * 1e3)
	return r
}

// binaryEntropy is H2(p) in bits.
func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

func (r Report) String() string {
	flip, lost, extra := r.Errors.Rates()
	return fmt.Sprintf("raw %.0f Kbps, flips %.2f%%, lost %.2f%%, extra %.2f%% -> info %.0f Kbps (%s)",
		r.RawKbps, flip*100, lost*100, extra*100, r.InfoKbps, r.TCSEC)
}
