// Package service is the long-lived experiment daemon layered over the
// internal/harness engine: an HTTP JSON API that exposes the artifact
// registry, accepts parameterized runs onto a bounded job queue with
// admission control and per-job cancellation, streams per-cell progress
// over Server-Sent Events, serves assembled TSV and replay-JSON
// results, and shares one manifest cell-cache across every job so a
// repeated request returns in milliseconds. cmd/cohsimd wraps it in a
// binary; every future scaling layer (sharding, batching, multi-backend
// dispatch) is meant to plug in behind this API.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"coherentleak/internal/dispatch"
	"coherentleak/internal/harness"
	"coherentleak/internal/machine"
	"coherentleak/internal/store"
	"coherentleak/internal/tenant"
)

// Options configures a Service. Zero values pick sane defaults.
type Options struct {
	// Registry supplies the runnable artifacts. Required.
	Registry *harness.Registry
	// BaseConfig is the machine every job starts from before JSON
	// overrides; zero means machine.DefaultConfig().
	BaseConfig *machine.Config
	// Manifest is the shared cell cache; nil creates an empty one.
	Manifest *harness.Manifest
	// ManifestPath, when set, persists the manifest after every job and
	// on shutdown (atomic temp-file + rename).
	ManifestPath string
	// Store, when set, replaces Manifest as the shared cell cache —
	// typically a store.Disk so several cohsimd replicas pointed at one
	// directory share hits. It persists its own entries, so
	// ManifestPath is ignored.
	Store store.CellStore
	// Tenants enables API-key authentication, per-tenant quotas and
	// weighted fair queueing. Nil means anonymous mode: every caller is
	// one unbounded tenant and behavior matches the pre-tenant daemon.
	Tenants *tenant.Registry
	// QueueDepth bounds the admission queue; <=0 means 16.
	QueueDepth int
	// Executors is the number of jobs run concurrently; <=0 means 1
	// (cells within a job already parallelize).
	Executors int
	// CellParallel is the Runner worker count per job; <=0 means
	// GOMAXPROCS.
	CellParallel int
	// DefaultTimeout caps jobs that do not request one; <=0 means 15m.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts; <=0 means 2h.
	MaxTimeout time.Duration
	// ResultsDir, when set, additionally writes every finished job's
	// TSVs and replay archives under <ResultsDir>/<jobID>/ via the
	// harness sinks (results are always downloadable over HTTP).
	ResultsDir string
	// DefaultSeed seeds jobs whose requests omit one (the daemon passes
	// experiments.DefaultSeed so service runs match the CLI).
	DefaultSeed uint64
	// DisableCache runs every job cold: the shared manifest is neither
	// consulted nor updated.
	DisableCache bool
	// DisableDispatch pins every job to the in-process cell pool even
	// when workers are attached. Default off: jobs execute through the
	// worker fleet whenever one is live, falling back to the local pool
	// otherwise.
	DisableDispatch bool
	// DispatchLeaseTTL is how long a worker holds one cell before the
	// lease reclaims; <=0 means the dispatch default (90s).
	DispatchLeaseTTL time.Duration
	// DispatchWorkerTTL expires a silent worker; <=0 means 3×lease TTL.
	DispatchWorkerTTL time.Duration
	// DispatchMaxAttempts bounds worker executions per cell before the
	// in-process fallback; <=0 means the dispatch default (3).
	DispatchMaxAttempts int
	// MaxSweeps bounds concurrently running sweeps; <=0 means 2.
	// Submitted sweeps beyond the bound queue.
	MaxSweeps int
	// SweepInFlight bounds concurrently running points per sweep; <=0
	// means the engine default (4).
	SweepInFlight int
	// Log receives one line per lifecycle event; nil discards.
	Log io.Writer
}

func (o Options) withDefaults() Options {
	if o.BaseConfig == nil {
		cfg := machine.DefaultConfig()
		o.BaseConfig = &cfg
	}
	if o.Manifest == nil {
		o.Manifest = harness.NewManifest()
	}
	if o.Store != nil {
		// The store persists per entry; a manifest snapshot would shadow it.
		o.ManifestPath = ""
	}
	if o.Tenants == nil {
		o.Tenants = tenant.Open()
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.Executors <= 0 {
		o.Executors = 1
	}
	if o.CellParallel <= 0 {
		o.CellParallel = runtime.GOMAXPROCS(0)
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 15 * time.Minute
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 2 * time.Hour
	}
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 2
	}
	return o
}

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull rejects a submit when the bounded queue is at
	// capacity (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrQuota rejects a submit that would push the caller's tenant past
	// one of its quotas (HTTP 429 + Retry-After derived from that
	// tenant's own backlog).
	ErrQuota = errors.New("tenant quota exceeded")
	// ErrDraining rejects submits during graceful shutdown (HTTP 503).
	ErrDraining = errors.New("service: shutting down")
	// errCancelled is the cancel cause for client cancellation.
	errCancelled = errors.New("cancelled by client")
	// errShutdown is the cancel cause for forced shutdown.
	errShutdown = errors.New("server shutting down")
)

// Service owns the job table, the bounded queue, the executor pool,
// and the worker fleet coordinator.
type Service struct {
	opts    Options
	metrics *Metrics
	// fleet farms cells out to attached cohsim-worker processes; nil
	// when Options.DisableDispatch is set.
	fleet *dispatch.Fleet

	// cache is the shared cell store every job consults: Options.Store
	// when set, the manifest otherwise.
	cache store.CellStore

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	queue    *tenant.FairQueue[*Job]
	queued   int // jobs admitted but not yet picked up
	running  int
	draining bool
	seq      int
	// usage tracks per-tenant live load for quota checks and the
	// /v1/tenants/self endpoint. Lock order is always s.mu before the
	// fair queue's internal lock, never the reverse.
	usage map[string]*tenantUsage

	// Sweep table, mirrored after the job table. sweepGate bounds the
	// number of sweeps running at once; submitted sweeps beyond the
	// bound stay queued on it.
	sweeps        map[string]*Sweep
	sweepOrder    []string
	sweepSeq      int
	sweepsRunning int
	sweepGate     chan struct{}
	sweepWG       sync.WaitGroup

	wg sync.WaitGroup
}

// New starts a Service with its executor pool running.
func New(opts Options) (*Service, error) {
	opts = opts.withDefaults()
	if opts.Registry == nil {
		return nil, errors.New("service: Options.Registry is required")
	}
	if err := opts.BaseConfig.Validate(); err != nil {
		return nil, fmt.Errorf("service: base config: %w", err)
	}
	s := &Service{
		opts:      opts,
		metrics:   NewMetrics(),
		jobs:      make(map[string]*Job),
		queue:     tenant.NewFairQueue[*Job](opts.QueueDepth),
		usage:     make(map[string]*tenantUsage),
		sweeps:    make(map[string]*Sweep),
		sweepGate: make(chan struct{}, opts.MaxSweeps),
	}
	s.cache = opts.Store
	if s.cache == nil {
		s.cache = opts.Manifest
	}
	if !opts.DisableDispatch {
		s.fleet = dispatch.NewFleet(dispatch.Options{
			LeaseTTL:      opts.DispatchLeaseTTL,
			WorkerTTL:     opts.DispatchWorkerTTL,
			MaxAttempts:   opts.DispatchMaxAttempts,
			LocalParallel: opts.CellParallel,
			Observer:      s.metrics,
			Log:           opts.Log,
		})
	}
	for i := 0; i < opts.Executors; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s, nil
}

// Fleet exposes the worker-fleet coordinator (nil when dispatch is
// disabled). Tests and the HTTP layer reach it here.
func (s *Service) Fleet() *dispatch.Fleet { return s.fleet }

// Metrics exposes the service's metrics registry.
func (s *Service) Metrics() *Metrics { return s.metrics }

// Manifest exposes the shared cell cache (read-mostly: tests and the
// metrics endpoint ask for its size).
func (s *Service) Manifest() *harness.Manifest { return s.opts.Manifest }

// Store exposes the cell store jobs actually consult (Options.Store
// when set, the manifest otherwise).
func (s *Service) Store() store.CellStore { return s.cache }

// Tenants exposes the tenant registry.
func (s *Service) Tenants() *tenant.Registry { return s.opts.Tenants }

// tenantUsage is one tenant's live load, guarded by s.mu.
type tenantUsage struct {
	queued  int // jobs admitted and waiting for an executor
	running int // jobs executing
	// pointsPending counts sweep points expanded but not yet finished
	// across the tenant's active sweeps (the MaxQueuedPoints quota).
	pointsPending int
	sweepsActive  int
}

// usageLocked returns (creating on first use) a tenant's usage record.
// Caller holds s.mu.
func (s *Service) usageLocked(name string) *tenantUsage {
	u, ok := s.usage[name]
	if !ok {
		u = &tenantUsage{}
		s.usage[name] = u
	}
	return u
}

// fallbackTenant is the principal for direct Go-API submissions
// (tests, in-process tooling) that bypass HTTP authentication.
func (s *Service) fallbackTenant() *tenant.Tenant {
	if t := s.opts.Tenants.Anonymous(); t != nil {
		return t
	}
	return &tenant.Tenant{Name: tenant.AnonymousName, Weight: 1}
}

func (s *Service) logf(format string, args ...any) {
	if s.opts.Log != nil {
		fmt.Fprintf(s.opts.Log, format+"\n", args...)
	}
}

// SubmitRequest is the POST /v1/jobs body.
type SubmitRequest struct {
	// Artifacts lists registry names; empty means every artifact.
	Artifacts []string `json:"artifacts"`
	// Seed pins experiment randomness; nil uses the registry default
	// the caller passes via DefaultSeed below.
	Seed *uint64 `json:"seed"`
	// Sizing is "quick" or "full" (default "full", matching the CLI).
	Sizing string `json:"sizing"`
	// Config holds partial machine.Config overrides, merged over the
	// service's base config field-by-field (JSON semantics). Unknown
	// fields are rejected.
	Config json.RawMessage `json:"config"`
	// Kernel selects the access-stream kernel for this job ("interp" or
	// "compiled"); empty inherits the service default. It lives outside
	// Config because machine.Config excludes the field from JSON: the
	// kernel is digest-exempt (both produce byte-identical results), so
	// it must not perturb the cell cache key.
	Kernel string `json:"kernel"`
	// TimeoutSeconds caps the run; 0 uses the service default.
	TimeoutSeconds float64 `json:"timeoutSeconds"`
}

// buildPlan resolves a submit request into a validated plan + artifact
// selection. Any error here is a client error (HTTP 400).
func (s *Service) buildPlan(req *SubmitRequest) (harness.Plan, []*harness.Artifact, time.Duration, error) {
	var zero harness.Plan
	arts, err := s.opts.Registry.Select(req.Artifacts)
	if err != nil {
		return zero, nil, 0, err
	}
	cfg := *s.opts.BaseConfig
	if len(req.Config) > 0 {
		dec := json.NewDecoder(bytes.NewReader(req.Config))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&cfg); err != nil {
			return zero, nil, 0, fmt.Errorf("config overrides: %w", err)
		}
	}
	if req.Kernel != "" {
		cfg.Kernel = req.Kernel
	}
	if err := cfg.Validate(); err != nil {
		return zero, nil, 0, fmt.Errorf("config overrides: %w", err)
	}
	var sizing harness.Sizing
	switch req.Sizing {
	case "", string(harness.SizingFull):
		sizing = harness.SizingFull
	case string(harness.SizingQuick):
		sizing = harness.SizingQuick
	default:
		return zero, nil, 0, fmt.Errorf("sizing %q: want %q or %q", req.Sizing, harness.SizingQuick, harness.SizingFull)
	}
	seed := s.opts.DefaultSeed
	if req.Seed != nil {
		seed = *req.Seed
	}
	timeout := s.opts.DefaultTimeout
	if req.TimeoutSeconds < 0 {
		return zero, nil, 0, fmt.Errorf("timeoutSeconds %v: must be >= 0", req.TimeoutSeconds)
	}
	if req.TimeoutSeconds > 0 {
		timeout = time.Duration(req.TimeoutSeconds * float64(time.Second))
		if timeout > s.opts.MaxTimeout {
			timeout = s.opts.MaxTimeout
		}
	}
	return harness.Plan{Cfg: cfg, Seed: seed, Sizing: sizing}, arts, timeout, nil
}

// Submit validates and enqueues a job on the anonymous tenant's
// behalf. ErrQueueFull and ErrDraining are admission failures; other
// errors are invalid requests.
func (s *Service) Submit(req *SubmitRequest) (*Job, error) {
	return s.SubmitAs(s.fallbackTenant(), req)
}

// SubmitAs validates and enqueues a job owned by tn: the tenant's
// MaxInFlight quota is checked, then the job lands on the tenant's
// fair-queue lane so one tenant's backlog cannot head-of-line-block
// another's. ErrQueueFull, ErrQuota and ErrDraining are admission
// failures; other errors are invalid requests.
func (s *Service) SubmitAs(tn *tenant.Tenant, req *SubmitRequest) (*Job, error) {
	plan, arts, timeout, err := s.buildPlan(req)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(arts))
	for i, a := range arts {
		names[i] = a.Name
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	u := s.usageLocked(tn.Name)
	if tn.MaxInFlight > 0 && u.queued+u.running >= tn.MaxInFlight {
		s.metrics.JobRejected()
		s.metrics.TenantJobRejected(tn.Name, "quota")
		return nil, fmt.Errorf("%w: tenant %s has %d job(s) in flight (maxInFlight %d)",
			ErrQuota, tn.Name, u.queued+u.running, tn.MaxInFlight)
	}
	s.seq++
	job := &Job{
		ID:        fmt.Sprintf("job-%06d", s.seq),
		Tenant:    tn.Name,
		Artifacts: names,
		Plan:      plan,
		Timeout:   timeout,
		Created:   time.Now(),
		state:     StateQueued,
		results:   make(map[string]*harness.ArtifactResult),
		stream:    newEventLog[Event](subEventBuffer, s.metrics.SSEEvicted),
	}
	if err := s.queue.Push(tn.Name, tn.Weight, job); err != nil {
		s.metrics.JobRejected()
		s.metrics.TenantJobRejected(tn.Name, "queue-full")
		return nil, ErrQueueFull
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.queued++
	u.queued++
	s.metrics.JobAccepted()
	s.metrics.TenantJobAccepted(tn.Name)
	job.publish(Event{Type: "state", State: StateQueued})
	s.logf("%s queued (tenant %s): %v seed=%d sizing=%s timeout=%s", job.ID, tn.Name, names, plan.Seed, plan.Sizing, timeout)
	return job, nil
}

// RetryAfter estimates how long a rejected client should wait before
// resubmitting: the mean job duration scaled by the backlog ahead of
// it, clamped to [1s, 60s].
func (s *Service) RetryAfter() time.Duration {
	s.mu.Lock()
	backlog := s.queued + s.running
	executors := s.opts.Executors
	s.mu.Unlock()
	return s.retryEstimate(backlog, executors)
}

// RetryAfterTenant estimates the wait for one tenant from that
// tenant's own backlog, not the global queue: under fair queueing a
// lightly-loaded tenant rejected because another tenant filled the
// queue drains near the front, so telling it to wait for the whole
// global backlog would be wildly pessimistic.
func (s *Service) RetryAfterTenant(name string) time.Duration {
	s.mu.Lock()
	u := s.usageLocked(name)
	backlog := u.queued + u.running
	executors := s.opts.Executors
	s.mu.Unlock()
	return s.retryEstimate(backlog, executors)
}

func (s *Service) retryEstimate(backlog, executors int) time.Duration {
	avg := s.metrics.AvgJobSeconds()
	if avg <= 0 {
		avg = 1
	}
	est := time.Duration(avg * float64(backlog) / float64(executors) * float64(time.Second))
	if est < time.Second {
		est = time.Second
	}
	if est > time.Minute {
		est = time.Minute
	}
	return est
}

// QueueDepth reports one tenant's queued (not yet running) jobs — the
// number a rejected client sees in its 429 body.
func (s *Service) QueueDepth(tenantName string) int {
	return s.queue.Depth(tenantName)
}

// TenantUsageView is a tenant's live load in /v1/tenants/self.
type TenantUsageView struct {
	JobsQueued    int `json:"jobsQueued"`
	JobsRunning   int `json:"jobsRunning"`
	PointsPending int `json:"pointsPending"`
	SweepsActive  int `json:"sweepsActive"`
}

// TenantSelfView is the GET /v1/tenants/self body: the caller's
// identity, configured quota and live usage. The API key is never
// echoed back.
type TenantSelfView struct {
	Name        string          `json:"name"`
	Weight      int             `json:"weight"`
	AuthEnabled bool            `json:"authEnabled"`
	Quotas      tenant.Quotas   `json:"quotas"`
	Usage       TenantUsageView `json:"usage"`
}

// TenantSelf renders one tenant's quota and live usage.
func (s *Service) TenantSelf(tn *tenant.Tenant) TenantSelfView {
	s.mu.Lock()
	defer s.mu.Unlock()
	u := s.usageLocked(tn.Name)
	return TenantSelfView{
		Name:        tn.Name,
		Weight:      tn.Weight,
		AuthEnabled: s.opts.Tenants.Enabled(),
		Quotas:      tn.Quotas,
		Usage: TenantUsageView{
			JobsQueued:    u.queued,
			JobsRunning:   u.running,
			PointsPending: u.pointsPending,
			SweepsActive:  u.sweepsActive,
		},
	}
}

// Job looks up one job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// JobViews lists every job in submission order.
func (s *Service) JobViews() []View {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]View, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].view())
	}
	return out
}

// JobViewsFor lists one tenant's jobs in submission order.
func (s *Service) JobViewsFor(tn *tenant.Tenant) []View {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]View, 0, len(s.order))
	for _, id := range s.order {
		if j := s.jobs[id]; j.Tenant == tn.Name {
			out = append(out, j.view())
		}
	}
	return out
}

// JobView renders one job.
func (s *Service) JobView(id string) (View, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return View{}, false
	}
	return j.view(), true
}

// JobViewFor renders one job if tn owns it. A job owned by another
// tenant reports not-found, indistinguishable from a job that does not
// exist, so IDs cannot be probed across tenants.
func (s *Service) JobViewFor(tn *tenant.Tenant, id string) (View, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.Tenant != tn.Name {
		return View{}, false
	}
	return j.view(), true
}

// ResultFor returns one artifact of a job tn owns.
func (s *Service) ResultFor(tn *tenant.Tenant, id, artifact string) (*harness.ArtifactResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.Tenant != tn.Name {
		return nil, false
	}
	res, ok := j.results[artifact]
	return res, ok
}

// CancelFor cancels a job tn owns (other tenants' jobs look unknown).
func (s *Service) CancelFor(tn *tenant.Tenant, id string) bool {
	s.mu.Lock()
	owned := false
	if j, ok := s.jobs[id]; ok && j.Tenant == tn.Name {
		owned = true
	}
	s.mu.Unlock()
	if !owned {
		return false
	}
	return s.Cancel(id)
}

// SubscribeFor is Subscribe restricted to jobs tn owns.
func (s *Service) SubscribeFor(tn *tenant.Tenant, id string) (history []Event, ch chan Event, cancel func(), ok bool) {
	s.mu.Lock()
	j, found := s.jobs[id]
	owned := found && j.Tenant == tn.Name
	s.mu.Unlock()
	if !owned {
		return nil, nil, nil, false
	}
	return s.Subscribe(id)
}

// Result returns one job's assembled artifact by name.
func (s *Service) Result(id, artifact string) (*harness.ArtifactResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	res, ok := j.results[artifact]
	return res, ok
}

// Cancel cancels a queued or running job. It reports whether the job
// exists; cancelling a terminal job is a no-op.
func (s *Service) Cancel(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return false
	}
	switch j.state {
	case StateQueued:
		// The executor will observe the terminal state and skip it.
		s.finishLocked(j, StateCancelled, "cancelled by client")
	case StateRunning:
		j.cancel(errCancelled)
	}
	return true
}

// Subscribe returns a job's event history and live channel (nil channel
// when the job is terminal), plus an unsubscribe func.
func (s *Service) Subscribe(id string) (history []Event, ch chan Event, cancel func(), ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, okj := s.jobs[id]
	if !okj {
		return nil, nil, nil, false
	}
	history, ch, subID := j.subscribe()
	if ch == nil {
		return history, nil, func() {}, true
	}
	return history, ch, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		j.unsubscribe(subID)
	}, true
}

// Gauges samples point-in-time values for the metrics endpoint.
func (s *Service) Gauges() Gauges {
	s.mu.Lock()
	g := Gauges{
		JobsQueued:       s.queued,
		JobsRunning:      s.running,
		QueueCapacity:    s.opts.QueueDepth,
		ManifestEntries:  s.cache.Len(),
		SweepsRunning:    s.sweepsRunning,
		TenantQueueDepth: s.queue.Depths(),
	}
	for _, id := range s.sweepOrder {
		if s.sweeps[id].state == StateQueued {
			g.SweepsQueued++
		}
	}
	s.mu.Unlock()
	if s.fleet != nil {
		st := s.fleet.Stats()
		g.WorkersLive = st.LiveWorkers
		g.LeasesInFlight = st.LeasesInFlight
		g.DispatchQueueDepth = st.QueueDepth
	}
	return g
}

// Draining reports whether shutdown has begun (healthz turns 503).
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// finishLocked moves a job to a terminal state. Caller holds s.mu.
func (s *Service) finishLocked(j *Job, state State, errMsg string) {
	if j.state.Terminal() {
		return
	}
	if j.started.IsZero() {
		j.started = j.Created
	}
	j.state = state
	j.errMsg = errMsg
	j.finished = time.Now()
	j.publish(Event{Type: "state", State: state, Error: errMsg})
	s.metrics.JobFinished(state, j.finished.Sub(j.started).Seconds())
	s.logf("%s %s%s", j.ID, state, suffixIf(errMsg))
}

func suffixIf(msg string) string {
	if msg == "" {
		return ""
	}
	return ": " + msg
}

// executor pops fair-queued jobs until Shutdown closes the queue.
func (s *Service) executor() {
	defer s.wg.Done()
	for {
		job, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.runJob(job)
	}
}

// runJob drives one job through the harness Runner.
func (s *Service) runJob(j *Job) {
	s.mu.Lock()
	s.queued--
	s.usageLocked(j.Tenant).queued--
	if j.state.Terminal() {
		// Cancelled while queued.
		s.mu.Unlock()
		return
	}
	if s.draining {
		// Queued jobs are shed on shutdown; only in-flight ones drain.
		s.finishLocked(j, StateCancelled, errShutdown.Error())
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	tctx, tcancel := context.WithTimeout(ctx, j.Timeout)
	j.cancel = cancel
	j.state = StateRunning
	j.started = time.Now()
	s.running++
	s.usageLocked(j.Tenant).running++
	j.publish(Event{Type: "state", State: StateRunning})
	s.mu.Unlock()
	defer tcancel()
	defer cancel(nil)

	var cache store.CellStore
	if !s.opts.DisableCache {
		cache = s.cache
	}
	runner := &harness.Runner{
		Parallel: s.opts.CellParallel,
		Manifest: cache,
		Observe: func(done, total int, rep harness.CellReport) {
			s.observeCell(j, done, total, rep)
		},
		Sinks: s.jobSinks(j),
	}
	if s.fleet != nil {
		// Cells route through the worker fleet (local fallback inside
		// the fleet stays bounded by CellParallel). Parallel 0 lets the
		// Runner fan every cell out at once: the fleet's lease queue is
		// the real bound, and throttling here would starve workers.
		runner.Dispatcher = s.fleet
		runner.Parallel = 0
	}
	arts, selErr := s.opts.Registry.Select(j.Artifacts)
	var (
		report *harness.RunReport
		runErr error
	)
	if selErr != nil {
		runErr = selErr // registry changed between submit and run; treat as failure
	} else {
		report, runErr = runner.Run(tctx, j.Plan, arts)
	}

	if s.opts.ManifestPath != "" {
		if err := s.opts.Manifest.Save(s.opts.ManifestPath); err != nil {
			s.logf("%s: manifest save: %v", j.ID, err)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.running--
	s.usageLocked(j.Tenant).running--
	j.report = report
	if report != nil {
		for _, res := range report.Results {
			j.results[res.Artifact.Name] = res
		}
	}
	switch {
	case runErr == nil && (report == nil || report.Failed == 0):
		s.finishLocked(j, StateDone, "")
	case context.Cause(tctx) == errCancelled:
		s.finishLocked(j, StateCancelled, "cancelled by client")
	case context.Cause(tctx) == errShutdown:
		s.finishLocked(j, StateCancelled, errShutdown.Error())
	case tctx.Err() == context.DeadlineExceeded:
		s.finishLocked(j, StateFailed, fmt.Sprintf("timeout after %s", j.Timeout))
	case runErr != nil:
		s.finishLocked(j, StateFailed, runErr.Error())
	default:
		s.finishLocked(j, StateFailed, report.Err().Error())
	}
}

// observeCell forwards a Runner cell report to metrics and the job's
// event stream.
func (s *Service) observeCell(j *Job, done, total int, rep harness.CellReport) {
	sec := rep.Wall.Seconds()
	s.metrics.CellFinished(rep.Artifact, rep.Cached, rep.Err != nil, sec)
	s.metrics.TenantCell(j.Tenant, rep.Cached, rep.Err != nil)
	ev := Event{Type: "cell", Cell: &CellEvent{
		Artifact:   rep.Artifact,
		Cell:       rep.Cell,
		Index:      rep.Index,
		Cached:     rep.Cached,
		Worker:     rep.Worker,
		WallMillis: float64(rep.Wall) / float64(time.Millisecond),
		Rows:       rep.Rows,
		Done:       done,
		Total:      total,
	}}
	if rep.Err != nil {
		ev.Cell.Error = rep.Err.Error()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j.total = total
	j.done = done
	switch {
	case rep.Err != nil:
		j.failed++
	case rep.Cached:
		j.cached++
	default:
		j.executed++
	}
	j.publish(ev)
}

// jobSinks builds the optional per-job on-disk sinks.
func (s *Service) jobSinks(j *Job) []harness.Sink {
	if s.opts.ResultsDir == "" {
		return nil
	}
	dir := s.opts.ResultsDir + "/" + j.ID
	return []harness.Sink{
		harness.TSVSink{Dir: dir},
		harness.ReplaySink{Dir: dir + "/replay"},
	}
}

// Shutdown drains gracefully: no new submissions, queued-but-unstarted
// jobs are cancelled, in-flight jobs run to completion (until ctx
// expires, at which point they are cancelled), and the manifest is
// persisted. Safe to call once.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.queue.Close()
	// Sweeps are long-lived by design, so graceful drain cancels them
	// outright: their in-flight jobs cancel, queued points never run.
	for _, id := range s.sweepOrder {
		sw := s.sweeps[id]
		if sw.state.Terminal() {
			continue
		}
		if sw.cancel != nil {
			sw.cancel(errShutdown)
		} else {
			// Submitted but its goroutine has not installed a cancel
			// func yet; mark it terminal so the goroutine exits at its
			// first state check.
			s.finishSweepLocked(sw, StateCancelled, errShutdown.Error())
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.sweepWG.Wait()
		s.wg.Wait()
		close(done)
	}()
	var forced error
	select {
	case <-done:
	case <-ctx.Done():
		forced = ctx.Err()
		s.mu.Lock()
		for _, id := range s.order {
			if j := s.jobs[id]; j.state == StateRunning && j.cancel != nil {
				j.cancel(errShutdown)
			}
		}
		s.mu.Unlock()
		<-done
	}
	if s.fleet != nil {
		// After the executors drain there is nothing left to dispatch;
		// closing the fleet ends worker long-polls and rejects stragglers.
		s.fleet.Close()
	}
	if s.opts.ManifestPath != "" {
		if err := s.opts.Manifest.Save(s.opts.ManifestPath); err != nil {
			return errors.Join(forced, err)
		}
	}
	return forced
}
