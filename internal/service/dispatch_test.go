package service_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"coherentleak/internal/coherence"
	"coherentleak/internal/dispatch"
	"coherentleak/internal/experiments"
	"coherentleak/internal/harness"
	"coherentleak/internal/machine"
	"coherentleak/internal/service"
)

// stallOnce hangs one cell's first execution until released, modelling
// a worker that dies or wedges mid-cell; the retried execution sails
// through.
type stallOnce struct {
	cell    string
	runs    atomic.Int64
	release chan struct{}
}

// fleetRegistry registers "grid": cells whose rows are a pure function
// of (seed, index), so every executor produces identical bytes.
func fleetRegistry(cells int, stall *stallOnce) *harness.Registry {
	reg := harness.NewRegistry()
	reg.MustRegister(&harness.Artifact{
		Name: "grid", Description: "deterministic fleet test grid",
		File: "grid.tsv", Header: "cell\tvalue",
		Cells: func(p harness.Plan) ([]harness.Cell, error) {
			out := make([]harness.Cell, cells)
			for i := range out {
				name := fmt.Sprintf("g%02d", i)
				out[i] = harness.Cell{Name: name, Run: func() (harness.CellOutput, error) {
					if stall != nil && name == stall.cell && stall.runs.Add(1) == 1 {
						<-stall.release
					}
					return harness.CellOutput{
						Rows: []string{fmt.Sprintf("%s\t%d", name, p.Seed*100+uint64(i))},
					}, nil
				}}
			}
			return out, nil
		},
	})
	return reg
}

// attachWorker runs one dispatch.Worker against the test server and
// returns a kill function. Kill only cancels — a worker wedged inside
// a stalled cell cannot exit until the cell releases, so the goroutine
// is awaited in t.Cleanup (after the test's deferred release).
func attachWorker(t *testing.T, ts *httptest.Server, name string, reg *harness.Registry) (kill func()) {
	t.Helper()
	w, err := dispatch.NewWorker(dispatch.WorkerOptions{
		Server:   ts.URL,
		Name:     name,
		Registry: reg,
		PollWait: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Errorf("worker %s never exited", name)
		}
	})
	return cancel
}

// workerList fetches GET /v1/workers.
func workerList(t *testing.T, ts *httptest.Server) []dispatch.WorkerView {
	t.Helper()
	code, body := fetch(t, ts, "/v1/workers")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/workers = %d", code)
	}
	var out struct {
		Workers []dispatch.WorkerView `json:"workers"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out.Workers
}

func waitWorkers(t *testing.T, ts *httptest.Server, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for len(workerList(t, ts)) != n {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached %d workers", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	id    int
	event string
	data  string
}

// readSSE consumes a job's event stream to its end (terminal state),
// optionally resuming via Last-Event-ID.
func readSSE(t *testing.T, ts *httptest.Server, jobID string, lastEventID int) []sseEvent {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID >= 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(lastEventID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events = %d", resp.StatusCode)
	}
	var events []sseEvent
	cur := sseEvent{id: -1}
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.id, _ = strconv.Atoi(strings.TrimPrefix(line, "id: "))
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "": // dispatch
			events = append(events, cur)
			cur = sseEvent{id: -1}
		}
	}
	return events
}

// serialGridTSV is the ground truth: the same plan on a serial local
// runner, bypassing the service entirely.
func serialGridTSV(t *testing.T, reg *harness.Registry, seed uint64) []byte {
	t.Helper()
	r := &harness.Runner{Parallel: 1}
	rep, err := r.Run(context.Background(), harness.Plan{
		Cfg: machine.DefaultConfig(), Seed: seed, Sizing: harness.SizingQuick,
	}, reg.Artifacts())
	if err != nil {
		t.Fatal(err)
	}
	return rep.Results[0].TSV()
}

// testFleetSize is the worker count for fleet tests; the CI matrix
// varies it via COHSIM_TEST_WORKERS (default 4).
func testFleetSize(t *testing.T) int {
	t.Helper()
	v := os.Getenv("COHSIM_TEST_WORKERS")
	if v == "" {
		return 4
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		t.Fatalf("COHSIM_TEST_WORKERS = %q: want a positive integer", v)
	}
	return n
}

// TestFleetWorkersExecuteJob attaches a worker fleet to the daemon and
// pins the tentpole contract end to end: the job's TSV is
// byte-identical to a serial in-process run, /v1/workers lists the
// fleet, SSE cell events carry the executing worker, and the dispatch
// metrics series appear.
func TestFleetWorkersExecuteJob(t *testing.T) {
	fleetSize := testFleetSize(t)
	reg := fleetRegistry(8, nil)
	_, ts := newTestServer(t, service.Options{Registry: reg, DefaultSeed: 3})

	workerNames := map[string]bool{}
	for i := 0; i < fleetSize; i++ {
		name := fmt.Sprintf("fw%d", i)
		workerNames[name] = true
		kill := attachWorker(t, ts, name, reg)
		defer kill()
	}
	waitWorkers(t, ts, fleetSize)

	status, v, _ := postJob(t, ts, `{"artifacts":["grid"],"sizing":"quick"}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d", status)
	}
	done := waitState(t, ts, v.ID, service.StateDone)
	if done.Cells.Executed != 8 || done.Cells.Cached != 0 {
		t.Fatalf("cells = %+v, want 8 executed", done.Cells)
	}

	code, tsv := fetch(t, ts, "/v1/jobs/"+v.ID+"/artifacts/grid.tsv")
	if code != http.StatusOK {
		t.Fatalf("download = %d", code)
	}
	if want := serialGridTSV(t, reg, 3); !bytes.Equal(tsv, want) {
		t.Fatalf("fleet TSV differs from serial run:\n got: %q\nwant: %q", tsv, want)
	}

	// Every cell event names a fleet worker.
	var cellEvents int
	for _, ev := range readSSE(t, ts, v.ID, -1) {
		if ev.event != "cell" {
			continue
		}
		cellEvents++
		var wrapper struct {
			Cell *service.CellEvent `json:"cell"`
		}
		if err := json.Unmarshal([]byte(ev.data), &wrapper); err != nil {
			t.Fatal(err)
		}
		if wrapper.Cell == nil || !workerNames[wrapper.Cell.Worker] {
			t.Fatalf("cell event without fleet worker: %s", ev.data)
		}
	}
	if cellEvents != 8 {
		t.Fatalf("cell events = %d, want 8", cellEvents)
	}

	// The worker listing accounts for every executed cell.
	var total uint64
	for _, w := range workerList(t, ts) {
		total += w.Cells
	}
	if total != 8 {
		t.Fatalf("worker cell counters sum to %d, want 8", total)
	}

	// Dispatch metrics series render.
	_, metrics := fetch(t, ts, "/metrics")
	for _, want := range []string{
		`cohsimd_worker_cells_total{worker="fw`,
		fmt.Sprintf("cohsimd_workers_joined_total %d", fleetSize),
		fmt.Sprintf("cohsimd_workers_live %d", fleetSize),
		"cohsimd_cell_cache_hit_ratio 0",
		"cohsimd_dispatch_seconds_count 8",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestFleetWorkerKilledMidJob is the acceptance fault: a worker wedges
// inside a cell and is killed mid-job; the lease is reclaimed, the
// surviving worker retries the cell, and the job completes with output
// byte-identical to a serial run.
func TestFleetWorkerKilledMidJob(t *testing.T) {
	stall := &stallOnce{cell: "g00", release: make(chan struct{})}
	reg := fleetRegistry(6, stall)
	_, ts := newTestServer(t, service.Options{
		Registry:         reg,
		DefaultSeed:      5,
		DispatchLeaseTTL: 250 * time.Millisecond,
	})

	// Victim first, alone: with one slot it eventually wedges on g00.
	killVictim := attachWorker(t, ts, "victim", reg)
	releaseOnce := sync.OnceFunc(func() { close(stall.release) })
	defer func() {
		// Unwedge the victim's goroutine before the server shuts down.
		releaseOnce()
		killVictim()
	}()
	waitWorkers(t, ts, 1)

	status, v, _ := postJob(t, ts, `{"artifacts":["grid"],"sizing":"quick"}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d", status)
	}
	deadline := time.Now().Add(10 * time.Second)
	for stall.runs.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("victim never reached the stalling cell")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Kill it mid-cell, then attach the survivor.
	killVictim()
	killSurvivor := attachWorker(t, ts, "survivor", reg)
	defer killSurvivor()

	done := waitState(t, ts, v.ID, service.StateDone)
	if done.Cells.Executed != 6 {
		t.Fatalf("cells = %+v, want 6 executed", done.Cells)
	}
	code, tsv := fetch(t, ts, "/v1/jobs/"+v.ID+"/artifacts/grid.tsv")
	if code != http.StatusOK {
		t.Fatalf("download = %d", code)
	}
	if want := serialGridTSV(t, reg, 5); !bytes.Equal(tsv, want) {
		t.Fatalf("TSV after worker kill differs from serial run:\n got: %q\nwant: %q", tsv, want)
	}
	_, metrics := fetch(t, ts, "/metrics")
	if !strings.Contains(string(metrics), "cohsimd_lease_reclaims_total") ||
		strings.Contains(string(metrics), "cohsimd_lease_reclaims_total 0\n") {
		t.Fatalf("lease reclaim not recorded:\n%s", metrics)
	}
}

// TestSSELastEventIDResume pins the reconnect satellite: a subscriber
// presenting Last-Event-ID resumes from the next event instead of
// replaying the whole history.
func TestSSELastEventIDResume(t *testing.T) {
	release := make(chan struct{})
	close(release)
	_, ts := newTestServer(t, service.Options{Registry: blockingRegistry(2, release), CellParallel: 1})

	status, v, _ := postJob(t, ts, `{"artifacts":["echo"]}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d", status)
	}
	waitState(t, ts, v.ID, service.StateDone)

	full := readSSE(t, ts, v.ID, -1)
	if len(full) < 3 {
		t.Fatalf("full replay = %d events, want >= 3", len(full))
	}
	for i, ev := range full {
		if ev.id != i {
			t.Fatalf("event %d has id %d; ids must be dense", i, ev.id)
		}
	}

	// Reconnect as if we saw everything but the last event.
	resumeFrom := full[len(full)-2].id
	tail := readSSE(t, ts, v.ID, resumeFrom)
	if len(tail) != 1 || tail[0].id != full[len(full)-1].id {
		t.Fatalf("resume from %d returned %+v, want exactly the final event", resumeFrom, tail)
	}

	// A subscriber that saw everything gets nothing replayed (the job is
	// terminal, so the stream just ends).
	if again := readSSE(t, ts, v.ID, full[len(full)-1].id); len(again) != 0 {
		t.Fatalf("fully caught-up resume replayed %+v", again)
	}
}

// TestFleetRunsProtocolMatrix pushes the real protocol × channel matrix
// artifact through the daemon and a worker fleet: one cell per
// registered protocol executes on the workers, and the assembled TSV is
// byte-identical to a serial in-process run of the same plan.
func TestFleetRunsProtocolMatrix(t *testing.T) {
	reg := experiments.Artifacts()
	_, ts := newTestServer(t, service.Options{Registry: reg, DefaultSeed: experiments.DefaultSeed})
	for i := 0; i < 2; i++ {
		kill := attachWorker(t, ts, fmt.Sprintf("mw%d", i), reg)
		defer kill()
	}
	waitWorkers(t, ts, 2)

	status, v, _ := postJob(t, ts, `{"artifacts":["protomatrix"],"sizing":"quick"}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d", status)
	}
	done := waitState(t, ts, v.ID, service.StateDone)
	if want := len(coherence.Protocols()); done.Cells.Executed+done.Cells.Cached != want {
		t.Fatalf("cells = %+v, want %d (one per protocol)", done.Cells, want)
	}

	code, tsv := fetch(t, ts, "/v1/jobs/"+v.ID+"/artifacts/protomatrix.tsv")
	if code != http.StatusOK {
		t.Fatalf("download = %d", code)
	}
	arts, err := reg.Select([]string{"protomatrix"})
	if err != nil {
		t.Fatal(err)
	}
	r := &harness.Runner{Parallel: 1}
	rep, err := r.Run(context.Background(), harness.Plan{
		Cfg: machine.DefaultConfig(), Seed: experiments.DefaultSeed, Sizing: harness.SizingQuick,
	}, arts)
	if err != nil {
		t.Fatal(err)
	}
	if want := rep.Results[0].TSV(); !bytes.Equal(tsv, want) {
		t.Fatalf("fleet matrix TSV differs from serial run:\n got: %q\nwant: %q", tsv, want)
	}
	// The matrix's headlines: the state channel survives every protocol
	// with silent upgrades and dies under WT-NA; the lrustate metadata
	// channel survives recency policies and dies under RRIP regardless of
	// protocol; dirtystate survives every policy but dies without a dirty
	// state (WT-NA).
	body := string(tsv)
	if !strings.Contains(body, "WT-NA\tLRU\tbinary-state") || !strings.Contains(body, "MESIF\tLRU\tbinary-state") {
		t.Fatalf("matrix missing expected rows:\n%s", body)
	}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		f := strings.Split(line, "\t")
		if len(f) < 8 || f[0] == "protocol" {
			continue
		}
		proto, pol, chn := f[0], f[1], f[2]
		var wantSurvive bool
		switch chn {
		case "lrustate":
			wantSurvive = pol == "LRU" || pol == "tree-PLRU"
		case "dirtystate":
			wantSurvive = proto != "WT-NA"
		default:
			wantSurvive = !(proto == "WT-NA" && (chn == "binary-state" || chn == "multibit"))
		}
		if got := f[6] == "true"; got != wantSurvive {
			t.Errorf("%s/%s/%s survives=%v, want %v", proto, pol, chn, got, wantSurvive)
		}
	}
}
