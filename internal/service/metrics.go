package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Metrics aggregates service counters and latency histograms and
// renders them in the Prometheus text exposition format. It is
// hand-rolled — the repo takes no dependencies — but the exposed series
// scrape cleanly with a stock Prometheus server. It also implements
// dispatch.Observer, so the worker fleet reports straight into it.
type Metrics struct {
	mu sync.Mutex

	jobsAccepted uint64
	jobsRejected uint64
	jobsByState  map[State]uint64

	sweepsAccepted uint64
	sweepsByState  map[State]uint64
	sweepPointsOK  uint64
	sweepPointsBad uint64
	sweepBackoffs  uint64
	sseEvictions   uint64

	cellsExecuted uint64
	cellsCached   uint64
	cellsFailed   uint64

	// Per-tenant series: admissions, 429s by reason, and cell outcomes.
	tenantAccepted map[string]uint64
	tenantRejected map[string]map[string]uint64 // tenant -> reason
	tenantCells    map[string]*tenantCellCounts

	jobSeconds  *histogram
	cellSeconds map[string]*histogram // per artifact

	// Worker-fleet dispatch series.
	workersJoined    uint64
	workersLeft      uint64
	workerCells      map[string]*workerCellCounts // per worker
	leaseReclaims    uint64
	duplicateResults uint64
	localFallbacks   uint64
	dispatchSeconds  *histogram // enqueue -> accepted result
}

// workerCellCounts splits one worker's accepted results by outcome.
type workerCellCounts struct {
	ok     uint64
	failed uint64
}

// tenantCellCounts splits one tenant's cells by outcome.
type tenantCellCounts struct {
	executed uint64
	cached   uint64
	failed   uint64
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		jobsByState:     make(map[State]uint64),
		sweepsByState:   make(map[State]uint64),
		jobSeconds:      newHistogram(jobBuckets),
		cellSeconds:     make(map[string]*histogram),
		workerCells:     make(map[string]*workerCellCounts),
		dispatchSeconds: newHistogram(cellBuckets),
		tenantAccepted:  make(map[string]uint64),
		tenantRejected:  make(map[string]map[string]uint64),
		tenantCells:     make(map[string]*tenantCellCounts),
	}
}

var (
	// cellBuckets span sub-millisecond cached hits to minute-long full
	// sweep cells.
	cellBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60}
	// jobBuckets span cached-job milliseconds to multi-minute cold runs.
	jobBuckets = []float64{0.01, 0.05, 0.25, 1, 5, 15, 60, 300, 900}
)

type histogram struct {
	buckets []float64 // upper bounds, ascending; +Inf implied
	counts  []uint64  // len(buckets)+1
	sum     float64
	total   uint64
}

func newHistogram(buckets []float64) *histogram {
	return &histogram{buckets: buckets, counts: make([]uint64, len(buckets)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v)
	h.counts[i]++
	h.sum += v
	h.total++
}

// JobAccepted counts an admitted job.
func (m *Metrics) JobAccepted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsAccepted++
}

// JobRejected counts a 429 admission rejection.
func (m *Metrics) JobRejected() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsRejected++
}

// JobFinished records a terminal state and the job's wall time.
func (m *Metrics) JobFinished(state State, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsByState[state]++
	m.jobSeconds.observe(seconds)
}

// TenantJobAccepted counts an admitted job against its tenant.
func (m *Metrics) TenantJobAccepted(tenant string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tenantAccepted[tenant]++
}

// TenantJobRejected counts a 429 against its tenant. Reason is
// "queue-full" (global admission) or "quota" (the tenant's own limit).
func (m *Metrics) TenantJobRejected(tenant, reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byReason, ok := m.tenantRejected[tenant]
	if !ok {
		byReason = make(map[string]uint64)
		m.tenantRejected[tenant] = byReason
	}
	byReason[reason]++
}

// TenantCell counts one finished cell against its tenant.
func (m *Metrics) TenantCell(tenant string, cached, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.tenantCells[tenant]
	if !ok {
		c = &tenantCellCounts{}
		m.tenantCells[tenant] = c
	}
	switch {
	case failed:
		c.failed++
	case cached:
		c.cached++
	default:
		c.executed++
	}
}

// SweepAccepted counts an admitted sweep.
func (m *Metrics) SweepAccepted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepsAccepted++
}

// SweepFinished records a sweep's terminal state.
func (m *Metrics) SweepFinished(state State) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepsByState[state]++
}

// SweepPoint records one terminal sweep point.
func (m *Metrics) SweepPoint(failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if failed {
		m.sweepPointsBad++
	} else {
		m.sweepPointsOK++
	}
}

// SweepBackoff counts one admission-control backoff absorbed by a
// sweep point.
func (m *Metrics) SweepBackoff() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepBackoffs++
}

// SSEEvicted counts a slow event-stream subscriber dropped because its
// buffer overflowed.
func (m *Metrics) SSEEvicted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sseEvictions++
}

// CellFinished records one finished cell.
func (m *Metrics) CellFinished(artifact string, cached bool, failed bool, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch {
	case failed:
		m.cellsFailed++
	case cached:
		m.cellsCached++
	default:
		m.cellsExecuted++
	}
	h, ok := m.cellSeconds[artifact]
	if !ok {
		h = newHistogram(cellBuckets)
		m.cellSeconds[artifact] = h
	}
	h.observe(seconds)
}

// WorkerJoined implements dispatch.Observer.
func (m *Metrics) WorkerJoined(worker string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.workersJoined++
}

// WorkerLeft implements dispatch.Observer.
func (m *Metrics) WorkerLeft(worker, reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.workersLeft++
}

// WorkerResult implements dispatch.Observer: per-worker cell counters
// plus the dispatch latency histogram (enqueue to accepted result).
func (m *Metrics) WorkerResult(worker string, failed bool, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.workerCells[worker]
	if !ok {
		c = &workerCellCounts{}
		m.workerCells[worker] = c
	}
	if failed {
		c.failed++
	} else {
		c.ok++
	}
	m.dispatchSeconds.observe(seconds)
}

// LeaseReclaimed implements dispatch.Observer.
func (m *Metrics) LeaseReclaimed(worker string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.leaseReclaims++
}

// DuplicateResult implements dispatch.Observer.
func (m *Metrics) DuplicateResult(worker string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.duplicateResults++
}

// LocalFallback implements dispatch.Observer.
func (m *Metrics) LocalFallback() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.localFallbacks++
}

// AvgJobSeconds estimates mean job wall time (0 when nothing finished),
// used to size Retry-After hints.
func (m *Metrics) AvgJobSeconds() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.jobSeconds.total == 0 {
		return 0
	}
	return m.jobSeconds.sum / float64(m.jobSeconds.total)
}

// Gauges are point-in-time values the service samples at scrape time.
type Gauges struct {
	JobsQueued      int
	JobsRunning     int
	QueueCapacity   int
	ManifestEntries int
	SweepsQueued    int
	SweepsRunning   int
	// Worker-fleet samples (zero when dispatch is disabled).
	WorkersLive        int
	LeasesInFlight     int
	DispatchQueueDepth int
	// TenantQueueDepth samples each tenant's fair-queue lane.
	TenantQueueDepth map[string]int
}

// WriteTo renders every series. Gauges come from the caller so the
// registry itself never reaches back into service internals.
func (m *Metrics) WriteTo(w io.Writer, g Gauges) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP cohsimd_jobs_accepted_total Jobs admitted to the queue.\n# TYPE cohsimd_jobs_accepted_total counter\ncohsimd_jobs_accepted_total %d\n", m.jobsAccepted)
	fmt.Fprintf(w, "# HELP cohsimd_jobs_rejected_total Jobs rejected with 429 (queue full).\n# TYPE cohsimd_jobs_rejected_total counter\ncohsimd_jobs_rejected_total %d\n", m.jobsRejected)

	fmt.Fprintf(w, "# HELP cohsimd_jobs_finished_total Jobs by terminal state.\n# TYPE cohsimd_jobs_finished_total counter\n")
	for _, st := range []State{StateDone, StateFailed, StateCancelled} {
		fmt.Fprintf(w, "cohsimd_jobs_finished_total{state=%q} %d\n", st, m.jobsByState[st])
	}

	fmt.Fprintf(w, "# HELP cohsimd_sweeps_accepted_total Sweeps admitted.\n# TYPE cohsimd_sweeps_accepted_total counter\ncohsimd_sweeps_accepted_total %d\n", m.sweepsAccepted)
	fmt.Fprintf(w, "# HELP cohsimd_sweeps_finished_total Sweeps by terminal state.\n# TYPE cohsimd_sweeps_finished_total counter\n")
	for _, st := range []State{StateDone, StateFailed, StateCancelled} {
		fmt.Fprintf(w, "cohsimd_sweeps_finished_total{state=%q} %d\n", st, m.sweepsByState[st])
	}
	fmt.Fprintf(w, "# HELP cohsimd_sweep_points_total Sweep points by outcome.\n# TYPE cohsimd_sweep_points_total counter\n")
	fmt.Fprintf(w, "cohsimd_sweep_points_total{outcome=\"ok\"} %d\n", m.sweepPointsOK)
	fmt.Fprintf(w, "cohsimd_sweep_points_total{outcome=\"failed\"} %d\n", m.sweepPointsBad)
	fmt.Fprintf(w, "# HELP cohsimd_sweep_backoffs_total Admission-control backoffs absorbed by sweep points.\n# TYPE cohsimd_sweep_backoffs_total counter\ncohsimd_sweep_backoffs_total %d\n", m.sweepBackoffs)
	fmt.Fprintf(w, "# HELP cohsimd_sse_evictions_total Slow event-stream subscribers dropped on buffer overflow.\n# TYPE cohsimd_sse_evictions_total counter\ncohsimd_sse_evictions_total %d\n", m.sseEvictions)

	fmt.Fprintf(w, "# HELP cohsimd_cells_total Cells by outcome.\n# TYPE cohsimd_cells_total counter\n")
	fmt.Fprintf(w, "cohsimd_cells_total{outcome=\"executed\"} %d\n", m.cellsExecuted)
	fmt.Fprintf(w, "cohsimd_cells_total{outcome=\"cached\"} %d\n", m.cellsCached)
	fmt.Fprintf(w, "cohsimd_cells_total{outcome=\"failed\"} %d\n", m.cellsFailed)

	// Cache effectiveness: hits over completed (non-failed) cells, so
	// dashboards can tell "the fleet is cold" from "the cache is off".
	ratio := 0.0
	if n := m.cellsCached + m.cellsExecuted; n > 0 {
		ratio = float64(m.cellsCached) / float64(n)
	}
	fmt.Fprintf(w, "# HELP cohsimd_cell_cache_hit_ratio Manifest cache hits over completed cells.\n# TYPE cohsimd_cell_cache_hit_ratio gauge\ncohsimd_cell_cache_hit_ratio %g\n", ratio)

	tenantNames := make(map[string]bool)
	for n := range m.tenantAccepted {
		tenantNames[n] = true
	}
	for n := range m.tenantRejected {
		tenantNames[n] = true
	}
	for n := range m.tenantCells {
		tenantNames[n] = true
	}
	for n := range g.TenantQueueDepth {
		tenantNames[n] = true
	}
	tenants := make([]string, 0, len(tenantNames))
	for n := range tenantNames {
		tenants = append(tenants, n)
	}
	sort.Strings(tenants)

	fmt.Fprintf(w, "# HELP cohsimd_tenant_jobs_accepted_total Jobs admitted per tenant.\n# TYPE cohsimd_tenant_jobs_accepted_total counter\n")
	for _, n := range tenants {
		fmt.Fprintf(w, "cohsimd_tenant_jobs_accepted_total{tenant=%q} %d\n", n, m.tenantAccepted[n])
	}
	fmt.Fprintf(w, "# HELP cohsimd_tenant_jobs_rejected_total 429s per tenant by reason (queue-full or quota).\n# TYPE cohsimd_tenant_jobs_rejected_total counter\n")
	for _, n := range tenants {
		for _, reason := range []string{"queue-full", "quota"} {
			fmt.Fprintf(w, "cohsimd_tenant_jobs_rejected_total{tenant=%q,reason=%q} %d\n", n, reason, m.tenantRejected[n][reason])
		}
	}
	fmt.Fprintf(w, "# HELP cohsimd_tenant_cells_total Cells run per tenant by outcome.\n# TYPE cohsimd_tenant_cells_total counter\n")
	for _, n := range tenants {
		c := m.tenantCells[n]
		if c == nil {
			c = &tenantCellCounts{}
		}
		fmt.Fprintf(w, "cohsimd_tenant_cells_total{tenant=%q,outcome=\"executed\"} %d\n", n, c.executed)
		fmt.Fprintf(w, "cohsimd_tenant_cells_total{tenant=%q,outcome=\"cached\"} %d\n", n, c.cached)
		fmt.Fprintf(w, "cohsimd_tenant_cells_total{tenant=%q,outcome=\"failed\"} %d\n", n, c.failed)
	}
	fmt.Fprintf(w, "# HELP cohsimd_tenant_queue_depth Jobs waiting on each tenant's fair-queue lane.\n# TYPE cohsimd_tenant_queue_depth gauge\n")
	for _, n := range tenants {
		fmt.Fprintf(w, "cohsimd_tenant_queue_depth{tenant=%q} %d\n", n, g.TenantQueueDepth[n])
	}

	fmt.Fprintf(w, "# HELP cohsimd_workers_joined_total Workers registered with the fleet.\n# TYPE cohsimd_workers_joined_total counter\ncohsimd_workers_joined_total %d\n", m.workersJoined)
	fmt.Fprintf(w, "# HELP cohsimd_workers_left_total Workers deregistered or expired.\n# TYPE cohsimd_workers_left_total counter\ncohsimd_workers_left_total %d\n", m.workersLeft)

	fmt.Fprintf(w, "# HELP cohsimd_worker_cells_total Cells executed per worker by outcome.\n# TYPE cohsimd_worker_cells_total counter\n")
	workerNames := make([]string, 0, len(m.workerCells))
	for n := range m.workerCells {
		workerNames = append(workerNames, n)
	}
	sort.Strings(workerNames)
	for _, n := range workerNames {
		c := m.workerCells[n]
		fmt.Fprintf(w, "cohsimd_worker_cells_total{worker=%q,outcome=\"ok\"} %d\n", n, c.ok)
		fmt.Fprintf(w, "cohsimd_worker_cells_total{worker=%q,outcome=\"failed\"} %d\n", n, c.failed)
	}

	fmt.Fprintf(w, "# HELP cohsimd_lease_reclaims_total Cell leases reclaimed from dead or overdue workers.\n# TYPE cohsimd_lease_reclaims_total counter\ncohsimd_lease_reclaims_total %d\n", m.leaseReclaims)
	fmt.Fprintf(w, "# HELP cohsimd_duplicate_results_total Worker results dropped because their lease was reclaimed.\n# TYPE cohsimd_duplicate_results_total counter\ncohsimd_duplicate_results_total %d\n", m.duplicateResults)
	fmt.Fprintf(w, "# HELP cohsimd_dispatch_local_fallback_total Cells executed in-process by the dispatch fallback.\n# TYPE cohsimd_dispatch_local_fallback_total counter\ncohsimd_dispatch_local_fallback_total %d\n", m.localFallbacks)

	fmt.Fprintf(w, "# HELP cohsimd_jobs_queued Jobs waiting for an executor.\n# TYPE cohsimd_jobs_queued gauge\ncohsimd_jobs_queued %d\n", g.JobsQueued)
	fmt.Fprintf(w, "# HELP cohsimd_jobs_running Jobs currently executing.\n# TYPE cohsimd_jobs_running gauge\ncohsimd_jobs_running %d\n", g.JobsRunning)
	fmt.Fprintf(w, "# HELP cohsimd_queue_capacity Bounded queue capacity.\n# TYPE cohsimd_queue_capacity gauge\ncohsimd_queue_capacity %d\n", g.QueueCapacity)
	fmt.Fprintf(w, "# HELP cohsimd_manifest_entries Cells in the shared manifest cache.\n# TYPE cohsimd_manifest_entries gauge\ncohsimd_manifest_entries %d\n", g.ManifestEntries)
	fmt.Fprintf(w, "# HELP cohsimd_sweeps_queued Sweeps waiting for a run slot.\n# TYPE cohsimd_sweeps_queued gauge\ncohsimd_sweeps_queued %d\n", g.SweepsQueued)
	fmt.Fprintf(w, "# HELP cohsimd_sweeps_running Sweeps currently executing.\n# TYPE cohsimd_sweeps_running gauge\ncohsimd_sweeps_running %d\n", g.SweepsRunning)
	fmt.Fprintf(w, "# HELP cohsimd_workers_live Workers currently attached to the fleet.\n# TYPE cohsimd_workers_live gauge\ncohsimd_workers_live %d\n", g.WorkersLive)
	fmt.Fprintf(w, "# HELP cohsimd_dispatch_leases_in_flight Cells currently leased to workers.\n# TYPE cohsimd_dispatch_leases_in_flight gauge\ncohsimd_dispatch_leases_in_flight %d\n", g.LeasesInFlight)
	fmt.Fprintf(w, "# HELP cohsimd_dispatch_queue_depth Cells awaiting a worker lease.\n# TYPE cohsimd_dispatch_queue_depth gauge\ncohsimd_dispatch_queue_depth %d\n", g.DispatchQueueDepth)

	writeHistogram(w, "cohsimd_job_seconds", "Job wall time by terminal state.", "", m.jobSeconds)
	writeHistogram(w, "cohsimd_dispatch_seconds", "Dispatch latency: cell enqueue to accepted worker result.", "", m.dispatchSeconds)
	names := make([]string, 0, len(m.cellSeconds))
	for n := range m.cellSeconds {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		writeHistogram(w, "cohsimd_cell_seconds", "Cell wall time per artifact.",
			fmt.Sprintf("{artifact=%q}", n), m.cellSeconds[n])
	}
}

func writeHistogram(w io.Writer, name, help, labels string, h *histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	labelJoin := func(le string) string {
		if labels == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return labels[:len(labels)-1] + fmt.Sprintf(",le=%q}", le)
	}
	var cum uint64
	for i, ub := range h.buckets {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelJoin(fmt.Sprintf("%g", ub)), cum)
	}
	cum += h.counts[len(h.buckets)]
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelJoin("+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, h.sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.total)
}
