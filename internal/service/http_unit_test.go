package service

import (
	"testing"
	"time"
)

// TestRetryAfterSeconds pins the rounding direction: hints round UP and
// never reach zero, so a busy queue cannot tell clients to retry
// immediately and hammer it.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{50 * time.Millisecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{1500 * time.Millisecond, 2},
		{1900 * time.Millisecond, 2},
		{60 * time.Second, 60},
		{-time.Second, 1},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%s) = %d, want %d", c.d, got, c.want)
		}
	}
}
