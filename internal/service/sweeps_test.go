package service_test

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"coherentleak/internal/experiments"
	"coherentleak/internal/harness"
	"coherentleak/internal/service"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files from the current run")

func submitSweep(t *testing.T, ts *httptest.Server, body string) (int, service.SweepView, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v service.SweepView
	var raw []byte
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	} else {
		buf := make([]byte, 4096)
		n, _ := resp.Body.Read(buf)
		raw = buf[:n]
	}
	return resp.StatusCode, v, raw
}

func getSweep(t *testing.T, ts *httptest.Server, id string) service.SweepView {
	t.Helper()
	code, body := fetch(t, ts, "/v1/sweeps/"+id)
	if code != http.StatusOK {
		t.Fatalf("GET sweep %s: status %d", id, code)
	}
	var v service.SweepView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitSweep polls until the sweep reaches one of the wanted states,
// failing fast on an unexpected terminal state.
func waitSweep(t *testing.T, ts *httptest.Server, id string, want ...service.State) service.SweepView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		v := getSweep(t, ts, id)
		for _, w := range want {
			if v.State == w {
				return v
			}
		}
		if v.State.Terminal() {
			t.Fatalf("sweep %s reached %s (error %q), want one of %v", id, v.State, v.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for sweep %s to reach %v (now %s)", id, want, v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// readSweepSSE consumes a sweep's event stream to its end (terminal
// state), optionally resuming via Last-Event-ID.
func readSweepSSE(t *testing.T, ts *httptest.Server, id string, lastEventID int) []sseEvent {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/sweeps/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID >= 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(lastEventID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET sweep events = %d", resp.StatusCode)
	}
	var events []sseEvent
	cur := sseEvent{id: -1}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.id, _ = strconv.Atoi(strings.TrimPrefix(line, "id: "))
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "": // dispatch
			events = append(events, cur)
			cur = sseEvent{id: -1}
		}
	}
	return events
}

// gridSweepSpec is the shared 8-point grid (2 QPI latencies x 4 seeds)
// over the deterministic "grid" artifact.
const gridSweepSpec = `{
	"name": "modes",
	"artifacts": ["grid"],
	"sizing": "quick",
	"axes": [
		{"param": "Latencies.QPI", "values": [40, 60]},
		{"param": "seed", "values": [1, 2, 3, 4]}
	],
	"objective": {"artifact": "grid", "column": "value"}
}`

// TestSweepFrontierByteIdenticalAcrossRunModes is the tentpole
// determinism contract: the same sweep spec produces a byte-identical
// ranked frontier TSV whether points run serially in process, on an
// 8-wide cell pool, or leased out to a worker fleet.
func TestSweepFrontierByteIdenticalAcrossRunModes(t *testing.T) {
	run := func(t *testing.T, opts service.Options, fleet int) []byte {
		reg := fleetRegistry(4, nil)
		opts.Registry = reg
		opts.DefaultSeed = 3
		_, ts := newTestServer(t, opts)
		for i := 0; i < fleet; i++ {
			attachWorker(t, ts, fmt.Sprintf("sw%d", i), reg)
		}
		if fleet > 0 {
			waitWorkers(t, ts, fleet)
		}
		code, v, raw := submitSweep(t, ts, gridSweepSpec)
		if code != http.StatusAccepted {
			t.Fatalf("POST /v1/sweeps = %d: %s", code, raw)
		}
		done := waitSweep(t, ts, v.ID, service.StateDone)
		if done.Points.Total != 8 || done.Points.Completed != 8 || done.Points.Failed != 0 {
			t.Fatalf("points = %+v, want 8 total / 8 completed / 0 failed", done.Points)
		}
		tsvCode, tsv := fetch(t, ts, "/v1/sweeps/"+v.ID+"/frontier.tsv")
		if tsvCode != http.StatusOK {
			t.Fatalf("GET frontier.tsv = %d", tsvCode)
		}
		return tsv
	}

	serial := run(t, service.Options{CellParallel: 1, DisableDispatch: true, SweepInFlight: 1}, 0)
	parallel := run(t, service.Options{CellParallel: 8, DisableDispatch: true, SweepInFlight: 6, Executors: 2}, 0)
	fleet := run(t, service.Options{SweepInFlight: 4, Executors: 2}, testFleetSize(t))

	if string(serial) != string(parallel) {
		t.Errorf("serial and parallel frontiers differ:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
	if string(serial) != string(fleet) {
		t.Errorf("serial and fleet frontiers differ:\nserial:\n%s\nfleet:\n%s", serial, fleet)
	}

	// Pin the actual ranking: grid value = seed*100 + cell index, so the
	// top score is seed 4's g03 cell; the QPI=40 point wins the tie on
	// point index.
	lines := strings.Split(strings.TrimRight(string(serial), "\n"), "\n")
	if lines[0] != "rank\tpoint\tscore\tseed\tLatencies.QPI\tseed" {
		t.Fatalf("frontier header = %q", lines[0])
	}
	if len(lines) != 9 {
		t.Fatalf("frontier has %d rows, want 8", len(lines)-1)
	}
	if !strings.HasPrefix(lines[1], "1\t3\t403\t4\t40\t4") {
		t.Errorf("top frontier row = %q, want point 3 (QPI=40, seed=4) scoring 403", lines[1])
	}
}

// TestSweepRerunServedFromCache pins the dedup contract: resubmitting
// an identical sweep on the same daemon is served almost entirely from
// the shared manifest cell cache (>=90% of cells).
func TestSweepRerunServedFromCache(t *testing.T) {
	reg := fleetRegistry(4, nil)
	_, ts := newTestServer(t, service.Options{
		Registry: reg, DefaultSeed: 3, DisableDispatch: true, SweepInFlight: 2,
	})

	code, first, raw := submitSweep(t, ts, gridSweepSpec)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d: %s", code, raw)
	}
	firstDone := waitSweep(t, ts, first.ID, service.StateDone)
	if firstDone.Cells.Executed == 0 {
		t.Fatalf("first sweep executed no cells: %+v", firstDone.Cells)
	}

	code, second, raw := submitSweep(t, ts, gridSweepSpec)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d: %s", code, raw)
	}
	secondDone := waitSweep(t, ts, second.ID, service.StateDone)
	if secondDone.Cells.Total == 0 {
		t.Fatalf("second sweep saw no cells: %+v", secondDone.Cells)
	}
	ratio := float64(secondDone.Cells.Cached) / float64(secondDone.Cells.Total)
	if ratio < 0.9 {
		t.Errorf("second sweep cache ratio = %.2f (%d/%d cached), want >= 0.9",
			ratio, secondDone.Cells.Cached, secondDone.Cells.Total)
	}

	_, tsv1 := fetch(t, ts, "/v1/sweeps/"+first.ID+"/frontier.tsv")
	_, tsv2 := fetch(t, ts, "/v1/sweeps/"+second.ID+"/frontier.tsv")
	if string(tsv1) != string(tsv2) {
		t.Errorf("cached rerun frontier differs:\nfirst:\n%s\nsecond:\n%s", tsv1, tsv2)
	}
}

// TestSweepSlowSubscriberEvictionAndResume pins SSE flow control under
// a large sweep stream: a subscriber that never reads is evicted once
// the sweep outruns its buffer (the eviction metric ticks), and a
// reconnect with Last-Event-ID recovers every missed event through the
// terminal state.
func TestSweepSlowSubscriberEvictionAndResume(t *testing.T) {
	release := make(chan struct{})
	releaseOnce := func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}
	defer releaseOnce()

	reg := fleetRegistry(1, nil)
	reg.MustRegister(&harness.Artifact{
		Name: "gate", Description: "one cell blocks until released",
		File: "gate.tsv", Header: "cell\tv",
		Cells: func(p harness.Plan) ([]harness.Cell, error) {
			return []harness.Cell{{Name: "g", Run: func() (harness.CellOutput, error) {
				<-release
				return harness.CellOutput{Rows: []string{"g\t1"}}, nil
			}}}, nil
		},
	})
	svc, ts := newTestServer(t, service.Options{
		Registry: reg, DefaultSeed: 3, DisableDispatch: true, SweepInFlight: 1,
	})

	// Park a gate job on the single executor so the sweep cannot publish
	// point events before the slow subscriber attaches.
	code, gate, _ := postJob(t, ts, `{"artifacts":["gate"]}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST gate job = %d", code)
	}
	waitState(t, ts, gate.ID, service.StateRunning)

	// 150 points x (point + frontier) events plus state transitions
	// comfortably overflows the 256-event sweep buffer.
	code, sw, raw := submitSweep(t, ts, `{
		"name": "big",
		"artifacts": ["grid"],
		"axes": [{"param": "seed", "min": 1, "max": 150, "steps": 150, "ints": true}],
		"objective": {"artifact": "grid", "column": "value"}
	}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d: %s", code, raw)
	}

	history, ch, unsub, ok := svc.SubscribeSweep(sw.ID)
	if !ok {
		t.Fatalf("SubscribeSweep(%s) missing", sw.ID)
	}
	defer unsub()
	if ch == nil {
		t.Fatal("sweep already terminal at subscribe time")
	}
	maxSeq := -1
	for _, ev := range history {
		if ev.Seq > maxSeq {
			maxSeq = ev.Seq
		}
	}

	releaseOnce()
	waitState(t, ts, gate.ID, service.StateDone)
	done := waitSweep(t, ts, sw.ID, service.StateDone)
	if done.Points.Completed != 150 {
		t.Fatalf("points completed = %d, want 150", done.Points.Completed)
	}

	// The subscriber never read: its channel must have been closed by
	// eviction, holding at most one buffer's worth of events.
	drained := 0
	deadline := time.After(10 * time.Second)
drain:
	for {
		select {
		case ev, open := <-ch:
			if !open {
				break drain
			}
			drained++
			if ev.Seq > maxSeq {
				maxSeq = ev.Seq
			}
		case <-deadline:
			t.Fatal("slow subscriber channel never closed; eviction did not fire")
		}
	}

	full := readSweepSSE(t, ts, sw.ID, -1)
	lastSeq := full[len(full)-1].id
	if maxSeq >= lastSeq {
		t.Fatalf("slow subscriber saw seq %d of %d: stream never outran the buffer", maxSeq, lastSeq)
	}
	t.Logf("evicted after %d buffered events (seq %d of %d)", drained+len(history), maxSeq, lastSeq)

	// Last-Event-ID resume recovers exactly the gap, ending terminal.
	resumed := readSweepSSE(t, ts, sw.ID, maxSeq)
	if len(resumed) == 0 {
		t.Fatal("resume returned no events")
	}
	if resumed[0].id != maxSeq+1 {
		t.Errorf("resume started at seq %d, want %d", resumed[0].id, maxSeq+1)
	}
	for i := 1; i < len(resumed); i++ {
		if resumed[i].id != resumed[i-1].id+1 {
			t.Fatalf("resumed stream has a gap: seq %d follows %d", resumed[i].id, resumed[i-1].id)
		}
	}
	tail := resumed[len(resumed)-1]
	if tail.event != "state" || !strings.Contains(tail.data, `"state":"done"`) {
		t.Errorf("resumed stream ended with %s %q, want terminal state event", tail.event, tail.data)
	}

	metricsCode, metrics := fetch(t, ts, "/metrics")
	if metricsCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", metricsCode)
	}
	if !evictionCounterPositive(string(metrics)) {
		t.Errorf("cohsimd_sse_evictions_total not incremented:\n%s", metrics)
	}
}

func evictionCounterPositive(metrics string) bool {
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "cohsimd_sse_evictions_total ") {
			n, err := strconv.ParseFloat(strings.Fields(line)[1], 64)
			return err == nil && n >= 1
		}
	}
	return false
}

// TestSweepBackoffOnFullQueue pins sweep-aware admission control end to
// end: with the job queue full, point submissions are retried after the
// server's computed Retry-After instead of failing, and the sweep still
// completes once the queue drains.
func TestSweepBackoffOnFullQueue(t *testing.T) {
	release := make(chan struct{})
	released := false
	releaseAll := func() {
		if !released {
			released = true
			close(release)
		}
	}
	defer releaseAll()
	reg := blockingRegistry(1, release)
	_, ts := newTestServer(t, service.Options{
		Registry: reg, QueueDepth: 1, Executors: 1, DisableDispatch: true, SweepInFlight: 1,
	})

	// One job running, one queued: the queue is now full.
	code, running, _ := postJob(t, ts, `{"artifacts":["block"]}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST block job = %d", code)
	}
	waitState(t, ts, running.ID, service.StateRunning)
	if code, _, _ := postJob(t, ts, `{"artifacts":["block"]}`); code != http.StatusAccepted {
		t.Fatalf("POST queued block job = %d", code)
	}

	code, sw, raw := submitSweep(t, ts, `{
		"artifacts": ["echo"],
		"axes": [{"param": "seed", "values": [1, 2]}],
		"objective": {"artifact": "echo", "column": "v"}
	}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d: %s", code, raw)
	}

	// The first point must hit admission control and back off rather
	// than fail.
	deadline := time.Now().Add(30 * time.Second)
	for getSweep(t, ts, sw.ID).Points.Retries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweep never recorded a backoff against the full queue")
		}
		time.Sleep(10 * time.Millisecond)
	}

	releaseAll()
	done := waitSweep(t, ts, sw.ID, service.StateDone)
	if done.Points.Completed != 2 || done.Points.Failed != 0 {
		t.Fatalf("points = %+v, want 2 completed / 0 failed", done.Points)
	}
	if done.Points.Retries == 0 {
		t.Error("final view lost the retry count")
	}

	// The stream must carry the backoff events it announced.
	events := readSweepSSE(t, ts, sw.ID, -1)
	backoffs := 0
	for _, ev := range events {
		if ev.event == "backoff" {
			backoffs++
			if !strings.Contains(ev.data, "retryAfterSeconds") {
				t.Errorf("backoff event without retryAfterSeconds: %q", ev.data)
			}
		}
	}
	if backoffs == 0 {
		t.Error("no backoff events in the sweep stream")
	}
}

// TestSweepSubmitValidation pins the dry-run contract: malformed specs
// are rejected at submit time with HTTP 400, before any point runs.
func TestSweepSubmitValidation(t *testing.T) {
	reg := fleetRegistry(2, nil)
	_, ts := newTestServer(t, service.Options{Registry: reg, DefaultSeed: 3, DisableDispatch: true})

	cases := []struct {
		name, body, wantErr string
	}{
		{
			"unknown axis path",
			`{"artifacts":["grid"],"axes":[{"param":"Latencies.Bogus","values":[1]}],"objective":{"artifact":"grid","column":"value"}}`,
			"point 0",
		},
		{
			"unknown artifact",
			`{"artifacts":["nope"],"axes":[{"param":"seed","values":[1]}],"objective":{"artifact":"nope","column":"value"}}`,
			"nope",
		},
		{
			"objective artifact not swept",
			`{"artifacts":["grid"],"axes":[{"param":"seed","values":[1]}],"objective":{"artifact":"other","column":"value"}}`,
			"objective",
		},
		{
			"no axes",
			`{"artifacts":["grid"],"objective":{"artifact":"grid","column":"value"}}`,
			"axis",
		},
		{
			"over budget",
			`{"artifacts":["grid"],"maxPoints":2,"axes":[{"param":"seed","values":[1,2,3,4]}],"objective":{"artifact":"grid","column":"value"}}`,
			"budget",
		},
		{
			"unknown spec field",
			`{"artifacts":["grid"],"bogus":true,"axes":[{"param":"seed","values":[1]}],"objective":{"artifact":"grid","column":"value"}}`,
			"bogus",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, raw := submitSweep(t, ts, tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("POST /v1/sweeps = %d, want 400 (body %s)", code, raw)
			}
			if !strings.Contains(string(raw), tc.wantErr) {
				t.Errorf("error %q does not mention %q", raw, tc.wantErr)
			}
		})
	}

	if code, _ := fetch(t, ts, "/v1/sweeps/sweep-999999"); code != http.StatusNotFound {
		t.Errorf("GET unknown sweep = %d, want 404", code)
	}
}

// TestSweepReplacementAxis pins the replacement policy as a sweep
// dimension: a string-valued "Replacement" axis expands into per-policy
// points that run to completion, while an unregistered policy name is
// rejected at submission by the dry-run (400 naming the point), not
// mid-sweep.
func TestSweepReplacementAxis(t *testing.T) {
	reg := fleetRegistry(2, nil)
	_, ts := newTestServer(t, service.Options{Registry: reg, DefaultSeed: 3, DisableDispatch: true})

	code, sw, raw := submitSweep(t, ts, `{
		"artifacts": ["grid"],
		"axes": [{"param": "Replacement", "values": ["LRU", "tree-plru", "srrip", "brrip"]}],
		"objective": {"artifact": "grid", "column": "value"}
	}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d: %s", code, raw)
	}
	done := waitSweep(t, ts, sw.ID, service.StateDone)
	if done.Points.Completed != 4 {
		t.Fatalf("points = %+v, want one completed per policy", done.Points)
	}

	code, _, raw = submitSweep(t, ts, `{
		"artifacts": ["grid"],
		"axes": [{"param": "Replacement", "values": ["LRU", "mru"]}],
		"objective": {"artifact": "grid", "column": "value"}
	}`)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown policy sweep = %d, want 400 (body %s)", code, raw)
	}
	if !strings.Contains(string(raw), "point 1") || !strings.Contains(string(raw), "replacement policy") {
		t.Errorf("error %q should name the failing point and the policy registry", raw)
	}
}

// TestSweepCancel pins DELETE /v1/sweeps/{id}: a running sweep moves to
// cancelled without waiting for its in-flight point.
func TestSweepCancel(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	reg := blockingRegistry(1, release)
	_, ts := newTestServer(t, service.Options{
		Registry: reg, QueueDepth: 4, Executors: 1, DisableDispatch: true, SweepInFlight: 1,
	})

	code, sw, raw := submitSweep(t, ts, `{
		"artifacts": ["block"],
		"axes": [{"param": "seed", "values": [1, 2]}],
		"objective": {"artifact": "block", "column": "v"}
	}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d: %s", code, raw)
	}
	waitSweep(t, ts, sw.ID, service.StateRunning)

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+sw.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE sweep = %d", resp.StatusCode)
	}

	v := waitSweep(t, ts, sw.ID, service.StateCancelled)
	if v.Error != "cancelled by client" {
		t.Errorf("cancelled sweep error = %q", v.Error)
	}
	// The terminal state event must close the stream for late readers.
	events := readSweepSSE(t, ts, sw.ID, -1)
	tail := events[len(events)-1]
	if tail.event != "state" || !strings.Contains(tail.data, `"state":"cancelled"`) {
		t.Errorf("stream tail = %s %q, want cancelled state event", tail.event, tail.data)
	}
}

// TestSweepSmokeGolden is the CI smoke gate (make sweep-smoke): a tiny
// 8-point capacity sweep through the daemon with an attached worker
// fleet must reproduce the golden frontier TSV byte for byte. Run with
// -update-golden to regenerate after an intentional simulator change.
func TestSweepSmokeGolden(t *testing.T) {
	reg := experiments.Artifacts()
	_, ts := newTestServer(t, service.Options{
		Registry: reg, DefaultSeed: experiments.DefaultSeed, SweepInFlight: 2, Executors: 2,
	})
	fleet := testFleetSize(t)
	for i := 0; i < fleet; i++ {
		attachWorker(t, ts, fmt.Sprintf("smoke%d", i), reg)
	}
	waitWorkers(t, ts, fleet)

	code, sw, raw := submitSweep(t, ts, `{
		"name": "smoke",
		"artifacts": ["capacity"],
		"sizing": "quick",
		"axes": [
			{"param": "Latencies.QPI", "values": [40, 60]},
			{"param": "seed", "values": [1, 2, 3, 4]}
		],
		"objective": {"artifact": "capacity", "column": "info_kbps", "filter": {"noise": "8"}}
	}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d: %s", code, raw)
	}
	done := waitSweep(t, ts, sw.ID, service.StateDone)
	if done.Points.Completed != 8 {
		t.Fatalf("points = %+v, want 8 completed", done.Points)
	}

	tsvCode, tsv := fetch(t, ts, "/v1/sweeps/"+sw.ID+"/frontier.tsv")
	if tsvCode != http.StatusOK {
		t.Fatalf("GET frontier.tsv = %d", tsvCode)
	}
	golden := filepath.Join("testdata", "sweep_smoke_frontier.tsv")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, tsv, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run go test -run TestSweepSmokeGolden -update-golden): %v", err)
	}
	if string(tsv) != string(want) {
		t.Errorf("frontier drifted from golden %s:\ngot:\n%s\nwant:\n%s", golden, tsv, want)
	}
}
