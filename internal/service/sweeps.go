package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"coherentleak/internal/sweep"
	"coherentleak/internal/tenant"
)

// sweepEventBuffer bounds a sweep subscriber's unread backlog. Sweeps
// emit an event per point plus frontier updates — hundreds for a large
// grid — so the buffer is deliberately smaller than a job's: a stalled
// subscriber is evicted and recovers by reconnecting with
// Last-Event-ID.
const sweepEventBuffer = 256

// SweepEvent is one entry in a sweep's progress stream, sequenced and
// replayed exactly like job events.
type SweepEvent struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // "state", "point", "backoff" or "frontier"
	// State is set on "state" events.
	State State `json:"state,omitempty"`
	// Error carries the failure reason on terminal "state" events.
	Error string `json:"error,omitempty"`
	// Done/Total track point completion on progress events.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Point is set on "point" (terminal outcome) and "backoff" events.
	Point *SweepPointView `json:"point,omitempty"`
	// Frontier is the ranked snapshot on "frontier" events.
	Frontier []FrontierRow `json:"frontier,omitempty"`
}

// ParamView is one axis assignment rendered for JSON clients.
type ParamView struct {
	Param string `json:"param"`
	Value string `json:"value"`
}

// SweepPointView describes one point outcome over the wire.
type SweepPointView struct {
	Index   int         `json:"index"`
	Seed    uint64      `json:"seed"`
	Params  []ParamView `json:"params"`
	JobID   string      `json:"jobId,omitempty"`
	Score   float64     `json:"score"`
	Scored  bool        `json:"scored"`
	Error   string      `json:"error,omitempty"`
	Retries int         `json:"retries,omitempty"`
	// RetryAfterSeconds is the wait a backoff event announces.
	RetryAfterSeconds float64          `json:"retryAfterSeconds,omitempty"`
	Cells             sweep.CellCounts `json:"cells"`
}

// FrontierRow is one ranked frontier entry over the wire.
type FrontierRow struct {
	Rank   int         `json:"rank"`
	Point  int         `json:"point"`
	Score  float64     `json:"score"`
	Seed   uint64      `json:"seed"`
	Params []ParamView `json:"params"`
	JobID  string      `json:"jobId,omitempty"`
}

// Sweep is one admitted parameter sweep. Mutable state is guarded by
// the owning Service's mu, mirroring Job.
type Sweep struct {
	ID string
	// Tenant names the owning tenant; its points are submitted on that
	// tenant's fair-queue lane and count against its quotas.
	Tenant  string
	Spec    sweep.Spec
	Created time.Time

	// owner carries the tenant's weight and quotas into point
	// submissions.
	owner *tenant.Tenant

	cancel context.CancelCauseFunc

	state     State
	started   time.Time
	finished  time.Time
	errMsg    string
	total     int
	done      int
	completed int
	failed    int
	retries   int
	cells     sweep.CellCounts
	frontier  []sweep.Entry
	stream    *eventLog[SweepEvent]
}

// SweepPointsView summarizes point progress counters.
type SweepPointsView struct {
	Total     int `json:"total"`
	Done      int `json:"done"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Retries   int `json:"retries"`
}

// SweepView is the JSON representation of a sweep.
type SweepView struct {
	ID         string           `json:"id"`
	State      State            `json:"state"`
	Tenant     string           `json:"tenant,omitempty"`
	Name       string           `json:"name,omitempty"`
	Artifacts  []string         `json:"artifacts,omitempty"`
	Strategy   string           `json:"strategy"`
	Objective  string           `json:"objective"`
	Created    time.Time        `json:"created"`
	Started    *time.Time       `json:"started,omitempty"`
	Finished   *time.Time       `json:"finished,omitempty"`
	WallMillis float64          `json:"wallMillis,omitempty"`
	Error      string           `json:"error,omitempty"`
	Points     SweepPointsView  `json:"points"`
	Cells      sweep.CellCounts `json:"cells"`
	Frontier   []FrontierRow    `json:"frontier,omitempty"`
	// FrontierTSV and Events link the deterministic table and the SSE
	// stream.
	FrontierTSV string `json:"frontierTsv"`
	Events      string `json:"events"`
}

func paramViews(ps []sweep.ParamValue) []ParamView {
	out := make([]ParamView, len(ps))
	for i, p := range ps {
		out[i] = ParamView{Param: p.Param, Value: p.Display()}
	}
	return out
}

func frontierRows(entries []sweep.Entry) []FrontierRow {
	out := make([]FrontierRow, len(entries))
	for i, e := range entries {
		out[i] = FrontierRow{
			Rank:   i + 1,
			Point:  e.Point.Index,
			Score:  e.Score,
			Seed:   e.Point.Seed,
			Params: paramViews(e.Point.Params),
			JobID:  e.JobID,
		}
	}
	return out
}

func pointView(pr *sweep.PointReport) *SweepPointView {
	v := &SweepPointView{
		Index:             pr.Point.Index,
		Seed:              pr.Point.Seed,
		Params:            paramViews(pr.Point.Params),
		JobID:             pr.JobID,
		Score:             pr.Score,
		Scored:            pr.Scored,
		Retries:           pr.Retries,
		RetryAfterSeconds: pr.RetryAfter.Seconds(),
		Cells:             pr.Cells,
	}
	if pr.Err != nil {
		v.Error = pr.Err.Error()
	}
	return v
}

// view renders the sweep under the service lock.
func (sw *Sweep) view() SweepView {
	obj, err := sweep.BuildObjective(sw.Spec.Objective)
	desc := ""
	if err == nil {
		desc = obj.Describe()
	}
	strategy := sw.Spec.Strategy
	if strategy == "" {
		strategy = sweep.StrategyGrid
	}
	v := SweepView{
		ID:          sw.ID,
		State:       sw.state,
		Tenant:      sw.Tenant,
		Name:        sw.Spec.Name,
		Artifacts:   sw.Spec.Artifacts,
		Strategy:    strategy,
		Objective:   desc,
		Created:     sw.Created,
		Error:       sw.errMsg,
		Points:      SweepPointsView{Total: sw.total, Done: sw.done, Completed: sw.completed, Failed: sw.failed, Retries: sw.retries},
		Cells:       sw.cells,
		Frontier:    frontierRows(sw.frontier),
		FrontierTSV: "/v1/sweeps/" + sw.ID + "/frontier.tsv",
		Events:      "/v1/sweeps/" + sw.ID + "/events",
	}
	if !sw.started.IsZero() {
		t := sw.started
		v.Started = &t
	}
	if !sw.finished.IsZero() {
		t := sw.finished
		v.Finished = &t
		v.WallMillis = float64(sw.finished.Sub(sw.started)) / float64(time.Millisecond)
	}
	return v
}

// publish appends a sweep event. Caller holds the service lock.
func (sw *Sweep) publish(ev SweepEvent) {
	ev.Seq = sw.stream.seq()
	sw.stream.publish(ev, ev.Type == "state" && ev.State.Terminal())
}

// SubmitSweep validates and launches a sweep on the anonymous
// tenant's behalf.
func (s *Service) SubmitSweep(spec sweep.Spec) (*Sweep, error) {
	return s.SubmitSweepAs(s.fallbackTenant(), spec)
}

// SubmitSweepAs validates and launches a sweep owned by tn. The whole
// grid is expanded and every point's config is dry-run through plan
// building up front, so a typo'd axis path or over-budget grid fails
// the submit (HTTP 400) instead of failing hundreds of points later.
// The tenant's SweepBudget caps the expanded point count (a client
// error: resubmitting the same grid can never succeed), and
// MaxQueuedPoints caps pending points across its active sweeps
// (ErrQuota, an admission failure worth retrying).
func (s *Service) SubmitSweepAs(tn *tenant.Tenant, spec sweep.Spec) (*Sweep, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if a := spec.Objective.Artifact; a != "" && len(spec.Artifacts) > 0 {
		found := false
		for _, name := range spec.Artifacts {
			found = found || name == a
		}
		if !found {
			return nil, fmt.Errorf("sweep: objective reads artifact %q but the sweep only runs %v", a, spec.Artifacts)
		}
	}
	points, err := sweep.Expand(spec, s.opts.DefaultSeed)
	if err != nil {
		return nil, err
	}
	if tn.SweepBudget > 0 && len(points) > tn.SweepBudget {
		return nil, fmt.Errorf("sweep: %d point(s) exceed tenant %s's sweep budget of %d",
			len(points), tn.Name, tn.SweepBudget)
	}
	for _, pt := range points {
		req := s.sweepPointRequest(spec, pt)
		if _, _, _, err := s.buildPlan(req); err != nil {
			return nil, fmt.Errorf("point %d (%s): %w", pt.Index, describeParams(pt), err)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	u := s.usageLocked(tn.Name)
	if tn.MaxQueuedPoints > 0 && u.pointsPending+len(points) > tn.MaxQueuedPoints {
		return nil, fmt.Errorf("%w: tenant %s has %d pending sweep point(s); %d more would exceed maxQueuedPoints %d",
			ErrQuota, tn.Name, u.pointsPending, len(points), tn.MaxQueuedPoints)
	}
	s.sweepSeq++
	sw := &Sweep{
		ID:      fmt.Sprintf("sweep-%06d", s.sweepSeq),
		Tenant:  tn.Name,
		Spec:    spec,
		Created: time.Now(),
		owner:   tn,
		state:   StateQueued,
		total:   len(points),
		stream:  newEventLog[SweepEvent](sweepEventBuffer, s.metrics.SSEEvicted),
	}
	u.pointsPending += len(points)
	u.sweepsActive++
	s.sweeps[sw.ID] = sw
	s.sweepOrder = append(s.sweepOrder, sw.ID)
	s.metrics.SweepAccepted()
	sw.publish(SweepEvent{Type: "state", State: StateQueued, Total: sw.total})
	s.logf("%s queued (tenant %s): %d point(s) over %v, objective %s", sw.ID, tn.Name, len(points), spec.AxisNames(), spec.Objective.Column)
	s.sweepWG.Add(1)
	go s.runSweep(sw)
	return sw, nil
}

func describeParams(pt sweep.Point) string {
	out := ""
	for i, p := range pt.Params {
		if i > 0 {
			out += " "
		}
		out += p.Param + "=" + p.Display()
	}
	return out
}

// sweepPointRequest maps one expanded point onto a job submission.
func (s *Service) sweepPointRequest(spec sweep.Spec, pt sweep.Point) *SubmitRequest {
	seed := pt.Seed
	return &SubmitRequest{
		Artifacts: spec.Artifacts,
		Seed:      &seed,
		Sizing:    spec.Sizing,
		Config:    pt.Config,
		Kernel:    spec.Kernel,
	}
}

// Sweep looks up one sweep by ID.
func (s *Service) Sweep(id string) (*Sweep, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	return sw, ok
}

// SweepViews lists every sweep in submission order.
func (s *Service) SweepViews() []SweepView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SweepView, 0, len(s.sweepOrder))
	for _, id := range s.sweepOrder {
		out = append(out, s.sweeps[id].view())
	}
	return out
}

// SweepView renders one sweep.
func (s *Service) SweepView(id string) (SweepView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	if !ok {
		return SweepView{}, false
	}
	return sw.view(), true
}

// SweepViewsFor lists one tenant's sweeps in submission order.
func (s *Service) SweepViewsFor(tn *tenant.Tenant) []SweepView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SweepView, 0, len(s.sweepOrder))
	for _, id := range s.sweepOrder {
		if sw := s.sweeps[id]; sw.Tenant == tn.Name {
			out = append(out, sw.view())
		}
	}
	return out
}

// SweepViewFor renders one sweep if tn owns it; other tenants' sweeps
// report not-found so IDs cannot be probed across tenants.
func (s *Service) SweepViewFor(tn *tenant.Tenant, id string) (SweepView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	if !ok || sw.Tenant != tn.Name {
		return SweepView{}, false
	}
	return sw.view(), true
}

// ownsSweep reports whether tn owns the sweep.
func (s *Service) ownsSweep(tn *tenant.Tenant, id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	return ok && sw.Tenant == tn.Name
}

// CancelSweepFor cancels a sweep tn owns.
func (s *Service) CancelSweepFor(tn *tenant.Tenant, id string) bool {
	if !s.ownsSweep(tn, id) {
		return false
	}
	return s.CancelSweep(id)
}

// SubscribeSweepFor is SubscribeSweep restricted to sweeps tn owns.
func (s *Service) SubscribeSweepFor(tn *tenant.Tenant, id string) (history []SweepEvent, ch chan SweepEvent, cancel func(), ok bool) {
	if !s.ownsSweep(tn, id) {
		return nil, nil, nil, false
	}
	return s.SubscribeSweep(id)
}

// SweepFrontierTSVFor serves the frontier of a sweep tn owns.
func (s *Service) SweepFrontierTSVFor(tn *tenant.Tenant, id string) ([]byte, bool) {
	if !s.ownsSweep(tn, id) {
		return nil, false
	}
	return s.SweepFrontierTSV(id)
}

// SweepFrontierTSV renders a sweep's current ranked frontier — the
// deterministic table a fixed spec + seed reproduces byte-for-byte.
func (s *Service) SweepFrontierTSV(id string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	if !ok {
		return nil, false
	}
	f := sweep.NewFrontier(sw.Spec.Objective.Maximize(), sw.Spec.TopK)
	for _, e := range sw.frontier {
		f.Add(e)
	}
	return f.TSV(sw.Spec.AxisNames()), true
}

// CancelSweep cancels a queued or running sweep. It reports whether the
// sweep exists; cancelling a terminal sweep is a no-op.
func (s *Service) CancelSweep(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	if !ok {
		return false
	}
	switch sw.state {
	case StateQueued:
		s.finishSweepLocked(sw, StateCancelled, "cancelled by client")
		if sw.cancel != nil {
			sw.cancel(errCancelled)
		}
	case StateRunning:
		sw.cancel(errCancelled)
	}
	return true
}

// SubscribeSweep returns a sweep's event history and live channel (nil
// channel when the sweep is terminal), plus an unsubscribe func.
func (s *Service) SubscribeSweep(id string) (history []SweepEvent, ch chan SweepEvent, cancel func(), ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, oks := s.sweeps[id]
	if !oks {
		return nil, nil, nil, false
	}
	history, ch, subID := sw.stream.subscribe(sw.state.Terminal())
	if ch == nil {
		return history, nil, func() {}, true
	}
	return history, ch, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		sw.stream.unsubscribe(subID)
	}, true
}

// finishSweepLocked moves a sweep to a terminal state. Caller holds s.mu.
func (s *Service) finishSweepLocked(sw *Sweep, state State, errMsg string) {
	if sw.state.Terminal() {
		return
	}
	// Release the points that will now never run from the tenant's
	// pending-point budget (finished points were released one by one as
	// their events arrived).
	if remaining := sw.total - sw.done; remaining > 0 {
		s.usageLocked(sw.Tenant).pointsPending -= remaining
	}
	s.usageLocked(sw.Tenant).sweepsActive--
	if sw.started.IsZero() {
		sw.started = sw.Created
	}
	sw.state = state
	sw.errMsg = errMsg
	sw.finished = time.Now()
	sw.publish(SweepEvent{Type: "state", State: state, Error: errMsg, Done: sw.done, Total: sw.total})
	s.metrics.SweepFinished(state)
	s.logf("%s %s%s", sw.ID, state, suffixIf(errMsg))
}

// runSweep drives one sweep through the engine: wait for a slot on the
// sweep gate, run every point as a service job, finish with a terminal
// state derived from the cancellation cause.
func (s *Service) runSweep(sw *Sweep) {
	defer s.sweepWG.Done()
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)

	s.mu.Lock()
	if sw.state.Terminal() {
		s.mu.Unlock()
		return
	}
	sw.cancel = cancel
	s.mu.Unlock()

	// The gate bounds concurrent sweeps; queued ones wait here,
	// cancellable the whole time.
	select {
	case s.sweepGate <- struct{}{}:
	case <-ctx.Done():
		s.mu.Lock()
		s.finishSweepLocked(sw, StateCancelled, cancelMessage(ctx))
		s.mu.Unlock()
		return
	}
	defer func() { <-s.sweepGate }()

	s.mu.Lock()
	if sw.state.Terminal() {
		s.mu.Unlock()
		return
	}
	sw.state = StateRunning
	sw.started = time.Now()
	s.sweepsRunning++
	sw.publish(SweepEvent{Type: "state", State: StateRunning, Total: sw.total})
	s.mu.Unlock()

	rep, runErr := sweep.Run(ctx, sw.Spec, sweep.Options{
		Runner: sweep.RunnerFunc(func(ctx context.Context, pt sweep.Point) (sweep.PointResult, error) {
			return s.runSweepPoint(ctx, sw, pt)
		}),
		DefaultSeed: s.opts.DefaultSeed,
		InFlight:    s.opts.SweepInFlight,
		Observe:     func(ev sweep.Event) { s.observeSweep(sw, ev) },
	})

	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepsRunning--
	if rep != nil {
		sw.frontier = rep.Frontier.Entries()
	}
	switch {
	case runErr == nil && rep.Failed == 0:
		s.finishSweepLocked(sw, StateDone, "")
	case runErr == nil:
		s.finishSweepLocked(sw, StateFailed, fmt.Sprintf("%d of %d point(s) failed", rep.Failed, sw.total))
	case context.Cause(ctx) != nil && context.Cause(ctx) != context.Canceled:
		s.finishSweepLocked(sw, StateCancelled, cancelMessage(ctx))
	default:
		s.finishSweepLocked(sw, StateFailed, runErr.Error())
	}
}

func cancelMessage(ctx context.Context) string {
	switch context.Cause(ctx) {
	case errShutdown:
		return errShutdown.Error()
	default:
		return "cancelled by client"
	}
}

// observeSweep translates one engine event into sweep state, metrics
// and the SSE stream. Called from engine workers under the engine's
// lock; takes s.mu (never the other way round, so no inversion).
func (s *Service) observeSweep(sw *Sweep, ev sweep.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := SweepEvent{Type: ev.Type, Done: ev.Done, Total: ev.Total}
	switch ev.Type {
	case sweep.EventPoint:
		sw.done = ev.Done
		if !sw.state.Terminal() {
			s.usageLocked(sw.Tenant).pointsPending--
		}
		if ev.Point.Scored {
			sw.completed++
		} else {
			sw.failed++
		}
		sw.cells.Add(ev.Point.Cells)
		s.metrics.SweepPoint(!ev.Point.Scored)
		out.Point = pointView(ev.Point)
	case sweep.EventBackoff:
		sw.retries++
		s.metrics.SweepBackoff()
		out.Point = pointView(ev.Point)
	case sweep.EventFrontier:
		sw.frontier = ev.Frontier
		out.Frontier = frontierRows(ev.Frontier)
	default:
		return
	}
	sw.publish(out)
}

// runSweepPoint executes one point as a regular service job submitted
// on the owning tenant's fair-queue lane, so a sweep's firehose of
// points competes as that tenant, not ahead of other tenants.
// Queue-full and tenant-quota rejections become RetryErrors so the
// engine backs off instead of failing the point; the shared cell
// store dedupes repeated cells across points automatically.
func (s *Service) runSweepPoint(ctx context.Context, sw *Sweep, pt sweep.Point) (sweep.PointResult, error) {
	var res sweep.PointResult
	job, err := s.SubmitAs(sw.owner, s.sweepPointRequest(sw.Spec, pt))
	if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrQuota) {
		return res, &sweep.RetryError{After: s.RetryAfterTenant(sw.Tenant), Err: err}
	}
	if err != nil {
		return res, err
	}
	state, errMsg, err := s.followJob(ctx, job.ID)
	if err != nil {
		return res, err
	}
	if state != StateDone {
		return res, fmt.Errorf("%s %s%s", job.ID, state, suffixIf(errMsg))
	}
	v, ok := s.JobView(job.ID)
	if !ok {
		return res, fmt.Errorf("%s vanished", job.ID)
	}
	res.JobID = job.ID
	res.Cells = sweep.CellCounts{
		Total:    v.Cells.Total,
		Executed: v.Cells.Executed,
		Cached:   v.Cells.Cached,
		Failed:   v.Cells.Failed,
	}
	res.TSV = make(map[string][]byte, len(job.Artifacts))
	for _, name := range job.Artifacts {
		r, okr := s.Result(job.ID, name)
		if !okr {
			return res, fmt.Errorf("%s finished without an assembled %s table", job.ID, name)
		}
		res.TSV[name] = r.TSV()
	}
	return res, nil
}

// followJob waits for a job to reach a terminal state via its event
// stream (resubscribing if this subscriber is ever evicted). Context
// cancellation cancels the job.
func (s *Service) followJob(ctx context.Context, id string) (State, string, error) {
	for {
		history, ch, unsub, ok := s.Subscribe(id)
		if !ok {
			return "", "", fmt.Errorf("%s vanished", id)
		}
		for _, ev := range history {
			if ev.Type == "state" && ev.State.Terminal() {
				unsub()
				return ev.State, ev.Error, nil
			}
		}
		if ch == nil {
			// Terminal without a terminal event cannot happen, but fall
			// back to the view rather than spinning.
			unsub()
			v, okv := s.JobView(id)
			if !okv {
				return "", "", fmt.Errorf("%s vanished", id)
			}
			return v.State, v.Error, nil
		}
	live:
		for {
			select {
			case ev, open := <-ch:
				if !open {
					break live // evicted; resubscribe and rescan history
				}
				if ev.Type == "state" && ev.State.Terminal() {
					unsub()
					return ev.State, ev.Error, nil
				}
			case <-ctx.Done():
				unsub()
				s.Cancel(id)
				return "", "", ctx.Err()
			}
		}
		unsub()
	}
}
